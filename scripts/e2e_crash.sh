#!/usr/bin/env bash
# Crash-recovery end-to-end: a durable trieserve (-data, -fsync 1) is
# filled with acknowledged inserts, checkpointed mid-fill via POST
# /wal/snapshot, filled further, then killed with SIGKILL — no drain, no
# WAL close. A fresh process over the same directory must recover every
# acknowledged key (verified over the wire) and its /snapshot scrape
# must show both snapshot-loaded keys and replayed log-tail ops, proving
# recovery exercised BOTH halves of the durability path rather than one
# covering for the other.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
datadir="$workdir/data"
log="$workdir/trieserve.log"
cleanup() {
  [ -n "${srv_pid:-}" ] && kill -9 "$srv_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/trieserve" ./cmd/trieserve
go build -o "$workdir/trieload" ./cmd/trieload

start_server() {
  : >"$log"
  "$workdir/trieserve" -addr 127.0.0.1:0 -metrics 127.0.0.1:0 -u 65536 \
    -data "$datadir" -fsync 1 >"$log" 2>&1 &
  srv_pid=$!
  for i in $(seq 1 50); do
    grep -q 'metrics on' "$log" 2>/dev/null && break
    kill -0 "$srv_pid" 2>/dev/null || { echo "trieserve died at startup:"; cat "$log"; exit 1; }
    sleep 0.1
  done
  addr=$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$log" | head -1)
  murl=$(sed -n 's/.*metrics on \(http:\/\/[^/]*\).*/\1/p' "$log" | head -1)
  [ -n "$addr" ] && [ -n "$murl" ] || { echo "could not parse addresses from:"; cat "$log"; exit 1; }
}

start_server
echo "e2e-crash: durable server at $addr (data: $datadir)"

# Phase 1: acknowledged inserts, then force a consistent snapshot — the
# recovery below must load these 512 keys from the snapshot file.
"$workdir/trieload" -addr "$addr" -fill 512
curl -fsS -X POST "$murl/wal/snapshot" >/dev/null
# Phase 2: more acknowledged inserts — these live only in the log tail,
# so recovery must REPLAY them.
"$workdir/trieload" -addr "$addr" -fillfrom 512 -fill 768

# The crash: SIGKILL, mid-everything. No flush, no close.
kill -9 "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
srv_pid=

start_server
echo "e2e-crash: restarted at $addr"
grep -q 'recovered' "$log" || { echo "no recovery line in:"; cat "$log"; exit 1; }

# Every acknowledged key must have survived the SIGKILL.
"$workdir/trieload" -addr "$addr" -verify 768

# The wal.recovery.* counters must show both recovery paths ran.
snapshot=$(curl -fsS "$murl/snapshot" 2>/dev/null || wget -qO- "$murl/snapshot")
echo "$snapshot" | python3 -c '
import json, sys
s = json.load(sys.stdin)
c = s["counters"]
snap_keys = c.get("wal.recovery.snapshot_keys", 0)
replayed = c.get("wal.recovery.replayed_ops", 0)
assert snap_keys == 512, f"snapshot keys: {snap_keys}, want 512"
assert replayed > 0, f"no log-tail ops replayed: {replayed}"
print(f"e2e-crash: recovered {snap_keys} snapshot keys + {replayed} replayed ops")
'

kill -TERM "$srv_pid"
rc=0
wait "$srv_pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "post-recovery drain exited $rc:"; cat "$log"; exit 1; }
srv_pid=
echo "e2e-crash: recovery verified"
