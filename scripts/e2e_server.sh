#!/usr/bin/env bash
# End-to-end smoke for the server layer: a real trieserve binary on a
# loopback socket, driven over the network by the open-loop load
# generator, metrics scraped from the merged /snapshot, and a graceful
# SIGTERM drain verified by exit code. This is the one place the whole
# stack — wire protocol, coalescing batcher, window backpressure, obs
# exposition, signal handling — runs as separate processes, the way the
# daemon is actually deployed.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
log="$workdir/trieserve.log"
cleanup() {
  [ -n "${srv_pid:-}" ] && kill -9 "$srv_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/trieserve" ./cmd/trieserve
go build -o "$workdir/trieload" ./cmd/trieload

# Ephemeral ports; the binary prints the bound addresses.
"$workdir/trieserve" -addr 127.0.0.1:0 -metrics 127.0.0.1:0 -u 65536 >"$log" 2>&1 &
srv_pid=$!

for i in $(seq 1 50); do
  grep -q 'metrics on' "$log" 2>/dev/null && break
  kill -0 "$srv_pid" 2>/dev/null || { echo "trieserve died at startup:"; cat "$log"; exit 1; }
  sleep 0.1
done
addr=$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$log" | head -1)
murl=$(sed -n 's/.*metrics on \(http:\/\/[^/]*\).*/\1/p' "$log" | head -1)
[ -n "$addr" ] && [ -n "$murl" ] || { echo "could not parse addresses from:"; cat "$log"; exit 1; }
echo "e2e: server at $addr, metrics at $murl"

# Open-loop load over real TCP; -minops makes the driver itself assert
# that a sane fraction of the offered 20k/s over 2s actually completed.
"$workdir/trieload" -addr "$addr" -duration 2s -rate 20000 -conns 4 \
  -window 128 -mix update-heavy -u 65536 -minops 10000

# The scrape must show coalesced ingest: non-zero batched updates and
# sweeps, and zero per-op updates (coalescing is the default mode).
snapshot=$(curl -fsS "$murl/snapshot" 2>/dev/null || wget -qO- "$murl/snapshot")
echo "$snapshot" | python3 -c '
import json, sys
s = json.load(sys.stdin)
c = s["counters"]
batched = c.get("server.ops.update.batched", 0)
sweeps = c.get("server.batch.sweeps", 0)
perop = c.get("server.ops.update.perop", 0)
assert batched > 0, f"no batched updates recorded: {batched}"
assert sweeps > 0, f"no sweeps recorded: {sweeps}"
assert perop == 0, f"per-op updates on the coalescing path: {perop}"
print(f"e2e: scraped {batched} batched updates across {sweeps} sweeps")
'

# Graceful drain: SIGTERM, then the process must exit cleanly on its own.
kill -TERM "$srv_pid"
rc=0
wait "$srv_pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "trieserve drain exited $rc:"; cat "$log"; exit 1; }
grep -q 'draining' "$log" || { echo "no drain message in:"; cat "$log"; exit 1; }
srv_pid=
echo "e2e: graceful drain verified"
