// Package lockfreetrie is a lock-free binary trie for dynamic sets of
// integer keys with predecessor queries, reproducing "A Lock-free Binary
// Trie" (Jeremy Ko, ICDCS 2024 / arXiv:2405.06208).
//
// The trie stores a set S ⊆ {0,…,u−1} and supports, for any number of
// concurrent goroutines without locks:
//
//   - Contains(x): O(1) worst-case steps,
//   - Insert(x), Delete(x), Predecessor(y): O(ċ² + log u) amortized steps,
//     where ċ is the operation's point contention.
//
// All operations are linearizable. The package also exposes the paper's §4
// building block as Relaxed: a wait-free trie whose predecessor query may
// abstain (return ok=false) while updates are in flight, but answers
// exactly whenever the relevant keys are quiescent.
//
// # Quick start
//
//	tr, err := lockfreetrie.New(1 << 20)
//	if err != nil { ... }
//	tr.Insert(42)
//	tr.Insert(1000)
//	p, _ := tr.Predecessor(500) // p == 42
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package lockfreetrie

import (
	"fmt"

	"repro/internal/core"
)

// MaxUniverse bounds the universe size (space is Θ(u)).
const MaxUniverse = int64(1) << 32

// KeyRangeError reports a key outside [0, Universe()).
type KeyRangeError struct {
	Key      int64
	Universe int64
}

// Error implements error.
func (e *KeyRangeError) Error() string {
	return fmt.Sprintf("lockfreetrie: key %d outside universe [0, %d)", e.Key, e.Universe)
}

// Trie is a lock-free linearizable binary trie. All methods are safe for
// concurrent use by any number of goroutines. Create instances with New.
type Trie struct {
	core *core.Trie
}

// New returns an empty trie over the universe {0,…,universe−1}. universe
// must be at least 2 and at most MaxUniverse; it is padded to the next
// power of two (visible via Universe()). Memory is Θ(universe).
func New(universe int64) (*Trie, error) {
	c, err := core.New(universe)
	if err != nil {
		return nil, fmt.Errorf("lockfreetrie: %w", err)
	}
	return &Trie{core: c}, nil
}

// Universe returns the padded universe size 2^⌈log₂ u⌉.
func (t *Trie) Universe() int64 { return t.core.U() }

func (t *Trie) check(x int64) error {
	if x < 0 || x >= t.core.U() {
		return &KeyRangeError{Key: x, Universe: t.core.U()}
	}
	return nil
}

// Contains reports whether x is in the set. O(1) worst-case steps.
func (t *Trie) Contains(x int64) (bool, error) {
	if err := t.check(x); err != nil {
		return false, err
	}
	return t.core.Search(x), nil
}

// Insert adds x to the set; inserting a present key is a no-op.
func (t *Trie) Insert(x int64) error {
	if err := t.check(x); err != nil {
		return err
	}
	t.core.Insert(x)
	return nil
}

// Delete removes x from the set; deleting an absent key is a no-op.
func (t *Trie) Delete(x int64) error {
	if err := t.check(x); err != nil {
		return err
	}
	t.core.Delete(x)
	return nil
}

// Predecessor returns the largest key in the set strictly smaller than y,
// or −1 if there is none.
func (t *Trie) Predecessor(y int64) (int64, error) {
	if err := t.check(y); err != nil {
		return -1, err
	}
	return t.core.Predecessor(y), nil
}

// Floor returns the largest key ≤ x in the set, or −1 if there is none.
// Composed from Contains and Predecessor; each leg is linearizable, and the
// composition is linearizable when x is not being concurrently removed.
func (t *Trie) Floor(x int64) (int64, error) {
	if err := t.check(x); err != nil {
		return -1, err
	}
	if t.core.Search(x) {
		return x, nil
	}
	return t.core.Predecessor(x), nil
}

// Max returns the largest key in the set, or −1 if the set is empty.
func (t *Trie) Max() (int64, error) {
	return t.Floor(t.core.U() - 1)
}

// Range calls fn on every key in [lo, hi], from the largest down to the
// smallest, stopping early if fn returns false. It is built from
// linearizable Floor/Predecessor steps, so each visited key was present at
// some instant during the scan, but the scan as a whole is weakly
// consistent (like sync.Map.Range): keys inserted or deleted mid-scan may
// or may not be visited. For an atomic snapshot use the versioned trie in
// internal/versioned.
func (t *Trie) Range(lo, hi int64, fn func(key int64) bool) error {
	if err := t.check(lo); err != nil {
		return err
	}
	if err := t.check(hi); err != nil {
		return err
	}
	k, err := t.Floor(hi)
	if err != nil {
		return err
	}
	for k >= lo && k >= 0 {
		if !fn(k) {
			return nil
		}
		if k == 0 {
			return nil
		}
		k = t.core.Predecessor(k)
	}
	return nil
}

// Keys returns the keys in [lo, hi] in ascending order under the same
// weak-consistency contract as Range.
func (t *Trie) Keys(lo, hi int64) ([]int64, error) {
	var out []int64
	err := t.Range(lo, hi, func(k int64) bool {
		out = append(out, k)
		return true
	})
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}
