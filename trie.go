// Package lockfreetrie is a lock-free binary trie for dynamic sets of
// integer keys with predecessor queries, reproducing "A Lock-free Binary
// Trie" (Jeremy Ko, ICDCS 2024 / arXiv:2405.06208).
//
// The trie stores a set S ⊆ {0,…,u−1} and supports, for any number of
// concurrent goroutines without locks:
//
//   - Contains(x): O(1) worst-case steps,
//   - Insert(x), Delete(x), Predecessor(y): O(ċ² + log u) amortized steps,
//     where ċ is the operation's point contention.
//
// All operations are linearizable (the sharded variant's one narrow
// exception is documented at WithShards). The package also exposes the
// paper's §4
// building block as Relaxed: a wait-free trie whose predecessor query may
// abstain (return ok=false) while updates are in flight, but answers
// exactly whenever the relevant keys are quiescent.
//
// # Quick start
//
//	tr, err := lockfreetrie.New(1 << 20)
//	if err != nil { ... }
//	tr.Insert(42)
//	tr.Insert(1000)
//	p, _ := tr.Predecessor(500) // p == 42
//
// For high update rates on disjoint key ranges, shard the universe:
//
//	tr, err := lockfreetrie.New(1<<20, lockfreetrie.WithShards(16))
//
// Each shard is an independent trie with its own announcement lists, so
// operations on different shards never contend (see DESIGN.md §Sharding).
// When many goroutines update the SAME shard, add WithCombining() to batch
// their announcements through a per-shard flat-combining layer, or call
// Trie.ApplyBatch directly if the application already aggregates writes.
// If the update clustering is unknown or varies at runtime, use
// WithAdaptiveCombining() instead: each shard then watches its own
// contention signals and flips between direct and combining publication
// with hysteresis (DESIGN.md §Adaptive combining). When even the right
// shard COUNT is workload-dependent, WithAdaptiveShards(min, max) makes
// k itself adaptive: the trie re-partitions online between min and max
// shards as contention shifts, migrating live without blocking readers
// (DESIGN.md §Shard resize).
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package lockfreetrie

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/adapt"
	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/resize"
	"repro/internal/sharded"
	"repro/internal/wal"
)

// MaxUniverse bounds the universe size (space is Θ(u)).
const MaxUniverse = int64(1) << 32

// KeyRangeError reports a key outside [0, Universe()).
type KeyRangeError struct {
	Key      int64
	Universe int64
}

// Error implements error.
func (e *KeyRangeError) Error() string {
	return fmt.Sprintf("lockfreetrie: key %d outside universe [0, %d)", e.Key, e.Universe)
}

// config collects the functional options of New and NewRelaxed.
type config struct {
	shards         int
	shardsSet      bool
	combining      bool
	adaptive       bool
	acfg           adapt.Config
	adaptiveShards bool
	minShards      int
	maxShards      int
	noCompress     bool
	placement      []int
	placementSet   bool
	// Observability options (obs.go). latEvery 0 selects the default
	// sampling cadence.
	obsOff       bool
	latEvery     int64
	descentStats bool
	// Durability (durability.go); nil = in-memory only.
	dur *durConfig
}

// Option configures New and NewRelaxed.
type Option func(*config) error

// WithShards partitions the universe into k contiguous shards, each an
// independent trie with its own announcement lists, plus a lock-free
// occupancy summary that lets Predecessor, Floor, Max, Range and Keys skip
// empty shards. k must be a power of two; the padded universe must leave
// every shard at least two keys wide. k = 1 (the default) is the single
// unsharded trie of the paper.
//
// Sharding trades the predecessor fast path for update scalability:
// operations on different shards touch disjoint cache lines, while a
// Predecessor whose owning shard is empty below the query key pays an
// O(k)-validated scan of lower shards (see internal/sharded).
//
// Consistency: Search, Insert and Delete remain strictly linearizable at
// any shard count, as does a Predecessor answered by the query key's own
// shard. A cross-shard Predecessor validates its scan of the lower shards
// and retries while updates keep landing in them; only if some scanned
// lower shard fails validation on all 64 attempts of the retry budget —
// e.g. a writer parked mid-update there throughout, or an unbroken
// stream of completed updates below the query — does it return the last
// scan's answer under the same weak-consistency contract as Range.
// Updates in the query key's own shard never degrade the answer. The
// retry budget cannot be unbounded without giving up lock-freedom: a
// writer parked mid-update would otherwise spin the query forever.
func WithShards(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("lockfreetrie: WithShards(%d): shard count must be at least 1", k)
		}
		c.shards = k
		c.shardsSet = true
		return nil
	}
}

// WithAdaptiveShards moves the shard-count decision itself to runtime:
// the trie starts at min shards (or the WithShards value, which must lie
// in [min, max]) and re-partitions itself online between min and max as
// the workload's contention shifts. A deterministic decision layer
// samples the busiest shard's concurrent-publisher estimate (in-flight
// updates and, on the lock-free trie, announcement-list length) every
// few hundred updates and proposes doubling when the estimate's EWMA
// sustains above the grow threshold — with an occupancy guard so a
// near-empty set never fragments — and halving when it falls below the
// shrink threshold, with hysteresis and a minimum dwell between
// proposals (internal/resize; thresholds mirror WithAdaptiveCombining's
// tuning data).
//
// A proposal triggers a live migration: updates keep completing against
// the old partition while a coordinator builds the new one, journaling
// concurrently-touched keys through per-shard versioned snapshots and
// replaying the delta before one epoch flip hands authority over
// (DESIGN.md §Shard resize). Queries never block at any point of a
// migration — they always read the one authoritative partition, so
// Contains/Predecessor keep their usual consistency contracts and Len
// never observes a half-migrated state. Updates are untouched except
// inside the brief final handoff window, where a newly arriving update
// waits for the in-flight ops of the retiring partition plus one
// bounded delta replay (the same bounded-handoff trade WithCombining
// makes for claimed operations).
//
// min and max must be powers of two with 1 ≤ min ≤ max; max is capped
// by the universe geometry (every shard spans at least two keys).
// min == max pins the count (useful only for testing the machinery).
// Composes with WithCombining and WithAdaptiveCombining: every
// partition the trie migrates to carries the same configuration.
func WithAdaptiveShards(min, max int) Option {
	return func(c *config) error {
		if min < 1 || min&(min-1) != 0 || max < 1 || max&(max-1) != 0 {
			return fmt.Errorf("lockfreetrie: WithAdaptiveShards(%d, %d): bounds must be powers of two ≥ 1", min, max)
		}
		if min > max {
			return fmt.Errorf("lockfreetrie: WithAdaptiveShards(%d, %d): min exceeds max", min, max)
		}
		c.adaptiveShards = true
		c.minShards, c.maxShards = min, max
		return nil
	}
}

// WithoutCompressedDescents disables the cache-compressed trie descents:
// Predecessor/Successor walk the dense node array instead of consulting
// the per-64-node occupancy summary words that let them skip empty
// subtrie regions in one load (internal/bitstrie, DESIGN.md
// §Cache-compressed descents). The summaries are advisory — every answer
// is identical either way — so the only reason to turn them off is
// measurement: triebench's cc1 experiment uses this switch to embed the
// uncompressed baseline. Composes with every other option; under
// WithAdaptiveShards every partition the trie migrates to inherits the
// setting.
func WithoutCompressedDescents() Option {
	return func(c *config) error {
		c.noCompress = true
		return nil
	}
}

// WithCombining routes Insert and Delete through a per-shard flat-combining
// layer (internal/combine): concurrent updates on the same shard publish to
// a fixed array of padded publication slots, one goroutine elects itself
// combiner per round, and the drained batch is applied through the core
// batch entrypoint — announcing once per batch on the shard's U-ALL/RU-ALL
// instead of once per operation. Composes with WithShards (each shard gets
// its own combiner; the default k = 1 gives one global combiner).
//
// Trade-offs: queries and the explicit ApplyBatch are untouched, and the
// underlying trie stays lock-free — an update the current combiner has not
// claimed can always retract and run the ordinary per-op path. What is
// given up is per-op lock-freedom for claimed updates: an operation a
// combiner has drained waits for that round to finish (flat combining's
// standard trade; the claim window spans one batch application of
// lock-free code). Worth it when many goroutines update the same shard —
// the announcement amortization experiment CB1 records the trajectory in
// BENCH_combine.json; with few concurrent updaters the batches degenerate
// to size 1 and the handoff is pure overhead.
func WithCombining() Option {
	return func(c *config) error {
		c.combining = true
		return nil
	}
}

// AdaptiveConfig tunes WithAdaptiveCombining. The zero value of every
// field selects a default tuned from the CB1/AD1 trajectory data
// (BENCH_combine.json, BENCH_adaptive.json: clustered workloads drain
// 6.8–16 ops per combining round and park 7–15 concurrent publishers per
// shard, thin-spread ones ~1 and 0–4, so the default hysteresis band
// [1.4, 4.0] separates the regimes with margin on both sides).
type AdaptiveConfig struct {
	// SampleEvery is the number of updates between signal samples per
	// shard (default 128).
	SampleEvery int
	// EnableThreshold is the contention estimate — the batch size a
	// combining round would drain, inferred from announced and in-flight
	// concurrent updates — at which a shard switches its updates to the
	// combining layer (default 4.0; deliberately conservative, because a
	// wrong enable is hard to detect from inside — see DESIGN.md
	// §Adaptive combining).
	EnableThreshold float64
	// DisableThreshold is the observed batch-size EWMA at which a
	// combining shard switches back to direct publication (default 1.4).
	// Must be below EnableThreshold; the gap is the hysteresis band.
	DisableThreshold float64
	// RetractRateDisable is the fraction of submissions escaping a busy
	// combiner (retraction rate) that disables combining regardless of
	// batch sizes (default 0.5).
	RetractRateDisable float64
	// SmoothingAlpha is the EWMA weight of the newest signal observation,
	// in (0, 1] (default 0.4). Higher values react to regime changes in
	// fewer samples; lower values demand more sustained evidence before a
	// flip.
	SmoothingAlpha float64
	// MinDwellSamples is the minimum number of samples a shard stays in
	// a mode before it may flip again (default 4).
	MinDwellSamples int
	// StartCombining selects each shard's initial mode (default:
	// direct).
	StartCombining bool
}

// WithAdaptiveCombining is WithCombining with the decision moved from
// construction time to runtime, per shard: every shard gets publication
// slots AND a controller that samples the shard's contention signals
// (announcement-list length and in-flight updates while direct; drained
// batch size, combiner-election contention and retraction pressure while
// combining) every SampleEvery updates and flips an atomic mode word the
// update path reads on every operation. Enable and disable use distinct
// thresholds plus a minimum dwell, so workloads wandering near one
// threshold do not thrash, and operations in flight across a flip stay
// linearizable — the mode word is advisory routing over two publication
// paths that are already safe concurrently (DESIGN.md §Adaptive
// combining).
//
// Use it when the update clustering is unknown or varies: a shard that
// stays thin keeps the direct path's throughput (the AD1 experiment gates
// ≥ 0.95× uncombined on a thin-spread mix), while a shard that becomes hot
// converges to the combining path's (≥ 0.9× always-on combining on
// clustered mixes, BENCH_adaptive.json). With a KNOWN stable workload the
// static choices — WithCombining() or nothing — avoid the sampling tax
// and the convergence transient. At most one AdaptiveConfig may be given;
// none selects the tuned defaults. Overrides WithCombining when both are
// set. Composes with WithShards exactly as WithCombining does.
func WithAdaptiveCombining(cfg ...AdaptiveConfig) Option {
	return func(c *config) error {
		if len(cfg) > 1 {
			return fmt.Errorf("lockfreetrie: WithAdaptiveCombining: at most one AdaptiveConfig, got %d", len(cfg))
		}
		c.adaptive = true
		if len(cfg) == 1 {
			a := cfg[0]
			// Out-of-domain values error loudly rather than silently
			// coercing to defaults — a controller running with tuning the
			// caller did not ask for is worse than a construction error.
			// The checks are phrased as !(in-range) so NaN (for which
			// every ordered comparison is false, including the clamps
			// further down) is rejected too.
			if !(a.SmoothingAlpha >= 0 && a.SmoothingAlpha <= 1) {
				return fmt.Errorf("lockfreetrie: WithAdaptiveCombining: SmoothingAlpha %v outside (0, 1]", a.SmoothingAlpha)
			}
			if !(a.RetractRateDisable >= 0 && a.RetractRateDisable <= 1) {
				return fmt.Errorf("lockfreetrie: WithAdaptiveCombining: RetractRateDisable %v outside (0, 1] (it is compared against a rate)", a.RetractRateDisable)
			}
			if a.SampleEvery < 0 || a.MinDwellSamples < 0 {
				return fmt.Errorf("lockfreetrie: WithAdaptiveCombining: SampleEvery %d and MinDwellSamples %d must not be negative",
					a.SampleEvery, a.MinDwellSamples)
			}
			if !(a.EnableThreshold >= 0) || !(a.DisableThreshold >= 0) ||
				math.IsInf(a.EnableThreshold, 1) || math.IsInf(a.DisableThreshold, 1) {
				return fmt.Errorf("lockfreetrie: WithAdaptiveCombining: thresholds must be finite and non-negative")
			}
			// Validate the band against the EFFECTIVE values, so setting
			// one threshold against the other's default errors just as
			// loudly as setting both inconsistently.
			en, dis := a.EnableThreshold, a.DisableThreshold
			if en == 0 {
				en = adapt.DefaultEnable
			}
			if dis == 0 {
				dis = adapt.DefaultDisable
			}
			if dis >= en {
				return fmt.Errorf("lockfreetrie: WithAdaptiveCombining: DisableThreshold %v (default %v) must be below EnableThreshold %v (default %v)",
					dis, adapt.DefaultDisable, en, adapt.DefaultEnable)
			}
			c.acfg = adapt.Config{
				SampleEvery:    int64(a.SampleEvery),
				Alpha:          a.SmoothingAlpha,
				Enable:         a.EnableThreshold,
				Disable:        a.DisableThreshold,
				RetractDisable: a.RetractRateDisable,
				MinDwell:       int64(a.MinDwellSamples),
				StartCombining: a.StartCombining,
			}
		}
		return nil
	}
}

// WithPlacementHint pins each shard's publication machinery to the
// publisher population owning its key range: owners[i] is the placement
// group of shard i, and shards sharing a group carve their combining
// publication slots from one contiguous arena and claim them with sticky
// slot affinity — a shard's dominant publisher keeps reusing one warm
// cache line between operations instead of rotating across the slot
// array. The hint is OS-portable by construction: it shapes goroutine-to-
// shard slot affinity and arena locality, never hard thread pinning, so
// its benefit depends on the runtime actually keeping publisher
// goroutines on stable Ps (it usually does under steady load; see
// DESIGN.md §Multicore methodology for the caveat and measurements —
// the MP1 experiment records the trajectory in BENCH_multicore.json).
//
// owners must have exactly one entry per shard (the WithShards value; 1
// by default) with group ids in [0, shards). The identity hint
// (owners[i] = i) declares every shard privately owned. Requires
// WithCombining or WithAdaptiveCombining — placement shapes publication
// slots, and without a combining layer there are none — and is
// incompatible with WithAdaptiveShards, whose migrations re-partition
// the very key ranges a hint pins.
func WithPlacementHint(owners []int) Option {
	return func(c *config) error {
		if len(owners) == 0 {
			return fmt.Errorf("lockfreetrie: WithPlacementHint: empty hint (one group id per shard required)")
		}
		c.placement = append([]int(nil), owners...)
		c.placementSet = true
		return nil
	}
}

// validatePlacement checks the placement hint against the rest of the
// resolved configuration (shared by New and NewRelaxed).
func (c *config) validatePlacement() error {
	if !c.placementSet {
		return nil
	}
	if c.adaptiveShards {
		return fmt.Errorf("lockfreetrie: WithPlacementHint is incompatible with WithAdaptiveShards (a migration re-partitions the key ranges the hint pins)")
	}
	if !c.combining && !c.adaptive {
		return fmt.Errorf("lockfreetrie: WithPlacementHint requires WithCombining or WithAdaptiveCombining (the hint shapes publication slots)")
	}
	if err := sharded.ValidatePlacement(c.placement, c.shards); err != nil {
		return fmt.Errorf("lockfreetrie: WithPlacementHint: %w", err)
	}
	return nil
}

// set is the backend contract shared by the (wrapped) core trie and the
// sharded façade; the exported API layers key validation and the composed
// operations (Floor, Max, Range, Keys, Ceiling) on top of it.
type set interface {
	Search(x int64) bool
	Insert(x int64)
	Delete(x int64)
	Predecessor(y int64) int64
	Successor(y int64) int64
	ApplyBatch(ops []core.BatchOp)
	Len() int64
	U() int64
}

// adaptiveStats is the optional backend interface behind
// Trie.AdaptiveStats.
type adaptiveStats interface {
	AdaptiveStats() (enables, disables int64)
}

// Trie is a lock-free linearizable binary trie. All methods are safe for
// concurrent use by any number of goroutines. Create instances with New.
type Trie struct {
	set       set
	shards    int
	combining bool
	adaptive  bool
	placement []int       // WithPlacementHint copy; nil when unplaced
	rz        *resize.Set // non-nil under WithAdaptiveShards
	obs       *obsState   // nil under WithoutObservability
	wal       *wal.Log    // non-nil under WithDurability
	recovery  RecoveryStats
}

// resizeBounds validates the WithAdaptiveShards bounds against the other
// options and returns the initial shard count: the explicit WithShards
// value when given (it must lie inside [min, max]), min otherwise.
func (c *config) resizeBounds() (initial int, err error) {
	initial = c.minShards
	if c.shardsSet {
		if c.shards < c.minShards || c.shards > c.maxShards {
			return 0, fmt.Errorf("lockfreetrie: WithShards(%d) outside WithAdaptiveShards bounds [%d, %d]",
				c.shards, c.minShards, c.maxShards)
		}
		initial = c.shards
	}
	return initial, nil
}

// shardedFactory builds the per-migration table constructor for the
// resizable trie, carrying the combining/adaptive configuration into
// every partition the trie migrates to.
func (c *config) shardedFactory(universe int64) func(k int) (*sharded.Trie, error) {
	o := sharded.Options{Combining: c.combining}
	if c.adaptive {
		acfg := c.acfg
		o.Adaptive = &acfg
	}
	if c.placementSet {
		o.Placement = c.placement
	}
	base := func(k int) (*sharded.Trie, error) { return sharded.NewWithOptions(universe, k, o) }
	if !c.noCompress {
		return base
	}
	return func(k int) (*sharded.Trie, error) {
		t, err := base(k)
		if err != nil {
			return nil, err
		}
		// The table is still private to the migration coordinator here, so
		// the plain-field switch is safe.
		for i := 0; i < t.Shards(); i++ {
			t.Shard(i).Bits().SetCompressedDescents(false)
		}
		return t, nil
	}
}

// New returns an empty trie over the universe {0,…,universe−1}. universe
// must be at least 2 and at most MaxUniverse; it is padded to the next
// power of two (visible via Universe()). Memory is Θ(universe).
//
// With no options the trie is the paper's single lock-free binary trie;
// WithShards(k) partitions the universe across k independent tries.
func New(universe int64, opts ...Option) (*Trie, error) {
	cfg := config{shards: 1}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if err := cfg.validatePlacement(); err != nil {
		return nil, err
	}
	if err := cfg.validateObservability(); err != nil {
		return nil, err
	}
	// Observability is on by default; every path below instruments its
	// tables while they are still private (plain-store attach points),
	// then finish wires the gauges over the assembled backend.
	var o *obsState
	if !cfg.obsOff {
		o = newObsState(&cfg)
	}
	finish := func(t *Trie) (*Trie, error) {
		// Durability wraps the assembled backend before anything reads
		// it: recovery seeds the unwrapped set (not re-logged), then the
		// write-ahead wrapper interposes on every later update.
		if cfg.dur != nil {
			if err := t.attachDurability(cfg.dur); err != nil {
				return nil, err
			}
		}
		t.obs = o
		if o != nil {
			t.registerObsGauges()
		}
		return t, nil
	}
	if cfg.adaptiveShards {
		initial, err := cfg.resizeBounds()
		if err != nil {
			return nil, err
		}
		factory := cfg.shardedFactory(universe)
		if o != nil {
			// Each partition the trie migrates to is instrumented inside
			// the factory, before the coordinator publishes it.
			inner := factory
			factory = func(k int) (*sharded.Trie, error) {
				st, err := inner(k)
				if err != nil {
					return nil, err
				}
				o.instrumentSharded(st)
				return st, nil
			}
		}
		rz, err := resize.NewSet(initial, factory,
			resize.Config{MinShards: cfg.minShards, MaxShards: cfg.maxShards})
		if err != nil {
			return nil, fmt.Errorf("lockfreetrie: %w", err)
		}
		if o != nil {
			rz.SetEvents(o.ring)
		}
		return finish(&Trie{set: rz, shards: initial,
			combining: cfg.combining || cfg.adaptive, adaptive: cfg.adaptive, rz: rz})
	}
	// A placed k=1 trie still needs the sharded machinery (arena carve,
	// sticky combiner), so placement always routes through the factory.
	if cfg.shards == 1 && !cfg.placementSet {
		c, err := core.New(universe)
		if err != nil {
			return nil, fmt.Errorf("lockfreetrie: %w", err)
		}
		if cfg.noCompress {
			c.Bits().SetCompressedDescents(false)
		}
		var s set
		if cfg.adaptive {
			cs := combine.WrapCoreAdaptive(c, cfg.acfg, 0)
			if o != nil {
				cs.Combiner().SetEvents(o.ring, 0)
				cs.Controller().SetEvents(o.ring, 0)
			}
			s = cs
		} else {
			cs := combine.WrapCore(c, cfg.combining, 0)
			if o != nil && cs.Combiner() != nil {
				cs.Combiner().SetEvents(o.ring, 0)
			}
			s = cs
		}
		if o != nil {
			o.instrumentCore(c, 0)
		}
		return finish(&Trie{
			set:       s,
			shards:    1,
			combining: cfg.combining || cfg.adaptive,
			adaptive:  cfg.adaptive,
		})
	}
	st, err := cfg.shardedFactory(universe)(cfg.shards)
	if err != nil {
		return nil, fmt.Errorf("lockfreetrie: %w", err)
	}
	if o != nil {
		o.instrumentSharded(st)
	}
	return finish(&Trie{set: st, shards: cfg.shards,
		combining: cfg.combining || cfg.adaptive, adaptive: cfg.adaptive,
		placement: cfg.placement})
}

// PlacementHint returns a copy of the WithPlacementHint owners slice, or
// nil when the trie is unplaced.
func (t *Trie) PlacementHint() []int {
	if t.placement == nil {
		return nil
	}
	return append([]int(nil), t.placement...)
}

// Universe returns the padded universe size 2^⌈log₂ u⌉.
func (t *Trie) Universe() int64 { return t.set.U() }

// Shards returns the current shard count: the configured value (1 for
// the unsharded trie), or — under WithAdaptiveShards — the live count,
// which a concurrent migration may change right after the read.
func (t *Trie) Shards() int {
	if t.rz != nil {
		return t.rz.Shards()
	}
	return t.shards
}

// AdaptiveShards reports whether WithAdaptiveShards was set.
func (t *Trie) AdaptiveShards() bool { return t.rz != nil }

// ResizeStats is a snapshot of the online shard-resize counters of a
// WithAdaptiveShards trie.
type ResizeStats struct {
	// Shards is the current shard count.
	Shards int
	// Grows and Shrinks count completed migrations by direction.
	Grows, Shrinks int64
	// Migrating reports whether a migration was in flight at the
	// snapshot.
	Migrating bool
}

// ResizeStats returns the online-resize counters. Without
// WithAdaptiveShards it is a static snapshot: the configured shard
// count and zero migrations.
func (t *Trie) ResizeStats() ResizeStats {
	if t.rz == nil {
		return ResizeStats{Shards: t.shards}
	}
	s := t.rz.Stats()
	return ResizeStats{Shards: s.Shards, Grows: s.Grows, Shrinks: s.Shrinks, Migrating: s.Migrating}
}

// Combining reports whether the trie has a combining layer (WithCombining
// or WithAdaptiveCombining).
func (t *Trie) Combining() bool { return t.combining }

// AdaptiveCombining reports whether WithAdaptiveCombining was set.
func (t *Trie) AdaptiveCombining() bool { return t.adaptive }

// AdaptiveStats returns the cumulative mode-transition counts summed over
// all shards: enables (direct→combining flips) and disables (the
// reverse). Zeros unless WithAdaptiveCombining was set.
func (t *Trie) AdaptiveStats() (enables, disables int64) {
	if a, ok := t.set.(adaptiveStats); ok {
		return a.AdaptiveStats()
	}
	return 0, 0
}

// Len returns the number of keys currently in the set. O(1) on the
// unsharded trie, O(shards) with WithShards (it sums the per-shard
// occupancy summary).
//
// Consistency: Len is weakly consistent, like sync.Map's length-by-Range.
// Each winning update bumps a counter adjacent to — not atomic with — its
// linearization point, so a Len racing with updates may be off by the
// number of in-flight operations (with WithShards it may also transiently
// over-count, since a shard's insert increments before the core operation
// and rolls back on a lost race). At any quiescent instant — no update in
// flight — Len is exactly |S|. Use Keys and count when an exact answer
// under concurrency is needed, or the versioned snapshot trie for an
// atomic view.
func (t *Trie) Len() int64 { return t.set.Len() }

func (t *Trie) check(x int64) error {
	if x < 0 || x >= t.set.U() {
		return &KeyRangeError{Key: x, Universe: t.set.U()}
	}
	return nil
}

// Contains reports whether x is in the set. O(1) worst-case steps.
//
// The primitive entrypoints (Contains, Insert, Delete, Predecessor,
// Successor, ApplyBatch) each pay one striped counter increment for the
// ops.* metrics, and every WithLatencySampling-th operation is timed into
// the latency.*_ns histograms; composed operations (Floor, Max, Range,
// Keys, …) run their legs through the backend directly and are not
// separately counted. WithoutObservability removes all of it.
func (t *Trie) Contains(x int64) (bool, error) {
	if err := t.check(x); err != nil {
		return false, err
	}
	if o := t.obs; o != nil && o.ops[opSearch].Inc(x)%o.every == 0 {
		start := time.Now()
		in := t.set.Search(x)
		o.lats[opSearch].Record(int64(time.Since(start)))
		return in, nil
	}
	return t.set.Search(x), nil
}

// Insert adds x to the set; inserting a present key is a no-op.
func (t *Trie) Insert(x int64) error {
	if err := t.check(x); err != nil {
		return err
	}
	if o := t.obs; o != nil && o.ops[opInsert].Inc(x)%o.every == 0 {
		start := time.Now()
		t.set.Insert(x)
		o.lats[opInsert].Record(int64(time.Since(start)))
		return nil
	}
	t.set.Insert(x)
	return nil
}

// Delete removes x from the set; deleting an absent key is a no-op.
func (t *Trie) Delete(x int64) error {
	if err := t.check(x); err != nil {
		return err
	}
	if o := t.obs; o != nil && o.ops[opDelete].Inc(x)%o.every == 0 {
		start := time.Now()
		t.set.Delete(x)
		o.lats[opDelete].Record(int64(time.Since(start)))
		return nil
	}
	t.set.Delete(x)
	return nil
}

// Predecessor returns the largest key in the set strictly smaller than y,
// or −1 if there is none. Linearizable on the unsharded trie; with
// WithShards, see that option's consistency note for the cross-shard
// degraded case.
func (t *Trie) Predecessor(y int64) (int64, error) {
	if err := t.check(y); err != nil {
		return -1, err
	}
	if o := t.obs; o != nil && o.ops[opPredecessor].Inc(y)%o.every == 0 {
		start := time.Now()
		p := t.set.Predecessor(y)
		o.lats[opPredecessor].Record(int64(time.Since(start)))
		return p, nil
	}
	return t.set.Predecessor(y), nil
}

// Successor returns the smallest key in the set strictly greater than y,
// or −1 if there is none — the upward mirror of Predecessor. The paper's
// announcement machinery is one-directional (toward predecessors), so
// Successor is a composed operation with the Floor/Max/Range family's
// consistency contract: every leg it runs is individually linearizable,
// the composition is weakly consistent under concurrent updates on keys in
// (y, result), and at quiescence the answer is exact. With WithShards the
// owning shard answers directly when it can; otherwise higher shards are
// scanned through the occupancy summary with the same pending/version
// validation (and ScanRetries degradation bound) as the cross-shard
// Predecessor.
func (t *Trie) Successor(y int64) (int64, error) {
	if err := t.check(y); err != nil {
		return -1, err
	}
	if o := t.obs; o != nil && o.ops[opSuccessor].Inc(y)%o.every == 0 {
		start := time.Now()
		s := t.set.Successor(y)
		o.lats[opSuccessor].Record(int64(time.Since(start)))
		return s, nil
	}
	return t.set.Successor(y), nil
}

// Ceiling returns the smallest key ≥ x in the set, or −1 if there is none.
// Composed from Contains and Successor, mirroring Floor; linearizable when
// x is not being concurrently removed, weakly consistent otherwise.
func (t *Trie) Ceiling(x int64) (int64, error) {
	if err := t.check(x); err != nil {
		return -1, err
	}
	if t.set.Search(x) {
		return x, nil
	}
	return t.set.Successor(x), nil
}

// Min returns the smallest key in the set, or −1 if the set is empty,
// mirroring Max.
func (t *Trie) Min() (int64, error) {
	return t.Ceiling(0)
}

// Floor returns the largest key ≤ x in the set, or −1 if there is none.
// Composed from Contains and Predecessor; each leg is linearizable, and the
// composition is linearizable when x is not being concurrently removed.
func (t *Trie) Floor(x int64) (int64, error) {
	if err := t.check(x); err != nil {
		return -1, err
	}
	if t.set.Search(x) {
		return x, nil
	}
	return t.set.Predecessor(x), nil
}

// Max returns the largest key in the set, or −1 if the set is empty.
func (t *Trie) Max() (int64, error) {
	return t.Floor(t.set.U() - 1)
}

// Range calls fn on every key in [lo, hi], from the largest down to the
// smallest, stopping early if fn returns false. It is built from
// linearizable Floor/Predecessor steps, so each visited key was present at
// some instant during the scan, but the scan as a whole is weakly
// consistent (like sync.Map.Range): keys inserted or deleted mid-scan may
// or may not be visited. For an atomic snapshot use the versioned trie in
// internal/versioned.
func (t *Trie) Range(lo, hi int64, fn func(key int64) bool) error {
	if err := t.check(lo); err != nil {
		return err
	}
	if err := t.check(hi); err != nil {
		return err
	}
	k, err := t.Floor(hi)
	if err != nil {
		return err
	}
	for k >= lo && k >= 0 {
		if !fn(k) {
			return nil
		}
		if k == 0 {
			return nil
		}
		k = t.set.Predecessor(k)
	}
	return nil
}

// OpKind discriminates the update kinds ApplyBatch accepts.
type OpKind uint8

const (
	// OpInsert adds the key to the set.
	OpInsert OpKind = iota + 1
	// OpDelete removes the key from the set.
	OpDelete
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "Insert"
	case OpDelete:
		return "Delete"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one operation of an ApplyBatch call.
type Op struct {
	Kind OpKind
	Key  int64
}

// ApplyBatch applies a sequence of updates as one batch, for callers that
// already aggregate their writes (an order-book matching cycle, a
// telemetry window flush): the batch pays one announcement pass per
// shard-run instead of one per operation, with or without WithCombining —
// the option only changes how ordinary Insert/Delete calls find their
// batches; pre-batched callers skip the publication slots entirely.
//
// Semantics: ops apply by their FINAL effect per key — for each key, the
// last op in ops wins, exactly as if the sequence had run in order with
// the intermediate states unobserved (the batch's per-key linearization
// points are its update-node activations inside the single announcement
// round; see DESIGN.md §Combining layer). Each surviving op linearizes
// individually, so a batch is NOT an atomic multi-key transaction:
// concurrent readers may observe any prefix-consistent mixture. Invalid
// ops (key out of range, unknown kind) are skipped and reported.
//
// The returned slice is nil when every op was accepted; otherwise it has
// len(ops) entries with errs[i] describing why ops[i] was rejected (nil
// for accepted ops).
func (t *Trie) ApplyBatch(ops []Op) []error {
	if len(ops) == 0 {
		return nil
	}
	var errs []error
	fail := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(ops))
		}
		errs[i] = err
	}
	// The translated batch lives only for the duration of the call, so
	// the buffer is pooled: a steady batching caller (the server's sweep
	// loop) would otherwise allocate a batch-sized slice per sweep.
	scratch := bopsPool.Get().(*bopsScratch)
	bops := scratch.ops[:0]
	for i, op := range ops {
		if op.Kind != OpInsert && op.Kind != OpDelete {
			fail(i, fmt.Errorf("lockfreetrie: ApplyBatch op %d: invalid kind %v", i, op.Kind))
			continue
		}
		if err := t.check(op.Key); err != nil {
			fail(i, err)
			continue
		}
		bops = append(bops, core.BatchOp{Key: op.Key, Del: op.Kind == OpDelete})
	}
	if len(bops) > 0 {
		if o := t.obs; o != nil && o.ops[opApplyBatch].Inc(bops[0].Key)%o.every == 0 {
			start := time.Now()
			t.set.ApplyBatch(combine.SortDedup(bops))
			o.lats[opApplyBatch].Record(int64(time.Since(start)))
		} else {
			t.set.ApplyBatch(combine.SortDedup(bops))
		}
	}
	scratch.ops = bops
	bopsPool.Put(scratch)
	return errs
}

// bopsScratch pools ApplyBatch's translated-op buffers.
type bopsScratch struct{ ops []core.BatchOp }

var bopsPool = sync.Pool{New: func() any { return new(bopsScratch) }}

// Keys returns the keys in [lo, hi] in ascending order under the same
// weak-consistency contract as Range.
func (t *Trie) Keys(lo, hi int64) ([]int64, error) {
	var out []int64
	err := t.Range(lo, hi, func(k int64) bool {
		out = append(out, k)
		return true
	})
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}
