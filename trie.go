// Package lockfreetrie is a lock-free binary trie for dynamic sets of
// integer keys with predecessor queries, reproducing "A Lock-free Binary
// Trie" (Jeremy Ko, ICDCS 2024 / arXiv:2405.06208).
//
// The trie stores a set S ⊆ {0,…,u−1} and supports, for any number of
// concurrent goroutines without locks:
//
//   - Contains(x): O(1) worst-case steps,
//   - Insert(x), Delete(x), Predecessor(y): O(ċ² + log u) amortized steps,
//     where ċ is the operation's point contention.
//
// All operations are linearizable (the sharded variant's one narrow
// exception is documented at WithShards). The package also exposes the
// paper's §4
// building block as Relaxed: a wait-free trie whose predecessor query may
// abstain (return ok=false) while updates are in flight, but answers
// exactly whenever the relevant keys are quiescent.
//
// # Quick start
//
//	tr, err := lockfreetrie.New(1 << 20)
//	if err != nil { ... }
//	tr.Insert(42)
//	tr.Insert(1000)
//	p, _ := tr.Predecessor(500) // p == 42
//
// For high update rates on disjoint key ranges, shard the universe:
//
//	tr, err := lockfreetrie.New(1<<20, lockfreetrie.WithShards(16))
//
// Each shard is an independent trie with its own announcement lists, so
// operations on different shards never contend (see DESIGN.md §Sharding).
// When many goroutines update the SAME shard, add WithCombining() to batch
// their announcements through a per-shard flat-combining layer, or call
// Trie.ApplyBatch directly if the application already aggregates writes.
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package lockfreetrie

import (
	"fmt"

	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/sharded"
)

// MaxUniverse bounds the universe size (space is Θ(u)).
const MaxUniverse = int64(1) << 32

// KeyRangeError reports a key outside [0, Universe()).
type KeyRangeError struct {
	Key      int64
	Universe int64
}

// Error implements error.
func (e *KeyRangeError) Error() string {
	return fmt.Sprintf("lockfreetrie: key %d outside universe [0, %d)", e.Key, e.Universe)
}

// config collects the functional options of New and NewRelaxed.
type config struct {
	shards    int
	combining bool
}

// Option configures New and NewRelaxed.
type Option func(*config) error

// WithShards partitions the universe into k contiguous shards, each an
// independent trie with its own announcement lists, plus a lock-free
// occupancy summary that lets Predecessor, Floor, Max, Range and Keys skip
// empty shards. k must be a power of two; the padded universe must leave
// every shard at least two keys wide. k = 1 (the default) is the single
// unsharded trie of the paper.
//
// Sharding trades the predecessor fast path for update scalability:
// operations on different shards touch disjoint cache lines, while a
// Predecessor whose owning shard is empty below the query key pays an
// O(k)-validated scan of lower shards (see internal/sharded).
//
// Consistency: Search, Insert and Delete remain strictly linearizable at
// any shard count, as does a Predecessor answered by the query key's own
// shard. A cross-shard Predecessor validates its scan of the lower shards
// and retries while updates keep landing in them; only if some scanned
// lower shard fails validation on all 64 attempts of the retry budget —
// e.g. a writer parked mid-update there throughout, or an unbroken
// stream of completed updates below the query — does it return the last
// scan's answer under the same weak-consistency contract as Range.
// Updates in the query key's own shard never degrade the answer. The
// retry budget cannot be unbounded without giving up lock-freedom: a
// writer parked mid-update would otherwise spin the query forever.
func WithShards(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("lockfreetrie: WithShards(%d): shard count must be at least 1", k)
		}
		c.shards = k
		return nil
	}
}

// WithCombining routes Insert and Delete through a per-shard flat-combining
// layer (internal/combine): concurrent updates on the same shard publish to
// a fixed array of padded publication slots, one goroutine elects itself
// combiner per round, and the drained batch is applied through the core
// batch entrypoint — announcing once per batch on the shard's U-ALL/RU-ALL
// instead of once per operation. Composes with WithShards (each shard gets
// its own combiner; the default k = 1 gives one global combiner).
//
// Trade-offs: queries and the explicit ApplyBatch are untouched, and the
// underlying trie stays lock-free — an update the current combiner has not
// claimed can always retract and run the ordinary per-op path. What is
// given up is per-op lock-freedom for claimed updates: an operation a
// combiner has drained waits for that round to finish (flat combining's
// standard trade; the claim window spans one batch application of
// lock-free code). Worth it when many goroutines update the same shard —
// the announcement amortization experiment CB1 records the trajectory in
// BENCH_combine.json; with few concurrent updaters the batches degenerate
// to size 1 and the handoff is pure overhead.
func WithCombining() Option {
	return func(c *config) error {
		c.combining = true
		return nil
	}
}

// set is the backend contract shared by the (wrapped) core trie and the
// sharded façade; the exported API layers key validation and the composed
// operations (Floor, Max, Range, Keys, Ceiling) on top of it.
type set interface {
	Search(x int64) bool
	Insert(x int64)
	Delete(x int64)
	Predecessor(y int64) int64
	Successor(y int64) int64
	ApplyBatch(ops []core.BatchOp)
	Len() int64
	U() int64
}

// Trie is a lock-free linearizable binary trie. All methods are safe for
// concurrent use by any number of goroutines. Create instances with New.
type Trie struct {
	set       set
	shards    int
	combining bool
}

// New returns an empty trie over the universe {0,…,universe−1}. universe
// must be at least 2 and at most MaxUniverse; it is padded to the next
// power of two (visible via Universe()). Memory is Θ(universe).
//
// With no options the trie is the paper's single lock-free binary trie;
// WithShards(k) partitions the universe across k independent tries.
func New(universe int64, opts ...Option) (*Trie, error) {
	cfg := config{shards: 1}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.shards == 1 {
		c, err := core.New(universe)
		if err != nil {
			return nil, fmt.Errorf("lockfreetrie: %w", err)
		}
		return &Trie{
			set:       combine.WrapCore(c, cfg.combining, 0),
			shards:    1,
			combining: cfg.combining,
		}, nil
	}
	mk := sharded.New
	if cfg.combining {
		mk = sharded.NewCombining
	}
	s, err := mk(universe, cfg.shards)
	if err != nil {
		return nil, fmt.Errorf("lockfreetrie: %w", err)
	}
	return &Trie{set: s, shards: cfg.shards, combining: cfg.combining}, nil
}

// Universe returns the padded universe size 2^⌈log₂ u⌉.
func (t *Trie) Universe() int64 { return t.set.U() }

// Shards returns the configured shard count (1 for the unsharded trie).
func (t *Trie) Shards() int { return t.shards }

// Combining reports whether WithCombining was set.
func (t *Trie) Combining() bool { return t.combining }

// Len returns the number of keys currently in the set. O(1) on the
// unsharded trie, O(shards) with WithShards (it sums the per-shard
// occupancy summary).
//
// Consistency: Len is weakly consistent, like sync.Map's length-by-Range.
// Each winning update bumps a counter adjacent to — not atomic with — its
// linearization point, so a Len racing with updates may be off by the
// number of in-flight operations (with WithShards it may also transiently
// over-count, since a shard's insert increments before the core operation
// and rolls back on a lost race). At any quiescent instant — no update in
// flight — Len is exactly |S|. Use Keys and count when an exact answer
// under concurrency is needed, or the versioned snapshot trie for an
// atomic view.
func (t *Trie) Len() int64 { return t.set.Len() }

func (t *Trie) check(x int64) error {
	if x < 0 || x >= t.set.U() {
		return &KeyRangeError{Key: x, Universe: t.set.U()}
	}
	return nil
}

// Contains reports whether x is in the set. O(1) worst-case steps.
func (t *Trie) Contains(x int64) (bool, error) {
	if err := t.check(x); err != nil {
		return false, err
	}
	return t.set.Search(x), nil
}

// Insert adds x to the set; inserting a present key is a no-op.
func (t *Trie) Insert(x int64) error {
	if err := t.check(x); err != nil {
		return err
	}
	t.set.Insert(x)
	return nil
}

// Delete removes x from the set; deleting an absent key is a no-op.
func (t *Trie) Delete(x int64) error {
	if err := t.check(x); err != nil {
		return err
	}
	t.set.Delete(x)
	return nil
}

// Predecessor returns the largest key in the set strictly smaller than y,
// or −1 if there is none. Linearizable on the unsharded trie; with
// WithShards, see that option's consistency note for the cross-shard
// degraded case.
func (t *Trie) Predecessor(y int64) (int64, error) {
	if err := t.check(y); err != nil {
		return -1, err
	}
	return t.set.Predecessor(y), nil
}

// Successor returns the smallest key in the set strictly greater than y,
// or −1 if there is none — the upward mirror of Predecessor. The paper's
// announcement machinery is one-directional (toward predecessors), so
// Successor is a composed operation with the Floor/Max/Range family's
// consistency contract: every leg it runs is individually linearizable,
// the composition is weakly consistent under concurrent updates on keys in
// (y, result), and at quiescence the answer is exact. With WithShards the
// owning shard answers directly when it can; otherwise higher shards are
// scanned through the occupancy summary with the same pending/version
// validation (and ScanRetries degradation bound) as the cross-shard
// Predecessor.
func (t *Trie) Successor(y int64) (int64, error) {
	if err := t.check(y); err != nil {
		return -1, err
	}
	return t.set.Successor(y), nil
}

// Ceiling returns the smallest key ≥ x in the set, or −1 if there is none.
// Composed from Contains and Successor, mirroring Floor; linearizable when
// x is not being concurrently removed, weakly consistent otherwise.
func (t *Trie) Ceiling(x int64) (int64, error) {
	if err := t.check(x); err != nil {
		return -1, err
	}
	if t.set.Search(x) {
		return x, nil
	}
	return t.set.Successor(x), nil
}

// Min returns the smallest key in the set, or −1 if the set is empty,
// mirroring Max.
func (t *Trie) Min() (int64, error) {
	return t.Ceiling(0)
}

// Floor returns the largest key ≤ x in the set, or −1 if there is none.
// Composed from Contains and Predecessor; each leg is linearizable, and the
// composition is linearizable when x is not being concurrently removed.
func (t *Trie) Floor(x int64) (int64, error) {
	if err := t.check(x); err != nil {
		return -1, err
	}
	if t.set.Search(x) {
		return x, nil
	}
	return t.set.Predecessor(x), nil
}

// Max returns the largest key in the set, or −1 if the set is empty.
func (t *Trie) Max() (int64, error) {
	return t.Floor(t.set.U() - 1)
}

// Range calls fn on every key in [lo, hi], from the largest down to the
// smallest, stopping early if fn returns false. It is built from
// linearizable Floor/Predecessor steps, so each visited key was present at
// some instant during the scan, but the scan as a whole is weakly
// consistent (like sync.Map.Range): keys inserted or deleted mid-scan may
// or may not be visited. For an atomic snapshot use the versioned trie in
// internal/versioned.
func (t *Trie) Range(lo, hi int64, fn func(key int64) bool) error {
	if err := t.check(lo); err != nil {
		return err
	}
	if err := t.check(hi); err != nil {
		return err
	}
	k, err := t.Floor(hi)
	if err != nil {
		return err
	}
	for k >= lo && k >= 0 {
		if !fn(k) {
			return nil
		}
		if k == 0 {
			return nil
		}
		k = t.set.Predecessor(k)
	}
	return nil
}

// OpKind discriminates the update kinds ApplyBatch accepts.
type OpKind uint8

const (
	// OpInsert adds the key to the set.
	OpInsert OpKind = iota + 1
	// OpDelete removes the key from the set.
	OpDelete
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "Insert"
	case OpDelete:
		return "Delete"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one operation of an ApplyBatch call.
type Op struct {
	Kind OpKind
	Key  int64
}

// ApplyBatch applies a sequence of updates as one batch, for callers that
// already aggregate their writes (an order-book matching cycle, a
// telemetry window flush): the batch pays one announcement pass per
// shard-run instead of one per operation, with or without WithCombining —
// the option only changes how ordinary Insert/Delete calls find their
// batches; pre-batched callers skip the publication slots entirely.
//
// Semantics: ops apply by their FINAL effect per key — for each key, the
// last op in ops wins, exactly as if the sequence had run in order with
// the intermediate states unobserved (the batch's per-key linearization
// points are its update-node activations inside the single announcement
// round; see DESIGN.md §Combining layer). Each surviving op linearizes
// individually, so a batch is NOT an atomic multi-key transaction:
// concurrent readers may observe any prefix-consistent mixture. Invalid
// ops (key out of range, unknown kind) are skipped and reported.
//
// The returned slice is nil when every op was accepted; otherwise it has
// len(ops) entries with errs[i] describing why ops[i] was rejected (nil
// for accepted ops).
func (t *Trie) ApplyBatch(ops []Op) []error {
	if len(ops) == 0 {
		return nil
	}
	var errs []error
	fail := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(ops))
		}
		errs[i] = err
	}
	bops := make([]core.BatchOp, 0, len(ops))
	for i, op := range ops {
		if op.Kind != OpInsert && op.Kind != OpDelete {
			fail(i, fmt.Errorf("lockfreetrie: ApplyBatch op %d: invalid kind %v", i, op.Kind))
			continue
		}
		if err := t.check(op.Key); err != nil {
			fail(i, err)
			continue
		}
		bops = append(bops, core.BatchOp{Key: op.Key, Del: op.Kind == OpDelete})
	}
	if len(bops) > 0 {
		t.set.ApplyBatch(combine.SortDedup(bops))
	}
	return errs
}

// Keys returns the keys in [lo, hi] in ascending order under the same
// weak-consistency contract as Range.
func (t *Trie) Keys(lo, hi int64) ([]int64, error) {
	var out []int64
	err := t.Range(lo, hi, func(k int64) bool {
		out = append(out, k)
		return true
	})
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}
