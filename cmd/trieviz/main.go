// Command trieviz renders binary tries as ASCII art: the interpreted bits
// of every node plus the latest-list state per key. It regenerates the
// paper's structural figures:
//
//	trieviz -fig 1    # Figure 1: sequential trie for S={0,2}, u=4
//	trieviz -fig 5    # Figure 5: lock-free trie representing S={0,1,3}
//	trieviz -u 16 -keys 3,7,12
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/seqtrie"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		fig  = flag.Int("fig", 0, "paper figure to reproduce (1 or 5)")
		u    = flag.Int64("u", 16, "universe size")
		keys = flag.String("keys", "", "comma-separated keys to insert")
	)
	flag.Parse()
	var err error
	switch *fig {
	case 1:
		err = renderSequential(4, []int64{0, 2})
	case 5:
		err = renderLockFree(4, []int64{0, 1, 3})
	case 0:
		var ks []int64
		ks, err = parseKeys(*keys)
		if err == nil {
			err = renderLockFree(*u, ks)
		}
	default:
		err = fmt.Errorf("unknown figure %d (supported: 1, 5)", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trieviz:", err)
		return 1
	}
	return 0
}

func parseKeys(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		k, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad key %q: %w", p, err)
		}
		out = append(out, k)
	}
	return out, nil
}

// checkKeys validates every key against the PADDED universe (the trie
// rounds u up to a power of two), so a bad -keys value is a clean error
// instead of a render-time panic.
func checkKeys(keys []int64, padded int64) error {
	for _, k := range keys {
		if k < 0 || k >= padded {
			return fmt.Errorf("key %d outside universe [0, %d)", k, padded)
		}
	}
	return nil
}

func renderSequential(u int64, keys []int64) error {
	tr, err := seqtrie.New(u)
	if err != nil {
		return err
	}
	if err := checkKeys(keys, tr.U()); err != nil {
		return err
	}
	for _, k := range keys {
		tr.Insert(k)
	}
	fmt.Printf("sequential binary trie, u=%d, S=%v (paper Figure 1)\n\n", tr.U(), keys)
	printLevels(tr.B(), func(i int64) string { return strconv.Itoa(int(tr.Bit(i))) })
	return nil
}

func renderLockFree(u int64, keys []int64) error {
	tr, err := core.New(u)
	if err != nil {
		return err
	}
	if err := checkKeys(keys, tr.U()); err != nil {
		return err
	}
	for _, k := range keys {
		tr.Insert(k)
	}
	fmt.Printf("lock-free binary trie, u=%d, S=%v (paper Figure 5 layout)\n\n", tr.U(), keys)
	bits := tr.Bits()
	printLevels(tr.B(), func(i int64) string {
		return strconv.Itoa(bits.InterpretedBit(i))
	})
	fmt.Println("\nlatest lists (first activated node per key):")
	for k := int64(0); k < tr.U(); k++ {
		state := "DEL (never inserted)"
		if tr.Search(k) {
			state = "INS"
		} else if d := bits.DNodePtr(bits.LeafIndex(k)); d != nil {
			state = d.String()
		}
		fmt.Printf("  latest[%d] -> %s\n", k, state)
	}
	fmt.Printf("\nannouncements: U-ALL=%d P-ALL=%d (quiescent: both 0)\n",
		tr.AnnouncedUpdates(), tr.AnnouncedPredecessors())
	return nil
}

// printLevels renders a heap-indexed perfect binary tree level by level,
// centering each node over its subtree's leaves.
func printLevels(b int, cell func(i int64) string) {
	size := int64(1) << uint(b)
	const leafWidth = 4
	for depth := 0; depth <= b; depth++ {
		count := int64(1) << uint(depth)
		span := leafWidth * int(size/count)
		line := ""
		for j := int64(0); j < count; j++ {
			idx := count + j
			s := cell(idx)
			pad := (span - len(s)) / 2
			line += strings.Repeat(" ", pad) + s + strings.Repeat(" ", span-pad-len(s))
		}
		fmt.Println(strings.TrimRight(line, " "))
	}
}
