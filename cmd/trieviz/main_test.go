package main

import (
	"strings"
	"testing"
)

// TestParseKeys: the -keys flag's edge cases parse (or fail) cleanly.
func TestParseKeys(t *testing.T) {
	cases := []struct {
		in      string
		want    []int64
		wantErr string
	}{
		{in: "", want: nil},
		{in: "3,7,12", want: []int64{3, 7, 12}},
		{in: " 3 , 7 ", want: []int64{3, 7}},
		{in: "0", want: []int64{0}},
		{in: "3,7,", wantErr: "bad key"},                   // trailing comma
		{in: ",3", wantErr: "bad key"},                     // leading comma
		{in: "3,,7", wantErr: "bad key"},                   // empty element
		{in: "3,x,7", wantErr: "bad key"},                  // not a number
		{in: "3.5", wantErr: "bad key"},                    // not an integer
		{in: "9999999999999999999999", wantErr: "bad key"}, // overflow
	}
	for _, c := range cases {
		got, err := parseKeys(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("parseKeys(%q) err = %v, want containing %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseKeys(%q) failed: %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseKeys(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseKeys(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

// TestRenderRejectsOutOfUniverseKeys: a key outside the padded universe
// is a clean error from both renderers, not a render-time panic.
func TestRenderRejectsOutOfUniverseKeys(t *testing.T) {
	for _, k := range []int64{16, 100, -1} {
		if err := renderLockFree(16, []int64{3, k}); err == nil ||
			!strings.Contains(err.Error(), "outside universe") {
			t.Errorf("renderLockFree(u=16, key %d) err = %v, want out-of-universe error", k, err)
		}
		if err := renderSequential(16, []int64{k}); err == nil ||
			!strings.Contains(err.Error(), "outside universe") {
			t.Errorf("renderSequential(u=16, key %d) err = %v, want out-of-universe error", k, err)
		}
	}
	// The boundary itself is legal: u=10 pads to 16, so key 15 renders.
	if err := renderLockFree(10, []int64{15}); err != nil {
		t.Errorf("renderLockFree(u=10→16, key 15) failed: %v", err)
	}
}
