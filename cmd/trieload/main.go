// Command trieload drives a trieserve instance with an open-loop Poisson
// workload (internal/harness.RunOpenLoop over internal/server.Client):
// arrivals fire on a fixed schedule regardless of service speed, each
// connection pipelines up to -window requests, and the exit report
// separates the offered rate from the achieved completion rate — under
// saturation the second number is the server's measured capacity.
//
// Usage:
//
//	trieload -addr localhost:7171 -duration 2s -rate 50000 -conns 4 -u 65536
//
// Exits non-zero if the run errors or (with -minops) fewer than -minops
// operations complete — the CI smoke's assertion hook.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7171", "trieserve address")
		duration = flag.Duration("duration", 2*time.Second, "measured wall-clock window")
		rate     = flag.Float64("rate", 50000, "aggregate offered arrivals per second")
		conns    = flag.Int("conns", 4, "connections (one arrival generator each)")
		window   = flag.Int("window", 64, "max in-flight requests per connection")
		u        = flag.Int64("u", 1<<16, "key universe to draw from")
		mixName  = flag.String("mix", "update-heavy", "operation mix: update-heavy, uniform, pred-heavy")
		seed     = flag.Int64("seed", 1, "workload seed")
		minops   = flag.Int64("minops", 0, "exit non-zero unless at least this many ops complete")
	)
	flag.Parse()
	if err := run(*addr, *duration, *rate, *conns, *window, *u, *mixName, *seed, *minops); err != nil {
		fmt.Fprintln(os.Stderr, "trieload:", err)
		os.Exit(1)
	}
}

func pickMix(name string) (workload.Mix, error) {
	for _, nm := range workload.BenchMixes {
		if nm.Name == name {
			return nm.Mix, nil
		}
	}
	return workload.Mix{}, fmt.Errorf("unknown mix %q", name)
}

func run(addr string, duration time.Duration, rate float64, conns, window int, u int64, mixName string, seed, minops int64) error {
	mix, err := pickMix(mixName)
	if err != nil {
		return err
	}
	clients := make([]*server.Client, conns)
	for i := range clients {
		c, err := server.Dial(addr)
		if err != nil {
			return err
		}
		defer c.Close()
		clients[i] = c
	}
	var failed atomic.Int64
	res, err := harness.RunOpenLoop(harness.OpenLoopConfig{
		Workers:     conns,
		Duration:    duration,
		RatePerSec:  rate,
		Mix:         mix,
		Dist:        workload.Uniform{U: u},
		Seed:        seed,
		MaxInFlight: window,
	}, func(worker int, op workload.Op, done func()) {
		c := clients[worker]
		switch op.Kind {
		case workload.OpInsert, workload.OpDelete:
			c.UpdateAsync(op.Kind == workload.OpInsert, op.Key, func(err error) {
				if err != nil {
					failed.Add(1)
				}
				done()
			})
		case workload.OpSearch:
			_, _ = c.Contains(op.Key)
			done()
		case workload.OpPredecessor:
			_, _ = c.Predecessor(op.Key)
			done()
		default:
			done()
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("trieload: %s mix=%s rate=%.0f/s conns=%d window=%d\n", addr, mixName, rate, conns, window)
	fmt.Printf("trieload: offered %d (%.0f/s) completed %d (%.0f/s) in %v\n",
		res.Offered, res.OfferedPerSec, res.Completed, res.AchievedPerSec, res.Elapsed.Round(time.Millisecond))
	if n := failed.Load(); n > 0 {
		fmt.Printf("trieload: %d update errors\n", n)
	}
	if res.Completed < minops {
		return fmt.Errorf("completed %d ops, need ≥ %d", res.Completed, minops)
	}
	return nil
}
