// Command trieload drives a trieserve instance with an open-loop Poisson
// workload (internal/harness.RunOpenLoop over internal/server.Client):
// arrivals fire on a fixed schedule regardless of service speed, each
// connection pipelines up to -window requests, and the exit report
// separates the offered rate from the achieved completion rate — under
// saturation the second number is the server's measured capacity.
//
// Usage:
//
//	trieload -addr localhost:7171 -duration 2s -rate 50000 -conns 4 -u 65536
//
// Exits non-zero if the run errors or (with -minops) fewer than -minops
// operations complete — the CI smoke's assertion hook.
//
// Two deterministic modes replace the open loop for the crash-recovery
// e2e: -fill N (with -fillfrom) synchronously inserts a key range, each
// insert acknowledged before the next; -verify N (with -verifyfrom)
// checks the range is fully present, exiting non-zero on any miss.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7171", "trieserve address")
		duration = flag.Duration("duration", 2*time.Second, "measured wall-clock window")
		rate     = flag.Float64("rate", 50000, "aggregate offered arrivals per second")
		conns    = flag.Int("conns", 4, "connections (one arrival generator each)")
		window   = flag.Int("window", 64, "max in-flight requests per connection")
		u        = flag.Int64("u", 1<<16, "key universe to draw from")
		mixName  = flag.String("mix", "update-heavy", "operation mix: update-heavy, uniform, pred-heavy")
		seed     = flag.Int64("seed", 1, "workload seed")
		minops   = flag.Int64("minops", 0, "exit non-zero unless at least this many ops complete")

		fill       = flag.Int64("fill", 0, "deterministic mode: synchronously insert keys [-fillfrom, -fill) and exit")
		fillFrom   = flag.Int64("fillfrom", 0, "first key of the -fill range")
		verify     = flag.Int64("verify", 0, "deterministic mode: check keys [-verifyfrom, -verify) are all present and exit non-zero on any miss")
		verifyFrom = flag.Int64("verifyfrom", 0, "first key of the -verify range")
	)
	flag.Parse()
	var err error
	switch {
	case *fill > 0:
		err = runFill(*addr, *fillFrom, *fill)
	case *verify > 0:
		err = runVerify(*addr, *verifyFrom, *verify)
	default:
		err = run(*addr, *duration, *rate, *conns, *window, *u, *mixName, *seed, *minops)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trieload:", err)
		os.Exit(1)
	}
}

// runFill synchronously inserts every key in [from, to) — each insert
// acknowledged before the next is sent, so when it exits every key is
// server-side applied (and, with -data -fsync 1 on the server, on disk).
// The crash-recovery e2e's deterministic writer.
func runFill(addr string, from, to int64) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	for k := from; k < to; k++ {
		if err := c.Insert(k); err != nil {
			return fmt.Errorf("insert %d: %w", k, err)
		}
	}
	fmt.Printf("trieload: filled [%d, %d) — %d keys acknowledged\n", from, to, to-from)
	return nil
}

// runVerify checks every key in [from, to) is present, reporting the
// first miss (non-zero exit). The crash-recovery e2e's checker.
func runVerify(addr string, from, to int64) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	for k := from; k < to; k++ {
		in, err := c.Contains(k)
		if err != nil {
			return fmt.Errorf("contains %d: %w", k, err)
		}
		if !in {
			return fmt.Errorf("key %d missing (verify range [%d, %d))", k, from, to)
		}
	}
	fmt.Printf("trieload: verified [%d, %d) — all %d keys present\n", from, to, to-from)
	return nil
}

func pickMix(name string) (workload.Mix, error) {
	for _, nm := range workload.BenchMixes {
		if nm.Name == name {
			return nm.Mix, nil
		}
	}
	return workload.Mix{}, fmt.Errorf("unknown mix %q", name)
}

func run(addr string, duration time.Duration, rate float64, conns, window int, u int64, mixName string, seed, minops int64) error {
	mix, err := pickMix(mixName)
	if err != nil {
		return err
	}
	clients := make([]*server.Client, conns)
	for i := range clients {
		c, err := server.Dial(addr)
		if err != nil {
			return err
		}
		defer c.Close()
		clients[i] = c
	}
	var failed atomic.Int64
	res, err := harness.RunOpenLoop(harness.OpenLoopConfig{
		Workers:     conns,
		Duration:    duration,
		RatePerSec:  rate,
		Mix:         mix,
		Dist:        workload.Uniform{U: u},
		Seed:        seed,
		MaxInFlight: window,
	}, func(worker int, op workload.Op, done func()) {
		c := clients[worker]
		switch op.Kind {
		case workload.OpInsert, workload.OpDelete:
			c.UpdateAsync(op.Kind == workload.OpInsert, op.Key, func(err error) {
				if err != nil {
					failed.Add(1)
				}
				done()
			})
		case workload.OpSearch:
			_, _ = c.Contains(op.Key)
			done()
		case workload.OpPredecessor:
			_, _ = c.Predecessor(op.Key)
			done()
		default:
			done()
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("trieload: %s mix=%s rate=%.0f/s conns=%d window=%d\n", addr, mixName, rate, conns, window)
	fmt.Printf("trieload: offered %d (%.0f/s) completed %d (%.0f/s) in %v\n",
		res.Offered, res.OfferedPerSec, res.Completed, res.AchievedPerSec, res.Elapsed.Round(time.Millisecond))
	if n := failed.Load(); n > 0 {
		fmt.Printf("trieload: %d update errors\n", n)
	}
	if res.Completed < minops {
		return fmt.Errorf("completed %d ops, need ≥ %d", res.Completed, minops)
	}
	return nil
}
