package main

import (
	"fmt"
	"strconv"

	"repro/internal/obs"
)

// This file is the dashboard's windowing math, kept free of I/O so the
// degenerate polls have unit tests: a zero-length delta window (two
// snapshots with the same timestamp), a histogram absent from /snapshot,
// and a serving process that restarted mid-poll — whose fresh registry
// makes every windowed delta negative — must all render as explicit
// markers, never as a division by zero or a negative rate.

// rateCell formats the per-second rate of one windowed counter delta.
// "-" when there is no window to rate over (cumulative mode, or a window
// of zero or negative length); "reset" when the delta is negative, which
// means the serving process restarted between polls and its counters
// started over.
func rateCell(delta int64, secs float64, windowed bool) string {
	switch {
	case !windowed || secs <= 0:
		return "-"
	case delta < 0:
		return "reset"
	default:
		return fmt.Sprintf("%.0f", float64(delta)/secs)
	}
}

// histRow is one histogram line, pre-formatted: the quantile columns
// carry "-" whenever the reading has no usable mass.
type histRow struct {
	Count, P50, P99, Mean string
}

// histCells reduces one histogram reading to the dashboard's columns. A
// delta spanning a restart goes negative and renders as "reset"; an
// empty reading — including a histogram missing from the snapshot, which
// decodes as the zero value — renders as a zero-count row rather than
// fabricating quantiles.
func histCells(h obs.HistSnapshot) histRow {
	if h.Count < 0 || h.Sum < 0 {
		return histRow{Count: "reset", P50: "-", P99: "-", Mean: "-"}
	}
	if h.Count == 0 {
		return histRow{Count: "0", P50: "-", P99: "-", Mean: "-"}
	}
	return histRow{
		Count: strconv.FormatInt(h.Count, 10),
		P50:   strconv.FormatInt(h.Quantile(0.50), 10),
		P99:   strconv.FormatInt(h.Quantile(0.99), 10),
		Mean:  strconv.FormatInt(h.Sum/h.Count, 10),
	}
}
