package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestRateCell(t *testing.T) {
	cases := []struct {
		name     string
		delta    int64
		secs     float64
		windowed bool
		want     string
	}{
		{"cumulative mode has no rate", 100, 1.0, false, "-"},
		{"zero-length window", 100, 0, true, "-"},
		{"negative window", 100, -0.5, true, "-"},
		{"counter reset mid-window", -42, 1.0, true, "reset"},
		{"ordinary rate", 1500, 2.0, true, "750"},
		{"zero delta", 0, 1.0, true, "0"},
	}
	for _, c := range cases {
		if got := rateCell(c.delta, c.secs, c.windowed); got != c.want {
			t.Errorf("%s: rateCell(%d, %v, %v) = %q, want %q",
				c.name, c.delta, c.secs, c.windowed, got, c.want)
		}
	}
}

func TestHistCells(t *testing.T) {
	t.Run("empty or absent histogram", func(t *testing.T) {
		// An absent histogram decodes as the zero HistSnapshot.
		row := histCells(obs.HistSnapshot{})
		want := histRow{Count: "0", P50: "-", P99: "-", Mean: "-"}
		if row != want {
			t.Fatalf("zero reading: got %+v, want %+v", row, want)
		}
	})
	t.Run("reset window", func(t *testing.T) {
		// A delta across a server restart: fresh counters minus old ones.
		row := histCells(obs.HistSnapshot{Count: -10, Sum: -12345})
		want := histRow{Count: "reset", P50: "-", P99: "-", Mean: "-"}
		if row != want {
			t.Fatalf("reset reading: got %+v, want %+v", row, want)
		}
	})
	t.Run("live histogram", func(t *testing.T) {
		reg := obs.NewRegistry()
		h := reg.Histogram("x")
		for i := 0; i < 100; i++ {
			h.Record(1000)
		}
		snap := reg.Snapshot().Hists["x"]
		row := histCells(snap)
		if row.Count != "100" {
			t.Fatalf("count: got %q, want 100", row.Count)
		}
		if row.Mean != "1000" {
			t.Fatalf("mean: got %q, want 1000", row.Mean)
		}
		if row.P50 == "-" || row.P99 == "-" {
			t.Fatalf("quantiles missing on a populated histogram: %+v", row)
		}
	})
}

// TestRenderDegenerateWindow drives render end to end with the windowed
// snapshot a restart produces — zero-length window, negative counter
// deltas, negative histogram mass — and checks the table degrades to
// markers instead of garbage numbers.
func TestRenderDegenerateWindow(t *testing.T) {
	total := obs.Snapshot{
		Schema:   obs.SchemaName,
		Version:  obs.SchemaVersion,
		Counters: map[string]int64{"ops": 50},
		Hists:    map[string]obs.HistSnapshot{"lat": {Count: 5, Sum: 5000}},
	}
	win := obs.Snapshot{
		WindowNanos: 0,
		Counters:    map[string]int64{"ops": -950},
		Hists:       map[string]obs.HistSnapshot{"lat": {Count: -95, Sum: -1000000}},
	}
	var b strings.Builder
	render(&b, total, win, true)
	out := b.String()
	for _, bad := range []string{"NaN", "Inf", "-950", "-95"} {
		if strings.Contains(out, bad) {
			t.Fatalf("degenerate window rendered %q:\n%s", bad, out)
		}
	}
	// The zero-length window blanks the rates; the negative histogram
	// mass shows as a reset row.
	if !strings.Contains(out, "reset") {
		t.Fatalf("expected a reset marker:\n%s", out)
	}
}
