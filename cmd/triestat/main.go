// Command triestat is a live terminal dashboard for a trie process that
// serves its observability surface (e.g. `triestress -listen :8080`). It
// polls the typed /snapshot endpoint, windows consecutive snapshots with
// Delta, and renders per-second rates plus latency quantiles as a
// refreshing table:
//
//	triestat -addr http://localhost:8080 -interval 1s
//	triestat -addr http://localhost:8080 -once   # one cumulative dump
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "base URL of the process serving /snapshot")
		interval = flag.Duration("interval", time.Second, "polling interval")
		once     = flag.Bool("once", false, "print one cumulative snapshot and exit")
	)
	flag.Parse()
	if err := run(os.Stdout, *addr, *interval, *once); err != nil {
		fmt.Fprintln(os.Stderr, "triestat:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, addr string, interval time.Duration, once bool) error {
	url := strings.TrimRight(addr, "/") + "/snapshot"
	cur, err := fetch(url)
	if err != nil {
		return err
	}
	if once {
		render(w, cur, cur, false)
		return nil
	}
	for {
		time.Sleep(interval)
		next, err := fetch(url)
		if err != nil {
			// A restarting server drops the connection between polls;
			// keep the dashboard up and retry instead of dying. When the
			// process comes back its counters have reset, and the first
			// window across the restart renders as "reset" cells.
			fmt.Fprint(w, "\x1b[H\x1b[2J")
			fmt.Fprintf(w, "poll %s: %v (retrying)\n", url, err)
			continue
		}
		// Home + clear-to-end redraws in place without scrollback spam.
		fmt.Fprint(w, "\x1b[H\x1b[2J")
		render(w, next, next.Delta(cur), true)
		cur = next
	}
}

func fetch(url string) (obs.Snapshot, error) {
	var s obs.Snapshot
	resp, err := http.Get(url)
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return s, fmt.Errorf("decode %s: %w", url, err)
	}
	if s.Schema != obs.SchemaName || s.Version > obs.SchemaVersion {
		return s, fmt.Errorf("endpoint speaks schema %q v%d, this triestat understands %q v%d",
			s.Schema, s.Version, obs.SchemaName, obs.SchemaVersion)
	}
	return s, nil
}

// render writes one table: every counter/gauge with its cumulative value
// and (when windowed) its per-second rate over the delta window, then
// every histogram with windowed count, p50, p99, and mean.
func render(w io.Writer, total, win obs.Snapshot, windowed bool) {
	secs := float64(win.WindowNanos) / 1e9
	if windowed {
		fmt.Fprintf(w, "%s v%d  @ %s  (window %.2fs)\n\n",
			total.Schema, total.Version,
			time.Unix(0, total.UnixNanos).Format("15:04:05"), secs)
	} else {
		fmt.Fprintf(w, "%s v%d  @ %s  (cumulative)\n\n",
			total.Schema, total.Version,
			time.Unix(0, total.UnixNanos).Format("15:04:05"))
	}

	names := make([]string, 0, len(total.Counters))
	for n := range total.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-34s %14s %12s\n", "COUNTER", "TOTAL", "RATE/s")
	for _, n := range names {
		rate := rateCell(win.Counters[n], secs, windowed)
		fmt.Fprintf(w, "%-34s %14d %12s\n", n, total.Counters[n], rate)
	}

	if len(total.Hists) == 0 {
		return
	}
	hnames := make([]string, 0, len(total.Hists))
	for n := range total.Hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	fmt.Fprintf(w, "\n%-34s %10s %10s %10s %10s\n", "HISTOGRAM", "COUNT", "p50", "p99", "mean")
	for _, n := range hnames {
		h := total.Hists[n]
		if windowed {
			h = win.Hists[n] // absent => zero reading; histCells handles it
		}
		row := histCells(h)
		fmt.Fprintf(w, "%-34s %10s %10s %10s %10s\n",
			n, row.Count, row.P50, row.P99, row.Mean)
	}
}
