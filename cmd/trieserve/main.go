// Command trieserve is predecessor-as-a-service: it owns one lock-free
// binary trie and serves it over a length-prefixed TCP binary protocol
// (internal/server). Insert/Delete requests from all connections are
// coalesced into shared Trie.ApplyBatch sweeps — the network mirror of
// the flat-combining layer — while Contains/Predecessor/Successor take
// the direct lock-free path and Range streams in bounded chunks.
//
// Usage:
//
//	trieserve -addr :7171 -metrics :7172 -u 1048576
//
// The metrics address serves the shared observability surface (expvar
// JSON at /debug/vars, Prometheus text at /metrics, the typed schema at
// /snapshot) with the server's own metrics (server.* counters, batch
// size and latency histograms) merged over the trie's; cmd/triestat
// attaches to it directly.
//
// SIGINT/SIGTERM trigger a graceful drain: accepts stop, in-flight
// requests complete and flush, then the process exits; a second signal
// (or -draintimeout) force-closes.
//
// Options mirror the facade: -shards fixes the shard count,
// -adaptmin/-adaptmax enable online resizing over that band, -combining
// enables flat combining inside each shard. -perop disables request
// coalescing (the sv1 baseline).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	lockfreetrie "repro"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":7171", "TCP listen address for the wire protocol")
		metrics = flag.String("metrics", "", "HTTP listen address for /debug/vars, /metrics, /snapshot (empty disables)")
		u       = flag.Int64("u", 1<<20, "key universe size")

		shards    = flag.Int("shards", 0, "fixed shard count (0 = unsharded)")
		adaptMin  = flag.Int("adaptmin", 0, "min shards for online resizing (0 disables; use with -adaptmax)")
		adaptMax  = flag.Int("adaptmax", 0, "max shards for online resizing")
		combining = flag.Bool("combining", false, "enable flat combining inside shards")

		perop        = flag.Bool("perop", false, "apply each update per-op instead of coalescing into ApplyBatch sweeps")
		window       = flag.Int("window", server.DefaultWindow, "per-connection in-flight request window (backpressure bound)")
		maxbatch     = flag.Int("maxbatch", server.DefaultMaxBatch, "max updates per ApplyBatch sweep")
		drainTimeout = flag.Duration("draintimeout", 30*time.Second, "graceful drain deadline before force-close")
	)
	flag.Parse()
	if err := run(*addr, *metrics, *u, *shards, *adaptMin, *adaptMax, *combining, !*perop, *window, *maxbatch, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "trieserve:", err)
		os.Exit(1)
	}
}

func run(addr, metrics string, u int64, shards, adaptMin, adaptMax int, combining, coalesce bool, window, maxbatch int, drainTimeout time.Duration) error {
	var opts []lockfreetrie.Option
	if shards > 0 {
		opts = append(opts, lockfreetrie.WithShards(shards))
	}
	if adaptMin > 0 {
		opts = append(opts, lockfreetrie.WithAdaptiveShards(adaptMin, adaptMax))
	}
	if combining {
		opts = append(opts, lockfreetrie.WithCombining())
	}
	tr, err := lockfreetrie.New(u, opts...)
	if err != nil {
		return err
	}
	srv := server.New(tr, server.Config{
		CoalesceUpdates: coalesce,
		Window:          window,
		MaxBatch:        maxbatch,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mode := "coalescing"
	if !coalesce {
		mode = "per-op"
	}
	fmt.Printf("trieserve: serving u=%d (%s ingest, window %d) on %s\n", u, mode, window, ln.Addr())

	if metrics != "" {
		mln, err := net.Listen("tcp", metrics)
		if err != nil {
			return err
		}
		fmt.Printf("trieserve: metrics on http://%s/{debug/vars,metrics,snapshot}\n", mln.Addr())
		go func() {
			_ = http.Serve(mln, export.NewMux(func() obs.Snapshot { return srv.MetricsSnapshot() }))
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Printf("trieserve: %v — draining (deadline %v)\n", s, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		go func() {
			<-sig
			cancel() // second signal: force-close now
		}()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain aborted: %w", err)
		}
		if err := <-serveErr; err != nil {
			return err
		}
		fmt.Println("trieserve: drained cleanly")
		return nil
	}
}
