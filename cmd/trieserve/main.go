// Command trieserve is predecessor-as-a-service: it owns one lock-free
// binary trie and serves it over a length-prefixed TCP binary protocol
// (internal/server). Insert/Delete requests from all connections are
// coalesced into shared Trie.ApplyBatch sweeps — the network mirror of
// the flat-combining layer — while Contains/Predecessor/Successor take
// the direct lock-free path and Range streams in bounded chunks.
//
// Usage:
//
//	trieserve -addr :7171 -metrics :7172 -u 1048576
//
// The metrics address serves the shared observability surface (expvar
// JSON at /debug/vars, Prometheus text at /metrics, the typed schema at
// /snapshot) with the server's own metrics (server.* counters, batch
// size and latency histograms) merged over the trie's; cmd/triestat
// attaches to it directly.
//
// SIGINT/SIGTERM trigger a graceful drain: accepts stop, in-flight
// requests complete and flush, then the process exits; a second signal
// (or -draintimeout) force-closes.
//
// Options mirror the facade: -shards fixes the shard count,
// -adaptmin/-adaptmax enable online resizing over that band, -combining
// enables flat combining inside each shard. -perop disables request
// coalescing (the sv1 baseline).
//
// -data enables durability: updates append to a per-shard write-ahead
// log under that directory before they apply, and a restart recovers
// the set from the latest snapshot plus log replay (a recovery line is
// printed on start). -fsync/-fsyncinterval pick the sync policy,
// -walshards/-segbytes/-snapbytes the log geometry; POST /wal/snapshot
// on the metrics address forces a checkpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	lockfreetrie "repro"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":7171", "TCP listen address for the wire protocol")
		metrics = flag.String("metrics", "", "HTTP listen address for /debug/vars, /metrics, /snapshot (empty disables)")
		u       = flag.Int64("u", 1<<20, "key universe size")

		shards    = flag.Int("shards", 0, "fixed shard count (0 = unsharded)")
		adaptMin  = flag.Int("adaptmin", 0, "min shards for online resizing (0 disables; use with -adaptmax)")
		adaptMax  = flag.Int("adaptmax", 0, "max shards for online resizing")
		combining = flag.Bool("combining", false, "enable flat combining inside shards")

		perop        = flag.Bool("perop", false, "apply each update per-op instead of coalescing into ApplyBatch sweeps")
		window       = flag.Int("window", server.DefaultWindow, "per-connection in-flight request window (backpressure bound)")
		maxbatch     = flag.Int("maxbatch", server.DefaultMaxBatch, "max updates per ApplyBatch sweep")
		drainTimeout = flag.Duration("draintimeout", 30*time.Second, "graceful drain deadline before force-close")

		data     = flag.String("data", "", "durability directory: WAL + snapshots, recovered on start (empty = in-memory only)")
		fsync    = flag.Int("fsync", 0, "fsync the WAL every n logged ops (0 = library default of 1; needs -data)")
		fsyncInt = flag.Duration("fsyncinterval", 0, "also fsync the WAL at this interval (0 disables; needs -data)")
		walsh    = flag.Int("walshards", 0, "WAL stripe count, power of two (0 = library default; needs -data)")
		segbytes = flag.Int64("segbytes", 0, "WAL segment rotation size in bytes (0 = library default; needs -data)")
		snpbytes = flag.Int64("snapbytes", 0, "bytes logged between automatic snapshots (0 = library default, <0 disables; needs -data)")
	)
	flag.Parse()
	dur := durFlags{dir: *data, fsync: *fsync, fsyncInt: *fsyncInt,
		shards: *walsh, segBytes: *segbytes, snapBytes: *snpbytes}
	if err := run(*addr, *metrics, *u, *shards, *adaptMin, *adaptMax, *combining, !*perop, *window, *maxbatch, *drainTimeout, dur); err != nil {
		fmt.Fprintln(os.Stderr, "trieserve:", err)
		os.Exit(1)
	}
}

// durFlags collects the -data flag family into one durability option.
type durFlags struct {
	dir       string
	fsync     int
	fsyncInt  time.Duration
	shards    int
	segBytes  int64
	snapBytes int64
}

func (d durFlags) option() (lockfreetrie.Option, error) {
	if d.dir == "" {
		if d.fsync != 0 || d.fsyncInt != 0 || d.shards != 0 || d.segBytes != 0 || d.snapBytes != 0 {
			return nil, fmt.Errorf("-fsync/-fsyncinterval/-walshards/-segbytes/-snapbytes need -data")
		}
		return nil, nil
	}
	var opts []lockfreetrie.DurabilityOption
	if d.fsync != 0 {
		opts = append(opts, lockfreetrie.WithSyncEvery(d.fsync))
	}
	if d.fsyncInt != 0 {
		opts = append(opts, lockfreetrie.WithSyncInterval(d.fsyncInt))
	}
	if d.shards != 0 {
		opts = append(opts, lockfreetrie.WithWALShards(d.shards))
	}
	if d.segBytes != 0 {
		opts = append(opts, lockfreetrie.WithSegmentBytes(d.segBytes))
	}
	if d.snapBytes != 0 {
		opts = append(opts, lockfreetrie.WithSnapshotBytes(d.snapBytes))
	}
	return lockfreetrie.WithDurability(d.dir, opts...), nil
}

func run(addr, metrics string, u int64, shards, adaptMin, adaptMax int, combining, coalesce bool, window, maxbatch int, drainTimeout time.Duration, dur durFlags) error {
	var opts []lockfreetrie.Option
	if shards > 0 {
		opts = append(opts, lockfreetrie.WithShards(shards))
	}
	if adaptMin > 0 {
		opts = append(opts, lockfreetrie.WithAdaptiveShards(adaptMin, adaptMax))
	}
	if combining {
		opts = append(opts, lockfreetrie.WithCombining())
	}
	dopt, err := dur.option()
	if err != nil {
		return err
	}
	if dopt != nil {
		opts = append(opts, dopt)
	}
	tr, err := lockfreetrie.New(u, opts...)
	if err != nil {
		return err
	}
	if tr.Durable() {
		rs := tr.RecoveryStats()
		fmt.Printf("trieserve: recovered %d keys from %s (%d snapshot keys + %d replayed ops in %d records, torn tail: %v)\n",
			rs.Keys, dur.dir, rs.SnapshotKeys, rs.ReplayedOps, rs.ReplayedRecords, rs.TornTail)
	}
	srv := server.New(tr, server.Config{
		CoalesceUpdates: coalesce,
		Window:          window,
		MaxBatch:        maxbatch,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mode := "coalescing"
	if !coalesce {
		mode = "per-op"
	}
	fmt.Printf("trieserve: serving u=%d (%s ingest, window %d) on %s\n", u, mode, window, ln.Addr())

	if metrics != "" {
		mln, err := net.Listen("tcp", metrics)
		if err != nil {
			return err
		}
		fmt.Printf("trieserve: metrics on http://%s/{debug/vars,metrics,snapshot}\n", mln.Addr())
		mux := export.NewMux(func() obs.Snapshot { return srv.MetricsSnapshot() })
		if tr.Durable() {
			// POST /wal/snapshot forces a consistent WAL checkpoint — the
			// deterministic hook the crash-recovery e2e uses to guarantee
			// both a snapshot and a post-snapshot log tail exist.
			mux.HandleFunc("/wal/snapshot", func(w http.ResponseWriter, req *http.Request) {
				if err := tr.SnapshotWAL(); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				fmt.Fprintln(w, "ok")
			})
		}
		go func() {
			_ = http.Serve(mln, mux)
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Printf("trieserve: %v — draining (deadline %v)\n", s, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		go func() {
			<-sig
			cancel() // second signal: force-close now
		}()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain aborted: %w", err)
		}
		if err := <-serveErr; err != nil {
			return err
		}
		// Flush and close the WAL only after the drain: every acknowledged
		// update is on disk before the process exits.
		if err := tr.Close(); err != nil {
			return fmt.Errorf("closing trie: %w", err)
		}
		fmt.Println("trieserve: drained cleanly")
		return nil
	}
}
