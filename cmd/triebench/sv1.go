package main

// --- SV1: the batched network front-end vs per-op service ----------------------

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	lockfreetrie "repro"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/workload"
)

// sv1Reps is the default repetition count (-sv1reps overrides); the
// median of per-repetition ratios is reported, run order rotated per
// repetition, for the same host-load-drift reasons as ad1/rs1.
const sv1Reps = 3

// sv1 fixed shape: enough connections to keep the batcher fed, the
// server's default window, a half-full 2^16 universe.
const (
	sv1Universe = int64(1 << 16)
	sv1Conns    = 8
	sv1Window   = 256
)

// sv1Side is one ingest mode's measurement: a closed-loop phase (each
// worker issues the next update when the previous returns) and an
// open-loop phase (Poisson arrivals at a rate shared by BOTH modes —
// 8× the faster mode's closed rate, firmly past saturation — so the
// achieved completion rate measures each server's capacity under an
// identical offered load; deriving each mode's rate from its own
// closed phase would hand the slower mode a lighter test). The margin
// is 8× because the closed rate is a serial per-round-trip measure
// while the pipelined servers complete several times that; the window
// bound keeps an over-offered client from unbounded queueing either
// way. Latency
// quantiles come from the server's own update histogram over the
// open-loop window, read through the interpolated obs Quantile — the
// p999 is a quarter-octave estimate, not a ≤2× bound.
type sv1Side struct {
	ClosedOpsPerSec    float64 `json:"closed_ops_per_sec"`
	OpenOfferedPerSec  float64 `json:"open_offered_per_sec"`
	OpenAchievedPerSec float64 `json:"open_achieved_per_sec"`
	P50Ns              int64   `json:"p50_ns"`
	P99Ns              int64   `json:"p99_ns"`
	P999Ns             int64   `json:"p999_ns"`
	Sweeps             int64   `json:"sweeps"`
	MeanBatch          float64 `json:"mean_batch"`
}

// sv1ProcPoint is one GOMAXPROCS setting's batched-vs-per-op pair.
type sv1ProcPoint struct {
	hostTopology
	Batched sv1Side `json:"batched"`
	PerOp   sv1Side `json:"per_op"`
	// Gates are medians of per-repetition back-to-back ratios
	// batched/per-op (run order rotated per rep). The acceptance gate is
	// the open-loop one ≥ 1.2 on the update-heavy mix: coalescing has to
	// buy at least 20% capacity to earn its queueing delay.
	GateOpenBatchedVsPerOp   float64 `json:"gate_open_batched_vs_per_op"`
	GateClosedBatchedVsPerOp float64 `json:"gate_closed_batched_vs_per_op"`
}

// sv1Report is the BENCH_sv1.json artifact. Top-level fields mirror the
// first swept P (the compat row).
type sv1Report struct {
	Experiment string         `json:"experiment"`
	Timestamp  string         `json:"timestamp"`
	GoMaxProcs int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Universe   int64          `json:"universe"`
	Conns      int            `json:"conns"`
	Window     int            `json:"window"`
	ClosedOps  int            `json:"closed_ops"`
	OpenDurMS  int64          `json:"open_duration_ms"`
	Reps       int            `json:"reps_median_of"`
	Mix        string         `json:"mix"`
	Batched    sv1Side        `json:"batched"`
	PerOp      sv1Side        `json:"per_op"`
	Points     []sv1ProcPoint `json:"proc_points"`

	GateOpenBatchedVsPerOp   float64 `json:"gate_open_batched_vs_per_op"`
	GateClosedBatchedVsPerOp float64 `json:"gate_closed_batched_vs_per_op"`
}

// expSV1: the server's request-coalescing claim, measured over real
// sockets. Two identical servers — one batching updates into shared
// ApplyBatch sweeps, one applying per-op on each connection's reader —
// each driven closed-loop (throughput when clients wait) and open-loop
// (Poisson arrivals past saturation: capacity and latency under load,
// the regime Malek's methodology report argues closed loops cannot
// measure). Update-heavy mix; both sides of a repetition run
// back-to-back with rotated order, and the gate is the median of
// per-rep ratios, like every other trajectory gate. Writes BENCH_sv1.json
// unless -sv1json is empty.
func expSV1(inv invocation) error {
	reps, jsonPath, dur := inv.serverReps, inv.serverPath, inv.serverDur
	if reps < 1 {
		reps = 1
	}
	closedOps := inv.ops
	if closedOps < 8000 {
		closedOps = 8000
	}
	procs, err := inv.procs()
	if err != nil {
		return err
	}
	fmt.Printf("== SV1: batched vs per-op server ingest (update-heavy, %d conns, open-loop %v) ==\n",
		sv1Conns, dur)
	report := sv1Report{
		Experiment: "sv1-server",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Universe:   sv1Universe,
		Conns:      sv1Conns,
		Window:     sv1Window,
		ClosedOps:  closedOps,
		OpenDurMS:  dur.Milliseconds(),
		Reps:       reps,
		Mix:        "update-heavy",
	}
	variants := []bool{true, false} // coalesce?
	if err := perP(procs, func(p int) error {
		pt := sv1ProcPoint{hostTopology: topologyAt(p)}
		samples := map[bool][]sv1Side{}
		var openRatios, closedRatios []float64
		for rep := 0; rep < reps; rep++ {
			repSides := map[bool]sv1Side{}
			// Phase A: closed loop, both modes back-to-back (rotated).
			for j := range variants {
				coalesce := variants[(rep+j)%len(variants)]
				closed, err := sv1Closed(coalesce, closedOps, inv.seed+int64(rep))
				if err != nil {
					return err
				}
				repSides[coalesce] = sv1Side{ClosedOpsPerSec: closed}
			}
			// Phase B: open loop at one shared offered rate — 8× the
			// FASTER mode's closed rate, so both modes saturate under
			// the same load.
			rate := 8 * repSides[true].ClosedOpsPerSec
			if r := 8 * repSides[false].ClosedOpsPerSec; r > rate {
				rate = r
			}
			for j := range variants {
				coalesce := variants[(rep+j)%len(variants)]
				side, err := sv1Open(coalesce, rate, dur, inv.seed+int64(rep))
				if err != nil {
					return err
				}
				side.ClosedOpsPerSec = repSides[coalesce].ClosedOpsPerSec
				repSides[coalesce] = side
				samples[coalesce] = append(samples[coalesce], side)
			}
			if t := repSides[false].OpenAchievedPerSec; t > 0 {
				openRatios = append(openRatios, repSides[true].OpenAchievedPerSec/t)
			}
			if t := repSides[false].ClosedOpsPerSec; t > 0 {
				closedRatios = append(closedRatios, repSides[true].ClosedOpsPerSec/t)
			}
		}
		medianSide := func(sides []sv1Side) sv1Side {
			var cl, of, ac, p50, p99, p999, sw, mb []float64
			for _, s := range sides {
				cl = append(cl, s.ClosedOpsPerSec)
				of = append(of, s.OpenOfferedPerSec)
				ac = append(ac, s.OpenAchievedPerSec)
				p50 = append(p50, float64(s.P50Ns))
				p99 = append(p99, float64(s.P99Ns))
				p999 = append(p999, float64(s.P999Ns))
				sw = append(sw, float64(s.Sweeps))
				mb = append(mb, s.MeanBatch)
			}
			return sv1Side{
				ClosedOpsPerSec: median(cl), OpenOfferedPerSec: median(of), OpenAchievedPerSec: median(ac),
				P50Ns: int64(median(p50)), P99Ns: int64(median(p99)), P999Ns: int64(median(p999)),
				Sweeps: int64(median(sw)), MeanBatch: median(mb),
			}
		}
		pt.Batched = medianSide(samples[true])
		pt.PerOp = medianSide(samples[false])
		pt.GateOpenBatchedVsPerOp = median(openRatios)
		pt.GateClosedBatchedVsPerOp = median(closedRatios)
		tab := harness.NewTable("ingest", "closed ops/s", "open achieved/s", "p50 µs", "p99 µs", "p999 µs", "mean batch")
		for _, side := range []struct {
			name string
			s    sv1Side
		}{{"batched", pt.Batched}, {"per-op", pt.PerOp}} {
			tab.AddRow(side.name, side.s.ClosedOpsPerSec, side.s.OpenAchievedPerSec,
				float64(side.s.P50Ns)/1e3, float64(side.s.P99Ns)/1e3, float64(side.s.P999Ns)/1e3,
				side.s.MeanBatch)
		}
		fmt.Println(tab)
		fmt.Printf("batched vs per-op, open-loop capacity (median of per-rep ratios): %.3f\n", pt.GateOpenBatchedVsPerOp)
		fmt.Printf("batched vs per-op, closed-loop throughput (median of per-rep ratios): %.3f\n\n", pt.GateClosedBatchedVsPerOp)
		report.Points = append(report.Points, pt)
		return nil
	}); err != nil {
		return err
	}
	report.GoMaxProcs = report.Points[0].GoMaxProcs
	report.NumCPU = report.Points[0].NumCPU
	report.Batched = report.Points[0].Batched
	report.PerOp = report.Points[0].PerOp
	report.GateOpenBatchedVsPerOp = report.Points[0].GateOpenBatchedVsPerOp
	report.GateClosedBatchedVsPerOp = report.Points[0].GateClosedBatchedVsPerOp
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", jsonPath)
	return nil
}

// sv1Session is one live server + client set: fresh half-full trie,
// real TCP listener, sv1Conns dialed clients. close tears it down by a
// graceful drain.
type sv1Session struct {
	srv     *server.Server
	clients []*server.Client
}

func sv1NewSession(coalesce bool) (*sv1Session, func(), error) {
	// Each phase builds (and abandons) a fully-populated trie; collect the
	// previous phase's garbage NOW so a phase's GC debt is its own, not a
	// tax on whichever phase happens to run after it — on small hosts that
	// carryover is big enough to bias the back-to-back ratios.
	runtime.GC()
	tr, err := lockfreetrie.New(sv1Universe)
	if err != nil {
		return nil, nil, err
	}
	for k := int64(0); k < sv1Universe; k += 2 {
		if err := tr.Insert(k); err != nil {
			return nil, nil, err
		}
	}
	srv := server.New(tr, server.Config{CoalesceUpdates: coalesce, Window: sv1Window})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	s := &sv1Session{srv: srv, clients: make([]*server.Client, sv1Conns)}
	teardown := func() {
		for _, c := range s.clients {
			if c != nil {
				c.Close()
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	}
	for i := range s.clients {
		c, err := server.Dial(ln.Addr().String())
		if err != nil {
			teardown()
			return nil, nil, err
		}
		s.clients[i] = c
	}
	return s, teardown, nil
}

// sv1Closed measures one mode's closed-loop throughput: each connection
// issues its next update when the previous one returns — the system
// sets its own pace.
func sv1Closed(coalesce bool, closedOps int, seed int64) (float64, error) {
	s, teardown, err := sv1NewSession(coalesce)
	if err != nil {
		return 0, err
	}
	defer teardown()
	perWorker := closedOps / sv1Conns
	streams := make([][]workload.Op, sv1Conns)
	for w := range streams {
		gen, err := workload.NewGenerator(workload.MixUpdateOnly, workload.Uniform{U: sv1Universe}, seed+int64(w))
		if err != nil {
			return 0, err
		}
		streams[w] = gen.Fill(perWorker)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, sv1Conns)
	for w := 0; w < sv1Conns; w++ {
		wg.Add(1)
		go func(c *server.Client, ops []workload.Op) {
			defer wg.Done()
			<-start
			for _, op := range ops {
				var err error
				if op.Kind == workload.OpInsert {
					err = c.Insert(op.Key)
				} else {
					err = c.Delete(op.Key)
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(s.clients[w], streams[w])
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	closedElapsed := time.Since(t0)
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return float64(perWorker*sv1Conns) / closedElapsed.Seconds(), nil
}

// sv1Open measures one mode's open-loop capacity at the caller-fixed
// offered rate (Poisson arrivals fire on schedule regardless of
// service speed): completions/sec is the capacity, and the latency
// histogram shows queueing, not idling.
func sv1Open(coalesce bool, rate float64, dur time.Duration, seed int64) (sv1Side, error) {
	var side sv1Side
	s, teardown, err := sv1NewSession(coalesce)
	if err != nil {
		return side, err
	}
	defer teardown()
	pre := s.srv.MetricsSnapshot()
	res, err := harness.RunOpenLoop(harness.OpenLoopConfig{
		Workers:     sv1Conns,
		Duration:    dur,
		RatePerSec:  rate,
		Mix:         workload.MixUpdateOnly,
		Dist:        workload.Uniform{U: sv1Universe},
		Seed:        seed,
		MaxInFlight: sv1Window,
	}, func(worker int, op workload.Op, done func()) {
		s.clients[worker].UpdateAsync(op.Kind == workload.OpInsert, op.Key, func(error) { done() })
	})
	if err != nil {
		return side, err
	}
	post := s.srv.MetricsSnapshot()
	side.OpenOfferedPerSec = res.OfferedPerSec
	side.OpenAchievedPerSec = res.AchievedPerSec
	lat := post.Hists["server.latency.update_ns"].Delta(pre.Hists["server.latency.update_ns"])
	side.P50Ns = lat.Quantile(0.50)
	side.P99Ns = lat.Quantile(0.99)
	side.P999Ns = lat.Quantile(0.999)
	side.Sweeps = post.Counters["server.batch.sweeps"] - pre.Counters["server.batch.sweeps"]
	if side.Sweeps > 0 {
		batched := post.Counters["server.ops.update.batched"] - pre.Counters["server.ops.update.batched"]
		side.MeanBatch = float64(batched) / float64(side.Sweeps)
	}
	return side, nil
}
