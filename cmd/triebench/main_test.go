package main

import (
	"runtime"
	"strings"
	"testing"
)

// testInvocation is the minimal invocation the registry tests drive run()
// with: tiny op budget, every artifact path disabled.
func testInvocation() invocation {
	return invocation{
		ops: 1000, workers: 1, seed: 1, shards: 16,
		combineReps: 1, adaptiveReps: 1, resizeReps: 1, cacheReps: 1, multicoreReps: 1,
	}
}

// TestRunUnknownExperimentFails: a typo'd -experiment id must surface an
// error (main exits non-zero on it), never silently run nothing — the CI
// experiment steps depend on a bad id failing the step loudly. The error
// must also name the valid ids, so the typo is a one-glance fix.
func TestRunUnknownExperimentFails(t *testing.T) {
	err := run("cbl", testInvocation())
	if err == nil {
		t.Fatal(`run("cbl") returned nil for an unknown experiment id`)
	}
	if !strings.Contains(err.Error(), `unknown experiment "cbl"`) {
		t.Fatalf("error %q does not name the unknown id", err)
	}
	for _, id := range experimentIDs() {
		if !strings.Contains(err.Error(), id) {
			t.Fatalf("error %q does not list valid id %q", err, id)
		}
	}
}

// TestExperimentRegistryMatchesIDs: the advertised id list and the runner
// table cannot drift apart — every advertised id (except the "all" meta
// id) has a runner, and every runner is advertised.
func TestExperimentRegistryMatchesIDs(t *testing.T) {
	runners := runnersFor(testInvocation())
	advertised := map[string]bool{}
	for _, id := range experimentIDs() {
		advertised[id] = true
		if id == "all" {
			continue
		}
		if _, ok := runners[id]; !ok {
			t.Errorf("advertised experiment %q has no runner", id)
		}
	}
	for id := range runners {
		if !advertised[id] {
			t.Errorf("runner %q is not in experimentIDs", id)
		}
	}
}

// TestEmptyExperimentFails: the empty string is not a silent no-op either.
func TestEmptyExperimentFails(t *testing.T) {
	if err := run("", testInvocation()); err == nil {
		t.Fatal(`run("") returned nil`)
	}
}

// TestRunRejectsBadGomaxprocs: a malformed -gomaxprocs list must fail the
// run up front, before any experiment burns minutes of measurement time.
func TestRunRejectsBadGomaxprocs(t *testing.T) {
	for _, bad := range []string{"0", "-1", "1,x", "1,,4", "four"} {
		inv := testInvocation()
		inv.gomaxprocs = bad
		if err := run("c1", inv); err == nil {
			t.Errorf("run with -gomaxprocs %q succeeded", bad)
		}
	}
}

// TestParseGomaxprocs: the sweep parser keeps order, collapses
// duplicates, and resolves the empty string to the current setting.
func TestParseGomaxprocs(t *testing.T) {
	got, err := parseGomaxprocs("1, 4,8,4")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("parseGomaxprocs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseGomaxprocs = %v, want %v", got, want)
		}
	}
	cur, err := parseGomaxprocs("")
	if err != nil {
		t.Fatal(err)
	}
	if len(cur) != 1 || cur[0] != runtime.GOMAXPROCS(0) {
		t.Fatalf("parseGomaxprocs(\"\") = %v, want [%d]", cur, runtime.GOMAXPROCS(0))
	}
}

// TestPerPRestoresSetting: the sweep helper must hand each requested P to
// the callback and leave GOMAXPROCS where it found it — a leaked setting
// would silently skew every later measurement in the same process.
func TestPerPRestoresSetting(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	var seen []int
	err := perP([]int{1, 2}, func(p int) error {
		if got := runtime.GOMAXPROCS(0); got != p {
			t.Errorf("callback at p=%d sees GOMAXPROCS=%d", p, got)
		}
		seen = append(seen, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("perP visited %v, want [1 2]", seen)
	}
	if got := runtime.GOMAXPROCS(0); got != orig {
		t.Fatalf("perP left GOMAXPROCS=%d, want %d restored", got, orig)
	}
}

// TestTopologyAt: every trajectory point must carry enough metadata to
// distinguish real parallelism from single-core timeslicing.
func TestTopologyAt(t *testing.T) {
	topo := topologyAt(runtime.NumCPU() + 1)
	if !topo.Oversubscribed {
		t.Error("P above NumCPU not flagged oversubscribed")
	}
	if topo.NumCPU != runtime.NumCPU() || topo.GOOS != runtime.GOOS || topo.GOARCH != runtime.GOARCH {
		t.Errorf("topology %+v does not describe this host", topo)
	}
	if topologyAt(1).Oversubscribed {
		t.Error("P=1 flagged oversubscribed")
	}
}

// TestCC1VacuousGateRefusesAllOnes: when every key has ever been inserted
// the occupancy summary is all-ones, no descent can skip anything, and a
// compression gate measured there is vacuous. The guard must refuse (main
// exits non-zero on the error) with a message naming the condition; a
// sparse prefill must pass.
func TestCC1VacuousGateRefusesAllOnes(t *testing.T) {
	dense := mustTrie(256)
	for k := int64(0); k < 256; k++ {
		dense.Insert(k)
	}
	err := cc1VacuousGate(dense.Bits())
	if err == nil {
		t.Fatal("cc1VacuousGate accepted an all-ones summary")
	}
	if !strings.Contains(err.Error(), "vacuous") {
		t.Fatalf("error %q does not explain the gate is vacuous", err)
	}

	sparse := mustTrie(256)
	for k := int64(0); k < 256; k += 64 {
		sparse.Insert(k)
	}
	if err := cc1VacuousGate(sparse.Bits()); err != nil {
		t.Fatalf("cc1VacuousGate rejected a sparse prefill: %v", err)
	}
}
