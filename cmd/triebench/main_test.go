package main

import (
	"strings"
	"testing"
)

// TestRunUnknownExperimentFails: a typo'd -experiment id must surface an
// error (main exits non-zero on it), never silently run nothing — the CI
// experiment steps depend on a bad id failing the step loudly. The error
// must also name the valid ids, so the typo is a one-glance fix.
func TestRunUnknownExperimentFails(t *testing.T) {
	err := run("cbl", 1000, 1, 1, 16, "", "", "", 1, "", 1, "", 1, "", 1)
	if err == nil {
		t.Fatal(`run("cbl") returned nil for an unknown experiment id`)
	}
	if !strings.Contains(err.Error(), `unknown experiment "cbl"`) {
		t.Fatalf("error %q does not name the unknown id", err)
	}
	for _, id := range experimentIDs() {
		if !strings.Contains(err.Error(), id) {
			t.Fatalf("error %q does not list valid id %q", err, id)
		}
	}
}

// TestExperimentRegistryMatchesIDs: the advertised id list and the runner
// table cannot drift apart — every advertised id (except the "all" meta
// id) has a runner, and every runner is advertised.
func TestExperimentRegistryMatchesIDs(t *testing.T) {
	runners := runnersFor(16, "", "", "", 1, "", 1, "", 1, "", 1)
	advertised := map[string]bool{}
	for _, id := range experimentIDs() {
		advertised[id] = true
		if id == "all" {
			continue
		}
		if _, ok := runners[id]; !ok {
			t.Errorf("advertised experiment %q has no runner", id)
		}
	}
	for id := range runners {
		if !advertised[id] {
			t.Errorf("runner %q is not in experimentIDs", id)
		}
	}
}

// TestEmptyExperimentFails: the empty string is not a silent no-op either.
func TestEmptyExperimentFails(t *testing.T) {
	if err := run("", 1000, 1, 1, 16, "", "", "", 1, "", 1, "", 1, "", 1); err == nil {
		t.Fatal(`run("") returned nil`)
	}
}

// TestCC1VacuousGateRefusesAllOnes: when every key has ever been inserted
// the occupancy summary is all-ones, no descent can skip anything, and a
// compression gate measured there is vacuous. The guard must refuse (main
// exits non-zero on the error) with a message naming the condition; a
// sparse prefill must pass.
func TestCC1VacuousGateRefusesAllOnes(t *testing.T) {
	dense := mustTrie(256)
	for k := int64(0); k < 256; k++ {
		dense.Insert(k)
	}
	err := cc1VacuousGate(dense.Bits())
	if err == nil {
		t.Fatal("cc1VacuousGate accepted an all-ones summary")
	}
	if !strings.Contains(err.Error(), "vacuous") {
		t.Fatalf("error %q does not explain the gate is vacuous", err)
	}

	sparse := mustTrie(256)
	for k := int64(0); k < 256; k += 64 {
		sparse.Insert(k)
	}
	if err := cc1VacuousGate(sparse.Bits()); err != nil {
		t.Fatalf("cc1VacuousGate rejected a sparse prefill: %v", err)
	}
}
