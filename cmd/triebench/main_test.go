package main

import (
	"strings"
	"testing"
)

// TestRunUnknownExperimentFails: a typo'd -experiment id must surface an
// error (main exits non-zero on it), never silently run nothing — the CI
// experiment steps depend on a bad id failing the step loudly. The error
// must also name the valid ids, so the typo is a one-glance fix.
func TestRunUnknownExperimentFails(t *testing.T) {
	err := run("cbl", 1000, 1, 1, 16, "", "", "", 1, "", 1, "", 1)
	if err == nil {
		t.Fatal(`run("cbl") returned nil for an unknown experiment id`)
	}
	if !strings.Contains(err.Error(), `unknown experiment "cbl"`) {
		t.Fatalf("error %q does not name the unknown id", err)
	}
	for _, id := range experimentIDs() {
		if !strings.Contains(err.Error(), id) {
			t.Fatalf("error %q does not list valid id %q", err, id)
		}
	}
}

// TestExperimentRegistryMatchesIDs: the advertised id list and the runner
// table cannot drift apart — every advertised id (except the "all" meta
// id) has a runner, and every runner is advertised.
func TestExperimentRegistryMatchesIDs(t *testing.T) {
	runners := runnersFor(16, "", "", "", 1, "", 1, "", 1)
	advertised := map[string]bool{}
	for _, id := range experimentIDs() {
		advertised[id] = true
		if id == "all" {
			continue
		}
		if _, ok := runners[id]; !ok {
			t.Errorf("advertised experiment %q has no runner", id)
		}
	}
	for id := range runners {
		if !advertised[id] {
			t.Errorf("runner %q is not in experimentIDs", id)
		}
	}
}

// TestEmptyExperimentFails: the empty string is not a silent no-op either.
func TestEmptyExperimentFails(t *testing.T) {
	if err := run("", 1000, 1, 1, 16, "", "", "", 1, "", 1, "", 1); err == nil {
		t.Fatal(`run("") returned nil`)
	}
}
