// Command triebench drives the experiment sweeps of EXPERIMENTS.md and
// prints one table per experiment, mirroring the benchmark suite in
// bench_test.go but with explicit parameter sweeps and a fixed op budget so
// runs are comparable across machines.
//
// Usage:
//
//	triebench -experiment all
//	triebench -experiment c5 -ops 200000 -workers 4
//	triebench -experiment s1 -shards 16 -json BENCH_shards.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	lockfreetrie "repro"
	"repro/internal/adapt"
	"repro/internal/bitstrie"
	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/efrb"
	"repro/internal/harness"
	"repro/internal/locktrie"
	"repro/internal/relaxed"
	"repro/internal/resize"
	"repro/internal/sharded"
	"repro/internal/skiplist"
	"repro/internal/versioned"
	"repro/internal/workload"
)

func main() {
	var (
		experiment    = flag.String("experiment", "all", "experiment id: c1,c2,c3,c4,c5,c6,c7,a1,a2,a3,s1,cb1,ad1,rs1,cc1,mp1,ob1,sv1,wl1, or all (the paper-claim sweeps c1–a2; s1, a3, cb1, ad1, rs1, cc1, mp1, ob1, sv1 and wl1 run only when named, since they rewrite their recorded trajectory artifacts; the combining experiment is cb1 because c1 is the paper's C1 Search-cost claim)")
		ops           = flag.Int("ops", 100000, "operations per measurement")
		workers       = flag.Int("workers", 4, "default worker count")
		seed          = flag.Int64("seed", 1, "workload seed")
		shards        = flag.Int("shards", 16, "high shard count for the s1 sharding sweep and the a3 sharded variant")
		gomaxprocs    = flag.String("gomaxprocs", "", "comma-separated GOMAXPROCS sweep for the trajectory experiments (e.g. 1,4,8); empty keeps the current setting (mp1 defaults to 1,4,8)")
		jsonPath      = flag.String("json", "BENCH_shards.json", "s1 trajectory output path (empty disables)")
		allocsPath    = flag.String("allocsjson", "BENCH_allocs.json", "a3 trajectory output path (empty disables)")
		combinePath   = flag.String("combinejson", "BENCH_combine.json", "cb1 trajectory output path (empty disables)")
		combineReps   = flag.Int("cb1reps", cb1Reps, "cb1 repetitions per configuration (median reported; CI smoke uses 1)")
		adaptivePath  = flag.String("adaptivejson", "BENCH_adaptive.json", "ad1 trajectory output path (empty disables)")
		adaptiveReps  = flag.Int("ad1reps", ad1Reps, "ad1 repetitions per configuration (median reported; CI smoke uses 1)")
		resizePath    = flag.String("resizejson", "BENCH_resize.json", "rs1 trajectory output path (empty disables)")
		resizeReps    = flag.Int("rs1reps", rs1Reps, "rs1 repetitions per configuration (median reported; CI smoke uses 1)")
		cachePath     = flag.String("cachejson", "BENCH_cache.json", "cc1 trajectory output path (empty disables)")
		cacheReps     = flag.Int("cc1reps", cc1Reps, "cc1 repetitions per configuration (median reported; CI smoke uses 1)")
		multicorePath = flag.String("multicorejson", "BENCH_multicore.json", "mp1 trajectory output path (empty disables)")
		multicoreReps = flag.Int("mp1reps", mp1Reps, "mp1 repetitions per configuration (median reported; CI smoke uses 1)")
		obsPath       = flag.String("obsjson", "BENCH_obs.json", "ob1 trajectory output path (empty disables)")
		obsReps       = flag.Int("ob1reps", ob1Reps, "ob1 repetitions per configuration (median reported; CI smoke uses 1)")
		serverPath    = flag.String("sv1json", "BENCH_sv1.json", "sv1 trajectory output path (empty disables)")
		serverReps    = flag.Int("sv1reps", sv1Reps, "sv1 repetitions per configuration (median reported; CI smoke uses 1)")
		serverDur     = flag.Duration("sv1dur", 1500*time.Millisecond, "sv1 open-loop measurement window per side per rep")
		walPath       = flag.String("waljson", "BENCH_wal.json", "wl1 trajectory output path (empty disables)")
		walReps       = flag.Int("wl1reps", wl1Reps, "wl1 repetitions per configuration (median reported; CI smoke uses 1)")
	)
	flag.Parse()
	inv := invocation{
		ops: *ops, workers: *workers, seed: *seed, shards: *shards,
		gomaxprocs: *gomaxprocs,
		jsonPath:   *jsonPath, allocsPath: *allocsPath,
		combinePath: *combinePath, combineReps: *combineReps,
		adaptivePath: *adaptivePath, adaptiveReps: *adaptiveReps,
		resizePath: *resizePath, resizeReps: *resizeReps,
		cachePath: *cachePath, cacheReps: *cacheReps,
		multicorePath: *multicorePath, multicoreReps: *multicoreReps,
		obsPath: *obsPath, obsReps: *obsReps,
		serverPath: *serverPath, serverReps: *serverReps, serverDur: *serverDur,
		walPath: *walPath, walReps: *walReps,
	}
	if err := run(*experiment, inv); err != nil {
		fmt.Fprintln(os.Stderr, "triebench:", err)
		os.Exit(1)
	}
}

// invocation carries one triebench run's parameters: the shared workload
// knobs, the GOMAXPROCS sweep, and each trajectory experiment's artifact
// path and repetition count.
type invocation struct {
	ops     int
	workers int
	seed    int64
	shards  int
	// gomaxprocs is the raw -gomaxprocs value: a comma-separated list of
	// GOMAXPROCS settings every trajectory experiment re-measures each of
	// its configurations under. Empty means "the current setting only",
	// except mp1, whose whole point is the P sweep (default 1,4,8).
	gomaxprocs    string
	jsonPath      string
	allocsPath    string
	combinePath   string
	combineReps   int
	adaptivePath  string
	adaptiveReps  int
	resizePath    string
	resizeReps    int
	cachePath     string
	cacheReps     int
	multicorePath string
	multicoreReps int
	obsPath       string
	obsReps       int
	serverPath    string
	serverReps    int
	serverDur     time.Duration
	walPath       string
	walReps       int
}

// procs resolves the -gomaxprocs sweep; empty means the current setting.
func (inv invocation) procs() ([]int, error) {
	return parseGomaxprocs(inv.gomaxprocs)
}

// procsDefault resolves the sweep with an experiment-specific default for
// the empty flag (mp1 sweeps 1,4,8 unless told otherwise).
func (inv invocation) procsDefault(def []int) ([]int, error) {
	if strings.TrimSpace(inv.gomaxprocs) == "" {
		return def, nil
	}
	return parseGomaxprocs(inv.gomaxprocs)
}

// parseGomaxprocs parses a comma-separated GOMAXPROCS list. Entries must
// be positive integers; duplicates collapse (re-measuring the same P
// twice would only double the runtime, not the information). An empty
// string resolves to the process's current setting, preserving the
// single-P behaviour of every pre-sweep invocation.
func parseGomaxprocs(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return []int{runtime.GOMAXPROCS(0)}, nil
	}
	var procs []int
	seen := map[int]bool{}
	for _, field := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || p <= 0 {
			return nil, fmt.Errorf("-gomaxprocs %q: %q is not a positive integer", s, field)
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		procs = append(procs, p)
	}
	return procs, nil
}

// hostTopology is the per-point parallelism metadata every multi-P
// trajectory point carries: the GOMAXPROCS it was measured under plus
// what the host actually offers, so a reader (or the CI host-shape
// guard) can tell a true 8-core measurement from 8-way timeslicing on
// one core. Oversubscribed flags the latter: P above NumCPU is a legal
// and useful setting — it exercises the preemption-driven interleavings
// single-P runs cannot reach — but its throughput numbers measure
// scheduler pressure, not parallel speedup.
type hostTopology struct {
	GoMaxProcs     int    `json:"gomaxprocs"`
	NumCPU         int    `json:"num_cpu"`
	GOOS           string `json:"goos"`
	GOARCH         string `json:"goarch"`
	Oversubscribed bool   `json:"oversubscribed"`
}

// topologyAt describes the host at GOMAXPROCS=p.
func topologyAt(p int) hostTopology {
	return hostTopology{
		GoMaxProcs:     p,
		NumCPU:         runtime.NumCPU(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		Oversubscribed: p > runtime.NumCPU(),
	}
}

// perP runs f once per requested GOMAXPROCS setting and restores the
// original value afterwards. The setting applies process-wide, so the
// sweep is strictly sequential — each point must finish (and its worker
// goroutines exit) before the next setting takes effect.
func perP(procs []int, f func(p int) error) error {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		if len(procs) > 1 {
			fmt.Printf("-- GOMAXPROCS=%d (NumCPU=%d) --\n", p, runtime.NumCPU())
		}
		if err := f(p); err != nil {
			return err
		}
	}
	return nil
}

// experimentIDs lists every runnable -experiment id, for the unknown-id
// error (a typo'd id in a CI step must fail the step loudly, not record
// nothing).
func experimentIDs() []string {
	return []string{"c1", "c2", "c3", "c4", "c5", "c6", "c7",
		"a1", "a2", "a3", "s1", "cb1", "ad1", "rs1", "cc1", "mp1", "ob1", "sv1", "wl1", "all"}
}

// runnersFor binds the experiment table to this invocation's artifact
// paths and repetition counts. Split from run so the id registry is
// testable against experimentIDs.
func runnersFor(inv invocation) map[string]func() error {
	simple := func(f func(ops, workers int, seed int64) error) func() error {
		return func() error { return f(inv.ops, inv.workers, inv.seed) }
	}
	return map[string]func() error{
		"c1": simple(expC1), "c2": simple(expC2), "c3": simple(expC3),
		"c4": simple(expC4), "c5": simple(expC5), "c6": simple(expC6),
		"c7": simple(expC7), "a1": simple(expA1), "a2": simple(expA2),
		"s1":  func() error { return expS1(inv) },
		"a3":  func() error { return expA3(inv) },
		"cb1": func() error { return expCB1(inv) },
		"ad1": func() error { return expAD1(inv) },
		"rs1": func() error { return expRS1(inv) },
		"cc1": func() error { return expCC1(inv) },
		"mp1": func() error { return expMP1(inv) },
		"ob1": func() error { return expOB1(inv) },
		"sv1": func() error { return expSV1(inv) },
		"wl1": func() error { return expWL1(inv) },
	}
}

func run(experiment string, inv invocation) error {
	// A malformed -gomaxprocs must fail before any experiment burns time.
	if _, err := inv.procs(); err != nil {
		return err
	}
	runners := runnersFor(inv)
	// "all" covers the paper-claim sweeps; s1, a3, cb1, ad1, rs1, cc1, mp1,
	// ob1 and sv1 are opt-in because they overwrite the recorded
	// BENCH_shards.json / BENCH_allocs.json / BENCH_combine.json /
	// BENCH_adaptive.json / BENCH_resize.json / BENCH_cache.json /
	// BENCH_multicore.json / BENCH_obs.json / BENCH_sv1.json trajectory
	// points (and s1/cb1/ad1/rs1/cc1/mp1/ob1/sv1 enforce their own
	// ops/workers floors — minutes, not seconds).
	if experiment == "all" {
		for _, id := range []string{"c1", "c2", "c3", "c4", "c5", "c6", "c7", "a1", "a2"} {
			if err := runners[id](); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		return nil
	}
	fn, ok := runners[experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q (valid: %s)", experiment, strings.Join(experimentIDs(), ", "))
	}
	return fn()
}

func mustTrie(u int64) *core.Trie {
	tr, err := core.New(u)
	if err != nil {
		panic(err)
	}
	return tr
}

// expC1: Search latency vs universe size (claim: O(1), flat in steps).
func expC1(ops, _ int, seed int64) error {
	fmt.Println("== C1: Search cost vs universe size (claim: O(1) steps) ==")
	tab := harness.NewTable("u", "ns/op")
	for _, exp := range []uint{8, 12, 16, 20, 22} {
		u := int64(1) << exp
		tr := mustTrie(u)
		for k := int64(0); k < u; k += 2 {
			tr.Insert(k)
		}
		rng := rand.New(rand.NewSource(seed))
		keys := make([]int64, 4096)
		for i := range keys {
			keys[i] = rng.Int63n(u)
		}
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			tr.Search(keys[i&4095])
		}
		tab.AddRow(fmt.Sprintf("2^%d", exp), float64(time.Since(t0).Nanoseconds())/float64(ops))
	}
	fmt.Println(tab)
	return nil
}

// expC2: solo Insert/Delete/Predecessor vs log u (claim: linear in log u).
func expC2(ops, _ int, seed int64) error {
	fmt.Println("== C2: solo update/predecessor cost vs log u (claim: Θ(log u)) ==")
	tab := harness.NewTable("u", "log u", "ins+del ns/op", "pred ns/op")
	for _, exp := range []uint{8, 12, 16, 20} {
		u := int64(1) << exp
		tr := mustTrie(u)
		rng := rand.New(rand.NewSource(seed))
		keys := make([]int64, 4096)
		for i := range keys {
			keys[i] = rng.Int63n(u)
		}
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			k := keys[i&4095]
			tr.Insert(k)
			tr.Delete(k)
		}
		upd := float64(time.Since(t0).Nanoseconds()) / float64(ops)
		for k := int64(0); k < u; k += 16 {
			tr.Insert(k)
		}
		t1 := time.Now()
		for i := 0; i < ops; i++ {
			tr.Predecessor(keys[i&4095])
		}
		pred := float64(time.Since(t1).Nanoseconds()) / float64(ops)
		tab.AddRow(fmt.Sprintf("2^%d", exp), exp, upd, pred)
	}
	fmt.Println(tab)
	return nil
}

// expC3: engine steps per op vs worker count on a hot range.
func expC3(ops, _ int, seed int64) error {
	fmt.Println("== C3: steps/op vs contention (claim: O(ċ² + log u) amortized) ==")
	const u = int64(1 << 16)
	tab := harness.NewTable("workers", "ops/s", "cas/op", "bitreads/op", "notifies/op")
	for _, g := range []int{1, 2, 4, 8} {
		tr := mustTrie(u)
		stats := &core.Stats{}
		tr.SetStats(stats)
		bstats := &bitstrie.Stats{}
		tr.Bits().SetStats(bstats)
		res, err := harness.Run(tr, harness.Config{
			Workers:      g,
			OpsPerWorker: ops / g,
			Mix:          workload.MixUpdateHeavy,
			Dist:         workload.HotRange{U: u, HotLo: u / 2, HotWidth: 64, HotPct: 80},
			Seed:         seed,
		})
		if err != nil {
			return err
		}
		n := float64(res.Ops)
		tab.AddRow(g, res.Throughput,
			float64(bstats.CASAttempts.Load())/n,
			float64(bstats.BitReads.Load())/n,
			float64(stats.Notifications.Load())/n)
	}
	fmt.Println(tab)
	return nil
}

// expC4: throughput of the NON-stalling workers while one adversary
// repeatedly stalls inside its operation — inside the critical section for
// the lock-based trie (via InsertStalled), anywhere for the lock-free trie
// (a stalled goroutine cannot block others no matter where it stops). This
// is the operational meaning of lock-freedom.
func expC4(_, workers int, seed int64) error {
	fmt.Println("== C4: bystander throughput under an in-operation staller (claim: lock-freedom) ==")
	const (
		u      = int64(1 << 12)
		window = 300 * time.Millisecond
		pause  = 2 * time.Millisecond
	)
	if workers < 2 {
		workers = 2
	}
	tab := harness.NewTable("impl", "baseline ops/s", "with staller ops/s", "retained %")

	type stallable struct {
		name    string
		mk      func() harness.Set
		staller func(s harness.Set, stop <-chan struct{})
	}
	impls := []stallable{
		{
			name: "lockfree-trie",
			mk:   func() harness.Set { return mustTrie(u) },
			staller: func(s harness.Set, stop <-chan struct{}) {
				for {
					select {
					case <-stop:
						return
					default:
						s.Insert(1)
						time.Sleep(pause) // stalled wherever the scheduler left it
					}
				}
			},
		},
		{
			name: "rwlock-trie",
			mk:   func() harness.Set { s, _ := locktrie.New(u); return s },
			staller: func(s harness.Set, stop <-chan struct{}) {
				lt, ok := s.(*locktrie.Trie)
				if !ok {
					return
				}
				for {
					select {
					case <-stop:
						return
					default:
						lt.InsertStalled(1, func() { time.Sleep(pause) })
					}
				}
			},
		},
	}

	measure := func(impl stallable, withStaller bool) float64 {
		s := impl.mk()
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if withStaller {
			wg.Add(1)
			go func() {
				defer wg.Done()
				impl.staller(s, stop)
			}()
		}
		var total int64
		var counts sync.WaitGroup
		for w := 0; w < workers-1; w++ {
			counts.Add(1)
			go func(id int) {
				defer counts.Done()
				rng := rand.New(rand.NewSource(seed + int64(id)))
				n := int64(0)
				for {
					select {
					case <-stop:
						atomicAdd(&total, n)
						return
					default:
						k := 2 + rng.Int63n(u-2)
						if rng.Intn(2) == 0 {
							s.Insert(k)
						} else {
							s.Delete(k)
						}
						n++
					}
				}
			}(w)
		}
		time.Sleep(window)
		close(stop)
		counts.Wait()
		wg.Wait()
		return float64(total) / window.Seconds()
	}

	for _, impl := range impls {
		base := measure(impl, false)
		stalled := measure(impl, true)
		tab.AddRow(impl.name, base, stalled, 100*stalled/base)
	}
	fmt.Println(tab)
	return nil
}

// atomicAdd avoids importing sync/atomic at every call site above.
func atomicAdd(p *int64, v int64) { atomic.AddInt64(p, v) }

// median sorts v in place and returns the middle element (upper middle
// for even lengths) — the repetition aggregator shared by the S1, CB1
// and AD1 sweeps.
func median(v []float64) float64 {
	sort.Float64s(v)
	return v[len(v)/2]
}

// expC5: throughput vs baselines across mixes.
func expC5(ops, workers int, seed int64) error {
	fmt.Println("== C5: throughput vs baselines (ops/s) ==")
	const u = int64(1 << 16)
	impls := []struct {
		name string
		mk   func() harness.Set
	}{
		{"lockfree-trie", func() harness.Set { return mustTrie(u) }},
		{"rwlock-trie", func() harness.Set { s, _ := locktrie.New(u); return s }},
		{"versioned-cas-trie", func() harness.Set { s, _ := versioned.New(u); return s }},
		{"lockfree-skiplist", func() harness.Set { s, _ := skiplist.New(u, 42); return s }},
		{"lockfree-bst", func() harness.Set { s, _ := efrb.New(u); return s }},
	}
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"update-heavy", workload.MixUpdateHeavy},
		{"read-heavy", workload.MixReadHeavy},
		{"pred-heavy", workload.MixPredHeavy},
	}
	tab := harness.NewTable("impl", "update-heavy", "read-heavy", "pred-heavy")
	for _, impl := range impls {
		row := []any{impl.name}
		for _, m := range mixes {
			s := impl.mk()
			res, err := harness.Run(s, harness.Config{
				Workers: workers, OpsPerWorker: ops / workers,
				Mix: m.mix, Dist: workload.Uniform{U: u}, Seed: seed, Prefill: u / 8,
			})
			if err != nil {
				return err
			}
			row = append(row, res.Throughput)
		}
		tab.AddRow(row...)
	}
	fmt.Println(tab)
	return nil
}

// expC6: RelaxedPredecessor ⊥-rate vs churn.
func expC6(ops, _ int, seed int64) error {
	fmt.Println("== C6: RelaxedPredecessor ⊥-rate vs update churn ==")
	const u = int64(1 << 10)
	tab := harness.NewTable("churn goroutines", "bottom-rate %")
	for _, churners := range []int{0, 1, 2, 4} {
		tr, err := relaxed.New(u)
		if err != nil {
			return err
		}
		tr.Insert(1)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < churners; c++ {
			wg.Add(1)
			go func(s int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(s))
				for {
					select {
					case <-stop:
						return
					default:
						k := u/2 + rng.Int63n(u/4)
						tr.Insert(k)
						tr.Delete(k)
					}
				}
			}(seed + int64(c))
		}
		bottoms := 0
		for i := 0; i < ops; i++ {
			if _, ok := tr.Predecessor(u - 1); !ok {
				bottoms++
			}
		}
		close(stop)
		wg.Wait()
		tab.AddRow(churners, 100*float64(bottoms)/float64(ops))
	}
	fmt.Println(tab)
	return nil
}

// expC7: peak announcement-list occupancy vs workers.
func expC7(ops, _ int, seed int64) error {
	fmt.Println("== C7: peak announcement occupancy vs workers (claim: O(ċ)) ==")
	const u = int64(1 << 12)
	tab := harness.NewTable("workers", "peak U-ALL", "peak P-ALL")
	for _, g := range []int{1, 2, 4, 8} {
		tr := mustTrie(u)
		stop := make(chan struct{})
		var maxU, maxP int
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
					if n := tr.AnnouncedUpdates(); n > maxU {
						maxU = n
					}
					if n := tr.AnnouncedPredecessors(); n > maxP {
						maxP = n
					}
				}
			}
		}()
		_, err := harness.Run(tr, harness.Config{
			Workers: g, OpsPerWorker: ops / g,
			Mix: workload.MixUpdateHeavy, Dist: workload.Uniform{U: u}, Seed: seed,
		})
		if err != nil {
			return err
		}
		close(stop)
		<-done
		tab.AddRow(g, maxU, maxP)
	}
	fmt.Println(tab)
	return nil
}

// expA1: second-CAS rescues under delete contention. The rescue needs an
// outdated delete poised at its CAS while a newer same-key delete races
// past — rare by construction (that is the point of the two-attempt rule),
// so we report per 10k operations on a tiny, fully contended universe.
func expA1(ops, _ int, seed int64) error {
	fmt.Println("== A1: second CAS attempt rescues (DeleteBinaryTrie, per 10k ops) ==")
	const u = int64(8)
	tab := harness.NewTable("workers", "2nd-CAS rescues/10k", "CAS failures/10k")
	for _, g := range []int{2, 4, 8} {
		tr := mustTrie(u)
		bstats := &bitstrie.Stats{}
		tr.Bits().SetStats(bstats)
		res, err := harness.Run(tr, harness.Config{
			Workers: g, OpsPerWorker: ops / g,
			Mix:  workload.MixUpdateOnly,
			Dist: workload.Uniform{U: u},
			Seed: seed,
		})
		if err != nil {
			return err
		}
		per10k := 10000 / float64(res.Ops)
		tab.AddRow(g, float64(bstats.SecondCASSuccess.Load())*per10k,
			float64(bstats.CASFailures.Load())*per10k)
	}
	fmt.Println(tab)
	return nil
}

// s1Reps is the repetition count per (workload, shard count) configuration
// of experiment S1; the median repetition is reported.
const s1Reps = 5

// s1Result is one (workload, shard count) measurement of the sharding sweep.
type s1Result struct {
	Shards    int     `json:"shards"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// s1Workload groups the shard-count sweep for one key distribution.
type s1Workload struct {
	Dist    string     `json:"dist"`
	Mix     string     `json:"mix"`
	Results []s1Result `json:"results"`
	Speedup float64    `json:"speedup_high_vs_1"`
}

// s1ProcPoint is one GOMAXPROCS setting's full sweep.
type s1ProcPoint struct {
	hostTopology
	Workloads []s1Workload `json:"workloads"`
}

// s1Report is the BENCH_shards.json trajectory point. The top-level
// GoMaxProcs/NumCPU/Workloads fields are the first swept P's point
// repeated — the compatibility row every pre-sweep consumer (and the
// recorded gate history) keeps reading — while Points carries the full
// -gomaxprocs sweep with per-point topology.
type s1Report struct {
	Experiment string        `json:"experiment"`
	Timestamp  string        `json:"timestamp"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Universe   int64         `json:"universe"`
	Goroutines int           `json:"goroutines"`
	Ops        int           `json:"ops"`
	HighShards int           `json:"high_shards"`
	Workloads  []s1Workload  `json:"workloads"`
	Points     []s1ProcPoint `json:"proc_points"`
}

// expS1: sharding sweep — k=1 vs k=highShards at ≥ 8 goroutines on
// update-heavy disjoint-band, uniform and hotrange workloads. The disjoint
// bands are the announcement-list-bottleneck regime the sharded layer
// exists for: workers never collide on keys, so all remaining contention is
// the shared U-ALL/RU-ALL/P-ALL traffic that sharding splits. On a
// single-core host (each point records its topology) the measured
// relief comes from shorter announcement-list traversals and notify scans,
// not cache-line transfer; hotrange is expected to show no benefit at any
// core count since its hot keys map to a single shard. The whole sweep
// repeats per -gomaxprocs setting; the first setting doubles as the
// compatibility row. Writes the BENCH_shards.json trajectory point unless
// -json is empty.
func expS1(inv invocation) error {
	ops, workers, seed := inv.ops, inv.workers, inv.seed
	highShards, jsonPath := inv.shards, inv.jsonPath
	procs, err := inv.procs()
	if err != nil {
		return err
	}
	const u = int64(1 << 16)
	// The announcement-list tax grows with the number of operations parked
	// mid-announcement, so the sweep needs enough goroutines to keep the
	// lists populated; 16 comfortably exceeds the experiment's ≥8 floor.
	if workers < 16 {
		fmt.Printf("s1: raising -workers to 16 (announcement lists need that much overlap)\n")
		workers = 16
	}
	// It also needs each measurement to run for many scheduler slices per
	// goroutine: below ~1s of wall clock the goroutines run nearly
	// back-to-back, announcement lists stay empty, and the experiment
	// measures warm-up instead of the contended steady state.
	if ops < 800000 {
		fmt.Printf("s1: raising -ops to 800000 (shorter runs measure warm-up, not steady state)\n")
		ops = 800000
	}
	fmt.Printf("== S1: sharded vs unsharded throughput (ops/s, %d goroutines, update-heavy) ==\n", workers)
	dists := []struct {
		name    string
		dist    workload.KeyDist
		distFor func(w int) workload.KeyDist
	}{
		{name: "disjoint", distFor: func(w int) workload.KeyDist {
			band := u / int64(workers)
			return workload.Band{Lo: int64(w) * band, Width: band}
		}},
		{name: "uniform", dist: workload.Uniform{U: u}},
		{name: "hotrange", dist: workload.HotRange{U: u, HotLo: u / 2, HotWidth: 64, HotPct: 80}},
	}
	report := s1Report{
		Experiment: "s1-sharding",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Universe:   u,
		Goroutines: workers,
		Ops:        ops,
		HighShards: highShards,
	}
	// One measurement: fresh trie, half-full prefill (so deletes and
	// predecessors do real work from the first operation — a winning Delete
	// runs two embedded predecessor operations, the announcement-heavy path
	// sharding exists to relieve), then the timed run.
	measure := func(k int, d int) (float64, error) {
		tr, err := sharded.New(u, k)
		if err != nil {
			return 0, err
		}
		for key := int64(0); key < u; key += 2 {
			tr.Insert(key)
		}
		res, err := harness.Run(tr, harness.Config{
			Workers:      workers,
			OpsPerWorker: ops / workers,
			Mix:          workload.MixUpdateHeavy,
			Dist:         dists[d].dist,
			DistFor:      dists[d].distFor,
			Seed:         seed,
		})
		if err != nil {
			return 0, err
		}
		return res.Throughput, nil
	}
	// Per configuration, report the median of s1Reps repetitions,
	// interleaving the shard counts so slow machine phases (GC, noisy
	// neighbours on shared runners) penalize both sides equally. The
	// median, not the best: run-to-run variance here is dominated by
	// scheduling luck — whether preemptions park operations mid-
	// announcement — which IS the contention under study, and best-of
	// would select exactly the baseline runs where it failed to manifest.
	if err := perP(procs, func(p int) error {
		pt := s1ProcPoint{hostTopology: topologyAt(p)}
		tab := harness.NewTable("dist", "k=1 ops/s", fmt.Sprintf("k=%d ops/s", highShards), "speedup")
		for d := range dists {
			wl := s1Workload{Dist: dists[d].name, Mix: "update-heavy"}
			samples := map[int][]float64{}
			for rep := 0; rep < s1Reps; rep++ {
				for _, k := range []int{1, highShards} {
					tput, err := measure(k, d)
					if err != nil {
						return err
					}
					samples[k] = append(samples[k], tput)
				}
			}
			lo, hi := median(samples[1]), median(samples[highShards])
			wl.Results = []s1Result{{Shards: 1, OpsPerSec: lo}, {Shards: highShards, OpsPerSec: hi}}
			wl.Speedup = hi / lo
			pt.Workloads = append(pt.Workloads, wl)
			tab.AddRow(dists[d].name, lo, hi, wl.Speedup)
		}
		fmt.Println(tab)
		report.Points = append(report.Points, pt)
		return nil
	}); err != nil {
		return err
	}
	// Compatibility row: the first swept P, where the recorded trajectory
	// history lives.
	report.GoMaxProcs = report.Points[0].GoMaxProcs
	report.NumCPU = report.Points[0].NumCPU
	report.Workloads = report.Points[0].Workloads
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", jsonPath)
	return nil
}

// expA2: update latency vs parked predecessor announcements.
func expA2(ops, _ int, seed int64) error {
	fmt.Println("== A2: update cost vs announced predecessors (notify cost) ==")
	const u = int64(1 << 12)
	tab := harness.NewTable("parked preds", "ins+del ns/op")
	for _, parked := range []int{0, 2, 8, 16} {
		tr := mustTrie(u)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for p := 0; p < parked; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						tr.Predecessor(u - 1)
					}
				}
			}()
		}
		rng := rand.New(rand.NewSource(seed))
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			k := rng.Int63n(u / 2)
			tr.Insert(k)
			tr.Delete(k)
		}
		elapsed := time.Since(t0)
		close(stop)
		wg.Wait()
		tab.AddRow(parked, float64(elapsed.Nanoseconds())/float64(ops))
	}
	fmt.Println(tab)
	return nil
}

// --- A3: allocation behaviour of the hot paths --------------------------------

// a3BaselineAllocs / a3BaselineBytes record the pre-arena steady state —
// measured with `go test -bench=BenchmarkPredMixes -benchmem` at the PR-1
// tree (commit 0ff536f, per-call maps in the ⊥ recovery, heap-allocated
// announcement refs) — so every later trajectory point carries the number
// the ≥70% predecessor-mix reduction gate is judged against.
var a3BaselineAllocs = map[string]float64{
	"core/pred-heavy": 11, "core/update-heavy": 17, "core/uniform": 10,
	"relaxed/pred-heavy": 0, "relaxed/update-heavy": 0, "relaxed/uniform": 0,
	"sharded/pred-heavy": 9, "sharded/update-heavy": 12, "sharded/uniform": 8,
}

var a3BaselineBytes = map[string]float64{
	"core/pred-heavy": 221, "core/update-heavy": 411, "core/uniform": 241,
	"relaxed/pred-heavy": 12, "relaxed/update-heavy": 53, "relaxed/uniform": 27,
	"sharded/pred-heavy": 181, "sharded/update-heavy": 281, "sharded/uniform": 186,
}

// a3Point is one (impl, mix) steady-state measurement.
type a3Point struct {
	Impl           string  `json:"impl"`
	Mix            string  `json:"mix"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	BytesPerOp     float64 `json:"bytes_per_op"`
	NsPerOp        float64 `json:"ns_per_op"`
	BaselineAllocs float64 `json:"baseline_allocs_per_op"`
	BaselineBytes  float64 `json:"baseline_bytes_per_op"`
	ReductionPct   float64 `json:"allocs_reduction_pct"`
}

// a3ProcPoint is one GOMAXPROCS setting's full impl×mix sweep. The gate
// rides per point: allocation discipline must hold at every P, not just
// the compatibility row.
type a3ProcPoint struct {
	hostTopology
	Points           []a3Point `json:"points"`
	GateReductionPct float64   `json:"gate_core_pred_heavy_reduction_pct"`
}

// a3Report is the BENCH_allocs.json trajectory point. Top-level
// GoMaxProcs/NumCPU/Points/GateReductionPct are the first swept P's
// values — the compatibility row — while ProcPoints carries the full
// -gomaxprocs sweep.
type a3Report struct {
	Experiment string    `json:"experiment"`
	Timestamp  string    `json:"timestamp"`
	GoMaxProcs int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	Universe   int64     `json:"universe"`
	Goroutines int       `json:"goroutines"`
	Ops        int       `json:"ops"`
	Shards     int       `json:"shards"`
	Baseline   string    `json:"baseline"`
	Points     []a3Point `json:"points"`
	// GateReductionPct is the core/pred-heavy allocs/op reduction the
	// acceptance gate tracks (≥ 70).
	GateReductionPct float64       `json:"gate_core_pred_heavy_reduction_pct"`
	ProcPoints       []a3ProcPoint `json:"proc_points"`
}

// expA3: steady-state allocs/op and B/op across the three trie variants and
// three operation mixes, measured from runtime.MemStats deltas around a
// fixed op budget. A warm-up phase populates the scratch-arena pools and the
// lazily materialized latest-list dummies first, so the measurement sees the
// steady state the allocation-free-hot-paths work targets, not construction
// cost. Writes the BENCH_allocs.json trajectory point unless -allocsjson is
// empty; the recorded pre-arena baseline rides along in every point so the
// ≥70% predecessor-mix reduction gate stays machine-checkable. The whole
// impl×mix sweep repeats per -gomaxprocs setting.
func expA3(inv invocation) error {
	ops, workers, seed := inv.ops, inv.workers, inv.seed
	highShards, jsonPath := inv.shards, inv.allocsPath
	procs, err := inv.procs()
	if err != nil {
		return err
	}
	const u = int64(1 << 16)
	if workers < 1 {
		workers = 1
	}
	if ops < workers*100 {
		fmt.Printf("a3: raising -ops to %d (at least 100 per goroutine, so per-op averages mean something)\n", workers*100)
		ops = workers * 100
	}
	fmt.Printf("== A3: steady-state allocations per operation (%d goroutines) ==\n", workers)
	impls := []struct {
		name string
		mk   func() (harness.Set, error)
	}{
		{"core", func() (harness.Set, error) { return core.New(u) }},
		{"relaxed", func() (harness.Set, error) {
			tr, err := relaxed.New(u)
			if err != nil {
				return nil, err
			}
			return harness.Collapse(tr), nil
		}},
		{"sharded", func() (harness.Set, error) { return sharded.New(u, highShards) }},
	}
	report := a3Report{
		Experiment: "a3-allocs",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Universe:   u,
		Goroutines: workers,
		Ops:        ops,
		Shards:     highShards,
		Baseline:   "pre-arena PR-1 tree (commit 0ff536f), go test -bench=BenchmarkPredMixes -benchmem",
	}
	measurePoint := func(p int) (a3ProcPoint, error) {
		pt := a3ProcPoint{hostTopology: topologyAt(p)}
		tab := harness.NewTable("impl", "mix", "allocs/op", "B/op", "ns/op", "baseline allocs/op", "reduction %")
		for _, impl := range impls {
			for _, m := range workload.BenchMixes {
				s, err := impl.mk()
				if err != nil {
					return a3ProcPoint{}, err
				}
				for k := int64(0); k < u; k += 8 {
					s.Insert(k)
				}
				gens := make([]*workload.Generator, workers)
				for i := range gens {
					g, err := workload.NewGenerator(m.Mix, workload.Uniform{U: u}, seed+int64(i))
					if err != nil {
						return a3ProcPoint{}, err
					}
					gens[i] = g
				}
				runOps := func(n int) time.Duration {
					var wg sync.WaitGroup
					start := make(chan struct{})
					for w := 0; w < workers; w++ {
						wg.Add(1)
						go func(id int) {
							defer wg.Done()
							<-start
							g := gens[id]
							for i := 0; i < n/workers; i++ {
								harness.ApplyOp(s, g.Next())
							}
						}(w)
					}
					// Workers are parked on the barrier; the clock starts when
					// they are released, so spawn cost stays out of ns/op.
					t0 := time.Now()
					close(start)
					wg.Wait()
					return time.Since(t0)
				}
				// Warm up pools and dummies, settle the heap, then re-warm the
				// pools (a GC cycles sync.Pool through its victim cache).
				runOps(ops / 2)
				runtime.GC()
				runOps(ops / 10)
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				elapsed := runOps(ops)
				runtime.ReadMemStats(&m1)
				n := float64(ops / workers * workers)
				key := impl.name + "/" + m.Name
				p := a3Point{
					Impl:           impl.name,
					Mix:            m.Name,
					AllocsPerOp:    float64(m1.Mallocs-m0.Mallocs) / n,
					BytesPerOp:     float64(m1.TotalAlloc-m0.TotalAlloc) / n,
					NsPerOp:        float64(elapsed.Nanoseconds()) / n,
					BaselineAllocs: a3BaselineAllocs[key],
					BaselineBytes:  a3BaselineBytes[key],
				}
				if p.BaselineAllocs > 0 {
					p.ReductionPct = 100 * (1 - p.AllocsPerOp/p.BaselineAllocs)
				}
				if key == "core/pred-heavy" {
					pt.GateReductionPct = p.ReductionPct
				}
				pt.Points = append(pt.Points, p)
				tab.AddRow(impl.name, m.Name, p.AllocsPerOp, p.BytesPerOp, p.NsPerOp,
					p.BaselineAllocs, p.ReductionPct)
			}
		}
		fmt.Println(tab)
		return pt, nil
	}
	if err := perP(procs, func(p int) error {
		pt, err := measurePoint(p)
		if err != nil {
			return err
		}
		report.ProcPoints = append(report.ProcPoints, pt)
		return nil
	}); err != nil {
		return err
	}
	report.GoMaxProcs = report.ProcPoints[0].GoMaxProcs
	report.NumCPU = report.ProcPoints[0].NumCPU
	report.Points = report.ProcPoints[0].Points
	report.GateReductionPct = report.ProcPoints[0].GateReductionPct
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", jsonPath)
	return nil
}

// --- CB1: flat combining amortizes announcement traffic -----------------------

// cb1Reps is the default repetition count per configuration (-cb1reps
// overrides); the median is
// reported, for the same scheduling-luck reasons as S1.
const cb1Reps = 5

// cb1Side is one side (combining on or off) of a CB1 configuration.
type cb1Side struct {
	OpsPerSec      float64 `json:"ops_per_sec"`
	AnnouncesPerOp float64 `json:"announces_per_op"`
	// AvgBatch is ops drained per combining round (1 implicitly for the
	// uncombined side, where every update announces alone).
	AvgBatch float64 `json:"avg_batch,omitempty"`
	// DirectPct is the share of combined submissions that fell back to
	// the direct per-op path (slot saturation or retraction).
	DirectPct float64 `json:"direct_pct,omitempty"`
}

// cb1Workload is one (mix, shard count) configuration: the combined
// measurement with its uncombined baseline embedded alongside.
type cb1Workload struct {
	Mix                string  `json:"mix"`
	Shards             int     `json:"shards"`
	Combined           cb1Side `json:"combined"`
	Uncombined         cb1Side `json:"uncombined_baseline"`
	AnnounceReductionX float64 `json:"announce_reduction_x"`
	ThroughputRatio    float64 `json:"throughput_ratio_combined_vs_uncombined"`
}

// cb1ProcPoint is one GOMAXPROCS setting's full sweep. The announce-
// reduction gate rides per point: at P=1 it guards the recorded history
// (the spin-then-park wait beat must not regress the single-P pacing),
// at P>1 it proves combining still amortizes when submitters genuinely
// overlap instead of interleaving on one core.
type cb1ProcPoint struct {
	hostTopology
	Workloads                 []cb1Workload `json:"workloads"`
	GateUpdateHeavyReductionX float64       `json:"gate_update_heavy_announce_reduction_x"`
}

// cb1Report is the BENCH_combine.json trajectory point. Top-level
// GoMaxProcs/NumCPU/Workloads/Gate are the first swept P's values — the
// compatibility row — while Points carries the full -gomaxprocs sweep.
type cb1Report struct {
	Experiment string        `json:"experiment"`
	Timestamp  string        `json:"timestamp"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Universe   int64         `json:"universe"`
	Goroutines int           `json:"goroutines"`
	Ops        int           `json:"ops"`
	SlotsPerSh int           `json:"slots_per_shard"`
	Reps       int           `json:"reps_median_of"`
	Workloads  []cb1Workload `json:"workloads"`
	// GateUpdateHeavyReductionX is the announce_reduction_x of the
	// update-heavy mix at the LOWEST shard count measured — the
	// worst-case-contention shard all 16 goroutines share; the acceptance
	// gate tracks ≥ 2.
	GateUpdateHeavyReductionX float64        `json:"gate_update_heavy_announce_reduction_x"`
	Points                    []cb1ProcPoint `json:"proc_points"`
}

// expCB1: per-shard flat combining vs the per-op announcement path.
// Announces/op counts U-ALL announcement passes (core.Stats.Announces) per
// executed operation: the per-op path pays one pass per winning update
// plus one per help-activation, the combining path one pass per drained
// round — the serialization the publication slots exist to amortize.
//
// The sweep measures the oversubscribed-shard regime combining exists for
// (ROADMAP: "an update-heavy shard at high goroutine counts"): the three
// mixes at k=1, where all goroutines share one combiner, plus a hotshard
// row — k=16 with 90% of keys landing in a single shard — showing the
// per-shard layer composing with sharding. The converse is deliberately
// NOT a headline row but is worth knowing: spreading goroutines thin
// (uniform keys over k ≥ 4 shards leaves ~1 publisher per combiner) makes
// batches degenerate toward size 1 and the handoff pure overhead (measured
// 0.65–0.9× throughput on this host) — WithCombining is a workload
// decision, exactly like WithShards. The whole sweep repeats per
// -gomaxprocs setting. Writes the BENCH_combine.json trajectory point
// unless -combinejson is empty.
func expCB1(inv invocation) error {
	ops, workers, seed := inv.ops, inv.workers, inv.seed
	reps, jsonPath := inv.combineReps, inv.combinePath
	procs, err := inv.procs()
	if err != nil {
		return err
	}
	const u = int64(1 << 16)
	if workers < 16 {
		fmt.Printf("cb1: raising -workers to 16 (the gate is defined at 16 goroutines)\n")
		workers = 16
	}
	if reps < 1 {
		reps = 1
	}
	if ops < 400000 {
		fmt.Printf("cb1: raising -ops to 400000 (short runs measure warm-up, not the combining steady state)\n")
		ops = 400000
	}
	fmt.Printf("== CB1: combined vs uncombined announcements and throughput (%d goroutines) ==\n", workers)
	report := cb1Report{
		Experiment: "cb1-combining",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Universe:   u,
		Goroutines: workers,
		Ops:        ops,
		SlotsPerSh: combine.DefaultSlots(),
		Reps:       reps,
	}
	// One measurement: fresh trie, half-full prefill (stats attach after,
	// so construction announcements stay out of the metric), timed run,
	// counters summed across shards.
	measure := func(k int, combining bool, mix workload.Mix, dist workload.KeyDist) (cb1Side, error) {
		mk := sharded.New
		if combining {
			mk = sharded.NewCombining
		}
		tr, err := mk(u, k)
		if err != nil {
			return cb1Side{}, err
		}
		for key := int64(0); key < u; key += 2 {
			tr.Insert(key)
		}
		stats := make([]*core.Stats, k)
		for i := range stats {
			stats[i] = &core.Stats{}
			tr.Shard(i).SetStats(stats[i])
		}
		// The combiner counters are cumulative and the prefill runs
		// through Submit (32768 solo size-1 rounds); snapshot here so the
		// reported batch shape covers only the timed run, matching the
		// post-prefill attach of the announce counters.
		rounds0, batched0, direct0, _ := tr.CombineStats()
		res, err := harness.Run(tr, harness.Config{
			Workers:      workers,
			OpsPerWorker: ops / workers,
			Mix:          mix,
			Dist:         dist,
			Seed:         seed,
		})
		if err != nil {
			return cb1Side{}, err
		}
		var ann int64
		for _, s := range stats {
			ann += s.Announces.Load()
		}
		side := cb1Side{
			OpsPerSec:      res.Throughput,
			AnnouncesPerOp: float64(ann) / float64(res.Ops),
		}
		if combining {
			rounds, batched, direct, _ := tr.CombineStats()
			rounds, batched, direct = rounds-rounds0, batched-batched0, direct-direct0
			if rounds > 0 {
				side.AvgBatch = float64(batched) / float64(rounds)
			}
			if batched+direct > 0 {
				side.DirectPct = 100 * float64(direct) / float64(batched+direct)
			}
		}
		return side, nil
	}
	// The shard width at k=16 is u/16; the hotshard row aims 90% of keys
	// at exactly one of those shards.
	configs := []struct {
		name string
		mix  workload.Mix
		k    int
		dist workload.KeyDist
	}{
		{"pred-heavy", workload.MixPredHeavy, 1, workload.Uniform{U: u}},
		{"update-heavy", workload.MixUpdateOnly, 1, workload.Uniform{U: u}},
		{"uniform", workload.MixUpdateHeavy, 1, workload.Uniform{U: u}},
		{"hotshard-update-heavy", workload.MixUpdateOnly, 16,
			workload.HotRange{U: u, HotLo: u / 2, HotWidth: u / 16, HotPct: 90}},
	}
	if err := perP(procs, func(p int) error {
		pt := cb1ProcPoint{hostTopology: topologyAt(p)}
		tab := harness.NewTable("workload", "k", "ops/s off", "ops/s on", "ann/op off", "ann/op on", "reduction x", "tput ratio", "avg batch")
		for _, cfg := range configs {
			var offT, onT, offA, onA, onB, onD []float64
			for rep := 0; rep < reps; rep++ {
				// Interleave sides so machine-noise phases hit both.
				off, err := measure(cfg.k, false, cfg.mix, cfg.dist)
				if err != nil {
					return err
				}
				on, err := measure(cfg.k, true, cfg.mix, cfg.dist)
				if err != nil {
					return err
				}
				offT, onT = append(offT, off.OpsPerSec), append(onT, on.OpsPerSec)
				offA, onA = append(offA, off.AnnouncesPerOp), append(onA, on.AnnouncesPerOp)
				onB, onD = append(onB, on.AvgBatch), append(onD, on.DirectPct)
			}
			wl := cb1Workload{
				Mix:    cfg.name,
				Shards: cfg.k,
				Uncombined: cb1Side{
					OpsPerSec: median(offT), AnnouncesPerOp: median(offA),
				},
				Combined: cb1Side{
					OpsPerSec: median(onT), AnnouncesPerOp: median(onA),
					AvgBatch: median(onB), DirectPct: median(onD),
				},
			}
			if wl.Combined.AnnouncesPerOp > 0 {
				wl.AnnounceReductionX = wl.Uncombined.AnnouncesPerOp / wl.Combined.AnnouncesPerOp
			}
			if wl.Uncombined.OpsPerSec > 0 {
				wl.ThroughputRatio = wl.Combined.OpsPerSec / wl.Uncombined.OpsPerSec
			}
			if cfg.name == "update-heavy" && cfg.k == 1 {
				pt.GateUpdateHeavyReductionX = wl.AnnounceReductionX
			}
			pt.Workloads = append(pt.Workloads, wl)
			tab.AddRow(cfg.name, cfg.k, wl.Uncombined.OpsPerSec, wl.Combined.OpsPerSec,
				wl.Uncombined.AnnouncesPerOp, wl.Combined.AnnouncesPerOp,
				wl.AnnounceReductionX, wl.ThroughputRatio, wl.Combined.AvgBatch)
		}
		fmt.Println(tab)
		report.Points = append(report.Points, pt)
		return nil
	}); err != nil {
		return err
	}
	report.GoMaxProcs = report.Points[0].GoMaxProcs
	report.NumCPU = report.Points[0].NumCPU
	report.Workloads = report.Points[0].Workloads
	report.GateUpdateHeavyReductionX = report.Points[0].GateUpdateHeavyReductionX
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", jsonPath)
	return nil
}

// --- AD1: adaptive combining recovers the right regime per shard ---------------

// ad1Reps is the default repetition count per configuration (-ad1reps
// overrides); the median of per-repetition ratios is reported, for the
// same scheduling-luck reasons as S1 and CB1. Seven, not five: the
// committed BENCH_adaptive.json protocol is 7 reps (this host's load
// drifts enough that 5 left the clustered gate inside the noise band),
// and a default re-run must reproduce the recorded protocol.
const ad1Reps = 7

// ad1Side is one publication-mode variant of an AD1 configuration.
type ad1Side struct {
	OpsPerSec float64 `json:"ops_per_sec"`
	// AvgBatch is ops drained per combining round over the timed run
	// (absent for the uncombined side; for the adaptive side it covers
	// only the stretches spent combining).
	AvgBatch float64 `json:"avg_batch,omitempty"`
	// Enables/Disables are the mode transitions during the timed run,
	// summed over shards (medians across repetitions). Always serialized
	// so a zero reads as "no transitions", not missing data — true on
	// the static sides too, whose mode never changes by construction.
	Enables  int64 `json:"enables"`
	Disables int64 `json:"disables"`
	// CombiningShards is how many shards ended the run in combining
	// mode: 0 for the uncombined side, k for always-on, measured for
	// adaptive.
	CombiningShards int `json:"combining_shards"`
}

// ad1Workload is one (mix, shard count) configuration measured under all
// three publication modes.
type ad1Workload struct {
	Mix    string `json:"mix"`
	Shards int    `json:"shards"`
	// Regime names which side of the combining trade this configuration
	// sits on: "thin-spread" (combining hurts; adaptive must track the
	// uncombined baseline) or "clustered" (combining wins; adaptive must
	// track always-on).
	Regime     string  `json:"regime"`
	Uncombined ad1Side `json:"uncombined"`
	Combined   ad1Side `json:"combined_always_on"`
	Adaptive   ad1Side `json:"adaptive"`
	// The ratio fields are medians of PER-REPETITION ratios: the three
	// variants run back-to-back inside each repetition, so a drifting
	// host-load phase hits a repetition's numerator and denominator
	// together and cancels, where a ratio of cross-repetition medians
	// would not. They therefore need not equal the quotient of the
	// (per-variant median) throughput fields.
	AdaptiveVsUncombined float64 `json:"adaptive_vs_uncombined"`
	AdaptiveVsCombined   float64 `json:"adaptive_vs_combined"`
}

// ad1ProcPoint is one GOMAXPROCS setting's full sweep, gates included:
// the adaptive controller must pick the winning mode at every P, not
// just under single-P timeslicing (the throughput-derived enable signal
// exists precisely because peer counts read differently at P>1).
type ad1ProcPoint struct {
	hostTopology
	Workloads                  []ad1Workload `json:"workloads"`
	GateThinVsUncombined       float64       `json:"gate_thin_spread_adaptive_vs_uncombined"`
	GateClusteredVsCombinedMin float64       `json:"gate_clustered_adaptive_vs_combined_min"`
}

// ad1Report is the BENCH_adaptive.json trajectory point. Top-level
// GoMaxProcs/NumCPU/Workloads/gates are the first swept P's values — the
// compatibility row — while Points carries the full -gomaxprocs sweep.
type ad1Report struct {
	Experiment string         `json:"experiment"`
	Timestamp  string         `json:"timestamp"`
	GoMaxProcs int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Universe   int64          `json:"universe"`
	Goroutines int            `json:"goroutines"`
	Ops        int            `json:"ops"`
	Reps       int            `json:"reps_median_of"`
	Workloads  []ad1Workload  `json:"workloads"`
	Points     []ad1ProcPoint `json:"proc_points"`
	// GateThinVsUncombined is adaptive/uncombined throughput on the
	// thin-spread mix; the acceptance gate tracks ≥ 0.95 (adaptive must
	// not pay for a combining layer the workload cannot use).
	GateThinVsUncombined float64 `json:"gate_thin_spread_adaptive_vs_uncombined"`
	// GateClusteredVsCombinedMin is the MINIMUM adaptive/combined
	// throughput over the clustered mixes; the gate tracks ≥ 0.9
	// (adaptive must converge to always-on combining where it wins).
	GateClusteredVsCombinedMin float64 `json:"gate_clustered_adaptive_vs_combined_min"`
}

// ad1 publication-mode variants.
const (
	ad1Uncombined = iota
	ad1Combined
	ad1Adaptive
)

// expAD1: the adaptive controller against both static modes, on both
// sides of the combining trade. The thin-spread row is CB1's documented
// loss regime (uniform update-only keys over k=16 shards leave ~1
// publisher per combiner: always-on combining measured 0.65–0.9× there);
// the clustered rows are CB1's win regime (everyone in one combiner's
// catchment). Adaptive starts every shard direct and must converge to the
// winning mode per shard at runtime, paying only the sampling tax and the
// convergence transient; per-point mode-transition counts make the
// convergence itself part of the recorded trajectory. The whole sweep
// repeats per -gomaxprocs setting. Writes the BENCH_adaptive.json
// trajectory point unless -adaptivejson is empty.
func expAD1(inv invocation) error {
	ops, workers, seed := inv.ops, inv.workers, inv.seed
	reps, jsonPath := inv.adaptiveReps, inv.adaptivePath
	procs, err := inv.procs()
	if err != nil {
		return err
	}
	const u = int64(1 << 16)
	if workers < 16 {
		fmt.Printf("ad1: raising -workers to 16 (both gates are defined at 16 goroutines)\n")
		workers = 16
	}
	if reps < 1 {
		reps = 1
	}
	// The gate-grade protocol needs long measurements (the adaptive
	// transient must be amortizable, not the whole run) — but a one-rep
	// run is never gate-grade anyway (the gates are medians of per-rep
	// ratios), so the CI smoke that only confirms the JSON writer keeps
	// its small explicit -ops instead of paying minutes.
	if reps > 1 && ops < 800000 {
		fmt.Printf("ad1: raising -ops to 800000 (the adaptive transient must be amortizable, not the whole run)\n")
		ops = 800000
	} else if reps == 1 && ops < 800000 {
		fmt.Printf("ad1: one-rep run at %d ops — smoke only, NOT comparable to the recorded gate-grade artifact (7 reps, 800k ops)\n", ops)
	}
	fmt.Printf("== AD1: adaptive vs static publication modes (ops/s, %d goroutines) ==\n", workers)
	report := ad1Report{
		Experiment: "ad1-adaptive",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Universe:   u,
		Goroutines: workers,
		Ops:        ops,
		Reps:       reps,
	}
	// One measurement: fresh trie, half-full prefill, timed run, counter
	// deltas from post-prefill snapshots (the solo prefill itself runs
	// direct under the adaptive default and is excluded from every
	// reported number).
	measure := func(k, variant int, mix workload.Mix, dist workload.KeyDist) (ad1Side, error) {
		var tr *sharded.Trie
		var err error
		switch variant {
		case ad1Uncombined:
			tr, err = sharded.New(u, k)
		case ad1Combined:
			tr, err = sharded.NewCombining(u, k)
		case ad1Adaptive:
			tr, err = sharded.NewAdaptive(u, k, adapt.Config{})
		}
		if err != nil {
			return ad1Side{}, err
		}
		for key := int64(0); key < u; key += 2 {
			tr.Insert(key)
		}
		rounds0, batched0, _, _ := tr.CombineStats()
		enables0, disables0 := tr.AdaptiveStats()
		res, err := harness.Run(tr, harness.Config{
			Workers:      workers,
			OpsPerWorker: ops / workers,
			Mix:          mix,
			Dist:         dist,
			Seed:         seed,
		})
		if err != nil {
			return ad1Side{}, err
		}
		side := ad1Side{OpsPerSec: res.Throughput}
		if variant != ad1Uncombined {
			rounds, batched, _, _ := tr.CombineStats()
			if r := rounds - rounds0; r > 0 {
				side.AvgBatch = float64(batched-batched0) / float64(r)
			}
		}
		if variant == ad1Combined {
			side.CombiningShards = k // every shard combines by construction
		}
		if variant == ad1Adaptive {
			enables, disables := tr.AdaptiveStats()
			side.Enables, side.Disables = enables-enables0, disables-disables0
			for i := 0; i < k; i++ {
				if tr.ShardCombining(i) {
					side.CombiningShards++
				}
			}
		}
		return side, nil
	}
	configs := []struct {
		name   string
		regime string
		mix    workload.Mix
		k      int
		dist   workload.KeyDist
	}{
		// The loss regime: ~1 publisher per combiner.
		{"thin-spread-update-heavy", "thin-spread", workload.MixUpdateOnly, 16, workload.Uniform{U: u}},
		// The win regimes: all publishers in one combiner's catchment.
		{"update-heavy", "clustered", workload.MixUpdateOnly, 1, workload.Uniform{U: u}},
		{"uniform-update-heavy", "clustered", workload.MixUpdateHeavy, 1, workload.Uniform{U: u}},
		{"hotshard-update-heavy", "clustered", workload.MixUpdateOnly, 16,
			workload.HotRange{U: u, HotLo: u / 2, HotWidth: u / 16, HotPct: 90}},
	}
	if err := perP(procs, func(p int) error {
		pt := ad1ProcPoint{hostTopology: topologyAt(p)}
		tab := harness.NewTable("workload", "k", "ops/s uncomb", "ops/s comb", "ops/s adaptive",
			"ad/uncomb", "ad/comb", "flips", "comb shards")
		for _, cfg := range configs {
			sides := make([][]float64, 3)
			var avgB, avgBC, en, dis, rUnc, rComb, shardsOn []float64
			for rep := 0; rep < reps; rep++ {
				// The three variants run back-to-back inside a repetition so
				// machine-noise phases hit all of them (and cancel in the
				// per-repetition ratios below), and the order ROTATES per
				// repetition: with a fixed order, load drifting monotonically
				// across a repetition systematically penalizes whichever
				// variant always runs last.
				var repSides [3]ad1Side
				for j := 0; j < 3; j++ {
					v := (rep + j) % 3
					side, err := measure(cfg.k, v, cfg.mix, cfg.dist)
					if err != nil {
						return err
					}
					repSides[v] = side
					sides[v] = append(sides[v], side.OpsPerSec)
					if v == ad1Combined {
						avgBC = append(avgBC, side.AvgBatch)
					}
					if v == ad1Adaptive {
						avgB = append(avgB, side.AvgBatch)
						en = append(en, float64(side.Enables))
						dis = append(dis, float64(side.Disables))
						shardsOn = append(shardsOn, float64(side.CombiningShards))
					}
				}
				if repSides[ad1Uncombined].OpsPerSec > 0 {
					rUnc = append(rUnc, repSides[ad1Adaptive].OpsPerSec/repSides[ad1Uncombined].OpsPerSec)
				}
				if repSides[ad1Combined].OpsPerSec > 0 {
					rComb = append(rComb, repSides[ad1Adaptive].OpsPerSec/repSides[ad1Combined].OpsPerSec)
				}
			}
			wl := ad1Workload{
				Mix: cfg.name, Shards: cfg.k, Regime: cfg.regime,
				Uncombined: ad1Side{OpsPerSec: median(sides[ad1Uncombined])},
				Combined: ad1Side{OpsPerSec: median(sides[ad1Combined]),
					AvgBatch: median(avgBC), CombiningShards: cfg.k},
				Adaptive: ad1Side{
					OpsPerSec: median(sides[ad1Adaptive]), AvgBatch: median(avgB),
					Enables: int64(median(en)), Disables: int64(median(dis)),
					CombiningShards: int(median(shardsOn)),
				},
			}
			if len(rUnc) > 0 {
				wl.AdaptiveVsUncombined = median(rUnc)
			}
			if len(rComb) > 0 {
				wl.AdaptiveVsCombined = median(rComb)
			}
			if cfg.regime == "thin-spread" {
				pt.GateThinVsUncombined = wl.AdaptiveVsUncombined
			} else if pt.GateClusteredVsCombinedMin == 0 ||
				wl.AdaptiveVsCombined < pt.GateClusteredVsCombinedMin {
				pt.GateClusteredVsCombinedMin = wl.AdaptiveVsCombined
			}
			pt.Workloads = append(pt.Workloads, wl)
			tab.AddRow(cfg.name, cfg.k, wl.Uncombined.OpsPerSec, wl.Combined.OpsPerSec,
				wl.Adaptive.OpsPerSec, wl.AdaptiveVsUncombined, wl.AdaptiveVsCombined,
				wl.Adaptive.Enables+wl.Adaptive.Disables, wl.Adaptive.CombiningShards)
		}
		fmt.Println(tab)
		report.Points = append(report.Points, pt)
		return nil
	}); err != nil {
		return err
	}
	report.GoMaxProcs = report.Points[0].GoMaxProcs
	report.NumCPU = report.Points[0].NumCPU
	report.Workloads = report.Points[0].Workloads
	report.GateThinVsUncombined = report.Points[0].GateThinVsUncombined
	report.GateClusteredVsCombinedMin = report.Points[0].GateClusteredVsCombinedMin
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", jsonPath)
	return nil
}

// --- RS1: online shard resize tracks the workload's best fixed k ---------------

// rs1Reps is the default repetition count (-rs1reps overrides); the
// median of per-repetition ratios is reported, rotated per repetition,
// for the same host-load-drift reasons as AD1.
const rs1Reps = 5

// rs1FixedKs is the fixed-k competitor ladder; the adaptive variant may
// roam the same range.
var rs1FixedKs = []int{1, 4, 16}

// rs1Side is one variant of an RS1 repetition: two workload phases —
// skewed (hot shard) then uniform — run back-to-back on one structure.
type rs1Side struct {
	OpsPerSec        float64 `json:"ops_per_sec"`
	SkewedOpsPerSec  float64 `json:"skewed_ops_per_sec"`
	UniformOpsPerSec float64 `json:"uniform_ops_per_sec"`
	// Resize trajectory (adaptive variant only; zeros for fixed k).
	// Always serialized so a zero reads as "no transitions".
	Grows       int64 `json:"grows"`
	Shrinks     int64 `json:"shrinks"`
	FinalShards int   `json:"final_shards"`
}

// rs1ProcPoint is one GOMAXPROCS setting's full ladder, gate included:
// online resizing must stay competitive with the best fixed k at every
// P (migrations pause differently when shard drains genuinely overlap).
type rs1ProcPoint struct {
	hostTopology
	Fixed    map[string]rs1Side `json:"fixed"`
	Adaptive rs1Side            `json:"adaptive"`
	// GateVsFixed records, per fixed k, the median over repetitions of
	// the per-repetition ratio adaptive / fixed-k — both sides measured
	// back-to-back inside the same repetition (rotated order), so host
	// drift between repetitions cancels out of every ratio.
	GateVsFixed map[string]float64 `json:"gate_vs_fixed"`
	// GateAdaptiveVsBestFixed is min over k of GateVsFixed: the adaptive
	// variant against whichever fixed k its medians say is hardest to
	// beat. PR 7's gate took max-over-k INSIDE each repetition before the
	// median, which let per-rep noise pick the luckiest denominator and
	// biased the gate low (the recorded 0.914 "failure" reproduced on the
	// pre-PR binary at 0.86–0.91 — host drift amplified by the max, not a
	// regression). Judging each k by its own median ratio keeps the gate
	// self-controlled the way ad1 is.
	GateAdaptiveVsBestFixed float64 `json:"gate_adaptive_vs_best_fixed"`
}

// rs1Report is the BENCH_resize.json trajectory point. Top-level
// GoMaxProcs/NumCPU/Fixed/Adaptive/gate are the first swept P's values —
// the compatibility row — while Points carries the full -gomaxprocs
// sweep.
type rs1Report struct {
	Experiment string             `json:"experiment"`
	Timestamp  string             `json:"timestamp"`
	GoMaxProcs int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Universe   int64              `json:"universe"`
	Goroutines int                `json:"goroutines"`
	Ops        int                `json:"ops"`
	Reps       int                `json:"reps_median_of"`
	MinShards  int                `json:"min_shards"`
	MaxShards  int                `json:"max_shards"`
	Fixed      map[string]rs1Side `json:"fixed"`
	Adaptive   rs1Side            `json:"adaptive"`
	Points     []rs1ProcPoint     `json:"proc_points"`
	// GateVsFixed / GateAdaptiveVsBestFixed mirror the compat proc
	// point's fields (see rs1ProcPoint): per-k medians of per-rep
	// back-to-back ratios, and their min. The acceptance gate tracks
	// ≥ 0.95 (online resizing must not cost more than it earns against
	// the best construction-time bet on a workload whose best k CHANGES
	// mid-run).
	GateVsFixed             map[string]float64 `json:"gate_vs_fixed"`
	GateAdaptiveVsBestFixed float64            `json:"gate_adaptive_vs_best_fixed"`
}

// expRS1: the adaptive shard count against every fixed k on a workload
// whose contention profile flips mid-run: a skewed phase (90% of
// updates in one 1/16th of the universe — one hot shard at k=16, where
// PR 1 measured sharding earning nothing) followed by a uniform phase
// (where k=16 measured 2–3× k=1). No fixed k is right for both phases;
// the resize decision layer must carry the partition toward the
// contention, paying for its migrations out of the winnings. Per-point
// transition counts make the trajectory auditable. The whole ladder
// repeats per -gomaxprocs setting. Writes the BENCH_resize.json
// trajectory point unless -resizejson is empty.
func expRS1(inv invocation) error {
	ops, workers, seed := inv.ops, inv.workers, inv.seed
	reps, jsonPath := inv.resizeReps, inv.resizePath
	procs, err := inv.procs()
	if err != nil {
		return err
	}
	const (
		u         = int64(1 << 16)
		minShards = 1
		maxShards = 16
		// The adaptive variant starts at the geometric middle of its
		// band — the sensible default when the workload is unknown —
		// and must adapt from there; a decision layer that only ever
		// grows from min would get the skewed phase for free.
		midShards = 4
	)
	if workers < 16 {
		fmt.Printf("rs1: raising -workers to 16 (the gate is defined at 16 goroutines)\n")
		workers = 16
	}
	if reps < 1 {
		reps = 1
	}
	if reps > 1 && ops < 1600000 {
		fmt.Printf("rs1: raising -ops to 1600000 (a migration costs ~0.5–1s wall on this host; the transient must be amortizable, not the whole run)\n")
		ops = 1600000
	} else if reps == 1 && ops < 1600000 {
		fmt.Printf("rs1: one-rep run at %d ops — smoke only, NOT comparable to the recorded gate-grade artifact\n", ops)
	}
	fmt.Printf("== RS1: adaptive shard count vs fixed k, skewed-then-uniform (ops/s, %d goroutines) ==\n", workers)
	report := rs1Report{
		Experiment: "rs1-resize",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Universe:   u,
		Goroutines: workers,
		Ops:        ops,
		Reps:       reps,
		MinShards:  minShards,
		MaxShards:  maxShards,
	}
	skewed := workload.HotRange{U: u, HotLo: u / 2, HotWidth: u / 16, HotPct: 90}
	// One measurement: fresh structure, half-full prefill, then the two
	// phases timed back-to-back on the SAME structure (half the op
	// budget each), so the adaptive variant's migrations triggered by
	// phase 1 are paid for — or amortized — inside the measurement.
	measure := func(s harness.Set, isAdaptive *resize.Set) (rs1Side, error) {
		for key := int64(0); key < u; key += 2 {
			s.Insert(key)
		}
		var side rs1Side
		var elapsed time.Duration
		for phase, dist := range []workload.KeyDist{skewed, workload.Uniform{U: u}} {
			res, err := harness.Run(s, harness.Config{
				Workers:      workers,
				OpsPerWorker: ops / 2 / workers,
				Mix:          workload.MixUpdateOnly,
				Dist:         dist,
				Seed:         seed + int64(phase),
			})
			if err != nil {
				return rs1Side{}, err
			}
			elapsed += res.Elapsed
			if phase == 0 {
				side.SkewedOpsPerSec = res.Throughput
			} else {
				side.UniformOpsPerSec = res.Throughput
			}
		}
		side.OpsPerSec = float64(ops/2/workers*workers*2) / elapsed.Seconds()
		if isAdaptive != nil {
			st := isAdaptive.Stats()
			side.Grows, side.Shrinks, side.FinalShards = st.Grows, st.Shrinks, st.Shards
		}
		return side, nil
	}
	variants := append([]int{}, rs1FixedKs...)
	const adaptiveVariant = -1
	variants = append(variants, adaptiveVariant)
	if err := perP(procs, func(p int) error {
		pt := rs1ProcPoint{hostTopology: topologyAt(p), Fixed: map[string]rs1Side{}, GateVsFixed: map[string]float64{}}
		samples := map[int][]rs1Side{}
		ratios := map[int][]float64{}
		for rep := 0; rep < reps; rep++ {
			repSides := map[int]rs1Side{}
			for j := range variants {
				// Rotate the run order per repetition so monotone host-load
				// drift cannot systematically penalize one variant (the AD1
				// lesson).
				v := variants[(rep+j)%len(variants)]
				var side rs1Side
				var err error
				if v == adaptiveVariant {
					var s *resize.Set
					s, err = resize.NewSet(midShards,
						func(k int) (*sharded.Trie, error) { return sharded.New(u, k) },
						resize.Config{MinShards: minShards, MaxShards: maxShards})
					if err == nil {
						side, err = measure(s, s)
					}
				} else {
					var s *sharded.Trie
					s, err = sharded.New(u, v)
					if err == nil {
						side, err = measure(s, nil)
						side.FinalShards = v // fixed by construction
					}
				}
				if err != nil {
					return err
				}
				repSides[v] = side
				samples[v] = append(samples[v], side)
			}
			// One ratio per fixed k per repetition — adaptive and fixed-k
			// ran back-to-back in this same repetition, so the ratio is a
			// drift-free paired sample. The per-rep max-over-k this used
			// to take is exactly what made the gate drift-sensitive.
			for _, k := range rs1FixedKs {
				if t := repSides[k].OpsPerSec; t > 0 {
					ratios[k] = append(ratios[k], repSides[adaptiveVariant].OpsPerSec/t)
				}
			}
		}
		medianSide := func(sides []rs1Side) rs1Side {
			var tot, sk, un, gr, sh, fs []float64
			for _, s := range sides {
				tot = append(tot, s.OpsPerSec)
				sk = append(sk, s.SkewedOpsPerSec)
				un = append(un, s.UniformOpsPerSec)
				gr = append(gr, float64(s.Grows))
				sh = append(sh, float64(s.Shrinks))
				fs = append(fs, float64(s.FinalShards))
			}
			return rs1Side{
				OpsPerSec: median(tot), SkewedOpsPerSec: median(sk), UniformOpsPerSec: median(un),
				Grows: int64(median(gr)), Shrinks: int64(median(sh)), FinalShards: int(median(fs)),
			}
		}
		tab := harness.NewTable("variant", "total ops/s", "skewed ops/s", "uniform ops/s", "grows", "shrinks", "final k")
		for _, k := range rs1FixedKs {
			side := medianSide(samples[k])
			pt.Fixed[fmt.Sprintf("k=%d", k)] = side
			tab.AddRow(fmt.Sprintf("fixed k=%d", k), side.OpsPerSec, side.SkewedOpsPerSec, side.UniformOpsPerSec,
				side.Grows, side.Shrinks, k)
		}
		ad := medianSide(samples[adaptiveVariant])
		pt.Adaptive = ad
		pt.GateAdaptiveVsBestFixed = math.Inf(1)
		for _, k := range rs1FixedKs {
			r := median(ratios[k])
			pt.GateVsFixed[fmt.Sprintf("k=%d", k)] = r
			if r < pt.GateAdaptiveVsBestFixed {
				pt.GateAdaptiveVsBestFixed = r
			}
		}
		if math.IsInf(pt.GateAdaptiveVsBestFixed, 1) {
			pt.GateAdaptiveVsBestFixed = 0
		}
		tab.AddRow(fmt.Sprintf("adaptive [%d,%d]", minShards, maxShards), ad.OpsPerSec,
			ad.SkewedOpsPerSec, ad.UniformOpsPerSec, ad.Grows, ad.Shrinks, ad.FinalShards)
		fmt.Println(tab)
		for _, k := range rs1FixedKs {
			fmt.Printf("adaptive vs fixed k=%d (median of per-rep ratios): %.3f\n", k, pt.GateVsFixed[fmt.Sprintf("k=%d", k)])
		}
		fmt.Printf("adaptive vs best fixed (min over k of medians): %.3f\n", pt.GateAdaptiveVsBestFixed)
		report.Points = append(report.Points, pt)
		return nil
	}); err != nil {
		return err
	}
	report.GoMaxProcs = report.Points[0].GoMaxProcs
	report.NumCPU = report.Points[0].NumCPU
	report.Fixed = report.Points[0].Fixed
	report.Adaptive = report.Points[0].Adaptive
	report.GateVsFixed = report.Points[0].GateVsFixed
	report.GateAdaptiveVsBestFixed = report.Points[0].GateAdaptiveVsBestFixed
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", jsonPath)
	return nil
}

// --- CC1: cache-compressed descents skip empty regions in one load -------------

// cc1Reps is the default repetition count per configuration (-cc1reps
// overrides); the median is reported and the gate is the median of
// per-repetition ratios, for the same host-load-drift reasons as AD1.
const cc1Reps = 5

// cc1Side is one compression setting of a CC1 configuration.
type cc1Side struct {
	OpsPerSec     float64 `json:"ops_per_sec"`
	BitReadsPerOp float64 `json:"bit_reads_per_op"`
	StepsPerOp    float64 `json:"traversal_steps_per_op"`
	// SummaryLoadsPerOp / SkippedBitReadsPerOp quantify what the
	// compression bought: occupancy words consulted, and interior bit
	// reads the certified-empty skips made unnecessary. Zeros on the
	// uncompressed side, whose descents never consult the summary.
	SummaryLoadsPerOp    float64 `json:"summary_loads_per_op"`
	SkippedBitReadsPerOp float64 `json:"skipped_bit_reads_per_op"`
}

// cc1Workload is one (occupancy, mix) configuration measured with
// compression on and off.
type cc1Workload struct {
	Name        string  `json:"name"`
	Universe    int64   `json:"universe"`
	KeysPrefill int64   `json:"keys_prefilled"`
	Compressed  cc1Side `json:"compressed"`
	// Uncompressed is the baseline side, embedded alongside so the
	// trajectory point is self-contained.
	Uncompressed cc1Side `json:"uncompressed_baseline"`
	// SpeedupX is the median of per-repetition compressed/uncompressed
	// throughput ratios: the two sides run back-to-back inside each
	// repetition, so a drifting host-load phase hits both and cancels.
	SpeedupX float64 `json:"speedup_x"`
}

// cc1ProcPoint is one GOMAXPROCS setting's full sweep. CC1 measures solo
// descents, so P mostly moves GC/background scheduling; the per-point
// gate documents that the compression win is not a single-P accident.
type cc1ProcPoint struct {
	hostTopology
	Workloads              []cc1Workload `json:"workloads"`
	GateSparsePredSpeedupX float64       `json:"gate_sparse_pred_heavy_speedup_x"`
}

// cc1Report is the BENCH_cache.json trajectory point. Top-level
// GoMaxProcs/NumCPU/Workloads/gate are the first swept P's values — the
// compatibility row — while Points carries the full -gomaxprocs sweep.
type cc1Report struct {
	Experiment string         `json:"experiment"`
	Timestamp  string         `json:"timestamp"`
	GoMaxProcs int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Ops        int            `json:"ops"`
	Reps       int            `json:"reps_median_of"`
	Workloads  []cc1Workload  `json:"workloads"`
	Points     []cc1ProcPoint `json:"proc_points"`
	// GateSparsePredSpeedupX is the sparse-pred-heavy speedup the
	// acceptance gate tracks (≥ 1.15).
	GateSparsePredSpeedupX float64 `json:"gate_sparse_pred_heavy_speedup_x"`
}

// cc1VacuousGate returns a non-nil error when the trie's ever-inserted
// summary is all-ones: every summary probe would answer "maybe occupied",
// no descent could skip anything, and a compressed-vs-uncompressed gate
// measured in that state compares two identical traversals plus probe
// overhead — it can only pass by measuring noise. A miscalibrated prefill
// must fail the run loudly (main exits non-zero), not record a trajectory
// point that gated nothing.
func cc1VacuousGate(bits *bitstrie.Trie) error {
	if bits.SummaryAllOnes() {
		return fmt.Errorf("cc1: ever-inserted summary is all-ones after prefill (u=%d, %d keys ever inserted): no descent can skip an empty region, so the compression gate is vacuous — sparsify the prefill", bits.U(), bits.EverInsertedCount())
	}
	return nil
}

// expCC1: compressed vs uncompressed descents. Compression is a
// path-length effect — each descent consults per-64-node occupancy words
// to step over certified-empty regions in one load — so the sweep
// measures solo throughput; contention would only add scheduler noise
// around the same per-descent delta. Updates touch only the prefilled
// stride keys: the summary is monotone (ever-inserted), so uniform
// random updates would densify it over the run and drift the measurement
// out of the sparse regime under study.
//
// Rows: the sparse pred-heavy gate row (long certified-empty gaps
// between occupied leaves — the regime the summaries exist for), a
// sparse search row (Search reads its leaf in O(1) and never descends,
// so compression must be free there), and a half-full pred-heavy control
// (nothing to skip — the ratio bounds the summary-probe tax near 1×).
// The whole sweep repeats per -gomaxprocs setting. Writes the
// BENCH_cache.json trajectory point unless -cachejson is empty.
func expCC1(inv invocation) error {
	ops, seed := inv.ops, inv.seed
	reps, jsonPath := inv.cacheReps, inv.cachePath
	procs, err := inv.procs()
	if err != nil {
		return err
	}
	if reps < 1 {
		reps = 1
	}
	if ops < 200000 {
		fmt.Printf("cc1: raising -ops to 200000 (short solo runs measure cache warm-up, not the descent steady state)\n")
		ops = 200000
	}
	fmt.Println("== CC1: compressed vs uncompressed descents (solo ops/s) ==")
	type cc1Config struct {
		name string
		u    int64
		gap  int64 // prefill stride; u/gap keys ever inserted
		// pred/search are op-mix percentages; the remainder is stride-key
		// updates (half Insert, half Delete).
		pred, search int
		// opsMul scales the op budget: rows dominated by sub-µs operations
		// need more ops for the same wall-clock measurement window.
		opsMul int
		gate   bool
	}
	configs := []cc1Config{
		{name: "sparse-pred-heavy", u: 1 << 22, gap: 16384, pred: 80, opsMul: 1, gate: true},
		{name: "sparse-search", u: 1 << 20, gap: 4096, search: 90, opsMul: 8},
		{name: "half-full-pred-heavy", u: 1 << 16, gap: 2, pred: 80, opsMul: 4},
	}
	report := cc1Report{
		Experiment: "cc1-cache",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Ops:        ops,
		Reps:       reps,
	}
	// One measurement: fresh trie with the compression setting applied
	// before any insert, stride prefill, vacuous-gate check, stats
	// attached post-prefill (construction traffic stays out of the
	// metric), then the timed solo loop over precomputed keys.
	measure := func(cfg cc1Config, compressed bool) (cc1Side, error) {
		tr := mustTrie(cfg.u)
		tr.Bits().SetCompressedDescents(compressed)
		for k := int64(0); k < cfg.u; k += cfg.gap {
			tr.Insert(k)
		}
		if cfg.gate {
			if err := cc1VacuousGate(tr.Bits()); err != nil {
				return cc1Side{}, err
			}
		}
		bstats := &bitstrie.Stats{}
		tr.Bits().SetStats(bstats)
		rng := rand.New(rand.NewSource(seed))
		queries := make([]int64, 4096)
		strides := make([]int64, 4096)
		picks := make([]int, 4096)
		for i := range queries {
			queries[i] = rng.Int63n(cfg.u)
			strides[i] = rng.Int63n(cfg.u/cfg.gap) * cfg.gap
			picks[i] = rng.Intn(100)
		}
		n0 := ops * cfg.opsMul
		t0 := time.Now()
		for i := 0; i < n0; i++ {
			j := i & 4095
			switch p := picks[j]; {
			case p < cfg.pred:
				tr.Predecessor(queries[j])
			case p < cfg.pred+cfg.search:
				tr.Search(queries[j])
			case p&1 == 0:
				tr.Insert(strides[j])
			default:
				tr.Delete(strides[j])
			}
		}
		elapsed := time.Since(t0)
		n := float64(n0)
		return cc1Side{
			OpsPerSec:            n / elapsed.Seconds(),
			BitReadsPerOp:        float64(bstats.BitReads.Load()) / n,
			StepsPerOp:           float64(bstats.TraversalSteps.Load()) / n,
			SummaryLoadsPerOp:    float64(bstats.SummaryLoads.Load()) / n,
			SkippedBitReadsPerOp: float64(bstats.SkippedBitReads.Load()) / n,
		}, nil
	}
	if err := perP(procs, func(p int) error {
		pt := cc1ProcPoint{hostTopology: topologyAt(p)}
		tab := harness.NewTable("workload", "ops/s off", "ops/s on", "speedup x",
			"bitreads/op off", "bitreads/op on", "skipped/op")
		for _, cfg := range configs {
			var offT, onT, offB, onB, offS, onS, onSum, onSkip, ratios []float64
			for rep := 0; rep < reps; rep++ {
				// Rotate which side runs first per repetition so monotone
				// host-load drift cannot systematically penalize one side.
				var on, off cc1Side
				for j := 0; j < 2; j++ {
					compressed := (rep+j)%2 == 0
					side, err := measure(cfg, compressed)
					if err != nil {
						return err
					}
					if compressed {
						on = side
					} else {
						off = side
					}
				}
				offT, onT = append(offT, off.OpsPerSec), append(onT, on.OpsPerSec)
				offB, onB = append(offB, off.BitReadsPerOp), append(onB, on.BitReadsPerOp)
				offS, onS = append(offS, off.StepsPerOp), append(onS, on.StepsPerOp)
				onSum = append(onSum, on.SummaryLoadsPerOp)
				onSkip = append(onSkip, on.SkippedBitReadsPerOp)
				if off.OpsPerSec > 0 {
					ratios = append(ratios, on.OpsPerSec/off.OpsPerSec)
				}
			}
			wl := cc1Workload{
				Name:        cfg.name,
				Universe:    cfg.u,
				KeysPrefill: cfg.u / cfg.gap,
				Compressed: cc1Side{
					OpsPerSec: median(onT), BitReadsPerOp: median(onB), StepsPerOp: median(onS),
					SummaryLoadsPerOp: median(onSum), SkippedBitReadsPerOp: median(onSkip),
				},
				Uncompressed: cc1Side{
					OpsPerSec: median(offT), BitReadsPerOp: median(offB), StepsPerOp: median(offS),
				},
				SpeedupX: median(ratios),
			}
			if cfg.gate {
				pt.GateSparsePredSpeedupX = wl.SpeedupX
			}
			pt.Workloads = append(pt.Workloads, wl)
			tab.AddRow(cfg.name, wl.Uncompressed.OpsPerSec, wl.Compressed.OpsPerSec, wl.SpeedupX,
				wl.Uncompressed.BitReadsPerOp, wl.Compressed.BitReadsPerOp,
				wl.Compressed.SkippedBitReadsPerOp)
		}
		fmt.Println(tab)
		report.Points = append(report.Points, pt)
		return nil
	}); err != nil {
		return err
	}
	report.GoMaxProcs = report.Points[0].GoMaxProcs
	report.NumCPU = report.Points[0].NumCPU
	report.Workloads = report.Points[0].Workloads
	report.GateSparsePredSpeedupX = report.Points[0].GateSparsePredSpeedupX
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", jsonPath)
	return nil
}

// --- MP1: core-aware placement and the P-scaling curve -------------------------

// mp1Reps is the default repetition count per (variant, P) configuration
// (-mp1reps overrides); the median of per-repetition ratios is reported,
// rotated per repetition, for the same host-load-drift reasons as AD1.
const mp1Reps = 5

// mp1Variant indexes the four structures each repetition measures.
const (
	mp1Placed = iota // combining shards with an identity placement hint
	mp1Plain         // combining shards, unplaced (rotating slot claim)
	mp1K             // plain sharded, high k — the P-scaling curve's top
	mp1K1            // plain sharded, k=1 — the P-scaling curve's floor
	mp1Variants
)

// mp1ProcPoint is one GOMAXPROCS setting's measurements: the placement
// A/B pair plus the sharded-vs-k=1 scaling pair that anchors how much
// parallelism the host actually delivers at this P.
type mp1ProcPoint struct {
	hostTopology
	PlacedOpsPerSec float64 `json:"placed_ops_per_sec"`
	PlainOpsPerSec  float64 `json:"plain_ops_per_sec"`
	// PlacedVsPlain is the median of per-repetition placed/plain ratios
	// (the two sides run adjacently inside each repetition, so drifting
	// host load cancels).
	PlacedVsPlain float64 `json:"placed_vs_plain"`
	// The P-scaling curve: plain sharded high-k vs k=1 throughput at
	// this P. Their ratio rising with P is the multicore payoff of the
	// partition itself, placement aside.
	ShardedOpsPerSec float64 `json:"sharded_k_ops_per_sec"`
	K1OpsPerSec      float64 `json:"sharded_k1_ops_per_sec"`
	ShardedVsK1      float64 `json:"sharded_vs_k1"`
}

// mp1Report is the BENCH_multicore.json trajectory point.
type mp1Report struct {
	Experiment string         `json:"experiment"`
	Timestamp  string         `json:"timestamp"`
	GoMaxProcs int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Universe   int64          `json:"universe"`
	Goroutines int            `json:"goroutines"`
	Ops        int            `json:"ops"`
	Shards     int            `json:"shards"`
	Reps       int            `json:"reps_median_of"`
	Placement  []int          `json:"placement_hint"`
	Points     []mp1ProcPoint `json:"proc_points"`
	// GatePlacedVsPlainMin is the minimum over the swept P values of the
	// per-P median placed/plain throughput ratio; the acceptance gate
	// tracks ≥ 1.0 (the hint must never cost throughput — it only
	// narrows where a submitter looks for a slot).
	GatePlacedVsPlainMin float64 `json:"gate_placed_vs_plain_min_over_p"`
}

// expMP1: core-aware shard placement across a GOMAXPROCS sweep. The
// workload is the placement best case by construction — disjoint
// per-worker key bands, so each worker funnels into one shard's combiner
// and a sticky slot claim keeps it on the same publication slot (and the
// same arena cache lines) round after round — measured against the
// identical trie without the hint, where every claim starts from a
// rotating ticket. The plain-sharded k vs k=1 pair rides along as the
// P-scaling curve: how much the partition itself earns as real
// parallelism (or oversubscribed timeslicing — each point records its
// topology) increases. Unlike the other trajectory experiments, the P
// sweep IS the experiment, so an empty -gomaxprocs defaults to 1,4,8
// rather than the current setting. Writes the BENCH_multicore.json
// trajectory point unless -multicorejson is empty.
func expMP1(inv invocation) error {
	ops, workers, seed := inv.ops, inv.workers, inv.seed
	reps, jsonPath := inv.multicoreReps, inv.multicorePath
	k := inv.shards
	if k < 2 {
		k = 16
	}
	procs, err := inv.procsDefault([]int{1, 4, 8})
	if err != nil {
		return err
	}
	const u = int64(1 << 16)
	if workers < 16 {
		fmt.Printf("mp1: raising -workers to 16 (the gate is defined at 16 goroutines)\n")
		workers = 16
	}
	if reps < 1 {
		reps = 1
	}
	if ops < 400000 {
		fmt.Printf("mp1: raising -ops to 400000 (short runs measure warm-up, not the placement steady state)\n")
		ops = 400000
	}
	fmt.Printf("== MP1: placed vs unplaced combining shards across GOMAXPROCS (ops/s, %d goroutines) ==\n", workers)
	// Identity hint: each shard its own placement group, so each shard's
	// combiner carves a private arena and every worker (pinned to one
	// shard by its band) re-finds its slot in that arena.
	identity := make([]int, k)
	for i := range identity {
		identity[i] = i
	}
	report := mp1Report{
		Experiment: "mp1-multicore",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Universe:   u,
		Goroutines: workers,
		Ops:        ops,
		Shards:     k,
		Reps:       reps,
		Placement:  identity,
	}
	bands := workload.Bands(u, workers)
	mks := [mp1Variants]func() (*sharded.Trie, error){
		mp1Placed: func() (*sharded.Trie, error) {
			return sharded.NewWithOptions(u, k, sharded.Options{Combining: true, Placement: identity})
		},
		mp1Plain: func() (*sharded.Trie, error) { return sharded.NewCombining(u, k) },
		mp1K:     func() (*sharded.Trie, error) { return sharded.New(u, k) },
		mp1K1:    func() (*sharded.Trie, error) { return sharded.New(u, 1) },
	}
	// One measurement: fresh trie, half-full prefill, timed disjoint-band
	// update-heavy run.
	measure := func(variant int) (float64, error) {
		tr, err := mks[variant]()
		if err != nil {
			return 0, err
		}
		for key := int64(0); key < u; key += 2 {
			tr.Insert(key)
		}
		res, err := harness.Run(tr, harness.Config{
			Workers:      workers,
			OpsPerWorker: ops / workers,
			Mix:          workload.MixUpdateHeavy,
			DistFor:      func(w int) workload.KeyDist { return bands[w%len(bands)] },
			Seed:         seed,
		})
		if err != nil {
			return 0, err
		}
		return res.Throughput, nil
	}
	tab := harness.NewTable("gomaxprocs", "placed ops/s", "plain ops/s", "placed/plain",
		fmt.Sprintf("k=%d ops/s", k), "k=1 ops/s", "scaling x")
	if err := perP(procs, func(p int) error {
		pt := mp1ProcPoint{hostTopology: topologyAt(p)}
		samples := make([][]float64, mp1Variants)
		var ratios []float64
		for rep := 0; rep < reps; rep++ {
			// Rotate the variant order per repetition (the AD1 lesson:
			// a fixed order lets monotone host-load drift systematically
			// penalize whichever variant always runs last).
			var repT [mp1Variants]float64
			for j := 0; j < mp1Variants; j++ {
				v := (rep + j) % mp1Variants
				tput, err := measure(v)
				if err != nil {
					return err
				}
				repT[v] = tput
				samples[v] = append(samples[v], tput)
			}
			if repT[mp1Plain] > 0 {
				ratios = append(ratios, repT[mp1Placed]/repT[mp1Plain])
			}
		}
		pt.PlacedOpsPerSec = median(samples[mp1Placed])
		pt.PlainOpsPerSec = median(samples[mp1Plain])
		pt.PlacedVsPlain = median(ratios)
		pt.ShardedOpsPerSec = median(samples[mp1K])
		pt.K1OpsPerSec = median(samples[mp1K1])
		if pt.K1OpsPerSec > 0 {
			pt.ShardedVsK1 = pt.ShardedOpsPerSec / pt.K1OpsPerSec
		}
		tab.AddRow(p, pt.PlacedOpsPerSec, pt.PlainOpsPerSec, pt.PlacedVsPlain,
			pt.ShardedOpsPerSec, pt.K1OpsPerSec, pt.ShardedVsK1)
		report.Points = append(report.Points, pt)
		return nil
	}); err != nil {
		return err
	}
	report.GoMaxProcs = report.Points[0].GoMaxProcs
	report.NumCPU = report.Points[0].NumCPU
	for i, pt := range report.Points {
		if i == 0 || pt.PlacedVsPlain < report.GatePlacedVsPlainMin {
			report.GatePlacedVsPlainMin = pt.PlacedVsPlain
		}
	}
	fmt.Println(tab)
	fmt.Printf("placed vs plain, min over P (median of per-rep ratios): %.3f\n", report.GatePlacedVsPlainMin)
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", jsonPath)
	return nil
}

// --- OB1: the observability layer's hot-path cost ------------------------------

// ob1Reps is the default repetition count per configuration (-ob1reps
// overrides); the median of per-repetition ratios is reported, rotated
// per repetition, for the same host-load-drift reasons as MP1.
const ob1Reps = 5

// ob1Variant is one side (instrumented or stripped) of an OB1
// configuration, measured from a MemStats delta around the timed run the
// way A3 measures allocation cost.
type ob1Variant struct {
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// ob1Workload is one gated mix: the default-instrumented facade against
// the WithoutObservability build of the identical configuration.
type ob1Workload struct {
	Mix          string     `json:"mix"`
	Workers      int        `json:"workers"`
	Combining    bool       `json:"combining"`
	Instrumented ob1Variant `json:"instrumented"`
	Stripped     ob1Variant `json:"stripped_baseline"`
	// ThroughputRatio is the median of per-repetition
	// instrumented/stripped ratios — the two sides run adjacently inside
	// each repetition with the order rotated, so drifting host load
	// cancels instead of systematically penalizing one side.
	ThroughputRatio float64 `json:"throughput_ratio_instrumented_vs_stripped"`
}

// ob1ProcPoint is one GOMAXPROCS setting's measurements with its gates.
type ob1ProcPoint struct {
	hostTopology
	Workloads []ob1Workload `json:"workloads"`
	// GateMinThroughputRatio is the smallest instrumented/stripped ratio
	// across this point's workloads; the acceptance gate tracks ≥ 0.97.
	GateMinThroughputRatio float64 `json:"gate_min_throughput_ratio"`
	// GateCoreAllocsPerOp is the instrumented allocs/op on the
	// core-pred-heavy mix — A3's ≤ 0.5 steady-state gate, re-measured
	// with instrumentation on: the record path must stay
	// allocation-free, so turning observability on cannot move it. The
	// clustered-combining mix's allocs are recorded on both sides for
	// the unchanged-vs-stripped comparison but not gated at 0.5 (the
	// combining batch machinery allocates ~1.5/op with or without
	// instrumentation).
	GateCoreAllocsPerOp float64 `json:"gate_core_pred_heavy_allocs_per_op"`
}

// ob1Report is the BENCH_obs.json trajectory point. Top-level
// GoMaxProcs/NumCPU/Workloads/gates are the first swept P's values — the
// compatibility row — while Points carries the full -gomaxprocs sweep.
type ob1Report struct {
	Experiment             string         `json:"experiment"`
	Timestamp              string         `json:"timestamp"`
	GoMaxProcs             int            `json:"gomaxprocs"`
	NumCPU                 int            `json:"num_cpu"`
	Universe               int64          `json:"universe"`
	Ops                    int            `json:"ops"`
	Sampling               int64          `json:"latency_sampling_1_in_n"`
	Reps                   int            `json:"reps_median_of"`
	Workloads              []ob1Workload  `json:"workloads"`
	GateMinThroughputRatio float64        `json:"gate_min_throughput_ratio"`
	GateCoreAllocsPerOp    float64        `json:"gate_core_pred_heavy_allocs_per_op"`
	Points                 []ob1ProcPoint `json:"proc_points"`
}

// ob1Set adapts the facade trie (error-returning methods over a
// validated universe) to the harness's plain Set interface. The workload
// generator only produces in-universe keys, so the errors cannot fire;
// they are discarded rather than branched on to keep the adapter off the
// measured difference between the two sides (both sides pay it equally).
type ob1Set struct{ t *lockfreetrie.Trie }

func (s ob1Set) Search(x int64) bool { ok, _ := s.t.Contains(x); return ok }
func (s ob1Set) Insert(x int64)      { _ = s.t.Insert(x) }
func (s ob1Set) Delete(x int64)      { _ = s.t.Delete(x) }
func (s ob1Set) Predecessor(y int64) (p int64) {
	p, _ = s.t.Predecessor(y)
	return p
}

// expOB1: what the always-on observability layer costs where it hurts —
// the two regimes the gate names. "core-pred-heavy" is the single-shard
// read-dominated path where one extra branch per op would show; the
// clustered update mix is cb1's oversubscribed-combiner regime, where
// the instrumentation rides the combiner election/retraction path and
// the EBR epoch-advance path as well as the op counters. Each side is a
// complete facade build — the instrumented one with the default-on
// registry, histograms (DefaultLatencySampling) and event ring; the
// stripped one WithoutObservability, which compiles the same trie with
// every o != nil branch dead. Writes the BENCH_obs.json trajectory
// point unless -obsjson is empty.
func expOB1(inv invocation) error {
	ops, seed := inv.ops, inv.seed
	reps, jsonPath := inv.obsReps, inv.obsPath
	procs, err := inv.procs()
	if err != nil {
		return err
	}
	const u = int64(1 << 16)
	coreWorkers := inv.workers
	if coreWorkers < 2 {
		coreWorkers = 2
	}
	if reps < 1 {
		reps = 1
	}
	if ops < 400000 {
		fmt.Printf("ob1: raising -ops to 400000 (short runs measure warm-up, not the steady-state overhead)\n")
		ops = 400000
	}
	fmt.Println("== OB1: instrumented vs stripped facade (gate: ratio ≥ 0.97, allocs/op ≤ 0.5) ==")
	report := ob1Report{
		Experiment: "ob1-observability",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Universe:   u,
		Ops:        ops,
		Sampling:   lockfreetrie.DefaultLatencySampling,
		Reps:       reps,
	}
	configs := []struct {
		name      string
		mix       workload.Mix
		workers   int
		combining bool
		dist      workload.KeyDist
	}{
		{"core-pred-heavy", workload.MixPredHeavy, coreWorkers, false,
			workload.Uniform{U: u}},
		// cb1's oversubscribed-combiner regime: 16 goroutines funneling
		// 90% of an update-only stream into one hot range.
		{"clustered-update-combining", workload.MixUpdateOnly, 16, true,
			workload.HotRange{U: u, HotLo: u / 2, HotWidth: u / 16, HotPct: 90}},
	}
	// One measurement: fresh facade trie, half-full prefill, A3's
	// warm-settle-rewarm dance so sync.Pool victims and the first-GC heap
	// growth stay out of the MemStats window, then a timed barrier run.
	measure := func(ci int, instrumented bool) (ob1Variant, error) {
		cfg := configs[ci]
		var opts []lockfreetrie.Option
		if cfg.combining {
			opts = append(opts, lockfreetrie.WithCombining())
		}
		if !instrumented {
			opts = append(opts, lockfreetrie.WithoutObservability())
		}
		tr, err := lockfreetrie.New(u, opts...)
		if err != nil {
			return ob1Variant{}, err
		}
		for key := int64(0); key < u; key += 2 {
			if err := tr.Insert(key); err != nil {
				return ob1Variant{}, err
			}
		}
		s := ob1Set{tr}
		gens := make([]*workload.Generator, cfg.workers)
		for i := range gens {
			g, err := workload.NewGenerator(cfg.mix, cfg.dist, seed+int64(i))
			if err != nil {
				return ob1Variant{}, err
			}
			gens[i] = g
		}
		runOps := func(n int) time.Duration {
			var wg sync.WaitGroup
			start := make(chan struct{})
			for w := 0; w < cfg.workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					<-start
					g := gens[id]
					for i := 0; i < n/cfg.workers; i++ {
						harness.ApplyOp(s, g.Next())
					}
				}(w)
			}
			t0 := time.Now()
			close(start)
			wg.Wait()
			return time.Since(t0)
		}
		runOps(ops / 2)
		runtime.GC()
		runOps(ops / 10)
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		elapsed := runOps(ops)
		runtime.ReadMemStats(&m1)
		n := float64(ops / cfg.workers * cfg.workers)
		return ob1Variant{
			OpsPerSec:   n / elapsed.Seconds(),
			AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / n,
			BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		}, nil
	}
	if err := perP(procs, func(p int) error {
		pt := ob1ProcPoint{hostTopology: topologyAt(p)}
		tab := harness.NewTable("workload", "workers", "ops/s instr", "ops/s stripped",
			"ratio", "allocs/op instr", "allocs/op stripped")
		for ci, cfg := range configs {
			var instT, strT, instA, strA, instB, strB, ratios []float64
			for rep := 0; rep < reps; rep++ {
				// Rotate which side runs first (the AD1 lesson: a fixed
				// order lets monotone host-load drift systematically
				// penalize whichever side always runs last).
				var inst, str ob1Variant
				var err error
				if rep%2 == 0 {
					if inst, err = measure(ci, true); err == nil {
						str, err = measure(ci, false)
					}
				} else {
					if str, err = measure(ci, false); err == nil {
						inst, err = measure(ci, true)
					}
				}
				if err != nil {
					return err
				}
				instT, strT = append(instT, inst.OpsPerSec), append(strT, str.OpsPerSec)
				instA, strA = append(instA, inst.AllocsPerOp), append(strA, str.AllocsPerOp)
				instB, strB = append(instB, inst.BytesPerOp), append(strB, str.BytesPerOp)
				if str.OpsPerSec > 0 {
					ratios = append(ratios, inst.OpsPerSec/str.OpsPerSec)
				}
			}
			wl := ob1Workload{
				Mix: cfg.name, Workers: cfg.workers, Combining: cfg.combining,
				Instrumented: ob1Variant{
					OpsPerSec: median(instT), AllocsPerOp: median(instA), BytesPerOp: median(instB),
				},
				Stripped: ob1Variant{
					OpsPerSec: median(strT), AllocsPerOp: median(strA), BytesPerOp: median(strB),
				},
				ThroughputRatio: median(ratios),
			}
			if ci == 0 || wl.ThroughputRatio < pt.GateMinThroughputRatio {
				pt.GateMinThroughputRatio = wl.ThroughputRatio
			}
			if cfg.name == "core-pred-heavy" {
				pt.GateCoreAllocsPerOp = wl.Instrumented.AllocsPerOp
			}
			pt.Workloads = append(pt.Workloads, wl)
			tab.AddRow(cfg.name, cfg.workers, wl.Instrumented.OpsPerSec, wl.Stripped.OpsPerSec,
				wl.ThroughputRatio, wl.Instrumented.AllocsPerOp, wl.Stripped.AllocsPerOp)
		}
		fmt.Println(tab)
		report.Points = append(report.Points, pt)
		return nil
	}); err != nil {
		return err
	}
	report.GoMaxProcs = report.Points[0].GoMaxProcs
	report.NumCPU = report.Points[0].NumCPU
	report.Workloads = report.Points[0].Workloads
	for i, pt := range report.Points {
		if i == 0 || pt.GateMinThroughputRatio < report.GateMinThroughputRatio {
			report.GateMinThroughputRatio = pt.GateMinThroughputRatio
		}
		if pt.GateCoreAllocsPerOp > report.GateCoreAllocsPerOp {
			report.GateCoreAllocsPerOp = pt.GateCoreAllocsPerOp
		}
	}
	fmt.Printf("gate, worst over P: throughput ratio %.3f (want ≥ 0.97), core-pred-heavy instrumented allocs/op %.3f (want ≤ 0.5)\n",
		report.GateMinThroughputRatio, report.GateCoreAllocsPerOp)
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", jsonPath)
	return nil
}
