package main

// --- WL1: the write-ahead-log durability tax -----------------------------------

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	lockfreetrie "repro"
	"repro/internal/harness"
	"repro/internal/workload"
)

// wl1Reps is the default repetition count (-wl1reps overrides); gates
// are medians of per-repetition back-to-back ratios, run order rotated,
// like every other trajectory experiment.
const wl1Reps = 3

// wl1 fixed shape: the sv1 universe, batches sized to the server's
// sweep scale so one ApplyBatch is one group-committed WAL record run.
const (
	wl1Universe = int64(1 << 16)
	wl1Batch    = 256
)

// wl1Policy is one durability configuration under test. The nil-opts
// first entry is the non-durable baseline every ratio divides by.
type wl1Policy struct {
	name    string
	durable bool
	opts    []lockfreetrie.DurabilityOption
}

// wl1Policies: the sync-policy ladder. "buffered" appends without ever
// fsyncing inside a run (the OS flushes), the every-N rungs group-commit
// at decreasing granularity, and interval100ms trades the count trigger
// for a wall-clock one. every1 is deliberately absent: a synchronous
// fsync per op measures the disk, not the log.
func wl1Policies() []wl1Policy {
	return []wl1Policy{
		{name: "nondurable"},
		{name: "buffered", durable: true,
			opts: []lockfreetrie.DurabilityOption{lockfreetrie.WithSyncEvery(1 << 20)}},
		{name: "every4096", durable: true,
			opts: []lockfreetrie.DurabilityOption{lockfreetrie.WithSyncEvery(4096)}},
		{name: "every1024", durable: true,
			opts: []lockfreetrie.DurabilityOption{lockfreetrie.WithSyncEvery(1024)}},
		{name: "interval100ms", durable: true,
			opts: []lockfreetrie.DurabilityOption{lockfreetrie.WithSyncInterval(100 * time.Millisecond)}},
	}
}

// wl1Side is one policy's measurement at one P.
type wl1Side struct {
	Name      string  `json:"name"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// RatioVsNonDurable is the median of per-rep back-to-back ratios
	// against the same rep's non-durable run (1.0 for the baseline row).
	RatioVsNonDurable float64 `json:"ratio_vs_nondurable"`
	Fsyncs            int64   `json:"fsyncs"`
	WalBytes          int64   `json:"wal_bytes"`
	// OpsPerRecord is the realized group-commit width: logged ops per WAL
	// record. A value near wl1Batch means one ApplyBatch sweep really did
	// land as one contiguous record run.
	OpsPerRecord float64 `json:"ops_per_record"`
}

// wl1ProcPoint is one GOMAXPROCS setting's policy ladder.
type wl1ProcPoint struct {
	hostTopology
	Policies []wl1Side `json:"policies"`
	// GateEvery1024VsNonDurable is the acceptance gate: group-committed
	// durability at WithSyncEvery(1024) must keep ≥ 70% of the in-memory
	// batched update throughput, or the WAL is in the hot path rather
	// than riding the sweeps.
	GateEvery1024VsNonDurable float64 `json:"gate_every1024_vs_nondurable"`
}

// wl1Report is the BENCH_wal.json artifact. Top-level fields mirror the
// first swept P (the compat row).
type wl1Report struct {
	Experiment string         `json:"experiment"`
	Timestamp  string         `json:"timestamp"`
	GoMaxProcs int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Universe   int64          `json:"universe"`
	Workers    int            `json:"workers"`
	Batch      int            `json:"batch"`
	Ops        int            `json:"ops"`
	Reps       int            `json:"reps_median_of"`
	Policies   []wl1Side      `json:"policies"`
	Points     []wl1ProcPoint `json:"proc_points"`

	GateEvery1024VsNonDurable float64 `json:"gate_every1024_vs_nondurable"`
}

// expWL1: what durability costs. The same closed-loop batched update
// workload — workers applying sorted wl1Batch-sized ApplyBatch sweeps —
// runs against an in-memory trie and against WithDurability under the
// sync-policy ladder, each rep back-to-back with rotated order, each
// durable run in a fresh directory. The interesting number is the
// every1024 ratio: with the WAL riding the existing sweeps (one append
// lock acquisition and one record run per sweep, fsync amortized over
// 1024 ops) the tax should be bounded, which is exactly what the gate
// pins. Writes BENCH_wal.json unless -waljson is empty.
func expWL1(inv invocation) error {
	reps, jsonPath := inv.walReps, inv.walPath
	if reps < 1 {
		reps = 1
	}
	ops := inv.ops
	if ops < 20000 {
		ops = 20000
	}
	workers := inv.workers
	if workers < 1 {
		workers = 1
	}
	procs, err := inv.procs()
	if err != nil {
		return err
	}
	fmt.Printf("== WL1: WAL durability tax (batched updates, %d workers, %d ops, median of %d) ==\n",
		workers, ops, reps)
	report := wl1Report{
		Experiment: "wl1-wal",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Universe:   wl1Universe,
		Workers:    workers,
		Batch:      wl1Batch,
		Ops:        ops,
		Reps:       reps,
	}
	policies := wl1Policies()
	if err := perP(procs, func(p int) error {
		pt := wl1ProcPoint{hostTopology: topologyAt(p)}
		samples := map[string][]wl1Side{}
		ratios := map[string][]float64{}
		for rep := 0; rep < reps; rep++ {
			repSides := map[string]wl1Side{}
			for j := range policies {
				pol := policies[(rep+j)%len(policies)]
				side, err := wl1Measure(pol, ops, workers, inv.seed+int64(rep))
				if err != nil {
					return fmt.Errorf("%s: %w", pol.name, err)
				}
				repSides[pol.name] = side
				samples[pol.name] = append(samples[pol.name], side)
			}
			base := repSides["nondurable"].OpsPerSec
			if base > 0 {
				for _, pol := range policies {
					ratios[pol.name] = append(ratios[pol.name], repSides[pol.name].OpsPerSec/base)
				}
			}
		}
		tab := harness.NewTable("policy", "ops/s", "vs nondurable", "fsyncs", "wal MiB", "ops/record")
		for _, pol := range policies {
			var ps, fs, wb, opr []float64
			for _, s := range samples[pol.name] {
				ps = append(ps, s.OpsPerSec)
				fs = append(fs, float64(s.Fsyncs))
				wb = append(wb, float64(s.WalBytes))
				opr = append(opr, s.OpsPerRecord)
			}
			side := wl1Side{
				Name:              pol.name,
				OpsPerSec:         median(ps),
				RatioVsNonDurable: median(ratios[pol.name]),
				Fsyncs:            int64(median(fs)),
				WalBytes:          int64(median(wb)),
				OpsPerRecord:      median(opr),
			}
			pt.Policies = append(pt.Policies, side)
			if pol.name == "every1024" {
				pt.GateEvery1024VsNonDurable = side.RatioVsNonDurable
			}
			tab.AddRow(side.Name, side.OpsPerSec, side.RatioVsNonDurable,
				float64(side.Fsyncs), float64(side.WalBytes)/float64(1<<20), side.OpsPerRecord)
		}
		fmt.Println(tab)
		fmt.Printf("every1024 vs nondurable (median of per-rep ratios): %.3f\n\n",
			pt.GateEvery1024VsNonDurable)
		report.Points = append(report.Points, pt)
		return nil
	}); err != nil {
		return err
	}
	report.GoMaxProcs = report.Points[0].GoMaxProcs
	report.NumCPU = report.Points[0].NumCPU
	report.Policies = report.Points[0].Policies
	report.GateEvery1024VsNonDurable = report.Points[0].GateEvery1024VsNonDurable
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", jsonPath)
	return nil
}

// wl1Measure runs the batched update workload against one policy's
// trie, returning ops/sec and the run's WAL counters. Durable runs get
// a fresh directory, removed afterward — each measurement logs from a
// cold, empty WAL.
func wl1Measure(pol wl1Policy, ops, workers int, seed int64) (wl1Side, error) {
	side := wl1Side{Name: pol.name}
	// The previous policy's abandoned trie (and WAL buffers) are its own
	// GC debt, not a tax on this measurement.
	runtime.GC()
	var opts []lockfreetrie.Option
	if pol.durable {
		dir, err := os.MkdirTemp("", "triebench-wl1-")
		if err != nil {
			return side, err
		}
		defer os.RemoveAll(dir)
		opts = append(opts, lockfreetrie.WithDurability(dir, pol.opts...))
	}
	tr, err := lockfreetrie.New(wl1Universe, opts...)
	if err != nil {
		return side, err
	}
	defer tr.Close()
	perWorker := ops / workers
	batches := make([][][]lockfreetrie.Op, workers)
	for w := range batches {
		gen, err := workload.NewGenerator(workload.MixUpdateOnly, workload.Uniform{U: wl1Universe}, seed+int64(w))
		if err != nil {
			return side, err
		}
		stream := gen.Fill(perWorker)
		for off := 0; off < len(stream); off += wl1Batch {
			end := off + wl1Batch
			if end > len(stream) {
				end = len(stream)
			}
			batch := make([]lockfreetrie.Op, 0, end-off)
			for _, op := range stream[off:end] {
				kind := lockfreetrie.OpInsert
				if op.Kind == workload.OpDelete {
					kind = lockfreetrie.OpDelete
				}
				batch = append(batch, lockfreetrie.Op{Kind: kind, Key: op.Key})
			}
			batches[w] = append(batches[w], batch)
		}
	}
	start := make(chan struct{})
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(bs [][]lockfreetrie.Op) {
			defer wg.Done()
			<-start
			for _, b := range bs {
				if errs := tr.ApplyBatch(b); errs != nil {
					for _, e := range errs {
						if e != nil {
							errCh <- e
							return
						}
					}
				}
			}
		}(batches[w])
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	select {
	case err := <-errCh:
		return side, err
	default:
	}
	side.OpsPerSec = float64(perWorker*workers) / elapsed.Seconds()
	if pol.durable {
		snap := tr.MetricsSnapshot()
		side.Fsyncs = snap.Counters["wal.fsyncs"]
		side.WalBytes = snap.Counters["wal.append.bytes"]
		if recs := snap.Counters["wal.append.records"]; recs > 0 {
			side.OpsPerRecord = float64(snap.Counters["wal.append.ops"]) / float64(recs)
		}
	}
	return side, nil
}
