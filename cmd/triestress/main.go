// Command triestress hammers the lock-free binary trie with randomized
// concurrent workloads and verifies linearizability of every recorded
// history plus exact quiescent state. It exits non-zero on the first
// violation, printing the offending history.
//
// Usage:
//
//	triestress -rounds 500 -workers 4 -ops 8 -u 16
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/lincheck"
)

func main() {
	var (
		rounds  = flag.Int("rounds", 500, "independent rounds to run")
		workers = flag.Int("workers", 4, "goroutines per round")
		ops     = flag.Int("ops", 8, "operations per goroutine per round")
		u       = flag.Int64("u", 16, "universe size (≤ 64 for checking)")
		seed    = flag.Int64("seed", 1, "base random seed")
	)
	flag.Parse()
	if err := run(*rounds, *workers, *ops, *u, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "triestress:", err)
		os.Exit(1)
	}
	fmt.Printf("triestress: %d rounds × %d workers × %d ops linearizable ✓\n",
		*rounds, *workers, *ops)
}

func run(rounds, workers, ops int, u, seed int64) error {
	if u > 64 {
		return fmt.Errorf("universe %d too large for the checker (max 64)", u)
	}
	if workers*ops > 64 {
		return fmt.Errorf("%d total ops exceed the checker's 64-op limit", workers*ops)
	}
	for round := 0; round < rounds; round++ {
		if err := oneRound(round, workers, ops, u, seed); err != nil {
			return err
		}
	}
	return nil
}

func oneRound(round, workers, ops int, u, seed int64) error {
	tr, err := core.New(u)
	if err != nil {
		return err
	}
	rec := lincheck.NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(round*1000+id)))
			for i := 0; i < ops; i++ {
				k := rng.Int63n(u)
				switch rng.Intn(4) {
				case 0:
					inv := rec.Begin()
					tr.Insert(k)
					rec.End(lincheck.OpInsert, k, 0, inv)
				case 1:
					inv := rec.Begin()
					tr.Delete(k)
					rec.End(lincheck.OpDelete, k, 0, inv)
				case 2:
					inv := rec.Begin()
					got := tr.Search(k)
					res := int64(0)
					if got {
						res = 1
					}
					rec.End(lincheck.OpSearch, k, res, inv)
				case 3:
					inv := rec.Begin()
					got := tr.Predecessor(k)
					rec.End(lincheck.OpPredecessor, k, got, inv)
				}
			}
		}(w)
	}
	wg.Wait()
	ok, msg, err := lincheck.CheckOrExplain(rec.History())
	if err != nil {
		return fmt.Errorf("round %d: %w", round, err)
	}
	if !ok {
		return fmt.Errorf("round %d: %s", round, msg)
	}
	return nil
}
