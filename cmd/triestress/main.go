// Command triestress hammers the lock-free binary trie with randomized
// concurrent workloads and verifies linearizability of every recorded
// history plus exact quiescent state. It exits non-zero on the first
// violation, printing the offending history.
//
// Usage:
//
//	triestress -rounds 500 -workers 4 -ops 8 -u 16
//
// With -listen it instead runs an endless randomized workload against
// the facade trie and serves its live metrics (expvar JSON at
// /debug/vars, Prometheus text at /metrics, the typed schema at
// /snapshot) for cmd/triestat or any scraper to attach to:
//
//	triestress -listen :8080 -workers 8 -u 65536
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"

	lockfreetrie "repro"
	"repro/internal/core"
	"repro/internal/lincheck"
	"repro/internal/obs"
	"repro/internal/obs/export"
)

func main() {
	var (
		rounds  = flag.Int("rounds", 500, "independent rounds to run")
		workers = flag.Int("workers", 4, "goroutines per round")
		ops     = flag.Int("ops", 8, "operations per goroutine per round")
		u       = flag.Int64("u", 16, "universe size (≤ 64 for checking)")
		seed    = flag.Int64("seed", 1, "base random seed")
		listen  = flag.String("listen", "", "serve live metrics at this address and run an endless workload (no lin-checking)")
	)
	flag.Parse()
	if *listen != "" {
		if err := serve(*listen, *workers, *u, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "triestress:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*rounds, *workers, *ops, *u, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "triestress:", err)
		os.Exit(1)
	}
	fmt.Printf("triestress: %d rounds × %d workers × %d ops linearizable ✓\n",
		*rounds, *workers, *ops)
}

// serve runs -workers goroutines in an endless mixed workload over the
// facade trie and exposes its observability surface over HTTP. The
// universe is not capped at 64 here — there is no history checker — so
// pass a realistic -u (e.g. 65536).
func serve(addr string, workers int, u, seed int64) error {
	tr, err := lockfreetrie.New(u)
	if err != nil {
		return err
	}
	for w := 0; w < workers; w++ {
		go func(id int64) {
			rng := rand.New(rand.NewSource(seed + id))
			for {
				k := rng.Int63n(u)
				switch rng.Intn(8) {
				case 0, 1, 2:
					_ = tr.Insert(k)
				case 3:
					_ = tr.Delete(k)
				case 4, 5:
					_, _ = tr.Contains(k)
				default:
					_, _ = tr.Predecessor(k)
				}
			}
		}(int64(w))
	}
	mux := export.NewMux(func() obs.Snapshot { return tr.MetricsSnapshot() })
	fmt.Printf("triestress: workload %d workers over u=%d; serving /debug/vars /metrics /snapshot on %s\n",
		workers, u, addr)
	return http.ListenAndServe(addr, mux)
}

func run(rounds, workers, ops int, u, seed int64) error {
	if u > 64 {
		return fmt.Errorf("universe %d too large for the checker (max 64)", u)
	}
	if workers*ops > 64 {
		return fmt.Errorf("%d total ops exceed the checker's 64-op limit", workers*ops)
	}
	for round := 0; round < rounds; round++ {
		if err := oneRound(round, workers, ops, u, seed); err != nil {
			return err
		}
	}
	return nil
}

func oneRound(round, workers, ops int, u, seed int64) error {
	tr, err := core.New(u)
	if err != nil {
		return err
	}
	rec := lincheck.NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(round*1000+id)))
			for i := 0; i < ops; i++ {
				k := rng.Int63n(u)
				switch rng.Intn(4) {
				case 0:
					inv := rec.Begin()
					tr.Insert(k)
					rec.End(lincheck.OpInsert, k, 0, inv)
				case 1:
					inv := rec.Begin()
					tr.Delete(k)
					rec.End(lincheck.OpDelete, k, 0, inv)
				case 2:
					inv := rec.Begin()
					got := tr.Search(k)
					res := int64(0)
					if got {
						res = 1
					}
					rec.End(lincheck.OpSearch, k, res, inv)
				case 3:
					inv := rec.Begin()
					got := tr.Predecessor(k)
					rec.End(lincheck.OpPredecessor, k, got, inv)
				}
			}
		}(w)
	}
	wg.Wait()
	ok, msg, err := lincheck.CheckOrExplain(rec.History())
	if err != nil {
		return fmt.Errorf("round %d: %w", round, err)
	}
	if !ok {
		return fmt.Errorf("round %d: %s", round, msg)
	}
	return nil
}
