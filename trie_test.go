package lockfreetrie_test

import (
	"errors"
	"sync"
	"testing"

	lockfreetrie "repro"
)

func TestNewValidation(t *testing.T) {
	if _, err := lockfreetrie.New(1); err == nil {
		t.Error("New(1) should fail")
	}
	tr, err := lockfreetrie.New(1000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Universe() != 1024 {
		t.Errorf("Universe = %d, want 1024", tr.Universe())
	}
}

func TestOptionsValidation(t *testing.T) {
	tr, err := lockfreetrie.New(64)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Shards() != 1 {
		t.Errorf("default Shards = %d, want 1", tr.Shards())
	}
	tr, err = lockfreetrie.New(64, lockfreetrie.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Shards() != 4 {
		t.Errorf("Shards = %d, want 4", tr.Shards())
	}
	if tr.Universe() != 64 {
		t.Errorf("Universe = %d, want 64", tr.Universe())
	}
	if _, err := lockfreetrie.New(64, lockfreetrie.WithShards(0)); err == nil {
		t.Error("WithShards(0) accepted")
	}
	if _, err := lockfreetrie.New(64, lockfreetrie.WithShards(3)); err == nil {
		t.Error("WithShards(3) accepted (not a power of two)")
	}
	if _, err := lockfreetrie.New(4, lockfreetrie.WithShards(4)); err == nil {
		t.Error("WithShards(4) over universe 4 accepted (width < 2)")
	}
	if _, err := lockfreetrie.NewRelaxed(64, lockfreetrie.WithShards(3)); err == nil {
		t.Error("relaxed WithShards(3) accepted (not a power of two)")
	}
}

// TestShardedFacadeLifecycle re-runs the basic lifecycle through the
// sharded backend, exercising cross-shard Floor/Max/Predecessor.
func TestShardedFacadeLifecycle(t *testing.T) {
	tr, err := lockfreetrie.New(64, lockfreetrie.WithShards(16))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{10, 20, 30} {
		if err := tr.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := tr.Contains(20); !got {
		t.Error("Contains(20) = false")
	}
	if got, _ := tr.Predecessor(25); got != 20 {
		t.Errorf("Predecessor(25) = %d, want 20", got)
	}
	if got, _ := tr.Floor(19); got != 10 {
		t.Errorf("Floor(19) = %d, want 10", got)
	}
	if got, _ := tr.Max(); got != 30 {
		t.Errorf("Max = %d, want 30", got)
	}
	if err := tr.Insert(64); err == nil {
		t.Error("Insert(64) should fail")
	}
	tr.Delete(30)
	tr.Delete(20)
	tr.Delete(10)
	if got, _ := tr.Max(); got != -1 {
		t.Errorf("Max on empty = %d, want -1", got)
	}
}

// TestShardedRelaxedFacade drives the sharded relaxed backend through the
// public API at quiescence.
func TestShardedRelaxedFacade(t *testing.T) {
	tr, err := lockfreetrie.NewRelaxed(64, lockfreetrie.WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Shards() != 8 {
		t.Errorf("Shards = %d, want 8", tr.Shards())
	}
	tr.Insert(5)
	tr.Insert(40)
	if pred, ok, err := tr.Predecessor(40); err != nil || !ok || pred != 5 {
		t.Errorf("Predecessor(40) = (%d,%v,%v), want (5,true,nil)", pred, ok, err)
	}
	if succ, ok, err := tr.Successor(5); err != nil || !ok || succ != 40 {
		t.Errorf("Successor(5) = (%d,%v,%v), want (40,true,nil)", succ, ok, err)
	}
	if _, _, err := tr.Successor(99); err == nil {
		t.Error("Successor(99) should fail")
	}
}

func TestKeyRangeErrors(t *testing.T) {
	tr, err := lockfreetrie.New(16)
	if err != nil {
		t.Fatal(err)
	}
	var kre *lockfreetrie.KeyRangeError
	if err := tr.Insert(16); !errors.As(err, &kre) {
		t.Errorf("Insert(16) error = %v, want KeyRangeError", err)
	}
	if kre.Key != 16 || kre.Universe != 16 {
		t.Errorf("KeyRangeError fields = %+v", kre)
	}
	if err := tr.Insert(-1); err == nil {
		t.Error("Insert(-1) should fail")
	}
	if err := tr.Delete(99); err == nil {
		t.Error("Delete(99) should fail")
	}
	if _, err := tr.Contains(-2); err == nil {
		t.Error("Contains(-2) should fail")
	}
	if _, err := tr.Predecessor(16); err == nil {
		t.Error("Predecessor(16) should fail")
	}
	if kre.Error() == "" {
		t.Error("empty error string")
	}
}

func TestBasicLifecycle(t *testing.T) {
	tr, err := lockfreetrie.New(64)
	if err != nil {
		t.Fatal(err)
	}
	mustInsert := func(k int64) {
		t.Helper()
		if err := tr.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	mustInsert(10)
	mustInsert(20)
	mustInsert(30)
	if got, _ := tr.Contains(20); !got {
		t.Error("Contains(20) = false")
	}
	if got, _ := tr.Predecessor(25); got != 20 {
		t.Errorf("Predecessor(25) = %d, want 20", got)
	}
	if got, _ := tr.Floor(20); got != 20 {
		t.Errorf("Floor(20) = %d, want 20", got)
	}
	if got, _ := tr.Floor(19); got != 10 {
		t.Errorf("Floor(19) = %d, want 10", got)
	}
	if got, _ := tr.Max(); got != 30 {
		t.Errorf("Max = %d, want 30", got)
	}
	if err := tr.Delete(30); err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.Max(); got != 20 {
		t.Errorf("Max after delete = %d, want 20", got)
	}
	tr.Delete(10)
	tr.Delete(20)
	if got, _ := tr.Max(); got != -1 {
		t.Errorf("Max on empty = %d, want -1", got)
	}
}

func TestConcurrentFacade(t *testing.T) {
	tr, err := lockfreetrie.New(128)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 32; i++ {
				k := base*32 + i
				if err := tr.Insert(k); err != nil {
					t.Error(err)
					return
				}
				if _, err := tr.Predecessor(k); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	for k := int64(0); k < 128; k++ {
		if got, _ := tr.Contains(k); !got {
			t.Fatalf("key %d missing", k)
		}
	}
}

func TestRelaxedFacade(t *testing.T) {
	tr, err := lockfreetrie.NewRelaxed(32)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Universe() != 32 {
		t.Errorf("Universe = %d, want 32", tr.Universe())
	}
	if err := tr.Insert(5); err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.Contains(5); !got {
		t.Error("Contains(5) = false")
	}
	pred, ok, err := tr.Predecessor(10)
	if err != nil || !ok || pred != 5 {
		t.Errorf("Predecessor(10) = (%d,%v,%v), want (5,true,nil)", pred, ok, err)
	}
	if err := tr.Delete(5); err != nil {
		t.Fatal(err)
	}
	pred, ok, _ = tr.Predecessor(10)
	if !ok || pred != -1 {
		t.Errorf("Predecessor(10) = (%d,%v), want (-1,true)", pred, ok)
	}
	if _, _, err := tr.Predecessor(99); err == nil {
		t.Error("Predecessor(99) should fail")
	}
	if err := tr.Insert(-1); err == nil {
		t.Error("Insert(-1) should fail")
	}
	if _, err := tr.Contains(64); err == nil {
		t.Error("Contains(64) should fail")
	}
	if err := tr.Delete(64); err == nil {
		t.Error("Delete(64) should fail")
	}
	if _, err := lockfreetrie.NewRelaxed(0); err == nil {
		t.Error("NewRelaxed(0) should fail")
	}
}

// TestLenFacade covers the promoted occupancy summary on the linearizable
// trie: exact at quiescence at every shard count, idempotent under
// duplicate updates.
func TestLenFacade(t *testing.T) {
	for _, shards := range []int{1, 4} {
		tr, err := lockfreetrie.New(256, lockfreetrie.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.Len(); got != 0 {
			t.Fatalf("shards=%d: empty Len = %d", shards, got)
		}
		for k := int64(0); k < 100; k += 2 {
			tr.Insert(k)
		}
		tr.Insert(4) // duplicate: must not double-count
		if got := tr.Len(); got != 50 {
			t.Fatalf("shards=%d: Len = %d, want 50", shards, got)
		}
		for k := int64(0); k < 40; k += 2 {
			tr.Delete(k)
		}
		tr.Delete(3) // absent: no-op
		if got := tr.Len(); got != 30 {
			t.Fatalf("shards=%d: Len after deletes = %d, want 30", shards, got)
		}
	}
}

// TestLenFacadeQuiescentAfterConcurrency checks the weak-consistency
// contract's strong half: once all updates have returned, Len is exact.
func TestLenFacadeQuiescentAfterConcurrency(t *testing.T) {
	tr, err := lockfreetrie.New(1024, lockfreetrie.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 2000; i++ {
				k := (i*7 + int64(w)*13) % 1024
				if i%3 == 0 {
					tr.Delete(k)
				} else {
					tr.Insert(k)
				}
			}
		}(w)
	}
	wg.Wait()
	var want int64
	for k := int64(0); k < 1024; k++ {
		if ok, _ := tr.Contains(k); ok {
			want++
		}
	}
	if got := tr.Len(); got != want {
		t.Fatalf("quiescent Len = %d, want %d", got, want)
	}
}

// TestRelaxedLenFacade mirrors TestLenFacade for the relaxed trie.
func TestRelaxedLenFacade(t *testing.T) {
	for _, shards := range []int{1, 4} {
		tr, err := lockfreetrie.NewRelaxed(256, lockfreetrie.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < 60; k++ {
			tr.Insert(k)
		}
		tr.Insert(10)
		for k := int64(0); k < 20; k++ {
			tr.Delete(k)
		}
		if got := tr.Len(); got != 40 {
			t.Fatalf("shards=%d: relaxed Len = %d, want 40", shards, got)
		}
	}
}
