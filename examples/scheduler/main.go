// Scheduler: a concurrent max-priority task scheduler built on the trie —
// the priority-queue application the paper's introduction motivates ("Data
// structures supporting Predecessor can be used to design efficient
// priority queues").
//
// The trie holds the set of priorities that currently have runnable tasks;
// per-priority FIFO buckets hold the tasks themselves. Workers repeatedly
// take the highest occupied priority (Max = Predecessor from the top) and
// drain its bucket. Producers and workers run concurrently with no locks
// around the priority structure.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	lockfreetrie "repro"
)

const (
	priorities = 1024
	producers  = 3
	workers    = 4
	totalTasks = 3000
)

// task is one unit of work.
type task struct {
	id       int64
	priority int64
}

// scheduler pairs the priority trie with per-priority FIFO buckets.
type scheduler struct {
	prios   *lockfreetrie.Trie
	buckets []chan task
}

func newScheduler() (*scheduler, error) {
	tr, err := lockfreetrie.New(priorities)
	if err != nil {
		return nil, err
	}
	s := &scheduler{prios: tr, buckets: make([]chan task, priorities)}
	for i := range s.buckets {
		s.buckets[i] = make(chan task, totalTasks)
	}
	return s, nil
}

// submit enqueues the task and marks its priority occupied. The bucket push
// happens first so a worker that sees the priority always finds a task or a
// benign empty bucket.
func (s *scheduler) submit(t task) error {
	s.buckets[t.priority] <- t
	return s.prios.Insert(t.priority)
}

// take returns the runnable task with the highest priority, or ok=false if
// the scheduler appears empty.
func (s *scheduler) take() (task, bool, error) {
	for attempts := 0; attempts < priorities; attempts++ {
		p, err := s.prios.Max()
		if err != nil {
			return task{}, false, err
		}
		if p < 0 {
			return task{}, false, nil
		}
		select {
		case t := <-s.buckets[p]:
			return t, true, nil
		default:
			// Bucket drained: retire the priority, then re-mark it if a
			// concurrent submit raced in behind our check.
			if err := s.prios.Delete(p); err != nil {
				return task{}, false, err
			}
			if len(s.buckets[p]) > 0 {
				if err := s.prios.Insert(p); err != nil {
					return task{}, false, err
				}
			}
		}
	}
	return task{}, false, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s, err := newScheduler()
	if err != nil {
		return err
	}

	var (
		produced atomic.Int64
		consumed atomic.Int64
		hiCount  atomic.Int64 // tasks with priority ≥ 768 seen by workers
		wg       sync.WaitGroup
	)

	// Producers: skew toward low priorities so high-priority arrivals are
	// rare and must visibly jump the queue.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				id := produced.Add(1)
				if id > totalTasks {
					return
				}
				prio := rng.Int63n(256) // bulk: low priority
				if rng.Intn(20) == 0 {
					prio = 768 + rng.Int63n(256) // occasional urgent task
				}
				if err := s.submit(task{id: id, priority: prio}); err != nil {
					log.Println(err)
					return
				}
			}
		}(int64(p + 1))
	}

	// Workers: drain until all tasks are consumed.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for consumed.Load() < totalTasks {
				t, ok, err := s.take()
				if err != nil {
					log.Println(err)
					return
				}
				if !ok {
					continue // empty at the moment; producers may still run
				}
				if t.priority >= 768 {
					hiCount.Add(1)
				}
				consumed.Add(1)
			}
		}()
	}
	wg.Wait()

	fmt.Printf("scheduled %d tasks across %d workers\n", consumed.Load(), workers)
	fmt.Printf("urgent tasks (priority ≥ 768) processed: %d\n", hiCount.Load())
	p, err := s.prios.Max()
	if err != nil {
		return err
	}
	fmt.Printf("remaining occupied priorities after drain: Max() = %d (want -1)\n", p)
	return nil
}
