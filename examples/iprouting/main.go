// IP routing: longest-prefix-style next-hop lookup built on predecessor
// queries — the application the paper's introduction cites ("data structures
// supporting Predecessor ... have applications in IP routing [19]").
//
// The routing table holds disjoint address blocks on a 16-bit "mini
// internet". Each block is keyed by its start address in the trie, with the
// block metadata in a sharded side table. A lookup is Floor(addr) followed
// by a range check — O(log u) with zero locks — while route flaps (withdraw
// + announce) run concurrently from several goroutines.
//
//	go run ./examples/iprouting
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	lockfreetrie "repro"
)

const universe = 1 << 16 // 16-bit addresses: 0.0 – 255.255

// route is one address block [Start, Start+Size) with a next hop.
type route struct {
	Start   int64
	Size    int64
	NextHop string
}

// table is a concurrent routing table: a lock-free trie of block starts
// plus an atomic side map from start to route metadata.
type table struct {
	starts *lockfreetrie.Trie
	routes sync.Map // int64 → *route
}

func newTable() (*table, error) {
	tr, err := lockfreetrie.New(universe)
	if err != nil {
		return nil, err
	}
	return &table{starts: tr}, nil
}

// announce installs a route. The metadata goes in before the start key so a
// concurrent lookup that sees the key always finds the route.
func (t *table) announce(r *route) error {
	t.routes.Store(r.Start, r)
	return t.starts.Insert(r.Start)
}

// withdraw removes the block starting at start.
func (t *table) withdraw(start int64) error {
	if err := t.starts.Delete(start); err != nil {
		return err
	}
	t.routes.Delete(start)
	return nil
}

// lookup returns the next hop for addr, or "" if no route covers it.
func (t *table) lookup(addr int64) (string, error) {
	start, err := t.starts.Floor(addr)
	if err != nil {
		return "", err
	}
	if start < 0 {
		return "", nil
	}
	v, ok := t.routes.Load(start)
	if !ok {
		return "", nil // withdrawn between Floor and Load: no route
	}
	r := v.(*route)
	if addr >= r.Start+r.Size {
		return "", nil // addr falls in the gap after the block
	}
	return r.NextHop, nil
}

func fmtAddr(a int64) string { return fmt.Sprintf("%d.%d", a>>8, a&0xff) }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	t, err := newTable()
	if err != nil {
		return err
	}

	// Static backbone: /8-ish blocks (256 addresses each) over the lower
	// half of the space.
	for i := int64(0); i < 128; i++ {
		if err := t.announce(&route{
			Start:   i * 512,
			Size:    256,
			NextHop: fmt.Sprintf("core-%d", i%4),
		}); err != nil {
			return err
		}
	}

	fmt.Println("initial lookups:")
	for _, addr := range []int64{0, 300, 515, 65000} {
		hop, err := t.lookup(addr)
		if err != nil {
			return err
		}
		fmt.Printf("  %-9s -> %q\n", fmtAddr(addr), hop)
	}

	// Concurrent route flaps on the upper half while lookups hammer the
	// whole space.
	var (
		wg        sync.WaitGroup
		lookups   atomic.Int64
		misses    atomic.Int64
		flapCount atomic.Int64
	)
	stop := make(chan struct{})
	for f := 0; f < 2; f++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := 1<<15 + rng.Int63n(1<<14)*2 // even starts, upper half
				r := &route{Start: start, Size: 2, NextHop: fmt.Sprintf("edge-%d", seed)}
				if err := t.announce(r); err != nil {
					log.Println(err)
					return
				}
				flapCount.Add(1)
				if err := t.withdraw(start); err != nil {
					log.Println(err)
					return
				}
			}
		}(int64(f + 1))
	}
	for l := 0; l < 2; l++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed * 97))
			for i := 0; i < 50000; i++ {
				addr := rng.Int63n(universe)
				hop, err := t.lookup(addr)
				if err != nil {
					log.Println(err)
					return
				}
				lookups.Add(1)
				if hop == "" {
					misses.Add(1)
				}
			}
		}(int64(l + 1))
	}
	// Lookup goroutines finish on their own; then stop the flappers.
	done := make(chan struct{})
	go func() { defer close(done); wg.Wait() }()
	go func() {
		// Stop flapping once lookups complete.
		for lookups.Load() < 100000 {
		}
		close(stop)
	}()
	<-done

	fmt.Printf("\nran %d lookups (%d unrouted) against %d concurrent route flaps\n",
		lookups.Load(), misses.Load(), flapCount.Load())

	hop, err := t.lookup(515)
	if err != nil {
		return err
	}
	fmt.Printf("steady route still intact: %s -> %q\n", fmtAddr(515), hop)
	return nil
}
