// Telemetry: a latency watermark tracker on the WAIT-FREE relaxed trie.
// High-rate producers record request latencies (bucketed to ms) with
// strictly bounded per-record work — the §4 guarantee: O(log u) worst-case
// steps, no helping, no retry loops — while a monitor polls the current
// min/max watermarks with queries that may abstain during heavy churn
// (ok=false) rather than delay producers. At shutdown the monitor's
// queries are exact.
//
// This is the trade the relaxed trie offers versus the full lock-free
// trie: producers get hard step bounds; the reader accepts best-effort
// answers under fire and exact answers at quiescence.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	lockfreetrie "repro"
)

const maxLatencyMs = 1 << 12 // bucket space: 0…4095 ms

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lat, err := lockfreetrie.NewRelaxed(maxLatencyMs)
	if err != nil {
		return err
	}

	var (
		recorded  atomic.Int64
		abstained atomic.Int64
		samples   atomic.Int64
		wgProd    sync.WaitGroup
		wgMon     sync.WaitGroup
	)
	stop := make(chan struct{})

	// Producers: record log-normal-ish latencies. Each Insert is wait-free
	// O(log u) — a producer can never be dragged into helping a slow peer.
	for p := 0; p < 3; p++ {
		wgProd.Add(1)
		go func(seed int64) {
			defer wgProd.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60000; i++ {
				ms := int64(2)
				for rng.Intn(4) != 0 && ms < maxLatencyMs/2 {
					ms *= 2 // geometric tail
				}
				ms += rng.Int63n(ms)
				if err := lat.Insert(ms); err != nil {
					log.Println(err)
					return
				}
				recorded.Add(1)
			}
		}(int64(p + 1))
	}

	// Monitor: poll the watermarks. Successor(0) ≈ fastest bucket,
	// Predecessor(max) ≈ slowest bucket; under churn either may abstain.
	wgMon.Add(1)
	go func() {
		defer wgMon.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			samples.Add(1)
			if _, ok, err := lat.Successor(0); err != nil {
				log.Println(err)
				return
			} else if !ok {
				abstained.Add(1)
			}
			if _, ok, err := lat.Predecessor(maxLatencyMs - 1); err != nil {
				log.Println(err)
				return
			} else if !ok {
				abstained.Add(1)
			}
		}
	}()

	wgProd.Wait()
	close(stop)
	wgMon.Wait()

	// Quiescent: the relaxed spec now guarantees exact answers.
	fastest, ok, err := lat.Successor(0)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("quiescent Successor abstained — spec violation")
	}
	slowest, ok, err := lat.Predecessor(maxLatencyMs - 1)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("quiescent Predecessor abstained — spec violation")
	}
	fmt.Printf("recorded %d latency samples across 3 wait-free producers\n", recorded.Load())
	fmt.Printf("monitor polled %d times; %d abstentions under churn (expected, best-effort)\n",
		samples.Load(), abstained.Load())
	fmt.Printf("quiescent watermarks: fastest %d ms, slowest %d ms\n", fastest, slowest)
	return nil
}
