package main

import (
	"math/rand"
	"testing"
)

// TestSweepMatchesPerOpFills runs identical random order streams through
// the batched (ApplyBatch) and per-op matching loops on separate books and
// asserts fill-for-fill identical results and identical final books.
func TestSweepMatchesPerOpFills(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		batchBook, err := newBook()
		if err != nil {
			t.Fatal(err)
		}
		perOpBook, err := newBook()
		if err != nil {
			t.Fatal(err)
		}
		gen := rand.New(rand.NewSource(seed))
		orders := make([]order, 400)
		for i := range orders {
			orders[i] = order{
				Buy:   gen.Intn(2) == 0,
				Limit: 8000 + gen.Int63n(400),
				Qty:   1 + gen.Intn(5),
			}
		}
		for i, o := range orders {
			got, err := batchBook.matchSweep(o)
			if err != nil {
				t.Fatalf("seed %d order %d: sweep: %v", seed, i, err)
			}
			want, err := perOpBook.matchPerOp(o)
			if err != nil {
				t.Fatalf("seed %d order %d: per-op: %v", seed, i, err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d order %d (%+v): %d fills via batch, %d via per-op",
					seed, i, o, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("seed %d order %d fill %d: batch %+v, per-op %+v",
						seed, i, j, got[j], want[j])
				}
			}
		}
		assertSameLevels(t, batchBook, perOpBook)
	}
}

func assertSameLevels(t *testing.T, a, b *book) {
	t.Helper()
	for name, pair := range map[string][2]interface {
		Keys(lo, hi int64) ([]int64, error)
	}{
		"bids": {a.bids, b.bids},
		"asks": {a.asks, b.asks},
	} {
		ka, err := pair[0].Keys(0, maxTick-1)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := pair[1].Keys(0, maxTick-1)
		if err != nil {
			t.Fatal(err)
		}
		if len(ka) != len(kb) {
			t.Fatalf("%s: batch book has %d levels, per-op book %d", name, len(ka), len(kb))
		}
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("%s: level %d differs: %d vs %d", name, i, ka[i], kb[i])
			}
		}
	}
}

// TestRunDemo keeps the example's main path executable under go test.
func TestRunDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("demo loop is seconds-long")
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
