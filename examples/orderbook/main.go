// Order book: best-bid / best-ask tracking over a tick grid using two
// tries. Bids need the highest price ≤ the spread (Max/Floor); asks need
// the LOWEST price, which the trie serves either through Min/Successor or
// the mirror trick — store ask prices negated (key = maxTick − price) so
// that Max on the mirrored trie is Min on real prices. Makers post and
// cancel price levels concurrently while a sampler reads the spread
// without locks.
//
// The matching loop demonstrates Trie.ApplyBatch: a marketable order
// SWEEPS resting levels — it walks them with predecessor steps (no
// mutation), then retires every swept level in one batch, paying one
// announcement pass instead of one per level. matchSweep/matchPerOp
// produce identical fills by construction; the test asserts it on random
// order streams.
//
//	go run ./examples/orderbook
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	lockfreetrie "repro"
)

const maxTick = 1 << 14 // prices in [0, 16384) ticks

// book holds occupied bid and ask price levels.
type book struct {
	bids *lockfreetrie.Trie // keys are prices
	asks *lockfreetrie.Trie // keys are maxTick−1−price (mirrored)
}

func newBook() (*book, error) {
	bids, err := lockfreetrie.New(maxTick)
	if err != nil {
		return nil, err
	}
	asks, err := lockfreetrie.New(maxTick)
	if err != nil {
		return nil, err
	}
	return &book{bids: bids, asks: asks}, nil
}

func mirror(price int64) int64 { return maxTick - 1 - price }

// postBid / postAsk mark a price level occupied.
func (b *book) postBid(price int64) error { return b.bids.Insert(price) }
func (b *book) postAsk(price int64) error { return b.asks.Insert(mirror(price)) }

// cancelBid / cancelAsk clear a price level.
func (b *book) cancelBid(price int64) error { return b.bids.Delete(price) }
func (b *book) cancelAsk(price int64) error { return b.asks.Delete(mirror(price)) }

// bestBid returns the highest bid, or −1.
func (b *book) bestBid() (int64, error) { return b.bids.Max() }

// bestAsk returns the lowest ask, or −1.
func (b *book) bestAsk() (int64, error) {
	m, err := b.asks.Max()
	if err != nil || m < 0 {
		return m, err
	}
	return mirror(m), nil
}

// order is one incoming instruction for the matching loop: a buy sweeps
// ask levels up to Limit for at most Qty lots (one lot per occupied
// level); leftovers post as a bid level. Sells mirror.
type order struct {
	Buy   bool
	Limit int64
	Qty   int
}

// fill is one matched level.
type fill struct {
	Price int64
	Buy   bool
}

// matchPerOp is the reference matching loop: it consumes resting levels
// one core update at a time (Max / mirrored Max, then Delete), the
// pre-batching shape of the engine.
func (b *book) matchPerOp(o order) ([]fill, error) {
	var fills []fill
	for len(fills) < o.Qty {
		if o.Buy {
			m, err := b.asks.Max() // mirrored: best (lowest) ask
			if err != nil {
				return nil, err
			}
			if m < 0 || mirror(m) > o.Limit {
				break
			}
			if err := b.asks.Delete(m); err != nil {
				return nil, err
			}
			fills = append(fills, fill{Price: mirror(m), Buy: true})
		} else {
			m, err := b.bids.Max() // best (highest) bid
			if err != nil {
				return nil, err
			}
			if m < 0 || m < o.Limit {
				break
			}
			if err := b.bids.Delete(m); err != nil {
				return nil, err
			}
			fills = append(fills, fill{Price: m, Buy: false})
		}
	}
	if _, err := b.postLeftover(o, len(fills)); err != nil {
		return nil, err
	}
	return fills, nil
}

// matchSweep is the batched matching loop: it WALKS the levels an order
// crosses with read-only predecessor steps on the mirrored/plain trie,
// then retires all of them in a single ApplyBatch on that trie (the
// leftover, if any, posts to the OPPOSITE side's trie as an ordinary
// insert).
func (b *book) matchSweep(o order) ([]fill, error) {
	var (
		fills []fill
		batch []lockfreetrie.Op
	)
	if o.Buy {
		// Asks are mirrored: sweep from the mirrored Max (lowest real
		// price) downward in mirror space = upward in real price.
		cur, err := b.asks.Max()
		if err != nil {
			return nil, err
		}
		for cur >= 0 && mirror(cur) <= o.Limit && len(fills) < o.Qty {
			fills = append(fills, fill{Price: mirror(cur), Buy: true})
			batch = append(batch, lockfreetrie.Op{Kind: lockfreetrie.OpDelete, Key: cur})
			cur, err = b.asks.Predecessor(cur)
			if err != nil {
				return nil, err
			}
		}
		if errs := b.asks.ApplyBatch(batch); errs != nil {
			return nil, fmt.Errorf("ApplyBatch: %v", errs)
		}
	} else {
		cur, err := b.bids.Max()
		if err != nil {
			return nil, err
		}
		for cur >= 0 && cur >= o.Limit && len(fills) < o.Qty {
			fills = append(fills, fill{Price: cur, Buy: false})
			batch = append(batch, lockfreetrie.Op{Kind: lockfreetrie.OpDelete, Key: cur})
			cur, err = b.bids.Predecessor(cur)
			if err != nil {
				return nil, err
			}
		}
		if errs := b.bids.ApplyBatch(batch); errs != nil {
			return nil, fmt.Errorf("ApplyBatch: %v", errs)
		}
	}
	if _, err := b.postLeftover(o, len(fills)); err != nil {
		return nil, err
	}
	return fills, nil
}

// postLeftover posts the unfilled remainder of a limit order as a resting
// level on its own side; returns whether anything was posted.
func (b *book) postLeftover(o order, filled int) (bool, error) {
	if filled >= o.Qty {
		return false, nil
	}
	if o.Buy {
		return true, b.postBid(o.Limit)
	}
	return true, b.postAsk(o.Limit)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	bk, err := newBook()
	if err != nil {
		return err
	}

	// Seed a resting book around mid price 8192: bids below, asks above.
	const mid = int64(8192)
	for d := int64(1); d <= 50; d++ {
		if err := bk.postBid(mid - 10*d); err != nil {
			return err
		}
		if err := bk.postAsk(mid + 10*d); err != nil {
			return err
		}
	}
	bb, _ := bk.bestBid()
	ba, _ := bk.bestAsk()
	fmt.Printf("resting book: best bid %d, best ask %d, spread %d\n", bb, ba, ba-bb)

	// Makers churn levels near the top of the book; a sampler reads the
	// spread concurrently and checks it never inverts against the resting
	// levels (resting top-of-book is never cancelled, so bid ≥ 8182 and
	// ask ≤ 8202 always hold).
	var (
		wg       sync.WaitGroup
		posts    atomic.Int64
		inverted atomic.Int64
		samples  atomic.Int64
	)
	stop := make(chan struct{})
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Flash levels strictly inside the resting spread.
				bid := mid - 9 + rng.Int63n(5) // 8183..8187
				ask := mid + 5 + rng.Int63n(5) // 8197..8201
				if err := bk.postBid(bid); err != nil {
					log.Println(err)
					return
				}
				if err := bk.postAsk(ask); err != nil {
					log.Println(err)
					return
				}
				posts.Add(2)
				bk.cancelBid(bid)
				bk.cancelAsk(ask)
			}
		}(int64(m + 1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40000; i++ {
			bb, err := bk.bestBid()
			if err != nil {
				log.Println(err)
				return
			}
			ba, err := bk.bestAsk()
			if err != nil {
				log.Println(err)
				return
			}
			samples.Add(1)
			if bb >= ba {
				inverted.Add(1) // crossed book would be a consistency bug
			}
		}
		close(stop)
	}()
	wg.Wait()

	bb, _ = bk.bestBid()
	ba, _ = bk.bestAsk()
	fmt.Printf("after %d flash posts and %d spread samples:\n", posts.Load(), samples.Load())
	fmt.Printf("  crossed-book observations: %d (want 0)\n", inverted.Load())
	fmt.Printf("  final best bid %d, best ask %d\n", bb, ba)

	// Matching phase: marketable orders sweep the resting levels, each
	// sweep retiring its levels in one ApplyBatch.
	rng := rand.New(rand.NewSource(7))
	var swept int
	for i := 0; i < 200; i++ {
		o := order{
			Buy:   rng.Intn(2) == 0,
			Limit: mid - 60 + rng.Int63n(120),
			Qty:   1 + rng.Intn(4),
		}
		fills, err := bk.matchSweep(o)
		if err != nil {
			return err
		}
		swept += len(fills)
	}
	bb, _ = bk.bestBid()
	ba, _ = bk.bestAsk()
	fmt.Printf("matching loop: 200 sweep orders filled %d levels via ApplyBatch\n", swept)
	fmt.Printf("  book after matching: best bid %d, best ask %d\n", bb, ba)
	return nil
}
