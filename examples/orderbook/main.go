// Order book: best-bid / best-ask tracking over a tick grid using two
// tries. Bids need the highest price ≤ the spread (Max/Floor); asks need
// the LOWEST price, which the trie serves through a mirror trick — store
// ask prices negated (key = maxTick − price) so that Max on the mirrored
// trie is Min on real prices. Makers post and cancel price levels
// concurrently while a sampler reads the spread without locks.
//
//	go run ./examples/orderbook
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	lockfreetrie "repro"
)

const maxTick = 1 << 14 // prices in [0, 16384) ticks

// book holds occupied bid and ask price levels.
type book struct {
	bids *lockfreetrie.Trie // keys are prices
	asks *lockfreetrie.Trie // keys are maxTick−1−price (mirrored)
}

func newBook() (*book, error) {
	bids, err := lockfreetrie.New(maxTick)
	if err != nil {
		return nil, err
	}
	asks, err := lockfreetrie.New(maxTick)
	if err != nil {
		return nil, err
	}
	return &book{bids: bids, asks: asks}, nil
}

func mirror(price int64) int64 { return maxTick - 1 - price }

// postBid / postAsk mark a price level occupied.
func (b *book) postBid(price int64) error { return b.bids.Insert(price) }
func (b *book) postAsk(price int64) error { return b.asks.Insert(mirror(price)) }

// cancelBid / cancelAsk clear a price level.
func (b *book) cancelBid(price int64) error { return b.bids.Delete(price) }
func (b *book) cancelAsk(price int64) error { return b.asks.Delete(mirror(price)) }

// bestBid returns the highest bid, or −1.
func (b *book) bestBid() (int64, error) { return b.bids.Max() }

// bestAsk returns the lowest ask, or −1.
func (b *book) bestAsk() (int64, error) {
	m, err := b.asks.Max()
	if err != nil || m < 0 {
		return m, err
	}
	return mirror(m), nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	bk, err := newBook()
	if err != nil {
		return err
	}

	// Seed a resting book around mid price 8192: bids below, asks above.
	const mid = int64(8192)
	for d := int64(1); d <= 50; d++ {
		if err := bk.postBid(mid - 10*d); err != nil {
			return err
		}
		if err := bk.postAsk(mid + 10*d); err != nil {
			return err
		}
	}
	bb, _ := bk.bestBid()
	ba, _ := bk.bestAsk()
	fmt.Printf("resting book: best bid %d, best ask %d, spread %d\n", bb, ba, ba-bb)

	// Makers churn levels near the top of the book; a sampler reads the
	// spread concurrently and checks it never inverts against the resting
	// levels (resting top-of-book is never cancelled, so bid ≥ 8182 and
	// ask ≤ 8202 always hold).
	var (
		wg       sync.WaitGroup
		posts    atomic.Int64
		inverted atomic.Int64
		samples  atomic.Int64
	)
	stop := make(chan struct{})
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Flash levels strictly inside the resting spread.
				bid := mid - 9 + rng.Int63n(5) // 8183..8187
				ask := mid + 5 + rng.Int63n(5) // 8197..8201
				if err := bk.postBid(bid); err != nil {
					log.Println(err)
					return
				}
				if err := bk.postAsk(ask); err != nil {
					log.Println(err)
					return
				}
				posts.Add(2)
				bk.cancelBid(bid)
				bk.cancelAsk(ask)
			}
		}(int64(m + 1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40000; i++ {
			bb, err := bk.bestBid()
			if err != nil {
				log.Println(err)
				return
			}
			ba, err := bk.bestAsk()
			if err != nil {
				log.Println(err)
				return
			}
			samples.Add(1)
			if bb >= ba {
				inverted.Add(1) // crossed book would be a consistency bug
			}
		}
		close(stop)
	}()
	wg.Wait()

	bb, _ = bk.bestBid()
	ba, _ = bk.bestAsk()
	fmt.Printf("after %d flash posts and %d spread samples:\n", posts.Load(), samples.Load())
	fmt.Printf("  crossed-book observations: %d (want 0)\n", inverted.Load())
	fmt.Printf("  final best bid %d, best ask %d\n", bb, ba)
	return nil
}
