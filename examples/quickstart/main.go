// Quickstart: the smallest useful tour of the lock-free binary trie API —
// membership, predecessor queries and concurrent updates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	lockfreetrie "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A trie over the universe {0,…,1023}. Memory is Θ(universe), so pick
	// the smallest power of two that covers your keys.
	tr, err := lockfreetrie.New(1024)
	if err != nil {
		return err
	}

	// Single-goroutine basics.
	for _, k := range []int64{42, 100, 767} {
		if err := tr.Insert(k); err != nil {
			return err
		}
	}
	present, err := tr.Contains(100)
	if err != nil {
		return err
	}
	fmt.Printf("Contains(100) = %v\n", present)

	p, err := tr.Predecessor(500) // largest key < 500
	if err != nil {
		return err
	}
	fmt.Printf("Predecessor(500) = %d\n", p) // 100

	if err := tr.Delete(100); err != nil {
		return err
	}
	p, _ = tr.Predecessor(500)
	fmt.Printf("Predecessor(500) after Delete(100) = %d\n", p) // 42

	// Concurrent use: no locks, no setup — just share the *Trie.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 100; i++ {
				if err := tr.Insert(base*100 + i); err != nil {
					log.Println(err)
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()

	max, _ := tr.Max()
	fmt.Printf("after concurrent inserts: Max() = %d\n", max)

	// The wait-free relaxed variant: predecessor may abstain under
	// concurrent updates (ok=false) but is exact at quiescence.
	rx, err := lockfreetrie.NewRelaxed(256)
	if err != nil {
		return err
	}
	rx.Insert(7)
	if pred, ok, _ := rx.Predecessor(10); ok {
		fmt.Printf("relaxed Predecessor(10) = %d\n", pred)
	}
	return nil
}
