// Sharded trie demo: contention relief on an update-heavy workload over
// disjoint key ranges.
//
// Several goroutines hammer insert/delete/predecessor on their own slice of
// the universe — the pattern of a partitioned ingest pipeline (per-source
// sequence numbers, per-symbol order books, per-tenant schedulers). On the
// unsharded trie every operation still announces itself on the one global
// U-ALL/RU-ALL/P-ALL announcement list, so the goroutines contend even
// though their key ranges never overlap. With WithShards, each range maps
// to its own shard with private announcement lists, and the contention
// disappears.
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	lockfreetrie "repro"
)

const (
	universe   = int64(1) << 16
	goroutines = 8
	opsPerG    = 60000
)

// hammer runs the update-heavy disjoint-range workload and returns ops/s.
func hammer(tr *lockfreetrie.Trie) float64 {
	// Half-full start so deletes and predecessor queries do real work.
	for k := int64(0); k < universe; k += 2 {
		if err := tr.Insert(k); err != nil {
			log.Fatal(err)
		}
	}
	band := universe / goroutines
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(id + 1))
			lo := id * band
			<-start
			for i := 0; i < opsPerG; i++ {
				k := lo + rng.Int63n(band)
				switch rng.Intn(4) {
				case 0:
					tr.Insert(k)
				case 1:
					tr.Delete(k)
				case 2:
					tr.Contains(k)
				default:
					tr.Predecessor(k)
				}
			}
		}(int64(g))
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return float64(goroutines*opsPerG) / time.Since(t0).Seconds()
}

func main() {
	single, err := lockfreetrie.New(universe)
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := lockfreetrie.New(universe, lockfreetrie.WithShards(16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d goroutines, disjoint ranges, update-heavy, u=%d\n\n", goroutines, universe)

	base := hammer(single)
	fmt.Printf("  1 shard  (%2d): %10.0f ops/s\n", single.Shards(), base)
	fast := hammer(sharded)
	fmt.Printf("  sharded  (%2d): %10.0f ops/s\n", sharded.Shards(), fast)
	fmt.Printf("\n  speedup: %.2fx\n\n", fast/base)

	// The façade is identical either way: cross-shard queries just work.
	sharded.Insert(7)
	sharded.Delete(8) // leave a gap right above 7
	if p, err := sharded.Predecessor(universe - 1); err == nil {
		fmt.Printf("cross-shard Predecessor(%d) = %d\n", universe-1, p)
	}
	keys, err := sharded.Keys(0, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Keys(0, 40) = %v\n", keys)
}
