// Benchmarks regenerating the experiment suite of EXPERIMENTS.md. The paper
// has no empirical tables; each benchmark here measures one theorem-shaped
// claim (C1–C7) or ablation (A1–A2) from DESIGN.md's experiment index.
//
// Run all:  go test -bench=. -benchmem
// One row:  go test -bench=BenchmarkSearchVsUniverse -benchmem
package lockfreetrie_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/bitstrie"
	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/efrb"
	"repro/internal/frlist"
	"repro/internal/harness"
	"repro/internal/locktrie"
	"repro/internal/relaxed"
	"repro/internal/resize"
	"repro/internal/sharded"
	"repro/internal/skiplist"
	"repro/internal/versioned"
	"repro/internal/workload"
)

// newCore builds a core trie or aborts the benchmark.
func newCore(b *testing.B, u int64) *core.Trie {
	b.Helper()
	tr, err := core.New(u)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// prefillEvery inserts every gap-th key in shuffled order (sequential order
// is a pathological input for the unbalanced-BST baseline).
func prefillEvery(s harness.Set, u, gap int64) {
	keys := make([]int64, 0, u/gap)
	for k := int64(0); k < u; k += gap {
		keys = append(keys, k)
	}
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		s.Insert(k)
	}
}

// --- C1: Search is O(1) — flat across universe sizes ------------------------

func BenchmarkSearchVsUniverse(b *testing.B) {
	for _, exp := range []uint{8, 12, 16, 20} {
		u := int64(1) << exp
		b.Run(fmt.Sprintf("u=2^%d", exp), func(b *testing.B) {
			tr := newCore(b, u)
			prefillEvery(tr, u, 2)
			keys := randomKeys(u, 1<<12, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Search(keys[i&(len(keys)-1)])
			}
		})
	}
}

// --- C2: solo update/predecessor cost grows with log u ----------------------

func BenchmarkSoloOpsVsLogU(b *testing.B) {
	for _, exp := range []uint{8, 12, 16, 20} {
		u := int64(1) << exp
		b.Run(fmt.Sprintf("insert+delete/u=2^%d", exp), func(b *testing.B) {
			tr := newCore(b, u)
			keys := randomKeys(u, 1<<12, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[i&(len(keys)-1)]
				tr.Insert(k)
				tr.Delete(k)
			}
		})
		b.Run(fmt.Sprintf("predecessor/u=2^%d", exp), func(b *testing.B) {
			tr := newCore(b, u)
			prefillEvery(tr, u, 16)
			keys := randomKeys(u, 1<<12, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Predecessor(keys[i&(len(keys)-1)])
			}
		})
	}
}

// --- C3: steps per op vs point contention (hot-range workload) --------------

func BenchmarkStepsVsContention(b *testing.B) {
	const u = int64(1 << 16)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tr := newCore(b, u)
			stats := &core.Stats{}
			tr.SetStats(stats)
			bstats := &bitstrie.Stats{}
			tr.Bits().SetStats(bstats)
			dist := workload.HotRange{U: u, HotLo: u / 2, HotWidth: 64, HotPct: 80}
			runParallelOps(b, workers, func(id int, rng *rand.Rand) {
				k := dist.Next(rng)
				switch rng.Intn(4) {
				case 0:
					tr.Insert(k)
				case 1:
					tr.Delete(k)
				case 2:
					tr.Search(k)
				default:
					tr.Predecessor(k)
				}
			})
			ops := float64(b.N)
			b.ReportMetric(float64(bstats.CASAttempts.Load())/ops, "cas/op")
			b.ReportMetric(float64(bstats.BitReads.Load())/ops, "bitreads/op")
			b.ReportMetric(float64(stats.UallTraversalSteps.Load())/ops, "uallsteps/op")
			b.ReportMetric(float64(stats.Notifications.Load())/ops, "notifies/op")
		})
	}
}

// --- C4: bystander progress under an in-operation staller --------------------
//
// The staller repeatedly parks for 2ms inside its operation: inside the
// write lock for the rwlock trie (InsertStalled), anywhere for the
// lock-free trie — a stalled goroutine cannot block others wherever it
// stops. ns/op measures the BYSTANDERS; lock-freedom predicts the
// lock-free ns/op is unchanged by the staller while the rwlock ns/op
// explodes.
func BenchmarkThroughputWithStalls(b *testing.B) {
	const u = int64(1 << 12)
	const pause = 2 * time.Millisecond
	run := func(b *testing.B, s harness.Set, staller func(stop <-chan struct{})) {
		b.Helper()
		prefillEvery(s, u, 4)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if staller != nil {
			wg.Add(1)
			go func() {
				defer wg.Done()
				staller(stop)
			}()
		}
		rng := rand.New(rand.NewSource(3))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := 2 + rng.Int63n(u-2)
			if i%2 == 0 {
				s.Insert(k)
			} else {
				s.Delete(k)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	}
	b.Run("lockfree/baseline", func(b *testing.B) {
		run(b, mustCore(u), nil)
	})
	b.Run("lockfree/staller", func(b *testing.B) {
		s := mustCore(u)
		run(b, s, func(stop <-chan struct{}) {
			for {
				select {
				case <-stop:
					return
				default:
					s.Insert(1)
					time.Sleep(pause)
				}
			}
		})
	})
	b.Run("rwlock/baseline", func(b *testing.B) {
		run(b, mustLock(u), nil)
	})
	b.Run("rwlock/staller", func(b *testing.B) {
		s := mustLock(u)
		run(b, s, func(stop <-chan struct{}) {
			for {
				select {
				case <-stop:
					return
				default:
					s.InsertStalled(1, func() { time.Sleep(pause) })
				}
			}
		})
	})
}

// --- C5: mixed-workload throughput vs baselines ------------------------------

func BenchmarkMixedThroughput(b *testing.B) {
	const u = int64(1 << 16)
	impls := []struct {
		name string
		mk   func() harness.Set
	}{
		{"lockfree-trie", func() harness.Set { return mustCore(u) }},
		{"sharded-trie-16", func() harness.Set { return mustSharded(u, 16) }},
		{"rwlock-trie", func() harness.Set { return mustLock(u) }},
		{"versioned-cas-trie", func() harness.Set { return mustVersioned(u) }},
		{"lockfree-skiplist", func() harness.Set { return mustSkip(u) }},
		{"lockfree-bst", func() harness.Set { return mustBST(u) }},
	}
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"update-heavy", workload.MixUpdateHeavy},
		{"read-heavy", workload.MixReadHeavy},
		{"pred-heavy", workload.MixPredHeavy},
	}
	for _, impl := range impls {
		for _, m := range mixes {
			b.Run(impl.name+"/"+m.name, func(b *testing.B) {
				s := impl.mk()
				prefillEvery(s, u, 8)
				gens := makeGens(b, m.mix, u, 4)
				runParallelOps(b, 4, func(id int, rng *rand.Rand) {
					harness.ApplyOp(s, gens[id].Next())
				})
			})
		}
	}
}

// --- C5b: crossover — FR linked list (O(n)) vs trie (O(log u)) ---------------
//
// The paper's motivation: list-shaped structures degrade linearly in the
// set size while the trie stays logarithmic in the universe. Half-full
// sets, mixed search/predecessor load.
func BenchmarkListVsTrieCrossover(b *testing.B) {
	for _, exp := range []uint{4, 6, 8, 10, 12} {
		u := int64(1) << exp
		impls := []struct {
			name string
			mk   func() harness.Set
		}{
			{"frlist", func() harness.Set { return mustFR(u) }},
			{"lockfree-trie", func() harness.Set { return mustCore(u) }},
		}
		for _, impl := range impls {
			b.Run(fmt.Sprintf("%s/u=2^%d", impl.name, exp), func(b *testing.B) {
				s := impl.mk()
				prefillEvery(s, u, 2)
				keys := randomKeys(u, 1<<10, 9)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k := keys[i&(len(keys)-1)]
					if i%2 == 0 {
						s.Search(k)
					} else {
						s.Predecessor(k)
					}
				}
			})
		}
	}
}

func mustFR(u int64) *frlist.List {
	l, err := frlist.New(u)
	if err != nil {
		panic(err)
	}
	return l
}

// --- C6: RelaxedPredecessor ⊥-rate vs update pressure ------------------------

func BenchmarkRelaxedBottomRate(b *testing.B) {
	const u = int64(1 << 10)
	for _, churners := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("churners=%d", churners), func(b *testing.B) {
			tr, err := relaxed.New(u)
			if err != nil {
				b.Fatal(err)
			}
			tr.Insert(1) // stable floor
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for c := 0; c < churners; c++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
							k := u/2 + rng.Int63n(u/4)
							tr.Insert(k)
							tr.Delete(k)
						}
					}
				}(int64(c + 1))
			}
			var bottoms int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := tr.Predecessor(u - 1); !ok {
					bottoms++
				}
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			b.ReportMetric(float64(bottoms)/float64(b.N), "bottom-rate")
		})
	}
}

// --- C7: auxiliary space vs contention ---------------------------------------

func BenchmarkAuxSpaceVsContention(b *testing.B) {
	const u = int64(1 << 12)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tr := newCore(b, u)
			var maxU, maxP int64
			var sampler sync.WaitGroup
			stop := make(chan struct{})
			sampler.Add(1)
			go func() {
				defer sampler.Done()
				for {
					select {
					case <-stop:
						return
					default:
						if n := int64(tr.AnnouncedUpdates()); n > maxU {
							maxU = n
						}
						if n := int64(tr.AnnouncedPredecessors()); n > maxP {
							maxP = n
						}
					}
				}
			}()
			runParallelOps(b, workers, func(id int, rng *rand.Rand) {
				k := rng.Int63n(u)
				switch rng.Intn(3) {
				case 0:
					tr.Insert(k)
				case 1:
					tr.Delete(k)
				default:
					tr.Predecessor(k)
				}
			})
			close(stop)
			sampler.Wait()
			b.ReportMetric(float64(maxU), "max-uall")
			b.ReportMetric(float64(maxP), "max-pall")
		})
	}
}

// --- S1: sharding breaks the global announcement-list bottleneck -------------
//
// Workers update disjoint key bands (the embarrassingly-parallel regime).
// Unsharded, every operation still announces on the one U-ALL/RU-ALL/P-ALL,
// so each op traverses and notifies the announcements other workers parked
// there; sharded with k ≥ workers, each worker's announcements stay on its
// own shard's lists, which also removes the cache-line ping-pong when
// workers run on separate CPUs.
func BenchmarkShardedDisjointUpdates(b *testing.B) {
	const u = int64(1 << 16)
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{2, 8} {
			b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
				s := mustSharded(u, shards)
				band := u / int64(workers)
				runParallelOps(b, workers, func(id int, rng *rand.Rand) {
					k := int64(id)*band + rng.Int63n(band)
					switch rng.Intn(4) {
					case 0:
						s.Insert(k)
					case 1:
						s.Delete(k)
					case 2:
						s.Search(k)
					default:
						s.Predecessor(k)
					}
				})
			})
		}
	}
}

// --- S2: the price of sharding — cross-shard predecessor stitching -----------
//
// Worst case for the fallback scan: a sparse set (only low keys present)
// with predecessor queries from the top of the universe, forcing a validated
// scan over all k shards. Measures the O(k) summary-scan overhead the
// WithShards documentation warns about.
func BenchmarkShardedCrossShardPredecessor(b *testing.B) {
	const u = int64(1 << 16)
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := mustSharded(u, shards)
			s.Insert(1)
			s.Insert(2)
			keys := randomKeys(u/2, 1<<12, 11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Predecessor(u/2 + keys[i&(len(keys)-1)])
			}
		})
	}
}

// --- A1: how often the second CAS attempt rescues a delete -------------------

func BenchmarkDeleteCASAttempts(b *testing.B) {
	const u = int64(1 << 8)
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tr := newCore(b, u)
			bstats := &bitstrie.Stats{}
			tr.Bits().SetStats(bstats)
			runParallelOps(b, workers, func(id int, rng *rand.Rand) {
				k := rng.Int63n(16) // tight band: deletes collide on parents
				tr.Insert(k)
				tr.Delete(k)
			})
			ops := float64(b.N)
			b.ReportMetric(float64(bstats.SecondCASSuccess.Load())/ops, "2ndcas-rescues/op")
			b.ReportMetric(float64(bstats.CASFailures.Load())/ops, "casfail/op")
		})
	}
}

// --- A2: notification cost vs announced predecessors -------------------------

func BenchmarkNotifyCostVsPredecessors(b *testing.B) {
	const u = int64(1 << 12)
	for _, parked := range []int{0, 2, 8} {
		b.Run(fmt.Sprintf("parked-preds=%d", parked), func(b *testing.B) {
			tr := newCore(b, u)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for p := 0; p < parked; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
							tr.Predecessor(u - 1) // keeps a P-ALL entry live
						}
					}
				}()
			}
			var k atomic.Int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := k.Add(1) & (u/2 - 1)
				tr.Insert(key)
				tr.Delete(key)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// --- A3: allocation behaviour of the hot paths --------------------------------
//
// Steady-state allocs/op and B/op across the three trie variants and the
// three mixes the a3 trajectory gate tracks (DESIGN.md experiment index).
// The Predecessor-heavy mix is the acceptance gate: the scratch-arena
// recovery must hold allocs/op far below the per-call-map baseline recorded
// in BENCH_allocs.json.
func BenchmarkPredMixes(b *testing.B) {
	const u = int64(1 << 16)
	impls := []struct {
		name string
		mk   func() harness.Set
	}{
		{"core", func() harness.Set { return mustCore(u) }},
		{"relaxed", func() harness.Set { return harness.Collapse(mustRelaxed(u)) }},
		{"sharded-16", func() harness.Set { return mustSharded(u, 16) }},
	}
	for _, impl := range impls {
		for _, m := range workload.BenchMixes {
			b.Run(impl.name+"/"+m.Name, func(b *testing.B) {
				s := impl.mk()
				prefillEvery(s, u, 8)
				gens := makeGens(b, m.Mix, u, 4)
				b.ReportAllocs()
				runParallelOps(b, 4, func(id int, rng *rand.Rand) {
					harness.ApplyOp(s, gens[id].Next())
				})
			})
		}
	}
}

// --- CB1: flat combining amortizes announcements ------------------------------
//
// Same-shard update pressure with and without the combining layer, plus the
// explicit pre-batched ApplyBatch path. The triebench cb1 experiment runs
// the calibrated sweep (throughput + announcements/op into
// BENCH_combine.json); these benchmarks keep the three code paths hot in
// the -benchtime 1x CI smoke.
func BenchmarkCombiningUpdates(b *testing.B) {
	const u = int64(1 << 14)
	for _, combining := range []bool{false, true} {
		b.Run(fmt.Sprintf("combining=%v", combining), func(b *testing.B) {
			mk := sharded.New
			if combining {
				mk = sharded.NewCombining
			}
			s, err := mk(u, 1)
			if err != nil {
				b.Fatal(err)
			}
			prefillEvery(s, u, 4)
			runParallelOps(b, 8, func(id int, rng *rand.Rand) {
				k := rng.Int63n(u)
				if rng.Intn(2) == 0 {
					s.Insert(k)
				} else {
					s.Delete(k)
				}
			})
		})
	}
}

// BenchmarkAdaptiveUpdates measures the adaptive mode word's cost on the
// update path against both static modes, on one clustered shard (8
// goroutines, one combiner catchment — the regime the controller should
// converge into combining on) — the triebench AD1 sweep measures both
// regimes with fixed op budgets.
func BenchmarkAdaptiveUpdates(b *testing.B) {
	const u = int64(1 << 14)
	makers := []struct {
		name string
		mk   func() (*sharded.Trie, error)
	}{
		{"direct", func() (*sharded.Trie, error) { return sharded.New(u, 1) }},
		{"combining", func() (*sharded.Trie, error) { return sharded.NewCombining(u, 1) }},
		{"adaptive", func() (*sharded.Trie, error) { return sharded.NewAdaptive(u, 1, adapt.Config{}) }},
	}
	for _, m := range makers {
		b.Run(m.name, func(b *testing.B) {
			s, err := m.mk()
			if err != nil {
				b.Fatal(err)
			}
			prefillEvery(s, u, 4)
			runParallelOps(b, 8, func(id int, rng *rand.Rand) {
				k := rng.Int63n(u)
				if rng.Intn(2) == 0 {
					s.Insert(k)
				} else {
					s.Delete(k)
				}
			})
		})
	}
}

// BenchmarkResizeUpdates measures the resize wrapper's per-op tax — one
// epoch load plus the gate acquire/validate/release — against the bare
// sharded trie, and the same path with migrations cycling underneath
// (the triebench RS1 sweep measures the adaptive-vs-fixed trajectory
// with fixed op budgets).
func BenchmarkResizeUpdates(b *testing.B) {
	const u = int64(1 << 14)
	mkResize := func() *resize.Set {
		s, err := resize.NewSet(4,
			func(k int) (*sharded.Trie, error) { return sharded.New(u, k) },
			resize.Config{})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	bench := func(b *testing.B, s harness.Set) {
		prefillEvery(s, u, 4)
		runParallelOps(b, 8, func(id int, rng *rand.Rand) {
			k := rng.Int63n(u)
			if rng.Intn(2) == 0 {
				s.Insert(k)
			} else {
				s.Delete(k)
			}
		})
	}
	b.Run("sharded-bare", func(b *testing.B) { bench(b, mustSharded(u, 4)) })
	b.Run("resize-stable", func(b *testing.B) { bench(b, mkResize()) })
	// What WithAdaptiveShards users actually pay: the epoch/gate tax
	// PLUS the decision layer's striped tick counter and periodic
	// signal sampling. Bounds pinned to 4 so no migration can start and
	// the number isolates the steady-state sampling cost.
	b.Run("resize-decider", func(b *testing.B) {
		s, err := resize.NewSet(4,
			func(k int) (*sharded.Trie, error) { return sharded.New(u, k) },
			resize.Config{MinShards: 4, MaxShards: 4})
		if err != nil {
			b.Fatal(err)
		}
		bench(b, s)
	})
	b.Run("resize-migrating", func(b *testing.B) {
		s := mkResize()
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				for _, k := range []int{8, 2, 4} {
					select {
					case <-stop:
						return
					default:
					}
					if err := s.Resize(k); err != nil {
						b.Errorf("Resize(%d): %v", k, err)
						return
					}
				}
			}
		}()
		bench(b, s)
		close(stop)
		<-done
	})
}

func BenchmarkApplyBatch(b *testing.B) {
	const u = int64(1 << 14)
	for _, size := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			s := mustSharded(u, 4)
			prefillEvery(s, u, 4)
			rng := rand.New(rand.NewSource(5))
			ops := make([]core.BatchOp, size)
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				ops = ops[:0]
				for len(ops) < size {
					ops = append(ops, core.BatchOp{Key: rng.Int63n(u), Del: rng.Intn(2) == 0})
				}
				s.ApplyBatch(combine.SortDedup(ops))
				ops = ops[:size]
			}
		})
	}
}

// --- CC1: cache-compressed descents -------------------------------------------
//
// Compressed vs uncompressed traversals on a sparse universe (256 keys in
// 2^20): the per-64-node occupancy words let a descent step over
// certified-empty regions in one load. The triebench cc1 experiment runs
// the calibrated sweep into BENCH_cache.json; these benchmarks keep both
// code paths hot in the -benchtime 1x CI smoke.

// BenchmarkSparseSearch is the no-regression control: Search reads its
// leaf in O(1) and never descends, so the summary machinery must cost it
// nothing.
func BenchmarkSparseSearch(b *testing.B) {
	const u = int64(1 << 20)
	for _, compressed := range []bool{true, false} {
		b.Run(fmt.Sprintf("compressed=%v", compressed), func(b *testing.B) {
			tr := newCore(b, u)
			tr.Bits().SetCompressedDescents(compressed)
			prefillEvery(tr, u, 4096)
			keys := randomKeys(u, 1<<12, 21)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Search(keys[i&(len(keys)-1)])
			}
		})
	}
}

// BenchmarkPredDescent is the win regime the summaries exist for:
// predecessor descents over long empty gaps between occupied leaves.
func BenchmarkPredDescent(b *testing.B) {
	const u = int64(1 << 20)
	for _, compressed := range []bool{true, false} {
		b.Run(fmt.Sprintf("compressed=%v", compressed), func(b *testing.B) {
			tr := newCore(b, u)
			tr.Bits().SetCompressedDescents(compressed)
			prefillEvery(tr, u, 4096)
			keys := randomKeys(u, 1<<12, 22)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Predecessor(keys[i&(len(keys)-1)])
			}
		})
	}
}

// --- shared helpers -----------------------------------------------------------

func mustRelaxed(u int64) *relaxed.Trie {
	tr, err := relaxed.New(u)
	if err != nil {
		panic(err)
	}
	return tr
}

func mustCore(u int64) *core.Trie {
	tr, err := core.New(u)
	if err != nil {
		panic(err)
	}
	return tr
}

func mustSharded(u int64, k int) *sharded.Trie {
	tr, err := sharded.New(u, k)
	if err != nil {
		panic(err)
	}
	return tr
}

func mustLock(u int64) *locktrie.Trie {
	tr, err := locktrie.New(u)
	if err != nil {
		panic(err)
	}
	return tr
}

func mustVersioned(u int64) *versioned.Trie {
	tr, err := versioned.New(u)
	if err != nil {
		panic(err)
	}
	return tr
}

func mustSkip(u int64) *skiplist.List {
	tr, err := skiplist.New(u, 42)
	if err != nil {
		panic(err)
	}
	return tr
}

func mustBST(u int64) *efrb.Tree {
	tr, err := efrb.New(u)
	if err != nil {
		panic(err)
	}
	return tr
}

func randomKeys(u int64, n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(u)
	}
	return keys
}

func makeGens(b *testing.B, mix workload.Mix, u int64, workers int) []*workload.Generator {
	b.Helper()
	gens := make([]*workload.Generator, workers)
	for i := range gens {
		g, err := workload.NewGenerator(mix, workload.Uniform{U: u}, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		gens[i] = g
	}
	return gens
}

// runParallelOps distributes b.N operations over `workers` goroutines, each
// with its own deterministic rng, timing only the parallel phase.
func runParallelOps(b *testing.B, workers int, op func(id int, rng *rand.Rand)) {
	b.Helper()
	per := b.N / workers
	if per == 0 {
		per = 1
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*101 + 7))
			<-start
			for i := 0; i < per; i++ {
				op(id, rng)
			}
		}(w)
	}
	b.ResetTimer()
	close(start)
	wg.Wait()
	b.StopTimer()
}
