// Durability: the WithDurability option and the write-ahead wrapper it
// installs around the assembled backend. The trie stays a pure
// in-memory structure — durability is one decoration layer at the
// facade seam, so it covers every construction path (k=1, sharded,
// adaptive-resize) identically, the way observability attaches in
// obs.go.
package lockfreetrie

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// durConfig is the resolved WithDurability configuration.
type durConfig struct {
	dir  string
	opts wal.Options
}

// DurabilityOption tunes WithDurability.
type DurabilityOption func(*durConfig) error

// WithSyncEvery fsyncs the log after every n appended update ops
// (counted per WAL stripe). n = 1 makes every acknowledged update
// durable before the call returns — the default when no sync policy is
// given. Larger n trades a bounded window of recent acknowledged ops
// against fsync amortization; the wl1 experiment measures the curve.
func WithSyncEvery(n int) DurabilityOption {
	return func(c *durConfig) error {
		if n < 1 {
			return fmt.Errorf("lockfreetrie: WithSyncEvery(%d): need n ≥ 1", n)
		}
		c.opts.SyncEvery = n
		return nil
	}
}

// WithSyncInterval fsyncs dirty log stripes on a background cadence,
// bounding the un-fsynced window by time instead of op count. Given
// alone it replaces the per-op default: appends buffer and the ticker
// makes them durable within d. Composes with WithSyncEvery (whichever
// trips first syncs).
func WithSyncInterval(d time.Duration) DurabilityOption {
	return func(c *durConfig) error {
		if d <= 0 {
			return fmt.Errorf("lockfreetrie: WithSyncInterval(%v): need a positive interval", d)
		}
		c.opts.SyncInterval = d
		return nil
	}
}

// WithWALShards stripes the log across k files with independent append
// locks and LSN sequences (power of two; default 1). Key→stripe is the
// same range partition the trie's own sharding uses, so a sorted batch
// touches each stripe at most once.
func WithWALShards(k int) DurabilityOption {
	return func(c *durConfig) error {
		if k < 1 || k&(k-1) != 0 {
			return fmt.Errorf("lockfreetrie: WithWALShards(%d): need a power of two ≥ 1", k)
		}
		c.opts.Shards = k
		return nil
	}
}

// WithSegmentBytes sets the log segment rotation threshold (default
// wal.DefaultSegmentBytes).
func WithSegmentBytes(n int64) DurabilityOption {
	return func(c *durConfig) error {
		if n < 1 {
			return fmt.Errorf("lockfreetrie: WithSegmentBytes(%d): need a positive size", n)
		}
		c.opts.SegmentBytes = n
		return nil
	}
}

// WithSnapshotBytes triggers an asynchronous consistent snapshot each
// time a stripe's log grows by n bytes (default wal.DefaultSnapshotBytes);
// n < 0 disables auto-snapshots (Trie.SnapshotWAL still works).
func WithSnapshotBytes(n int64) DurabilityOption {
	return func(c *durConfig) error {
		if n == 0 {
			return fmt.Errorf("lockfreetrie: WithSnapshotBytes(0): use a negative n to disable auto-snapshots")
		}
		c.opts.SnapshotBytes = n
		return nil
	}
}

// WithDurability persists the set to dir: every update is appended to a
// per-stripe write-ahead log (internal/wal) BEFORE it is applied, with
// one batcher sweep group-committing as one log record, asynchronous
// consistent snapshots bounding the log, and New recovering the set
// from dir on construction (Trie.RecoveryStats reports what it found).
// Call Trie.Close to flush and release the log; read the wal.* metrics
// through MetricsSnapshot.
//
// Durability semantics: with the default WithSyncEvery(1), an update is
// on disk before its call returns; weaker policies bound the loss
// window by op count or time. The log records one valid linearization
// of the acknowledged updates — ops racing on the same key through
// different batches may be logged in either order, so recovery restores
// a legal (not necessarily the observed) final state for keys that
// were mid-race at the crash; see DESIGN.md §Durability.
//
// A log I/O failure never blocks or fails trie operations: the first
// error is sticky, later appends drop, wal.append.errors counts, and
// Close returns it — the durability contract is broken from that
// instant while the in-memory set remains fully usable.
//
// Incompatible with NewRelaxed (the relaxed trie's abstaining queries
// have no batch entrypoint to seed through).
func WithDurability(dir string, opts ...DurabilityOption) Option {
	return func(c *config) error {
		if dir == "" {
			return fmt.Errorf("lockfreetrie: WithDurability: empty directory")
		}
		dc := &durConfig{dir: dir}
		for _, o := range opts {
			if err := o(dc); err != nil {
				return err
			}
		}
		c.dur = dc
		return nil
	}
}

// durableSet interposes the write-ahead append between the facade and
// the assembled backend: log first, then apply. Queries pass through
// untouched — durability never gates readers.
type durableSet struct {
	set
	log *wal.Log
}

func (d *durableSet) Insert(x int64) {
	d.log.Append(x, false)
	d.set.Insert(x)
}

func (d *durableSet) Delete(x int64) {
	d.log.Append(x, true)
	d.set.Delete(x)
}

func (d *durableSet) ApplyBatch(ops []core.BatchOp) {
	d.log.AppendBatch(ops)
	d.set.ApplyBatch(ops)
}

// RecoveryStats reports what WithDurability reconstructed at New.
type RecoveryStats struct {
	// Keys is the recovered set cardinality.
	Keys int64
	// SnapshotKeys came from snapshot files; ReplayedOps (over
	// ReplayedRecords log records) were replayed from the log tail.
	SnapshotKeys    int64
	ReplayedRecords int64
	ReplayedOps     int64
	// TornTail reports a discarded partially-written final record — the
	// signature of a crash mid-append.
	TornTail bool
}

// attachDurability opens (recovering) the log, seeds the still-private
// backend with the recovered set, and wraps the backend so every
// further update is logged before it applies. Runs at the New seam
// shared by all construction paths, before the trie is published.
func (t *Trie) attachDurability(dc *durConfig) error {
	log, rec, err := wal.Open(dc.dir, t.set.U(), dc.opts)
	if err != nil {
		return fmt.Errorf("lockfreetrie: WithDurability: %w", err)
	}
	// Seed through the batch entrypoint in bounded ascending chunks —
	// the recovery walk emits globally ascending unique keys, which is
	// exactly the sharded/resize ApplyBatch contract. The backend is
	// unwrapped here, so seeding is not re-logged.
	const chunk = 1024
	buf := make([]core.BatchOp, 0, chunk)
	rec.ForEach(func(k int64) {
		buf = append(buf, core.BatchOp{Key: k})
		if len(buf) == chunk {
			t.set.ApplyBatch(buf)
			buf = buf[:0]
		}
	})
	if len(buf) > 0 {
		t.set.ApplyBatch(buf)
	}
	t.recovery = RecoveryStats{
		Keys:            rec.Keys,
		SnapshotKeys:    rec.SnapshotKeys,
		ReplayedRecords: rec.ReplayedRecords,
		ReplayedOps:     rec.ReplayedOps,
		TornTail:        rec.TornTail,
	}
	t.wal = log
	t.set = &durableSet{set: t.set, log: log}
	return nil
}

// Durable reports whether WithDurability is active.
func (t *Trie) Durable() bool { return t.wal != nil }

// RecoveryStats returns what WithDurability recovered at construction
// (zero without it, or for a fresh directory).
func (t *Trie) RecoveryStats() RecoveryStats { return t.recovery }

// SnapshotWAL synchronously takes a consistent snapshot of every WAL
// stripe and truncates the log segments it covers. Auto-snapshots
// (WithSnapshotBytes) do the same in the background; the explicit call
// exists for checkpoints at known-good moments (before shutdown, after
// a bulk load). Errors without WithDurability.
func (t *Trie) SnapshotWAL() error {
	if t.wal == nil {
		return fmt.Errorf("lockfreetrie: SnapshotWAL: trie has no durability (WithDurability)")
	}
	return t.wal.Snapshot()
}

// Close flushes and closes the write-ahead log, returning any sticky
// log error. The in-memory trie remains queryable; further updates are
// no longer logged. A no-op (nil) without WithDurability.
func (t *Trie) Close() error {
	if t.wal == nil {
		return nil
	}
	return t.wal.Close()
}
