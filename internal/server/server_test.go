package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	lockfreetrie "repro"
)

// startServer launches a server over a fresh trie and returns it with
// its address and a cleanup that asserts a clean drain.
func startServer(t *testing.T, universe int64, cfg Config) (*Server, string) {
	t.Helper()
	tr, err := lockfreetrie.New(universe)
	if err != nil {
		t.Fatal(err)
	}
	s := New(tr, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return s, ln.Addr().String()
}

// TestServerOps: the full op surface over a real socket, both ingest
// modes.
func TestServerOps(t *testing.T) {
	for _, coalesce := range []bool{true, false} {
		name := "perop"
		if coalesce {
			name = "coalesce"
		}
		t.Run(name, func(t *testing.T) {
			_, addr := startServer(t, 1<<16, Config{CoalesceUpdates: coalesce})
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for _, k := range []int64{5, 100, 7000} {
				if err := c.Insert(k); err != nil {
					t.Fatalf("insert %d: %v", k, err)
				}
			}
			if err := c.Delete(100); err != nil {
				t.Fatal(err)
			}
			if in, err := c.Contains(5); err != nil || !in {
				t.Fatalf("contains 5 = %v, %v", in, err)
			}
			if in, err := c.Contains(100); err != nil || in {
				t.Fatalf("contains 100 = %v, %v", in, err)
			}
			if p, err := c.Predecessor(7000); err != nil || p != 5 {
				t.Fatalf("pred 7000 = %d, %v", p, err)
			}
			if s, err := c.Successor(5); err != nil || s != 7000 {
				t.Fatalf("succ 5 = %d, %v", s, err)
			}
			if p, err := c.Predecessor(5); err != nil || p != -1 {
				t.Fatalf("pred 5 = %d, %v", p, err)
			}
			var got []int64
			if err := c.Range(0, 1<<16-1, func(k int64) bool {
				got = append(got, k)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != 2 || got[0] != 7000 || got[1] != 5 {
				t.Fatalf("range = %v, want [7000 5]", got)
			}
		})
	}
}

// TestServerRemoteErrors: out-of-universe keys come back as RemoteError
// with the facade's message, and the connection stays usable.
func TestServerRemoteErrors(t *testing.T) {
	_, addr := startServer(t, 1<<10, Config{CoalesceUpdates: true})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var re *RemoteError
	if err := c.Insert(1 << 20); !errors.As(err, &re) {
		t.Fatalf("out-of-universe insert: %v, want RemoteError", err)
	}
	if _, err := c.Predecessor(-1); !errors.As(err, &re) {
		t.Fatalf("negative predecessor: %v, want RemoteError", err)
	}
	if err := c.Insert(17); err != nil {
		t.Fatalf("connection unusable after remote error: %v", err)
	}
	if in, err := c.Contains(17); err != nil || !in {
		t.Fatalf("contains 17 = %v, %v", in, err)
	}
}

// TestServerCoalesces: concurrent pipelined updates from several
// connections land in shared ApplyBatch sweeps — fewer sweeps than ops,
// with the batch-size histogram recording multi-op batches.
func TestServerCoalesces(t *testing.T) {
	srv, addr := startServer(t, 1<<20, Config{CoalesceUpdates: true, Window: 64})
	const conns, perConn = 4, 500
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			var inner sync.WaitGroup
			for j := 0; j < perConn; j++ {
				inner.Add(1)
				c.UpdateAsync(true, base+int64(j), func(err error) {
					if err != nil {
						t.Error(err)
					}
					inner.Done()
				})
			}
			inner.Wait()
		}(int64(i) * perConn)
	}
	wg.Wait()
	snap := srv.MetricsSnapshot()
	total := snap.Counters["server.ops.update.batched"]
	sweeps := snap.Counters["server.batch.sweeps"]
	if total != conns*perConn {
		t.Fatalf("batched ops = %d, want %d", total, conns*perConn)
	}
	if sweeps == 0 || sweeps >= total {
		t.Fatalf("sweeps = %d for %d ops — no coalescing happened", sweeps, total)
	}
	if h := snap.Hists["server.batch_size"]; h.Count != sweeps || h.Sum != total {
		t.Fatalf("batch_size hist count/sum = %d/%d, want %d/%d", h.Count, h.Sum, sweeps, total)
	}
	// The batched ops must actually be in the trie.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if in, err := c.Contains(conns*perConn - 1); err != nil || !in {
		t.Fatalf("contains last key = %v, %v", in, err)
	}
}

// TestServerRangeChunks: a range spanning more than one chunk frame
// streams completely and in order.
func TestServerRangeChunks(t *testing.T) {
	_, addr := startServer(t, 1<<18, Config{CoalesceUpdates: true})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 3000 // ≈3 chunks at 1024 keys each
	var wg sync.WaitGroup
	for k := int64(0); k < n; k++ {
		wg.Add(1)
		c.UpdateAsync(true, k, func(err error) {
			if err != nil {
				t.Error(err)
			}
			wg.Done()
		})
	}
	wg.Wait()
	prev := int64(n)
	count := 0
	if err := c.Range(0, 1<<18-1, func(k int64) bool {
		if k >= prev {
			t.Fatalf("range out of order: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("range streamed %d keys, want %d", count, n)
	}
}

// TestServerGracefulDrain: a shutdown issued while pipelined updates are
// in flight still answers every one of them before the sockets close.
func TestServerGracefulDrain(t *testing.T) {
	tr, err := lockfreetrie.New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	s := New(tr, Config{CoalesceUpdates: true, Window: 128})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 1000
	results := make(chan error, n)
	for k := int64(0); k < n; k++ {
		c.UpdateAsync(true, k, func(err error) { results <- err })
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// Every in-flight update was either answered (nil error) or the
	// client saw the close — but nothing may hang.
	for i := 0; i < n; i++ {
		select {
		case <-results:
		case <-time.After(5 * time.Second):
			t.Fatalf("update %d never resolved after drain", i)
		}
	}
	// New connections are refused.
	if _, err := Dial(ln.Addr().String()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestServerProtocolErrorClosesConn: garbage on one connection kills
// that connection only; the server keeps serving others.
func TestServerProtocolErrorClosesConn(t *testing.T) {
	srv, addr := startServer(t, 1<<10, Config{CoalesceUpdates: true})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// A 17-byte frame with an unknown opcode.
	frame := append([]byte{0, 0, 0, 17, 0xAB}, make([]byte, 16)...)
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The server should hang up on us.
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept the connection after a protocol error")
	}
	raw.Close()
	// And still serve a well-behaved client.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Insert(9); err != nil {
		t.Fatal(err)
	}
	if srv.MetricsSnapshot().Counters["server.errors.protocol"] == 0 {
		t.Fatal("protocol error not counted")
	}
}
