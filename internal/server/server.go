package server

import (
	"bufio"
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"

	lockfreetrie "repro"
	"repro/internal/obs"
)

// Config tunes one Server.
type Config struct {
	// CoalesceUpdates routes Insert/Delete requests through the shared
	// batcher goroutine, which drains every queued update — across all
	// connections — into one Trie.ApplyBatch sweep. False applies each
	// update inline on its connection's reader goroutine (the per-op
	// baseline sv1 measures against).
	CoalesceUpdates bool
	// Window bounds each connection's in-flight requests. A reader that
	// has Window requests outstanding stops reading its socket, so
	// backpressure propagates to the client as TCP flow control rather
	// than unbounded server-side queueing. 0 means DefaultWindow.
	Window int
	// MaxBatch caps one ApplyBatch sweep. 0 means DefaultMaxBatch.
	MaxBatch int
}

// Defaults for Config zero values.
const (
	DefaultWindow   = 256
	DefaultMaxBatch = 1024
)

// updateReq is one Insert/Delete waiting for the batcher.
type updateReq struct {
	kind  lockfreetrie.OpKind
	key   int64
	c     *conn
	id    uint64
	start time.Time
}

// Server owns a Trie and serves the wire protocol over TCP.
type Server struct {
	trie *lockfreetrie.Trie
	cfg  Config
	reg  *obs.Registry

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*conn]struct{}
	closed bool

	upq         *updateQueue // nil when !CoalesceUpdates
	batcherDone chan struct{}

	readerWG sync.WaitGroup // per-conn reader goroutines
	connWG   sync.WaitGroup // per-conn writer goroutines

	active atomic.Int64

	mAccepted, mReads, mUpdatesBatched, mUpdatesPerOp *obs.Counter
	mSweeps, mErrProto, mErrOp                        *obs.Counter
	hBatch, hUpdateNs, hReadNs                        *obs.Histogram
}

// New builds a Server over an existing trie. The caller keeps ownership
// of the trie (and may keep using it in-process); the server only adds
// the network front-end.
func New(trie *lockfreetrie.Trie, cfg Config) *Server {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	s := &Server{
		trie:  trie,
		cfg:   cfg,
		reg:   obs.NewRegistry(),
		conns: map[*conn]struct{}{},
	}
	s.mAccepted = s.reg.Counter("server.conns.accepted")
	s.mReads = s.reg.Counter("server.ops.read")
	s.mUpdatesBatched = s.reg.Counter("server.ops.update.batched")
	s.mUpdatesPerOp = s.reg.Counter("server.ops.update.perop")
	s.mSweeps = s.reg.Counter("server.batch.sweeps")
	s.mErrProto = s.reg.Counter("server.errors.protocol")
	s.mErrOp = s.reg.Counter("server.errors.op")
	s.hBatch = s.reg.Histogram("server.batch_size")
	s.hUpdateNs = s.reg.Histogram("server.latency.update_ns")
	s.hReadNs = s.reg.Histogram("server.latency.read_ns")
	s.reg.Gauge("server.conns.active", s.active.Load)
	if cfg.CoalesceUpdates {
		s.upq = newUpdateQueue()
		s.batcherDone = make(chan struct{})
		go s.batcher()
	}
	return s
}

// updateQueue is the run queue between the reader goroutines and the
// batcher. Readers publish whole RUNS (every update frame parsed out of
// one socket read) under one lock acquisition; the batcher takes
// everything queued in one swap. Length needs no bound of its own — each
// queued update holds a window slot, so the queue never exceeds the sum
// of the connection windows.
type updateQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []updateReq
	closed bool
}

func newUpdateQueue() *updateQueue {
	u := &updateQueue{}
	u.cond = sync.NewCond(&u.mu)
	return u
}

// pushRun appends a run. Signals only on the empty→nonempty edge, the
// only time the batcher can be waiting.
func (u *updateQueue) pushRun(run []updateReq) {
	u.mu.Lock()
	wasEmpty := len(u.q) == 0
	u.q = append(u.q, run...)
	u.mu.Unlock()
	if wasEmpty {
		u.cond.Signal()
	}
}

// swap blocks until the queue is nonempty (or closed), then hands the
// whole backlog to the caller, taking ownership of prev (the caller's
// previous batch, recycled as the new accumulation buffer). Returns
// ok=false only when closed AND drained.
func (u *updateQueue) swap(prev []updateReq) ([]updateReq, bool) {
	u.mu.Lock()
	for len(u.q) == 0 && !u.closed {
		u.cond.Wait()
	}
	out := u.q
	u.q = prev[:0]
	u.mu.Unlock()
	return out, len(out) > 0
}

// close wakes the batcher after the readers are gone; swap drains what
// remains, then reports done.
func (u *updateQueue) close() {
	u.mu.Lock()
	u.closed = true
	u.mu.Unlock()
	u.cond.Signal()
}

// MetricsSnapshot merges the server's own metrics with the embedded
// trie's into one exposition-ready snapshot (the obs.Snapshot.Merge
// multi-registry path).
func (s *Server) MetricsSnapshot() obs.Snapshot {
	return s.reg.Snapshot().Merge(s.trie.MetricsSnapshot())
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// Shutdown-initiated close, or the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.startConn(nc)
	}
}

// startConn registers and launches one connection's goroutine pair.
func (s *Server) startConn(nc net.Conn) {
	c := &conn{
		srv:     s,
		nc:      nc,
		winWake: make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	c.out.cond = sync.NewCond(&c.out.mu)
	// Finals in the queue are bounded by the window; chunk frames get the
	// same budget again before the reader blocks.
	c.out.capHint = 2 * s.cfg.Window
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.mAccepted.Inc(0)
	s.active.Add(1)
	s.readerWG.Add(1)
	s.connWG.Add(1)
	go c.readLoop()
	go c.writeLoop()
}

// batcher is the network combiner: it blocks for one update, drains
// everything else already queued (bounded by MaxBatch), and applies the
// run as ONE ApplyBatch — one announcement pass per shard-run for the
// whole sweep, where the per-op path pays one per update. Responses fan
// back out as one aggregated run per connection (see sweep). The queue
// never blocks the batcher on a wedged connection: the sweep's pushes
// are guaranteed-space (see respQueue).
func (s *Server) batcher() {
	defer close(s.batcherDone)
	var reqs []updateReq
	var runs []respRun
	ops := make([]lockfreetrie.Op, 0, s.cfg.MaxBatch)
	agg := make(map[*conn]int)
	for {
		var ok bool
		reqs, ok = s.upq.swap(reqs)
		if !ok {
			return
		}
		// The backlog can exceed MaxBatch (it is bounded by the summed
		// windows); chunk it so each ApplyBatch stays in the size range
		// where its per-op cost is flat.
		for off := 0; off < len(reqs); off += s.cfg.MaxBatch {
			end := off + s.cfg.MaxBatch
			if end > len(reqs) {
				end = len(reqs)
			}
			runs = s.sweep(reqs[off:end], ops, agg, runs)
		}
	}
}

// framePool recycles response-frame buffers between the sweeps that
// encode them and the write loops that retire them, so the batched path's
// steady-state frame traffic allocates nothing. The write loop is the
// single point where every frame dies, which makes the recycle safe: no
// other reference survives the push.
var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

type frameBuf struct{ b []byte }

// sweep applies one batch run and responds to every request in it. The
// responses are aggregated per connection — every frame destined for one
// conn is encoded into a single contiguous run, delivered with ONE
// guaranteed-space push carrying the run's final count — so the response
// side of a sweep costs O(conns) queue operations and wakeups rather
// than O(batch).
func (s *Server) sweep(reqs []updateReq, ops []lockfreetrie.Op, agg map[*conn]int, runs []respRun) []respRun {
	ops = ops[:0]
	for _, r := range reqs {
		ops = append(ops, lockfreetrie.Op{Kind: r.kind, Key: r.key})
	}
	errs := s.trie.ApplyBatch(ops)
	s.mSweeps.Inc(0)
	s.hBatch.Record(int64(len(reqs)))
	clear(agg)
	runs = runs[:0]
	// One clock read serves every latency sample in the sweep: the ops
	// complete together (their responses leave in the same per-conn
	// runs), so a shared end time is exact, not an approximation.
	now := time.Now()
	for i, r := range reqs {
		var err error
		if errs != nil {
			err = errs[i]
		}
		// Requests enter the backlog as per-connection runs, so consecutive
		// entries almost always share a conn: checking the run we just
		// appended to skips the map on that hot path.
		j := len(runs) - 1
		if j < 0 || runs[j].c != r.c {
			var ok bool
			j, ok = agg[r.c]
			if !ok {
				j = len(runs)
				runs = append(runs, respRun{c: r.c, fb: framePool.Get().(*frameBuf)})
				agg[r.c] = j
			}
		}
		run := &runs[j]
		if err != nil {
			s.mErrOp.Inc(int64(r.id))
			run.fb.b = encodeErrResponse(run.fb.b, r.id, err)
		} else {
			run.fb.b = encodeValueResponse(run.fb.b, r.id, 0)
		}
		run.finals++
		s.hUpdateNs.Record(int64(now.Sub(r.start)))
	}
	for i := range runs {
		run := &runs[i]
		run.c.out.push(respMsg{frame: run.fb.b, fb: run.fb, finals: run.finals}, true)
		run.c.pending.Add(-run.finals)
		runs[i] = respRun{} // the queue owns the buffer now
	}
	return runs[:0]
}

// respRun accumulates one connection's share of a sweep's responses in a
// pooled frame buffer.
type respRun struct {
	c      *conn
	fb     *frameBuf
	finals int
}

// Shutdown drains gracefully: stop accepting, unblock every reader, let
// in-flight requests (including queued batcher sweeps) complete and
// their responses flush, then close the sockets. If ctx expires first,
// connections are force-closed; the drain machinery still runs to
// completion (discard mode makes it non-blocking) before return.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		// Unblock the reader's pending Read. A refused deadline (socket
		// already dead, or a net.Conn that doesn't support deadlines)
		// would leave that reader blocked forever; closing the socket
		// unblocks it just as well, at the cost of the graceful flush.
		if err := c.nc.SetReadDeadline(time.Now()); err != nil {
			c.forceClose()
		}
	}
	done := make(chan struct{})
	go func() {
		s.readerWG.Wait()
		// All producers into s.upq are reader goroutines; with every
		// reader gone the queue can close, and the batcher drains what
		// remains before exiting.
		if s.upq != nil {
			s.upq.close()
			<-s.batcherDone
		}
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, c := range conns {
			c.forceClose()
		}
		<-done
		return ctx.Err()
	}
}

// respMsg is one encoded run of response frames; finals counts the
// requests this run completes (each releases one window slot). The
// reader's pushes carry one frame with finals ≤ 1; the batcher's carry a
// whole sweep's worth of frames for one connection in one push — one
// queue transfer, one cond signal, and (usually) one socket write per
// conn per sweep instead of one per update.
type respMsg struct {
	frame  []byte
	fb     *frameBuf // non-nil when frame is pooled; the writer recycles it
	finals int
}

// respQueue is the per-connection response queue between the producers
// (this connection's reader; the shared batcher) and the writer. It is a
// cond-guarded slice rather than a channel so the two producers get
// different blocking contracts: the reader's push blocks past capHint
// (range streaming backpressure, conn-local), while the batcher's push
// is guaranteed-space — finals are bounded by the in-flight window, so
// the shared batcher can never stall on one wedged connection.
type respQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	q       []respMsg
	closed  bool
	capHint int
}

// push appends m. force skips the capacity wait (batcher path).
func (r *respQueue) push(m respMsg, force bool) {
	r.mu.Lock()
	for !force && len(r.q) >= r.capHint && !r.closed {
		r.cond.Wait()
	}
	if !r.closed {
		r.q = append(r.q, m)
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// pop removes the next frame, blocking until one arrives or the queue
// closes empty.
func (r *respQueue) pop() (respMsg, bool) {
	r.mu.Lock()
	for len(r.q) == 0 && !r.closed {
		r.cond.Wait()
	}
	if len(r.q) == 0 {
		r.mu.Unlock()
		return respMsg{}, false
	}
	m := r.q[0]
	r.q = r.q[1:]
	r.mu.Unlock()
	r.cond.Broadcast() // wake a reader blocked on capHint
	return m, true
}

// empty reports whether the queue is momentarily drained (flush point).
func (r *respQueue) empty() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.q) == 0
}

// close wakes every waiter; subsequent pushes are dropped.
func (r *respQueue) close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

// conn is one client connection: a reader goroutine that decodes
// requests and either answers reads inline or feeds updates to the
// batcher, and a writer goroutine that flushes encoded responses.
type conn struct {
	srv *Server
	nc  net.Conn
	out respQueue
	// The in-flight window is an atomic counter, not a channel: the
	// reader is the only acquirer, so winUsed.Add races with nothing on
	// that side, and the writer releases a whole response run in ONE
	// Add(-finals) instead of finals channel operations. winWake is a
	// 1-buffered ping for the rare full-window case; a stale ping just
	// makes the reader re-check the counter.
	winUsed   atomic.Int64
	winWake   chan struct{}
	pending   sync.WaitGroup // updates handed to the batcher, unanswered
	stop      chan struct{}
	stopOnce  sync.Once
	closeOnce sync.Once // guards nc.Close across writeLoop exit and forceClose
}

// closeNC closes the socket exactly once. Both the write loop's normal
// exit and forceClose funnel through here, so a forced shutdown racing a
// draining writer never double-closes (and never surfaces the second
// close's "use of closed connection" error anywhere).
func (c *conn) closeNC() {
	c.closeOnce.Do(func() { c.nc.Close() })
}

// releaseWin returns n window slots and pings a possibly-waiting reader.
func (c *conn) releaseWin(n int) {
	c.winUsed.Add(int64(-n))
	select {
	case c.winWake <- struct{}{}:
	default:
	}
}

// forceClose abandons the connection: the socket closes (erroring the
// writer into discard mode and the reader out of its Read) and any
// reader blocked on a window slot unblocks.
func (c *conn) forceClose() {
	c.stopOnce.Do(func() {
		close(c.stop)
		c.closeNC()
	})
}

// readLoop decodes and dispatches requests until the client hangs up,
// the stream corrupts, or shutdown unblocks the pending Read. On the
// coalescing path it accumulates consecutive update requests into a RUN
// and publishes the run to the batcher in one queue operation, flushing
// whenever it is about to block (an empty read buffer, or a full
// window) — so a pipelining client's updates cost one lock acquisition
// per socket read rather than one per request. It then runs the
// connection's drain: wait for the batcher to answer this connection's
// queued updates, close the response queue, and let the writer flush.
func (c *conn) readLoop() {
	defer c.srv.readerWG.Done()
	br := bufio.NewReaderSize(c.nc, 32<<10)
	buf := make([]byte, 0, maxRequestFrame)
	var run []updateReq
	flush := func() {
		if len(run) == 0 {
			return
		}
		c.pending.Add(len(run))
		c.srv.upq.pushRun(run)
		run = run[:0]
	}
	// One arrival stamp per socket read, not per request: every frame
	// decoded out of one buffered read was already in the kernel buffer at
	// that read, so the shared stamp IS their arrival time — and the clock
	// call drops from once per update to once per burst.
	var arrival time.Time
	stale := true
	for {
		if br.Buffered() == 0 {
			flush() // about to block in Read; publish what we have
			stale = true
		}
		p, err := readFrame(br, buf, maxRequestFrame)
		if err != nil {
			break
		}
		if stale {
			arrival = time.Now()
			stale = false
		}
		buf = p[:0]
		req, err := decodeRequest(p)
		if err != nil {
			c.srv.mErrProto.Inc(0)
			break
		}
		if c.winUsed.Add(1) > int64(c.srv.cfg.Window) {
			// Window full: give the slot back and flush first — the
			// queued updates hold the very slots we are waiting on.
			c.winUsed.Add(-1)
			flush()
			for c.winUsed.Load() >= int64(c.srv.cfg.Window) {
				select {
				case <-c.winWake:
				case <-c.stop:
					goto drain
				}
			}
			c.winUsed.Add(1)
		}
		if c.srv.upq != nil && (req.op == opInsert || req.op == opDelete) {
			kind := lockfreetrie.OpInsert
			if req.op == opDelete {
				kind = lockfreetrie.OpDelete
			}
			c.srv.mUpdatesBatched.Inc(req.key)
			run = append(run, updateReq{kind: kind, key: req.key, c: c, id: req.id, start: arrival})
			continue
		}
		flush() // keep response work roughly arrival-ordered
		c.dispatch(req)
	}
drain:
	flush()
	c.pending.Wait()
	c.out.close()
	c.srv.mu.Lock()
	delete(c.srv.conns, c)
	c.srv.mu.Unlock()
	c.srv.active.Add(-1)
}

// writeLoop streams queued response frames through one buffered writer,
// flushing whenever the queue goes momentarily empty. On a write error
// it switches to discard mode — it keeps draining the queue and
// releasing window slots so the batcher and reader never block on a dead
// peer — and closes the socket on exit either way.
func (c *conn) writeLoop() {
	defer c.srv.connWG.Done()
	defer c.closeNC()
	w := bufio.NewWriterSize(c.nc, 32<<10)
	discard := false
	for {
		if !discard && c.out.empty() {
			if err := w.Flush(); err != nil {
				discard = true
				c.forceClose()
			}
		}
		m, ok := c.out.pop()
		if !ok {
			if !discard {
				w.Flush()
			}
			return
		}
		if !discard {
			if _, err := w.Write(m.frame); err != nil {
				discard = true
				c.forceClose()
			}
		}
		if m.fb != nil {
			m.fb.b = m.frame[:0]
			framePool.Put(m.fb)
		}
		if m.finals > 0 {
			c.releaseWin(m.finals)
		}
	}
}

// dispatch executes one decoded request. Reads run inline on the reader
// goroutine — the direct path, never queued behind an update sweep.
func (c *conn) dispatch(req request) {
	s := c.srv
	start := time.Now()
	switch req.op {
	case opInsert, opDelete:
		// Coalesced-mode updates never reach dispatch (readLoop routes
		// them into its run); this is the per-op baseline path.
		kind := lockfreetrie.OpInsert
		if req.op == opDelete {
			kind = lockfreetrie.OpDelete
		}
		s.mUpdatesPerOp.Inc(req.key)
		var err error
		if kind == lockfreetrie.OpInsert {
			err = s.trie.Insert(req.key)
		} else {
			err = s.trie.Delete(req.key)
		}
		s.hUpdateNs.Record(int64(time.Since(start)))
		c.reply(req.id, 0, err)
	case opContains:
		s.mReads.Inc(req.key)
		in, err := s.trie.Contains(req.key)
		var v int64
		if in {
			v = 1
		}
		s.hReadNs.Record(int64(time.Since(start)))
		c.reply(req.id, v, err)
	case opPredecessor:
		s.mReads.Inc(req.key)
		p, err := s.trie.Predecessor(req.key)
		s.hReadNs.Record(int64(time.Since(start)))
		c.reply(req.id, p, err)
	case opSuccessor:
		s.mReads.Inc(req.key)
		p, err := s.trie.Successor(req.key)
		s.hReadNs.Record(int64(time.Since(start)))
		c.reply(req.id, p, err)
	case opRange:
		s.mReads.Inc(req.key)
		c.streamRange(req)
		s.hReadNs.Record(int64(time.Since(start)))
	}
}

// reply queues one value-or-error response from the reader goroutine.
func (c *conn) reply(id uint64, v int64, err error) {
	var frame []byte
	if err != nil {
		c.srv.mErrOp.Inc(int64(id))
		frame = encodeErrResponse(nil, id, err)
	} else {
		frame = encodeValueResponse(nil, id, v)
	}
	c.out.push(respMsg{frame: frame, finals: 1}, false)
}

// streamRange walks [key, hi] descending (the trie's native Range
// order), emitting chunk frames of up to rangeChunkKeys keys and a
// terminal count frame. Chunk pushes may block on the queue's capacity —
// range backpressure is conn-local by design.
func (c *conn) streamRange(req request) {
	chunk := make([]int64, 0, rangeChunkKeys)
	var count int64
	flush := func() {
		if len(chunk) > 0 {
			c.out.push(respMsg{frame: encodeRangeChunk(nil, req.id, chunk)}, false)
			chunk = chunk[:0]
		}
	}
	err := c.srv.trie.Range(req.key, req.hi, func(k int64) bool {
		chunk = append(chunk, k)
		count++
		if len(chunk) == rangeChunkKeys {
			flush()
		}
		return true
	})
	if err != nil {
		c.srv.mErrOp.Inc(int64(req.id))
		c.out.push(respMsg{frame: encodeErrResponse(nil, req.id, err), finals: 1}, false)
		return
	}
	flush()
	c.out.push(respMsg{frame: encodeRangeEnd(nil, req.id, count), finals: 1}, false)
}
