// Package server is the trie's network front-end: a length-prefixed TCP
// binary protocol whose update path coalesces concurrently-arriving
// Insert/Delete requests from ALL connections into single Trie.ApplyBatch
// sweeps — the network mirror of the flat-combining layer. A combiner
// thread inside the process batches announcements because contended CAS
// retries are wasted work; a batcher goroutine inside the server batches
// network requests because per-op announcement passes are wasted work at
// exactly the moment — saturation — when requests are naturally queued
// and batchable. Reads (Contains/Predecessor/Successor) take the direct
// path: they never block behind the update sweep, mirroring how trie
// searches never help the combiner.
//
// See DESIGN.md §Server layer for the protocol, the backpressure bound
// and the drain proof-sketch.
package server

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/wire"
)

// Wire opcodes (request) — one byte on the wire. The update opcodes are
// the shared wire.Kind* bytes: the WAL serializes the same op records,
// so an op's kind byte means the same thing on disk and on the wire.
const (
	opInsert           = wire.KindInsert
	opDelete           = wire.KindDelete
	opContains    byte = 3
	opPredecessor byte = 4
	opSuccessor   byte = 5
	opRange       byte = 6
)

// Wire statuses (response) — one byte on the wire.
const (
	// statusOK carries the operation's 8-byte result value.
	statusOK byte = iota
	// statusErr carries a UTF-8 error message.
	statusErr
	// statusRangeChunk carries a descending run of 8-byte keys.
	statusRangeChunk
	// statusRangeEnd carries the total streamed key count; it is the
	// range request's final frame.
	statusRangeEnd
)

// Frame size limits. Requests are tiny and fixed-shape; a huge length
// prefix is a corrupt or hostile stream, not a big request. Range
// responses stream in bounded chunks so one giant scan cannot buffer
// arbitrarily.
const (
	maxRequestFrame = 64
	// rangeChunkKeys is the number of keys per statusRangeChunk frame
	// (8 KiB of payload).
	rangeChunkKeys = 1024
	maxFrame       = 16 + rangeChunkKeys*8
)

// request is one decoded request frame: opcode(1) | id(8) | key(8), with
// a second key operand (hi) for opRange.
type request struct {
	op  byte
	id  uint64
	key int64
	hi  int64
}

// readFrame reads one length-prefixed frame into buf (grown as needed)
// and returns the payload (the shared wire codec).
func readFrame(r io.Reader, buf []byte, limit int) ([]byte, error) {
	return wire.ReadFrame(r, buf, limit)
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	return wire.WriteFrame(w, payload)
}

// decodeRequest parses a request payload.
func decodeRequest(p []byte) (request, error) {
	if len(p) < 17 {
		return request{}, fmt.Errorf("server: request frame %d bytes, want ≥ 17", len(p))
	}
	req := request{
		op:  p[0],
		id:  binary.BigEndian.Uint64(p[1:9]),
		key: int64(binary.BigEndian.Uint64(p[9:17])),
	}
	switch req.op {
	case opInsert, opDelete, opContains, opPredecessor, opSuccessor:
		if len(p) != 17 {
			return request{}, fmt.Errorf("server: op %d frame %d bytes, want 17", req.op, len(p))
		}
	case opRange:
		if len(p) != 25 {
			return request{}, fmt.Errorf("server: range frame %d bytes, want 25", len(p))
		}
		req.hi = int64(binary.BigEndian.Uint64(p[17:25]))
	default:
		return request{}, fmt.Errorf("server: unknown opcode %d", req.op)
	}
	return req, nil
}

// encodeRequest appends a request frame (length prefix included) to dst.
func encodeRequest(dst []byte, req request) []byte {
	n := 17
	if req.op == opRange {
		n = 25
	}
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], uint32(n))
	dst = append(dst, lb[:]...)
	dst = append(dst, req.op)
	dst = binary.BigEndian.AppendUint64(dst, req.id)
	dst = binary.BigEndian.AppendUint64(dst, uint64(req.key))
	if req.op == opRange {
		dst = binary.BigEndian.AppendUint64(dst, uint64(req.hi))
	}
	return dst
}

// encodeValueResponse appends a statusOK response frame to dst.
func encodeValueResponse(dst []byte, id uint64, value int64) []byte {
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], 17)
	dst = append(dst, lb[:]...)
	dst = append(dst, statusOK)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint64(dst, uint64(value))
	return dst
}

// encodeErrResponse appends a statusErr response frame to dst.
func encodeErrResponse(dst []byte, id uint64, err error) []byte {
	msg := err.Error()
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], uint32(9+len(msg)))
	dst = append(dst, lb[:]...)
	dst = append(dst, statusErr)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = append(dst, msg...)
	return dst
}

// encodeRangeChunk appends a statusRangeChunk frame carrying keys.
func encodeRangeChunk(dst []byte, id uint64, keys []int64) []byte {
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], uint32(9+8*len(keys)))
	dst = append(dst, lb[:]...)
	dst = append(dst, statusRangeChunk)
	dst = binary.BigEndian.AppendUint64(dst, id)
	for _, k := range keys {
		dst = binary.BigEndian.AppendUint64(dst, uint64(k))
	}
	return dst
}

// encodeRangeEnd appends the terminal statusRangeEnd frame.
func encodeRangeEnd(dst []byte, id uint64, count int64) []byte {
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], 17)
	dst = append(dst, lb[:]...)
	dst = append(dst, statusRangeEnd)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint64(dst, uint64(count))
	return dst
}

// response is one decoded response payload (client side).
type response struct {
	status byte
	id     uint64
	value  int64   // statusOK / statusRangeEnd
	msg    string  // statusErr
	keys   []int64 // statusRangeChunk (aliases the read buffer's decode)
}

// decodeResponse parses a response payload.
func decodeResponse(p []byte) (response, error) {
	if len(p) < 9 {
		return response{}, fmt.Errorf("server: response frame %d bytes, want ≥ 9", len(p))
	}
	resp := response{status: p[0], id: binary.BigEndian.Uint64(p[1:9])}
	body := p[9:]
	switch resp.status {
	case statusOK, statusRangeEnd:
		if len(body) != 8 {
			return response{}, fmt.Errorf("server: value response body %d bytes, want 8", len(body))
		}
		resp.value = int64(binary.BigEndian.Uint64(body))
	case statusErr:
		resp.msg = string(body)
	case statusRangeChunk:
		if len(body)%8 != 0 {
			return response{}, fmt.Errorf("server: range chunk body %d bytes, not key-aligned", len(body))
		}
		resp.keys = make([]int64, len(body)/8)
		for i := range resp.keys {
			resp.keys[i] = int64(binary.BigEndian.Uint64(body[8*i:]))
		}
	default:
		return response{}, fmt.Errorf("server: unknown status %d", resp.status)
	}
	return resp, nil
}
