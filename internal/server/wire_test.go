package server

import (
	"bytes"
	"strings"
	"testing"
)

// TestWireRequestRoundTrip: every opcode survives encode→decode.
func TestWireRequestRoundTrip(t *testing.T) {
	reqs := []request{
		{op: opInsert, id: 1, key: 42},
		{op: opDelete, id: 2, key: 0},
		{op: opContains, id: 1 << 60, key: 7},
		{op: opPredecessor, id: 3, key: 1<<31 - 1},
		{op: opSuccessor, id: 4, key: 9},
		{op: opRange, id: 5, key: 10, hi: 20},
	}
	var wire []byte
	for _, r := range reqs {
		wire = encodeRequest(wire, r)
	}
	rd := bytes.NewReader(wire)
	for i, want := range reqs {
		p, err := readFrame(rd, nil, maxRequestFrame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := decodeRequest(p)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d: %+v != %+v", i, got, want)
		}
	}
}

// TestWireResponseRoundTrip: each response shape survives encode→decode,
// including negative values (Predecessor's −1) and multi-key chunks.
func TestWireResponseRoundTrip(t *testing.T) {
	var wire []byte
	wire = encodeValueResponse(wire, 7, -1)
	wire = encodeErrResponse(wire, 8, &RemoteError{Msg: "key 99 outside universe"})
	wire = encodeRangeChunk(wire, 9, []int64{30, 20, 10})
	wire = encodeRangeEnd(wire, 9, 3)
	rd := bytes.NewReader(wire)

	next := func() response {
		t.Helper()
		p, err := readFrame(rd, nil, maxFrame)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := decodeResponse(p)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if r := next(); r.status != statusOK || r.id != 7 || r.value != -1 {
		t.Fatalf("value response %+v", r)
	}
	if r := next(); r.status != statusErr || r.id != 8 || !strings.Contains(r.msg, "universe") {
		t.Fatalf("err response %+v", r)
	}
	if r := next(); r.status != statusRangeChunk || len(r.keys) != 3 || r.keys[0] != 30 {
		t.Fatalf("chunk response %+v", r)
	}
	if r := next(); r.status != statusRangeEnd || r.value != 3 {
		t.Fatalf("end response %+v", r)
	}
}

// TestWireRejectsGarbage: oversized lengths, zero lengths, short frames
// and unknown opcodes are errors, not panics or silent misreads.
func TestWireRejectsGarbage(t *testing.T) {
	if _, err := readFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1}), nil, maxRequestFrame); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 0}), nil, maxRequestFrame); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	if _, err := decodeRequest([]byte{opInsert, 1, 2}); err == nil {
		t.Fatal("short request accepted")
	}
	if _, err := decodeRequest(make([]byte, 17)); err == nil {
		t.Fatal("opcode 0 accepted")
	}
	if _, err := decodeRequest(append([]byte{opRange}, make([]byte, 16)...)); err == nil {
		t.Fatal("short range request accepted")
	}
	long := append([]byte{opInsert}, make([]byte, 24)...)
	if _, err := decodeRequest(long); err == nil {
		t.Fatal("overlong point request accepted")
	}
	if _, err := decodeResponse([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown status accepted")
	}
}
