package server

import (
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startSilentServer returns the address of a TCP listener that accepts
// connections and reads (and discards) everything, but never responds —
// the wedged-server shape that used to hang clients forever.
func startSilentServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := nc.Read(buf); err != nil {
						nc.Close()
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestClientServerDies: N outstanding UpdateAsync calls against a server
// that accepts, then drops the connection. Every callback must fire with
// an error, exactly once, and the error must carry the close reason —
// not hang (the bug) and not a bare EOF.
func TestClientServerDies(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		// Drain the request frames so the client's writes succeed; the
		// failure the client sees must come from the read side.
		go func() {
			buf := make([]byte, 4096)
			for {
				if _, err := nc.Read(buf); err != nil {
					return
				}
			}
		}()
		accepted <- nc
	}()
	c, err := Dial(ln.Addr().String(), WithCallTimeout(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	var fired, failed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		c.UpdateAsync(true, int64(i), func(err error) {
			fired.Add(1)
			if err != nil {
				failed.Add(1)
			}
			wg.Done()
		})
	}
	nc := <-accepted
	nc.Close() // the server "dies"
	wg.Wait()
	if got := fired.Load(); got != n {
		t.Fatalf("callbacks fired %d times, want exactly %d", got, n)
	}
	if got := failed.Load(); got != n {
		t.Fatalf("%d callbacks errored, want all %d", got, n)
	}
	// Subsequent calls fail fast with the sticky close reason. The read
	// loop and the flush loop race to notice the dead socket; whichever
	// wins, the reason must carry the client's context, not a bare EOF.
	err = c.Insert(1)
	if err == nil {
		t.Fatal("Insert after connection death succeeded")
	}
	if !strings.Contains(err.Error(), "connection closed by peer") &&
		!strings.Contains(err.Error(), "read loop") &&
		!strings.Contains(err.Error(), "calls outstanding") {
		t.Fatalf("close reason not propagated: %v", err)
	}
}

// TestClientCallTimeout: a server that never responds must not hang the
// caller — WithCallTimeout fails the call with ErrCallTimeout while the
// client (and the transport) stays alive for further calls.
func TestClientCallTimeout(t *testing.T) {
	addr := startSilentServer(t)
	c, err := Dial(addr, WithCallTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Insert(42); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("Insert against silent server: %v, want ErrCallTimeout", err)
	}
	if wait := time.Since(start); wait > 5*time.Second {
		t.Fatalf("timeout took %v", wait)
	}
	// The timeout failed the CALL, not the client: a new call goes out
	// and times out the same way instead of failing fast on a sticky
	// error.
	if err := c.Delete(7); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("second call after timeout: %v, want ErrCallTimeout", err)
	}
}

// TestClientCloseFailsOutstanding: Close must error outstanding calls
// with ErrClientClosed rather than stranding them.
func TestClientCloseFailsOutstanding(t *testing.T) {
	addr := startSilentServer(t)
	c, err := Dial(addr, WithCallTimeout(0))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	c.UpdateAsync(true, 9, func(err error) { errCh <- err })
	time.Sleep(20 * time.Millisecond) // let the frame reach the wire
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-errCh:
		// Close and the read loop race to fail the client; either close
		// reason is correct, hanging or nil is not.
		if err == nil {
			t.Fatal("outstanding call completed without error after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("outstanding call still hung 5s after Close")
	}
}

// TestClientNoGoroutineLeak: dial/timeout/close cycles leave no client
// goroutines (read loop, flush loop, reaper) behind.
func TestClientNoGoroutineLeak(t *testing.T) {
	addr := startSilentServer(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		c, err := Dial(addr, WithCallTimeout(30*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(3)
		for k := int64(0); k < 3; k++ {
			c.UpdateAsync(true, k, func(error) { wg.Done() })
		}
		wg.Wait() // all three time out
		c.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after close cycles", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClientTimeoutOptionValidation: negative timeouts are rejected at
// Dial time.
func TestClientTimeoutOptionValidation(t *testing.T) {
	if _, err := Dial("127.0.0.1:0", WithCallTimeout(-time.Second)); err == nil {
		t.Fatal("Dial accepted a negative call timeout")
	}
}
