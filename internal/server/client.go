package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// RemoteError is an operation error reported by the server (e.g. a key
// outside the served universe), as opposed to a transport failure.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return e.Msg }

// ErrCallTimeout is wrapped into the error a call receives when the
// server has not responded within the client's call timeout
// (WithCallTimeout). The call fails; the client and its other
// outstanding calls stay usable — a timeout says the SERVER is slow or
// wedged, not that the transport died.
var ErrCallTimeout = errors.New("server: call timed out")

// ErrClientClosed is wrapped into the error outstanding calls receive
// when Close tears the client down.
var ErrClientClosed = errors.New("server: client closed")

// DefaultCallTimeout bounds a call's wait for its response when Dial is
// given no WithCallTimeout. Generous — it is a liveness backstop for a
// dead-but-connected server, not a latency SLO.
const DefaultCallTimeout = 30 * time.Second

// ClientOption configures Dial.
type ClientOption func(*Client) error

// WithCallTimeout bounds how long any single call waits for its
// response before failing with ErrCallTimeout (default
// DefaultCallTimeout; 0 disables the timeout entirely). Without a
// bound, a server that dies BETWEEN accepting a request and responding
// — process wedged, VM paused, network silently dropping — leaves the
// call hung forever: no response frame arrives and no socket error
// fires. A Range call's deadline is refreshed by every streamed chunk,
// so the timeout bounds server silence, not total stream length.
func WithCallTimeout(d time.Duration) ClientOption {
	return func(c *Client) error {
		if d < 0 {
			return fmt.Errorf("server: WithCallTimeout(%v): negative timeout", d)
		}
		c.callTimeout = d
		return nil
	}
}

// pendingCall is one outstanding request: its callback and the reaper's
// deadline (zero when timeouts are disabled).
type pendingCall struct {
	cb       func(response, error)
	deadline time.Time
}

// Client speaks the wire protocol over one connection. All methods are
// safe for concurrent use; requests pipeline over the single connection
// and responses are matched by id, so N outstanding calls share one
// socket — the client-side shape that gives the server's batcher
// something to coalesce. The async variants are the building block for
// open-loop drivers that need more in-flight requests than goroutines.
type Client struct {
	nc net.Conn

	// Write coalescing: requests append their encoded frame to wpend and
	// a flusher drains every frame that accumulates while its Write
	// syscall is in flight (wspare is the detached buffer being written,
	// recycled after). WHO flushes depends on pipelining depth, read off
	// outst (the outstanding-call count): at depth ≤ 1 — synchronous
	// callers — the sender flushes inline, adding no latency; at depth
	// ≥ 2 the sender just parks the frame and signals the flush
	// goroutine. A pipelined caller by definition is not waiting on this
	// frame alone, and the handoff is what collapses writes: while the
	// flush goroutine waits for the processor (or has a Write in
	// flight), every other send of the burst appends behind it, so an
	// N-deep burst drains in ~1 syscall instead of N. wclosed tells the
	// flush goroutine to exit.
	wmu     sync.Mutex
	wcond   sync.Cond
	wpend   []byte
	wspare  []byte
	wbusy   bool
	wwant   bool
	wclosed bool
	outst   atomic.Int64

	nextID atomic.Uint64

	callTimeout time.Duration

	pmu     sync.Mutex
	pending map[uint64]*pendingCall
	err     error
	done    chan struct{} // closed by the first fail; stops the reaper
}

// Dial connects to a trieserve address. With no options, calls carry
// the DefaultCallTimeout liveness backstop (see WithCallTimeout).
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	c := &Client{
		callTimeout: DefaultCallTimeout,
		pending:     map[uint64]*pendingCall{},
		done:        make(chan struct{}),
	}
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.nc = nc
	c.wcond.L = &c.wmu
	go c.readLoop()
	go c.flushLoop()
	if c.callTimeout > 0 {
		go c.reapLoop()
	}
	return c, nil
}

// Close tears down the connection; outstanding calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	err := c.nc.Close()
	c.fail(fmt.Errorf("client torn down with call outstanding: %w", ErrClientClosed))
	return err
}

// fail marks the client broken, stops the flush and reaper goroutines,
// and errors out every pending call. Exactly-once per call: the map
// swap under pmu hands each callback to precisely one failer, however
// many paths (read loop, write path, Close) race here, and the first
// caller's error wins as the client's sticky close reason.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	first := c.err == nil
	if first {
		c.err = err
	}
	cbs := c.pending
	c.pending = map[uint64]*pendingCall{}
	c.pmu.Unlock()
	if first {
		close(c.done)
	}
	c.wmu.Lock()
	c.wclosed = true
	c.wcond.Signal()
	c.wmu.Unlock()
	for _, p := range cbs {
		p.cb(response{}, err)
	}
	c.outst.Store(0)
}

// reapLoop fails calls individually once their deadline passes. The
// tick is a fraction of the timeout, so a timeout fires at most ~25%
// late; the client itself stays healthy — only the expired calls error.
func (c *Client) reapLoop() {
	tick := c.callTimeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		now := time.Now()
		var expired []*pendingCall
		c.pmu.Lock()
		if c.err != nil {
			c.pmu.Unlock()
			return
		}
		for id, p := range c.pending {
			if now.After(p.deadline) {
				delete(c.pending, id)
				expired = append(expired, p)
			}
		}
		c.pmu.Unlock()
		for _, p := range expired {
			c.outst.Add(-1)
			p.cb(response{}, fmt.Errorf("no response within %v: %w", c.callTimeout, ErrCallTimeout))
		}
	}
}

// readLoop dispatches response frames to their pending callbacks. A
// range request's callback fires once per chunk and once for the
// terminal frame; everything else completes in one callback.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	buf := make([]byte, 0, 4096)
	for {
		p, err := readFrame(br, buf, maxFrame)
		if err != nil {
			// Propagate a close REASON, not a bare EOF: the caller whose
			// Insert fails wants to know the peer hung up mid-call.
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				err = fmt.Errorf("server: connection closed by peer (%d calls outstanding): %w",
					c.outst.Load(), err)
			} else {
				err = fmt.Errorf("server: read loop: %w", err)
			}
			c.fail(err)
			return
		}
		buf = p[:0]
		resp, err := decodeResponse(p)
		if err != nil {
			c.fail(err)
			return
		}
		c.pmu.Lock()
		pc := c.pending[resp.id]
		if resp.status != statusRangeChunk {
			delete(c.pending, resp.id)
		} else if pc != nil && c.callTimeout > 0 {
			// A streaming response proves the server alive: push the
			// range call's deadline out per chunk.
			pc.deadline = time.Now().Add(c.callTimeout)
		}
		c.pmu.Unlock()
		if resp.status != statusRangeChunk && pc != nil {
			c.outst.Add(-1)
		}
		if pc != nil {
			pc.cb(resp, nil)
		}
	}
}

// do registers cb and writes one request frame. cb runs on the client's
// read loop (or inline on a write failure) — keep it short.
func (c *Client) do(req request, cb func(response, error)) {
	req.id = c.nextID.Add(1)
	pc := &pendingCall{cb: cb}
	if c.callTimeout > 0 {
		pc.deadline = time.Now().Add(c.callTimeout)
	}
	c.pmu.Lock()
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		cb(response{}, err)
		return
	}
	c.pending[req.id] = pc
	c.pmu.Unlock()
	c.outst.Add(1)
	c.send(req)
}

// send enqueues req's frame. A synchronous caller (pipelining depth ≤ 1)
// flushes inline; a pipelined one parks the frame for the flush
// goroutine, whose wake-up is what collapses a burst into one syscall.
// If a flush is already in flight the frame is picked up by its next
// drain pass either way.
func (c *Client) send(req request) {
	c.wmu.Lock()
	c.wpend = encodeRequest(c.wpend, req)
	if c.wbusy || c.outst.Load() >= 2 {
		if !c.wbusy && !c.wwant {
			c.wwant = true
			c.wcond.Signal()
		}
		c.wmu.Unlock()
		return
	}
	c.flushLocked()
}

// flushLoop drains parked frames on demand; see the Client comment.
func (c *Client) flushLoop() {
	for {
		c.wmu.Lock()
		for !c.wwant && !c.wclosed {
			c.wcond.Wait()
		}
		if c.wclosed {
			c.wmu.Unlock()
			return
		}
		c.wwant = false
		if c.wbusy || len(c.wpend) == 0 {
			c.wmu.Unlock()
			continue
		}
		c.flushLocked()
	}
}

// flushLocked becomes the flusher and drains wpend. Entered with wmu
// held; returns with it released.
func (c *Client) flushLocked() {
	c.wbusy = true
	var werr error
	for werr == nil && len(c.wpend) > 0 {
		buf := c.wpend
		c.wpend = c.wspare[:0]
		c.wmu.Unlock()
		_, werr = c.nc.Write(buf)
		c.wmu.Lock()
		c.wspare = buf
	}
	c.wbusy = false
	c.wmu.Unlock()
	if werr != nil {
		// Frames left enqueued by concurrent senders are moot: fail
		// errors every pending callback, and later sends bail on c.err.
		c.fail(fmt.Errorf("server: write (%d calls outstanding): %w",
			c.outst.Load(), werr))
	}
}

// finish converts a terminal response into (value, error).
func finish(r response, err error) (int64, error) {
	if err != nil {
		return 0, err
	}
	if r.status == statusErr {
		return 0, &RemoteError{Msg: r.msg}
	}
	return r.value, nil
}

// UpdateAsync issues an Insert or Delete without waiting; done runs when
// the server's response arrives (after its ApplyBatch sweep on the
// coalescing path).
func (c *Client) UpdateAsync(insert bool, key int64, done func(error)) {
	op := opInsert
	if !insert {
		op = opDelete
	}
	c.do(request{op: op, key: key}, func(r response, err error) {
		_, err = finish(r, err)
		done(err)
	})
}

type callRes struct {
	r   response
	err error
}

// call is the synchronous wrapper over do.
func (c *Client) call(req request) (int64, error) {
	ch := make(chan callRes, 1)
	c.do(req, func(r response, err error) { ch <- callRes{r, err} })
	cr := <-ch
	return finish(cr.r, cr.err)
}

// Insert adds key to the served set.
func (c *Client) Insert(key int64) error {
	_, err := c.call(request{op: opInsert, key: key})
	return err
}

// Delete removes key from the served set.
func (c *Client) Delete(key int64) error {
	_, err := c.call(request{op: opDelete, key: key})
	return err
}

// Contains reports membership of key.
func (c *Client) Contains(key int64) (bool, error) {
	v, err := c.call(request{op: opContains, key: key})
	return v == 1, err
}

// Predecessor returns the largest served key strictly below y, −1 if
// none.
func (c *Client) Predecessor(y int64) (int64, error) {
	return c.call(request{op: opPredecessor, key: y})
}

// Successor returns the smallest served key strictly above y, −1 if
// none.
func (c *Client) Successor(y int64) (int64, error) {
	return c.call(request{op: opSuccessor, key: y})
}

// Range streams the keys in [lo, hi] descending (the server's native
// order) through fn, stopping delivery — though not the server-side
// stream, which is drained silently — when fn returns false. fn runs on
// the caller's goroutine; a slow fn backpressures this client's read
// loop and therefore its other outstanding calls.
func (c *Client) Range(lo, hi int64, fn func(key int64) bool) error {
	ch := make(chan callRes, 4)
	c.do(request{op: opRange, key: lo, hi: hi}, func(r response, err error) {
		ch <- callRes{r, err}
	})
	deliver := true
	for {
		cr := <-ch
		if cr.err != nil {
			return cr.err
		}
		switch cr.r.status {
		case statusRangeChunk:
			for _, k := range cr.r.keys {
				if deliver && !fn(k) {
					deliver = false
				}
			}
		case statusRangeEnd:
			return nil
		case statusErr:
			return &RemoteError{Msg: cr.r.msg}
		default:
			return fmt.Errorf("server: unexpected range status %d", cr.r.status)
		}
	}
}
