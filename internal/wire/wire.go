// Package wire is the shared length-prefixed framing and update-op codec
// used by both durable storage (internal/wal) and the network protocol
// (internal/server). The two consumers deliberately share one encoding:
// the WAL's serialization unit IS the op the server already ships, so a
// replication stream can later forward log frames onto the wire without
// re-encoding (ROADMAP: primary→replica catch-up).
//
// A frame is a 4-byte big-endian payload length followed by the payload.
// An update op record inside a payload is kind(1) | key(8), with the
// kind bytes chosen to match the server's opInsert/opDelete opcodes.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Update-op kind bytes. They coincide with the server protocol's
// opInsert/opDelete request opcodes — the first two values of that
// opcode space — so an op record's kind byte means the same thing on
// disk and on the wire.
const (
	KindInsert byte = iota + 1
	KindDelete
)

// OpBytes is the encoded size of one update op: kind(1) + key(8).
const OpBytes = 1 + 8

// FrameHeaderBytes is the length prefix preceding every frame payload.
const FrameHeaderBytes = 4

// ReadFrame reads one length-prefixed frame into buf (grown as needed)
// and returns the payload. A zero or over-limit length is a corrupt or
// hostile stream, reported as an error rather than read.
func ReadFrame(r io.Reader, buf []byte, limit int) ([]byte, error) {
	var lb [FrameHeaderBytes]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(lb[:]))
	if n == 0 || n > limit {
		return nil, fmt.Errorf("wire: frame length %d outside (0, %d]", n, limit)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		// A header with no payload behind it is a torn frame, not a
		// clean stream end: never let it read as io.EOF.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var lb [FrameHeaderBytes]byte
	binary.BigEndian.PutUint32(lb[:], uint32(len(payload)))
	if _, err := w.Write(lb[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrameHeader appends the length prefix for a payload of n bytes.
func AppendFrameHeader(dst []byte, n int) []byte {
	var lb [FrameHeaderBytes]byte
	binary.BigEndian.PutUint32(lb[:], uint32(n))
	return append(dst, lb[:]...)
}

// AppendOp appends one update-op record.
func AppendOp(dst []byte, del bool, key int64) []byte {
	kind := KindInsert
	if del {
		kind = KindDelete
	}
	dst = append(dst, kind)
	return binary.BigEndian.AppendUint64(dst, uint64(key))
}

// DecodeOp decodes one update-op record from the front of p.
func DecodeOp(p []byte) (key int64, del bool, err error) {
	if len(p) < OpBytes {
		return 0, false, fmt.Errorf("wire: op record %d bytes, want %d", len(p), OpBytes)
	}
	switch p[0] {
	case KindInsert:
	case KindDelete:
		del = true
	default:
		return 0, false, fmt.Errorf("wire: unknown op kind %d", p[0])
	}
	return int64(binary.BigEndian.Uint64(p[1:9])), del, nil
}
