package wire

import (
	"bytes"
	"io"
	"testing"
)

// TestFrameRoundTrip: WriteFrame then ReadFrame returns the payload,
// reusing the caller's buffer when it is big enough.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{1}, []byte("hello"), bytes.Repeat([]byte{0xab}, 300)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	scratch := make([]byte, 0, 8)
	for _, want := range payloads {
		got, err := ReadFrame(&buf, scratch, 4096)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("payload = %q, want %q", got, want)
		}
		scratch = got[:0]
	}
	if _, err := ReadFrame(&buf, scratch, 4096); err != io.EOF {
		t.Fatalf("read past end: %v, want io.EOF", err)
	}
}

// TestFrameLimits: zero-length and over-limit frames are rejected.
func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // zero length
	if _, err := ReadFrame(&buf, nil, 16); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	buf.Reset()
	if err := WriteFrame(&buf, make([]byte, 17)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, nil, 16); err == nil {
		t.Fatal("over-limit frame accepted")
	}
}

// TestAppendFrameHeader matches WriteFrame's prefix.
func TestAppendFrameHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	hdr := AppendFrameHeader(nil, 3)
	if !bytes.Equal(hdr, buf.Bytes()[:4]) {
		t.Fatalf("header %v, want %v", hdr, buf.Bytes()[:4])
	}
}

// TestOpRoundTrip: AppendOp/DecodeOp over both kinds and edge keys.
func TestOpRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		key int64
		del bool
	}{{0, false}, {1, true}, {1<<32 - 1, false}, {42, true}} {
		rec := AppendOp(nil, tc.del, tc.key)
		if len(rec) != OpBytes {
			t.Fatalf("record %d bytes, want %d", len(rec), OpBytes)
		}
		key, del, err := DecodeOp(rec)
		if err != nil {
			t.Fatal(err)
		}
		if key != tc.key || del != tc.del {
			t.Fatalf("decoded (%d, %v), want (%d, %v)", key, del, tc.key, tc.del)
		}
	}
}

// TestOpDecodeErrors: short and unknown-kind records are rejected.
func TestOpDecodeErrors(t *testing.T) {
	if _, _, err := DecodeOp([]byte{KindInsert, 0}); err == nil {
		t.Fatal("short record accepted")
	}
	bad := AppendOp(nil, false, 7)
	bad[0] = 99
	if _, _, err := DecodeOp(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
