package workload

import (
	"math/rand"
	"testing"
	"time"
)

func TestMixValidate(t *testing.T) {
	if err := (Mix{InsertPct: 50, DeletePct: 50}).Validate(); err != nil {
		t.Errorf("valid mix rejected: %v", err)
	}
	if err := (Mix{InsertPct: 50, DeletePct: 40}).Validate(); err == nil {
		t.Error("invalid mix accepted")
	}
	for _, m := range []Mix{MixUpdateHeavy, MixReadHeavy, MixPredHeavy, MixUpdateOnly} {
		if err := m.Validate(); err != nil {
			t.Errorf("standard mix %+v invalid: %v", m, err)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, err := NewGenerator(MixUpdateHeavy, Uniform{U: 64}, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(MixUpdateHeavy, Uniform{U: 64}, 7)
	a := g1.Fill(500)
	b := g2.Fill(500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	g, err := NewGenerator(Mix{InsertPct: 70, DeletePct: 10, SearchPct: 10, PredecessorPct: 10},
		Uniform{U: 64}, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OpKind]int{}
	const n = 10000
	for _, op := range g.Fill(n) {
		counts[op.Kind]++
	}
	if got := counts[OpInsert]; got < n*60/100 || got > n*80/100 {
		t.Errorf("insert fraction = %d/%d, want ≈70%%", got, n)
	}
}

func TestGeneratorRejectsBadMix(t *testing.T) {
	if _, err := NewGenerator(Mix{InsertPct: 5}, Uniform{U: 8}, 1); err == nil {
		t.Error("bad mix accepted")
	}
}

func TestUniformRange(t *testing.T) {
	d := Uniform{U: 16}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		k := d.Next(rng)
		if k < 0 || k >= 16 {
			t.Fatalf("key %d out of range", k)
		}
	}
	if d.Name() != "uniform" {
		t.Error("name mismatch")
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	d := NewZipf(1024, 5)
	rng := rand.New(rand.NewSource(2))
	counts := map[int64]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		k := d.Next(rng)
		if k < 0 || k >= 1024 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// The hottest key must dominate: zipf s=1.2 puts a large constant
	// fraction on rank 0 (mapped to u/2).
	if counts[512] < n/10 {
		t.Errorf("hottest key frequency = %d/%d, want ≥ 10%%", counts[512], n)
	}
	if d.Name() != "zipf" {
		t.Error("name mismatch")
	}
}

func TestHotRange(t *testing.T) {
	d := HotRange{U: 1024, HotLo: 100, HotWidth: 8, HotPct: 90}
	rng := rand.New(rand.NewSource(3))
	hot := 0
	const n = 10000
	for i := 0; i < n; i++ {
		k := d.Next(rng)
		if k < 0 || k >= 1024 {
			t.Fatalf("key %d out of range", k)
		}
		if k >= 100 && k < 108 {
			hot++
		}
	}
	if hot < n*85/100 {
		t.Errorf("hot fraction = %d/%d, want ≥ 85%%", hot, n)
	}
	if d.Name() != "hotrange" {
		t.Error("name mismatch")
	}
}

func TestBandsPartition(t *testing.T) {
	// Even split: n divides u, bands tile [0, u) exactly.
	bands := Bands(1024, 4)
	if len(bands) != 4 {
		t.Fatalf("len(Bands(1024, 4)) = %d, want 4", len(bands))
	}
	var next int64
	for i, b := range bands {
		if b.Lo != next {
			t.Fatalf("band %d starts at %d, want %d (gap or overlap)", i, b.Lo, next)
		}
		if b.Width <= 0 {
			t.Fatalf("band %d has non-positive width %d", i, b.Width)
		}
		next = b.Lo + b.Width
	}
	if next != 1024 {
		t.Fatalf("bands cover [0, %d), want [0, 1024)", next)
	}

	// Ragged split: the last band absorbs the remainder.
	bands = Bands(1000, 3)
	if got := bands[2].Lo + bands[2].Width; got != 1000 {
		t.Fatalf("ragged bands end at %d, want 1000", got)
	}

	// Degenerate inputs.
	if Bands(1024, 0) != nil {
		t.Error("Bands(u, 0) should be nil")
	}
	if bands := Bands(2, 8); len(bands) != 8 {
		t.Errorf("more workers than keys: len = %d, want 8", len(bands))
	}

	// Keys drawn from a band stay inside it.
	rng := rand.New(rand.NewSource(7))
	for i, b := range Bands(1<<16, 16) {
		for j := 0; j < 100; j++ {
			k := b.Next(rng)
			if k < b.Lo || k >= b.Lo+b.Width {
				t.Fatalf("band %d drew key %d outside [%d, %d)", i, k, b.Lo, b.Lo+b.Width)
			}
		}
	}
}

// TestPoissonScheduleDeterministic: same seed, same schedule — the
// reproducibility contract every other generator here honors.
func TestPoissonScheduleDeterministic(t *testing.T) {
	a := NewPoissonSchedule(10000, 42)
	b := NewPoissonSchedule(10000, 42)
	for i := 0; i < 1000; i++ {
		if ga, gb := a.Next(), b.Next(); ga != gb {
			t.Fatalf("gap %d: %v != %v", i, ga, gb)
		}
	}
}

// TestPoissonScheduleMean: the empirical mean gap converges on 1/rate
// (within 5% over 100k draws), and gaps are never negative.
func TestPoissonScheduleMean(t *testing.T) {
	const rate = 50000.0
	p := NewPoissonSchedule(rate, 7)
	var sum time.Duration
	const n = 100000
	for i := 0; i < n; i++ {
		g := p.Next()
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		sum += g
	}
	mean := float64(sum) / n
	want := 1e9 / rate
	if mean < want*0.95 || mean > want*1.05 {
		t.Fatalf("mean gap %.0fns, want %.0fns ±5%%", mean, want)
	}
}

// TestPoissonScheduleZeroRate: a non-positive rate degenerates to
// zero gaps rather than dividing by zero.
func TestPoissonScheduleZeroRate(t *testing.T) {
	p := NewPoissonSchedule(0, 1)
	if g := p.Next(); g != 0 {
		t.Fatalf("zero-rate gap = %v, want 0", g)
	}
}
