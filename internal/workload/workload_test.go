package workload

import (
	"math/rand"
	"testing"
)

func TestMixValidate(t *testing.T) {
	if err := (Mix{InsertPct: 50, DeletePct: 50}).Validate(); err != nil {
		t.Errorf("valid mix rejected: %v", err)
	}
	if err := (Mix{InsertPct: 50, DeletePct: 40}).Validate(); err == nil {
		t.Error("invalid mix accepted")
	}
	for _, m := range []Mix{MixUpdateHeavy, MixReadHeavy, MixPredHeavy, MixUpdateOnly} {
		if err := m.Validate(); err != nil {
			t.Errorf("standard mix %+v invalid: %v", m, err)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, err := NewGenerator(MixUpdateHeavy, Uniform{U: 64}, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(MixUpdateHeavy, Uniform{U: 64}, 7)
	a := g1.Fill(500)
	b := g2.Fill(500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	g, err := NewGenerator(Mix{InsertPct: 70, DeletePct: 10, SearchPct: 10, PredecessorPct: 10},
		Uniform{U: 64}, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OpKind]int{}
	const n = 10000
	for _, op := range g.Fill(n) {
		counts[op.Kind]++
	}
	if got := counts[OpInsert]; got < n*60/100 || got > n*80/100 {
		t.Errorf("insert fraction = %d/%d, want ≈70%%", got, n)
	}
}

func TestGeneratorRejectsBadMix(t *testing.T) {
	if _, err := NewGenerator(Mix{InsertPct: 5}, Uniform{U: 8}, 1); err == nil {
		t.Error("bad mix accepted")
	}
}

func TestUniformRange(t *testing.T) {
	d := Uniform{U: 16}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		k := d.Next(rng)
		if k < 0 || k >= 16 {
			t.Fatalf("key %d out of range", k)
		}
	}
	if d.Name() != "uniform" {
		t.Error("name mismatch")
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	d := NewZipf(1024, 5)
	rng := rand.New(rand.NewSource(2))
	counts := map[int64]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		k := d.Next(rng)
		if k < 0 || k >= 1024 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// The hottest key must dominate: zipf s=1.2 puts a large constant
	// fraction on rank 0 (mapped to u/2).
	if counts[512] < n/10 {
		t.Errorf("hottest key frequency = %d/%d, want ≥ 10%%", counts[512], n)
	}
	if d.Name() != "zipf" {
		t.Error("name mismatch")
	}
}

func TestHotRange(t *testing.T) {
	d := HotRange{U: 1024, HotLo: 100, HotWidth: 8, HotPct: 90}
	rng := rand.New(rand.NewSource(3))
	hot := 0
	const n = 10000
	for i := 0; i < n; i++ {
		k := d.Next(rng)
		if k < 0 || k >= 1024 {
			t.Fatalf("key %d out of range", k)
		}
		if k >= 100 && k < 108 {
			hot++
		}
	}
	if hot < n*85/100 {
		t.Errorf("hot fraction = %d/%d, want ≥ 85%%", hot, n)
	}
	if d.Name() != "hotrange" {
		t.Error("name mismatch")
	}
}
