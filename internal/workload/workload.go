// Package workload generates deterministic operation streams for the
// benchmark harness: operation mixes (insert/delete/search/predecessor
// ratios) and key distributions (uniform, zipf-skewed, clustered hot
// range). Determinism — same seed, same stream — makes the EXPERIMENTS.md
// numbers reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// OpKind enumerates generated operation types.
type OpKind uint8

const (
	// OpInsert adds the key.
	OpInsert OpKind = iota + 1
	// OpDelete removes the key.
	OpDelete
	// OpSearch queries membership.
	OpSearch
	// OpPredecessor queries the predecessor.
	OpPredecessor
)

// Mix is an operation mix in percent; fields must sum to 100.
type Mix struct {
	InsertPct, DeletePct, SearchPct, PredecessorPct int
}

// Validate checks the percentages.
func (m Mix) Validate() error {
	sum := m.InsertPct + m.DeletePct + m.SearchPct + m.PredecessorPct
	if sum != 100 {
		return fmt.Errorf("workload: mix sums to %d, want 100", sum)
	}
	return nil
}

// Standard mixes used across the experiment suite (C3, C5).
var (
	// MixUpdateHeavy is 50% updates, 25% searches, 25% predecessors.
	MixUpdateHeavy = Mix{InsertPct: 25, DeletePct: 25, SearchPct: 25, PredecessorPct: 25}
	// MixReadHeavy is 90% searches.
	MixReadHeavy = Mix{InsertPct: 5, DeletePct: 5, SearchPct: 90}
	// MixPredHeavy is predecessor-dominated.
	MixPredHeavy = Mix{InsertPct: 10, DeletePct: 10, SearchPct: 10, PredecessorPct: 70}
	// MixUpdateOnly alternates inserts and deletes.
	MixUpdateOnly = Mix{InsertPct: 50, DeletePct: 50}
)

// NamedMix is one entry of BenchMixes.
type NamedMix struct {
	Name string
	Mix  Mix
}

// BenchMixes is the (label, mix) table the allocation-trajectory
// measurements key their recorded baselines by (BenchmarkPredMixes and
// triebench's a3 experiment / BENCH_allocs.json). The mapping is deliberate
// and LOAD-BEARING: "update-heavy" is the pure insert/delete stream
// (MixUpdateOnly); "uniform" spreads ops evenly across all four kinds,
// which is what the Mix constants call MixUpdateHeavy (25/25/25/25).
// Rebinding a label would silently invalidate every recorded trajectory
// point.
var BenchMixes = []NamedMix{
	{Name: "pred-heavy", Mix: MixPredHeavy},
	{Name: "update-heavy", Mix: MixUpdateOnly},
	{Name: "uniform", Mix: MixUpdateHeavy},
}

var ()

// KeyDist generates keys in [0, u).
type KeyDist interface {
	// Next returns the next key.
	Next(rng *rand.Rand) int64
	// Name labels the distribution in reports.
	Name() string
}

// Uniform draws keys uniformly from [0, u).
type Uniform struct{ U int64 }

// Next implements KeyDist.
func (d Uniform) Next(rng *rand.Rand) int64 { return rng.Int63n(d.U) }

// Name implements KeyDist.
func (d Uniform) Name() string { return "uniform" }

// Zipf draws keys with a zipfian skew (s = 1.2) over [0, u), mapping rank 0
// to the middle of the universe outward so hotness is not correlated with
// key order.
type Zipf struct {
	U    int64
	zipf *rand.Zipf
}

// NewZipf builds a zipf distribution; the generator is bound to seed.
func NewZipf(u int64, seed int64) *Zipf {
	z := rand.NewZipf(rand.New(rand.NewSource(seed)), 1.2, 1, uint64(u-1))
	return &Zipf{U: u, zipf: z}
}

// Next implements KeyDist. The internal zipf source is deterministic and
// the caller's rng is unused, keeping streams reproducible per generator.
func (d *Zipf) Next(*rand.Rand) int64 {
	rank := int64(d.zipf.Uint64())
	// Spread ranks around the middle: 0 → u/2, 1 → u/2+1, 2 → u/2−1, …
	offset := (rank + 1) / 2
	if rank%2 == 1 {
		offset = -offset
	}
	k := d.U/2 + offset
	if k < 0 {
		k = 0
	}
	if k >= d.U {
		k = d.U - 1
	}
	return k
}

// Name implements KeyDist.
func (d *Zipf) Name() string { return "zipf" }

// Band draws keys uniformly from [Lo, Lo+Width). Give each worker its own
// band (harness.Config.DistFor) to build disjoint-range workloads — the
// zero-key-contention regime where sharding's announcement-list split pays
// off (experiment S1).
type Band struct {
	Lo    int64
	Width int64
}

// Next implements KeyDist.
func (d Band) Next(rng *rand.Rand) int64 { return d.Lo + rng.Int63n(d.Width) }

// Name implements KeyDist.
func (d Band) Name() string { return "band" }

// Bands partitions [0, u) into n equal-width disjoint bands, one per
// worker — the standard disjoint-range workload for the sharding (S1) and
// multicore-placement (MP1) experiments, where worker i's keys never
// collide with worker j's. The trailing band absorbs any remainder when n
// does not divide u.
func Bands(u int64, n int) []Band {
	if n <= 0 {
		return nil
	}
	width := u / int64(n)
	if width <= 0 {
		width = 1
	}
	bands := make([]Band, n)
	for i := range bands {
		bands[i] = Band{Lo: int64(i) * width, Width: width}
	}
	// Give the last band whatever remains so the union covers [0, u).
	if last := &bands[n-1]; last.Lo+last.Width < u {
		last.Width = u - last.Lo
	}
	return bands
}

// HotRange draws keys from a narrow hot range with probability HotPct/100,
// otherwise uniformly — the contention knob for experiment C3 (point
// contention concentrates where keys collide).
type HotRange struct {
	U        int64
	HotLo    int64
	HotWidth int64
	HotPct   int
}

// Next implements KeyDist.
func (d HotRange) Next(rng *rand.Rand) int64 {
	if rng.Intn(100) < d.HotPct {
		return d.HotLo + rng.Int63n(d.HotWidth)
	}
	return rng.Int63n(d.U)
}

// Name implements KeyDist.
func (d HotRange) Name() string { return "hotrange" }

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  int64
}

// Generator produces a deterministic stream of operations.
type Generator struct {
	mix  Mix
	dist KeyDist
	rng  *rand.Rand
}

// NewGenerator builds a generator; identical arguments give identical
// streams.
func NewGenerator(mix Mix, dist KeyDist, seed int64) (*Generator, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	return &Generator{mix: mix, dist: dist, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	p := g.rng.Intn(100)
	var kind OpKind
	switch {
	case p < g.mix.InsertPct:
		kind = OpInsert
	case p < g.mix.InsertPct+g.mix.DeletePct:
		kind = OpDelete
	case p < g.mix.InsertPct+g.mix.DeletePct+g.mix.SearchPct:
		kind = OpSearch
	default:
		kind = OpPredecessor
	}
	return Op{Kind: kind, Key: g.dist.Next(g.rng)}
}

// Fill generates n operations into a fresh slice.
func (g *Generator) Fill(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = g.Next()
	}
	return ops
}

// PoissonSchedule generates deterministic exponential inter-arrival gaps —
// a Poisson arrival process at a configured rate. Closed-loop workers
// (harness.Run) issue the next operation the moment the previous one
// returns, so the measured system sets its own arrival rate and queueing
// delay is invisible; an open-loop driver holds the arrival process fixed
// regardless of service speed, which is what latency-under-load numbers
// (and any p999 worth reporting) require. Same seed, same schedule.
type PoissonSchedule struct {
	rng    *rand.Rand
	meanNs float64
}

// NewPoissonSchedule builds a schedule with the given mean arrival rate.
// A non-positive rate yields zero gaps (arrive as fast as the consumer
// can take, the closed-loop degenerate case).
func NewPoissonSchedule(ratePerSec float64, seed int64) *PoissonSchedule {
	p := &PoissonSchedule{rng: rand.New(rand.NewSource(seed))}
	if ratePerSec > 0 {
		p.meanNs = 1e9 / ratePerSec
	}
	return p
}

// Next returns the gap between this arrival and the next.
func (p *PoissonSchedule) Next() time.Duration {
	if p.meanNs == 0 {
		return 0
	}
	return time.Duration(p.rng.ExpFloat64() * p.meanNs)
}
