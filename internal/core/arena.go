// The per-operation scratch arena: every transient slice and table the
// Predecessor machinery needs — the announcement snapshot Q, the RU-ALL /
// U-ALL / notify classification lists, and the Definition 5.1 recovery's
// sets and edge map — lives in one pooled struct instead of per-call
// map[...]/append allocations, making the steady-state hot paths
// allocation-free.
//
// # ABA safety
//
// Arena memory is strictly op-local: it is acquired at the top of an
// operation, threaded through that operation's helpers, and released before
// the operation returns. Nothing arena-backed is ever CAS-published or
// otherwise shared — the lock-free structures only ever see freshly
// allocated (or embedded, single-writer) objects, so recycling arena memory
// cannot create the ABA hazard that forbids pooling PredNodes, update nodes
// and announcement cells (DESIGN.md §Memory & reclamation). release clears
// every slot before returning the arena to the pool, so no operation can
// observe — or keep alive — another operation's pointers.
//
// # Open-addressing scratch tables
//
// The recovery's former map[int64]int64 / map[int64]bool / map[*T]bool
// instances are linear-probe tables with power-of-two capacity. Pointer keys
// are hashed through their node's int64 key (mixed), not their address —
// this avoids unsafe pointer-to-integer conversion; same-key nodes simply
// probe-collide, and identity is still decided by pointer comparison. Table
// sizes are bounded by the operation's point contention ċ, so even the
// worst case (all entries one key) stays within the paper's O(ċ²) amortized
// bound.
package core

import (
	"sync"

	"math"

	"repro/internal/unode"
)

// mix64 is SplitMix64's finalizer: a cheap invertible mix so that the
// near-sequential keys a workload produces spread across the table.
func mix64(x int64) uint64 {
	z := uint64(x)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// probeSet is a linear-probe identity set over pointer type P. The hash is
// a caller-supplied int64 (the node's key, mixed) rather than the address —
// see the file comment; entries store it so growth can rehash. Identity is
// still decided by pointer comparison.
type probeSet[P comparable] struct {
	slots []probeEntry[P]
	n     int
}

type probeEntry[P comparable] struct {
	p   P
	key int64
}

func (s *probeSet[P]) grow() {
	old := s.slots
	cap2 := 16
	if len(old) > 0 {
		cap2 = len(old) * 2
	}
	s.slots = make([]probeEntry[P], cap2)
	s.n = 0
	var zero P
	for _, e := range old {
		if e.p != zero {
			s.add(e.p, e.key)
		}
	}
}

// add inserts p under the given hash key; duplicates are a no-op.
func (s *probeSet[P]) add(p P, key int64) {
	if s.n*4 >= len(s.slots)*3 {
		s.grow()
	}
	var zero P
	mask := uint64(len(s.slots) - 1)
	for i := mix64(key) & mask; ; i = (i + 1) & mask {
		switch s.slots[i].p {
		case zero:
			s.slots[i] = probeEntry[P]{p: p, key: key}
			s.n++
			return
		case p:
			return
		}
	}
}

// has reports membership of p (hashed by key).
func (s *probeSet[P]) has(p P, key int64) bool {
	if s.n == 0 {
		return false
	}
	var zero P
	mask := uint64(len(s.slots) - 1)
	for i := mix64(key) & mask; ; i = (i + 1) & mask {
		switch s.slots[i].p {
		case zero:
			return false
		case p:
			return true
		}
	}
}

func (s *probeSet[P]) reset() {
	if s.n == 0 {
		return // empty implies all slots are already zero
	}
	clear(s.slots)
	s.n = 0
}

// keyEmpty marks an unused keyTable slot. Safe as a sentinel: table keys are
// set keys (∈ U, ≥ 0) or embedded-predecessor results (∈ U ∪ {−1}), never
// MinInt64 (which unode reserves for the distinct NoKey placeholder).
const keyEmpty int64 = math.MinInt64

type keyEntry struct {
	key, val int64
}

// keyTable is a linear-probe int64→int64 map (also used as a set with the
// value ignored).
type keyTable struct {
	slots []keyEntry
	n     int
}

func (t *keyTable) grow() {
	old := t.slots
	cap2 := 16
	if len(old) > 0 {
		cap2 = len(old) * 2
	}
	t.slots = make([]keyEntry, cap2)
	for i := range t.slots {
		t.slots[i].key = keyEmpty
	}
	t.n = 0
	for _, e := range old {
		if e.key != keyEmpty {
			t.put(e.key, e.val)
		}
	}
}

// put sets k → v, overwriting any previous value.
func (t *keyTable) put(k, v int64) {
	if t.n*4 >= len(t.slots)*3 {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := mix64(k) & mask; ; i = (i + 1) & mask {
		switch t.slots[i].key {
		case keyEmpty:
			t.slots[i] = keyEntry{key: k, val: v}
			t.n++
			return
		case k:
			t.slots[i].val = v
			return
		}
	}
}

// get returns the value for k and whether it is present.
func (t *keyTable) get(k int64) (int64, bool) {
	if t.n == 0 {
		return 0, false
	}
	mask := uint64(len(t.slots) - 1)
	for i := mix64(k) & mask; ; i = (i + 1) & mask {
		switch t.slots[i].key {
		case keyEmpty:
			return 0, false
		case k:
			return t.slots[i].val, true
		}
	}
}

func (t *keyTable) has(k int64) bool {
	_, ok := t.get(k)
	return ok
}

func (t *keyTable) reset() {
	if t.n == 0 {
		return // empty implies every slot already reads keyEmpty
	}
	for i := range t.slots {
		t.slots[i] = keyEntry{key: keyEmpty}
	}
	t.n = 0
}

// arena is the per-operation scratch state. Acquire with getArena, release
// with release; never publish anything arena-backed (see the file comment's
// safety argument).
type arena struct {
	// q is the P-ALL announcement snapshot (paper's Q, newest→oldest).
	q []*PredNode
	// RU-ALL / U-ALL traversal classifications (paper lines 215–217).
	iruall, druall []*unode.UpdateNode
	iuall, duall   []*unode.UpdateNode
	// Notification classifications (lines 218–227).
	inotify, dnotify []*unode.UpdateNode
	// Definition 5.1 recovery lists L1, L2 and L (lines 231–243).
	l1, l2, l []*unode.UpdateNode
	// notified dedups collectNotifiedUpdates; removed and l2seen implement
	// lines 239–240.
	notified, removed, l2seen probeSet[*unode.UpdateNode]
	// preds holds the first-embedded-predecessor announcements of Druall's
	// deletes (line 232).
	preds probeSet[*PredNode]
	// lastIdx, edge, deleted and start back dropSupersededDels and the
	// Definition 5.1 chain chase; startKeys keeps X iterable without a table
	// scan.
	lastIdx, edge, deleted, start keyTable
	startKeys                     []int64
	// slab is the notify-node slab this operation draws from (notify.go);
	// acquired lazily, the hold released with the arena. Unlike the rest of
	// the arena, drawn nodes ARE published — their reclamation is the
	// slab's refcount under the announcement's EBR grace, not this reset.
	slab *notifySlab
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// getArena returns a cleared arena from the shared pool.
func getArena() *arena {
	return arenaPool.Get().(*arena)
}

// release clears the arena — dropping every pointer it accumulated, so no
// scratch state can leak into (or be kept alive by) a later operation — and
// returns it to the pool. Slice capacities and table backing arrays are
// retained; only their contents are zeroed, and structures the operation
// never touched reset in O(1), so an update's notifyPredOps does not pay
// for recovery tables some past Predecessor grew.
func (a *arena) release() {
	clearPreds(&a.q)
	clearUpds(&a.iruall)
	clearUpds(&a.druall)
	clearUpds(&a.iuall)
	clearUpds(&a.duall)
	clearUpds(&a.inotify)
	clearUpds(&a.dnotify)
	clearUpds(&a.l1)
	clearUpds(&a.l2)
	clearUpds(&a.l)
	a.notified.reset()
	a.removed.reset()
	a.l2seen.reset()
	a.preds.reset()
	a.lastIdx.reset()
	a.edge.reset()
	a.deleted.reset()
	a.start.reset()
	a.startKeys = a.startKeys[:0]
	if a.slab != nil {
		a.slab.release()
		a.slab = nil
	}
	arenaPool.Put(a)
}

// notifyNode draws the next notification node from the operation's slab,
// starting a fresh slab when the current one is exhausted (the old slab's
// hold is dropped; its published nodes keep it alive until they recycle).
func (a *arena) notifyNode() *notifyNode {
	if a.slab == nil || a.slab.used == notifySlabSize {
		if a.slab != nil {
			a.slab.release()
		}
		a.slab = getNotifySlab()
	}
	n := &a.slab.nodes[a.slab.used]
	a.slab.used++
	*n = notifyNode{slab: a.slab}
	return n
}

func clearUpds(s *[]*unode.UpdateNode) {
	clear(*s)
	*s = (*s)[:0]
}

func clearPreds(s *[]*PredNode) {
	clear(*s)
	*s = (*s)[:0]
}
