package core

import (
	"testing"

	"repro/internal/unode"
)

// White-box tests for the scratch arena: the open-addressing tables must
// behave like the maps they replaced (including same-hash collisions, which
// the key-based pointer hashing makes routine), and release must leave no
// trace of the operation — the "never leaks across operations" half of the
// ABA-safety argument in arena.go.

func TestProbeSetCollisionsAndGrowth(t *testing.T) {
	var s probeSet[*unode.UpdateNode]
	// Many distinct nodes sharing one key: all hash to the same slot and
	// must linear-probe into distinct slots.
	sameKey := make([]*unode.UpdateNode, 40)
	for i := range sameKey {
		sameKey[i] = unode.NewIns(7)
		s.add(sameKey[i], 7)
	}
	// Duplicates are no-ops.
	s.add(sameKey[0], 7)
	if s.n != len(sameKey) {
		t.Fatalf("n = %d, want %d", s.n, len(sameKey))
	}
	for i, p := range sameKey {
		if !s.has(p, 7) {
			t.Fatalf("node %d lost after growth", i)
		}
	}
	if s.has(unode.NewIns(7), 7) {
		t.Fatal("identity set matched a distinct node with the same key")
	}
	s.reset()
	if s.n != 0 || s.has(sameKey[0], 7) {
		t.Fatal("reset left members behind")
	}
	for _, e := range s.slots {
		if e.p != nil {
			t.Fatal("reset left a live pointer in the backing array")
		}
	}
}

func TestKeyTableBasics(t *testing.T) {
	var kt keyTable
	if _, ok := kt.get(3); ok {
		t.Fatal("empty table reported a hit")
	}
	// Include the boundary values the recovery actually stores: −1
	// (no-predecessor results) and overwrites.
	kt.put(-1, 10)
	kt.put(0, 11)
	for i := int64(1); i < 50; i++ {
		kt.put(i, i*2)
	}
	kt.put(0, 99) // overwrite
	if v, ok := kt.get(0); !ok || v != 99 {
		t.Fatalf("get(0) = %d,%v want 99,true", v, ok)
	}
	if v, ok := kt.get(-1); !ok || v != 10 {
		t.Fatalf("get(-1) = %d,%v want 10,true", v, ok)
	}
	for i := int64(1); i < 50; i++ {
		if v, ok := kt.get(i); !ok || v != i*2 {
			t.Fatalf("get(%d) = %d,%v", i, v, ok)
		}
	}
	if kt.has(1000) {
		t.Fatal("phantom key")
	}
	kt.reset()
	if kt.n != 0 || kt.has(0) || kt.has(-1) {
		t.Fatal("reset left entries behind")
	}
}

// TestArenaReleaseClearsEverything fills every arena field through a real
// bottom-case recovery plus direct appends, releases, and verifies the
// pooled object retains capacity but no contents.
func TestArenaReleaseClearsEverything(t *testing.T) {
	tr := mustNew(t, 16)
	pNode := newPredNode(10, tr.ruall.Head())
	pPrime := newPredNode(5, tr.ruall.Head())
	i6 := insNode(6)
	pushNotify(pPrime, i6, 0, nil)
	pushNotify(pNode, delNode(6, tr.b, 5, 4, nil), 8, nil)
	d5 := delNode(5, tr.b, -1, -1, pPrime)

	a := getArena()
	a.q = append(a.q, pPrime)
	a.iruall = append(a.iruall, i6)
	a.iuall = append(a.iuall, i6)
	a.duall = append(a.duall, d5)
	// L1 supplies INS(6) as a start; L2's DEL(6) contributes edge 6→4, so
	// the chase ends at sink 4.
	if got := tr.bottomCase(pNode, a.q, []*unode.UpdateNode{d5}, 10, a); got != 4 {
		t.Fatalf("bottomCase = %d, want 4", got)
	}
	a.release()

	// The pool may hand the same arena back; regardless, inspect the one we
	// released directly.
	if len(a.q) != 0 || len(a.iruall) != 0 || len(a.druall) != 0 ||
		len(a.iuall) != 0 || len(a.duall) != 0 || len(a.inotify) != 0 ||
		len(a.dnotify) != 0 || len(a.l1) != 0 || len(a.l2) != 0 ||
		len(a.l) != 0 || len(a.startKeys) != 0 {
		t.Fatal("release left slice contents")
	}
	for _, p := range a.q[:cap(a.q)] {
		if p != nil {
			t.Fatal("release left a PredNode pointer alive in q's backing array")
		}
	}
	for _, p := range a.l[:cap(a.l)] {
		if p != nil {
			t.Fatal("release left an UpdateNode pointer alive in l's backing array")
		}
	}
	if a.notified.n != 0 || a.removed.n != 0 || a.l2seen.n != 0 || a.preds.n != 0 {
		t.Fatal("release left set members")
	}
	for _, e := range a.preds.slots {
		if e.p != nil {
			t.Fatal("release left a PredNode pointer in preds")
		}
	}
	if a.edge.n != 0 || a.start.n != 0 || a.deleted.n != 0 || a.lastIdx.n != 0 {
		t.Fatal("release left table entries")
	}
	for _, e := range a.edge.slots {
		if e.key != keyEmpty {
			t.Fatal("release left a key in edge's backing array")
		}
	}
}
