package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/settest"
)

func factory(u int64) (settest.Set, error) { return core.New(u) }

func TestSequentialConformance(t *testing.T) { settest.RunSequential(t, factory, 64) }
func TestEdgeCases(t *testing.T)             { settest.RunEdgeCases(t, factory, 32) }
func TestConcurrentConformance(t *testing.T) { settest.RunConcurrent(t, factory, 256, 8, 1200) }
