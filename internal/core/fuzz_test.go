package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/relaxed"
	"repro/internal/seqtrie"
)

// FuzzSequentialAgainstReference: any byte-driven op sequence leaves the
// lock-free trie, the relaxed trie and the sequential reference in exact
// agreement on membership, predecessor and (for the tries that have it)
// successor.
func FuzzSequentialAgainstReference(f *testing.F) {
	f.Add([]byte{0, 17, 64, 3, 129, 200, 255, 8})
	f.Add([]byte{1, 1, 1, 1})
	f.Add([]byte{250, 100, 50, 25, 12, 6, 3, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const u = 32
		lf, err := core.New(u)
		if err != nil {
			t.Fatal(err)
		}
		rx, err := relaxed.New(u)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := seqtrie.New(u)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range data {
			k := int64(b % u)
			switch (b / u) % 4 {
			case 0, 1:
				lf.Insert(k)
				rx.Insert(k)
				ref.Insert(k)
			case 2:
				lf.Delete(k)
				rx.Delete(k)
				ref.Delete(k)
			case 3:
				if got, want := lf.Search(k), ref.Search(k); got != want {
					t.Fatalf("core.Search(%d) = %v, want %v", k, got, want)
				}
				wantPred := ref.Predecessor(k)
				if got := lf.Predecessor(k); got != wantPred {
					t.Fatalf("core.Predecessor(%d) = %d, want %d", k, got, wantPred)
				}
				gotR, ok := rx.Predecessor(k)
				if !ok || gotR != wantPred {
					t.Fatalf("relaxed.Predecessor(%d) = (%d,%v), want (%d,true)",
						k, gotR, ok, wantPred)
				}
				wantSucc := ref.Successor(k)
				gotS, ok := rx.Successor(k)
				if !ok || gotS != wantSucc {
					t.Fatalf("relaxed.Successor(%d) = (%d,%v), want (%d,true)",
						k, gotS, ok, wantSucc)
				}
			}
		}
		// Full final sweep: every key agrees.
		for k := int64(0); k < u; k++ {
			if got, want := lf.Search(k), ref.Search(k); got != want {
				t.Fatalf("final core.Search(%d) = %v, want %v", k, got, want)
			}
			if got, want := lf.Predecessor(k), ref.Predecessor(k); got != want {
				t.Fatalf("final core.Predecessor(%d) = %d, want %d", k, got, want)
			}
		}
	})
}
