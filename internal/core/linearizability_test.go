package core_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/lincheck"
)

// runRecorded executes a concurrent workload against a fresh trie and
// checks the recorded history for linearizability. Each worker receives its
// own rng and issues ops via the provided script function.
func runRecorded(t *testing.T, u int64, workers int, script func(id int, rng *rand.Rand, do opRunner)) {
	t.Helper()
	tr := newTrie(t, u)
	rec := lincheck.NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*7919 + 13))
			script(id, rng, opRunner{tr: tr, rec: rec})
		}(w)
	}
	wg.Wait()
	ok, msg, err := lincheck.CheckOrExplain(rec.History())
	if err != nil {
		t.Fatalf("checker error: %v", err)
	}
	if !ok {
		t.Fatal(msg)
	}
}

// opRunner wraps a trie with history recording.
type opRunner struct {
	tr  *core.Trie
	rec *lincheck.Recorder
}

func (r opRunner) insert(k int64) {
	inv := r.rec.Begin()
	r.tr.Insert(k)
	r.rec.End(lincheck.OpInsert, k, 0, inv)
}

func (r opRunner) delete(k int64) {
	inv := r.rec.Begin()
	r.tr.Delete(k)
	r.rec.End(lincheck.OpDelete, k, 0, inv)
}

func (r opRunner) search(k int64) {
	inv := r.rec.Begin()
	got := r.tr.Search(k)
	res := int64(0)
	if got {
		res = 1
	}
	r.rec.End(lincheck.OpSearch, k, res, inv)
}

func (r opRunner) predecessor(y int64) {
	inv := r.rec.Begin()
	got := r.tr.Predecessor(y)
	r.rec.End(lincheck.OpPredecessor, y, got, inv)
}

func rounds(t *testing.T, n int) int {
	if testing.Short() {
		return n / 5
	}
	return n
}

// TestCoreLinearizableUniform (experiment C8): random mixed workloads.
func TestCoreLinearizableUniform(t *testing.T) {
	for round := 0; round < rounds(t, 300); round++ {
		runRecorded(t, 16, 3, func(id int, rng *rand.Rand, do opRunner) {
			for i := 0; i < 6; i++ {
				k := rng.Int63n(16)
				switch rng.Intn(4) {
				case 0:
					do.insert(k)
				case 1:
					do.delete(k)
				case 2:
					do.search(k)
				case 3:
					do.predecessor(k)
				}
			}
		})
	}
}

// TestCoreLinearizableFigure7Shape: two deletes with keys w < x racing a
// Predecessor(y) with w < x < y — the notify-threshold ordering scenario of
// Figure 7. The trie starts with both keys present via a setup goroutine's
// recorded inserts.
func TestCoreLinearizableFigure7Shape(t *testing.T) {
	for round := 0; round < rounds(t, 300); round++ {
		runRecorded(t, 16, 4, func(id int, rng *rand.Rand, do opRunner) {
			const w, x, y = 3, 7, 12
			switch id {
			case 0:
				do.insert(w)
				do.insert(x)
				do.predecessor(y)
			case 1:
				do.delete(x)
				do.predecessor(y)
			case 2:
				do.delete(w)
				do.search(x)
			case 3:
				do.predecessor(y)
				do.predecessor(x)
			}
		})
	}
}

// TestCoreLinearizableFigure8Shape: deletes of decreasing keys racing a
// predecessor's RU-ALL traversal — the atomic-copy scenario of Figure 8
// (Delete(25), Delete(29) vs Predecessor(40), scaled to u=64).
func TestCoreLinearizableFigure8Shape(t *testing.T) {
	for round := 0; round < rounds(t, 300); round++ {
		runRecorded(t, 64, 4, func(id int, rng *rand.Rand, do opRunner) {
			switch id {
			case 0:
				do.insert(20)
				do.insert(25)
				do.insert(29)
			case 1:
				do.delete(25)
				do.predecessor(40)
			case 2:
				do.delete(29)
				do.predecessor(40)
			case 3:
				do.predecessor(40)
				do.predecessor(40)
			}
		})
	}
}

// TestCoreLinearizableFigure9Shape: Insert(x) then Insert(w) with w < x < y
// racing Predecessor(y) — the updateNodeMax forwarding scenario of Figure 9.
func TestCoreLinearizableFigure9Shape(t *testing.T) {
	for round := 0; round < rounds(t, 300); round++ {
		runRecorded(t, 16, 3, func(id int, rng *rand.Rand, do opRunner) {
			const w, x, y = 2, 6, 11
			switch id {
			case 0:
				do.insert(x)
				do.insert(w)
			case 1:
				do.predecessor(y)
				do.predecessor(y)
				do.predecessor(y)
			case 2:
				do.search(w)
				do.predecessor(y)
			}
		})
	}
}

// TestCoreLinearizableDeleteHandoff: chained deletes whose embedded
// predecessors feed the ⊥-case graph (Definition 5.1): churn in a narrow
// band below the query key.
func TestCoreLinearizableDeleteHandoff(t *testing.T) {
	for round := 0; round < rounds(t, 300); round++ {
		runRecorded(t, 16, 4, func(id int, rng *rand.Rand, do opRunner) {
			switch id {
			case 0:
				do.insert(4)
				do.insert(5)
				do.delete(5)
			case 1:
				do.insert(6)
				do.delete(6)
				do.delete(4)
			case 2:
				do.predecessor(9)
				do.predecessor(9)
			case 3:
				do.insert(2)
				do.predecessor(9)
			}
		})
	}
}

// TestCoreLinearizableHighContentionOneKey: everyone on one key.
func TestCoreLinearizableHighContentionOneKey(t *testing.T) {
	for round := 0; round < rounds(t, 200); round++ {
		runRecorded(t, 8, 4, func(id int, rng *rand.Rand, do opRunner) {
			for i := 0; i < 4; i++ {
				switch rng.Intn(4) {
				case 0:
					do.insert(5)
				case 1:
					do.delete(5)
				case 2:
					do.search(5)
				case 3:
					do.predecessor(7)
				}
			}
		})
	}
}
