package core

// Successor returns the smallest key in the set strictly greater than y,
// or −1 if there is none.
//
// The paper defines no successor operation for the §5 trie — its
// announcement machinery (RU-ALL order, notify thresholds, the Definition
// 5.1 recovery) is built one-directional, toward predecessors — so this is
// a composed extension with the same consistency contract as the facade's
// Floor/Max/Range family: every probe it makes is individually
// linearizable, the composition is weakly consistent under concurrent
// updates on keys in (y, result), and at quiescence the answer is exact.
//
// Fast path: the relaxed-trie mirror traversal (bitstrie.RelaxedSuccessor
// over this trie's interpreted bits), O(log u) steps. When concurrent
// updates force that traversal to ⊥, the fallback binary-searches the key
// space with linearizable Search/Predecessor probes — O(log u) probes,
// O(log u · (ċ² + log u)) amortized steps — which cannot abstain.
//
// Precondition: 0 ≤ y < U().
func (t *Trie) Successor(y int64) int64 {
	if y >= t.u-1 {
		return -1
	}
	if s, ok := t.bits.RelaxedSuccessor(y); ok {
		return s
	}
	// ⊥ fallback. Invariant: every key in (y, lo) is absent (as probed),
	// and some key ≤ hi is present and > y, so the successor converges to
	// lo == hi. floorProbe(z) — the largest present key ≤ z — both tests
	// a half and tightens hi past untouched empty space in one step.
	g := t.floorProbe(t.u - 1)
	if g <= y {
		return -1
	}
	lo, hi := y+1, g
	for lo < hi {
		mid := lo + (hi-lo)/2
		if g := t.floorProbe(mid); g > y {
			if g <= lo {
				// Only possible when a concurrent insert landed below
				// the already-cleared range; g is a present key > y and
				// at least as good as anything we could still converge
				// to.
				return g
			}
			hi = g
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// floorProbe returns the largest key ≤ z in the set, or −1: one Search
// plus, on a miss, one Predecessor — both linearizable.
func (t *Trie) floorProbe(z int64) int64 {
	if t.Search(z) {
		return z
	}
	return t.Predecessor(z)
}
