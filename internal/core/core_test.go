package core_test

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func newTrie(t testing.TB, u int64) *core.Trie {
	t.Helper()
	tr, err := core.New(u)
	if err != nil {
		t.Fatalf("New(%d): %v", u, err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := core.New(1); err == nil {
		t.Error("New(1) should fail")
	}
	tr := newTrie(t, 100)
	if tr.U() != 128 || tr.B() != 7 {
		t.Errorf("U=%d B=%d, want 128/7", tr.U(), tr.B())
	}
}

func TestEmptyTrie(t *testing.T) {
	tr := newTrie(t, 8)
	for x := int64(0); x < 8; x++ {
		if tr.Search(x) {
			t.Errorf("Search(%d) = true on empty trie", x)
		}
		if got := tr.Predecessor(x); got != -1 {
			t.Errorf("Predecessor(%d) = %d, want -1", x, got)
		}
	}
}

func TestInsertSearchDelete(t *testing.T) {
	tr := newTrie(t, 16)
	tr.Insert(5)
	if !tr.Search(5) {
		t.Fatal("Search(5) = false after insert")
	}
	tr.Insert(5)
	if !tr.Search(5) {
		t.Fatal("double insert broke Search")
	}
	tr.Delete(5)
	if tr.Search(5) {
		t.Fatal("Search(5) = true after delete")
	}
	tr.Delete(5)
	if tr.Search(5) {
		t.Fatal("double delete broke Search")
	}
}

func TestPredecessorSequential(t *testing.T) {
	tr := newTrie(t, 64)
	for _, k := range []int64{0, 3, 17, 40, 62} {
		tr.Insert(k)
	}
	tests := []struct {
		y, want int64
	}{
		{0, -1}, {1, 0}, {3, 0}, {4, 3}, {17, 3}, {18, 17},
		{40, 17}, {41, 40}, {62, 40}, {63, 62},
	}
	for _, tt := range tests {
		if got := tr.Predecessor(tt.y); got != tt.want {
			t.Errorf("Predecessor(%d) = %d, want %d", tt.y, got, tt.want)
		}
	}
}

func TestPredecessorAfterChurn(t *testing.T) {
	tr := newTrie(t, 32)
	for k := int64(0); k < 32; k++ {
		tr.Insert(k)
	}
	for k := int64(0); k < 32; k += 2 {
		tr.Delete(k)
	}
	// Odd keys remain.
	for y := int64(0); y < 32; y++ {
		want := y - 1
		if want%2 == 0 {
			want--
		}
		if want < 0 {
			want = -1
		}
		if got := tr.Predecessor(y); got != want {
			t.Errorf("Predecessor(%d) = %d, want %d", y, got, want)
		}
	}
}

// checkQuiescent verifies membership and exact predecessors against a
// reference set once no operations are running.
func checkQuiescent(t *testing.T, tr *core.Trie, present map[int64]bool) {
	t.Helper()
	for y := int64(0); y < tr.U(); y++ {
		if got := tr.Search(y); got != present[y] {
			t.Fatalf("Search(%d) = %v, want %v", y, got, present[y])
		}
		want := int64(-1)
		for k := y - 1; k >= 0; k-- {
			if present[k] {
				want = k
				break
			}
		}
		if got := tr.Predecessor(y); got != want {
			t.Fatalf("Predecessor(%d) = %d, want %d", y, got, want)
		}
	}
}

func TestQuickAgainstReference(t *testing.T) {
	const u = 32
	type op struct {
		Kind byte
		Key  uint8
	}
	f := func(ops []op) bool {
		tr := newTrie(t, u)
		ref := map[int64]bool{}
		for _, o := range ops {
			k := int64(o.Key % u)
			switch o.Kind % 4 {
			case 0:
				tr.Insert(k)
				ref[k] = true
			case 1:
				tr.Delete(k)
				delete(ref, k)
			case 2:
				if tr.Search(k) != ref[k] {
					return false
				}
			case 3:
				want := int64(-1)
				for c := k - 1; c >= 0; c-- {
					if ref[c] {
						want = c
						break
					}
				}
				if tr.Predecessor(k) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAnnouncementsDrain: after operations finish, the announcement lists
// must be empty (space bound O(u + ċ²) depends on this).
func TestAnnouncementsDrain(t *testing.T) {
	tr := newTrie(t, 64)
	for k := int64(0); k < 64; k++ {
		tr.Insert(k)
	}
	for k := int64(0); k < 64; k++ {
		tr.Delete(k)
	}
	tr.Predecessor(63)
	if got := tr.AnnouncedUpdates(); got != 0 {
		t.Errorf("U-ALL occupancy = %d, want 0 at quiescence", got)
	}
	if got := tr.AnnouncedPredecessors(); got != 0 {
		t.Errorf("P-ALL occupancy = %d, want 0 at quiescence", got)
	}
}

func TestConcurrentDisjointRanges(t *testing.T) {
	const (
		u          = 256
		goroutines = 8
		opsPerG    = 1500
	)
	tr := newTrie(t, u)
	var wg sync.WaitGroup
	finals := make([]map[int64]bool, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id + 1)))
			lo := int64(id) * (u / goroutines)
			hi := lo + (u / goroutines)
			final := map[int64]bool{}
			for i := 0; i < opsPerG; i++ {
				k := lo + rng.Int63n(hi-lo)
				switch rng.Intn(5) {
				case 0, 1:
					tr.Insert(k)
					final[k] = true
				case 2:
					tr.Delete(k)
					delete(final, k)
				case 3:
					tr.Search(k)
				case 4:
					y := lo + rng.Int63n(hi-lo)
					if got := tr.Predecessor(y); got >= y {
						t.Errorf("Predecessor(%d) = %d ≥ y", y, got)
						return
					}
				}
			}
			finals[id] = final
		}(g)
	}
	wg.Wait()

	present := map[int64]bool{}
	for _, final := range finals {
		for k := range final {
			present[k] = true
		}
	}
	checkQuiescent(t, tr, present)
	if got := tr.AnnouncedUpdates(); got != 0 {
		t.Errorf("U-ALL occupancy = %d, want 0", got)
	}
	if got := tr.AnnouncedPredecessors(); got != 0 {
		t.Errorf("P-ALL occupancy = %d, want 0", got)
	}
}

// TestConcurrentSameKeyChurn: insert/delete churn on one key with
// concurrent predecessor queries above it; predecessor answers must always
// be the churned key or −1, and the structure must be exact afterwards.
func TestConcurrentSameKeyChurn(t *testing.T) {
	tr := newTrie(t, 16)
	const rounds = 800
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			tr.Insert(5)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			tr.Delete(5)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if got := tr.Predecessor(9); got != -1 && got != 5 {
				t.Errorf("Predecessor(9) = %d, want -1 or 5", got)
				return
			}
		}
	}()
	wg.Wait()
	tr.Insert(5)
	checkQuiescent(t, tr, map[int64]bool{5: true})
	tr.Delete(5)
	checkQuiescent(t, tr, map[int64]bool{})
}

// TestConcurrentPredecessorWithStableFloor: key 2 is always present; the
// churn happens strictly above the query point, so Predecessor(4) must
// always return at least 2 — it can never miss the stable floor.
func TestConcurrentPredecessorWithStableFloor(t *testing.T) {
	tr := newTrie(t, 64)
	tr.Insert(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := 8 + rng.Int63n(48)
				if rng.Intn(2) == 0 {
					tr.Insert(k)
				} else {
					tr.Delete(k)
				}
			}
		}(int64(g + 7))
	}
	for i := 0; i < 4000; i++ {
		if got := tr.Predecessor(4); got != 2 {
			t.Errorf("Predecessor(4) = %d, want 2 (stable floor)", got)
			break
		}
		if got := tr.Predecessor(6); got != 2 {
			t.Errorf("Predecessor(6) = %d, want 2 (churn is above)", got)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentPredecessorBelowChurn: churn strictly below the floor key;
// queries between floor and churn must always see the floor... here churn
// is in (8,16) and the floor is 20: Predecessor(32) must always be ≥ 20.
func TestConcurrentPredecessorMonotoneFloor(t *testing.T) {
	tr := newTrie(t, 64)
	tr.Insert(20)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := 8 + rng.Int63n(8)
				if rng.Intn(2) == 0 {
					tr.Insert(k)
				} else {
					tr.Delete(k)
				}
			}
		}(int64(g + 3))
	}
	for i := 0; i < 4000; i++ {
		if got := tr.Predecessor(32); got < 20 {
			t.Errorf("Predecessor(32) = %d, want ≥ 20 (20 always present)", got)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestDeleteEmbedsPredecessors exercises the embedded-predecessor path:
// deletes racing with predecessor queries that are forced into the ⊥ branch
// by heavy churn inside one subtree.
func TestDeleteEmbedsPredecessors(t *testing.T) {
	tr := newTrie(t, 32)
	tr.Insert(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Insert(12)
				tr.Insert(13)
				tr.Delete(12)
				tr.Delete(13)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Insert(14)
				tr.Delete(14)
			}
		}
	}()
	for i := 0; i < 6000; i++ {
		got := tr.Predecessor(20)
		if got < 1 {
			t.Errorf("Predecessor(20) = %d, want ≥ 1 (1 always present)", got)
			break
		}
		if got > 14 {
			t.Errorf("Predecessor(20) = %d, impossible value", got)
			break
		}
	}
	close(stop)
	wg.Wait()
	if got := tr.AnnouncedPredecessors(); got != 0 {
		t.Errorf("P-ALL occupancy = %d, want 0 (embedded announcements leak?)", got)
	}
}

func TestStatsCollected(t *testing.T) {
	tr := newTrie(t, 32)
	stats := &core.Stats{}
	tr.SetStats(stats)
	tr.Insert(3)
	tr.Predecessor(10)
	tr.Delete(3)
	if stats.UallTraversalSteps.Load() == 0 {
		t.Error("expected UallTraversalSteps > 0")
	}
}
