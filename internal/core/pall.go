package core

import (
	"sync/atomic"

	"repro/internal/alist"
	"repro/internal/atomicx"
	"repro/internal/unode"
)

// PredNode is a predecessor announcement (paper lines 105–108). One is
// created per PredHelper instance — standalone Predecessor operations make
// one, Delete operations make two (their embedded predecessors) that stay
// announced until the Delete finishes.
type PredNode struct {
	// key is the predecessor operation's input key y (immutable).
	key int64
	// notifyHead is the insert-only notify list (paper line 107); update
	// operations prepend notify nodes with CAS.
	notifyHead atomic.Pointer[notifyNode]
	// ruallPos publishes the RU-ALL cell this operation is currently
	// visiting (paper line 108). Written only by the owner via atomic copy;
	// read by updaters computing notify thresholds.
	ruallPos atomicx.Slot[alist.Cell]

	// next/marked form the P-ALL link (lock-free list with logical
	// deletion; insertions only at the head).
	next atomic.Pointer[predRef]
}

type predRef struct {
	next   *PredNode
	marked bool
}

// Key returns the announced key (tests and trieviz).
func (p *PredNode) Key() int64 { return p.key }

// notifyNode is one notification (paper lines 109–113). All fields are
// immutable once the node is published by the CAS in sendNotification.
type notifyNode struct {
	key             int64
	updateNode      *unode.UpdateNode
	updateNodeMax   *unode.UpdateNode // INS node with largest key < pNode.key seen in U-ALL; may be nil (⊥)
	notifyThreshold int64
	next            *notifyNode
}

// newPredNode builds an announcement for key y with ruallPos pointing at
// the RU-ALL head sentinel (key +∞), per paper line 108.
func newPredNode(y int64, ruallHead *alist.Cell) *PredNode {
	p := &PredNode{key: y}
	p.ruallPos.Store(ruallHead)
	p.next.Store(&predRef{})
	return p
}

// pall is the predecessor announcement list: a lock-free linked list with
// head insertion and logical deletion. The zero value must be initialized
// with init.
type pall struct {
	head PredNode // sentinel; never marked
}

func (l *pall) init() {
	l.head.next.Store(&predRef{})
}

// insert links n at the head of the list.
func (l *pall) insert(n *PredNode) {
	for {
		r := l.head.next.Load()
		n.next.Store(&predRef{next: r.next})
		if l.head.next.CompareAndSwap(r, &predRef{next: n}) {
			return
		}
	}
}

// remove marks n deleted and physically unlinks marked nodes. Removing a
// node twice is a harmless no-op.
func (l *pall) remove(n *PredNode) {
	for {
		r := n.next.Load()
		if r.marked {
			break
		}
		if n.next.CompareAndSwap(r, &predRef{next: r.next, marked: true}) {
			break
		}
	}
	l.cleanup()
}

// cleanup unlinks every marked node it can reach. Restarting on CAS failure
// keeps it lock-free; the list length is bounded by point contention so the
// scan is O(ċ).
func (l *pall) cleanup() {
retry:
	for {
		pred := &l.head
		predRef0 := pred.next.Load()
		if predRef0.marked {
			return // unreachable for the sentinel, defensive
		}
		cur := predRef0.next
		for cur != nil {
			curRef := cur.next.Load()
			if curRef.marked {
				if !pred.next.CompareAndSwap(predRef0, &predRef{next: curRef.next}) {
					continue retry
				}
				predRef0 = pred.next.Load()
				if predRef0.marked {
					continue retry
				}
				cur = predRef0.next
				continue
			}
			pred, predRef0 = cur, curRef
			cur = curRef.next
		}
		return
	}
}

// forEach visits the unmarked nodes from newest to oldest, stopping early if
// f returns false.
func (l *pall) forEach(f func(*PredNode) bool) {
	r := l.head.next.Load()
	for cur := r.next; cur != nil; {
		curRef := cur.next.Load()
		if !curRef.marked {
			if !f(cur) {
				return
			}
		}
		cur = curRef.next
	}
}

// snapshotAfter returns the announcement nodes following p in list order
// (newest→oldest), including marked ones — the paper's sequence Q (lines
// 210–214) prepends them, so "earliest in Q" is the LAST element here.
func snapshotAfter(p *PredNode) []*PredNode {
	var q []*PredNode
	r := p.next.Load()
	for cur := r.next; cur != nil; {
		q = append(q, cur)
		cur = cur.next.Load().next
	}
	return q
}

// len counts unmarked nodes (metrics; O(n)).
func (l *pall) len() int {
	n := 0
	l.forEach(func(*PredNode) bool { n++; return true })
	return n
}
