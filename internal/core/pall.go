package core

import (
	"sync/atomic"

	"repro/internal/alist"
	"repro/internal/unode"
)

// PredNode is a predecessor announcement (paper lines 105–108). One is
// created per PredHelper instance — standalone Predecessor operations make
// one, Delete operations make two (their embedded predecessors) that stay
// announced until the Delete finishes.
//
// Like alist.Cell, a PredNode embeds every successor reference its P-ALL
// lifecycle publishes, so announcing and removing allocate nothing beyond
// the node itself: selfRef/linkRef are written only while the node is
// private to the announcing goroutine (a failed CAS publishes nothing);
// markRef is written only by the owner (pall.remove is owner-only); the
// contended unlink ref is guarded by a one-shot claim. PredNodes themselves
// are NOT pooled — see DESIGN.md §Memory & reclamation for the ABA argument
// (announcement snapshots and DelPredNode links can outlive the operation).
type PredNode struct {
	// key is the predecessor operation's input key y (immutable).
	key int64
	// notifyHead is the insert-only notify list (paper line 107); update
	// operations prepend notify nodes with CAS.
	notifyHead atomic.Pointer[notifyNode]
	// ruallPos publishes the RU-ALL cell this operation is currently
	// visiting (paper line 108). Written only by the owner via atomic copy;
	// read by updaters computing notify thresholds.
	ruallPos alist.Pos

	// next/marked form the P-ALL link (lock-free list with logical
	// deletion; insertions only at the head).
	next atomic.Pointer[predRef]

	selfRef     predRef // initial successor ref; written pre-publication
	linkRef     predRef // {next: this node}; constant content
	markRef     predRef // owner-written marked ref
	unlinkRef   predRef // claim-guarded physical-unlink ref
	unlinkClaim atomic.Bool
}

type predRef struct {
	next   *PredNode
	marked bool
}

// claimUnlinkRef returns the embedded unlink ref if this caller is the
// first to claim it, or a fresh allocation otherwise.
func (p *PredNode) claimUnlinkRef() *predRef {
	if p.unlinkClaim.CompareAndSwap(false, true) {
		return &p.unlinkRef
	}
	return &predRef{}
}

// Key returns the announced key (tests and trieviz).
func (p *PredNode) Key() int64 { return p.key }

// notifyNode is one notification (paper lines 109–113). All fields are
// immutable once the node is published by the CAS in sendNotification.
type notifyNode struct {
	key             int64
	updateNode      *unode.UpdateNode
	updateNodeMax   *unode.UpdateNode // INS node with largest key < pNode.key seen in U-ALL; may be nil (⊥)
	notifyThreshold int64
	next            *notifyNode
}

// newPredNode builds an announcement for key y with ruallPos pointing at
// the RU-ALL head sentinel (key +∞), per paper line 108. One allocation:
// the node (the position slot interns the head's resolved cell).
func newPredNode(y int64, ruallHead *alist.Cell) *PredNode {
	p := &PredNode{key: y}
	p.ruallPos.Init(ruallHead)
	p.linkRef.next = p
	p.next.Store(&p.selfRef)
	return p
}

// pall is the predecessor announcement list: a lock-free linked list with
// head insertion and logical deletion. The zero value must be initialized
// with init.
type pall struct {
	head PredNode // sentinel; never marked
}

func (l *pall) init() {
	l.head.next.Store(&l.head.selfRef)
}

// insert links n at the head of the list. Allocation-free: both published
// refs are embedded in n and written before the linking CAS publishes them.
func (l *pall) insert(n *PredNode) {
	for {
		r := l.head.next.Load()
		n.selfRef.next = r.next
		n.next.Store(&n.selfRef)
		if l.head.next.CompareAndSwap(r, &n.linkRef) {
			return
		}
	}
}

// remove marks n deleted and physically unlinks marked nodes. Owner-only
// (each operation removes exactly its own announcements), which is what
// makes the embedded markRef single-writer; removing a node twice is a
// harmless no-op.
func (l *pall) remove(n *PredNode) {
	for {
		r := n.next.Load()
		if r.marked {
			break
		}
		n.markRef.next = r.next
		n.markRef.marked = true
		if n.next.CompareAndSwap(r, &n.markRef) {
			break
		}
	}
	l.cleanup()
}

// cleanup unlinks every marked node it can reach. Restarting on CAS failure
// keeps it lock-free; the list length is bounded by point contention so the
// scan is O(ċ).
func (l *pall) cleanup() {
retry:
	for {
		pred := &l.head
		predRef0 := pred.next.Load()
		if predRef0.marked {
			return // unreachable for the sentinel, defensive
		}
		cur := predRef0.next
		for cur != nil {
			curRef := cur.next.Load()
			if curRef.marked {
				ur := cur.claimUnlinkRef()
				ur.next = curRef.next
				if !pred.next.CompareAndSwap(predRef0, ur) {
					continue retry
				}
				predRef0 = pred.next.Load()
				if predRef0.marked {
					continue retry
				}
				cur = predRef0.next
				continue
			}
			pred, predRef0 = cur, curRef
			cur = curRef.next
		}
		return
	}
}

// forEach visits the unmarked nodes from newest to oldest, stopping early if
// f returns false.
func (l *pall) forEach(f func(*PredNode) bool) {
	r := l.head.next.Load()
	for cur := r.next; cur != nil; {
		curRef := cur.next.Load()
		if !curRef.marked {
			if !f(cur) {
				return
			}
		}
		cur = curRef.next
	}
}

// snapshotAfter appends to a.q the announcement nodes following p in list
// order (newest→oldest), including marked ones — the paper's sequence Q
// (lines 210–214) prepends them, so "earliest in Q" is the LAST element
// here. The result is arena-backed scratch: valid only until a.release.
func snapshotAfter(p *PredNode, a *arena) []*PredNode {
	r := p.next.Load()
	for cur := r.next; cur != nil; {
		a.q = append(a.q, cur)
		cur = cur.next.Load().next
	}
	return a.q
}

// len counts unmarked nodes (metrics; O(n)).
func (l *pall) len() int {
	n := 0
	l.forEach(func(*PredNode) bool { n++; return true })
	return n
}
