package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/alist"
	"repro/internal/ebr"
	"repro/internal/unode"
)

// PredNode is a predecessor announcement (paper lines 105–108). One is
// created per PredHelper instance — standalone Predecessor operations make
// one, Delete operations make two (their embedded predecessors) that stay
// announced until the Delete finishes.
//
// Like alist.Cell, a PredNode embeds the successor references whose
// lifetime is bounded by the node's own: selfRef/linkRef are written only
// while the node is private to the announcing goroutine (a failed CAS
// publishes nothing); markRef is written only by the owner (pall.remove
// is owner-only). Unlink refs are NOT embedded — an installed unlink ref
// lives in the predecessor's next field until an arbitrarily later CAS
// displaces it, which can be long after the unlinked node recycles — so
// they come from predRefPool with the displacing CAS as their retire
// point, exactly as in alist.
//
// PredNodes are pooled under epoch-based reclamation. The references that
// outlive the announcement window — P-ALL snapshots, the preds table of the
// Definition 5.1 recovery, and a DEL node's DelPredNode link — are all
// obtained by a pinned operation starting from state it reached under its
// own pin (the P-ALL head, or a DEL node met in its own RU-ALL traversal,
// which implies the owning Delete had not yet removed its announcements
// when the pin began), so the node's retire orders after every such pin
// and recycling waits for them all. See DESIGN.md §Memory & reclamation.
type PredNode struct {
	// key is the predecessor operation's input key y (immutable).
	key int64
	// notifyHead is the insert-only notify list (paper line 107); update
	// operations prepend notify nodes with CAS.
	notifyHead atomic.Pointer[notifyNode]
	// ruallPos publishes the RU-ALL cell this operation is currently
	// visiting (paper line 108). Written only by the owner via atomic copy;
	// read by updaters computing notify thresholds.
	ruallPos alist.Pos

	// next/marked form the P-ALL link (lock-free list with logical
	// deletion; insertions only at the head).
	next atomic.Pointer[predRef]

	selfRef predRef // initial successor ref; written pre-publication
	linkRef predRef // {next: this node}; constant content
	markRef predRef // owner-written marked ref
}

type predRef struct {
	next   *PredNode
	marked bool
	// pooled marks standalone unlink refs from predRefPool; a displaced
	// pooled ref is retired by the displacing CAS winner (embedded refs
	// die with their node).
	pooled bool
}

// predRefPool recycles the standalone unlink references cleanup installs;
// same lifecycle as alist's refPool.
var predRefPool = sync.Pool{New: func() any { return new(predRef) }}

// newPredUnlinkRef draws a pooled ref for an unlink CAS; private until
// that CAS publishes it.
func newPredUnlinkRef(next *PredNode) *predRef {
	r := predRefPool.Get().(*predRef)
	r.next = next
	r.marked = false
	r.pooled = true
	return r
}

// Recycle implements ebr.Recyclable for pooled unlink refs.
func (r *predRef) Recycle() {
	r.next = nil
	predRefPool.Put(r)
}

// retireDisplacedPredRef retires the reference a successful next-field CAS
// just displaced, if pooled. A nil slot leaves it to the GC.
func retireDisplacedPredRef(r *predRef, s *ebr.Slot) {
	if r.pooled && s != nil {
		s.Retire(r)
	}
}

// Key returns the announced key (tests and trieviz).
func (p *PredNode) Key() int64 { return p.key }

// notifyNode is one notification (paper lines 109–113). All fields are
// immutable once the node is published by the CAS in sendNotification.
// Nodes are drawn from per-operation slabs (notify.go); slab points back to
// the block this node lives in so PredNode.Recycle can release it.
type notifyNode struct {
	key             int64
	updateNode      *unode.UpdateNode
	updateNodeMax   *unode.UpdateNode // INS node with largest key < pNode.key seen in U-ALL; may be nil (⊥)
	notifyThreshold int64
	next            *notifyNode
	slab            *notifySlab // owning slab; nil for directly constructed nodes (tests)
}

// predNodePool recycles announcement nodes under EBR grace periods.
var predNodePool = sync.Pool{New: func() any { return new(PredNode) }}

// newPredNode builds an announcement for key y with ruallPos pointing at
// the RU-ALL head sentinel (key +∞), per paper line 108. Allocation-free in
// steady state: the node comes from the EBR-guarded pool (the position slot
// interns the head's resolved cell). The node is private until pall.insert
// publishes it, so plain writes re-arm the embedded refs and the one-shot
// claim, whose state survived the previous incarnation.
func newPredNode(y int64, ruallHead *alist.Cell) *PredNode {
	p := predNodePool.Get().(*PredNode)
	p.key = y
	p.ruallPos.Init(ruallHead)
	p.selfRef = predRef{}
	p.markRef = predRef{}
	p.linkRef.next = p
	p.next.Store(&p.selfRef)
	return p
}

// Recycle implements ebr.Recyclable: called once per retired node after its
// grace period, when no pinned operation can still reach it. It releases
// the node's notifications back to their slabs (notify.go) — safe for the
// same reason the node itself is: the notify list is only reachable through
// the node.
func (p *PredNode) Recycle() {
	for n := p.notifyHead.Load(); n != nil; {
		next := n.next
		if n.slab != nil {
			n.slab.release()
		}
		n = next
	}
	p.notifyHead.Store(nil)
	predNodePool.Put(p)
}

// pall is the predecessor announcement list: a lock-free linked list with
// head insertion and logical deletion. The zero value must be initialized
// with init.
type pall struct {
	head PredNode // sentinel; never marked
}

func (l *pall) init() {
	l.head.next.Store(&l.head.selfRef)
}

// insert links n at the head of the list. Allocation-free: both published
// refs are embedded in n and written before the linking CAS publishes
// them. s is the caller's pin, used to retire a pooled unlink ref the
// linking CAS displaces from the head.
func (l *pall) insert(n *PredNode, s *ebr.Slot) {
	for {
		r := l.head.next.Load()
		n.selfRef.next = r.next
		n.next.Store(&n.selfRef)
		if l.head.next.CompareAndSwap(r, &n.linkRef) {
			retireDisplacedPredRef(r, s)
			return
		}
	}
}

// remove marks n deleted and physically unlinks marked nodes. Owner-only
// (each operation removes exactly its own announcements), which is what
// makes the embedded markRef single-writer; removing a node twice is a
// harmless no-op. s is the caller's pin, used to retire unlinked nodes.
func (l *pall) remove(n *PredNode, s *ebr.Slot) {
	for {
		r := n.next.Load()
		if r.marked {
			break
		}
		n.markRef.next = r.next
		n.markRef.marked = true
		if n.next.CompareAndSwap(r, &n.markRef) {
			retireDisplacedPredRef(r, s)
			break
		}
	}
	l.cleanup(s)
}

// cleanup unlinks every marked node it can reach, retiring each on s (the
// unlink CAS is the unique retire point: its success proves pred was
// unmarked — hence reachable — at that instant, exactly as in
// alist.search). Restarting on CAS failure keeps it lock-free; the list
// length is bounded by point contention so the scan is O(ċ).
func (l *pall) cleanup(s *ebr.Slot) {
retry:
	for {
		pred := &l.head
		predRef0 := pred.next.Load()
		if predRef0.marked {
			return // unreachable for the sentinel, defensive
		}
		cur := predRef0.next
		for cur != nil {
			curRef := cur.next.Load()
			if curRef.marked {
				ur := newPredUnlinkRef(curRef.next)
				if !pred.next.CompareAndSwap(predRef0, ur) {
					ur.Recycle() // never published
					continue retry
				}
				retireDisplacedPredRef(predRef0, s)
				if s != nil {
					s.Retire(cur)
				}
				predRef0 = pred.next.Load()
				if predRef0.marked {
					continue retry
				}
				cur = predRef0.next
				continue
			}
			pred, predRef0 = cur, curRef
			cur = curRef.next
		}
		return
	}
}

// empty reports whether the list has no nodes at all (marked nodes count
// as present — the check is conservative). One atomic load; callers use it
// to skip work whose only consumers would be announced predecessors.
func (l *pall) empty() bool {
	return l.head.next.Load().next == nil
}

// forEach visits the unmarked nodes from newest to oldest, stopping early if
// f returns false.
func (l *pall) forEach(f func(*PredNode) bool) {
	r := l.head.next.Load()
	for cur := r.next; cur != nil; {
		curRef := cur.next.Load()
		if !curRef.marked {
			if !f(cur) {
				return
			}
		}
		cur = curRef.next
	}
}

// snapshotAfter appends to a.q the announcement nodes following p in list
// order (newest→oldest), including marked ones — the paper's sequence Q
// (lines 210–214) prepends them, so "earliest in Q" is the LAST element
// here. The result is arena-backed scratch: valid only until a.release.
func snapshotAfter(p *PredNode, a *arena) []*PredNode {
	r := p.next.Load()
	for cur := r.next; cur != nil; {
		a.q = append(a.q, cur)
		cur = cur.next.Load().next
	}
	return a.q
}

// len counts unmarked nodes (metrics; O(n)).
func (l *pall) len() int {
	n := 0
	l.forEach(func(*PredNode) bool { n++; return true })
	return n
}
