//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. Alloc-count
// gates skip under race: sync.Pool deliberately drops a fraction of Puts
// when racing (to widen the interleavings it can catch), so "steady state
// draws from pools" is unobservable there by design.
const raceEnabled = true
