package core_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLockFreeProgress (experiment C4, correctness side): a Delete frozen
// MID-OPERATION — suspended inside DeleteBinaryTrie via the engine's CAS
// hook, while it owns the announcement and latest-list state for its key —
// must not prevent any other operation from completing, including updates
// and predecessor queries that touch the very subtree the frozen delete was
// modifying. This is the operational content of lock-freedom; under a lock
// the frozen operation would hold the structure hostage.
func TestLockFreeProgress(t *testing.T) {
	tr := newTrie(t, 16)
	tr.Insert(3)

	frozen := make(chan struct{})  // closed when the victim is parked
	release := make(chan struct{}) // closed to let the victim resume
	var claimed atomic.Bool        // non-blocking: later hook callers pass through
	tr.Bits().SetBeforeCASHook(func(node int64, attempt int) {
		if claimed.CompareAndSwap(false, true) {
			close(frozen)
			<-release
		}
	})

	var victimDone sync.WaitGroup
	victimDone.Add(1)
	go func() {
		defer victimDone.Done()
		tr.Delete(3) // parks inside DeleteBinaryTrie at its first CAS
	}()
	<-frozen

	// With the victim frozen mid-update, every other operation must finish.
	var completed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 200; i++ {
				k := (base*5 + i) % 16
				tr.Insert(k)
				tr.Predecessor(15)
				tr.Search(k)
				if k != 3 {
					tr.Delete(k)
				}
				completed.Add(4)
			}
		}(int64(g))
	}
	progressDone := make(chan struct{})
	go func() {
		defer close(progressDone)
		wg.Wait()
	}()
	select {
	case <-progressDone:
		// Lock-free: everyone finished while the victim stayed frozen.
	case <-time.After(30 * time.Second):
		t.Fatalf("operations blocked behind a frozen delete: only %d completed",
			completed.Load())
	}

	close(release)
	victimDone.Wait()
	tr.Bits().SetBeforeCASHook(nil)

	// The resumed victim must leave the structure consistent: its delete of
	// key 3 raced with our concurrent Insert(3) churn, so key 3 is either
	// present or absent, but the trie must answer exactly either way.
	present := map[int64]bool{}
	if tr.Search(3) {
		present[3] = true
	}
	checkQuiescent(t, tr, present)
}
