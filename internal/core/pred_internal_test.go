package core

import (
	"testing"

	"repro/internal/alist"
	"repro/internal/unode"
)

// White-box tests for the Predecessor internals: the notification
// acceptance rules (paper lines 218–227), the ⊥-case recovery (lines
// 230–251, Definition 5.1) and its helpers. Randomized stress rarely drives
// these paths, so each rule gets a crafted scenario here.

// bottomCaseScratch runs bottomCase on a private arena (test convenience).
func (t *Trie) bottomCaseScratch(pNode *PredNode, q []*PredNode, druall []*unode.UpdateNode, y int64) int64 {
	a := getArena()
	defer a.release()
	return t.bottomCase(pNode, q, druall, y, a)
}

// dropScratch runs dropSupersededDels on a private arena.
func dropScratch(l []*unode.UpdateNode) []*unode.UpdateNode {
	a := getArena()
	defer a.release()
	return dropSupersededDels(l, a)
}

func mustNew(t *testing.T, u int64) *Trie {
	t.Helper()
	tr, err := New(u)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func insNode(key int64) *unode.UpdateNode {
	n := unode.NewIns(key)
	n.Status.Store(unode.StatusActive)
	return n
}

func delNode(key int64, b int, delPred, delPred2 int64, pn *PredNode) *unode.UpdateNode {
	n := unode.NewDel(key, b)
	n.Status.Store(unode.StatusActive)
	n.DelPred = delPred
	n.DelPredNode = pn
	if delPred2 != unode.NoKey {
		n.DelPred2.Store(delPred2)
	}
	return n
}

// pushNotify prepends a notify node, mimicking sendNotification.
func pushNotify(p *PredNode, u *unode.UpdateNode, threshold int64, uMax *unode.UpdateNode) {
	n := &notifyNode{
		key:             u.Key,
		updateNode:      u,
		updateNodeMax:   uMax,
		notifyThreshold: threshold,
		next:            p.notifyHead.Load(),
	}
	p.notifyHead.Store(n)
}

func TestMaxInsBelow(t *testing.T) {
	a, b, c := insNode(2), insNode(5), insNode(9)
	ins := []*unode.UpdateNode{a, b, c}
	if got := maxInsBelow(ins, 10); got != c {
		t.Errorf("maxInsBelow(10) = %v, want key 9", got)
	}
	if got := maxInsBelow(ins, 9); got != b {
		t.Errorf("maxInsBelow(9) = %v, want key 5", got)
	}
	if got := maxInsBelow(ins, 2); got != nil {
		t.Errorf("maxInsBelow(2) = %v, want nil", got)
	}
	if got := maxInsBelow(nil, 100); got != nil {
		t.Errorf("maxInsBelow(nil) = %v, want nil", got)
	}
}

func TestDropSupersededDels(t *testing.T) {
	b := 4
	d1 := delNode(3, b, -1, unode.NoKey, nil)
	d2 := delNode(3, b, -1, unode.NoKey, nil)
	i1 := insNode(3)
	i2 := insNode(7)
	// Two DELs with key 3: only the later survives; INS nodes always stay.
	got := dropScratch([]*unode.UpdateNode{d1, i1, d2, i2})
	want := []*unode.UpdateNode{i1, d2, i2}
	if len(got) != len(want) {
		t.Fatalf("got %d nodes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, got[i], want[i])
		}
	}
	// Paper line 243 drops a DEL whenever ANY later node in L shares its
	// key — including an INS: the newer hand-off supersedes the edge.
	d4 := delNode(5, b, -1, unode.NoKey, nil)
	i4 := insNode(5)
	got = dropScratch([]*unode.UpdateNode{d4, i4})
	if len(got) != 1 || got[0] != i4 {
		t.Fatalf("DEL before same-key INS should drop: %v", got)
	}
	// But a trailing DEL survives.
	got = dropScratch([]*unode.UpdateNode{i4, d4})
	if len(got) != 2 || got[0] != i4 || got[1] != d4 {
		t.Fatalf("trailing DEL should survive: %v", got)
	}
}

func TestRuallPosKeySentinels(t *testing.T) {
	tr := mustNew(t, 8)
	p := newPredNode(5, tr.ruall.Head())
	if got := ruallPosKey(p); got != alist.KeyPosInf {
		t.Errorf("fresh position key = %d, want +inf", got)
	}
	var empty PredNode
	if got := ruallPosKey(&empty); got != alist.KeyPosInf {
		t.Errorf("uninitialized position key = %d, want +inf (defensive)", got)
	}
}

func TestCollectNotificationsRules(t *testing.T) {
	tr := mustNew(t, 16)
	p := newPredNode(10, tr.ruall.Head())

	insAccepted := insNode(4)                             // threshold 4 ≤ key 4 → accepted
	insRejected := insNode(5)                             // threshold 7 > key 5 → rejected
	delAccepted := delNode(6, tr.b, -1, unode.NoKey, nil) // threshold 3 < 6 → accepted
	delRejected := delNode(6, tr.b, -1, unode.NoKey, nil) // threshold 6 = 6 → rejected (strict)
	tooBig := insNode(12)                                 // key ≥ y → ignored entirely

	pushNotify(p, insAccepted, 4, nil)
	pushNotify(p, insRejected, 7, nil)
	pushNotify(p, delAccepted, 3, nil)
	pushNotify(p, delRejected, 6, nil)
	pushNotify(p, tooBig, 0, nil)

	a := getArena()
	defer a.release()
	inotify, dnotify := collectNotifications(p, 10, nil, nil, a)
	if len(inotify) != 1 || inotify[0] != insAccepted {
		t.Errorf("inotify = %v, want [INS(4)]", inotify)
	}
	if len(dnotify) != 1 || dnotify[0] != delAccepted {
		t.Errorf("dnotify = %v, want [DEL(6) accepted]", dnotify)
	}
}

func TestCollectNotificationsForwardsUpdateNodeMax(t *testing.T) {
	tr := mustNew(t, 16)
	p := newPredNode(10, tr.ruall.Head())

	maxIns := insNode(8)
	sender := insNode(2)
	// Threshold −∞ (we finished the RU-ALL) and sender unseen there →
	// updateNodeMax is vouched for (Figure 9).
	pushNotify(p, sender, alist.KeyNegInf, maxIns)
	a := getArena()
	inotify, _ := collectNotifications(p, 10, nil, nil, a)
	if len(inotify) != 2 || inotify[0] != sender || inotify[1] != maxIns {
		t.Fatalf("inotify = %v, want sender + forwarded max", inotify)
	}

	// If the sender WAS seen in the RU-ALL, the forwarding is suppressed.
	p2 := newPredNode(10, tr.ruall.Head())
	a.release()
	pushNotify(p2, sender, alist.KeyNegInf, maxIns)
	a2 := getArena()
	defer a2.release()
	inotify, _ = collectNotifications(p2, 10, []*unode.UpdateNode{sender}, nil, a2)
	for _, n := range inotify {
		if n == maxIns {
			t.Fatal("updateNodeMax forwarded despite sender ∈ Iruall")
		}
	}
}

// TestBottomCaseDirectHandoff is the paper's simplest ⊥ story: Delete(5) is
// the only interference; its first embedded predecessor returned 3, which
// is still present. X = {3}, no edges → answer 3.
func TestBottomCaseDirectHandoff(t *testing.T) {
	tr := mustNew(t, 16)
	pNode := newPredNode(10, tr.ruall.Head())
	d5 := delNode(5, tr.b, 3, 3, nil)
	got := tr.bottomCaseScratch(pNode, nil, []*unode.UpdateNode{d5}, 10)
	if got != 3 {
		t.Errorf("bottomCase = %d, want 3", got)
	}
}

// TestBottomCaseChain follows delete hand-offs: Druall = {DEL(7)} whose
// first embedded predecessor saw 6; DEL(6) notified us (accepted into L2 by
// threshold ≥ key) with delPred2 = 4; DEL(4) notified us with delPred2 = 2.
// Chain 6→4→2, sink 2, not deleted → answer 2.
func TestBottomCaseChain(t *testing.T) {
	tr := mustNew(t, 16)
	pNode := newPredNode(10, tr.ruall.Head())
	d7 := delNode(7, tr.b, 6, 5, nil)
	d6 := delNode(6, tr.b, 5, 4, nil)
	d4 := delNode(4, tr.b, 3, 2, nil)
	// Notifications arrive newest-first; thresholds ≥ key put them in L2.
	pushNotify(pNode, d4, 8, nil)
	pushNotify(pNode, d6, 8, nil)
	got := tr.bottomCaseScratch(pNode, nil, []*unode.UpdateNode{d7}, 10)
	if got != 2 {
		t.Errorf("bottomCase = %d, want 2 (chain 6→4→2)", got)
	}
}

// TestBottomCaseDeletedSinkExcluded: the chased sink is itself a Druall
// delete's key, so it is excluded (line 250) and the next-best start wins.
func TestBottomCaseDeletedSinkExcluded(t *testing.T) {
	tr := mustNew(t, 16)
	pNode := newPredNode(10, tr.ruall.Head())
	// DEL(7).delPred = 5, but 5 is also being deleted (in Druall) with
	// delPred 2: chasing 5's edge — none in L — leaves sink 5, excluded;
	// start 2 survives as its own sink.
	d7 := delNode(7, tr.b, 5, unode.NoKey, nil)
	d5 := delNode(5, tr.b, 2, unode.NoKey, nil)
	got := tr.bottomCaseScratch(pNode, nil, []*unode.UpdateNode{d7, d5}, 10)
	if got != 2 {
		t.Errorf("bottomCase = %d, want 2 (5 excluded as deleted)", got)
	}
}

// TestBottomCaseUsesEarliestEmbeddedAnnouncement: when a Druall delete's
// first embedded predecessor node appears in our announcement snapshot Q,
// its notify list (L1) supplies INS starting points.
func TestBottomCaseUsesEarliestEmbeddedAnnouncement(t *testing.T) {
	tr := mustNew(t, 16)
	pNode := newPredNode(10, tr.ruall.Head())
	pPrime := newPredNode(5, tr.ruall.Head()) // the delete's first embedded pred
	i6 := insNode(6)
	pushNotify(pPrime, i6, 0, nil) // INS(6) notified pPrime → lands in L1
	d5 := delNode(5, tr.b, -1, -1, pPrime)
	q := []*PredNode{pPrime} // pPrime was announced before us
	got := tr.bottomCaseScratch(pNode, q, []*unode.UpdateNode{d5}, 10)
	if got != 6 {
		t.Errorf("bottomCase = %d, want 6 (INS in L1)", got)
	}
}

// TestBottomCaseLine239Removal: an update node that notified BOTH pPrime
// and us is removed from L1 (line 239); if its own notification was
// rejected for L2 (threshold < key), it must not contribute an edge.
func TestBottomCaseLine239Removal(t *testing.T) {
	tr := mustNew(t, 16)
	pNode := newPredNode(10, tr.ruall.Head())
	pPrime := newPredNode(5, tr.ruall.Head())
	// DEL(6) with delPred2=4 notified pPrime (→ L1) and also notified us
	// with threshold 3 < 6 (→ not L2, and removed from L1 by line 239).
	d6 := delNode(6, tr.b, 5, 4, nil)
	pushNotify(pPrime, d6, 0, nil)
	pushNotify(pNode, d6, 3, nil)
	d7 := delNode(7, tr.b, 6, unode.NoKey, pPrime)
	q := []*PredNode{pPrime}
	got := tr.bottomCaseScratch(pNode, q, []*unode.UpdateNode{d7}, 10)
	// Start X = {6} (delPred of d7). d6's edge 6→4 is NOT in the graph
	// (removed from L1, rejected from L2), so 6 itself is the sink.
	if got != 6 {
		t.Errorf("bottomCase = %d, want 6 (edge suppressed by line 239)", got)
	}
}

// TestBottomCaseSupersededDelEdgeIgnored: two DEL nodes with the same key
// in L — only the newest's delPred2 edge counts (line 243).
func TestBottomCaseSupersededDelEdgeIgnored(t *testing.T) {
	tr := mustNew(t, 16)
	pNode := newPredNode(10, tr.ruall.Head())
	dOld := delNode(6, tr.b, 5, 1, nil) // stale hand-off to 1
	dNew := delNode(6, tr.b, 5, 4, nil) // current hand-off to 4
	// Newest-first list: dNew pushed last so it is at the head; traversal
	// sees dNew then dOld; L2 order (oldest-first) = [dOld, dNew]; line
	// 243 keeps only the LAST DEL per key = dNew.
	pushNotify(pNode, dOld, 8, nil)
	pushNotify(pNode, dNew, 8, nil)
	d7 := delNode(7, tr.b, 6, unode.NoKey, nil)
	got := tr.bottomCaseScratch(pNode, nil, []*unode.UpdateNode{d7}, 10)
	if got != 4 {
		t.Errorf("bottomCase = %d, want 4 (stale edge 6→1 ignored)", got)
	}
}

// TestBottomCaseEmptyReturnsMinusOne: defensive — with no starting points
// the recovery yields −1 rather than inventing a key.
func TestBottomCaseEmptyReturnsMinusOne(t *testing.T) {
	tr := mustNew(t, 16)
	pNode := newPredNode(10, tr.ruall.Head())
	d5 := delNode(5, tr.b, -1, unode.NoKey, nil)
	got := tr.bottomCaseScratch(pNode, nil, []*unode.UpdateNode{d5}, 10)
	if got != -1 {
		t.Errorf("bottomCase = %d, want -1", got)
	}
}

// TestTraverseRUallClassification drives the real RU-ALL: active
// first-activated nodes below y are classified; inactive and superseded
// ones are skipped; the position slot ends at −∞.
func TestTraverseRUallClassification(t *testing.T) {
	tr := mustNew(t, 32)
	mk := func(key int64, kind unode.Kind, active, latest bool) *unode.UpdateNode {
		var n *unode.UpdateNode
		if kind == unode.Ins {
			n = unode.NewIns(key)
		} else {
			n = unode.NewDel(key, tr.b)
		}
		if active {
			n.Status.Store(unode.StatusActive)
		}
		if latest {
			tr.latest[key].Store(n)
		}
		tr.ruall.Insert(n, nil)
		return n
	}
	iGood := mk(3, unode.Ins, true, true)
	dGood := mk(7, unode.Del, true, true)
	mk(5, unode.Ins, false, true) // inactive: skipped
	mk(9, unode.Ins, true, false) // not first activated: skipped
	mk(20, unode.Del, true, true) // key ≥ y: skipped

	pNode := newPredNode(15, tr.ruall.Head())
	a := getArena()
	defer a.release()
	ins, del := tr.traverseRUall(pNode, a, nil)
	if len(ins) != 1 || ins[0] != iGood {
		t.Errorf("ins = %v, want [INS(3)]", ins)
	}
	if len(del) != 1 || del[0] != dGood {
		t.Errorf("del = %v, want [DEL(7)]", del)
	}
	if got := ruallPosKey(pNode); got != alist.KeyNegInf {
		t.Errorf("final position = %d, want -inf", got)
	}
}

// TestSnapshotAfterOrder: Q must come back newest→oldest so "earliest in
// Q" is the last element.
func TestSnapshotAfterOrder(t *testing.T) {
	tr := mustNew(t, 8)
	oldest := newPredNode(1, tr.ruall.Head())
	middle := newPredNode(2, tr.ruall.Head())
	newest := newPredNode(3, tr.ruall.Head())
	tr.pall.insert(oldest, nil)
	tr.pall.insert(middle, nil)
	tr.pall.insert(newest, nil)
	a := getArena()
	defer a.release()
	q := snapshotAfter(newest, a)
	if len(q) != 2 || q[0] != middle || q[1] != oldest {
		t.Fatalf("snapshotAfter order wrong: %v", q)
	}
	if got := tr.pall.len(); got != 3 {
		t.Errorf("pall.len = %d, want 3", got)
	}
	tr.pall.remove(middle, nil)
	if got := tr.pall.len(); got != 2 {
		t.Errorf("pall.len after remove = %d, want 2", got)
	}
	tr.pall.remove(middle, nil) // double remove is a no-op
	if got := tr.pall.len(); got != 2 {
		t.Errorf("pall.len after double remove = %d, want 2", got)
	}
}
