package core_test

import "testing"

// TestFigure5 reproduces the structure of paper Figure 5: the lock-free
// binary trie representing S = {0, 1, 3} over U = {0,…,3}. The first
// activated update node of latest[0], latest[1], latest[3] is an INS node,
// latest[2]'s is a DEL node, and the interpreted bits follow.
func TestFigure5(t *testing.T) {
	tr := newTrie(t, 4)
	for _, k := range []int64{0, 1, 3} {
		tr.Insert(k)
	}
	wantMembers := map[int64]bool{0: true, 1: true, 2: false, 3: true}
	for k, want := range wantMembers {
		if got := tr.Search(k); got != want {
			t.Errorf("Search(%d) = %v, want %v", k, got, want)
		}
	}
	bits := tr.Bits()
	wantBits := map[int64]int{
		1: 1,                   // root
		2: 1,                   // covers {0,1}
		3: 1,                   // covers {2,3}
		4: 1, 5: 1, 6: 0, 7: 1, // leaves 0..3
	}
	for idx, want := range wantBits {
		if got := bits.InterpretedBit(idx); got != want {
			t.Errorf("InterpretedBit(%d) = %d, want %d", idx, got, want)
		}
	}
	// Figure 5 queries that follow from the structure.
	preds := map[int64]int64{0: -1, 1: 0, 2: 1, 3: 1}
	for y, want := range preds {
		if got := tr.Predecessor(y); got != want {
			t.Errorf("Predecessor(%d) = %d, want %d", y, got, want)
		}
	}
}
