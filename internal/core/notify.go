package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/alist"
	"repro/internal/unode"
)

// notifySlabSize is the number of notify nodes per slab: large enough that
// a notifying update amortizes the pool round-trip across the announced
// predecessors it notifies, small enough that a mostly-unused slab pinned
// by one long-lived notification wastes little.
const notifySlabSize = 8

// notifySlab is a block of notify nodes drawn by one operation at a time
// (the arena holds it; used is the owner-only draw cursor). live counts the
// published nodes plus one hold for the drawing operation; the last release
// returns the slab to the pool. A published node is released only by
// PredNode.Recycle — after the announcement's grace period — so a slab
// re-issues nodes only when no pinned operation can reach any of them.
type notifySlab struct {
	nodes [notifySlabSize]notifyNode
	used  int
	live  atomic.Int32
}

var notifySlabPool = sync.Pool{New: func() any { return new(notifySlab) }}

func getNotifySlab() *notifySlab {
	s := notifySlabPool.Get().(*notifySlab)
	s.used = 0
	s.live.Store(1) // the drawing operation's hold
	return s
}

// release drops one reference (a recycled notification, or the drawing
// operation's hold at arena release); the last one recycles the slab.
func (s *notifySlab) release() {
	if s.live.Add(-1) == 0 {
		notifySlabPool.Put(s)
	}
}

// traverseUall collects the update nodes with key < x that are announced in
// the U-ALL and currently first activated in their latest lists (paper
// lines 137–145). INS nodes are appended to a.iuall, DEL nodes to a.duall —
// arena-backed scratch, valid until a.release. Keys of ins are in S at some
// configuration during the traversal, keys of del are absent at some
// configuration (Lemma 5.16).
func (t *Trie) traverseUall(x int64, a *arena) (ins, del []*unode.UpdateNode) {
	steps := int64(0)
	for c := t.uall.Head().Next(); c != nil && c.Key < x; c = c.Next() {
		steps++
		u := c.Upd
		if u == nil {
			continue // sentinel
		}
		if u.Status.Load() != unode.StatusInactive && t.firstActivated(u) {
			if u.Kind == unode.Ins {
				a.iuall = append(a.iuall, u)
			} else {
				a.duall = append(a.duall, u)
			}
		}
	}
	if t.stats != nil {
		t.stats.UallTraversalSteps.Add(steps)
	}
	return a.iuall, a.duall
}

// notifyPredOps notifies every announced predecessor operation about uNode
// (paper lines 146–155). It first scans the whole U-ALL so that each
// notification can carry updateNodeMax — the INS node with the largest key
// below the predecessor's key — which covers inserts that are linearized
// after the predecessor finished its own U-ALL traversal (Figure 9). It
// stops as soon as uNode is no longer the first activated node for its key.
func (t *Trie) notifyPredOps(uNode *unode.UpdateNode) {
	// With no predecessor announced there is no one to notify: the U-ALL
	// scan's only consumer is the loop below, and forEach takes a single
	// head snapshot anyway, so reading the head here — a few instructions
	// earlier inside the same execution window — is the same linearization
	// with the dead scan (and its arena round-trip) skipped. Predecessors
	// that announce after this read are exactly those that would have
	// missed forEach's snapshot too; they find uNode in their own U-ALL
	// traversal instead.
	if t.pall.empty() {
		return
	}
	a := getArena()
	defer a.release()
	ins, _ := t.traverseUall(alist.KeyPosInf, a) // line 147
	t.pall.forEach(func(pNode *PredNode) bool {
		if !t.firstActivated(uNode) { // line 149
			return false
		}
		n := a.notifyNode()
		n.key = uNode.Key
		n.updateNode = uNode
		n.updateNodeMax = maxInsBelow(ins, pNode.key)
		n.notifyThreshold = ruallPosKey(pNode)
		return t.sendNotification(n, pNode) // line 155
	})
}

// ruallPosKey reads the key of the RU-ALL cell the predecessor operation is
// currently visiting (paper line 154); +∞ before its traversal starts, −∞
// after it finishes.
func ruallPosKey(pNode *PredNode) int64 {
	cell := pNode.ruallPos.Read()
	if cell == nil {
		return alist.KeyPosInf // defensive: not yet initialized
	}
	return cell.Key
}

// maxInsBelow returns the INS node with the largest key strictly below
// bound, or nil (the paper's ⊥) if none (paper line 153).
func maxInsBelow(ins []*unode.UpdateNode, bound int64) *unode.UpdateNode {
	var best *unode.UpdateNode
	for _, n := range ins {
		if n.Key < bound && (best == nil || n.Key > best.Key) {
			best = n
		}
	}
	return best
}

// sendNotification prepends nNode to pNode's notify list with CAS (paper
// lines 156–161), re-validating that the update node is still first
// activated before every attempt. Returns false if the sender should stop
// notifying (the drawn node stays unpublished; its slab slot is simply
// unused until the slab's other references drain).
func (t *Trie) sendNotification(nNode *notifyNode, pNode *PredNode) bool {
	for {
		head := pNode.notifyHead.Load()
		nNode.next = head
		if !t.firstActivated(nNode.updateNode) { // line 160
			return false
		}
		if pNode.notifyHead.CompareAndSwap(head, nNode) { // line 161
			if nNode.slab != nil {
				// The published node now holds its slab until the owning
				// announcement recycles (we are still pinned, so this
				// cannot race the slab's other releases reaching zero).
				nNode.slab.live.Add(1)
			}
			if t.stats != nil {
				t.stats.Notifications.Add(1)
			}
			return true
		}
	}
}
