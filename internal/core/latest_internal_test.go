package core

import (
	"sync"
	"testing"

	"repro/internal/unode"
)

// White-box tests for the §5 latest-list helpers (paper lines 116–136):
// FindLatest, FirstActivated and HelpActivate, including the inactive-node
// windows that black-box tests cannot pin down.

func TestLoadLatestMaterializesDummy(t *testing.T) {
	tr := mustNew(t, 8)
	n := tr.loadLatest(3)
	if n == nil || !n.DummyNode || n.Kind != unode.Del || n.Key != 3 {
		t.Fatalf("materialized node = %v, want dummy DEL(3)", n)
	}
	if !n.Active() {
		t.Error("dummy must be active")
	}
	if got := tr.loadLatest(3); got != n {
		t.Error("second load must return the same dummy")
	}
	if got := tr.latest[3].Load(); got != n {
		t.Error("dummy not installed in latest[3]")
	}
}

func TestFindLatestSkipsInactiveHead(t *testing.T) {
	tr := mustNew(t, 8)
	active := unode.NewIns(2)
	active.Status.Store(unode.StatusActive)
	inactive := unode.NewDel(2, tr.b)
	inactive.LatestNext.Store(active)
	tr.latest[2].Store(inactive)

	// The head is inactive: FindLatest must return the activated second
	// node (paper line 120).
	if got := tr.findLatest(2); got != active {
		t.Fatalf("findLatest = %v, want the active INS behind the head", got)
	}

	// Once the head activates and resets latestNext, it is the answer.
	inactive.Status.Store(unode.StatusActive)
	inactive.LatestNext.Store(nil)
	if got := tr.findLatest(2); got != inactive {
		t.Fatalf("findLatest = %v, want the (now active) head", got)
	}
}

func TestFindLatestInactiveHeadWithNilNext(t *testing.T) {
	tr := mustNew(t, 8)
	// Head read as inactive but latestNext already ⊥ means it was
	// activated between our two reads; returning it is correct (Lemma 5.4).
	head := unode.NewIns(1)
	tr.latest[1].Store(head)
	if got := tr.findLatest(1); got != head {
		t.Fatalf("findLatest = %v, want head", got)
	}
}

func TestFirstActivatedCases(t *testing.T) {
	tr := mustNew(t, 8)
	active := unode.NewIns(4)
	active.Status.Store(unode.StatusActive)
	tr.latest[4].Store(active)
	if !tr.firstActivated(active) {
		t.Error("directly-latest active node must be first activated")
	}

	// An inactive head pointing back at it keeps it first activated
	// (paper line 127, second disjunct).
	newer := unode.NewDel(4, tr.b)
	newer.LatestNext.Store(active)
	tr.latest[4].Store(newer)
	if !tr.firstActivated(active) {
		t.Error("node behind an inactive head must still be first activated")
	}
	// Contract note (Lemmas 5.7–5.8): FirstActivated is only ever invoked
	// on ACTIVATED nodes; the paper's line 127 therefore answers true for
	// any node that IS latest[key] without re-checking its status.
	if !tr.firstActivated(newer) {
		t.Error("paper line 127: latest[key] pointer equality answers true")
	}

	// Activating the head dethrones the old node.
	newer.Status.Store(unode.StatusActive)
	newer.LatestNext.Store(nil)
	if tr.firstActivated(active) {
		t.Error("superseded node still reported first activated")
	}
	if !tr.firstActivated(newer) {
		t.Error("activated head must be first activated")
	}

	// Keys whose latest was never touched: a concrete node is never first.
	stranger := unode.NewIns(6)
	stranger.Status.Store(unode.StatusActive)
	if tr.firstActivated(stranger) {
		t.Error("node for untouched key cannot be first activated")
	}
}

func TestHelpActivateFullPath(t *testing.T) {
	tr := mustNew(t, 8)
	prevIns := unode.NewIns(5)
	prevIns.Status.Store(unode.StatusActive)
	victimDel := unode.NewDel(3, tr.b) // the DEL node the previous insert attacked
	prevIns.Target.Store(victimDel)

	dNode := unode.NewDel(5, tr.b)
	dNode.LatestNext.Store(prevIns)
	tr.latest[5].Store(dNode)

	tr.helpActivate(dNode, nil)

	if !dNode.Active() {
		t.Fatal("helpActivate must activate the node")
	}
	if dNode.LatestNext.Load() != nil {
		t.Error("latestNext must be reset to ⊥ (line 134)")
	}
	if !victimDel.Stop.Load() {
		t.Error("DEL activation must perform the stop handshake (line 133)")
	}
	if !tr.uall.Contains(dNode) || !tr.ruall.Contains(dNode) {
		t.Error("node must be announced in both lists (line 130)")
	}
	// Idempotent on an already-active node: no duplicate announcements.
	tr.helpActivate(dNode, nil)
	if got := tr.uall.Len(); got != 1 {
		t.Errorf("U-ALL length after repeat helpActivate = %d, want 1", got)
	}
}

func TestHelpActivateRemovesCompletedNode(t *testing.T) {
	tr := mustNew(t, 8)
	iNode := unode.NewIns(2)
	iNode.Completed.Store(true) // owner already finished; helper re-adds
	tr.latest[2].Store(iNode)

	tr.helpActivate(iNode, nil)

	// Lines 135–136: the helper must undo its own announcement.
	if tr.uall.Contains(iNode) || tr.ruall.Contains(iNode) {
		t.Error("completed node left announced after helpActivate")
	}
}

func TestHelpActivateIgnoresDummiesAndNil(t *testing.T) {
	tr := mustNew(t, 8)
	tr.helpActivate(nil, nil) // must not panic
	d := tr.loadLatest(1)
	tr.helpActivate(d, nil)
	if tr.uall.Len() != 0 {
		t.Error("dummy must never be announced")
	}
}

// TestConcurrentHelpActivate: many helpers racing on one inactive node
// leave exactly zero announcements once the owner completes, and the node
// ends active.
func TestConcurrentHelpActivate(t *testing.T) {
	for round := 0; round < 200; round++ {
		tr := mustNew(t, 8)
		iNode := unode.NewIns(2)
		tr.latest[2].Store(iNode)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for h := 0; h < 4; h++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				tr.helpActivate(iNode, nil)
			}()
		}
		wg.Add(1)
		go func() { // the owner's tail: complete and withdraw
			defer wg.Done()
			<-start
			iNode.Status.Store(unode.StatusActive)
			iNode.LatestNext.Store(nil)
			iNode.Completed.Store(true)
			tr.uall.Remove(iNode, nil)
			tr.ruall.Remove(iNode, nil)
		}()
		close(start)
		wg.Wait()
		// Helpers that inserted after the owner's Remove observed
		// completed=true and removed again (lines 135–136).
		if !iNode.Active() {
			t.Fatal("node not active after racing helpers")
		}
		if n := tr.uall.Len(); n != 0 {
			t.Fatalf("round %d: U-ALL length = %d, want 0", round, n)
		}
		if n := tr.ruall.Len(); n != 0 {
			t.Fatalf("round %d: RU-ALL length = %d, want 0", round, n)
		}
	}
}

// TestPallConcurrentInsertRemove: P-ALL stays consistent under concurrent
// announcement churn.
func TestPallConcurrentInsertRemove(t *testing.T) {
	tr := mustNew(t, 8)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				p := newPredNode(id, tr.ruall.Head())
				tr.pall.insert(p, nil)
				tr.pall.remove(p, nil)
			}
		}(int64(g))
	}
	wg.Wait()
	if got := tr.pall.len(); got != 0 {
		t.Fatalf("P-ALL length = %d, want 0 after churn", got)
	}
}
