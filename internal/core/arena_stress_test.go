package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestArenaBottomRecoveryStress hammers Predecessor's ⊥-case recovery —
// concurrent deletes of keys the queries see announced — to show that
// pooled scratch state never leaks across operations. Every query runs a
// full predHelper on a recycled arena; a leak (a stale Q entry, a stale
// recovery edge, an uncleared table slot) would surface either as a -race
// report on the arena's backing arrays or as an impossible answer, which
// the invariants below reject:
//
//   - key 0 is inserted once and never deleted, so Predecessor(u−1) can
//     never be −1 and Predecessor(1) must always be exactly 0;
//   - only keys in the churn band [2, 48) are ever updated, so every
//     answer must be 0 or a churn key — a stale pointer from another
//     operation's scratch would readily produce something else.
func TestArenaBottomRecoveryStress(t *testing.T) {
	// ⊥ needs a query to observe a delete mid-flight; give the scheduler
	// real parallelism even on single-core CI hosts.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	const (
		u       = int64(64)
		churnLo = int64(2)
		churnHi = int64(48)
	)
	tr := mustNew(t, u)
	stats := &Stats{}
	tr.SetStats(stats)
	tr.Insert(0) // permanent floor

	dur := 2 * time.Second
	if testing.Short() {
		dur = 300 * time.Millisecond
	}
	deadline := time.Now().Add(dur)
	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan string, 16)

	// Churners: insert/delete announced keys in a tight band so deletes
	// overlap queries (and each other — a winning Delete's two embedded
	// predecessors themselves run the recovery path).
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			k := churnLo + seed%(churnHi-churnLo)
			for !stop.Load() {
				tr.Insert(k)
				tr.Delete(k)
				k++
				if k >= churnHi {
					k = churnLo
				}
			}
		}(int64(c) * 11)
	}

	// Queriers: drive the ⊥ recovery from above the churn band and check
	// the invariants.
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				got := tr.Predecessor(u - 1)
				if got != 0 && (got < churnLo || got >= churnHi) {
					select {
					case fail <- "Predecessor(u-1) returned a key no operation ever inserted":
					default:
					}
					return
				}
				if got := tr.Predecessor(1); got != 0 {
					select {
					case fail <- "Predecessor(1) != 0 despite the permanent floor":
					default:
					}
					return
				}
			}
		}()
	}

	for time.Now().Before(deadline) && len(fail) == 0 {
		if stats.BottomCases.Load() > 0 && time.Now().Add(dur/2).After(deadline) {
			break // recovery exercised and at least half the budget spent
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	bottoms := stats.BottomCases.Load()
	t.Logf("bottom-case recoveries exercised: %d", bottoms)
	if bottoms == 0 {
		// The schedule never produced a ⊥ — possible on a starved CI
		// machine, and the crafted scenarios in pred_internal_test.go still
		// cover the recovery logic; the concurrency-leak check above ran
		// regardless.
		t.Log("warning: no ⊥ recovery triggered in this run")
	}

	// Quiesced: only the floor remains reachable below the churn band once
	// churners stop mid-cycle; drain the band and check exactness.
	for k := churnLo; k < churnHi; k++ {
		tr.Delete(k)
	}
	if got := tr.Predecessor(u - 1); got != 0 {
		t.Fatalf("after drain, Predecessor(u-1) = %d, want 0", got)
	}
	if got := tr.Len(); got != 1 {
		t.Fatalf("after drain, Len = %d, want 1", got)
	}
}
