package core

import (
	"math/rand"
	"sync"
	"testing"
)

func TestApplyBatchSequentialSemantics(t *testing.T) {
	const u = 256
	tr := mustNew(t, u)
	ref := make(map[int64]bool)
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(12)
		ops := make([]BatchOp, 0, n)
		seen := map[int64]bool{}
		for len(ops) < n {
			k := rng.Int63n(u)
			if seen[k] {
				continue
			}
			seen[k] = true
			ops = append(ops, BatchOp{Key: k, Del: rng.Intn(2) == 0})
		}
		// ApplyBatch requires ascending keys.
		for i := 1; i < len(ops); i++ {
			for j := i; j > 0 && ops[j].Key < ops[j-1].Key; j-- {
				ops[j], ops[j-1] = ops[j-1], ops[j]
			}
		}
		tr.ApplyBatch(ops)
		for _, op := range ops {
			wantWon := ref[op.Key] == op.Del // transition iff state differs
			if op.Won != wantWon {
				t.Fatalf("round %d: op %+v Won = %v, want %v", round, op, op.Won, wantWon)
			}
			if op.Del {
				delete(ref, op.Key)
			} else {
				ref[op.Key] = true
			}
		}
		// Spot-check membership and predecessors after every batch.
		for probe := 0; probe < 16; probe++ {
			k := rng.Int63n(u)
			if got := tr.Search(k); got != ref[k] {
				t.Fatalf("round %d: Search(%d) = %v, want %v", round, k, got, ref[k])
			}
			want := int64(-1)
			for c := k - 1; c >= 0; c-- {
				if ref[c] {
					want = c
					break
				}
			}
			if got := tr.Predecessor(k); got != want {
				t.Fatalf("round %d: Predecessor(%d) = %d, want %d", round, k, got, want)
			}
		}
	}
}

// TestApplyBatchLeavesListsClean checks phase 4 retires every announcement
// the batch made, including cells of dead (no-op and lost) nodes.
func TestApplyBatchLeavesListsClean(t *testing.T) {
	tr := mustNew(t, 64)
	tr.Insert(10) // the batched Insert(10) below is a phase-1 no-op
	ops := []BatchOp{{Key: 5}, {Key: 10}, {Key: 20, Del: true}, {Key: 30}}
	tr.ApplyBatch(ops)
	if tr.AnnouncedUpdates() != 0 {
		t.Fatalf("U-ALL still holds %d cells after ApplyBatch", tr.AnnouncedUpdates())
	}
	if got := tr.ruall.Len(); got != 0 {
		t.Fatalf("RU-ALL still holds %d cells after ApplyBatch", got)
	}
	if ops[0].Won != true || ops[1].Won != false || ops[2].Won != false || ops[3].Won != true {
		t.Fatalf("Won flags = %v %v %v %v, want true false false true",
			ops[0].Won, ops[1].Won, ops[2].Won, ops[3].Won)
	}
}

// TestApplyBatchAnnouncesOnce pins the announcement amortization: a batch
// of n > 1 real updates bumps the Announces counter once.
func TestApplyBatchAnnouncesOnce(t *testing.T) {
	tr := mustNew(t, 64)
	st := &Stats{}
	tr.SetStats(st)
	ops := []BatchOp{{Key: 3}, {Key: 9}, {Key: 17}, {Key: 40}}
	tr.ApplyBatch(ops)
	if got := st.Announces.Load(); got != 1 {
		t.Fatalf("Announces = %d after one 4-op batch, want 1", got)
	}
	tr.Insert(50)
	if got := st.Announces.Load(); got != 2 {
		t.Fatalf("Announces = %d after per-op insert, want 2", got)
	}
}

// TestApplyBatchConcurrentWithPerOp races batches against per-op updates
// and predecessor queries on overlapping keys, then verifies the quiescent
// state matches a per-goroutine reconstruction on disjoint ranges and that
// concurrent predecessor answers are sane.
func TestApplyBatchConcurrentWithPerOp(t *testing.T) {
	const (
		u          = int64(512)
		goroutines = 6
		rounds     = 300
	)
	tr := mustNew(t, u)
	var wg sync.WaitGroup
	finals := make([]map[int64]bool, goroutines)
	width := u / goroutines
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*977 + 1))
			lo := int64(id) * width
			final := map[int64]bool{}
			for r := 0; r < rounds; r++ {
				switch rng.Intn(3) {
				case 0: // batch on own range
					n := 2 + rng.Intn(6)
					ops := make([]BatchOp, 0, n)
					seen := map[int64]bool{}
					for len(ops) < n {
						k := lo + rng.Int63n(width)
						if seen[k] {
							continue
						}
						seen[k] = true
						ops = append(ops, BatchOp{Key: k, Del: rng.Intn(2) == 0})
					}
					for i := 1; i < len(ops); i++ {
						for j := i; j > 0 && ops[j].Key < ops[j-1].Key; j-- {
							ops[j], ops[j-1] = ops[j-1], ops[j]
						}
					}
					tr.ApplyBatch(ops)
					for _, op := range ops {
						if op.Del {
							delete(final, op.Key)
						} else {
							final[op.Key] = true
						}
					}
				case 1: // per-op on own range
					k := lo + rng.Int63n(width)
					if rng.Intn(2) == 0 {
						tr.Insert(k)
						final[k] = true
					} else {
						tr.Delete(k)
						delete(final, k)
					}
				case 2: // query anywhere (exercises traversals over batches)
					y := rng.Int63n(u)
					if p := tr.Predecessor(y); p >= y {
						t.Errorf("Predecessor(%d) = %d ≥ y", y, p)
						return
					}
				}
			}
			finals[id] = final
		}(g)
	}
	wg.Wait()
	for id, final := range finals {
		lo := int64(id) * width
		for k := lo; k < lo+width; k++ {
			if got := tr.Search(k); got != final[k] {
				t.Fatalf("quiescent Search(%d) = %v, want %v", k, got, final[k])
			}
		}
	}
}

func TestSuccessorSequential(t *testing.T) {
	const u = 128
	tr := mustNew(t, u)
	ref := make(map[int64]bool)
	rng := rand.New(rand.NewSource(3))
	check := func() {
		t.Helper()
		for y := int64(0); y < u; y++ {
			want := int64(-1)
			for c := y + 1; c < u; c++ {
				if ref[c] {
					want = c
					break
				}
			}
			if got := tr.Successor(y); got != want {
				t.Fatalf("Successor(%d) = %d, want %d", y, got, want)
			}
		}
	}
	check() // empty
	for step := 0; step < 500; step++ {
		k := rng.Int63n(u)
		if rng.Intn(2) == 0 {
			tr.Insert(k)
			ref[k] = true
		} else {
			tr.Delete(k)
			delete(ref, k)
		}
		if step%50 == 49 {
			check()
		}
	}
}
