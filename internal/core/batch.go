package core

import (
	"sync"

	"repro/internal/ebr"
	"repro/internal/unode"
)

// BatchOp is one operation of an ApplyBatch call. Key and Del are inputs;
// Won is an output, reporting whether this operation performed the
// absent→present (present→absent) transition — the same contract as
// Add/Remove, which the sharded layer's occupancy counters hang off.
type BatchOp struct {
	// Key is the operation's key.
	Key int64
	// Del selects Delete (true) or Insert (false).
	Del bool
	// Won reports, after ApplyBatch returns, whether this operation won
	// its latest[Key] CAS and became the linearization point of a state
	// transition. A no-op (inserting a present key, deleting an absent
	// one, or losing to a concurrent same-key update) reports false.
	Won bool
}

// batchScratch holds the op-local slices of one ApplyBatch call. Like the
// predecessor arena (arena.go), nothing in it is ever CAS-published, so
// pooling is ABA-safe; the update nodes the slices point at are fresh per
// call and release clears the pointers.
type batchScratch struct {
	nodes []*unode.UpdateNode // prepared nodes, ascending key order
	old   []*unode.UpdateNode // old[i]: the latest node phase 1 read for nodes[i]
	idx   []int               // nodes[i] implements ops[idx[i]]
}

// announceChunk is the announcement granularity of ApplyBatch: prepared
// nodes enter the U-ALL one InsertRun pass per announceChunk ops. See the
// phase 2+3 comment in ApplyBatch for the walk-cost bound it buys.
const announceChunk = 32

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (b *batchScratch) release() {
	for i := range b.nodes {
		b.nodes[i] = nil
		b.old[i] = nil
	}
	b.nodes, b.old, b.idx = b.nodes[:0], b.old[:0], b.idx[:0]
	batchPool.Put(b)
}

// ApplyBatch applies a batch of update operations with one announcement
// pass per list instead of one per operation — the core entrypoint of the
// combining layer (internal/combine, DESIGN.md §Combining layer).
//
// Precondition: ops is sorted by strictly ascending Key (one op per key;
// combine.SortDedup produces this form) and every key is in [0, U()).
//
// The batch deviates from the per-op protocol (Add/Remove) in exactly
// one way, confined to the U-ALL and invisible to concurrent operations:
//
//   - Announce-early: every prepared update node is linked into U-ALL in
//     a single InsertRun pass BEFORE its latest[x] CAS, instead of
//     between the CAS and the activation. An announced node that is
//     still inactive and not in any latest list is skipped by every
//     traversal (traverseUall checks the status, firstActivated fails)
//     and unreachable by helpers (helpActivate only sees latest-list
//     nodes), so widening the announced window on the early side changes
//     no observable behaviour. Each op still RETIRES its U-ALL cell at
//     the per-op protocol point (after its Completed store); cells of
//     ops that lost their CAS or proved no-ops in phase 3 — never
//     activated, so never referenced — are swept as their turn passes.
//
// Everything downstream of the announcement stays on exact per-op
// timing, and for a reason: batch-wide windows on the announcement lists
// are quadratic in batch size. A cell parked in the RU-ALL is walked,
// through the atomic-copy slot, by EVERY embedded predecessor of every
// delete in the batch (traverseRUall cannot skip cells without visiting
// them); an applied-but-unretired U-ALL cell is walked AND collected by
// every notifyPredOps full scan (it is active and firstActivated). Both
// were tried batch-wide first, and a b-op update-heavy batch paid O(b²)
// traversal steps where per-op pays O(b·ċ). With per-op windows the
// scans stay O(ċ) — the only residue of announce-early is that scans
// walk (and skip in O(1), on a status load) the still-inactive cells of
// ops the batch has not reached yet — and the amortized bound stays the
// intended O(batch·(ċ² + log u)).
//
// Everything else — the latest-list CAS, activation (the linearization
// point), interpreted-bit updates, embedded predecessors of deletes, and
// notifications — is the unmodified per-op protocol, executed op by op in
// ascending key order. An op whose CAS fails is NOT retried (same single-
// attempt contract as Add/Remove: the interfering operation reports the
// transition); its dead node is never activated, never enters the
// RU-ALL, and its U-ALL cell is swept as its turn in phase 3 passes.
//
// Each operation linearizes individually (at its own activation or at the
// findLatest read that proved it a no-op); the batch as a whole announces
// once per list pass. Wall-clock cost: O(batch · (ċ² + log u)) amortized.
func (t *Trie) ApplyBatch(ops []BatchOp) {
	switch len(ops) {
	case 0:
		return
	case 1:
		// A single op gains nothing from the batch phases; the per-op
		// path announces and retires tightly.
		if ops[0].Del {
			ops[0].Won = t.Remove(ops[0].Key)
		} else {
			ops[0].Won = t.Add(ops[0].Key)
		}
		return
	}
	b := batchPool.Get().(*batchScratch)
	defer b.release()

	// Pinning is per phase, and per OP inside phase 3 — NOT one pin for
	// the whole call. A batch-long pin parks this goroutine's epoch for
	// the entire sweep, so nothing retired during the batch (announcement
	// cells, predecessor nodes, notify slabs — everything the deletes'
	// embedded predecessors churn through) can reach its pool until the
	// batch ends: the pools drain, every op allocates fresh, and the
	// batch path pays GC costs the per-op path never sees. Per-op pin
	// granularity is exactly what Add/Remove do, and the only references
	// held across ops (b.nodes) are this batch's own freshly-allocated
	// nodes, not pool-managed memory.

	// --- Phase 1: prepare. findLatest both classifies obvious no-ops
	// (those ops linearize here, at the read) and yields the node the
	// phase-3 CAS will expect. Unpinned, like the per-op fast path.
	for i := range ops {
		ops[i].Won = false
		cur := t.findLatest(ops[i].Key)
		if ops[i].Del {
			if cur.Kind != unode.Ins {
				continue // absent: Delete is a no-op
			}
			b.nodes = append(b.nodes, unode.NewDel(ops[i].Key, t.b))
		} else {
			if cur.Kind != unode.Del {
				continue // present: Insert is a no-op
			}
			b.nodes = append(b.nodes, unode.NewIns(ops[i].Key))
		}
		b.old = append(b.old, cur)
		b.idx = append(b.idx, i)
	}
	if len(b.nodes) == 0 {
		return
	}

	// --- Phases 2+3, interleaved per chunk of announceChunk ops.
	//
	// Phase 2 (announce): one search pass links a chunk's prepared nodes
	// into the U-ALL; the nodes are inactive, hence invisible, until their
	// phase-3 activation. The RU-ALL is NOT pre-announced — each op links
	// and unlinks its own cell at the per-op protocol's points, so the
	// embedded-predecessor scans of this batch's deletes never wade
	// through the whole batch (see the quadratic-cost note above).
	//
	// Chunking bounds the one residual cost of announce-early: a full
	// U-ALL scan (every delete's two notifyPredOps calls do one — the
	// delete's own first embedded predecessor is announced in the P-ALL,
	// so the scan cannot be skipped) walks the still-inactive cells of
	// ops the batch has not reached yet. Announcing all b up front makes
	// that walk O(b) per delete; announcing announceChunk at a time caps
	// it at O(announceChunk) while a combining round of typical size
	// (≲ announceChunk; cb1 measures a mean round of ~8) still announces
	// in exactly one pass.
	//
	// Phase 3 (apply): op by op, via the per-op protocol minus its U-ALL
	// announce step. One pin per op (see above). An op that wins retires
	// its own U-ALL cell inside the apply (per-op ordering); a dead
	// node's cell — never activated, never referenced — is swept here
	// before moving on, keeping the list's active region O(ċ).
	for lo := 0; lo < len(b.nodes); lo += announceChunk {
		hi := min(lo+announceChunk, len(b.nodes))
		if t.stats != nil {
			t.stats.Announces.Add(1)
		}
		s := t.dom.Pin()
		t.uall.InsertRun(b.nodes[lo:hi], s)
		s.Unpin()

		for i := lo; i < hi; i++ {
			n := b.nodes[i]
			op := &ops[b.idx[i]]
			s := t.dom.Pin()
			if op.Del {
				op.Won = t.applyBatchedDelete(n, b.old[i], s)
			} else {
				op.Won = t.applyBatchedInsert(n, b.old[i], s)
			}
			if !op.Won {
				t.uall.Remove(n, s)
			}
			s.Unpin()
		}
	}
}

// applyBatchedInsert is Add (paper lines 162–180) for a node that is
// already announced, with dNode the DEL node phase 1's findLatest read —
// reused here as the CAS expectation instead of a second read. The per-op
// protocol itself holds one findLatest result across a wide window (Remove
// reads once, then runs a whole embedded predecessor before its CAS), so
// the only effect of the wider gap is the one the single-attempt contract
// already covers: interference in the gap fails the CAS and the op reports
// no transition. Returns whether the insert won.
func (t *Trie) applyBatchedInsert(iNode, dNode *unode.UpdateNode, s *ebr.Slot) bool {
	x := iNode.Key
	iNode.LatestNext.Store(dNode)
	if ln := dNode.LatestNext.Load(); ln != nil { // line 168
		if tg := ln.Target.Load(); tg != nil {
			tg.Stop.Store(true)
		}
	}
	dNode.LatestNext.Store(nil) // line 169
	t.bits.MarkEverInserted(x)  // summary publication contract (bitstrie)
	if !t.latest[x].CompareAndSwap(dNode, iNode) {
		t.helpActivate(t.latest[x].Load(), s) // line 171
		return false
	}
	t.ruall.Insert(iNode, s)               // line 173 (U-ALL half done in phase 2)
	iNode.Status.Store(unode.StatusActive) // line 174: linearization point
	t.count.Add(1)
	iNode.LatestNext.Store(nil)    // line 175
	t.bits.InsertBinaryTrie(iNode) // line 176
	t.notifyPredOps(iNode)         // line 177
	iNode.Completed.Store(true)    // line 178
	t.uall.Remove(iNode, s)        // line 179
	t.ruall.Remove(iNode, s)
	return true
}

// applyBatchedDelete is Remove (paper lines 181–206) for a node that is
// already announced, with iNode the INS node phase 1's findLatest read
// (the CAS expectation — see applyBatchedInsert on why one read suffices).
// The DEL node's embedded-predecessor fields are set here, before the
// publishing CAS — they are plain fields, and no reader reaches them until
// the node is activated (which orders after).
func (t *Trie) applyBatchedDelete(dNode, iNode *unode.UpdateNode, s *ebr.Slot) bool {
	x := dNode.Key
	delPred, pNode1 := t.predHelper(x, s) // line 184: first embedded predecessor
	dNode.DelPred = delPred
	dNode.DelPredNode = pNode1
	dNode.LatestNext.Store(iNode)
	iNode.LatestNext.Store(nil) // line 190
	t.notifyPredOps(iNode)      // line 191
	if !t.latest[x].CompareAndSwap(iNode, dNode) {
		t.helpActivate(t.latest[x].Load(), s) // line 193
		t.pall.remove(pNode1, s)              // line 194: never published in dNode
		return false
	}
	t.ruall.Insert(dNode, s)               // line 196 (U-ALL half done in phase 2)
	dNode.Status.Store(unode.StatusActive) // line 197: linearization point
	t.count.Add(-1)
	if tg := iNode.Target.Load(); tg != nil { // line 198
		tg.Stop.Store(true)
	}
	dNode.LatestNext.Store(nil)            // line 199
	delPred2, pNode2 := t.predHelper(x, s) // line 200
	dNode.DelPred2.Store(delPred2)         // line 201
	t.bits.DeleteBinaryTrie(dNode)         // line 202
	t.notifyPredOps(dNode)                 // line 203
	dNode.Completed.Store(true)            // line 204
	t.uall.Remove(dNode, s)                // line 205
	t.ruall.Remove(dNode, s)
	// pNode1 retires normally (line 206): the only deref of a published
	// DelPredNode is bottomCase's, on DEL nodes captured from an RU-ALL
	// traversal — and dNode's announcement cells were unlinked just above,
	// before this retire, exactly the per-op ordering the pool's epoch
	// argument needs (pall.go). (An earlier revision, whose announcement
	// windows were batch-wide, had to leak pNode1 to the GC here; with
	// per-op windows that cost is gone.)
	t.pall.remove(pNode1, s)
	t.pall.remove(pNode2, s)
	return true
}
