package core

import (
	"sync"

	"repro/internal/ebr"
	"repro/internal/unode"
)

// BatchOp is one operation of an ApplyBatch call. Key and Del are inputs;
// Won is an output, reporting whether this operation performed the
// absent→present (present→absent) transition — the same contract as
// Add/Remove, which the sharded layer's occupancy counters hang off.
type BatchOp struct {
	// Key is the operation's key.
	Key int64
	// Del selects Delete (true) or Insert (false).
	Del bool
	// Won reports, after ApplyBatch returns, whether this operation won
	// its latest[Key] CAS and became the linearization point of a state
	// transition. A no-op (inserting a present key, deleting an absent
	// one, or losing to a concurrent same-key update) reports false.
	Won bool
}

// batchScratch holds the op-local slices of one ApplyBatch call. Like the
// predecessor arena (arena.go), nothing in it is ever CAS-published, so
// pooling is ABA-safe; the update nodes the slices point at are fresh per
// call and release clears the pointers.
type batchScratch struct {
	nodes []*unode.UpdateNode // prepared nodes, ascending key order
	rev   []*unode.UpdateNode // the same nodes, descending (RU-ALL order)
	idx   []int               // nodes[i] implements ops[idx[i]]
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (b *batchScratch) release() {
	for i := range b.nodes {
		b.nodes[i] = nil
	}
	for i := range b.rev {
		b.rev[i] = nil
	}
	b.nodes, b.rev, b.idx = b.nodes[:0], b.rev[:0], b.idx[:0]
	batchPool.Put(b)
}

// ApplyBatch applies a batch of update operations with one announcement
// pass per list instead of one per operation — the core entrypoint of the
// combining layer (internal/combine, DESIGN.md §Combining layer).
//
// Precondition: ops is sorted by strictly ascending Key (one op per key;
// combine.SortDedup produces this form) and every key is in [0, U()).
//
// The batch deviates from the per-op protocol (Add/Remove) in exactly two
// ways, both invisible to concurrent operations:
//
//   - Announce-early: every prepared update node is linked into U-ALL and
//     RU-ALL in a single InsertRun pass per list BEFORE its latest[x] CAS,
//     instead of between the CAS and the activation. An announced node
//     that is still inactive and not in any latest list is skipped by
//     every traversal (traverseUall/traverseRUall check the status,
//     firstActivated fails) and unreachable by helpers (helpActivate only
//     sees latest-list nodes), so widening the announced window on the
//     early side changes no observable behaviour.
//   - Retire-late: announcement cells are removed in a single RemoveRun
//     pass per list AFTER the last operation completes, instead of per op.
//     Completed is still set per op before retirement, so helper
//     re-insertions resolve exactly as in the per-op path; the lists are
//     transiently longer by O(batch) ≤ O(concurrent publishers) = O(ċ),
//     preserving the paper's announcement-space bound.
//
// Everything between — the latest-list CAS, activation (the linearization
// point), interpreted-bit updates, embedded predecessors of deletes, and
// notifications — is the unmodified per-op protocol, executed op by op in
// ascending key order. An op whose CAS fails is NOT retried (same single-
// attempt contract as Add/Remove: the interfering operation reports the
// transition); its dead node is never activated and its cells are retired
// with the batch.
//
// Each operation linearizes individually (at its own activation or at the
// findLatest read that proved it a no-op); the batch as a whole announces
// once. Wall-clock cost: O(batch · (ċ² + log u)) amortized, with 2 list
// passes instead of 2·batch.
func (t *Trie) ApplyBatch(ops []BatchOp) {
	switch len(ops) {
	case 0:
		return
	case 1:
		// A single op gains nothing from the batch phases; the per-op
		// path announces and retires tightly.
		if ops[0].Del {
			ops[0].Won = t.Remove(ops[0].Key)
		} else {
			ops[0].Won = t.Add(ops[0].Key)
		}
		return
	}
	b := batchPool.Get().(*batchScratch)
	defer b.release()
	s := t.dom.Pin()
	defer s.Unpin()

	// --- Phase 1: prepare. findLatest both classifies obvious no-ops
	// (those ops linearize here, at the read) and yields the node the
	// phase-3 CAS will expect.
	for i := range ops {
		ops[i].Won = false
		cur := t.findLatest(ops[i].Key)
		if ops[i].Del {
			if cur.Kind != unode.Ins {
				continue // absent: Delete is a no-op
			}
			b.nodes = append(b.nodes, unode.NewDel(ops[i].Key, t.b))
		} else {
			if cur.Kind != unode.Del {
				continue // present: Insert is a no-op
			}
			b.nodes = append(b.nodes, unode.NewIns(ops[i].Key))
		}
		b.idx = append(b.idx, i)
	}
	if len(b.nodes) == 0 {
		return
	}

	// --- Phase 2: announce once. One search pass per list links every
	// prepared node; the nodes are inactive, hence invisible, until their
	// phase-3 activation.
	if t.stats != nil {
		t.stats.Announces.Add(1)
	}
	t.uall.InsertRun(b.nodes, s)
	for i := len(b.nodes) - 1; i >= 0; i-- {
		b.rev = append(b.rev, b.nodes[i])
	}
	t.ruall.InsertRun(b.rev, s)

	// --- Phase 3: apply, op by op, via the per-op protocol minus its
	// announce/retire steps.
	for i, n := range b.nodes {
		op := &ops[b.idx[i]]
		if op.Del {
			op.Won = t.applyBatchedDelete(n, s)
		} else {
			op.Won = t.applyBatchedInsert(n, s)
		}
	}

	// --- Phase 4: retire once. Dead nodes (lost CAS, or phase-3 no-op)
	// ride along: they were never activated, so nothing else references
	// their cells.
	t.uall.RemoveRun(b.nodes, s)
	t.ruall.RemoveRun(b.rev, s)
}

// applyBatchedInsert is Add (paper lines 162–180) for a node that is
// already announced; returns whether the insert won. Mirrors Add line for
// line except announcing (done) and list removal (deferred).
func (t *Trie) applyBatchedInsert(iNode *unode.UpdateNode, s *ebr.Slot) bool {
	x := iNode.Key
	dNode := t.findLatest(x)
	if dNode.Kind != unode.Del {
		return false // x already in S; linearizes at the read
	}
	iNode.LatestNext.Store(dNode)
	if ln := dNode.LatestNext.Load(); ln != nil { // line 168
		if tg := ln.Target.Load(); tg != nil {
			tg.Stop.Store(true)
		}
	}
	dNode.LatestNext.Store(nil) // line 169
	t.bits.MarkEverInserted(x)  // summary publication contract (bitstrie)
	if !t.latest[x].CompareAndSwap(dNode, iNode) {
		t.helpActivate(t.latest[x].Load(), s) // line 171
		return false
	}
	iNode.Status.Store(unode.StatusActive) // line 174: linearization point
	t.count.Add(1)
	iNode.LatestNext.Store(nil)    // line 175
	t.bits.InsertBinaryTrie(iNode) // line 176
	t.notifyPredOps(iNode)         // line 177
	iNode.Completed.Store(true)    // line 178
	return true
}

// applyBatchedDelete is Remove (paper lines 181–206) for a node that is
// already announced. The DEL node's embedded-predecessor fields are set
// here, before the publishing CAS — they are plain fields, and no reader
// reaches them until the node is activated (which orders after).
func (t *Trie) applyBatchedDelete(dNode *unode.UpdateNode, s *ebr.Slot) bool {
	x := dNode.Key
	iNode := t.findLatest(x)
	if iNode.Kind != unode.Ins {
		return false // x not in S; linearizes at the read
	}
	delPred, pNode1 := t.predHelper(x, s) // line 184: first embedded predecessor
	dNode.DelPred = delPred
	dNode.DelPredNode = pNode1
	dNode.LatestNext.Store(iNode)
	iNode.LatestNext.Store(nil) // line 190
	t.notifyPredOps(iNode)      // line 191
	if !t.latest[x].CompareAndSwap(iNode, dNode) {
		t.helpActivate(t.latest[x].Load(), s) // line 193
		t.pall.remove(pNode1, s)              // line 194: never published in dNode
		return false
	}
	dNode.Status.Store(unode.StatusActive) // line 197: linearization point
	t.count.Add(-1)
	if tg := iNode.Target.Load(); tg != nil { // line 198
		tg.Stop.Store(true)
	}
	dNode.LatestNext.Store(nil)            // line 199
	delPred2, pNode2 := t.predHelper(x, s) // line 200
	dNode.DelPred2.Store(delPred2)         // line 201
	t.bits.DeleteBinaryTrie(dNode)         // line 202
	t.notifyPredOps(dNode)                 // line 203
	dNode.Completed.Store(true)            // line 204
	// pNode1 is published as dNode.DelPredNode, and on the batch path
	// dNode's announcement cells stay linked until the phase-4 RemoveRun —
	// arbitrarily long after this unlink. The per-op retire ordering (cells
	// removed before the pall.remove) does not hold here, so no epoch bound
	// covers pNode1: leak it to the GC instead of retiring (nil slot).
	// pNode2 is never published in dNode and retires normally.
	t.pall.remove(pNode1, nil) // line 206
	t.pall.remove(pNode2, s)
	return true
}
