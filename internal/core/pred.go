package core

import (
	"repro/internal/alist"
	"repro/internal/ebr"
	"repro/internal/unode"
)

// predHelper performs all of a Predecessor(y) operation except removing its
// announcement (paper lines 207–252). Delete uses it directly for its two
// embedded predecessor operations, whose announcements must outlive the
// helper (paper §5.2). It returns the predecessor value and the
// announcement node for the caller to remove.
//
// All transient state — the snapshot Q, the traversal classifications and
// the Definition 5.1 recovery's tables — lives in a pooled scratch arena;
// the announcement node and RU-ALL copy descriptors come from EBR-guarded
// pools, so a steady-state predecessor allocates nothing (see arena.go and
// internal/ebr for the safety arguments). s is the caller's pin, held for
// the whole call.
func (t *Trie) predHelper(y int64, s *ebr.Slot) (int64, *PredNode) {
	a := getArena()
	defer a.release()

	// --- Announce (lines 208–214) ---------------------------------------
	pNode := newPredNode(y, t.ruall.Head())
	t.pall.insert(pNode, s)
	q := snapshotAfter(pNode, a) // newest→oldest; the paper's Q reversed

	// --- Traverse the RU-ALL (line 215) ---------------------------------
	iruall, druall := t.traverseRUall(pNode, a, s)

	// --- Traverse the relaxed binary trie (line 216) ---------------------
	r0, r0ok := t.bits.RelaxedPredecessor(y)

	// --- Traverse the U-ALL (line 217) -----------------------------------
	iuall, duall := t.traverseUall(y, a)

	// --- Collect notifications (lines 218–227) ---------------------------
	inotify, dnotify := collectNotifications(pNode, y, iruall, druall, a)

	// --- r1: best announced/notified candidate (line 228) ----------------
	r1 := int64(-1)
	for _, u := range iuall {
		r1 = maxKey(r1, u.Key)
	}
	for _, u := range inotify {
		r1 = maxKey(r1, u.Key)
	}
	for _, u := range duall {
		if !containsNode(druall, u) {
			r1 = maxKey(r1, u.Key)
		}
	}
	for _, u := range dnotify {
		if !containsNode(druall, u) {
			r1 = maxKey(r1, u.Key)
		}
	}

	// --- ⊥ recovery (lines 230–251) ---------------------------------------
	r0val := int64(-1)
	switch {
	case r0ok:
		r0val = r0
	case len(druall) > 0:
		if t.stats != nil {
			t.stats.BottomCases.Add(1)
		}
		r0val = t.bottomCase(pNode, q, druall, y, a)
	}

	return maxKey(r0val, r1), pNode // line 252
}

// collectNotifications filters this operation's notify list (paper lines
// 218–227) into a.inotify/a.dnotify. An INS notification is accepted when
// its threshold — our RU-ALL position when the notifier stamped it — had
// already passed its key (≤); a DEL notification needs strict passage (<),
// because a delete seen at exactly its key may have been linearized before
// we started. A notification stamped after our RU-ALL traversal finished
// (threshold −∞) whose update node we did NOT meet in the RU-ALL also
// vouches for its updateNodeMax (the Figure 9 forwarding).
func collectNotifications(pNode *PredNode, y int64, iruall, druall []*unode.UpdateNode, a *arena) (inotify, dnotify []*unode.UpdateNode) {
	for n := pNode.notifyHead.Load(); n != nil; n = n.next {
		if n.key >= y {
			continue
		}
		if n.updateNode.Kind == unode.Ins {
			if n.notifyThreshold <= n.key { // line 221
				a.inotify = append(a.inotify, n.updateNode)
			}
		} else if n.notifyThreshold < n.key { // line 224
			a.dnotify = append(a.dnotify, n.updateNode)
		}
		if n.notifyThreshold == alist.KeyNegInf && // line 226
			!containsNode(iruall, n.updateNode) &&
			!containsNode(druall, n.updateNode) &&
			n.updateNodeMax != nil {
			a.inotify = append(a.inotify, n.updateNodeMax) // line 227
		}
	}
	return a.inotify, a.dnotify
}

// traverseRUall walks the RU-ALL from high keys to low, publishing the
// current position through the atomic-copy slot so that updaters can stamp
// notify thresholds (paper lines 257–269). It appends to a.iruall/a.druall
// the INS and DEL nodes with key < pNode.key that were first activated when
// visited; their update operations were linearized before — or shortly
// after — the start of this predecessor operation.
func (t *Trie) traverseRUall(pNode *PredNode, a *arena, s *ebr.Slot) (ins, del []*unode.UpdateNode) {
	y := pNode.key
	cur := pNode.ruallPos.Read() // head sentinel, key +∞
	for cur != nil && cur.Key != alist.KeyNegInf {
		if t.stats != nil {
			t.stats.RuallTraversalSteps.Add(1)
		}
		cur = pNode.ruallPos.CopyNext(cur, s) // line 262: atomic copy
		if cur == nil {
			break // defensive: severed tail, treat as end
		}
		if cur.Key < y && cur.Upd != nil {
			u := cur.Upd
			if u.Status.Load() != unode.StatusInactive && t.firstActivated(u) { // line 265
				if u.Kind == unode.Ins {
					a.iruall = append(a.iruall, u)
				} else {
					a.druall = append(a.druall, u)
				}
			}
		}
	}
	return a.iruall, a.druall
}

// bottomCase computes a candidate return value when the relaxed-trie
// traversal returned ⊥ and Druall is non-empty (paper lines 231–251 and
// Definition 5.1). It reconstructs, from the notify lists of this operation
// and of the earliest-announced embedded predecessor among Druall's deletes,
// a chain of delete hand-offs, and returns the largest surviving sink.
func (t *Trie) bottomCase(pNode *PredNode, q []*PredNode, druall []*unode.UpdateNode, y int64, a *arena) int64 {
	// predNodes: first-embedded-predecessor announcements of Druall's
	// deletes (line 232).
	for _, d := range druall {
		if pn, ok := d.DelPredNode.(*PredNode); ok && pn != nil {
			a.preds.add(pn, pn.key)
		}
	}

	// pNode′: the member of predNodes announced earliest, i.e. occurring
	// latest in our newest→oldest snapshot (lines 233–234).
	var pPrime *PredNode
	for i := len(q) - 1; i >= 0; i-- {
		if a.preds.has(q[i], q[i].key) {
			pPrime = q[i]
			break
		}
	}

	// L1: update nodes that notified pNode′, oldest notification first,
	// deduplicated keeping the newest occurrence's position (lines 231–236:
	// traverse newest→oldest, prepend if not already present).
	var l1 []*unode.UpdateNode
	if pPrime != nil {
		l1 = collectNotifiedUpdates(pPrime, y, a)
	}

	// L2: update nodes that notified us before we finished the RU-ALL
	// traversal (threshold ≥ key), oldest first; while traversing, remove
	// every notifying update node from L1 (lines 237–241).
	for n := pNode.notifyHead.Load(); n != nil; n = n.next {
		if n.key >= y {
			continue
		}
		a.removed.add(n.updateNode, n.key)                                    // line 239
		if n.notifyThreshold >= n.key && !a.l2seen.has(n.updateNode, n.key) { // line 240
			a.l2seen.add(n.updateNode, n.key)
			a.l2 = append(a.l2, n.updateNode)
		}
	}
	l2 := reverseNodes(a.l2)

	// L = (L1 − removed) ++ L2, then drop DEL nodes that are not the last
	// update node in L with their key (lines 242–243).
	for _, u := range l1 {
		if !a.removed.has(u, u.Key) {
			a.l = append(a.l, u)
		}
	}
	a.l = append(a.l, l2...)
	l := dropSupersededDels(a.l, a)

	// Definition 5.1: vertices are keys; each DEL node in L contributes the
	// edge key → delPred2. Each vertex has at most one outgoing edge and
	// edges strictly decrease, so reachability is chain-following.
	for _, u := range l {
		if u.Kind == unode.Del {
			if dp2 := u.DelPred2.Load(); dp2 != unode.NoKey {
				a.edge.put(u.Key, dp2)
			}
		}
	}

	// X: starting points — delPred of Druall's deletes and keys of INS
	// nodes in L (lines 247–248).
	for _, d := range druall {
		if !a.start.has(d.DelPred) {
			a.start.put(d.DelPred, 0)
			a.startKeys = append(a.startKeys, d.DelPred)
		}
	}
	for _, u := range l {
		if u.Kind == unode.Ins && !a.start.has(u.Key) {
			a.start.put(u.Key, 0)
			a.startKeys = append(a.startKeys, u.Key)
		}
	}

	// R: sinks reachable from X, minus keys deleted before we started
	// (lines 249–250); result is the largest member (line 251).
	for _, d := range druall {
		a.deleted.put(d.Key, 0)
	}
	best := int64(-1)
	for _, x := range a.startKeys {
		w := x
		for {
			next, ok := a.edge.get(w)
			if !ok {
				break // w is a sink
			}
			w = next
		}
		if !a.deleted.has(w) {
			best = maxKey(best, w)
		}
	}
	return best
}

// collectNotifiedUpdates appends to a.l1 the update nodes that notified p
// with key below y, oldest notification first, deduplicated on first
// (newest) occurrence.
func collectNotifiedUpdates(p *PredNode, y int64, a *arena) []*unode.UpdateNode {
	for n := p.notifyHead.Load(); n != nil; n = n.next {
		if n.key >= y {
			continue
		}
		if !a.notified.has(n.updateNode, n.key) {
			a.notified.add(n.updateNode, n.key)
			a.l1 = append(a.l1, n.updateNode)
		}
	}
	return reverseNodes(a.l1)
}

// dropSupersededDels removes DEL nodes that are not the last update node in
// l carrying their key (paper line 243), so each key has at most one DEL —
// the most recent hand-off. In-place; uses the arena's lastIdx table.
func dropSupersededDels(l []*unode.UpdateNode, a *arena) []*unode.UpdateNode {
	for i, u := range l {
		a.lastIdx.put(u.Key, int64(i))
	}
	out := l[:0]
	for i, u := range l {
		if u.Kind == unode.Del {
			if last, ok := a.lastIdx.get(u.Key); ok && last != int64(i) {
				continue
			}
		}
		out = append(out, u)
	}
	return out
}

func reverseNodes(s []*unode.UpdateNode) []*unode.UpdateNode {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
	return s
}

func containsNode(s []*unode.UpdateNode, n *unode.UpdateNode) bool {
	for _, x := range s {
		if x == n {
			return true
		}
	}
	return false
}

func maxKey(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
