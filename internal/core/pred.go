package core

import (
	"repro/internal/alist"
	"repro/internal/unode"
)

// predHelper performs all of a Predecessor(y) operation except removing its
// announcement (paper lines 207–252). Delete uses it directly for its two
// embedded predecessor operations, whose announcements must outlive the
// helper (paper §5.2). It returns the predecessor value and the
// announcement node for the caller to remove.
func (t *Trie) predHelper(y int64) (int64, *PredNode) {
	// --- Announce (lines 208–214) ---------------------------------------
	pNode := newPredNode(y, t.ruall.Head())
	t.pall.insert(pNode)
	q := snapshotAfter(pNode) // newest→oldest; the paper's Q reversed

	// --- Traverse the RU-ALL (line 215) ---------------------------------
	iruall, druall := t.traverseRUall(pNode)

	// --- Traverse the relaxed binary trie (line 216) ---------------------
	r0, r0ok := t.bits.RelaxedPredecessor(y)

	// --- Traverse the U-ALL (line 217) -----------------------------------
	iuall, duall := t.traverseUall(y)

	// --- Collect notifications (lines 218–227) ---------------------------
	inotify, dnotify := collectNotifications(pNode, y, iruall, druall)

	// --- r1: best announced/notified candidate (line 228) ----------------
	r1 := int64(-1)
	for _, u := range iuall {
		r1 = maxKey(r1, u.Key)
	}
	for _, u := range inotify {
		r1 = maxKey(r1, u.Key)
	}
	for _, u := range duall {
		if !containsNode(druall, u) {
			r1 = maxKey(r1, u.Key)
		}
	}
	for _, u := range dnotify {
		if !containsNode(druall, u) {
			r1 = maxKey(r1, u.Key)
		}
	}

	// --- ⊥ recovery (lines 230–251) ---------------------------------------
	r0val := int64(-1)
	switch {
	case r0ok:
		r0val = r0
	case len(druall) > 0:
		if t.stats != nil {
			t.stats.BottomCases.Add(1)
		}
		r0val = t.bottomCase(pNode, q, druall, y)
	}

	return maxKey(r0val, r1), pNode // line 252
}

// collectNotifications filters this operation's notify list (paper lines
// 218–227). An INS notification is accepted when its threshold — our
// RU-ALL position when the notifier stamped it — had already passed its key
// (≤); a DEL notification needs strict passage (<), because a delete seen
// at exactly its key may have been linearized before we started. A
// notification stamped after our RU-ALL traversal finished (threshold −∞)
// whose update node we did NOT meet in the RU-ALL also vouches for its
// updateNodeMax (the Figure 9 forwarding).
func collectNotifications(pNode *PredNode, y int64, iruall, druall []*unode.UpdateNode) (inotify, dnotify []*unode.UpdateNode) {
	for n := pNode.notifyHead.Load(); n != nil; n = n.next {
		if n.key >= y {
			continue
		}
		if n.updateNode.Kind == unode.Ins {
			if n.notifyThreshold <= n.key { // line 221
				inotify = append(inotify, n.updateNode)
			}
		} else if n.notifyThreshold < n.key { // line 224
			dnotify = append(dnotify, n.updateNode)
		}
		if n.notifyThreshold == alist.KeyNegInf && // line 226
			!containsNode(iruall, n.updateNode) &&
			!containsNode(druall, n.updateNode) &&
			n.updateNodeMax != nil {
			inotify = append(inotify, n.updateNodeMax) // line 227
		}
	}
	return inotify, dnotify
}

// traverseRUall walks the RU-ALL from high keys to low, publishing the
// current position through the atomic-copy slot so that updaters can stamp
// notify thresholds (paper lines 257–269). It returns the INS and DEL nodes
// with key < pNode.key that were first activated when visited; their update
// operations were linearized before — or shortly after — the start of this
// predecessor operation.
func (t *Trie) traverseRUall(pNode *PredNode) (ins, del []*unode.UpdateNode) {
	y := pNode.key
	cur := pNode.ruallPos.Read() // head sentinel, key +∞
	for cur != nil && cur.Key != alist.KeyNegInf {
		if t.stats != nil {
			t.stats.RuallTraversalSteps.Add(1)
		}
		src := cur
		next := pNode.ruallPos.Copy(src.Next) // line 262: atomic copy
		cur = next
		if cur == nil {
			break // defensive: severed tail, treat as end
		}
		if cur.Key < y && cur.Upd != nil {
			u := cur.Upd
			if u.Status.Load() != unode.StatusInactive && t.firstActivated(u) { // line 265
				if u.Kind == unode.Ins {
					ins = append(ins, u)
				} else {
					del = append(del, u)
				}
			}
		}
	}
	return ins, del
}

// bottomCase computes a candidate return value when the relaxed-trie
// traversal returned ⊥ and Druall is non-empty (paper lines 231–251 and
// Definition 5.1). It reconstructs, from the notify lists of this operation
// and of the earliest-announced embedded predecessor among Druall's deletes,
// a chain of delete hand-offs, and returns the largest surviving sink.
func (t *Trie) bottomCase(pNode *PredNode, q []*PredNode, druall []*unode.UpdateNode, y int64) int64 {
	// predNodes: first-embedded-predecessor announcements of Druall's
	// deletes (line 232).
	predNodes := make(map[*PredNode]bool, len(druall))
	for _, d := range druall {
		if pn, ok := d.DelPredNode.(*PredNode); ok && pn != nil {
			predNodes[pn] = true
		}
	}

	// pNode′: the member of predNodes announced earliest, i.e. occurring
	// latest in our newest→oldest snapshot (lines 233–234).
	var pPrime *PredNode
	for i := len(q) - 1; i >= 0; i-- {
		if predNodes[q[i]] {
			pPrime = q[i]
			break
		}
	}

	// L1: update nodes that notified pNode′, oldest notification first,
	// deduplicated keeping the newest occurrence's position (lines 231–236:
	// traverse newest→oldest, prepend if not already present).
	var l1 []*unode.UpdateNode
	if pPrime != nil {
		l1 = collectNotifiedUpdates(pPrime, y, nil)
	}

	// L2: update nodes that notified us before we finished the RU-ALL
	// traversal (threshold ≥ key), oldest first; while traversing, remove
	// every notifying update node from L1 (lines 237–241).
	removed := make(map[*unode.UpdateNode]bool)
	var l2 []*unode.UpdateNode
	{
		seen := make(map[*unode.UpdateNode]bool)
		var rev []*unode.UpdateNode
		for n := pNode.notifyHead.Load(); n != nil; n = n.next {
			if n.key >= y {
				continue
			}
			removed[n.updateNode] = true                           // line 239
			if n.notifyThreshold >= n.key && !seen[n.updateNode] { // line 240
				seen[n.updateNode] = true
				rev = append(rev, n.updateNode)
			}
		}
		l2 = reverseNodes(rev)
	}

	// L = (L1 − removed) ++ L2, then drop DEL nodes that are not the last
	// update node in L with their key (lines 242–243).
	var l []*unode.UpdateNode
	for _, u := range l1 {
		if !removed[u] {
			l = append(l, u)
		}
	}
	l = append(l, l2...)
	l = dropSupersededDels(l)

	// Definition 5.1: vertices are keys; each DEL node in L contributes the
	// edge key → delPred2. Each vertex has at most one outgoing edge and
	// edges strictly decrease, so reachability is chain-following.
	edge := make(map[int64]int64, len(l))
	for _, u := range l {
		if u.Kind == unode.Del {
			if dp2 := u.DelPred2.Load(); dp2 != unode.NoKey {
				edge[u.Key] = dp2
			}
		}
	}

	// X: starting points — delPred of Druall's deletes and keys of INS
	// nodes in L (lines 247–248).
	start := make(map[int64]bool, len(druall)+len(l))
	for _, d := range druall {
		start[d.DelPred] = true
	}
	for _, u := range l {
		if u.Kind == unode.Ins {
			start[u.Key] = true
		}
	}

	// R: sinks reachable from X, minus keys deleted before we started
	// (lines 249–250); result is the largest member (line 251).
	deletedKeys := make(map[int64]bool, len(druall))
	for _, d := range druall {
		deletedKeys[d.Key] = true
	}
	best := int64(-1)
	for x := range start {
		w := x
		for {
			next, ok := edge[w]
			if !ok {
				break // w is a sink
			}
			w = next
		}
		if !deletedKeys[w] {
			best = maxKey(best, w)
		}
	}
	return best
}

// collectNotifiedUpdates returns the update nodes that notified p with key
// below y, oldest notification first, deduplicated on first (newest)
// occurrence. filter, when non-nil, limits accepted notify nodes.
func collectNotifiedUpdates(p *PredNode, y int64, filter func(*notifyNode) bool) []*unode.UpdateNode {
	seen := make(map[*unode.UpdateNode]bool)
	var rev []*unode.UpdateNode
	for n := p.notifyHead.Load(); n != nil; n = n.next {
		if n.key >= y {
			continue
		}
		if filter != nil && !filter(n) {
			continue
		}
		if !seen[n.updateNode] {
			seen[n.updateNode] = true
			rev = append(rev, n.updateNode)
		}
	}
	return reverseNodes(rev)
}

// dropSupersededDels removes DEL nodes that are not the last update node in
// l carrying their key (paper line 243), so each key has at most one DEL —
// the most recent hand-off.
func dropSupersededDels(l []*unode.UpdateNode) []*unode.UpdateNode {
	lastIdx := make(map[int64]int, len(l))
	for i, u := range l {
		lastIdx[u.Key] = i
	}
	out := l[:0]
	for i, u := range l {
		if u.Kind == unode.Del && lastIdx[u.Key] != i {
			continue
		}
		out = append(out, u)
	}
	return out
}

func reverseNodes(s []*unode.UpdateNode) []*unode.UpdateNode {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
	return s
}

func containsNode(s []*unode.UpdateNode, n *unode.UpdateNode) bool {
	for _, x := range s {
		if x == n {
			return true
		}
	}
	return false
}

func maxKey(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
