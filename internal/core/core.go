// Package core implements the lock-free linearizable binary trie of paper
// §5: a dynamic set over {0,…,u−1} supporting Search with O(1) worst-case
// step complexity and Insert, Delete and Predecessor with O(ċ² + log u)
// amortized step complexity, where ċ is point contention.
//
// The data structure combines
//
//   - the relaxed binary trie machinery (internal/bitstrie) driven by §5's
//     latest lists — per-key lists of at most two update nodes whose first
//     activated node defines membership,
//   - the update announcement list U-ALL and its descending twin RU-ALL
//     (internal/alist),
//   - the predecessor announcement list P-ALL with per-predecessor
//     insert-only notify lists, and
//   - embedded predecessor operations inside Delete, whose results feed the
//     ⊥-case recovery of Predecessor (Definition 5.1).
//
// Update operations are linearized when their update node's status changes
// from inactive to active; Search at its read of latest[x]; Predecessor at a
// configuration during its execution at which its return value is the
// predecessor (Theorem 5.13).
package core

import (
	"sync/atomic"

	"repro/internal/alist"
	"repro/internal/atomicx"
	"repro/internal/bitstrie"
	"repro/internal/ebr"
	"repro/internal/unode"
)

// Stats carries optional counters for the complexity experiments. A nil
// *Stats disables collection. Engine-level counters live in
// bitstrie.Stats, attachable via Bits().SetStats. Each counter is padded to
// its own cache line: the counters are bumped from every goroutine's hot
// path, and unpadded neighbours would false-share — enabling stats would
// then distort the very contention behaviour the experiments measure.
type Stats struct {
	// Notifications counts notify nodes successfully added to notify lists.
	Notifications atomicx.PadInt64
	// BottomCases counts Predecessor operations whose relaxed-trie
	// traversal returned ⊥ and that ran the Definition 5.1 recovery.
	BottomCases atomicx.PadInt64
	// HelpActivations counts HelpActivate calls that found inactive nodes.
	HelpActivations atomicx.PadInt64
	// UallTraversalSteps counts cells visited in U-ALL traversals.
	UallTraversalSteps atomicx.PadInt64
	// RuallTraversalSteps counts cells visited in RU-ALL traversals.
	RuallTraversalSteps atomicx.PadInt64
	// Announces counts U-ALL announcement passes: one per announcing
	// per-op update (Insert/Delete/HelpActivate), one per ApplyBatch call
	// covering its whole batch. Announces/op is the quantity the combining
	// layer exists to reduce (experiment CB1, BENCH_combine.json).
	Announces atomicx.PadInt64
}

// Trie is the lock-free linearizable binary trie. Create with New; the zero
// value is not usable. All methods are safe for concurrent use.
type Trie struct {
	b      int
	u      int64
	latest []atomic.Pointer[unode.UpdateNode]
	bits   *bitstrie.Trie
	uall   *alist.List // ascending update announcement list
	ruall  *alist.List // descending reverse update announcement list
	pall   pall        // predecessor announcement list
	// dom is the trie's epoch-based reclamation domain: every operation
	// that traverses or retires pooled announcement state (U-ALL/RU-ALL
	// cells, PredNodes, notify slabs, RU-ALL copy descriptors) runs pinned
	// on it. One domain per trie keeps cross-structure references (a
	// PredNode holding an RU-ALL cell) inside a single grace argument.
	dom   *ebr.Domain
	stats *Stats
	// count is the occupancy counter behind Len: incremented by the winning
	// Insert and decremented by the winning Delete, each after its
	// linearization point. Padded on BOTH sides — the leading pad keeps the
	// write-hot counter off the cache line of the header fields every
	// operation reads, PadInt64's trailing pad covers the other side.
	_     [atomicx.CacheLine]byte
	count atomicx.PadInt64
}

// New returns an empty lock-free binary trie over {0,…,u−1} (u ≥ 2, padded
// to the next power of two).
func New(u int64) (*Trie, error) {
	t := &Trie{}
	bt, err := bitstrie.New(u, (*oracle)(t))
	if err != nil {
		return nil, err
	}
	t.b = bt.B()
	t.u = bt.U()
	t.latest = make([]atomic.Pointer[unode.UpdateNode], t.u)
	t.bits = bt
	t.uall = alist.New(false)
	t.ruall = alist.New(true)
	t.pall.init()
	t.dom = ebr.NewDomain()
	return t, nil
}

// Reclaimer exposes the trie's EBR domain (tests, metrics).
func (t *Trie) Reclaimer() *ebr.Domain { return t.dom }

// U returns the (padded) universe size.
func (t *Trie) U() int64 { return t.u }

// B returns ⌈log2 u⌉.
func (t *Trie) B() int { return t.b }

// Bits exposes the interpreted-bit engine (tests, stats, trieviz).
func (t *Trie) Bits() *bitstrie.Trie { return t.bits }

// SetStats attaches operation counters (nil disables). Not safe to call
// concurrently with operations.
func (t *Trie) SetStats(s *Stats) { t.stats = s }

// Len returns the number of keys in the set, counted from the win-reporting
// updates (O(1)). Weakly consistent: updates bump the counter shortly after
// their linearization point, so a reader racing with updates may see a
// count that is off by the number of in-flight operations; at quiescence it
// is exact.
func (t *Trie) Len() int64 { return t.count.Load() }

// AnnouncedUpdates returns the current U-ALL occupancy (metrics; O(n)).
// Pinned: the traversal touches pooled cells.
func (t *Trie) AnnouncedUpdates() int {
	s := t.dom.Pin()
	defer s.Unpin()
	return t.uall.Len()
}

// AnnouncedPredecessors returns the current P-ALL occupancy (metrics; O(n)).
// Pinned: the traversal touches pooled announcement nodes.
func (t *Trie) AnnouncedPredecessors() int {
	s := t.dom.Pin()
	defer s.Unpin()
	return t.pall.len()
}

// Search reports whether x is in the set (paper lines 121–124). O(1)
// worst-case: at most three reads.
//
// Precondition: 0 ≤ x < U().
func (t *Trie) Search(x int64) bool {
	p := t.latest[x].Load()
	if p == nil {
		return false // virtual dummy DEL: x was never inserted
	}
	if p.Status.Load() == unode.StatusInactive {
		if p2 := p.LatestNext.Load(); p2 != nil {
			p = p2
		}
	}
	return p.Kind == unode.Ins
}

// Insert adds x to the set (paper lines 162–180). Lock-free; amortized
// O(ċ² + log u) steps.
//
// Precondition: 0 ≤ x < U().
func (t *Trie) Insert(x int64) { t.Add(x) }

// Add is Insert reporting whether this operation performed the
// absent→present transition, i.e. whether its update node won the latest[x]
// CAS and became the linearization point. False means x was already present
// or a concurrent update on x intervened (in which case that operation
// reports the transition instead). The occupancy counters of the sharded
// layer hang off this result.
//
// Precondition: 0 ≤ x < U().
func (t *Trie) Add(x int64) bool {
	dNode := t.findLatest(x)
	if dNode.Kind != unode.Del {
		return false // x already in S
	}
	// Pin after the no-op fast path: only the announcement machinery below
	// touches pooled memory.
	s := t.dom.Pin()
	defer s.Unpin()
	iNode := unode.NewIns(x)
	iNode.LatestNext.Store(dNode)
	// Paper line 168: help stop the Delete the previous Insert(x) was
	// attacking, in case that Insert stalled between its target write and
	// its MinWrite. Ignore ⊥ links.
	if ln := dNode.LatestNext.Load(); ln != nil {
		if tg := ln.Target.Load(); tg != nil {
			tg.Stop.Store(true)
		}
	}
	dNode.LatestNext.Store(nil) // line 169: reopen the latest[x] list
	// Summary publication contract (bitstrie.MarkEverInserted): the
	// ever-inserted bit must be set before iNode can enter latest[x].
	t.bits.MarkEverInserted(x)
	if !t.latest[x].CompareAndSwap(dNode, iNode) {
		t.helpActivate(t.latest[x].Load(), s) // line 171
		return false
	}
	if t.stats != nil {
		t.stats.Announces.Add(1)
	}
	t.uall.Insert(iNode, s) // line 173
	t.ruall.Insert(iNode, s)
	iNode.Status.Store(unode.StatusActive) // line 174: linearization point
	t.count.Add(1)
	iNode.LatestNext.Store(nil)    // line 175
	t.bits.InsertBinaryTrie(iNode) // line 176
	t.notifyPredOps(iNode)         // line 177
	iNode.Completed.Store(true)    // line 178
	t.uall.Remove(iNode, s)        // line 179
	t.ruall.Remove(iNode, s)
	return true
}

// Delete removes x from the set (paper lines 181–206). Lock-free; amortized
// O(ċ² + c̃ + log u) steps.
//
// Precondition: 0 ≤ x < U().
func (t *Trie) Delete(x int64) { t.Remove(x) }

// Remove is Delete reporting whether this operation performed the
// present→absent transition (the mirror of Add).
//
// Precondition: 0 ≤ x < U().
func (t *Trie) Remove(x int64) bool {
	iNode := t.findLatest(x)
	if iNode.Kind != unode.Ins {
		return false // x not in S
	}
	s := t.dom.Pin()
	defer s.Unpin()
	delPred, pNode1 := t.predHelper(x, s) // line 184: first embedded predecessor
	dNode := unode.NewDel(x, t.b)
	dNode.LatestNext.Store(iNode)
	dNode.DelPred = delPred
	dNode.DelPredNode = pNode1
	iNode.LatestNext.Store(nil) // line 190
	t.notifyPredOps(iNode)      // line 191: help the previous Insert notify
	if !t.latest[x].CompareAndSwap(iNode, dNode) {
		t.helpActivate(t.latest[x].Load(), s) // line 193
		t.pall.remove(pNode1, s)              // line 194
		return false
	}
	if t.stats != nil {
		t.stats.Announces.Add(1)
	}
	t.uall.Insert(dNode, s) // line 196
	t.ruall.Insert(dNode, s)
	dNode.Status.Store(unode.StatusActive) // line 197: linearization point
	t.count.Add(-1)
	// Line 198: stop the Delete whose DEL node the replaced Insert was
	// attacking; that Insert's MinWrite will not arrive on our behalf.
	if tg := iNode.Target.Load(); tg != nil {
		tg.Stop.Store(true)
	}
	dNode.LatestNext.Store(nil)            // line 199
	delPred2, pNode2 := t.predHelper(x, s) // line 200: second embedded predecessor
	dNode.DelPred2.Store(delPred2)         // line 201
	t.bits.DeleteBinaryTrie(dNode)         // line 202
	t.notifyPredOps(dNode)                 // line 203
	dNode.Completed.Store(true)            // line 204
	t.uall.Remove(dNode, s)                // line 205
	t.ruall.Remove(dNode, s)
	t.pall.remove(pNode1, s) // line 206
	t.pall.remove(pNode2, s)
	return true
}

// Predecessor returns the largest key in the set smaller than y, or −1 if
// no such key exists (paper lines 253–256). Linearizable; lock-free;
// amortized O(ċ² + c̃ + log u) steps.
//
// Precondition: 0 ≤ y < U().
func (t *Trie) Predecessor(y int64) int64 {
	s := t.dom.Pin()
	defer s.Unpin()
	pred, pNode := t.predHelper(y, s)
	t.pall.remove(pNode, s)
	return pred
}
