package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestReclamationStress hammers the EBR machinery end to end: churners
// retire PredNodes, announcement cells, copy descriptors and notify slabs
// on every Insert/Delete, queriers run pred-walks (including the ⊥
// recovery) over nodes that are being recycled under them, and a dedicated
// goroutine forces global epoch advances the whole time so recycling
// actually happens mid-walk rather than at quiescence. A skipped grace
// period surfaces as a -race report on a recycled object's fields or as an
// impossible answer, which the same invariants as the arena stress reject:
// key 0 is a permanent floor, and every other answer must come from the
// churn band.
func TestReclamationStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	const (
		u       = int64(64)
		churnLo = int64(2)
		churnHi = int64(48)
	)
	tr := mustNew(t, u)
	tr.Insert(0) // permanent floor

	dur := 2 * time.Second
	if testing.Short() {
		dur = 300 * time.Millisecond
	}
	deadline := time.Now().Add(dur)
	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan string, 16)

	// Churners: every winning Delete retires two PredNodes and four
	// announcement cells; the pools re-issue them into later operations.
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			k := churnLo + seed%(churnHi-churnLo)
			for !stop.Load() {
				tr.Insert(k)
				tr.Delete(k)
				k++
				if k >= churnHi {
					k = churnLo
				}
			}
		}(int64(c) * 17)
	}

	// Queriers: pred-walks over the recycled nodes. Predecessor snapshots
	// the P-ALL, traverses the RU-ALL through pooled cells and copy
	// descriptors, and reads notify nodes out of recycled slabs.
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				got := tr.Predecessor(u - 1)
				if got != 0 && (got < churnLo || got >= churnHi) {
					select {
					case fail <- "Predecessor(u-1) returned a key no operation ever inserted":
					default:
					}
					return
				}
				if got := tr.Predecessor(1); got != 0 {
					select {
					case fail <- "Predecessor(1) != 0: the permanent floor vanished":
					default:
					}
					return
				}
			}
		}()
	}

	// Advancer: keep the global epoch moving so grace periods expire — and
	// rings recycle — while the walks above are in flight, instead of only
	// at the retire-driven cadence.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			tr.dom.Advance()
			runtime.Gosched()
		}
	}()

	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

// TestPredecessorSteadyStateAllocs is the regression gate behind the
// "steady-state allocations to ~0" claim: once the pools are warm, a
// standalone Predecessor must draw its announcement node, copy
// descriptors and scratch arena from pools instead of the heap. The bound
// matches the a3 acceptance gate (pred-heavy ≤ 0.5 allocs/op); the slack
// above zero covers pool misses from GC cycles during the measurement.
func TestPredecessorSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; alloc gate is unobservable")
	}
	tr := mustNew(t, 1024)
	for k := int64(0); k < 1024; k += 8 {
		tr.Insert(k)
	}
	// Warm every pool (arena, PredNode, posCell, EBR rings) and push the
	// retired warmup nodes through their grace periods. 512 iterations
	// look like plenty but measure a deterministic 1 alloc/op in a cold
	// process (the EBR rings are still growing toward their steady-state
	// capacity); 4096 reaches a true fixed point.
	warm := func(n int) {
		for i := 0; i < n; i++ {
			tr.Predecessor(1023)
			tr.Reclaimer().Advance()
		}
	}
	warm(4096)
	// A GC cycle landing inside AllocsPerRun purges the sync.Pools and
	// charges the refill to the measured loop, so a single noisy sample
	// must not fail the gate: re-warm and re-measure, and only fail if
	// the floor over several attempts is still above the bound. If the
	// steady state genuinely allocates, every attempt shows it.
	best := testing.AllocsPerRun(400, func() { tr.Predecessor(1023) })
	for attempt := 0; best > 0.5 && attempt < 2; attempt++ {
		runtime.GC()
		warm(512)
		if avg := testing.AllocsPerRun(400, func() { tr.Predecessor(1023) }); avg < best {
			best = avg
		}
	}
	if best > 0.5 {
		t.Fatalf("Predecessor allocates %.2f/op in steady state, want ≤ 0.5", best)
	}
}
