package core

import (
	"repro/internal/bitstrie"
	"repro/internal/ebr"
	"repro/internal/unode"
)

// oracle adapts the §5 latest lists to the bitstrie engine (paper lines
// 116–127). Unlike the relaxed trie's single-pointer latest, a §5 latest[x]
// list holds up to two update nodes and the first *activated* one defines
// membership.
type oracle Trie

var _ bitstrie.Oracle = (*oracle)(nil)

func (o *oracle) FindLatest(x int64) *unode.UpdateNode {
	return (*Trie)(o).findLatest(x)
}

func (o *oracle) FirstActivated(n *unode.UpdateNode) bool {
	return (*Trie)(o).firstActivated(n)
}

// loadLatest returns latest[x], materializing the dummy DEL node on first
// touch (see DESIGN.md: the nil pointer stands for the paper's initial
// per-key dummy).
func (t *Trie) loadLatest(x int64) *unode.UpdateNode {
	if p := t.latest[x].Load(); p != nil {
		return p
	}
	t.latest[x].CompareAndSwap(nil, unode.NewDummyDel(x, t.b))
	return t.latest[x].Load()
}

// findLatest returns the first activated update node in the latest[x] list
// (paper lines 116–120, Lemma 5.4).
func (t *Trie) findLatest(x int64) *unode.UpdateNode {
	uNode := t.loadLatest(x)
	if uNode.Status.Load() == unode.StatusInactive {
		if uNode2 := uNode.LatestNext.Load(); uNode2 != nil {
			return uNode2
		}
		// uNode was activated between the status read and the latestNext
		// read (its latestNext was already reset to ⊥).
	}
	return uNode
}

// firstActivated reports whether n is the first activated update node in
// the latest[n.Key] list (paper lines 125–127, Lemmas 5.7–5.8).
func (t *Trie) firstActivated(n *unode.UpdateNode) bool {
	uNode := t.latest[n.Key].Load()
	if uNode == nil {
		// Virtual dummy is the latest; n is a concrete superseded node.
		return false
	}
	return uNode == n ||
		(uNode.Status.Load() == unode.StatusInactive && uNode.LatestNext.Load() == n)
}

// helpActivate helps the S-modifying operation that owns uNode get
// linearized (paper lines 128–136): announce it in both announcement lists,
// flip its status, perform the stop handshake for DEL nodes, reopen the
// latest list, and — if the owner already finished — undo the announcement
// we may have just re-added. s is the caller's EBR pin: this is the
// re-publication path the four-epoch grace covers (the re-inserted
// announcement can briefly lead readers to already-retired state; see
// internal/ebr's package comment), so callers must hold s for the whole
// call.
func (t *Trie) helpActivate(uNode *unode.UpdateNode, s *ebr.Slot) {
	if uNode == nil || uNode.DummyNode {
		return
	}
	if uNode.Status.Load() != unode.StatusInactive {
		return
	}
	if t.stats != nil {
		t.stats.HelpActivations.Add(1)
		t.stats.Announces.Add(1)
	}
	t.uall.Insert(uNode, s) // line 130
	t.ruall.Insert(uNode, s)
	uNode.Status.Store(unode.StatusActive) // line 131
	if uNode.Kind == unode.Del {
		// Line 133: uNode.latestNext.target.stop ← true, ignoring ⊥ links.
		if ln := uNode.LatestNext.Load(); ln != nil {
			if tg := ln.Target.Load(); tg != nil {
				tg.Stop.Store(true)
			}
		}
	}
	uNode.LatestNext.Store(nil) // line 134
	if uNode.Completed.Load() { // line 135
		t.uall.Remove(uNode, s) // line 136
		t.ruall.Remove(uNode, s)
	}
}
