package resize_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/resize"
	"repro/internal/settest"
	"repro/internal/sharded"
)

// transitions is the k→k′ matrix the resize-aware harness drives: the
// ISSUE's (1→4), (4→16), (16→4), closed back to 1 so the cycle repeats.
var transitions = []int{4, 16, 4, 1}

// resizingFactory builds sets that re-partition themselves continuously
// while the conformance suite runs: each created set gets a driver
// goroutine cycling the transition matrix until the test ends. The
// returned stop function (registered as a cleanup) joins every driver.
func resizingFactory(t *testing.T) settest.Factory {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	t.Cleanup(func() {
		close(stop)
		wg.Wait()
	})
	return func(u int64) (settest.Set, error) {
		s, err := resize.NewSet(1, plainFactory(u), resize.Config{})
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				for _, k := range transitions {
					select {
					case <-stop:
						return
					default:
					}
					if err := s.Resize(k); err != nil {
						t.Errorf("driver Resize(%d): %v", k, err)
						return
					}
				}
			}
		}()
		return s, nil
	}
}

// withJitterHook installs a migration hook that yields and probes reads
// at every stage boundary, stretching each migration window so
// operations land inside every phase (reads only — the conformance
// reference tracks all mutations). Restored by cleanup.
func withJitterHook(t *testing.T, probe *atomic.Pointer[resize.Set]) {
	t.Helper()
	resize.SetTestHookMigration(func(resize.Stage) {
		if s := probe.Load(); s != nil {
			s.Search(0)
			s.Len()
		}
		runtime.Gosched()
	})
	t.Cleanup(func() { resize.SetTestHookMigration(nil) })
}

// trackingFactory wraps a factory to publish the latest set for the
// jitter hook's probes.
func trackingFactory(f settest.Factory, probe *atomic.Pointer[resize.Set]) settest.Factory {
	return func(u int64) (settest.Set, error) {
		s, err := f(u)
		if err != nil {
			return nil, err
		}
		probe.Store(s.(*resize.Set))
		return s, nil
	}
}

// TestResizeSequentialConformance: the map-reference sequential suite,
// with the driver re-partitioning underneath every operation.
func TestResizeSequentialConformance(t *testing.T) {
	var probe atomic.Pointer[resize.Set]
	withJitterHook(t, &probe)
	settest.RunSequential(t, trackingFactory(resizingFactory(t), &probe), 64)
}

// TestResizeEdgeCases: boundary keys, empty/full fill-and-drain, across
// continuous re-partitioning.
func TestResizeEdgeCases(t *testing.T) {
	var probe atomic.Pointer[resize.Set]
	withJitterHook(t, &probe)
	settest.RunEdgeCases(t, trackingFactory(resizingFactory(t), &probe), 64)
}

// TestResizeConcurrentConformance: goroutines over disjoint key ranges
// with exact quiescent verification, while the driver walks the full
// transition matrix under the suite — no op may be lost or duplicated
// across any epoch flip.
func TestResizeConcurrentConformance(t *testing.T) {
	var probe atomic.Pointer[resize.Set]
	withJitterHook(t, &probe)
	ops := 1200
	if testing.Short() {
		ops = 400
	}
	settest.RunConcurrent(t, trackingFactory(resizingFactory(t), &probe), 256, 8, ops)
}

// TestResizeConcurrentConformanceCombining: the same concurrent suite
// with the factory building combining partitions, so migrations move
// batched publication state too.
func TestResizeConcurrentConformanceCombining(t *testing.T) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	t.Cleanup(func() {
		close(stop)
		wg.Wait()
	})
	f := func(u int64) (settest.Set, error) {
		s, err := resize.NewSet(1,
			func(k int) (*sharded.Trie, error) { return sharded.NewCombining(u, k) },
			resize.Config{})
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				for _, k := range transitions {
					select {
					case <-stop:
						return
					default:
					}
					if err := s.Resize(k); err != nil {
						t.Errorf("driver Resize(%d): %v", k, err)
						return
					}
				}
			}
		}()
		return s, nil
	}
	ops := 800
	if testing.Short() {
		ops = 300
	}
	settest.RunConcurrent(t, f, 256, 8, ops)
}
