package resize

import (
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sharded"
)

// Set is the resizable façade over the linearizable sharded trie: a
// *sharded.Trie whose shard count migrates at runtime, behind the epoch
// protocol of this package. Create with NewSet; all methods are safe
// for concurrent use.
type Set struct {
	r *resizer[*sharded.Trie]
}

// NewSet wraps factory(initial) in the resize machinery. factory builds
// a table at a given shard count, carrying whatever combining/adaptive
// configuration the caller composes into the closure; it is re-invoked
// on every migration. cfg configures the decision layer — pass the zero
// Config for a manually driven set (Resize only).
func NewSet(initial int, factory func(k int) (*sharded.Trie, error), cfg Config) (*Set, error) {
	t, err := factory(initial)
	if err != nil {
		return nil, err
	}
	r, err := newResizer(t, factory, scanSharded, cfg)
	if err != nil {
		return nil, err
	}
	r.peers = announcedPeers
	r.carry = (*sharded.Trie).AdaptiveStats
	r.bulk = bulkLoad
	return &Set{r: r}, nil
}

// bulkLoad inserts a run of unique keys through the batch entrypoint:
// one announcement pass per shard-run instead of one per key. The scan
// emits shards in ascending order but walks sparse shards downward, so
// the run is sorted here (ApplyBatch requires strictly ascending keys).
func bulkLoad(t *sharded.Trie, keys []int64) {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	ops := make([]core.BatchOp, len(keys))
	for i, k := range keys {
		ops[i] = core.BatchOp{Key: k}
	}
	t.ApplyBatch(ops)
}

// scanSharded enumerates each non-empty shard's keys. Either strategy
// is correct under concurrent updates for the same reason: a key no
// update touches is present throughout and an exact per-shard probe (or
// a linearizable Predecessor step) cannot miss it, while every touched
// key is journaled — so the choice is purely about cost:
//
//   - dense shards take O(width) wait-free O(1) Search probes, which
//     beat a predecessor walk precisely when the walk would run hot: a
//     per-key core.Predecessor announces in P-ALL and pays O(ċ² + log u)
//     under the very contention that triggered the resize;
//   - sparse shards (count below width/8) take the walk, whose
//     O(count · log width) beats probing a near-empty range.
//
// Skipping count == 0 shards is safe for the same reason Predecessor's
// fallback skips them: the count over-approximates, so zero proves the
// shard empty at the read.
func scanSharded(t *sharded.Trie, emit func(int64)) {
	width := t.U() / int64(t.Shards())
	for i := 0; i < t.Shards(); i++ {
		n := t.Occupancy(i)
		if n == 0 {
			continue
		}
		sh := t.Shard(i)
		base := int64(i) * width
		if n >= width/8 {
			for lx := int64(0); lx < width; lx++ {
				if sh.Search(lx) {
					emit(base | lx)
				}
			}
			continue
		}
		x := width - 1
		if !sh.Search(x) {
			x = sh.Predecessor(x)
		}
		for x >= 0 {
			emit(base | x)
			if x == 0 {
				break
			}
			x = sh.Predecessor(x)
		}
	}
}

// announcedPeers returns the busiest shard's announced-update count —
// the announcement-list half of the resize contention signal.
func announcedPeers(t *sharded.Trie) int64 {
	var peers int64
	for i := 0; i < t.Shards(); i++ {
		if n := int64(t.Shard(i).AnnouncedUpdates()); n > peers {
			peers = n
		}
	}
	return peers
}

// Table returns the current authoritative table (tests, stats). The
// returned trie may be retired by a concurrent migration; it stays
// readable forever but writes to it bypass the journal, so callers must
// only read.
func (s *Set) Table() *sharded.Trie { return s.r.table() }

// Shards returns the current shard count.
func (s *Set) Shards() int { return s.r.Shards() }

// U returns the padded universe size.
func (s *Set) U() int64 { return s.r.U() }

// Len returns the weakly-consistent cardinality estimate (exact at
// quiescence), untouched by in-flight migrations.
func (s *Set) Len() int64 { return s.r.Len() }

// Stats returns the resize counters.
func (s *Set) Stats() Stats { return s.r.Stats() }

// AdaptiveStats sums adaptive-combining transitions across the live and
// retired tables (zeros unless the factory builds adaptive tables).
func (s *Set) AdaptiveStats() (enables, disables int64) { return s.r.AdaptiveStats() }

// Decider returns the decision layer, or nil for manually driven sets.
func (s *Set) Decider() *Decider { return s.r.dec }

// SealAssists returns the cumulative count of keys replayed by updates
// that arrived inside a sealed migration window and helped drain it.
func (s *Set) SealAssists() int64 { return s.r.SealAssists() }

// SetEvents routes migration trace events (grow/shrink with per-stage
// durations, seal assists) to ring. Install before concurrent use.
func (s *Set) SetEvents(ring *obs.Ring) { s.r.SetEvents(ring) }

// Resize synchronously migrates to target shards (ErrBusy if one is in
// flight). Concurrent operations proceed throughout.
func (s *Set) Resize(target int) error { return s.r.Resize(target) }

// Search reports whether x is in the set. Never blocks, in any phase.
//
// Precondition: 0 ≤ x < U().
func (s *Set) Search(x int64) bool { return s.r.Search(x) }

// Insert adds x to the set through the current epoch.
//
// Precondition: 0 ≤ x < U().
func (s *Set) Insert(x int64) { s.r.Insert(x) }

// Delete removes x from the set through the current epoch.
//
// Precondition: 0 ≤ x < U().
func (s *Set) Delete(x int64) { s.r.Delete(x) }

// Predecessor returns the largest key < y, or −1, from the
// authoritative table (the retiring one during a migration — the under-
// construction table is never consulted, so mid-replay states are
// invisible).
//
// Precondition: 0 ≤ y < U().
func (s *Set) Predecessor(y int64) int64 { return s.r.table().Predecessor(y) }

// Successor returns the smallest key > y, or −1, mirroring Predecessor.
//
// Precondition: 0 ≤ y < U().
func (s *Set) Successor(y int64) int64 { return s.r.table().Successor(y) }

// Max returns the largest key in the set, or −1.
func (s *Set) Max() int64 { return s.r.table().Max() }

// ApplyBatch applies a pre-batched op sequence — global keys, sorted
// strictly ascending, one op per key — through the current epoch. The
// whole batch is admitted under one gate (the drain protocol waits on
// every gate, so one suffices to pin the epoch) and journals every key
// before the table rebase-and-apply, preserving journal-before-apply
// per key.
func (s *Set) ApplyBatch(ops []core.BatchOp) {
	if len(ops) == 0 {
		return
	}
	r := s.r
	r.tick(ops[0].Key)
	e, gi := r.enter(ops[0].Key)
	if e.phase == phaseJournal {
		for i := range ops {
			e.dirty[e.shardOf(ops[i].Key)].Set(ops[i].Key & (e.width - 1))
		}
	}
	e.cur.ApplyBatch(ops)
	e.gates[gi].Add(-1)
}
