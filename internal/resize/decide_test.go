package resize

import (
	"math"
	"testing"
)

// stepCfg is the deterministic configuration the exact-sample tests
// share: α = 0.5 makes hand-computed EWMAs exact binary fractions.
func stepCfg() Config {
	return Config{
		MinShards: 1, MaxShards: 16,
		Alpha: 0.5, Grow: 4, Shrink: 1.5,
		MinDwell: 2, MinKeysPerShard: 1,
	}
}

// sig builds a Signal with plenty of occupancy so only the named guard
// under test can veto.
func sig(peers float64, shards int) Signal {
	return Signal{Peers: peers, Shards: shards, Occupancy: 1 << 20}
}

// TestDeciderExactGrowSample pins the exact sample a grow fires on and
// its jump target: EWMA from 1 under constant peers 9 with α = 0.5 runs
// 5, 7, 8, … — the first sample ≥ Grow(4) is sample 1, but MinDwell(2)
// holds it to sample 2, whose EWMA of 7 jumps the proposal straight to
// pow2ceil(7) = 8 shards, not a mere doubling.
func TestDeciderExactGrowSample(t *testing.T) {
	d := NewDecider(stepCfg())
	if tgt, ok := d.Step(sig(9, 2)); ok {
		t.Fatalf("sample 1 proposed %d inside dwell", tgt)
	}
	if got := d.Estimate(); got != 5 {
		t.Fatalf("EWMA after sample 1 = %v, want 5", got)
	}
	tgt, ok := d.Step(sig(9, 2))
	if !ok || tgt != 8 {
		t.Fatalf("sample 2: (%d, %v), want grow to pow2ceil(7) = 8", tgt, ok)
	}
	if got := d.Estimate(); got != 7 {
		t.Fatalf("EWMA after sample 2 = %v, want 7", got)
	}
	if g, s := d.Proposals(); g != 1 || s != 0 {
		t.Fatalf("proposals = (%d, %d), want (1, 0)", g, s)
	}
}

// TestDeciderExactShrinkSample: EWMA decaying from 8 under constant
// peers 1 runs 4.5, 2.75, 1.875, 1.4375 — the first sample ≤ Shrink(1.5)
// is sample 4, and dwell (reset by a preceding grow) has long expired.
func TestDeciderExactShrinkSample(t *testing.T) {
	d := NewDecider(stepCfg())
	d.ewma = 8
	for i := 1; i <= 3; i++ {
		if tgt, ok := d.Step(sig(1, 8)); ok {
			t.Fatalf("sample %d proposed %d above the shrink threshold (EWMA %v)", i, tgt, d.Estimate())
		}
	}
	tgt, ok := d.Step(sig(1, 8))
	if !ok || tgt != 4 {
		t.Fatalf("sample 4: (%d, %v) at EWMA %v, want shrink to 4", tgt, ok, d.Estimate())
	}
	if got := d.Estimate(); got != 1.4375 {
		t.Fatalf("EWMA = %v, want 1.4375", got)
	}
}

// TestDeciderHysteresisBand: an estimate wandering strictly inside
// (Shrink, Grow) proposes nothing, however long it wanders.
func TestDeciderHysteresisBand(t *testing.T) {
	d := NewDecider(stepCfg())
	d.ewma = 3 // start inside the band
	for i := 0; i < 100; i++ {
		peers := 2.0
		if i%2 == 1 {
			peers = 3.5
		}
		if tgt, ok := d.Step(sig(peers, 4)); ok {
			t.Fatalf("sample %d proposed %d from inside the band (EWMA %v)", i, tgt, d.Estimate())
		}
		if e := d.Estimate(); e <= 1.5 || e >= 4 {
			t.Fatalf("sample %d: EWMA %v escaped the band", i, e)
		}
	}
}

// TestDeciderDwellAfterFlip: a grow resets the dwell, so the very next
// sample cannot propose even when the (halved) estimate already sits
// below Shrink — the oscillation guard between consecutive migrations.
func TestDeciderDwellAfterFlip(t *testing.T) {
	cfg := stepCfg()
	cfg.MinDwell = 3
	d := NewDecider(cfg)
	d.ewma = 100
	var grown bool
	for i := 0; i < 3; i++ {
		if _, ok := d.Step(sig(100, 2)); ok {
			grown = true
			if i != 2 {
				t.Fatalf("grow at sample %d, dwell is 3", i+1)
			}
		}
	}
	if !grown {
		t.Fatal("no grow after dwell expired")
	}
	// Collapse the estimate below Shrink: dwell must hold 2 samples.
	d.ewma = 0.001
	for i := 0; i < 2; i++ {
		if tgt, ok := d.Step(sig(1, 4)); ok {
			t.Fatalf("post-flip sample %d proposed %d inside dwell", i+1, tgt)
		}
	}
	if tgt, ok := d.Step(sig(1, 4)); !ok || tgt != 2 {
		t.Fatalf("post-dwell sample: (%d, %v), want shrink to 2", tgt, ok)
	}
}

// TestDeciderBounds: no grow at MaxShards, no shrink at MinShards, in
// both cases with the estimate far beyond the threshold.
func TestDeciderBounds(t *testing.T) {
	d := NewDecider(stepCfg())
	d.ewma = 1000
	for i := 0; i < 10; i++ {
		if tgt, ok := d.Step(sig(1000, 16)); ok {
			t.Fatalf("grew to %d beyond MaxShards", tgt)
		}
	}
	d2 := NewDecider(stepCfg())
	d2.ewma = 0.001
	for i := 0; i < 10; i++ {
		if tgt, ok := d2.Step(sig(1, 1)); ok {
			t.Fatalf("shrank to %d below MinShards", tgt)
		}
	}
}

// TestDeciderOccupancyVeto: a grow whose target would leave shards
// under MinKeysPerShard is vetoed WITHOUT consuming dwell, and fires on
// the first sample the occupancy clears it.
func TestDeciderOccupancyVeto(t *testing.T) {
	cfg := stepCfg()
	cfg.MinKeysPerShard = 8
	d := NewDecider(cfg)
	d.ewma = 100
	// The estimate jumps the target to the MaxShards clamp (16), which
	// needs occupancy ≥ 16·8 = 128.
	lean := Signal{Peers: 100, Shards: 2, Occupancy: 127}
	for i := 0; i < 5; i++ {
		if tgt, ok := d.Step(lean); ok {
			t.Fatalf("sample %d grew to %d with occupancy %d", i, tgt, lean.Occupancy)
		}
	}
	if g, _ := d.Proposals(); g != 0 {
		t.Fatalf("vetoed grows counted: %d", g)
	}
	rich := lean
	rich.Occupancy = 128
	if tgt, ok := d.Step(rich); !ok || tgt != 16 {
		t.Fatalf("first cleared sample: (%d, %v), want grow to the 16-shard clamp", tgt, ok)
	}
}

// TestDeciderDefaults: the zero-valued tuning fields resolve to the
// documented defaults, and an inverted band is clamped below Grow.
func TestDeciderDefaults(t *testing.T) {
	d := NewDecider(Config{MinShards: 2, MaxShards: 8})
	c := d.Config()
	if c.SampleEvery != DefaultSampleEvery || c.Alpha != DefaultAlpha ||
		c.Grow != DefaultGrow || c.Shrink != DefaultShrink ||
		c.MinDwell != DefaultMinDwell || c.MinKeysPerShard != DefaultMinKeysPerShard {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.MinShards != 2 || c.MaxShards != 8 {
		t.Fatalf("bounds rewritten: %+v", c)
	}
	inv := NewDecider(Config{MinShards: 1, MaxShards: 4, Grow: 2, Shrink: 3}).Config()
	if inv.Shrink != 1 {
		t.Fatalf("inverted band clamped to %v, want Grow/2 = 1", inv.Shrink)
	}
	if e := NewDecider(Config{MinShards: 1, MaxShards: 4}).Estimate(); e != 1 {
		t.Fatalf("initial estimate %v, want 1 (solo publisher)", e)
	}
	if math.IsNaN(NewDecider(Config{}).Estimate()) {
		t.Fatal("zero config yields NaN estimate")
	}
}

// catchupCfg is the deterministic catch-up configuration the tracker
// tests share: a tight Below so small totals are meaningful, ChurnRounds
// of 2 so churn classification needs exactly two non-halving rounds.
func catchupCfg() CatchupConfig {
	return CatchupConfig{MaxRounds: 4, Below: 10, ChurnRounds: 2}
}

// observeAll drives one tracker through a trajectory of per-round
// observations and returns the verdict sequence.
func observeAll(t *CatchupTracker, rounds [][]int64) []CatchupVerdict {
	out := make([]CatchupVerdict, len(rounds))
	for i, sizes := range rounds {
		out[i] = t.Observe(sizes)
	}
	return out
}

// assertVerdicts pins a trajectory's exact verdict sequence.
func assertVerdicts(t *testing.T, got, want []CatchupVerdict) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("verdicts %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round %d verdict %v, want %v (full: %v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

// TestCatchupDoneBelowThreshold: a journal at or under Below skips
// immediately — before any round runs — and after a converging round.
func TestCatchupDoneBelowThreshold(t *testing.T) {
	assertVerdicts(t,
		observeAll(NewCatchupTracker(catchupCfg()), [][]int64{{4, 6}}),
		[]CatchupVerdict{CatchupDone})
	assertVerdicts(t,
		observeAll(NewCatchupTracker(catchupCfg()), [][]int64{{100, 100}, {3, 2}}),
		[]CatchupVerdict{CatchupContinue, CatchupDone})
}

// TestCatchupStalledGlobal: the old global rule still fires — a journal
// that fails to halve round-over-round stops the loop on that round.
func TestCatchupStalledGlobal(t *testing.T) {
	assertVerdicts(t,
		observeAll(NewCatchupTracker(catchupCfg()), [][]int64{{100, 100}, {60, 60}}),
		[]CatchupVerdict{CatchupContinue, CatchupStalled})
}

// TestCatchupChurnShard: the bugfix scenario. Shard 0 converges cleanly
// while shard 1 is pure churn (re-dirties to ~the same size every
// round). The global total keeps halving — 1100, 520, 230 — so the old
// rule would burn every remaining round replaying shard 1 at contended
// speed; the per-shard rule classifies shard 1 churn-heavy after two
// non-halving rounds and, its keys now the majority of the journal,
// skips to seal on round 2.
func TestCatchupChurnShard(t *testing.T) {
	assertVerdicts(t,
		observeAll(NewCatchupTracker(catchupCfg()), [][]int64{
			{1000, 100}, // initial journal
			{420, 100},  // round 1: total halved; shard 1 churn streak 1
			{30, 200},   // round 2: total halved; shard 1 streak 2 → majority
		}),
		[]CatchupVerdict{CatchupContinue, CatchupContinue, CatchupChurn})
}

// TestCatchupChurnNeedsMajority: a churn-heavy shard whose keys stay a
// minority of the journal does NOT end the loop — the converging
// majority still pays for another round.
func TestCatchupChurnNeedsMajority(t *testing.T) {
	assertVerdicts(t,
		observeAll(NewCatchupTracker(catchupCfg()), [][]int64{
			{1000, 40},
			{460, 40}, // streak 1
			{200, 40}, // streak 2, but 40*2 <= 240
			{80, 40},  // streak 3, 40*2 <= 120 — still minority
			{20, 40},  // streak 4, 40*2 > 60 → majority now
		}),
		[]CatchupVerdict{CatchupContinue, CatchupContinue, CatchupContinue,
			CatchupContinue, CatchupChurn})
}

// TestCatchupChurnStreakResets: one halving round resets a shard's churn
// streak — only CONSECUTIVE non-halving rounds classify it.
func TestCatchupChurnStreakResets(t *testing.T) {
	assertVerdicts(t,
		observeAll(NewCatchupTracker(catchupCfg()), [][]int64{
			{1000, 200},
			{380, 200}, // shard 1 streak 1
			{100, 90},  // shard 1 halved: streak resets to 0
			{15, 80},   // streak 1 again — not churn yet, total still halving
		}),
		[]CatchupVerdict{CatchupContinue, CatchupContinue, CatchupContinue,
			CatchupContinue})
}

// TestCatchupExhausted: a slowly-but-genuinely converging journal runs
// exactly MaxRounds rounds, then stops.
func TestCatchupExhausted(t *testing.T) {
	tr := NewCatchupTracker(CatchupConfig{MaxRounds: 2, Below: 10, ChurnRounds: 5})
	assertVerdicts(t,
		observeAll(tr, [][]int64{{1000}, {500}, {250}}),
		[]CatchupVerdict{CatchupContinue, CatchupContinue, CatchupExhausted})
}

// TestCatchupDefaults: the zero config resolves to the documented
// defaults and an empty journal skips immediately.
func TestCatchupDefaults(t *testing.T) {
	tr := NewCatchupTracker(CatchupConfig{})
	if c := tr.cfg; c.MaxRounds != DefaultCatchupRounds || c.Below != DefaultCatchupBelow ||
		c.ChurnRounds != DefaultChurnRounds {
		t.Fatalf("defaults = %+v", c)
	}
	if v := tr.Observe([]int64{0, 0}); v != CatchupDone {
		t.Fatalf("empty journal verdict %v, want done", v)
	}
}
