package resize_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/resize"
	"repro/internal/sharded"
)

func relaxedFactory(u int64) func(k int) (*sharded.Relaxed, error) {
	return func(k int) (*sharded.Relaxed, error) { return sharded.NewRelaxed(u, k) }
}

// TestRelaxedResizeSequentialContent mirrors the core sequential suite:
// every transition of the matrix preserves the exact set, and the
// relaxed predecessor — exact at quiescence — agrees with the map
// reference after each migration.
func TestRelaxedResizeSequentialContent(t *testing.T) {
	const u = int64(1 << 9)
	s, err := resize.NewRelaxedSet(1, relaxedFactory(u), resize.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[int64]bool)
	rng := rand.New(rand.NewSource(11))
	mutate := func(n int) {
		for i := 0; i < n; i++ {
			k := rng.Int63n(u)
			if rng.Intn(3) == 0 {
				s.Delete(k)
				delete(ref, k)
			} else {
				s.Insert(k)
				ref[k] = true
			}
		}
	}
	mutate(300)
	for _, k := range []int{4, 16, 4, 1} {
		if err := s.Resize(k); err != nil {
			t.Fatalf("Resize(%d): %v", k, err)
		}
		if got := s.Shards(); got != k {
			t.Fatalf("Shards = %d, want %d", got, k)
		}
		if got := s.Len(); got != int64(len(ref)) {
			t.Fatalf("k=%d: Len = %d, want %d", k, got, len(ref))
		}
		want := int64(-1)
		for x := int64(0); x < u; x++ {
			if got := s.Search(x); got != ref[x] {
				t.Fatalf("k=%d: Search(%d) = %v, want %v", k, x, got, ref[x])
			}
			p, ok := s.Predecessor(x)
			if !ok {
				t.Fatalf("k=%d: Predecessor(%d) abstained at quiescence", k, x)
			}
			if p != want {
				t.Fatalf("k=%d: Predecessor(%d) = %d, want %d", k, x, p, want)
			}
			if ref[x] {
				want = x
			}
		}
		mutate(80)
	}
}

// TestRelaxedResizeConcurrent: workers churn disjoint ranges while the
// transition matrix cycles; the quiescent state is verified exactly and
// concurrent relaxed queries honour the §4.1 contract shape (a definite
// answer is a key < y or −1).
func TestRelaxedResizeConcurrent(t *testing.T) {
	const u = int64(256)
	s, err := resize.NewRelaxedSet(1, relaxedFactory(u), resize.Config{})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var drv sync.WaitGroup
	drv.Add(1)
	go func() {
		defer drv.Done()
		for {
			for _, k := range transitions {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Resize(k); err != nil {
					t.Errorf("Resize(%d): %v", k, err)
					return
				}
			}
		}
	}()
	const workers, ops = 8, 800
	finals := make([]map[int64]bool, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*31 + 5))
			lo := int64(id) * (u / workers)
			final := map[int64]bool{}
			for i := 0; i < ops; i++ {
				k := lo + rng.Int63n(u/workers)
				switch rng.Intn(5) {
				case 0, 1:
					s.Insert(k)
					final[k] = true
				case 2:
					s.Delete(k)
					delete(final, k)
				case 3:
					s.Search(k)
				case 4:
					if p, ok := s.Predecessor(k); ok && p >= k {
						t.Errorf("Predecessor(%d) = %d ≥ y", k, p)
						return
					}
				}
			}
			finals[id] = final
		}(g)
	}
	wg.Wait()
	close(stop)
	drv.Wait()
	present := map[int64]bool{}
	for _, final := range finals {
		for k := range final {
			present[k] = true
		}
	}
	for y := int64(0); y < u; y++ {
		if got := s.Search(y); got != present[y] {
			t.Fatalf("quiescent Search(%d) = %v, want %v", y, got, present[y])
		}
		p, ok := s.Predecessor(y)
		if !ok {
			t.Fatalf("quiescent Predecessor(%d) abstained", y)
		}
		want := int64(-1)
		for k := y - 1; k >= 0; k-- {
			if present[k] {
				want = k
				break
			}
		}
		if p != want {
			t.Fatalf("quiescent Predecessor(%d) = %d, want %d", y, p, want)
		}
	}
}
