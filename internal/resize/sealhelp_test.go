package resize_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/resize"
)

// The helper-capable seal window: updates arriving while a migration is
// sealed claim dirty words from the final replay's work list instead of
// burning their wait on Gosched. This stress test drives migrations with
// a deliberately fat final dirty set (the migration hook churns a
// dedicated key range right before the seal), keeps updaters hammering
// their own bands throughout, and asserts (a) every key's final state is
// exactly the last operation its owner performed — a lost or duplicated
// helper replay would surface here — (b) untouched keys survive every
// migration, and (c) the helpers actually replayed work (SealAssists
// moved).
func TestSealedWindowHelpersDrainTheReplay(t *testing.T) {
	const (
		u          = int64(1) << 14
		numWorkers = 4
		bandWidth  = int64(2048)  // workers own [0, 8192)
		churnLo    = int64(8192)  // hook-churned range [8192, 12288)
		churnHi    = int64(12288) //
		staticLo   = int64(12288) // untouched prefill [12288, 16384)
	)
	migrations := 8
	if testing.Short() {
		migrations = 2 // the -race matrix runs -short; two seals still exercise the help path
	}
	s, err := resize.NewSet(4, plainFactory(u), resize.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for x := staticLo; x < u; x += 7 {
		s.Insert(x)
	}

	// Fatten the final dirty set from the coordinator itself: right after
	// the bulk copy (and after each catch-up replay, which starts a fresh
	// journal generation) churn the dedicated range so the generation the
	// seal freezes carries thousands of dirty keys — a replay long enough
	// that parked updates reliably land inside the sealed window. The
	// churn is insert-then-delete, so it leaves no state behind.
	resize.SetTestHookMigration(func(st resize.Stage) {
		if st != resize.StageCopied && st != resize.StageCatchup {
			return
		}
		for x := churnLo; x < churnHi; x += 2 {
			s.Insert(x)
			s.Delete(x)
		}
	})
	defer resize.SetTestHookMigration(nil)

	// Workers churn disjoint bands, alternating insert and delete sweeps,
	// and record the parity of the last completed sweep: after they stop,
	// the set must show exactly that sweep's effect per band.
	var stop atomic.Bool
	finalInserted := make([]atomic.Bool, numWorkers)
	var wg sync.WaitGroup
	for g := 0; g < numWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g) * bandWidth
			for sweep := 0; !stop.Load(); sweep++ {
				ins := sweep%2 == 0
				for x := base; x < base+bandWidth; x += 5 {
					if ins {
						s.Insert(x)
					} else {
						s.Delete(x)
					}
				}
				finalInserted[g].Store(ins)
			}
		}(g)
	}

	for m := 0; m < migrations; m++ {
		target := 8
		if m%2 == 1 {
			target = 4
		}
		if err := s.Resize(target); err != nil {
			t.Fatalf("migration %d to %d shards: %v", m, target, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	// (a) Per-band final state: each band key's membership equals its
	// owner's last completed sweep.
	for g := 0; g < numWorkers; g++ {
		base := int64(g) * bandWidth
		want := finalInserted[g].Load()
		for x := base; x < base+bandWidth; x += 5 {
			if got := s.Search(x); got != want {
				t.Fatalf("worker %d key %d: Search = %v, want %v (last sweep insert=%v)",
					g, x, got, want, want)
			}
		}
		// Keys the worker never touched stay absent.
		for x := base + 1; x < base+bandWidth; x += 5 {
			if s.Search(x) {
				t.Fatalf("untouched band key %d present", x)
			}
		}
	}
	// (b) The hook churn range ends empty, and the static prefill
	// survived all migrations intact.
	for x := churnLo; x < churnHi; x += 2 {
		if s.Search(x) {
			t.Fatalf("churn key %d survived its delete", x)
		}
	}
	for x := staticLo; x < u; x += 7 {
		if !s.Search(x) {
			t.Fatalf("static key %d lost across migrations", x)
		}
	}
	// (c) Sealed-window updates actually helped. Twelve migrations, each
	// sealing a multi-thousand-key dirty set under four live updaters,
	// give the helpers thousands of chances to claim a word; zero assists
	// would mean the help path never ran at all.
	if got := s.SealAssists(); got == 0 {
		t.Fatal("SealAssists() == 0: no sealed-window update ever helped the replay")
	} else {
		t.Logf("sealed-window helpers replayed %d keys across %d migrations", got, migrations)
	}
}
