package resize_test

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/resize"
)

// TestLenExactAtQuiescentMigrationStages: with no update in flight, Len
// is exactly |S| at EVERY stage of a live migration — the snapshot
// replay filling the under-construction table must never leak into the
// reported cardinality. The hook runs on the coordinator goroutine of a
// Resize this test calls synchronously, so every probe is quiescent by
// construction.
func TestLenExactAtQuiescentMigrationStages(t *testing.T) {
	const u, n = int64(1 << 10), int64(200)
	s := mustSet(t, u, 1, resize.Config{})
	for i := int64(0); i < n; i++ {
		s.Insert(i * 5)
	}
	probes := 0
	resize.SetTestHookMigration(func(st resize.Stage) {
		probes++
		if got := s.Len(); got != n {
			t.Errorf("%v: Len = %d, want %d", st, got, n)
		}
	})
	defer resize.SetTestHookMigration(nil)
	for _, k := range []int{4, 16, 4} {
		if err := s.Resize(k); err != nil {
			t.Fatal(err)
		}
	}
	if probes < 12 { // ≥ 4 stages per migration reached the hook
		t.Fatalf("hook fired only %d times", probes)
	}
}

// TestLenBoundedDuringConcurrentReplay: while W workers toggle disjoint
// non-prefill keys and migrations replay snapshots underneath, every
// Len read — including those taken mid-replay by the migration hook —
// stays within the weakly-consistent contract: never below the stable
// prefill (the count summary over-approximates per shard) and at most
// W present toggles plus W in-flight pre-increments above it. At final
// quiescence Len is exact again.
func TestLenBoundedDuringConcurrentReplay(t *testing.T) {
	const (
		u = int64(1 << 10)
		n = int64(100)
		w = 4
	)
	s := mustSet(t, u, 1, resize.Config{})
	for i := int64(0); i < n; i++ {
		s.Insert(i) // prefill keys [0, n), untouched by the togglers
	}
	check := func(where string) {
		if got := s.Len(); got < n || got > n+2*w {
			t.Errorf("%s: Len = %d outside [%d, %d]", where, got, n, n+2*w)
		}
	}
	resize.SetTestHookMigration(func(st resize.Stage) { check(st.String()) })
	defer resize.SetTestHookMigration(nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(key int64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.Insert(key)
					s.Delete(key)
					// Yield between pairs: unyielding same-range churn
					// from every processor is the adversarial schedule
					// under which a single core-trie op (and therefore
					// the migration drain waiting on it) can starve for
					// tens of seconds on a single-P host — see the
					// latency note on resizer.drain.
					runtime.Gosched()
				}
			}
		}(n + int64(g)) // one private key per toggler
	}
	iters := 6
	if testing.Short() {
		iters = 2
	}
	for i := 0; i < iters; i++ {
		for _, k := range []int{4, 16, 4, 1} {
			if err := s.Resize(k); err != nil {
				t.Fatal(err)
			}
			check("between migrations")
		}
	}
	close(stop)
	wg.Wait()
	if got := s.Len(); got != n {
		t.Fatalf("quiescent Len = %d, want %d", got, n)
	}
}
