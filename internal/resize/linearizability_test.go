package resize_test

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lincheck"
	"repro/internal/resize"
	"repro/internal/sharded"
)

// opRunner wraps a resizable set with history recording, mirroring the
// sharded suite's runner.
type opRunner struct {
	s   *resize.Set
	rec *lincheck.Recorder
}

func (r opRunner) insert(k int64) {
	inv := r.rec.Begin()
	r.s.Insert(k)
	r.rec.End(lincheck.OpInsert, k, 0, inv)
}

func (r opRunner) delete(k int64) {
	inv := r.rec.Begin()
	r.s.Delete(k)
	r.rec.End(lincheck.OpDelete, k, 0, inv)
}

func (r opRunner) search(k int64) {
	inv := r.rec.Begin()
	got := r.s.Search(k)
	res := int64(0)
	if got {
		res = 1
	}
	r.rec.End(lincheck.OpSearch, k, res, inv)
}

func (r opRunner) predecessor(y int64) {
	inv := r.rec.Begin()
	got := r.s.Predecessor(y)
	r.rec.End(lincheck.OpPredecessor, y, got, inv)
}

func rounds(t *testing.T, n int) int {
	if testing.Short() {
		return n / 5
	}
	return n
}

// runRecordedResize executes a concurrent workload against a fresh
// resizable set while a coordinator goroutine walks the k→k′ transition
// matrix (1→4, 4→16, 16→4), recording every operation — the hook ops
// included — and checks the whole history for linearizability. The
// lincheck checker demands strict answers, so the cross-shard fallback
// budget is raised exactly as in the sharded suite.
func runRecordedResize(t *testing.T, workers int, hookOps bool,
	script func(id int, rng *rand.Rand, do opRunner)) {
	t.Helper()
	old := sharded.ScanRetries
	sharded.ScanRetries = 1 << 20
	defer func() { sharded.ScanRetries = old }()

	s, err := resize.NewSet(1, plainFactory(64), resize.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := lincheck.NewRecorder()
	if !hookOps {
		// Yield at every stage boundary so worker ops interleave with
		// the migration phases even on a single-P host, where a u=64
		// migration could otherwise run without a scheduling point.
		resize.SetTestHookMigration(func(resize.Stage) { runtime.Gosched() })
		defer resize.SetTestHookMigration(nil)
	}
	if hookOps {
		// Land one recorded operation at a rotating key inside exact
		// migration stages — mid-journal, post-copy, sealed, and between
		// the final replay and the epoch flip. These run on the
		// coordinator goroutine, i.e. truly mid-protocol.
		var n atomic.Int64
		do := opRunner{s: s, rec: rec}
		resize.SetTestHookMigration(func(st resize.Stage) {
			key := (n.Add(1) * 7) % 64
			switch st {
			case resize.StageJournal:
				do.insert(key)
			case resize.StageCopied:
				do.delete(key)
			case resize.StageSealed:
				do.search(key)
			case resize.StageReplayed:
				do.predecessor(key)
			}
		})
		defer resize.SetTestHookMigration(nil)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, k := range []int{4, 16, 4} {
			if err := s.Resize(k); err != nil {
				t.Errorf("Resize(%d): %v", k, err)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*7919 + 13))
			script(id, rng, opRunner{s: s, rec: rec})
		}(w)
	}
	wg.Wait()
	ok, msg, err := lincheck.CheckOrExplain(rec.History())
	if err != nil {
		t.Fatalf("checker error: %v", err)
	}
	if !ok {
		t.Fatalf("resize history not linearizable: %s", msg)
	}
}

// TestResizeLinearizableUniform: random mixed workloads racing the full
// transition matrix.
func TestResizeLinearizableUniform(t *testing.T) {
	for round := 0; round < rounds(t, 150); round++ {
		runRecordedResize(t, 3, false, func(id int, rng *rand.Rand, do opRunner) {
			for i := 0; i < 5; i++ {
				key := rng.Int63n(64)
				switch rng.Intn(4) {
				case 0:
					do.insert(key)
				case 1:
					do.delete(key)
				case 2:
					do.search(key)
				case 3:
					do.predecessor(key)
				}
			}
		})
	}
}

// TestResizeLinearizableMidMigrationOps: the mid-migration hook lands
// recorded operations at exact protocol stages while two workers churn
// — no op may be lost or duplicated across the epoch flip, wherever in
// the protocol it lands.
func TestResizeLinearizableMidMigrationOps(t *testing.T) {
	for round := 0; round < rounds(t, 150); round++ {
		runRecordedResize(t, 2, true, func(id int, rng *rand.Rand, do opRunner) {
			for i := 0; i < 4; i++ {
				key := rng.Int63n(64)
				switch rng.Intn(4) {
				case 0:
					do.insert(key)
				case 1:
					do.delete(key)
				case 2:
					do.search(key)
				case 3:
					do.predecessor(key)
				}
			}
		})
	}
}

// TestResizeLinearizableCrossShardStitch: the sharded suite's stitch
// scenario — churn in the shards a fallback scan crosses — under live
// re-partitioning, where the shard boundaries themselves move.
func TestResizeLinearizableCrossShardStitch(t *testing.T) {
	for round := 0; round < rounds(t, 150); round++ {
		runRecordedResize(t, 4, false, func(id int, rng *rand.Rand, do opRunner) {
			switch id {
			case 0:
				do.insert(2)
				do.insert(5)
				do.delete(5)
			case 1:
				do.insert(9)
				do.delete(9)
				do.predecessor(32)
			case 2:
				do.predecessor(30)
				do.predecessor(30)
			case 3:
				do.search(5)
				do.predecessor(32)
			}
		})
	}
}
