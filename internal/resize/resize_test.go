package resize_test

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/resize"
	"repro/internal/sharded"
)

func plainFactory(u int64) func(k int) (*sharded.Trie, error) {
	return func(k int) (*sharded.Trie, error) { return sharded.New(u, k) }
}

func mustSet(t *testing.T, u int64, initial int, cfg resize.Config) *resize.Set {
	t.Helper()
	s, err := resize.NewSet(initial, plainFactory(u), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestResizeSequentialContent: a random set migrated through every
// transition of the harness matrix — and back down to 2 — matches a map
// reference exactly after each migration (Search, Predecessor, Len,
// Shards), with fresh mutations between hops so later migrations move
// post-resize state, not just the original fill.
func TestResizeSequentialContent(t *testing.T) {
	const u = int64(1 << 10)
	s := mustSet(t, u, 1, resize.Config{})
	ref := make(map[int64]bool)
	rng := rand.New(rand.NewSource(7))
	mutate := func(n int) {
		for i := 0; i < n; i++ {
			k := rng.Int63n(u)
			if rng.Intn(3) == 0 {
				s.Delete(k)
				delete(ref, k)
			} else {
				s.Insert(k)
				ref[k] = true
			}
		}
	}
	verify := func(k int) {
		t.Helper()
		if got := s.Shards(); got != k {
			t.Fatalf("Shards = %d, want %d", got, k)
		}
		if got := s.Len(); got != int64(len(ref)) {
			t.Fatalf("k=%d: Len = %d, want %d", k, got, len(ref))
		}
		want := int64(-1)
		for x := int64(0); x < u; x++ {
			if got := s.Search(x); got != ref[x] {
				t.Fatalf("k=%d: Search(%d) = %v, want %v", k, x, got, ref[x])
			}
			if got := s.Predecessor(x); got != want {
				t.Fatalf("k=%d: Predecessor(%d) = %d, want %d", k, x, got, want)
			}
			if ref[x] {
				want = x
			}
		}
	}
	mutate(400)
	for _, k := range []int{4, 16, 4, 2, 16} {
		if err := s.Resize(k); err != nil {
			t.Fatalf("Resize(%d): %v", k, err)
		}
		verify(k)
		mutate(100)
	}
}

// TestResizeGeometryErrors: targets the sharded geometry rejects come
// back as errors and leave the set untouched.
func TestResizeGeometryErrors(t *testing.T) {
	s := mustSet(t, 64, 4, resize.Config{})
	s.Insert(17)
	for _, bad := range []int{0, -1, 3, 6, 64} { // 64 shards over u=64 → width < 2
		if err := s.Resize(bad); err == nil {
			t.Fatalf("Resize(%d) accepted", bad)
		}
	}
	if s.Shards() != 4 || !s.Search(17) {
		t.Fatalf("failed resize perturbed the set: shards=%d", s.Shards())
	}
}

// expectStages pulls stage notifications off ch until StageActivated,
// asserting the protocol order prefix.
func drainUntilActivated(t *testing.T, ch <-chan resize.Stage, release chan<- struct{}) {
	t.Helper()
	for st := range ch {
		release <- struct{}{}
		if st == resize.StageActivated {
			return
		}
	}
}

// TestMidMigrationVisibility parks a live migration at every stage
// boundary and lands updates while it waits, asserting (a) every update
// is immediately visible to readers regardless of phase, (b) reads
// never block — including through the sealed window — and (c) nothing
// is lost or duplicated across the epoch flip, the deletes of
// bulk-copied keys included.
func TestMidMigrationVisibility(t *testing.T) {
	const u = int64(256)
	s := mustSet(t, u, 1, resize.Config{})
	for _, k := range []int64{10, 100, 200} {
		s.Insert(k)
	}
	stageCh := make(chan resize.Stage)
	release := make(chan struct{})
	resize.SetTestHookMigration(func(st resize.Stage) {
		stageCh <- st
		<-release
	})
	defer resize.SetTestHookMigration(nil)

	done := make(chan error, 1)
	go func() { done <- s.Resize(4) }()

	mustSee := func(stage resize.Stage, present, absent []int64) {
		t.Helper()
		for _, k := range present {
			if !s.Search(k) {
				t.Errorf("%v: Search(%d) = false, want true", stage, k)
			}
		}
		for _, k := range absent {
			if s.Search(k) {
				t.Errorf("%v: Search(%d) = true, want false", stage, k)
			}
		}
	}
	step := func(want resize.Stage) {
		t.Helper()
		if st := <-stageCh; st != want {
			t.Fatalf("stage = %v, want %v", st, want)
		}
	}

	step(resize.StageJournal)
	// Journal phase: updates apply to the retiring table and journal.
	s.Insert(50)
	s.Delete(100)
	mustSee(resize.StageJournal, []int64{10, 50, 200}, []int64{100})
	release <- struct{}{}

	step(resize.StageDrained)
	s.Insert(51)
	release <- struct{}{}

	step(resize.StageCopied)
	// Post-copy: delete a key the bulk copy has already moved — only the
	// journal replay can un-copy it — and insert a fresh one.
	s.Delete(10)
	s.Insert(52)
	mustSee(resize.StageCopied, []int64{50, 51, 52, 200}, []int64{10, 100})
	release <- struct{}{}

	// The five journaled keys are under the catch-up threshold, so the
	// protocol seals directly.
	step(resize.StageSealed)
	// Reads must not block while updates wait out the sealed window; a
	// concurrent insert parks until activation and must land afterwards.
	mustSee(resize.StageSealed, []int64{50, 51, 52, 200}, []int64{10, 100})
	sealedIns := make(chan struct{})
	go func() {
		s.Insert(60)
		close(sealedIns)
	}()
	release <- struct{}{}

	step(resize.StageReplayed)
	mustSee(resize.StageReplayed, []int64{50, 51, 52, 200}, []int64{10, 100})
	release <- struct{}{}

	step(resize.StageActivated)
	release <- struct{}{}
	if err := <-done; err != nil {
		t.Fatalf("Resize: %v", err)
	}
	<-sealedIns
	if s.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", s.Shards())
	}
	mustSee(resize.StageActivated, []int64{50, 51, 52, 60, 200}, []int64{10, 100})
	if got := s.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
}

// TestResizeBusy: a second coordinator is refused while a migration is
// parked mid-protocol, and succeeds after it completes.
func TestResizeBusy(t *testing.T) {
	s := mustSet(t, 256, 1, resize.Config{})
	stageCh := make(chan resize.Stage)
	release := make(chan struct{})
	resize.SetTestHookMigration(func(st resize.Stage) {
		stageCh <- st
		<-release
	})
	defer resize.SetTestHookMigration(nil)
	done := make(chan error, 1)
	go func() { done <- s.Resize(4) }()
	if st := <-stageCh; st != resize.StageJournal {
		t.Fatalf("first stage %v", st)
	}
	if err := s.Resize(8); !errors.Is(err, resize.ErrBusy) {
		t.Fatalf("concurrent Resize: %v, want ErrBusy", err)
	}
	if !s.Stats().Migrating {
		t.Fatal("Stats().Migrating = false mid-migration")
	}
	go drainUntilActivated(t, stageCh, release)
	release <- struct{}{}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	resize.SetTestHookMigration(nil)
	if err := s.Resize(8); err != nil {
		t.Fatalf("post-completion Resize: %v", err)
	}
	if s.Shards() != 8 {
		t.Fatalf("Shards = %d, want 8", s.Shards())
	}
}

// TestResizeStatsCounts: grows and shrinks count completed migrations
// by direction; a same-size migration counts as neither.
func TestResizeStatsCounts(t *testing.T) {
	s := mustSet(t, 256, 2, resize.Config{})
	for _, k := range []int{4, 8, 4, 4, 2} {
		if err := s.Resize(k); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Grows != 2 || st.Shrinks != 2 || st.Shards != 2 || st.Migrating {
		t.Fatalf("stats = %+v, want 2 grows, 2 shrinks, 2 shards, idle", st)
	}
}

// waitFor polls until cond holds or the deadline passes — the
// decider-driven migrations below run asynchronously.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeciderDrivenGrow: with a grow threshold at the solo-publisher
// floor, plain sequential inserts must carry the partition from 1 shard
// to the 4-shard cap and then stop proposing.
func TestDeciderDrivenGrow(t *testing.T) {
	const u = int64(256)
	s := mustSet(t, u, 1, resize.Config{
		MinShards: 1, MaxShards: 4,
		SampleEvery: 2, MinDwell: 1, Grow: 1, MinKeysPerShard: 1,
	})
	rng := rand.New(rand.NewSource(3))
	seen := make(map[int64]bool)
	grow := func() {
		for i := 0; i < 5000; i++ {
			k := rng.Int63n(u)
			s.Insert(k)
			seen[k] = true
		}
	}
	grow()
	waitFor(t, "grow to 4 shards", func() bool { grow(); return s.Shards() == 4 })
	waitFor(t, "migration to settle", func() bool { return !s.Stats().Migrating })
	if st := s.Stats(); st.Grows != 2 || st.Shrinks != 0 {
		t.Fatalf("stats = %+v, want exactly 2 grows (1→2→4)", st)
	}
	for k := range seen {
		if !s.Search(k) {
			t.Fatalf("key %d lost across decider-driven migrations", k)
		}
	}
	// At the cap with the estimate pinned at the floor ≥ Grow, further
	// ops must not propose again (Grow 1 clamps Shrink to 0.5, below any
	// reachable estimate).
	grow()
	if st := s.Stats(); st.Grows != 2 || st.Shrinks != 0 {
		t.Fatalf("proposals continued at the cap: %+v", st)
	}
}

// TestDeciderDrivenShrink: a partition born at 4 shards with a
// high grow bar and a shrink threshold above the solo estimate must
// walk itself down to 1 shard.
func TestDeciderDrivenShrink(t *testing.T) {
	const u = int64(256)
	s, err := resize.NewSet(4, plainFactory(u), resize.Config{
		MinShards: 1, MaxShards: 4,
		SampleEvery: 2, MinDwell: 1, Grow: 100, Shrink: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	churn := func() {
		for i := 0; i < 2000; i++ {
			s.Insert(rng.Int63n(u))
		}
	}
	churn()
	waitFor(t, "shrink to 1 shard", func() bool { churn(); return s.Shards() == 1 })
	waitFor(t, "migration to settle", func() bool { return !s.Stats().Migrating })
	if st := s.Stats(); st.Shrinks != 2 || st.Grows != 0 {
		t.Fatalf("stats = %+v, want exactly 2 shrinks (4→2→1)", st)
	}
}

// TestNewSetBoundsValidation: decider bounds incompatible with the
// universe geometry fail construction (the cap is u/2: every shard
// must span at least two keys), as does an initial count the factory's
// own geometry rejects.
func TestNewSetBoundsValidation(t *testing.T) {
	if _, err := resize.NewSet(4, plainFactory(64), resize.Config{MinShards: 64, MaxShards: 64}); err == nil {
		t.Fatal("MinShards beyond the geometry cap accepted")
	}
	if _, err := resize.NewSet(128, plainFactory(64), resize.Config{}); err == nil {
		t.Fatal("initial count beyond the geometry cap accepted")
	}
}

// TestAdaptiveStatsMonotonicAcrossMigration: transition counters carried
// from retiring tables must never double-count or dip — at EVERY stage
// of a migration (the fold rides the epoch object, atomic with the
// flip) and across chained migrations.
func TestAdaptiveStatsMonotonicAcrossMigration(t *testing.T) {
	f := func(k int) (*sharded.Trie, error) {
		// Sampling disabled (huge cadence): transitions come only from
		// the explicit Step below, so the expected count is exact.
		return sharded.NewAdaptive(256, k, adapt.Config{SampleEvery: 1 << 30, MinDwell: 1})
	}
	s, err := resize.NewSet(1, f, resize.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Force exactly one enable on the live table's controller.
	s.Table().ShardController(0).Step(adapt.Sample{AnnLen: 100})
	if en, dis := s.AdaptiveStats(); en != 1 || dis != 0 {
		t.Fatalf("pre-migration AdaptiveStats = (%d, %d), want (1, 0)", en, dis)
	}
	resize.SetTestHookMigration(func(st resize.Stage) {
		if en, dis := s.AdaptiveStats(); en != 1 || dis != 0 {
			t.Errorf("%v: AdaptiveStats = (%d, %d), want (1, 0)", st, en, dis)
		}
	})
	defer resize.SetTestHookMigration(nil)
	for _, k := range []int{4, 2} {
		if err := s.Resize(k); err != nil {
			t.Fatal(err)
		}
		if en, dis := s.AdaptiveStats(); en != 1 || dis != 0 {
			t.Fatalf("after Resize(%d): AdaptiveStats = (%d, %d), want (1, 0)", k, en, dis)
		}
	}
}
