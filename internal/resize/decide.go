// The resize decision layer: a deterministic controller that proposes
// grow/shrink targets from the contention signal the adaptive-combining
// work already measures (ROADMAP: "resize k online from the occupancy
// summary + a contention signal"). Like adapt.Controller, the decision
// function is a pure Step over injected samples — the unit suite drives
// it with synthetic signals and asserts exact flip samples, with no
// sleeps and no real contention.
package resize

import "sync/atomic"

// Defaults, chosen against the same measured regimes as the adapt
// thresholds (thin shards sample 0–4 visible peers, clustered ones
// 7–15): a sustained ≥ 3 concurrent publishers on the busiest shard
// (estimate ≥ 4) is unambiguous clustering worth splitting, while an
// estimate at ~1 means updates arrive essentially solo and half the
// shards are pure scan overhead for Len and the cross-shard stitches.
const (
	// DefaultSampleEvery is the update-op cadence between signal samples.
	DefaultSampleEvery = 512
	// DefaultAlpha is the EWMA weight of the newest observation.
	DefaultAlpha = 0.4
	// DefaultGrow is the busiest-shard peer estimate at which the
	// partition doubles.
	DefaultGrow = 4.0
	// DefaultShrink is the estimate at which it halves. The gap to
	// DefaultGrow is the hysteresis band; doubling k roughly halves the
	// per-shard estimate, so the band must span a factor of two or a
	// fresh grow would immediately propose shrinking back.
	DefaultShrink = 1.25
	// DefaultMinDwell is the minimum samples between proposals. Resize
	// dwells are deliberately an order of magnitude coarser than the
	// adapt controller's (32 samples ≈ 16k update ops at the default
	// cadence): a combining-mode flip costs one cache-cold transition,
	// but a migration costs scheduler rotations and a full table copy —
	// measured in hundreds of milliseconds on a loaded host — so a
	// proposal cadence near the migration latency would spend the whole
	// run migrating. The RS1 trajectory caught exactly this with the
	// original dwell of 4: a transient lull late in a phase shrank a
	// converged 16-shard partition mid-run and cost ~20% of the phase.
	DefaultMinDwell = 32
	// DefaultMinKeysPerShard vetoes grows that would leave shards
	// essentially empty: splitting contention only helps if the shards
	// hold enough keys for updates to actually spread.
	DefaultMinKeysPerShard = 2
)

// Config tunes the Decider. The zero value of every field except
// MinShards/MaxShards selects its default; MinShards and MaxShards
// bound the proposals (both must be powers of two — the sharded
// geometry's requirement — and are validated by the facade).
type Config struct {
	// MinShards and MaxShards bound the shard count (inclusive).
	MinShards, MaxShards int
	// SampleEvery is the number of updates between signal samples.
	SampleEvery int64
	// Alpha is the EWMA weight of the newest observation, in (0, 1].
	Alpha float64
	// Grow is the peer-estimate EWMA at or above which the Decider
	// proposes doubling the shard count.
	Grow float64
	// Shrink is the estimate at or below which it proposes halving.
	// Must stay below Grow; an inverted band is clamped to Grow/2.
	Shrink float64
	// MinDwell is the minimum samples between proposals.
	MinDwell int64
	// MinKeysPerShard vetoes a grow while occupancy < target·this.
	MinKeysPerShard int64
}

// withDefaults fills zero fields with the tuned defaults.
func (c Config) withDefaults() Config {
	if c.MinShards <= 0 {
		c.MinShards = 1
	}
	if c.MaxShards <= 0 {
		c.MaxShards = c.MinShards
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.Grow <= 0 {
		c.Grow = DefaultGrow
	}
	if c.Shrink <= 0 {
		c.Shrink = DefaultShrink
	}
	if c.Shrink >= c.Grow {
		c.Shrink = c.Grow / 2
	}
	if c.MinDwell <= 0 {
		c.MinDwell = DefaultMinDwell
	}
	if c.MinKeysPerShard <= 0 {
		c.MinKeysPerShard = DefaultMinKeysPerShard
	}
	return c
}

// Signal is one reading of the partition's resize inputs.
type Signal struct {
	// Peers is the busiest shard's concurrent-publisher estimate
	// (in-flight updates, announced updates, plus the sampler itself) —
	// the same quantity the adapt controller thresholds on.
	Peers float64
	// Shards is the current shard count.
	Shards int
	// Occupancy is the partition's cardinality estimate (Len).
	Occupancy int64
}

// Decider proposes shard-count changes with hysteresis and dwell. Step
// is called by one sampler at a time (the resizer's sampling word) or
// directly by tests; the decision state is deliberately plain fields.
type Decider struct {
	cfg   Config
	ewma  float64
	dwell int64
	// Proposal counters (monitoring; written only by the sampler).
	grows, shrinks atomic.Int64
}

// NewDecider returns a Decider with cfg's thresholds (zero fields take
// the tuned defaults). The estimate starts at 1 — a solo publisher —
// mirroring adapt.New's direct start.
func NewDecider(cfg Config) *Decider {
	return &Decider{cfg: cfg.withDefaults(), ewma: 1}
}

// Config returns the resolved (defaults-filled) configuration.
func (d *Decider) Config() Config { return d.cfg }

// Estimate returns the current peer-estimate EWMA (quiescent
// inspection, like adapt.Controller.Estimate).
func (d *Decider) Estimate() float64 { return d.ewma }

// Proposals returns the cumulative grow and shrink proposal counts.
func (d *Decider) Proposals() (grows, shrinks int64) {
	return d.grows.Load(), d.shrinks.Load()
}

// pow2AtLeast returns the smallest power of two ≥ x (min 1).
func pow2AtLeast(x float64) int {
	k := 1
	for float64(k) < x && k < 1<<30 {
		k <<= 1
	}
	return k
}

// Catch-up defaults (see CatchupConfig). MaxRounds is higher than the
// old fixed budget of 2 because the tracker can now bail out of a
// non-converging loop early — the budget only binds on workloads whose
// journal keeps genuinely (slowly) shrinking, where extra rounds pay.
const (
	DefaultCatchupRounds = 4
	DefaultCatchupBelow  = 64
	DefaultChurnRounds   = 2
)

// CatchupConfig tunes the migration catch-up convergence decision.
type CatchupConfig struct {
	// MaxRounds bounds the catch-up generations per migration.
	MaxRounds int
	// Below ends catch-up once the whole journal holds at most this many
	// keys: the sealed replay of so small a window is trivially short.
	Below int64
	// ChurnRounds is the consecutive rounds a shard's journal must fail
	// to halve before the shard is classified churn-heavy.
	ChurnRounds int
}

// withDefaults fills zero fields with the tuned defaults.
func (c CatchupConfig) withDefaults() CatchupConfig {
	if c.MaxRounds <= 0 {
		c.MaxRounds = DefaultCatchupRounds
	}
	if c.Below <= 0 {
		c.Below = DefaultCatchupBelow
	}
	if c.ChurnRounds <= 0 {
		c.ChurnRounds = DefaultChurnRounds
	}
	return c
}

// CatchupVerdict is one Observe decision.
type CatchupVerdict int

const (
	// CatchupContinue: run another catch-up round.
	CatchupContinue CatchupVerdict = iota
	// CatchupDone: the journal is below the Below threshold.
	CatchupDone
	// CatchupStalled: the whole journal failed to halve — the dirty set
	// is the live hot set and replaying it again buys nothing.
	CatchupStalled
	// CatchupChurn: shards that individually failed to halve for
	// ChurnRounds consecutive rounds hold the majority of the remaining
	// journal. The converging shards are already drained; what is left
	// re-dirties as fast as a contended replay clears it, while the
	// sealed replay clears it nearly uncontended — skip to seal.
	CatchupChurn
	// CatchupExhausted: MaxRounds rounds have run.
	CatchupExhausted
)

// String names the verdict for trace output and test failures.
func (v CatchupVerdict) String() string {
	switch v {
	case CatchupContinue:
		return "continue"
	case CatchupDone:
		return "done"
	case CatchupStalled:
		return "stalled"
	case CatchupChurn:
		return "churn"
	case CatchupExhausted:
		return "exhausted"
	}
	return "unknown"
}

// CatchupTracker decides when a migration's catch-up loop should stop
// replaying journal generations and skip ahead to seal+replay. Like
// Decider, it is a pure state machine over injected observations — the
// per-shard journal sizes measured between rounds — so the unit suite
// drives it with synthetic trajectories and asserts the exact round each
// verdict fires, with no migrations and no concurrency.
//
// The old loop had only the global halving rule, which a single
// churn-heavy shard hides: its steady re-dirtying is masked by the other
// shards' convergence, so the loop burns its whole round budget
// replaying — at contended speed — keys the sealed replay would clear in
// microseconds. The per-shard churn rule catches exactly that shape.
type CatchupTracker struct {
	cfg       CatchupConfig
	rounds    int     // Observe calls so far; calls-1 rounds have run
	prevTotal int64   // last observation's journal total
	prev      []int64 // last observation's per-shard sizes
	churn     []int   // consecutive non-halving rounds per shard
}

// NewCatchupTracker returns a tracker with cfg's thresholds (zero
// fields take the tuned defaults).
func NewCatchupTracker(cfg CatchupConfig) *CatchupTracker {
	return &CatchupTracker{cfg: cfg.withDefaults()}
}

// Observe feeds the current generation's per-shard journal sizes —
// before the first round, then after each round — and returns whether to
// run another round (CatchupContinue) or why to stop. The shard count
// must be stable across calls (within one migration it is: every journal
// generation is over the same retiring table).
func (t *CatchupTracker) Observe(sizes []int64) CatchupVerdict {
	var total int64
	for _, s := range sizes {
		total += s
	}
	first := t.rounds == 0
	if !first {
		for i, s := range sizes {
			if s > 0 && s*2 > t.prev[i] {
				t.churn[i]++
			} else {
				t.churn[i] = 0
			}
		}
	} else {
		t.prev = make([]int64, len(sizes))
		t.churn = make([]int, len(sizes))
	}
	prevTotal := t.prevTotal
	t.rounds++
	copy(t.prev, sizes)
	t.prevTotal = total
	if total <= t.cfg.Below {
		return CatchupDone
	}
	if !first {
		if total*2 > prevTotal {
			return CatchupStalled
		}
		var churnKeys int64
		for i, s := range sizes {
			if t.churn[i] >= t.cfg.ChurnRounds {
				churnKeys += s
			}
		}
		if churnKeys*2 > total {
			return CatchupChurn
		}
	}
	if t.rounds > t.cfg.MaxRounds {
		return CatchupExhausted
	}
	return CatchupContinue
}

// Step feeds one signal through the decision: EWMA the peer estimate,
// then — once MinDwell samples have accumulated since the last proposal
// — propose growing at or above Grow (unless the occupancy guard or
// MaxShards vetoes) and halving at or below Shrink (down to MinShards).
//
// A grow JUMPS to the estimate: the proposed count is the smallest
// power of two ≥ the EWMA (at least double, at most MaxShards), because
// the estimate IS the publisher count the partition should spread — and
// because migrations are wall-clock expensive on a loaded host (each
// epoch drain waits out a scheduler rotation), one 1→8 migration beats
// three chained doublings arriving after the workload moved on. A
// shrink halves: excess shards cost only O(k) scan overhead, so there
// is no hurry, and halving keeps a mis-read low estimate cheap to undo.
//
// The returned target is the proposed shard count; ok reports whether a
// resize is proposed. A veto consumes no dwell: the Decider keeps
// watching and proposes on the first sample the veto lifts.
func (d *Decider) Step(s Signal) (target int, ok bool) {
	d.ewma = d.cfg.Alpha*s.Peers + (1-d.cfg.Alpha)*d.ewma
	if d.dwell++; d.dwell < d.cfg.MinDwell {
		return 0, false
	}
	switch {
	case d.ewma >= d.cfg.Grow && s.Shards*2 <= d.cfg.MaxShards:
		target = pow2AtLeast(d.ewma)
		if target < s.Shards*2 {
			target = s.Shards * 2
		}
		if target > d.cfg.MaxShards {
			target = d.cfg.MaxShards
		}
		if s.Occupancy < int64(target)*d.cfg.MinKeysPerShard {
			return 0, false // occupancy veto, dwell preserved
		}
		d.grows.Add(1)
		d.dwell = 0
		return target, true
	case d.ewma <= d.cfg.Shrink && s.Shards > d.cfg.MinShards:
		d.shrinks.Add(1)
		d.dwell = 0
		return s.Shards / 2, true
	}
	return 0, false
}
