// Package resize re-partitions a live sharded trie from k to k′ shards
// without blocking readers: a coordinator builds the new partition in
// private, journals concurrent updates through per-shard dirty bitmaps,
// and hands authority over in one epoch flip (DESIGN.md §Shard
// resize).
//
// # Epochs
//
// The routing state is a single atomic pointer to an immutable epoch
// object; every phase change installs a NEW epoch, so an operation that
// loaded an epoch observes one consistent phase for its whole lifetime
// and pointer identity doubles as the validation token. An epoch carries
// the authoritative table (cur), the under-construction table (next,
// migration phases only), per-shard entry gates, and — in the journal
// phase — per-shard dirty tries.
//
// Updates follow acquire-validate: load the epoch, increment the owning
// shard's gate, re-load the epoch, and retreat if it moved. A successful
// validation pins the epoch: the coordinator's drain of that epoch's
// gates cannot complete until the operation releases, so every admitted
// operation runs to completion inside the epoch it read. Readers never
// gate — the authoritative table is always safe to read (see below).
//
// # Migration protocol
//
//		stable(A)  → journal(A, dirty) → [journal generations…] → sealed(A→B) → stable(B)
//
//	 1. Install a journal epoch. Updates still apply to the OLD table A —
//	    A stays the single source of truth throughout — but first insert
//	    their key into the owning old shard's dirty trie.
//	 2. Drain the stable epoch's gates: pre-journal stragglers (which
//	    write A without journaling) finish before the copy starts.
//	 3. Bulk-copy A into the private new table B by scanning A live. The
//	    scan races with journal-phase updates, but any key whose A-state
//	    changes after the journal epoch was installed is in a dirty trie
//	    BEFORE the change lands (journal-before-apply), so the scan only
//	    needs to be correct for untouched keys — and for those, every
//	    per-key probe is exact. The dirty set absorbs all scan races.
//	 4. Catch-up generations: install a fresh journal epoch, drain the
//	    previous one (freezing its dirty tries), and replay each frozen
//	    dirty key x as B[x] ← A[x]. Keys racing the replay are dirty in
//	    the newer generation and get replayed again.
//	 5. Seal: install the sealed epoch (new updates spin until activation;
//	    readers keep reading A), drain the last journal generation — every
//	    update that landed in the retiring epoch now runs its ordinary
//	    lock-free protocol in A to completion — then replay the final
//	    frozen dirty set. B now equals A exactly.
//	 6. Activate: install the stable epoch with cur = B. The flip is the
//	    linearization boundary: reads that loaded an older epoch return
//	    A's frozen content, which equals B's content at the flip instant,
//	    so they linearize immediately before it.
//
// # Progress
//
// Readers never block in any phase: the authoritative table is live
// (stable/journal), or frozen-but-valid (sealed and retired — a frozen
// A equals B at the flip, so a straggling read linearizes at the flip,
// inside its own invocation window). Updates are lock-free in the
// stable and journal phases; only updates arriving inside the sealed
// window wait, for the in-flight retiring-epoch updates plus one
// bounded dirty replay — the same bounded-handoff trade the combining
// layer already makes for claimed operations (DESIGN.md §Shard resize
// has the full argument).
package resize

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/atomicx"
	"repro/internal/bitmap"
	"repro/internal/obs"
)

// Stage identifies a point of the migration protocol, for the test hook.
type Stage int

// Migration stages, in protocol order.
const (
	// StageJournal: the journal epoch is installed; updates now journal.
	StageJournal Stage = iota
	// StageDrained: pre-journal stragglers have finished.
	StageDrained
	// StageCopied: the bulk copy of the old table into the new one is done.
	StageCopied
	// StageCatchup: one catch-up generation has been replayed.
	StageCatchup
	// StageSealed: the sealed epoch is installed; new updates wait.
	StageSealed
	// StageReplayed: the final dirty replay is done; old ≡ new.
	StageReplayed
	// StageActivated: the new table is authoritative; migration complete.
	StageActivated
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageJournal:
		return "journal"
	case StageDrained:
		return "drained"
	case StageCopied:
		return "copied"
	case StageCatchup:
		return "catchup"
	case StageSealed:
		return "sealed"
	case StageReplayed:
		return "replayed"
	case StageActivated:
		return "activated"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// testHookMigration, when non-nil, runs on the coordinator goroutine at
// every stage boundary. The resize-aware suites use it to park a
// migration mid-protocol and land operations at exact stages. Install
// before concurrent use and remove after quiescence, like
// combine.SetTestHookMidRound.
var testHookMigration func(Stage)

// SetTestHookMigration installs f (nil removes it). Test-only.
func SetTestHookMigration(f func(Stage)) { testHookMigration = f }

func hook(s Stage) {
	if h := testHookMigration; h != nil {
		h(s)
	}
}

// Migration phases. The phase is a plain field: immutable per epoch
// object, so no atomics are needed to read it.
const (
	phaseStable = iota
	phaseJournal
	phaseSealed
)

// epoch is one immutable generation of the routing state.
type epoch[T migTable] struct {
	phase int
	// cur is the authoritative table every operation applies to and
	// every query reads. During journal/sealed phases this is the OLD
	// (retiring) table.
	cur T
	// next is the under-construction table (zero value outside
	// migrations). Private to the coordinator until activation.
	next T
	// dirty journals the keys updated during this journal-phase
	// generation, one bitmap per cur shard (nil outside the journal
	// phase): one bit per shard-local key, marked with a single atomic OR
	// (bitmap.Words — the same summary-word helpers behind the bitstrie
	// descent compression). Updates set their key's bit BEFORE applying,
	// so at any instant dirty covers every key whose cur-state changed
	// since the generation was installed. Only the coordinator ever reads
	// the bits (after draining the generation's writers), so the journal
	// needs no per-key versioning — membership at replay time is re-read
	// from cur.
	dirty []bitmap.Words
	// gates admit updates, one padded counter per cur shard. A drained
	// epoch (all gates observed zero after a successor epoch was
	// installed) can never regain a writer: late acquirers fail the
	// pointer validation and retreat.
	gates []atomicx.PadInt64
	// width and shardBits cache cur's geometry for gate/dirty indexing.
	width     int64
	shardBits uint
	// carryEnables/carryDisables accumulate the adaptive-combining
	// transition counters of every RETIRED table (immutable per epoch;
	// the activation epoch folds the newly retired table in). Riding on
	// the epoch object makes the fold atomic with the flip, so
	// AdaptiveStats can never observe the retiring table both in the
	// base and live (it reads one epoch: either cur == old with the old
	// base, or cur == new with the folded base).
	carryEnables, carryDisables int64
	// help is the sealed epoch's shared replay state (nil in every other
	// phase): updates that arrive inside the sealed window claim dirty
	// words from it and replay them instead of burning their wait on
	// Gosched — the seal drains faster the more writers it parks.
	help *helpState[T]
}

// helpState coordinates the final dirty replay between the migration
// coordinator and the sealed-window updates helping it. The dirty words
// of the last journal generation form a flat work list (shard-major, one
// bitmap word per unit); workers claim words with one atomic fetch-add,
// so each word — and therefore each key — is replayed by exactly one
// goroutine. Replay is pure state transfer (next[x] ← cur[x] on a frozen
// cur), so helpers need no further synchronization with each other or
// with the coordinator beyond the claim.
type helpState[T migTable] struct {
	// ready gates helpers out until the generation's writers are
	// drained: before that, cur is still changing and a replayed word
	// could transfer a value the frozen-replay argument does not cover.
	ready         atomic.Bool
	cursor        atomic.Int64 // next work-list word to claim
	done          atomic.Int64 // words fully replayed
	total         int64        // work-list length (shards × words per shard)
	dirty         []bitmap.Words
	cur           T // frozen retiring table (authoritative values)
	next          T // under-construction table being completed
	wordsPerShard int64
	shardBits     uint
}

// shardOf returns the cur-shard index owning global key x.
func (e *epoch[T]) shardOf(x int64) int { return int(x >> e.shardBits) }

// migTable is what the migration engine needs from a partition
// generation; *sharded.Trie and *sharded.Relaxed both satisfy it.
type migTable interface {
	Shards() int
	U() int64
	Len() int64
	Insert(x int64)
	Delete(x int64)
	Search(x int64) bool
}

// Stats is a snapshot of a resizer's lifetime counters.
type Stats struct {
	// Shards is the current (authoritative) shard count.
	Shards int
	// Grows and Shrinks count completed migrations by direction.
	Grows, Shrinks int64
	// Migrating reports whether a migration is in flight.
	Migrating bool
}

// resizer is the shared engine under Set and RelaxedSet: the epoch
// pointer, the migration coordinator, and the decision sampling.
type resizer[T migTable] struct {
	u       int64
	factory func(k int) (T, error)
	// scan enumerates the table's current keys. It may run against a
	// live table: it must be exact for keys that no concurrent update
	// touches and merely terminate for the rest (the dirty journal
	// corrects them).
	scan func(t T, emit func(key int64))
	// peers optionally reports extra per-shard publisher evidence
	// beyond the gates (the core tables expose announcement-list
	// lengths); nil for tables without one.
	peers func(t T) int64
	// bulk optionally loads a run of keys into the (private) new table
	// through the table's batch entrypoint, amortizing announcement
	// passes during the copy; nil falls back to per-key Insert.
	bulk func(next T, keys []int64)
	// carry optionally reads a table's adaptive-combining transition
	// counters so they survive the table's retirement.
	carry func(t T) (enables, disables int64)

	epoch    atomic.Pointer[epoch[T]]
	resizing atomic.Bool

	dec *Decider
	// ticks stripes the sample-cadence counter by key so the hot path
	// never touches a shared line — a single global counter here would
	// reintroduce exactly the all-ops contention point the sharded
	// layer exists to remove. Each stripe fires after SampleEvery of
	// ITS ops; with tickStripes stripes sharing the traffic, some
	// stripe fires roughly every SampleEvery global ops.
	ticks    [tickStripes]atomicx.PadInt64
	sampling atomic.Uint32

	grows, shrinks atomicx.PadInt64
	// assists counts keys replayed by sealed-window helpers (monitoring;
	// the helper-seal stress test asserts it moves).
	assists atomicx.PadInt64

	// events, when non-nil, receives migration trace events (set once via
	// SetEvents, before concurrent use): one KindResizeGrow/KindResizeShrink
	// per completed migration carrying the k→k′ transition and per-stage
	// durations, and one KindSealAssist per helper-claimed dirty word that
	// replayed keys. Migrations are rare and seal windows short, so none of
	// this rides a steady-state path.
	events *obs.Ring
}

// SetEvents routes migration trace events to ring. Install before
// concurrent use (the field is plain).
func (r *resizer[T]) SetEvents(ring *obs.Ring) { r.events = ring }

// newEpoch builds a generation around cur. journal selects the journal
// phase (with fresh dirty tries); sealedNext non-zero selects the sealed
// phase.
func newEpoch[T migTable](phase int, cur, next T) (*epoch[T], error) {
	k := cur.Shards()
	width := cur.U() / int64(k)
	e := &epoch[T]{
		phase:     phase,
		cur:       cur,
		next:      next,
		gates:     make([]atomicx.PadInt64, k),
		width:     width,
		shardBits: uint(bits.Len64(uint64(width)) - 1),
	}
	if phase == phaseJournal {
		e.dirty = make([]bitmap.Words, k)
		for i := range e.dirty {
			e.dirty[i] = bitmap.NewWords(width)
		}
	}
	return e, nil
}

func newResizer[T migTable](initial T, factory func(k int) (T, error),
	scan func(T, func(int64)), cfg Config) (*resizer[T], error) {
	e, err := newEpoch(phaseStable, initial, *new(T))
	if err != nil {
		return nil, err
	}
	r := &resizer[T]{u: initial.U(), factory: factory, scan: scan}
	r.epoch.Store(e)
	if cfg != (Config{}) {
		c := cfg.withDefaults()
		// The geometry bound: a shard must span at least two keys.
		if maxK := int(r.u / 2); c.MaxShards > maxK {
			c.MaxShards = maxK
		}
		if c.MinShards > c.MaxShards {
			return nil, fmt.Errorf("resize: MinShards %d exceeds MaxShards %d (universe %d)",
				c.MinShards, c.MaxShards, r.u)
		}
		r.dec = NewDecider(c)
	}
	return r, nil
}

// table returns the authoritative table for the calling read.
func (r *resizer[T]) table() T { return r.epoch.Load().cur }

// Shards returns the current authoritative shard count.
func (r *resizer[T]) Shards() int { return r.table().Shards() }

// U returns the padded universe size.
func (r *resizer[T]) U() int64 { return r.u }

// Len returns the authoritative table's weakly-consistent cardinality
// estimate (exact at quiescence). A migration in flight changes nothing:
// the under-construction table is never consulted.
func (r *resizer[T]) Len() int64 { return r.table().Len() }

// Search reports membership of x; one epoch load plus the authoritative
// table's Search. Readers never gate and never block, in any phase.
func (r *resizer[T]) Search(x int64) bool { return r.table().Search(x) }

// Stats returns the resize counters.
func (r *resizer[T]) Stats() Stats {
	return Stats{
		Shards:    r.Shards(),
		Grows:     r.grows.Load(),
		Shrinks:   r.shrinks.Load(),
		Migrating: r.resizing.Load(),
	}
}

// AdaptiveStats sums the adaptive-combining transition counters across
// the live table and every retired one (zeros when the tables carry no
// controllers).
func (r *resizer[T]) AdaptiveStats() (enables, disables int64) {
	if r.carry == nil {
		return 0, 0
	}
	ep := r.epoch.Load()
	e, d := r.carry(ep.cur)
	return ep.carryEnables + e, ep.carryDisables + d
}

// enter admits an update on key x: acquire the owning shard's gate in
// the current epoch and validate the epoch did not move. Updates
// arriving inside a sealed window help drain it — they claim dirty words
// from the final replay's work list and replay them — and only yield
// when there is no work left to claim (replay not yet ready, or all
// words taken and the activation flip pending).
func (r *resizer[T]) enter(x int64) (*epoch[T], int) {
	for {
		e := r.epoch.Load()
		if e.phase == phaseSealed {
			// The seal window is bounded: in-flight retiring-epoch
			// updates plus one frozen dirty replay (see package comment)
			// — and helping shrinks the replay term instead of just
			// waiting it out.
			if h := e.help; h == nil || !h.ready.Load() || r.helpReplay(h, true) == 0 {
				runtime.Gosched()
			}
			continue
		}
		gi := e.shardOf(x)
		e.gates[gi].Add(1)
		if r.epoch.Load() == e {
			return e, gi
		}
		e.gates[gi].Add(-1)
	}
}

// Insert adds x to the set through the current epoch. In the journal
// phase the key is journaled BEFORE it is applied — the ordering the
// scan-race argument rests on.
func (r *resizer[T]) Insert(x int64) {
	r.tick(x)
	e, gi := r.enter(x)
	if e.phase == phaseJournal {
		e.dirty[gi].Set(x & (e.width - 1)) // one atomic OR
	}
	e.cur.Insert(x)
	e.gates[gi].Add(-1)
}

// Delete removes x from the set through the current epoch, with
// Insert's journal-before-apply ordering.
func (r *resizer[T]) Delete(x int64) {
	r.tick(x)
	e, gi := r.enter(x)
	if e.phase == phaseJournal {
		e.dirty[gi].Set(x & (e.width - 1)) // one atomic OR
	}
	e.cur.Delete(x)
	e.gates[gi].Add(-1)
}

// drain blocks until every gate of e has been observed zero. Because any
// acquire completing after its gate was observed zero necessarily also
// validates after the successor epoch was installed — and retreats — a
// fully drained epoch never regains a writer.
//
// Latency: drain completes when the epoch's in-flight updates do, so a
// migration inherits the underlying trie's PER-OP latency tail, which
// the paper bounds only amortized (O(ċ² + log u)): an adversarial
// schedule — same-range update pairs back-to-back from every processor
// of a saturated single-P host — measured an individual bare-trie
// delete at 25s while system throughput stayed at millions of ops/s.
// Safety is unaffected (operations keep flowing through the successor
// epoch the whole time, and the coordinator just waits), but test
// drivers that block on Resize while churning unyieldingly reproduce
// exactly that schedule; see the yield note in the resize test suites.
func (r *resizer[T]) drain(e *epoch[T]) {
	for i := range e.gates {
		for e.gates[i].Load() != 0 {
			runtime.Gosched()
		}
	}
}

// replay forces next[x] ← old[x] for every key journaled in the FROZEN
// generation e (its writers drained). Pure state transfer: idempotent,
// safe to repeat, and next is still private, so no interleaving can
// lose or duplicate an operation.
func (r *resizer[T]) replay(e *epoch[T], next T) {
	for i := range e.dirty {
		base := int64(i) << e.shardBits
		e.dirty[i].ForEachSet(func(lx int64) {
			x := base | lx
			if e.cur.Search(x) {
				next.Insert(x)
			} else {
				next.Delete(x)
			}
		})
	}
}

// newHelpState builds the sealed replay's shared work list over journal
// generation ej's dirty bitmaps. All shards share one width, so the flat
// word index w decomposes as (shard, word) = (w / wordsPerShard, w mod
// wordsPerShard).
func newHelpState[T migTable](ej *epoch[T], next T) *helpState[T] {
	wps := bitmap.WordsFor(ej.width)
	return &helpState[T]{
		total:         int64(len(ej.dirty)) * wps,
		dirty:         ej.dirty,
		cur:           ej.cur,
		next:          next,
		wordsPerShard: wps,
		shardBits:     ej.shardBits,
	}
}

// helpReplay claims dirty words from h's work list and replays each
// claimed word's keys as next[x] ← cur[x], returning how many words it
// claimed. Safe for any number of concurrent workers: the fetch-add
// hands each word to exactly one of them, cur is frozen (the generation
// was drained before ready was set), and next's updates are themselves
// concurrency-safe — so the coordinator and every helper replay disjoint
// key sets of a table built for concurrent writers. helper distinguishes
// sealed-window updates (counted in assists, never yielding — their goal
// is to leave the window as fast as possible) from the coordinator
// (which yields once per claimed word so parked updates get scheduled
// and can start helping at all on a saturated host).
func (r *resizer[T]) helpReplay(h *helpState[T], helper bool) int {
	claimed := 0
	for {
		w := h.cursor.Add(1) - 1
		if w >= h.total {
			return claimed
		}
		claimed++
		si := w / h.wordsPerShard
		wi := w % h.wordsPerShard
		word := h.dirty[si].Load(wi)
		base := si<<h.shardBits | wi*bitmap.WordBits
		var keys int64
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			x := base + int64(b)
			if h.cur.Search(x) {
				h.next.Insert(x)
			} else {
				h.next.Delete(x)
			}
			keys++
		}
		if helper && keys > 0 {
			r.assists.Add(keys)
			r.events.Publish(obs.KindSealAssist, int32(si), keys)
		}
		h.done.Add(1)
		if !helper {
			runtime.Gosched()
		}
	}
}

// SealAssists returns the cumulative count of keys replayed by
// sealed-window helpers (monitoring; zero when every seal was drained by
// the coordinator alone).
func (r *resizer[T]) SealAssists() int64 { return r.assists.Load() }

// dirtySizes returns a generation's per-shard journaled key counts (the
// CatchupTracker's observation).
func (e *epoch[T]) dirtySizes() []int64 {
	s := make([]int64, len(e.dirty))
	for i := range e.dirty {
		s[i] = e.dirty[i].PopCount()
	}
	return s
}

// ErrBusy is returned by Resize when a migration is already in flight.
var ErrBusy = fmt.Errorf("resize: migration already in flight")

// Resize re-partitions the set to target shards, synchronously running
// the full migration protocol. It returns ErrBusy when a migration is
// already in flight and validates target against the table factory's
// own geometry rules. Safe to call from any goroutine; ops continue
// concurrently throughout.
func (r *resizer[T]) Resize(target int) error {
	if !r.resizing.CompareAndSwap(false, true) {
		return ErrBusy
	}
	defer r.resizing.Store(false)
	return r.migrate(target)
}

// migrate runs the protocol of the package comment. Caller holds the
// resizing flag, which serializes coordinators — epoch installs are
// plain stores.
func (r *resizer[T]) migrate(target int) error {
	// Stage clock for the migration trace event: mark() returns the
	// nanoseconds since the previous mark, so the six readings below are
	// exactly the per-stage durations the event carries.
	stageStart := time.Now()
	mark := func() int64 {
		now := time.Now()
		d := now.Sub(stageStart)
		stageStart = now
		return int64(d)
	}
	e0 := r.epoch.Load()
	old := e0.cur
	from := old.Shards()
	next, err := r.factory(target)
	if err != nil {
		return fmt.Errorf("resize: building %d-shard table: %w", target, err)
	}
	// 1–2: journal, then drain the pre-journal stragglers.
	ej, err := newEpoch(phaseJournal, old, next)
	if err != nil {
		return err
	}
	ej.carryEnables, ej.carryDisables = e0.carryEnables, e0.carryDisables
	r.epoch.Store(ej)
	hook(StageJournal)
	r.drain(e0)
	hook(StageDrained)
	dJournal := mark()
	// 3: bulk copy (next is private; the dirty journal absorbs races),
	// batched through the table's batch entrypoint where it has one.
	if r.bulk != nil {
		buf := make([]int64, 0, bulkRun)
		r.scan(old, func(key int64) {
			if buf = append(buf, key); len(buf) == bulkRun {
				r.bulk(next, buf)
				buf = buf[:0]
			}
		})
		if len(buf) > 0 {
			r.bulk(next, buf)
		}
	} else {
		r.scan(old, func(key int64) { next.Insert(key) })
	}
	hook(StageCopied)
	dCopy := mark()
	// 4: catch-up generations shrink the sealed window's replay — but
	// only while they are actually shrinking it. A catch-up replays at
	// CONTENDED speed (the journal writers keep the processors), so on a
	// churn-dominated workload whose hot set re-dirties as fast as it is
	// replayed, rounds cost hundreds of milliseconds and converge to
	// nothing — while the sealed replay below runs nearly uncontended
	// (arriving writers yield their slices to the coordinator) and
	// measures ~1µs/key. The CatchupTracker watches the per-shard journal
	// sizes between rounds and skips to seal as soon as the loop stops
	// paying: journal trivially small, total no longer halving, or the
	// remainder concentrated in churn-heavy shards that re-dirty as fast
	// as they replay.
	ct := NewCatchupTracker(CatchupConfig{})
	for ct.Observe(ej.dirtySizes()) == CatchupContinue {
		eNext, err := newEpoch(phaseJournal, old, next)
		if err != nil {
			return err
		}
		eNext.carryEnables, eNext.carryDisables = e0.carryEnables, e0.carryDisables
		r.epoch.Store(eNext)
		r.drain(ej)
		r.replay(ej, next)
		ej = eNext
		hook(StageCatchup)
	}
	dCatchup := mark()
	// 5: seal, drain the last generation, final replay. After this,
	// next equals old exactly and old is frozen. The replay is shared
	// work: updates parked in the sealed window claim dirty words
	// alongside the coordinator (see helpReplay), so the window shrinks
	// with the number of waiters instead of growing with them.
	es, err := newEpoch(phaseSealed, old, next)
	if err != nil {
		return err
	}
	es.carryEnables, es.carryDisables = e0.carryEnables, e0.carryDisables
	es.help = newHelpState(ej, next)
	r.epoch.Store(es)
	hook(StageSealed)
	r.drain(ej)
	dSeal := mark()
	// Only now is cur frozen; open the work list to helpers and join the
	// replay. The coordinator claiming alongside them guarantees progress
	// even if every parked update is descheduled.
	es.help.ready.Store(true)
	r.helpReplay(es.help, false)
	for es.help.done.Load() != es.help.total {
		runtime.Gosched() // helpers hold unfinished words; let them run
	}
	hook(StageReplayed)
	dReplay := mark()
	// 6: activate.
	ea, err := newEpoch(phaseStable, next, *new(T))
	if err != nil {
		return err
	}
	// Fold the retiring table's transition counters into the (still
	// private) activation epoch: the fold becomes visible atomically
	// with the flip, so AdaptiveStats never sees the old table both as
	// the live table and in the base.
	ea.carryEnables, ea.carryDisables = e0.carryEnables, e0.carryDisables
	if r.carry != nil {
		en, dis := r.carry(old)
		ea.carryEnables += en
		ea.carryDisables += dis
	}
	r.epoch.Store(ea)
	if target > from {
		r.grows.Add(1)
	} else if target < from {
		r.shrinks.Add(1)
	}
	hook(StageActivated)
	if r.events != nil {
		kind := obs.KindResizeGrow
		if target < from {
			kind = obs.KindResizeShrink
		}
		// Shard −1: the migration belongs to the whole set, not one shard.
		r.events.Publish(kind, -1,
			int64(from), int64(target), dJournal, dCopy, dCatchup, dSeal, dReplay, mark())
	}
	// Fairness on saturated hosts: updates that waited out the sealed
	// window donated their scheduler slices to this coordinator, so a
	// caller issuing back-to-back migrations would re-seal before they
	// ever ran (measured as a live-starvation loop on a single-P host:
	// the coordinator held ~100% of the processor across tens of
	// thousands of consecutive migrations). Yield once so they land.
	runtime.Gosched()
	return nil
}

// bulkRun sizes the migration copy batches. (Catch-up tuning lives in
// CatchupConfig; see decide.go.)
const bulkRun = 64

// tickStripes is the number of padded stripes of the sample counter;
// sixteen bounds the worst-case cadence dilation (a workload hammering
// one stripe samples every 16·SampleEvery ops) while keeping the array
// at one KiB.
const tickStripes = 16

// tick drives the decision layer: roughly every SampleEvery updates,
// one sampler reads the contention signal and feeds the Decider; a
// grow or shrink verdict launches an asynchronous migration. The
// counter is striped by a multiplicative hash of the key (padded
// stripes), so this per-op bump stays off shared cache lines.
func (r *resizer[T]) tick(x int64) {
	if r.dec == nil {
		return
	}
	stripe := (uint64(x) * 0x9E3779B97F4A7C15) >> 60
	if r.ticks[stripe].Add(1)%r.dec.cfg.SampleEvery != 0 {
		return
	}
	if !r.sampling.CompareAndSwap(0, 1) {
		return
	}
	defer r.sampling.Store(0)
	e := r.epoch.Load()
	if e.phase != phaseStable || r.resizing.Load() {
		return // decisions wait out an in-flight migration
	}
	// The contention estimate: the busiest shard's concurrent
	// publishers — gate occupancy (in-flight updates) and, where the
	// table exposes one, announcement-list length — plus one for the
	// sampling operation itself.
	var peers int64
	for i := range e.gates {
		if g := e.gates[i].Load(); g > peers {
			peers = g
		}
	}
	if r.peers != nil {
		if p := r.peers(e.cur); p > peers {
			peers = p
		}
	}
	target, ok := r.dec.Step(Signal{
		Peers:     float64(peers) + 1,
		Shards:    e.cur.Shards(),
		Occupancy: e.cur.Len(),
	})
	if ok && r.resizing.CompareAndSwap(false, true) {
		go func() {
			defer r.resizing.Store(false)
			// A factory error here has no caller to report to; the
			// decider simply retries on a later sample. Geometry is
			// pre-clamped, so the only failures are allocation-class.
			_ = r.migrate(target)
		}()
	}
}
