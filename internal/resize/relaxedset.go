package resize

import "repro/internal/sharded"

// RelaxedSet is the resizable façade over the sharded §4 relaxed trie,
// mirroring Set. The relaxed predecessor's abstention contract survives
// resizing unchanged: queries always run against one authoritative
// table, and a frozen retiring table abstains from nothing.
type RelaxedSet struct {
	r *resizer[*sharded.Relaxed]
}

// NewRelaxedSet wraps factory(initial) in the resize machinery,
// mirroring NewSet. The relaxed tables expose no announcement lists, so
// the contention signal is gate occupancy alone.
func NewRelaxedSet(initial int, factory func(k int) (*sharded.Relaxed, error), cfg Config) (*RelaxedSet, error) {
	t, err := factory(initial)
	if err != nil {
		return nil, err
	}
	r, err := newResizer(t, factory, scanRelaxed, cfg)
	if err != nil {
		return nil, err
	}
	r.carry = (*sharded.Relaxed).AdaptiveStats
	return &RelaxedSet{r: r}, nil
}

// scanRelaxed enumerates a relaxed table's keys by probing every key of
// every non-empty shard with the wait-free Search. The relaxed
// predecessor may abstain under interference, so a walk could stall;
// per-key probes cannot, and they are exact for every key no concurrent
// update touches — the only keys the migration scan must get right.
// O(u) worst case, O(width · non-empty shards) typical.
func scanRelaxed(t *sharded.Relaxed, emit func(int64)) {
	width := t.U() / int64(t.Shards())
	for i := 0; i < t.Shards(); i++ {
		if t.Occupancy(i) == 0 {
			continue // provably empty at the instant of the read
		}
		base := int64(i) * width
		for lx := int64(0); lx < width; lx++ {
			if t.Search(base | lx) {
				emit(base | lx)
			}
		}
	}
}

// Table returns the current authoritative table (tests, stats);
// read-only for callers, as with Set.Table.
func (s *RelaxedSet) Table() *sharded.Relaxed { return s.r.table() }

// Shards returns the current shard count.
func (s *RelaxedSet) Shards() int { return s.r.Shards() }

// U returns the padded universe size.
func (s *RelaxedSet) U() int64 { return s.r.U() }

// Len returns the weakly-consistent cardinality estimate (exact at
// quiescence).
func (s *RelaxedSet) Len() int64 { return s.r.Len() }

// Stats returns the resize counters.
func (s *RelaxedSet) Stats() Stats { return s.r.Stats() }

// AdaptiveStats sums adaptive-combining transitions across the live and
// retired tables.
func (s *RelaxedSet) AdaptiveStats() (enables, disables int64) { return s.r.AdaptiveStats() }

// Decider returns the decision layer, or nil for manually driven sets.
func (s *RelaxedSet) Decider() *Decider { return s.r.dec }

// SealAssists returns the cumulative count of keys replayed by updates
// that arrived inside a sealed migration window and helped drain it.
func (s *RelaxedSet) SealAssists() int64 { return s.r.SealAssists() }

// Resize synchronously migrates to target shards (ErrBusy if one is in
// flight).
func (s *RelaxedSet) Resize(target int) error { return s.r.Resize(target) }

// Search reports whether x is in the set. Wait-free; never blocks in
// any phase.
//
// Precondition: 0 ≤ x < U().
func (s *RelaxedSet) Search(x int64) bool { return s.r.Search(x) }

// Insert adds x to the set through the current epoch.
//
// Precondition: 0 ≤ x < U().
func (s *RelaxedSet) Insert(x int64) { s.r.Insert(x) }

// Delete removes x from the set through the current epoch.
//
// Precondition: 0 ≤ x < U().
func (s *RelaxedSet) Delete(x int64) { s.r.Delete(x) }

// Predecessor returns the largest key < y under the §4.1 relaxed
// contract (ok=false abstains), from the authoritative table.
//
// Precondition: 0 ≤ y < U().
func (s *RelaxedSet) Predecessor(y int64) (int64, bool) { return s.r.table().Predecessor(y) }

// Successor mirrors Predecessor upward.
//
// Precondition: 0 ≤ y < U().
func (s *RelaxedSet) Successor(y int64) (int64, bool) { return s.r.table().Successor(y) }
