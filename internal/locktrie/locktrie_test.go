package locktrie_test

import (
	"testing"

	"repro/internal/locktrie"
	"repro/internal/settest"
)

func factory(u int64) (settest.Set, error) { return locktrie.New(u) }

func TestSequentialConformance(t *testing.T) { settest.RunSequential(t, factory, 64) }
func TestEdgeCases(t *testing.T)             { settest.RunEdgeCases(t, factory, 32) }
func TestConcurrent(t *testing.T)            { settest.RunConcurrent(t, factory, 256, 8, 1500) }

func TestNewValidation(t *testing.T) {
	if _, err := locktrie.New(0); err == nil {
		t.Error("New(0) should fail")
	}
	tr, err := locktrie.New(64)
	if err != nil {
		t.Fatal(err)
	}
	if tr.U() != 64 {
		t.Errorf("U = %d, want 64", tr.U())
	}
}
