// Package locktrie wraps the sequential binary trie with a readers–writer
// lock. It is the coarse-grained baseline for the throughput experiments
// (EXPERIMENTS.md C4, C5): trivially linearizable, but updates serialize and
// a stalled writer blocks everyone — the failure mode lock-freedom removes.
package locktrie

import (
	"sync"

	"repro/internal/seqtrie"
)

// Trie is a lock-protected binary trie, safe for concurrent use.
type Trie struct {
	mu  sync.RWMutex
	seq *seqtrie.Trie
}

// New returns an empty trie over {0,…,u−1}.
func New(u int64) (*Trie, error) {
	seq, err := seqtrie.New(u)
	if err != nil {
		return nil, err
	}
	return &Trie{seq: seq}, nil
}

// U returns the padded universe size.
func (t *Trie) U() int64 { return t.seq.U() }

// Search reports membership of x under a read lock.
func (t *Trie) Search(x int64) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.seq.Search(x)
}

// Insert adds x under the write lock.
func (t *Trie) Insert(x int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq.Insert(x)
}

// Delete removes x under the write lock.
func (t *Trie) Delete(x int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq.Delete(x)
}

// Predecessor returns the largest key < y or −1, under a read lock.
func (t *Trie) Predecessor(y int64) int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.seq.Predecessor(y)
}

// InsertStalled performs Insert but invokes stall while HOLDING the write
// lock. Fault injection for the lock-freedom experiment (C4): it models a
// process that is descheduled (or crashes temporarily) inside its critical
// section, which blocks every other operation on a lock-based structure.
// The lock-free trie has no analogous vulnerable window — a stalled
// goroutine can never block the others, wherever it stops.
func (t *Trie) InsertStalled(x int64, stall func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq.Insert(x)
	if stall != nil {
		stall()
	}
}
