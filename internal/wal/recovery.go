// Open, crash recovery and the snapshot file format. A snapshot file is
// written whole, fsynced, then renamed into place; a segment is only
// deleted after the snapshot covering its records is durable — so every
// crash point leaves either the old recovery inputs or the new ones,
// never neither.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/versioned"
	"repro/internal/wire"
)

const (
	metaName   = "wal.meta"
	metaMagic  = 0x5457414C // "TWAL"
	snapMagic  = 0x54534E50 // "TSNP"
	walVersion = 1
)

// segmentPath names shard id's segment starting at firstLSN. The LSN is
// zero-padded hex so lexical order is numeric order.
func segmentPath(dir string, id int, firstLSN uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%04d-%016x.seg", id, firstLSN))
}

// snapshotPath names shard id's snapshot covering LSNs ≤ lsn.
func snapshotPath(dir string, id int, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%04d-%016x.snap", id, lsn))
}

// parseShardLSN extracts (shard, lsn) from a "<prefix>-SSSS-LLLL…L<ext>"
// name; ok is false for foreign files.
func parseShardLSN(name, prefix, ext string) (shard int, lsn uint64, ok bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
		return 0, 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ext)
	parts := strings.Split(body, "-")
	if len(parts) != 2 {
		return 0, 0, false
	}
	s, err1 := strconv.Atoi(parts[0])
	l, err2 := strconv.ParseUint(parts[1], 16, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return s, l, true
}

// Recovery reports what Open reconstructed. ForEach walks the
// recovered membership in globally ascending key order — the shape the
// sharded/resize batch entrypoints require for seeding.
type Recovery struct {
	// Keys is the recovered set's cardinality.
	Keys int64
	// SnapshotKeys counts keys loaded from snapshot files.
	SnapshotKeys int64
	// ReplayedRecords and ReplayedOps count the log tail replayed on
	// top of the snapshots.
	ReplayedRecords int64
	ReplayedOps     int64
	// TornTail reports whether a torn (partially written) final record
	// was found and discarded.
	TornTail bool

	snaps []versioned.Snapshot // per shard, ascending key ranges
}

// ForEach emits every recovered key in ascending order.
func (r *Recovery) ForEach(emit func(key int64)) {
	for _, s := range r.snaps {
		s.ForEach(emit)
	}
}

// Open opens (creating if needed) the log in dir for a power-of-two
// universe u, recovering existing state: per shard, the newest valid
// snapshot file is loaded and the log records above its LSN are
// replayed into the mirror. A torn final record — a crash mid-append —
// is detected by CRC/length and discarded; corruption anywhere else is
// an error, because silently skipping interior records would replay a
// set that never existed.
func Open(dir string, u int64, opt Options) (*Log, *Recovery, error) {
	opt = opt.withDefaults()
	if u < 2 || u&(u-1) != 0 {
		return nil, nil, fmt.Errorf("wal: universe %d is not a power of two ≥ 2", u)
	}
	if opt.Shards&(opt.Shards-1) != 0 {
		return nil, nil, fmt.Errorf("wal: shard count %d is not a power of two", opt.Shards)
	}
	if int64(opt.Shards) > u/2 {
		return nil, nil, fmt.Errorf("wal: %d shards leave under two keys per stripe of universe %d", opt.Shards, u)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	dirf, err := os.Open(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:    dir,
		dirf:   dirf,
		u:      u,
		opt:    opt,
		shift:  shardShift(u, opt.Shards),
		snapCh: make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	l.newRegistry()
	if err := l.checkMeta(); err != nil {
		dirf.Close()
		return nil, nil, err
	}
	// Sweep half-written temporaries from a crash mid-atomicWrite.
	if tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, p := range tmps {
			os.Remove(p)
		}
	}
	rec := &Recovery{}
	l.shards = make([]*shardLog, opt.Shards)
	for i := range l.shards {
		s, err := l.openShard(i, rec)
		if err != nil {
			dirf.Close()
			return nil, nil, err
		}
		l.shards[i] = s
		snap := s.mirror.Snapshot()
		rec.Keys += snap.Count()
		rec.snaps = append(rec.snaps, snap)
	}
	l.reg.Counter("wal.recovery.snapshot_keys").Add(0, rec.SnapshotKeys)
	l.reg.Counter("wal.recovery.replayed_records").Add(0, rec.ReplayedRecords)
	l.reg.Counter("wal.recovery.replayed_ops").Add(0, rec.ReplayedOps)
	if rec.TornTail {
		l.reg.Counter("wal.recovery.torn_tails").Inc(0)
	}
	l.wg.Add(1)
	go l.run()
	return l, rec, nil
}

// checkMeta validates (or writes, on a fresh directory) the meta file:
// magic | version(1) | shards(4) | u(8) | crc32c. Geometry is fixed at
// creation — reopening with a different universe or stripe count would
// misroute every key.
func (l *Log) checkMeta() error {
	path := filepath.Join(l.dir, metaName)
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		buf := binary.BigEndian.AppendUint32(nil, metaMagic)
		buf = append(buf, walVersion)
		buf = binary.BigEndian.AppendUint32(buf, uint32(l.opt.Shards))
		buf = binary.BigEndian.AppendUint64(buf, uint64(l.u))
		buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
		return atomicWrite(path, buf, l.dirf)
	}
	if err != nil {
		return fmt.Errorf("wal: meta: %w", err)
	}
	if len(raw) != 4+1+4+8+4 {
		return fmt.Errorf("wal: meta: %d bytes, want %d", len(raw), 4+1+4+8+4)
	}
	body, sum := raw[:len(raw)-4], binary.BigEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return fmt.Errorf("wal: meta: checksum mismatch")
	}
	if binary.BigEndian.Uint32(body) != metaMagic || body[4] != walVersion {
		return fmt.Errorf("wal: meta: bad magic or version")
	}
	shards := int(binary.BigEndian.Uint32(body[5:9]))
	u := int64(binary.BigEndian.Uint64(body[9:17]))
	if shards != l.opt.Shards || u != l.u {
		return fmt.Errorf("wal: meta: log holds u=%d shards=%d, opened with u=%d shards=%d",
			u, shards, l.u, l.opt.Shards)
	}
	return nil
}

// atomicWrite writes data to path via tmp + fsync + rename + dir fsync.
func atomicWrite(path string, data []byte, dirf *os.File) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: %s: %w", tmp, err)
	}
	if err := fsyncFile(f); err != nil {
		f.Close()
		return fmt.Errorf("wal: %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return fsyncFile(dirf)
}

// openShard recovers one stripe: newest valid snapshot, then the log
// tail, then a fresh segment for new appends.
func (l *Log) openShard(id int, rec *Recovery) (*shardLog, error) {
	mirror, err := versioned.New(l.u)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	s := &shardLog{id: id, mirror: mirror}

	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var snaps []uint64
	var segs []segmentInfo
	for _, e := range entries {
		if sh, lsn, ok := parseShardLSN(e.Name(), "snap-", ".snap"); ok && sh == id {
			snaps = append(snaps, lsn)
		}
		if sh, lsn, ok := parseShardLSN(e.Name(), "wal-", ".seg"); ok && sh == id {
			segs = append(segs, segmentInfo{path: filepath.Join(l.dir, e.Name()), firstLSN: lsn})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })

	// Newest loadable snapshot wins; an unreadable one (crash between
	// rename and old-file cleanup cannot cause this, but disk rot can)
	// falls back to the next older, whose covering segments are still
	// on disk exactly because truncation follows snapshot durability.
	for _, lsn := range snaps {
		keys, err := loadSnapshot(snapshotPath(l.dir, id, lsn), l.u, id, lsn)
		if err != nil {
			continue
		}
		// Snapshot keys are stored ascending and unique — feed them to the
		// mirror as one shared-path batch apply instead of per-key copies.
		ops := make([]versioned.BatchOp, len(keys))
		for i, k := range keys {
			ops[i] = versioned.BatchOp{Key: k}
		}
		s.mirror.ApplyBatch(ops)
		s.snapLSN = lsn
		rec.SnapshotKeys += int64(len(keys))
		break
	}
	s.lsn = s.snapLSN

	var lastSize int64
	for i, seg := range segs {
		if i > 0 && seg.firstLSN != segs[i-1].lastLSN+1 {
			return nil, fmt.Errorf("wal: shard %d: log gap between LSN %d and segment %s",
				id, segs[i-1].lastLSN, seg.path)
		}
		last, size, err := l.replaySegment(s, seg, i == len(segs)-1, rec)
		if err != nil {
			return nil, err
		}
		segs[i].lastLSN = last
		lastSize = size
	}
	if len(segs) > 0 {
		if first := segs[0].firstLSN; first > s.snapLSN+1 {
			return nil, fmt.Errorf("wal: shard %d: oldest segment starts at LSN %d but snapshot covers only %d",
				id, first, s.snapLSN)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(segs); n > 0 {
		// The newest segment — already truncated to its valid prefix —
		// becomes the current one again; the rest are closed history.
		cur := segs[n-1]
		s.closedSegs = segs[:n-1]
		f, err := os.OpenFile(cur.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: shard %d reopen segment: %w", id, err)
		}
		s.f = f
		s.curF = f
		s.size = lastSize
		s.firstLSN = cur.firstLSN
		return s, nil
	}
	if err := s.openSegmentLocked(l, s.lsn+1); err != nil {
		return nil, err
	}
	return s, nil
}

// replaySegment applies one segment's records above the snapshot LSN to
// the mirror and returns the last valid LSN it holds plus the byte
// length of its valid prefix. In the final segment a torn record —
// short frame, bad CRC, malformed body — ends the replay (the crash
// interrupted that append; nothing after it was acknowledged durable)
// and the file is truncated to the valid prefix so future appends
// continue a clean stream; anywhere else it is corruption and fails
// Open.
func (l *Log) replaySegment(s *shardLog, seg segmentInfo, lastSeg bool, rec *Recovery) (uint64, int64, error) {
	f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 256<<10)
	expect := seg.firstLSN
	var off int64 // byte offset of the valid prefix
	buf := make([]byte, 0, 4096)
	torn := func(why error) (uint64, int64, error) {
		if !lastSeg {
			return 0, 0, fmt.Errorf("wal: shard %d: corrupt record (LSN %d) in non-final segment %s: %v",
				s.id, expect, seg.path, why)
		}
		rec.TornTail = true
		if err := f.Truncate(off); err != nil {
			return 0, 0, fmt.Errorf("wal: shard %d: truncating torn tail of %s: %w", s.id, seg.path, err)
		}
		if err := fsyncFile(f); err != nil {
			return 0, 0, fmt.Errorf("wal: %s: %w", seg.path, err)
		}
		return expect - 1, off, nil
	}
	for {
		p, err := wire.ReadFrame(br, buf, maxRecordFrame)
		if err == io.EOF {
			return expect - 1, off, nil // clean segment end
		}
		if err != nil {
			return torn(err)
		}
		buf = p[:0]
		if len(p) < recordHeaderBytes {
			return torn(fmt.Errorf("record %d bytes", len(p)))
		}
		if crc32.Checksum(p[4:], castagnoli) != binary.BigEndian.Uint32(p) {
			return torn(errors.New("checksum mismatch"))
		}
		lsn := binary.BigEndian.Uint64(p[4:12])
		count := int(binary.BigEndian.Uint32(p[12:16]))
		if lsn != expect {
			return torn(fmt.Errorf("LSN %d, want %d", lsn, expect))
		}
		if len(p) != recordHeaderBytes+count*wire.OpBytes {
			return torn(fmt.Errorf("count %d vs %d payload bytes", count, len(p)))
		}
		body := p[recordHeaderBytes:]
		apply := lsn > s.snapLSN // records at or below it are already in the snapshot
		for i := 0; i < count; i++ {
			key, del, err := wire.DecodeOp(body[i*wire.OpBytes:])
			if err != nil {
				return torn(err)
			}
			if !apply {
				continue
			}
			if del {
				s.mirror.Delete(key)
			} else {
				s.mirror.Insert(key)
			}
		}
		if apply {
			rec.ReplayedRecords++
			rec.ReplayedOps += int64(count)
		}
		off += int64(wire.FrameHeaderBytes + len(p))
		expect++
		s.lsn = lsn
	}
}

// snapshot captures, writes and installs one shard snapshot, then
// truncates the segments it covers. The capture is O(1) under the
// append lock; the walk and write run outside it.
func (s *shardLog) snapshot(l *Log) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	t0 := time.Now()
	s.mu.Lock()
	if s.lsn == s.snapLSN { // nothing new since the last snapshot
		s.mu.Unlock()
		return nil
	}
	snap := s.mirror.Snapshot()
	lsn := s.lsn
	// Rotate so every record ≤ lsn lives in a closed segment: after the
	// snapshot is durable they can all be deleted.
	if s.size > 0 || len(s.wbuf) > 0 {
		s.rotateLocked(l)
	}
	s.sinceSnap = 0
	s.mu.Unlock()
	l.hSnapCapNS.Record(int64(time.Since(t0)))

	t1 := time.Now()
	count := snap.Count()
	buf := make([]byte, 0, 4+1+4+8+8+8+count*8+4)
	buf = binary.BigEndian.AppendUint32(buf, snapMagic)
	buf = append(buf, walVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.id))
	buf = binary.BigEndian.AppendUint64(buf, uint64(l.u))
	buf = binary.BigEndian.AppendUint64(buf, lsn)
	buf = binary.BigEndian.AppendUint64(buf, uint64(count))
	snap.ForEach(func(key int64) {
		buf = binary.BigEndian.AppendUint64(buf, uint64(key))
	})
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	path := snapshotPath(l.dir, s.id, lsn)
	if err := atomicWrite(path, buf, l.dirf); err != nil {
		return fmt.Errorf("wal: shard %d snapshot: %w", s.id, err)
	}
	l.hSnapWrNS.Record(int64(time.Since(t1)))
	l.cSnaps.Inc(int64(s.id))
	l.cSnapKeys.Add(int64(s.id), count)

	// The new snapshot is durable: drop covered segments and stale
	// snapshots. Deletion failures are not fatal — recovery tolerates
	// surplus files — but surface as the sticky error for visibility.
	t2 := time.Now()
	s.mu.Lock()
	var keep []segmentInfo
	var drop []string
	for _, seg := range s.closedSegs {
		if seg.lastLSN <= lsn {
			drop = append(drop, seg.path)
		} else {
			keep = append(keep, seg)
		}
	}
	s.closedSegs = keep
	prevSnap := s.snapLSN
	s.snapLSN = lsn
	s.mu.Unlock()
	for _, p := range drop {
		if err := os.Remove(p); err != nil {
			l.setErr(fmt.Errorf("wal: truncate: %w", err))
		} else {
			l.cSegsGone.Inc(int64(s.id))
		}
	}
	if prevSnap > 0 {
		if err := os.Remove(snapshotPath(l.dir, s.id, prevSnap)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			l.setErr(fmt.Errorf("wal: drop stale snapshot: %w", err))
		}
	}
	l.hSnapTrNS.Record(int64(time.Since(t2)))
	return nil
}

// loadSnapshot reads and validates one snapshot file, returning its
// keys.
func loadSnapshot(path string, u int64, id int, lsn uint64) ([]int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	const hdr = 4 + 1 + 4 + 8 + 8 + 8
	if len(raw) < hdr+4 {
		return nil, fmt.Errorf("wal: snapshot %s: %d bytes", path, len(raw))
	}
	body, sum := raw[:len(raw)-4], binary.BigEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, fmt.Errorf("wal: snapshot %s: checksum mismatch", path)
	}
	if binary.BigEndian.Uint32(body) != snapMagic || body[4] != walVersion {
		return nil, fmt.Errorf("wal: snapshot %s: bad magic or version", path)
	}
	if got := int(binary.BigEndian.Uint32(body[5:9])); got != id {
		return nil, fmt.Errorf("wal: snapshot %s: shard %d, want %d", path, got, id)
	}
	if got := int64(binary.BigEndian.Uint64(body[9:17])); got != u {
		return nil, fmt.Errorf("wal: snapshot %s: universe %d, want %d", path, got, u)
	}
	if got := binary.BigEndian.Uint64(body[17:25]); got != lsn {
		return nil, fmt.Errorf("wal: snapshot %s: LSN %d, want %d", path, got, lsn)
	}
	count := binary.BigEndian.Uint64(body[25:33])
	if uint64(len(body)-hdr) != count*8 {
		return nil, fmt.Errorf("wal: snapshot %s: %d keys vs %d body bytes", path, count, len(body)-hdr)
	}
	keys := make([]int64, count)
	for i := range keys {
		keys[i] = int64(binary.BigEndian.Uint64(body[hdr+8*i:]))
	}
	return keys, nil
}
