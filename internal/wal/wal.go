// Package wal is the trie's durability spine: a per-shard write-ahead
// op log plus asynchronous consistent snapshots, built so that one
// batcher sweep is one group-committed log write and recovery is
// snapshot + bounded log-tail replay.
//
// # Layout
//
// A log directory holds one meta file (universe and stripe geometry,
// validated on reopen), per-shard segment files wal-<shard>-<firstLSN>.seg,
// and per-shard snapshot files snap-<shard>-<lsn>.snap. Keys are
// range-partitioned across shards (stripes) exactly like the trie's own
// sharding — key→shard is a shift — so each shard's log is an
// independent totally-ordered stream and recovery never merges across
// shards.
//
// # Records
//
// A segment is a sequence of length-prefixed frames (the shared
// internal/wire codec — the same framing the network protocol uses).
// One frame is one record:
//
//	crc32c(4) | lsn(8) | count(4) | count × op record (kind(1) | key(8))
//
// The CRC (Castagnoli) covers everything after itself. LSNs are
// per-shard, contiguous and strictly increasing; a whole ApplyBatch
// shard-run is one record, which is what makes the batcher's sweep a
// group commit: one record append + at most one fsync per sweep,
// whatever the batch size.
//
// # Consistency
//
// Each shard keeps a private mirror of its key range in an
// internal/versioned path-copy trie, updated under the same lock that
// orders record appends — so the mirror version at LSN L is EXACTLY the
// membership after replaying records 1…L. A snapshot is an O(1) capture
// of that mirror version at a chosen LSN boundary plus an unhurried
// walk of the immutable structure; segments whose records are all ≤ the
// snapshot LSN are deleted afterwards. Recovery loads the newest valid
// snapshot and replays only records above its LSN, tolerating a torn
// final record (see Open).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/versioned"
	"repro/internal/wire"
)

// Tuning defaults.
const (
	// DefaultSegmentBytes is the segment rotation threshold.
	DefaultSegmentBytes = 64 << 20
	// DefaultSnapshotBytes is the per-shard log growth that triggers an
	// asynchronous snapshot.
	DefaultSnapshotBytes = 64 << 20
	// recordHeaderBytes is crc(4) + lsn(8) + count(4).
	recordHeaderBytes = 4 + 8 + 4
	// maxRecordOps bounds ops per record; a larger batch run is split
	// into consecutive records. Bounds the replay read buffer.
	maxRecordOps = 8192
	// maxRecordFrame is the replay read limit for one record payload.
	maxRecordFrame = recordHeaderBytes + maxRecordOps*wire.OpBytes
)

// castagnoli is the CRC32C table (the polynomial with hardware support
// on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes Open. The zero value of every field selects its
// default: 1 shard, fsync on every append, DefaultSegmentBytes
// rotation, DefaultSnapshotBytes auto-snapshot.
type Options struct {
	// Shards is the stripe count (power of two). Each stripe owns a
	// contiguous key range, its own LSN sequence and its own files; more
	// stripes mean finer-grained append locks and parallel recovery at
	// the cost of more open files and fsyncs.
	Shards int
	// SyncEvery fsyncs after every n appended ops (counted per shard).
	// 1 — the default when SyncInterval is also zero — makes every
	// acknowledged op durable; 0 disables count-based fsync (the OS or
	// SyncInterval decides).
	SyncEvery int
	// SyncInterval fsyncs dirty shards on a background cadence,
	// bounding the un-fsynced window by time instead of op count.
	// Composes with SyncEvery; 0 disables the ticker.
	SyncInterval time.Duration
	// SegmentBytes rotates a shard's segment once it exceeds this size.
	SegmentBytes int64
	// SnapshotBytes triggers an asynchronous shard snapshot once that
	// many log bytes accumulate past the previous snapshot. 0 selects
	// the default; negative disables auto-snapshots (Snapshot still
	// works).
	SnapshotBytes int64
}

// withDefaults resolves zero fields. SyncEvery defaults to 1 only when
// no interval was requested: an explicit interval-only policy means
// "bound the window by time, not per-op".
func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.SyncEvery == 0 && o.SyncInterval <= 0 {
		o.SyncEvery = 1
	}
	if o.SyncEvery < 0 {
		o.SyncEvery = 0
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SnapshotBytes == 0 {
		o.SnapshotBytes = DefaultSnapshotBytes
	}
	return o
}

// Log is an open write-ahead log. Appends are safe for concurrent use;
// each key's shard serializes under one mutex, which is exactly the
// order its LSNs record.
type Log struct {
	dir    string
	dirf   *os.File // held open for directory-entry fsyncs
	u      int64
	opt    Options
	shift  uint // key → shard
	shards []*shardLog

	reg        *obs.Registry
	cRecords   *obs.Counter
	cOps       *obs.Counter
	cBytes     *obs.Counter
	cAppendErr *obs.Counter
	cFsyncs    *obs.Counter
	hFsyncNS   *obs.Histogram
	cRotations *obs.Counter
	cSnaps     *obs.Counter
	cSnapKeys  *obs.Counter
	cSegsGone  *obs.Counter
	hSnapCapNS *obs.Histogram
	hSnapWrNS  *obs.Histogram
	hSnapTrNS  *obs.Histogram

	err    atomic.Pointer[error] // sticky first append-path failure
	snapCh chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// segmentInfo is one closed (fully written, fsynced) segment.
type segmentInfo struct {
	path     string
	firstLSN uint64
	lastLSN  uint64
}

// shardLog is one stripe's stream: current segment, mirror, LSN clock.
type shardLog struct {
	id int

	// mu orders appends; everything below it is the append state.
	mu         sync.Mutex
	f          *os.File
	wbuf       []byte // pending bytes not yet written to f
	size       int64  // bytes written to the current segment file
	firstLSN   uint64 // first LSN of the current segment
	lsn        uint64 // last assigned LSN
	mirror     *versioned.Trie
	unsynced   int   // ops appended since the last fsync
	dirty      bool  // bytes appended (or buffered) since the last fsync
	sinceSnap  int64 // log bytes appended since the last snapshot capture
	closedSegs []segmentInfo
	enc        []byte              // record scratch buffer
	mops       []versioned.BatchOp // mirror batch-apply scratch buffer

	// flushSeq counts completed wbuf→file writes; a flush's bytes are in
	// the file before its bump is visible, so a group-commit fsync that
	// loads flushSeq just before the syscall knows exactly which flushes
	// it covers.
	flushSeq atomic.Uint64

	// fsyncMu serializes group-commit fsyncs, which run OUTSIDE mu so
	// appends continue. Everything below it is guarded by it. A syncer
	// that queues behind an in-flight fsync re-checks on wake: if that
	// fsync's coverage (syncedSeq) reached its own flush, or the segment
	// rotated (whose sync covered it), it skips — queued waiters merge
	// into one fsync instead of serializing. Rotation/Close take fsyncMu
	// around closing the file; the only lock order anywhere is
	// mu → fsyncMu.
	fsyncMu   sync.Mutex
	curF      *os.File // the open segment file; nil once closed
	syncedSeq uint64   // highest flushSeq covered by a completed fsync

	// snapMu single-flights snapshots for this shard (held across the
	// slow walk+write, which runs OUTSIDE mu so appends continue).
	snapMu  sync.Mutex
	snapLSN uint64 // LSN covered by the newest durable snapshot
}

// fsyncFile is swapped out by tests that count or fail fsyncs.
var fsyncFile = func(f *os.File) error { return f.Sync() }

// newRegistry wires the wal.* metric handles.
func (l *Log) newRegistry() {
	r := obs.NewRegistry()
	l.reg = r
	l.cRecords = r.Counter("wal.append.records")
	l.cOps = r.Counter("wal.append.ops")
	l.cBytes = r.Counter("wal.append.bytes")
	l.cAppendErr = r.Counter("wal.append.errors")
	l.cFsyncs = r.Counter("wal.fsyncs")
	l.hFsyncNS = r.Histogram("wal.fsync_ns")
	l.cRotations = r.Counter("wal.segment.rotations")
	l.cSnaps = r.Counter("wal.snapshots")
	l.cSnapKeys = r.Counter("wal.snapshot.keys")
	l.cSegsGone = r.Counter("wal.segments.removed")
	l.hSnapCapNS = r.Histogram("wal.snapshot.capture_ns")
	l.hSnapWrNS = r.Histogram("wal.snapshot.write_ns")
	l.hSnapTrNS = r.Histogram("wal.snapshot.truncate_ns")
	r.Gauge("wal.shards", func() int64 { return int64(len(l.shards)) })
}

// Registry exposes the wal.* metrics for merging into a facade
// snapshot.
func (l *Log) Registry() *obs.Registry { return l.reg }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Shards returns the stripe count.
func (l *Log) Shards() int { return len(l.shards) }

// Err returns the sticky first append-path failure, if any. The log
// never blocks or panics the trie on an I/O error: it records the
// error, counts wal.append.errors, and drops subsequent appends — the
// durability contract is broken from that instant and Close reports it.
func (l *Log) Err() error {
	if p := l.err.Load(); p != nil {
		return *p
	}
	return nil
}

// setErr records the first failure.
func (l *Log) setErr(err error) {
	if err == nil {
		return
	}
	l.cAppendErr.Inc(0)
	e := err
	l.err.CompareAndSwap(nil, &e)
}

// shardOf maps a key to its stripe.
func (l *Log) shardOf(key int64) int { return int(uint64(key) >> l.shift) }

// Append logs one op.
func (l *Log) Append(key int64, del bool) {
	op := [1]core.BatchOp{{Key: key, Del: del}}
	l.AppendBatch(op[:])
}

// AppendBatch logs a batch. Consecutive ops of the same stripe form one
// record (one group commit): a sorted batch — what the facade's
// SortDedup hands the backend — lands in at most one record per stripe
// touched. The batch must be appended BEFORE the trie applies it; the
// facade's durable wrapper guarantees that ordering.
func (l *Log) AppendBatch(ops []core.BatchOp) {
	if len(ops) == 0 || l.err.Load() != nil {
		return
	}
	for i := 0; i < len(ops); {
		s := l.shardOf(ops[i].Key)
		j := i + 1
		for j < len(ops) && l.shardOf(ops[j].Key) == s {
			j++
		}
		l.shards[s].append(l, ops[i:j])
		i = j
	}
}

// append logs one same-stripe run and applies the sync policy.
func (s *shardLog) append(l *Log, run []core.BatchOp) {
	s.mu.Lock()
	for len(run) > 0 {
		n := len(run)
		if n > maxRecordOps {
			n = maxRecordOps
		}
		s.appendRecord(l, run[:n])
		run = run[n:]
	}
	if s.size+int64(len(s.wbuf)) >= l.opt.SegmentBytes {
		s.rotateLocked(l) // includes a full sync: unsynced is 0 after
	}
	wantSnap := l.opt.SnapshotBytes > 0 && s.sinceSnap >= l.opt.SnapshotBytes
	if l.opt.SyncEvery > 0 && s.unsynced >= l.opt.SyncEvery {
		s.groupSyncUnlock(l) // releases mu
	} else {
		s.mu.Unlock()
	}
	if wantSnap {
		select {
		case l.snapCh <- struct{}{}:
		default: // a snapshot pass is already pending
		}
	}
}

// appendRecord encodes one record, buffers its bytes and applies it to
// the mirror. Caller holds mu.
func (s *shardLog) appendRecord(l *Log, run []core.BatchOp) {
	s.lsn++
	s.enc = s.enc[:0]
	s.enc = wire.AppendFrameHeader(s.enc, recordHeaderBytes+len(run)*wire.OpBytes)
	crcAt := len(s.enc)
	s.enc = append(s.enc, 0, 0, 0, 0)
	s.enc = binary.BigEndian.AppendUint64(s.enc, s.lsn)
	s.enc = binary.BigEndian.AppendUint32(s.enc, uint32(len(run)))
	for _, op := range run {
		s.enc = wire.AppendOp(s.enc, op.Del, op.Key)
	}
	binary.BigEndian.PutUint32(s.enc[crcAt:], crc32.Checksum(s.enc[crcAt+4:], castagnoli))
	s.wbuf = append(s.wbuf, s.enc...)
	s.dirty = true
	s.unsynced += len(run)
	s.sinceSnap += int64(len(s.enc))
	// The mirror mutates under mu, so its version at LSN L is exactly
	// the membership after records 1…L — the snapshot consistency
	// argument rests on this apply running before mu releases. The batch
	// form path-copies the union of the run's paths once, not once per
	// op: the run arrives sorted and deduplicated (the facade's
	// SortDedup), which is exactly ApplyBatch's contract.
	s.mops = s.mops[:0]
	for _, op := range run {
		s.mops = append(s.mops, versioned.BatchOp{Key: op.Key, Del: op.Del})
	}
	s.mirror.ApplyBatch(s.mops)
	hint := int64(s.id)
	l.cRecords.Inc(hint)
	l.cOps.Add(hint, int64(len(run)))
	l.cBytes.Add(hint, int64(len(s.enc)))
}

// flushLocked pushes buffered bytes to the segment file.
func (s *shardLog) flushLocked(l *Log) {
	if len(s.wbuf) == 0 {
		return
	}
	n, err := s.f.Write(s.wbuf)
	s.size += int64(n)
	s.wbuf = s.wbuf[:0]
	s.flushSeq.Add(1)
	if err != nil {
		l.setErr(fmt.Errorf("wal: shard %d append: %w", s.id, err))
	}
}

// syncLocked flushes and fsyncs the current segment without releasing
// mu. The rotation, ticker, manual-Sync and shutdown path: rare, or
// needing the shard quiesced (rotation closes the file right after).
func (s *shardLog) syncLocked(l *Log) {
	s.flushLocked(l)
	if !s.dirty {
		return
	}
	start := time.Now()
	if err := fsyncFile(s.f); err != nil {
		l.setErr(fmt.Errorf("wal: shard %d fsync: %w", s.id, err))
		return
	}
	l.hFsyncNS.Record(int64(time.Since(start)))
	l.cFsyncs.Inc(int64(s.id))
	s.unsynced = 0
	s.dirty = false
}

// groupSyncUnlock is the count-policy fsync — the one on the append hot
// path. It flushes and resets the sync accounting under mu, RELEASES
// mu, and only then queues on fsyncMu for the fsync: concurrent
// appenders fill the next group while the disk works, which is what
// makes SyncEvery(n) a group commit instead of an every-n-ops stall of
// the whole shard. On waking with fsyncMu held it may find its flush
// already durable — a later fsync covered it (syncedSeq), or the
// segment rotated (rotation syncs before closing) — and skip, so a
// burst of triggers costs one fsync, not one each. The triggering
// caller still returns only once its bytes are durable, so the every-n
// bound on acknowledged-but-lost ops is unchanged.
// Caller holds mu; on return mu is released.
func (s *shardLog) groupSyncUnlock(l *Log) {
	s.flushLocked(l)
	if !s.dirty {
		s.mu.Unlock()
		return
	}
	f := s.f
	seq := s.flushSeq.Load()
	s.dirty = false
	s.unsynced = 0
	s.mu.Unlock()

	s.fsyncMu.Lock()
	if s.curF != f || s.syncedSeq >= seq {
		s.fsyncMu.Unlock()
		return
	}
	// Every flush whose bump is visible here wrote its bytes before the
	// syscall below, so this fsync covers through `covered`.
	covered := s.flushSeq.Load()
	start := time.Now()
	err := fsyncFile(f)
	if err == nil && covered > s.syncedSeq {
		s.syncedSeq = covered
	}
	s.fsyncMu.Unlock()
	if err != nil {
		l.setErr(fmt.Errorf("wal: shard %d fsync: %w", s.id, err))
		return
	}
	l.hFsyncNS.Record(int64(time.Since(start)))
	l.cFsyncs.Inc(int64(s.id))
}

// rotateLocked completes the current segment (flush + fsync + close)
// and opens a fresh one whose first LSN continues the stream.
func (s *shardLog) rotateLocked(l *Log) {
	s.syncLocked(l)
	path := s.f.Name()
	s.fsyncMu.Lock() // wait out any in-flight group-commit fsync
	err := s.f.Close()
	s.curF = nil
	s.syncedSeq = s.flushSeq.Load() // syncLocked above covered everything
	s.fsyncMu.Unlock()
	if err != nil {
		l.setErr(fmt.Errorf("wal: shard %d close segment: %w", s.id, err))
	}
	s.closedSegs = append(s.closedSegs, segmentInfo{path: path, firstLSN: s.firstLSN, lastLSN: s.lsn})
	if err := s.openSegmentLocked(l, s.lsn+1); err != nil {
		l.setErr(err)
	}
	l.cRotations.Inc(int64(s.id))
}

// openSegmentLocked creates the segment file starting at firstLSN and
// fsyncs the directory entry.
func (s *shardLog) openSegmentLocked(l *Log, firstLSN uint64) error {
	path := segmentPath(l.dir, s.id, firstLSN)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: shard %d new segment: %w", s.id, err)
	}
	if err := fsyncFile(l.dirf); err != nil {
		f.Close()
		return fmt.Errorf("wal: fsync dir: %w", err)
	}
	s.f = f
	s.fsyncMu.Lock()
	s.curF = f
	s.fsyncMu.Unlock()
	s.size = 0
	s.firstLSN = firstLSN
	return nil
}

// Sync flushes and fsyncs every dirty shard.
func (l *Log) Sync() error {
	for _, s := range l.shards {
		s.mu.Lock()
		s.syncLocked(l)
		s.mu.Unlock()
	}
	return l.Err()
}

// run is the background loop: interval fsyncs and async snapshots.
func (l *Log) run() {
	defer l.wg.Done()
	var tick *time.Ticker
	var tickC <-chan time.Time
	if l.opt.SyncInterval > 0 {
		tick = time.NewTicker(l.opt.SyncInterval)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case <-l.stop:
			return
		case <-tickC:
			for _, s := range l.shards {
				s.mu.Lock()
				if s.dirty {
					s.syncLocked(l)
				}
				s.mu.Unlock()
			}
		case <-l.snapCh:
			for _, s := range l.shards {
				s.mu.Lock()
				due := l.opt.SnapshotBytes > 0 && s.sinceSnap >= l.opt.SnapshotBytes
				s.mu.Unlock()
				if due {
					if err := s.snapshot(l); err != nil {
						l.setErr(err)
					}
				}
			}
		}
	}
}

// Snapshot synchronously snapshots every shard and truncates the
// segments each snapshot covers.
func (l *Log) Snapshot() error {
	var first error
	for _, s := range l.shards {
		if err := s.snapshot(l); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops the background loop, fsyncs what is buffered and closes
// every file. It returns the sticky append error if one occurred.
func (l *Log) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		return l.Err()
	}
	close(l.stop)
	l.wg.Wait()
	for _, s := range l.shards {
		s.mu.Lock()
		s.syncLocked(l)
		s.fsyncMu.Lock() // wait out any in-flight group-commit fsync
		err := s.f.Close()
		s.curF = nil
		s.syncedSeq = s.flushSeq.Load()
		s.fsyncMu.Unlock()
		if err != nil {
			l.setErr(fmt.Errorf("wal: shard %d close: %w", s.id, err))
		}
		s.mu.Unlock()
	}
	err := l.Err()
	if cerr := l.dirf.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// shardShift computes the key→shard shift for a power-of-two universe
// and stripe count.
func shardShift(u int64, shards int) uint {
	width := u / int64(shards)
	return uint(bits.TrailingZeros64(uint64(width)))
}
