package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

// collect drains a Recovery into a sorted key slice.
func collect(rec *Recovery) []int64 {
	var out []int64
	rec.ForEach(func(k int64) { out = append(out, k) })
	return out
}

func wantKeys(t *testing.T, rec *Recovery, want ...int64) {
	t.Helper()
	got := collect(rec)
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered %v, want %v", got, want)
		}
	}
	if rec.Keys != int64(len(want)) {
		t.Fatalf("rec.Keys = %d, want %d", rec.Keys, len(want))
	}
}

// TestAppendReopen: a mixed op stream replays to the model's final
// membership, in ascending order.
func TestAppendReopen(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, 1<<12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Keys != 0 || rec.ReplayedOps != 0 {
		t.Fatalf("fresh log recovered %+v", rec)
	}
	model := map[int64]bool{}
	rng := rand.New(rand.NewSource(7))
	var batch []core.BatchOp
	totalOps := 0
	for i := 0; i < 50; i++ {
		batch = batch[:0]
		for j := 0; j < rng.Intn(20)+1; j++ {
			k := int64(rng.Intn(1 << 12))
			del := rng.Intn(3) == 0
			batch = append(batch, core.BatchOp{Key: k, Del: del})
			if del {
				delete(model, k)
			} else {
				model[k] = true
			}
			totalOps++
		}
		l.AppendBatch(batch)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec2, err := Open(dir, 1<<12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(rec2)
	if len(got) != len(model) {
		t.Fatalf("recovered %d keys, model has %d", len(got), len(model))
	}
	prev := int64(-1)
	for _, k := range got {
		if !model[k] {
			t.Fatalf("recovered key %d not in model", k)
		}
		if k <= prev {
			t.Fatalf("recovery not ascending: %d after %d", k, prev)
		}
		prev = k
	}
	if rec2.ReplayedOps != int64(totalOps) {
		t.Fatalf("ReplayedOps = %d, want %d", rec2.ReplayedOps, totalOps)
	}
	if rec2.TornTail {
		t.Fatal("clean log reported a torn tail")
	}
}

// TestTornTail truncates the log at EVERY byte offset of the final
// record and asserts recovery lands exactly on the preceding records —
// the crash-mid-append contract.
func TestTornTail(t *testing.T) {
	// One record per key: 4 (frame) + 16 (header) + 9 (op) bytes.
	const recBytes = 4 + recordHeaderBytes + 9
	keys := []int64{3, 1, 4, 15, 9}
	build := func(t *testing.T) string {
		dir := t.TempDir()
		l, _, err := Open(dir, 1<<10, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			l.Append(k, false)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	probe := build(t)
	segs, err := filepath.Glob(filepath.Join(probe, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v (err %v), want exactly 1", segs, err)
	}
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	size := st.Size()
	if size != int64(len(keys))*recBytes {
		t.Fatalf("segment %d bytes, want %d", size, len(keys)*recBytes)
	}
	for cut := size - recBytes; cut <= size; cut++ {
		dir := build(t)
		seg := filepath.Join(dir, filepath.Base(segs[0]))
		if err := os.Truncate(seg, cut); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(dir, 1<<10, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantTorn := cut > size-recBytes && cut < size
		if rec.TornTail != wantTorn {
			t.Fatalf("cut %d: TornTail = %v, want %v", cut, rec.TornTail, wantTorn)
		}
		wantN := len(keys)
		if cut < size {
			wantN--
		}
		if got := collect(rec); len(got) != wantN {
			t.Fatalf("cut %d: recovered %v, want %d keys", cut, got, wantN)
		}
		// The log must keep a clean stream after the tear: append, close,
		// reopen, and the new op is there with no new tear.
		l.Append(777, false)
		if err := l.Close(); err != nil {
			t.Fatalf("cut %d: close after tear: %v", cut, err)
		}
		l2, rec2, err := Open(dir, 1<<10, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen after tear: %v", cut, err)
		}
		if rec2.TornTail {
			t.Fatalf("cut %d: tear did not heal", cut)
		}
		if got := collect(rec2); len(got) != wantN+1 || got[len(got)-1] != 777 {
			t.Fatalf("cut %d: post-tear append lost: %v", cut, got)
		}
		l2.Close()
	}
}

// TestSnapshotAndTruncate: a snapshot absorbs the log prefix (segments
// deleted), the tail replays on top of it, and the counters separate
// the two.
func TestSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 1<<12, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 100; k++ {
		l.Append(k, false)
	}
	l.Append(50, true) // delete inside the snapshot's coverage
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for k := int64(200); k < 210; k++ {
		l.Append(k, false)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("snapshot files %v, want 1", snaps)
	}
	l2, rec, err := Open(dir, 1<<12, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.SnapshotKeys != 99 {
		t.Fatalf("SnapshotKeys = %d, want 99", rec.SnapshotKeys)
	}
	if rec.ReplayedOps != 10 {
		t.Fatalf("ReplayedOps = %d, want 10", rec.ReplayedOps)
	}
	if rec.Keys != 109 {
		t.Fatalf("Keys = %d, want 109", rec.Keys)
	}
	got := collect(rec)
	for _, k := range got {
		if k == 50 {
			t.Fatal("deleted key 50 resurrected")
		}
	}
}

// TestSnapshotOnlyRecovery: recovery works with no log tail at all.
func TestSnapshotOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 1<<10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{5, 6, 7} {
		l.Append(k, false)
	}
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, 1<<10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, rec, 5, 6, 7)
	if rec.ReplayedOps != 0 || rec.SnapshotKeys != 3 {
		t.Fatalf("rec = %+v, want pure snapshot recovery", rec)
	}
}

// TestSegmentRotation: a tiny segment budget rotates mid-stream and the
// multi-segment log replays completely.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 1<<12, Options{SegmentBytes: 128, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	var want []int64
	for k := int64(0); k < 60; k++ {
		l.Append(k, false)
		want = append(want, k)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("%d segments, want several (rotation)", len(segs))
	}
	l2, rec, err := Open(dir, 1<<12, Options{SegmentBytes: 128, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	wantKeys(t, rec, want...)
}

// TestShardedLog: keys route to stripes and recovery is globally
// ascending across them.
func TestShardedLog(t *testing.T) {
	dir := t.TempDir()
	const u = 1 << 8
	l, _, err := Open(dir, u, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	keys := []int64{250, 3, 130, 64, 65, 199, 0}
	l.AppendBatch([]core.BatchOp{
		{Key: 250}, {Key: 3}, {Key: 130}, {Key: 64}, {Key: 65}, {Key: 199}, {Key: 0},
	})
	_ = keys
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, u, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	wantKeys(t, rec, 0, 3, 64, 65, 130, 199, 250)
}

// TestMetaMismatch: reopening with different geometry fails loudly.
func TestMetaMismatch(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 1<<10, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, _, err := Open(dir, 1<<11, Options{Shards: 2}); err == nil {
		t.Fatal("universe change accepted")
	}
	if _, _, err := Open(dir, 1<<10, Options{Shards: 4}); err == nil {
		t.Fatal("shard-count change accepted")
	}
	if l, _, err := Open(dir, 1<<10, Options{Shards: 2}); err != nil {
		t.Fatalf("matching reopen: %v", err)
	} else {
		l.Close()
	}
}

// TestSyncEveryFlushes: with SyncEvery(1) every append is on disk
// before the call returns.
func TestSyncEveryFlushes(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 1<<10, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append(9, false)
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("append not flushed under SyncEvery(1)")
	}
	if got := l.Registry().Counter("wal.fsyncs").Load(); got < 1 {
		t.Fatalf("fsyncs = %d, want ≥ 1", got)
	}
}

// TestSyncInterval: an interval-only policy fsyncs dirty shards on the
// ticker, not per append.
func TestSyncInterval(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 1<<10, Options{SyncEvery: -1, SyncInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append(4, false)
	deadline := time.Now().Add(2 * time.Second)
	for l.Registry().Counter("wal.fsyncs").Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval fsync never fired")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAutoSnapshot: crossing SnapshotBytes triggers a background
// snapshot without an explicit call.
func TestAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 1<<12, Options{SnapshotBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for k := int64(0); k < 64; k++ {
		l.Append(k, false)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Registry().Counter("wal.snapshots").Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto snapshot never fired")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRecoveryCountersExposed: the wal.recovery.* counters land in the
// registry snapshot (the e2e crash smoke asserts on these).
func TestRecoveryCountersExposed(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 1<<10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(1, false)
	l.Append(2, false)
	l.Close()
	l2, _, err := Open(dir, 1<<10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	snap := l2.Registry().Snapshot()
	if snap.Counters["wal.recovery.replayed_ops"] != 2 {
		t.Fatalf("wal.recovery.replayed_ops = %d, want 2", snap.Counters["wal.recovery.replayed_ops"])
	}
}
