// Package seqtrie implements the sequential binary trie of paper §1: a
// dynamic set over {0,…,u−1} stored as b+1 bit arrays D_0..D_b forming a
// perfect binary tree. Search is O(1); Insert, Delete and Predecessor are
// O(log u) worst case; space is Θ(u).
//
// It is the reference semantics for every concurrent implementation in this
// repository, the substrate of the lock-based baseline (internal/locktrie)
// and the subject of Figure 1.
package seqtrie

import (
	"fmt"
	"math/bits"
)

// Trie is a sequential binary trie. Not safe for concurrent use; wrap it
// (see internal/locktrie) for shared access.
type Trie struct {
	b    int
	size int64
	bit  []byte // heap-indexed: 1 = root, children 2i/2i+1, leaf x at size+x
	n    int64  // number of keys present
}

// New returns an empty trie over {0,…,u−1} (u ≥ 2, padded to a power of
// two).
func New(u int64) (*Trie, error) {
	if u < 2 {
		return nil, fmt.Errorf("seqtrie: universe size %d, need at least 2", u)
	}
	if u > 1<<32 {
		return nil, fmt.Errorf("seqtrie: universe size %d exceeds 2^32", u)
	}
	b := bits.Len64(uint64(u - 1))
	size := int64(1) << uint(b)
	return &Trie{b: b, size: size, bit: make([]byte, 2*size)}, nil
}

// U returns the padded universe size.
func (t *Trie) U() int64 { return t.size }

// B returns ⌈log2 u⌉.
func (t *Trie) B() int { return t.b }

// Len returns the number of keys in the set.
func (t *Trie) Len() int64 { return t.n }

// Search reports membership of x. O(1): one array read.
func (t *Trie) Search(x int64) bool { return t.bit[t.size+x] == 1 }

// Insert adds x, setting the bits on the leaf-to-root path to 1.
func (t *Trie) Insert(x int64) {
	i := t.size + x
	if t.bit[i] == 1 {
		return
	}
	t.n++
	for ; i >= 1 && t.bit[i] == 0; i >>= 1 {
		t.bit[i] = 1
	}
}

// Delete removes x, clearing each ancestor whose children are both 0.
func (t *Trie) Delete(x int64) {
	i := t.size + x
	if t.bit[i] == 0 {
		return
	}
	t.n--
	t.bit[i] = 0
	for i >>= 1; i >= 1; i >>= 1 {
		if t.bit[2*i] == 1 || t.bit[2*i+1] == 1 {
			return
		}
		t.bit[i] = 0
	}
}

// Predecessor returns the largest key smaller than y, or −1 (paper §1
// algorithm: ascend until a left sibling holds 1, then descend its
// right-most 1-path).
func (t *Trie) Predecessor(y int64) int64 {
	i := t.size + y
	for i&1 == 0 || t.bit[i^1] == 0 {
		i >>= 1
		if i == 1 {
			return -1
		}
	}
	i ^= 1 // left sibling with bit 1
	for i < t.size {
		if t.bit[2*i+1] == 1 {
			i = 2*i + 1
		} else {
			i = 2 * i
		}
	}
	return i - t.size
}

// Successor returns the smallest key greater than y, or −1. The mirror of
// Predecessor; used by the priority-queue example.
func (t *Trie) Successor(y int64) int64 {
	i := t.size + y
	for i&1 == 1 || t.bit[i^1] == 0 {
		i >>= 1
		if i == 1 {
			return -1
		}
	}
	i ^= 1 // right sibling with bit 1
	for i < t.size {
		if t.bit[2*i] == 1 {
			i = 2 * i
		} else {
			i = 2*i + 1
		}
	}
	return i - t.size
}

// Min returns the smallest key in the set, or −1 if empty.
func (t *Trie) Min() int64 {
	if t.bit[1] == 0 {
		return -1
	}
	i := int64(1)
	for i < t.size {
		if t.bit[2*i] == 1 {
			i = 2 * i
		} else {
			i = 2*i + 1
		}
	}
	return i - t.size
}

// Max returns the largest key in the set, or −1 if empty.
func (t *Trie) Max() int64 {
	if t.bit[1] == 0 {
		return -1
	}
	i := int64(1)
	for i < t.size {
		if t.bit[2*i+1] == 1 {
			i = 2*i + 1
		} else {
			i = 2 * i
		}
	}
	return i - t.size
}

// Bit exposes a raw tree bit for tests and trieviz (index 1 = root).
func (t *Trie) Bit(i int64) byte { return t.bit[i] }
