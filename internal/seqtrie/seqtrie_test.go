package seqtrie_test

import (
	"testing"

	"repro/internal/seqtrie"
	"repro/internal/settest"
)

func factory(u int64) (settest.Set, error) { return seqtrie.New(u) }

func TestSequentialConformance(t *testing.T) { settest.RunSequential(t, factory, 64) }
func TestEdgeCases(t *testing.T)             { settest.RunEdgeCases(t, factory, 32) }

func TestNewValidation(t *testing.T) {
	if _, err := seqtrie.New(1); err == nil {
		t.Error("New(1) should fail")
	}
	tr, err := seqtrie.New(100)
	if err != nil {
		t.Fatal(err)
	}
	if tr.U() != 128 || tr.B() != 7 {
		t.Errorf("U=%d B=%d, want 128/7", tr.U(), tr.B())
	}
}

// TestFigure1 reproduces the paper's Figure 1: the binary trie for
// S = {0, 2} over U = {0, 1, 2, 3}. Root 1; left child 1 (covers 0,1);
// right child 1 (covers 2,3); leaves 1,0,1,0.
func TestFigure1(t *testing.T) {
	tr, err := seqtrie.New(4)
	if err != nil {
		t.Fatal(err)
	}
	tr.Insert(0)
	tr.Insert(2)
	wantBits := map[int64]byte{
		1: 1, // root (D0)
		2: 1, // D1[0]
		3: 1, // D1[1]
		4: 1, // D2[00] = leaf 0
		5: 0, // D2[01]
		6: 1, // D2[10] = leaf 2
		7: 0, // D2[11]
	}
	for idx, want := range wantBits {
		if got := tr.Bit(idx); got != want {
			t.Errorf("Bit(%d) = %d, want %d", idx, got, want)
		}
	}
	// Figure 1 queries: Predecessor(3) = 2, Predecessor(2) = 0,
	// Predecessor(1) = 0, Predecessor(0) = −1.
	wantPred := []int64{-1, 0, 0, 2}
	for y, want := range wantPred {
		if got := tr.Predecessor(int64(y)); got != want {
			t.Errorf("Predecessor(%d) = %d, want %d", y, got, want)
		}
	}
}

func TestLen(t *testing.T) {
	tr, _ := seqtrie.New(16)
	if tr.Len() != 0 {
		t.Fatal("empty Len != 0")
	}
	tr.Insert(3)
	tr.Insert(3)
	tr.Insert(5)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	tr.Delete(3)
	tr.Delete(3)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestSuccessorMinMax(t *testing.T) {
	tr, _ := seqtrie.New(32)
	if tr.Min() != -1 || tr.Max() != -1 {
		t.Fatal("empty Min/Max should be -1")
	}
	if tr.Successor(0) != -1 {
		t.Fatal("empty Successor should be -1")
	}
	for _, k := range []int64{4, 9, 20, 31} {
		tr.Insert(k)
	}
	if got := tr.Min(); got != 4 {
		t.Errorf("Min = %d, want 4", got)
	}
	if got := tr.Max(); got != 31 {
		t.Errorf("Max = %d, want 31", got)
	}
	succTests := []struct{ y, want int64 }{
		{0, 4}, {4, 9}, {9, 20}, {20, 31}, {31, -1}, {30, 31},
	}
	for _, tt := range succTests {
		if got := tr.Successor(tt.y); got != tt.want {
			t.Errorf("Successor(%d) = %d, want %d", tt.y, got, tt.want)
		}
	}
}
