package bitstrie

import (
	"sync"
	"testing"

	"repro/internal/unode"
)

// scriptOracle is a deterministic oracle for white-box engine tests. latest
// maps keys to update nodes; missing keys materialize dummies like the real
// data structures do. notFirst marks nodes FirstActivated must reject.
type scriptOracle struct {
	mu       sync.Mutex
	b        int
	tr       *Trie // for the MarkEverInserted publication contract
	latest   map[int64]*unode.UpdateNode
	notFirst map[*unode.UpdateNode]bool
}

func newScriptOracle(b int) *scriptOracle {
	return &scriptOracle{
		b:        b,
		latest:   make(map[int64]*unode.UpdateNode),
		notFirst: make(map[*unode.UpdateNode]bool),
	}
}

func (o *scriptOracle) FindLatest(x int64) *unode.UpdateNode {
	o.mu.Lock()
	defer o.mu.Unlock()
	if n, ok := o.latest[x]; ok {
		return n
	}
	d := unode.NewDummyDel(x, o.b)
	o.latest[x] = d
	return d
}

func (o *scriptOracle) FirstActivated(n *unode.UpdateNode) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.notFirst[n] {
		return false
	}
	return o.latest[n.Key] == n
}

func (o *scriptOracle) set(x int64, n *unode.UpdateNode) {
	// Honor the summary publication contract the real tries follow: a
	// winning insert marks the key ever-inserted before it can become the
	// first activated node of latest[x].
	if n.Kind == unode.Ins && o.tr != nil {
		o.tr.MarkEverInserted(x)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.latest[x] = n
}

func (o *scriptOracle) markOutdated(n *unode.UpdateNode) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.notFirst[n] = true
}

func newEngine(t *testing.T, u int64) (*Trie, *scriptOracle) {
	t.Helper()
	// b from the rounded universe; build oracle first with a provisional b,
	// then fix it after New reports the real b.
	o := newScriptOracle(0)
	tr, err := New(u, o)
	if err != nil {
		t.Fatalf("New(%d): %v", u, err)
	}
	o.b = tr.B()
	o.tr = tr
	return tr, o
}

func TestNewValidation(t *testing.T) {
	o := newScriptOracle(2)
	if _, err := New(1, o); err == nil {
		t.Error("New(1) should fail")
	}
	if _, err := New(0, o); err == nil {
		t.Error("New(0) should fail")
	}
	tr, err := New(5, o)
	if err != nil {
		t.Fatalf("New(5): %v", err)
	}
	if tr.U() != 8 || tr.B() != 3 {
		t.Errorf("New(5): U=%d B=%d, want 8/3", tr.U(), tr.B())
	}
}

func TestIndexArithmetic(t *testing.T) {
	tr, _ := newEngine(t, 8) // b=3, leaves at 8..15
	tests := []struct {
		idx      int64
		height   int
		leftmost int64
	}{
		{1, 3, 0},
		{2, 2, 0},
		{3, 2, 4},
		{4, 1, 0},
		{7, 1, 6},
		{8, 0, 0},
		{15, 0, 7},
	}
	for _, tt := range tests {
		if got := tr.height(tt.idx); got != tt.height {
			t.Errorf("height(%d) = %d, want %d", tt.idx, got, tt.height)
		}
		if got := tr.leftmostKey(tt.idx); got != tt.leftmost {
			t.Errorf("leftmostKey(%d) = %d, want %d", tt.idx, got, tt.leftmost)
		}
	}
	if got := tr.leafIndex(5); got != 13 {
		t.Errorf("leafIndex(5) = %d, want 13", got)
	}
	if got := tr.leafKey(13); got != 5 {
		t.Errorf("leafKey(13) = %d, want 5", got)
	}
	if sibling(8) != 9 || sibling(9) != 8 {
		t.Error("sibling arithmetic wrong")
	}
	if !isLeftChild(8) || isLeftChild(9) {
		t.Error("isLeftChild arithmetic wrong")
	}
}

func TestInterpretedBitCases(t *testing.T) {
	tr, o := newEngine(t, 4) // b=2
	leaf0 := tr.leafIndex(0) // index 4
	node2 := int64(2)        // parent of leaves 0,1; height 1

	// Untouched universe: everything reads 0 (dummy path).
	if got := tr.InterpretedBit(leaf0); got != 0 {
		t.Errorf("empty leaf bit = %d, want 0", got)
	}
	if got := tr.InterpretedBit(node2); got != 0 {
		t.Errorf("empty internal bit = %d, want 0", got)
	}
	if got := tr.InterpretedBit(1); got != 0 {
		t.Errorf("empty root bit = %d, want 0", got)
	}

	// INS latest ⇒ 1 regardless of boundaries.
	iNode := unode.NewIns(0)
	o.set(0, iNode)
	if got := tr.InterpretedBit(leaf0); got != 1 {
		t.Errorf("INS leaf bit = %d, want 1", got)
	}

	// DEL latest with u0b=0: leaf (h=0 ≤ 0) reads 0, parent (h=1 > 0)
	// still reads 1 until the delete propagates.
	dNode := unode.NewDel(0, tr.B())
	o.set(0, dNode)
	if got := tr.InterpretedBit(leaf0); got != 0 {
		t.Errorf("fresh DEL leaf bit = %d, want 0", got)
	}
	tr.nodes[node2].dNodePtr.Store(dNode)
	if got := tr.InterpretedBit(node2); got != 1 {
		t.Errorf("internal bit with u0b=0 = %d, want 1 (h=1 > u0b)", got)
	}
	dNode.Upper0Boundary.Store(1)
	if got := tr.InterpretedBit(node2); got != 0 {
		t.Errorf("internal bit with u0b=1 = %d, want 0", got)
	}

	// lower1Boundary below height forces 1 (insert raced past).
	dNode.Lower1Boundary.MinWrite(1)
	if got := tr.InterpretedBit(node2); got != 1 {
		t.Errorf("internal bit with l1b=1,h=1 = %d, want 1", got)
	}

	// Outdated DEL node (not first activated) reads 1.
	dNode2 := unode.NewDel(1, tr.B())
	dNode2.Upper0Boundary.Store(1)
	o.set(1, dNode2)
	tr.nodes[node2].dNodePtr.Store(dNode2)
	o.markOutdated(dNode2)
	if got := tr.InterpretedBit(node2); got != 1 {
		t.Errorf("outdated DEL bit = %d, want 1", got)
	}
}

// figure2Setup builds the paper's Figure 2(a) state on u=4: S = ∅ after
// earlier deletes; node 2 (parent of leaves 0,1) depends on DEL(0) with
// u0b=1, node 3 and the root depend on DEL(3) with u0b=2, l1b=3.
func figure2Setup(t *testing.T) (*Trie, *scriptOracle, *unode.UpdateNode, *unode.UpdateNode) {
	t.Helper()
	tr, o := newEngine(t, 4)
	d0 := unode.NewDel(0, tr.B())
	d0.Upper0Boundary.Store(1)
	d3 := unode.NewDel(3, tr.B())
	d3.Upper0Boundary.Store(2)
	o.set(0, d0)
	o.set(3, d3)
	tr.nodes[2].dNodePtr.Store(d0)
	tr.nodes[3].dNodePtr.Store(d3)
	tr.nodes[1].dNodePtr.Store(d3)
	for idx := int64(1); idx < 8; idx++ {
		if got := tr.InterpretedBit(idx); got != 0 {
			t.Fatalf("setup: bit(%d) = %d, want 0", idx, got)
		}
	}
	return tr, o, d0, d3
}

// TestFigure2InsertLowersBoundary reproduces Figure 2: Insert(0) flips leaf
// 0 and node 2 in a single step (latest[0] switches to INS) and then raises
// the root by MinWriting the lower1Boundary of the DEL node in latest[3],
// without touching any dNodePtr.
func TestFigure2InsertLowersBoundary(t *testing.T) {
	tr, o, _, d3 := figure2Setup(t)

	iNode := unode.NewIns(0)
	o.set(0, iNode) // Figure 2(b): the CAS on latest[0]
	if got := tr.InterpretedBit(tr.leafIndex(0)); got != 1 {
		t.Fatalf("leaf0 bit = %d, want 1 right after activation", got)
	}
	if got := tr.InterpretedBit(2); got != 1 {
		t.Fatalf("node2 bit = %d, want 1 right after activation", got)
	}
	if got := tr.InterpretedBit(1); got != 0 {
		t.Fatalf("root bit = %d, want 0 before InsertBinaryTrie", got)
	}

	tr.InsertBinaryTrie(iNode) // Figure 2(c)

	if got := tr.InterpretedBit(1); got != 1 {
		t.Errorf("root bit after insert = %d, want 1", got)
	}
	if got := d3.Lower1Boundary.Read(); got != 2 {
		t.Errorf("d3 lower1Boundary = %d, want 2 (root height)", got)
	}
	if iNode.Target.Load() != d3 {
		t.Errorf("iNode.target = %v, want d3", iNode.Target.Load())
	}
	if tr.DNodePtr(1) != d3 {
		t.Error("insert must not change the root's dNodePtr")
	}
}

func TestInsertStopsWhenNotFirstActivated(t *testing.T) {
	tr, o, _, d3 := figure2Setup(t)
	iNode := unode.NewIns(0)
	o.set(0, iNode)
	o.markOutdated(iNode) // a newer update superseded this insert
	tr.InsertBinaryTrie(iNode)
	// The insert returns at line 44 before any MinWrite; the root stays 0
	// and d3 is untouched, but target was set first (the stop handshake).
	if got := tr.InterpretedBit(1); got != 0 {
		t.Errorf("root bit = %d, want 0 (stopped insert)", got)
	}
	if got := d3.Lower1Boundary.Read(); got != 3 {
		t.Errorf("d3 lower1Boundary = %d, want 3 (untouched)", got)
	}
	if iNode.Target.Load() != d3 {
		t.Error("insert should have set target before stopping")
	}
}

func TestDeleteBinaryTriePropagatesToRoot(t *testing.T) {
	tr, o := newEngine(t, 4)
	// Insert 0, then delete it; deletion must drive every bit to 0 and
	// leave dNodePtr of the path pointing at the DEL node with u0b = b.
	iNode := unode.NewIns(0)
	o.set(0, iNode)
	tr.InsertBinaryTrie(iNode)

	dNode := unode.NewDel(0, tr.B())
	o.set(0, dNode)
	tr.DeleteBinaryTrie(dNode)

	for _, idx := range []int64{tr.leafIndex(0), 2, 1} {
		if got := tr.InterpretedBit(idx); got != 0 {
			t.Errorf("bit(%d) after delete = %d, want 0", idx, got)
		}
	}
	if tr.DNodePtr(2) != dNode || tr.DNodePtr(1) != dNode {
		t.Error("delete should own the path's dNodePtrs")
	}
	if got := dNode.Upper0Boundary.Load(); got != int32(tr.B()) {
		t.Errorf("upper0Boundary = %d, want %d", got, tr.B())
	}
}

func TestDeleteStopsWhenSiblingPresent(t *testing.T) {
	tr, o := newEngine(t, 4)
	for _, k := range []int64{0, 1} {
		iNode := unode.NewIns(k)
		o.set(k, iNode)
		tr.InsertBinaryTrie(iNode)
	}
	dNode := unode.NewDel(0, tr.B())
	o.set(0, dNode)
	tr.DeleteBinaryTrie(dNode)

	// Leaf 0 is gone but its parent keeps bit 1 because leaf 1 remains.
	if got := tr.InterpretedBit(tr.leafIndex(0)); got != 0 {
		t.Errorf("leaf0 bit = %d, want 0", got)
	}
	if got := tr.InterpretedBit(2); got != 1 {
		t.Errorf("node2 bit = %d, want 1 (sibling present)", got)
	}
	if got := dNode.Upper0Boundary.Load(); got != 0 {
		t.Errorf("upper0Boundary = %d, want 0 (no propagation)", got)
	}
}

func TestDeleteStopsOnStopFlag(t *testing.T) {
	tr, o := newEngine(t, 4)
	iNode := unode.NewIns(0)
	o.set(0, iNode)
	tr.InsertBinaryTrie(iNode)
	dNode := unode.NewDel(0, tr.B())
	o.set(0, dNode)
	dNode.Stop.Store(true) // a concurrent insert asked us to stand down
	tr.DeleteBinaryTrie(dNode)
	if tr.DNodePtr(2) == dNode {
		t.Error("stopped delete must not install its DEL node")
	}
}

func TestDeleteStopsOnLoweredBoundary(t *testing.T) {
	tr, o := newEngine(t, 4)
	iNode := unode.NewIns(0)
	o.set(0, iNode)
	tr.InsertBinaryTrie(iNode)
	dNode := unode.NewDel(0, tr.B())
	o.set(0, dNode)
	dNode.Lower1Boundary.MinWrite(1) // insert already re-raised this subtrie
	tr.DeleteBinaryTrie(dNode)
	if tr.DNodePtr(2) == dNode {
		t.Error("delete with lowered boundary must not install its DEL node")
	}
}

// TestSecondCASAttemptRescue reproduces the Lemma 4.14 scenario: an outdated
// delete's CAS lands between the latest delete's read and CAS, failing the
// first attempt; the paper's second attempt must succeed and complete the
// propagation.
func TestSecondCASAttemptRescue(t *testing.T) {
	tr, o := newEngine(t, 4)
	stats := &Stats{}
	tr.SetStats(stats)

	dOld := unode.NewDel(0, tr.B()) // outdated delete, poised to CAS
	o.markOutdated(dOld)
	dNew := unode.NewDel(0, tr.B()) // latest delete
	o.set(0, dNew)

	injected := false
	tr.SetBeforeCASHook(func(node int64, attempt int) {
		if node == 2 && attempt == 1 && !injected {
			injected = true
			// dOld wakes up exactly before dNew's first CAS and installs
			// itself (it passed its own checks before stalling).
			if !tr.nodes[2].dNodePtr.CompareAndSwap(nil, dOld) {
				t.Error("outdated CAS injection failed")
			}
		}
	})
	tr.DeleteBinaryTrie(dNew)
	tr.SetBeforeCASHook(nil)

	if !injected {
		t.Fatal("interference was never injected")
	}
	if tr.DNodePtr(2) != dNew {
		t.Fatalf("node2 dNodePtr = %v, want dNew (second attempt rescue)", tr.DNodePtr(2))
	}
	if got := stats.SecondCASSuccess.Load(); got != 1 {
		t.Errorf("SecondCASSuccess = %d, want 1", got)
	}
	if got := dNode2BitQuiescent(tr); got != 0 {
		t.Errorf("node2 bit = %d, want 0 after rescued delete", got)
	}
	if got := tr.InterpretedBit(1); got != 0 {
		t.Errorf("root bit = %d, want 0 after rescued delete", got)
	}
}

// TestSingleCASAttemptLeavesStaleBit is the A1 ablation: with only one CAS
// attempt the same interleaving strands a stale interpreted bit 1 over an
// empty subtrie even at quiescence, violating property IB0.
func TestSingleCASAttemptLeavesStaleBit(t *testing.T) {
	tr, o := newEngine(t, 4)
	tr.SetSingleCASAttempt(true)

	dOld := unode.NewDel(0, tr.B())
	o.markOutdated(dOld)
	dNew := unode.NewDel(0, tr.B())
	o.set(0, dNew)

	injected := false
	tr.SetBeforeCASHook(func(node int64, attempt int) {
		if node == 2 && attempt == 1 && !injected {
			injected = true
			tr.nodes[2].dNodePtr.CompareAndSwap(nil, dOld)
		}
	})
	tr.DeleteBinaryTrie(dNew)
	tr.SetBeforeCASHook(nil)

	// Both leaves read 0 but the parent is stuck at 1 with no active ops:
	// exactly the correctness loss the two-attempt rule prevents.
	if got := tr.InterpretedBit(tr.leafIndex(0)); got != 0 {
		t.Fatalf("leaf0 bit = %d, want 0", got)
	}
	if got := tr.InterpretedBit(tr.leafIndex(1)); got != 0 {
		t.Fatalf("leaf1 bit = %d, want 0", got)
	}
	if got := dNode2BitQuiescent(tr); got != 1 {
		t.Errorf("node2 bit = %d; single-attempt ablation should strand a stale 1", got)
	}
}

func dNode2BitQuiescent(tr *Trie) int { return tr.InterpretedBit(2) }

func TestRelaxedPredecessorSequential(t *testing.T) {
	tr, o := newEngine(t, 16)
	present := map[int64]bool{}
	add := func(k int64) {
		iNode := unode.NewIns(k)
		o.set(k, iNode)
		tr.InsertBinaryTrie(iNode)
		present[k] = true
	}
	del := func(k int64) {
		dNode := unode.NewDel(k, tr.B())
		o.set(k, dNode)
		tr.DeleteBinaryTrie(dNode)
		delete(present, k)
	}
	check := func() {
		t.Helper()
		for y := int64(0); y < tr.U(); y++ {
			want := int64(-1)
			for k := y - 1; k >= 0; k-- {
				if present[k] {
					want = k
					break
				}
			}
			got, ok := tr.RelaxedPredecessor(y)
			if !ok {
				t.Fatalf("RelaxedPredecessor(%d) = ⊥ at quiescence", y)
			}
			if got != want {
				t.Fatalf("RelaxedPredecessor(%d) = %d, want %d (set %v)", y, got, want, present)
			}
		}
	}

	check() // empty
	add(3)
	check()
	add(9)
	add(10)
	check()
	del(9)
	check()
	add(0)
	add(15)
	check()
	del(3)
	del(0)
	del(10)
	del(15)
	check() // empty again
}

func TestStatsCounting(t *testing.T) {
	tr, o := newEngine(t, 8)
	stats := &Stats{}
	tr.SetStats(stats)
	iNode := unode.NewIns(3)
	o.set(3, iNode)
	tr.InsertBinaryTrie(iNode)
	if stats.MinWrites.Load() == 0 {
		t.Error("expected MinWrites > 0")
	}
	dNode := unode.NewDel(3, tr.B())
	o.set(3, dNode)
	tr.DeleteBinaryTrie(dNode)
	if stats.CASAttempts.Load() == 0 {
		t.Error("expected CASAttempts > 0")
	}
	if stats.BitReads.Load() == 0 {
		t.Error("expected BitReads > 0")
	}
	tr.RelaxedPredecessor(5)
	if stats.TraversalSteps.Load() == 0 {
		t.Error("expected TraversalSteps > 0")
	}
}

// TestWaitFreeStepBound: a solo operation performs O(b) engine steps; with
// the stats counters we can bound bit reads per op by a small multiple of b.
func TestWaitFreeStepBound(t *testing.T) {
	tr, o := newEngine(t, 1<<12) // b = 12
	stats := &Stats{}
	tr.SetStats(stats)
	const ops = 200
	for k := int64(0); k < ops; k++ {
		iNode := unode.NewIns(k)
		o.set(k, iNode)
		tr.InsertBinaryTrie(iNode)
		dNode := unode.NewDel(k, tr.B())
		o.set(k, dNode)
		tr.DeleteBinaryTrie(dNode)
		tr.RelaxedPredecessor(k)
	}
	b := int64(tr.B())
	// 3 engine calls per iteration, each ≤ ~4 bit reads per level.
	bound := ops * 3 * 4 * (b + 1)
	if got := stats.BitReads.Load(); got > bound {
		t.Errorf("BitReads = %d exceeds wait-free bound %d", got, bound)
	}
}
