package bitstrie

import (
	"math/rand"
	"testing"

	"repro/internal/unode"
)

// TestPrevNextEverInserted cross-checks the hierarchical summary scans
// against brute force over random mark sets, on a universe deep enough for
// multiple summary levels (b = 20 ⇒ 4 levels).
func TestPrevNextEverInserted(t *testing.T) {
	tr, _ := newEngine(t, 1<<20)
	rng := rand.New(rand.NewSource(7))
	marked := map[int64]bool{}
	for n := 0; n < 200; n++ {
		k := rng.Int63n(tr.U())
		tr.MarkEverInserted(k)
		marked[k] = true
	}
	probe := func(y int64) {
		t.Helper()
		wantPrev, wantNext := int64(-1), int64(-1)
		for k := y - 1; k >= 0; k-- {
			if marked[k] {
				wantPrev = k
				break
			}
		}
		for k := y + 1; k < tr.U(); k++ {
			if marked[k] {
				wantNext = k
				break
			}
		}
		if got := tr.prevEverInserted(y); got != wantPrev {
			t.Fatalf("prevEverInserted(%d) = %d, want %d", y, got, wantPrev)
		}
		if got := tr.nextEverInserted(y); got != wantNext {
			t.Fatalf("nextEverInserted(%d) = %d, want %d", y, got, wantNext)
		}
	}
	probe(0)
	probe(tr.U() - 1)
	for k := range marked {
		probe(k)
		if k > 0 {
			probe(k - 1)
		}
		if k < tr.U()-1 {
			probe(k + 1)
		}
	}
	for n := 0; n < 500; n++ {
		probe(rng.Int63n(tr.U()))
	}
}

// TestCertifiedClear checks the single-word range test against the mark set
// for nodes at every height.
func TestCertifiedClear(t *testing.T) {
	tr, _ := newEngine(t, 1<<14)
	rng := rand.New(rand.NewSource(11))
	marked := map[int64]bool{}
	for n := 0; n < 40; n++ {
		k := rng.Int63n(tr.U())
		tr.MarkEverInserted(k)
		marked[k] = true
	}
	// Walk every node of the first few subtrees plus random nodes.
	checkNode := func(i int64) {
		t.Helper()
		lo := tr.leftmostKey(i)
		hi := lo + (int64(1) << uint(tr.height(i)))
		anyMarked := false
		for k := lo; k < hi; k++ {
			if marked[k] {
				anyMarked = true
				break
			}
		}
		if got := tr.certifiedClear(i); got == anyMarked {
			t.Fatalf("certifiedClear(%d) = %v, range [%d,%d) marked=%v", i, got, lo, hi, anyMarked)
		}
	}
	for i := int64(1); i < 2048; i++ {
		checkNode(i)
	}
	for n := 0; n < 2000; n++ {
		checkNode(1 + rng.Int63n(2*tr.U()-1))
	}
}

// TestCompressedMatchesDense drives a random quiescent workload and checks
// that the accelerated traversals return exactly what the paper-literal
// ones do at every probe point (at quiescence both must be exact, Lemma
// 4.20 / the mirror).
func TestCompressedMatchesDense(t *testing.T) {
	for _, u := range []int64{16, 1 << 10, 1 << 17} {
		tr, o := newEngine(t, u)
		rng := rand.New(rand.NewSource(u))
		present := map[int64]*unode.UpdateNode{}
		for step := 0; step < 400; step++ {
			k := rng.Int63n(tr.U())
			if iNode, ok := present[k]; !ok {
				n := unode.NewIns(k)
				o.set(k, n)
				tr.InsertBinaryTrie(n)
				present[k] = n
			} else {
				_ = iNode
				n := unode.NewDel(k, tr.B())
				o.set(k, n)
				tr.DeleteBinaryTrie(n)
				delete(present, k)
			}
			for probe := 0; probe < 4; probe++ {
				y := rng.Int63n(tr.U())
				tr.compressed = true
				gotP, okP := tr.RelaxedPredecessor(y)
				gotS, okS := tr.RelaxedSuccessor(y)
				tr.compressed = false
				wantP, wokP := tr.RelaxedPredecessor(y)
				wantS, wokS := tr.RelaxedSuccessor(y)
				tr.compressed = true
				if gotP != wantP || okP != wokP {
					t.Fatalf("u=%d step=%d: RelaxedPredecessor(%d) compressed=(%d,%v) dense=(%d,%v)",
						u, step, y, gotP, okP, wantP, wokP)
				}
				if gotS != wantS || okS != wokS {
					t.Fatalf("u=%d step=%d: RelaxedSuccessor(%d) compressed=(%d,%v) dense=(%d,%v)",
						u, step, y, gotS, okS, wantS, wokS)
				}
			}
		}
	}
}

// TestSummaryIntrospection covers EverInsertedCount, SummaryAllOnes and the
// summary stats counters the cc1 experiment reports.
func TestSummaryIntrospection(t *testing.T) {
	tr, o := newEngine(t, 128)
	if tr.EverInsertedCount() != 0 {
		t.Fatalf("EverInsertedCount = %d on fresh trie", tr.EverInsertedCount())
	}
	if tr.SummaryAllOnes() {
		t.Fatal("SummaryAllOnes = true on fresh trie")
	}
	stats := &Stats{}
	tr.SetStats(stats)
	n := unode.NewIns(100)
	o.set(100, n)
	tr.InsertBinaryTrie(n)
	if got := tr.EverInsertedCount(); got != 1 {
		t.Fatalf("EverInsertedCount = %d, want 1", got)
	}
	// A sparse traversal must hit the summaries and skip sibling reads.
	if p, ok := tr.RelaxedPredecessor(127); !ok || p != 100 {
		t.Fatalf("RelaxedPredecessor(127) = (%d,%v), want (100,true)", p, ok)
	}
	if stats.SummaryLoads.Load() == 0 {
		t.Error("expected SummaryLoads > 0")
	}
	if stats.SkippedBitReads.Load() == 0 {
		t.Error("expected SkippedBitReads > 0")
	}
	for k := int64(0); k < tr.U(); k++ {
		tr.MarkEverInserted(k)
	}
	if !tr.SummaryAllOnes() {
		t.Fatal("SummaryAllOnes = false with every key marked")
	}
	if got := tr.EverInsertedCount(); got != tr.U() {
		t.Fatalf("EverInsertedCount = %d, want %d", got, tr.U())
	}
}

// TestCompressedDescentsSwitch checks the baseline switch and its default.
func TestCompressedDescentsSwitch(t *testing.T) {
	tr, _ := newEngine(t, 16)
	if !tr.CompressedDescents() {
		t.Fatal("compressed descents should default on")
	}
	tr.SetCompressedDescents(false)
	if tr.CompressedDescents() {
		t.Fatal("SetCompressedDescents(false) did not stick")
	}
	// Dense path must still answer correctly with summaries maintained.
	if p, ok := tr.RelaxedPredecessor(7); !ok || p != -1 {
		t.Fatalf("dense RelaxedPredecessor(7) = (%d,%v), want (-1,true)", p, ok)
	}
}
