// Package bitstrie implements the wait-free interpreted-bit machinery of the
// relaxed binary trie (paper §4.2–4.4): the array of binary trie nodes, the
// InterpretedBit computation (paper lines 22–27), InsertBinaryTrie (38–46),
// DeleteBinaryTrie (58–72) and RelaxedPredecessor (73–90).
//
// The engine is parameterized by an Oracle that resolves latest[x] lookups,
// because the relaxed trie (§4) and the lock-free trie (§5) implement
// FindLatest and FirstActivated differently (paper §4.4.1: "The
// implementation of these helper functions ... will be replaced with a
// different implementation when we consider the lock-free binary trie").
//
// Trie layout: the paper's arrays D_0..D_b form a perfect binary tree; we
// store them heap-indexed in one slice (index 1 = root, children 2i/2i+1,
// leaf for key x at 2^b + x). A node's height is b − depth, computable from
// the index, so a trie node is exactly one atomic pointer: dNodePtr.
package bitstrie

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/atomicx"
	"repro/internal/bitmap"
	"repro/internal/unode"
)

// Oracle resolves the latest-list operations the engine depends on.
//
// FindLatest returns the first activated update node in the latest[x] list;
// it must materialize and return the dummy DEL node if no operation ever
// updated x. FirstActivated reports whether n is currently the first
// activated update node in latest[n.Key].
type Oracle interface {
	FindLatest(x int64) *unode.UpdateNode
	FirstActivated(n *unode.UpdateNode) bool
}

// Stats carries optional step counters for the complexity experiments
// (EXPERIMENTS.md C3, A1). All fields are atomic and padded to distinct
// cache lines (see atomicx.PadInt64: unpadded neighbours would false-share
// under the very contention the experiments measure); a nil *Stats disables
// collection.
type Stats struct {
	// BitReads counts InterpretedBit evaluations.
	BitReads atomicx.PadInt64
	// CASAttempts / CASFailures count dNodePtr CAS operations in
	// DeleteBinaryTrie.
	CASAttempts atomicx.PadInt64
	CASFailures atomicx.PadInt64
	// SecondCASSuccess counts deletes whose first dNodePtr CAS failed but
	// whose second succeeded — the situations where the paper's
	// two-attempt rule (lines 66–70) rescued the delete.
	SecondCASSuccess atomicx.PadInt64
	// MinWrites counts lower1Boundary MinWrite operations by inserts.
	MinWrites atomicx.PadInt64
	// TraversalSteps counts trie-node visits by RelaxedPredecessor.
	TraversalSteps atomicx.PadInt64
	// SummaryLoads counts occupancy-summary word loads by the compressed
	// descents (C-CC1 cache-work proxy).
	SummaryLoads atomicx.PadInt64
	// SkippedBitReads counts InterpretedBit evaluations the compressed
	// descents avoided via a certified-clear summary range.
	SkippedBitReads atomicx.PadInt64
}

// Trie is the interpreted-bit engine over universe {0,…,U()−1}.
type Trie struct {
	b      int   // ⌈log2 u⌉, height of the root
	size   int64 // 2^b, number of leaves
	oracle Oracle
	stats  *Stats

	// singleCASAttempt disables the second CAS attempt of DeleteBinaryTrie
	// for the A1 ablation. Never set in production use.
	singleCASAttempt bool

	// beforeCAS, when non-nil, runs before each dNodePtr CAS attempt in
	// DeleteBinaryTrie. Test instrumentation for deterministic
	// interleavings (e.g. the outdated-delete scenario of Lemma 4.14).
	beforeCAS func(node int64, attempt int)

	// compressed enables the summary-accelerated RelaxedPredecessor /
	// RelaxedSuccessor descents (on by default; SetCompressedDescents(false)
	// selects the paper-literal traversals for the cc1 baseline).
	compressed bool

	nodes []trieNode // heap-indexed, len 2*size; index 0 unused

	// summary[k] is the ever-inserted occupancy summary at granularity
	// 64^k: bit g of level k is 1 iff some key in [g·64^k, (g+1)·64^k) has
	// ever been published by a winning insert (MarkEverInserted). Bits are
	// monotone — set with one atomic OR before the insert's latest CAS,
	// never cleared — so a CLEAR bit is a certificate that every
	// interpreted bit of a trie node whose key range it covers was 0 at
	// the load, while a set bit is advisory (the key may be long deleted)
	// and descents re-validate with a real InterpretedBit read. See
	// DESIGN.md §Cache-compressed descents.
	summary []bitmap.Words
}

type trieNode struct {
	dNodePtr atomic.Pointer[unode.UpdateNode]
}

// New builds the engine for a universe of u keys (u ≥ 2; rounded up to the
// next power of two) using the given oracle.
func New(u int64, oracle Oracle) (*Trie, error) {
	if u < 2 {
		return nil, fmt.Errorf("bitstrie: universe size %d, need at least 2", u)
	}
	if u > 1<<32 {
		return nil, fmt.Errorf("bitstrie: universe size %d exceeds 2^32", u)
	}
	b := bits.Len64(uint64(u - 1))
	size := int64(1) << uint(b)
	t := &Trie{
		b:          b,
		size:       size,
		oracle:     oracle,
		compressed: true,
		nodes:      make([]trieNode, 2*size),
	}
	// Build the summary hierarchy: level 0 has one bit per key; each level
	// above compresses 64 bits into one until a level fits one word.
	for n := size; ; n = bitmap.WordsFor(n) {
		t.summary = append(t.summary, bitmap.NewWords(n))
		if n <= bitmap.WordBits {
			break
		}
	}
	return t, nil
}

// SetStats attaches step counters (may be nil to disable). Not safe to call
// concurrently with operations.
func (t *Trie) SetStats(s *Stats) { t.stats = s }

// SetSingleCASAttempt enables the A1 ablation (one dNodePtr CAS attempt
// instead of the paper's two). Tests and benchmarks only.
func (t *Trie) SetSingleCASAttempt(on bool) { t.singleCASAttempt = on }

// SetBeforeCASHook installs test instrumentation invoked before every
// dNodePtr CAS attempt in DeleteBinaryTrie (attempt is 1 or 2). Pass nil to
// remove. Tests only; not safe to change concurrently with operations.
func (t *Trie) SetBeforeCASHook(hook func(node int64, attempt int)) { t.beforeCAS = hook }

// SetCompressedDescents selects between the summary-accelerated descents
// (the default) and the paper-literal traversals (the cc1 baseline and the
// semantics-equivalence tests). Summaries are maintained either way, so the
// switch may only be flipped while no RelaxedPredecessor/RelaxedSuccessor
// is in flight.
func (t *Trie) SetCompressedDescents(on bool) { t.compressed = on }

// CompressedDescents reports whether the accelerated descents are enabled.
func (t *Trie) CompressedDescents() bool { return t.compressed }

// B returns b = ⌈log2 u⌉, the height of the root.
func (t *Trie) B() int { return t.b }

// U returns the padded universe size 2^b.
func (t *Trie) U() int64 { return t.size }

// --- index arithmetic -------------------------------------------------------

func (t *Trie) leafIndex(x int64) int64 { return t.size + x }
func parent(i int64) int64              { return i >> 1 }
func leftChild(i int64) int64           { return i << 1 }
func rightChild(i int64) int64          { return i<<1 | 1 }
func sibling(i int64) int64             { return i ^ 1 }
func isLeftChild(i int64) bool          { return i&1 == 0 }

// height of node i: b − depth, where depth = ⌊log2 i⌋.
func (t *Trie) height(i int64) int {
	return t.b - (bits.Len64(uint64(i)) - 1)
}

// leafKey returns the key of leaf index i.
func (t *Trie) leafKey(i int64) int64 { return i - t.size }

// leftmostKey returns the smallest key in the subtrie rooted at i; it is the
// conceptual key of the virtual dummy DEL node a nil dNodePtr stands for.
func (t *Trie) leftmostKey(i int64) int64 {
	return (i << uint(t.height(i))) - t.size
}

// depKey returns the key whose latest list the interpreted bit of node i
// depends on: dNodePtr's key, or the leftmost leaf key when dNodePtr is
// still the initial (virtual dummy) nil.
func (t *Trie) depKey(i int64) int64 {
	if d := t.nodes[i].dNodePtr.Load(); d != nil {
		return d.Key
	}
	return t.leftmostKey(i)
}

// --- InterpretedBit (paper lines 22–27) -------------------------------------

// InterpretedBit computes the interpreted bit of node index i. If the bit is
// stable throughout the call it returns that value (Lemmas 4.16, 4.17).
func (t *Trie) InterpretedBit(i int64) int {
	if t.stats != nil {
		t.stats.BitReads.Add(1)
	}
	uNode := t.oracle.FindLatest(t.depKey(i))
	if uNode.Kind == unode.Ins {
		return 1
	}
	h := t.height(i)
	if h <= int(uNode.Upper0Boundary.Load()) {
		if h < uNode.Lower1Boundary.Read() && t.oracle.FirstActivated(uNode) {
			return 0
		}
	}
	return 1
}

// InterpretedBitOfLeaf is a convenience for tests and trieviz.
func (t *Trie) InterpretedBitOfLeaf(x int64) int { return t.InterpretedBit(t.leafIndex(x)) }

// --- InsertBinaryTrie (paper lines 38–46) -----------------------------------

// InsertBinaryTrie walks from the parent of iNode's leaf to the root and
// ensures each node on the path has interpreted bit 1, by lowering the
// lower1Boundary of the DEL node the trie node depends on. Wait-free: at
// most b iterations with a constant number of steps each.
func (t *Trie) InsertBinaryTrie(iNode *unode.UpdateNode) {
	for i := parent(t.leafIndex(iNode.Key)); i >= 1; i = parent(i) {
		uNode := t.oracle.FindLatest(t.depKey(i))
		if uNode.Kind != unode.Del {
			continue
		}
		d := t.nodes[i].dNodePtr.Load()
		// Paper line 42. With a nil dNodePtr (virtual dummy), the second
		// disjunct is true because a dummy has upper0Boundary = b ≥ height.
		if d != uNode && t.height(i) > int(uNode.Upper0Boundary.Load()) {
			continue
		}
		iNode.Target.Store(uNode)
		if !t.oracle.FirstActivated(iNode) {
			return
		}
		if h := t.height(i); h < uNode.Lower1Boundary.Read() {
			if t.stats != nil {
				t.stats.MinWrites.Add(1)
			}
			uNode.Lower1Boundary.MinWrite(h)
		}
	}
}

// --- DeleteBinaryTrie (paper lines 58–72) -----------------------------------

// DeleteBinaryTrie walks from dNode's leaf toward the root, setting
// interpreted bits to 0 while both children of the current node read 0. The
// two CAS attempts per level (lines 66 and 70) prevent outdated deletes from
// interfering with the latest one (see Lemma 4.14). Wait-free: at most b
// iterations, constant steps each.
func (t *Trie) DeleteBinaryTrie(dNode *unode.UpdateNode) {
	i := t.leafIndex(dNode.Key)
	for i > 1 { // while t is not the root
		if t.InterpretedBit(sibling(i)) == 1 || t.InterpretedBit(i) == 1 {
			return
		}
		i = parent(i)
		d := t.nodes[i].dNodePtr.Load()
		if !t.oracle.FirstActivated(dNode) {
			return
		}
		if dNode.Stop.Load() || dNode.Lower1Boundary.Read() != t.b+1 {
			return
		}
		if !t.casDNodePtr(i, d, dNode, 1) {
			if t.singleCASAttempt {
				return // A1 ablation: paper's first attempt only
			}
			d = t.nodes[i].dNodePtr.Load()
			if !t.oracle.FirstActivated(dNode) {
				return
			}
			if dNode.Stop.Load() || dNode.Lower1Boundary.Read() != t.b+1 {
				return
			}
			if !t.casDNodePtr(i, d, dNode, 2) {
				return
			}
			if t.stats != nil {
				t.stats.SecondCASSuccess.Add(1)
			}
		}
		if t.InterpretedBit(leftChild(i)) == 1 || t.InterpretedBit(rightChild(i)) == 1 {
			return
		}
		dNode.Upper0Boundary.Store(int32(t.height(i)))
	}
}

func (t *Trie) casDNodePtr(i int64, old, new *unode.UpdateNode, attempt int) bool {
	if t.beforeCAS != nil {
		t.beforeCAS(i, attempt)
	}
	if t.stats != nil {
		t.stats.CASAttempts.Add(1)
	}
	ok := t.nodes[i].dNodePtr.CompareAndSwap(old, new)
	if !ok && t.stats != nil {
		t.stats.CASFailures.Add(1)
	}
	return ok
}

// --- occupancy summaries (DESIGN.md §Cache-compressed descents) -------------

// MarkEverInserted records that a winning insert is about to publish key x.
//
// Contract: the caller MUST invoke it before x's INS node can become the
// first activated node of latest[x] — i.e. before the latest CAS in
// relaxed.Add, core.Add and the batched insert. The summary invariant is
// monotone ("bit clear ⇒ no insert of a covered key ever reached its
// latest CAS"), which is what lets the accelerated descents treat a clear
// range as a certified InterpretedBit-0 read without touching the nodes.
// Levels are set bottom-up so an observed upper-level bit implies the
// covered lower-level bit is already visible (the hierarchy descent in
// prevEverInserted/nextEverInserted relies on this).
//
// Cost: one load per level in steady state (the OR is skipped once the bit
// is visible), at most ⌈b/6⌉+1 atomic ORs the first time a region is hit.
func (t *Trie) MarkEverInserted(x int64) {
	for _, lvl := range t.summary {
		lvl.Set(x)
		x >>= 6
	}
}

// EverInsertedCount returns the number of distinct keys ever published by a
// winning insert (level-0 summary popcount). Introspection for cc1.
func (t *Trie) EverInsertedCount() int64 { return t.summary[0].PopCount() }

// SummaryAllOnes reports whether every key of the universe has been
// inserted at least once — the occupancy regime in which certified-clear
// skips can never fire and a compressed-vs-baseline comparison is vacuous.
// The cc1 gate guard refuses to evaluate in this state.
func (t *Trie) SummaryAllOnes() bool { return t.summary[0].AllOnes(t.size) }

// certifiedClear reports whether node i's whole key range is
// never-inserted, with a single summary word load. True is a certificate
// that InterpretedBit(i) was 0 at the load (see MarkEverInserted); false
// means nothing — the caller must read the node.
func (t *Trie) certifiedClear(i int64) bool {
	h := uint(t.height(i))
	k := h / 6
	if int(k) >= len(t.summary) {
		k = uint(len(t.summary) - 1)
	}
	// The range covers 2^(h−6k) aligned bits of level k, which always fit
	// one word: h−6k < 6 when k = h/6, and 2^(h−6k) ≤ 2^(b−6k) ≤ 64 when k
	// is clamped to the top level.
	pos := t.leftmostKey(i) >> (6 * k)
	wi, bit := bitmap.WordIndex(pos)
	width := h - 6*k
	var mask uint64
	if width >= 6 {
		mask = ^uint64(0)
	} else {
		mask = ((uint64(1) << (uint64(1) << width)) - 1) << bit
	}
	if t.stats != nil {
		t.stats.SummaryLoads.Add(1)
	}
	return t.summary[k].Load(wi)&mask == 0
}

// prevEverInserted returns the largest key < x that was ever published by
// a winning insert, or −1. O(levels) summary word loads (a van Emde
// Boas-style scan over the hierarchy).
func (t *Trie) prevEverInserted(x int64) int64 {
	pos := x
	for lvl := 0; lvl < len(t.summary); lvl++ {
		wi, bit := bitmap.WordIndex(pos)
		if t.stats != nil {
			t.stats.SummaryLoads.Add(1)
		}
		if b := bitmap.NearestSetBelow(t.summary[lvl].Load(wi), bit); b >= 0 {
			return t.summaryDescendHigh(lvl, wi*bitmap.WordBits+int64(b))
		}
		if wi == 0 {
			// Nothing below within this level's first word; higher levels
			// cannot add anything below either.
			return -1
		}
		pos = wi // the level above indexes this level's words
	}
	return -1
}

// summaryDescendHigh resolves a set bit at (lvl, pos) down to the largest
// covered ever-inserted key. A set bit at level l+1 guarantees its covered
// level-l word is non-zero (MarkEverInserted sets bottom-up).
func (t *Trie) summaryDescendHigh(lvl int, pos int64) int64 {
	for l := lvl - 1; l >= 0; l-- {
		if t.stats != nil {
			t.stats.SummaryLoads.Add(1)
		}
		word := t.summary[l].Load(pos)
		pos = pos*bitmap.WordBits + int64(bitmap.NearestSetAtOrBelow(word, 63))
	}
	return pos
}

// nextEverInserted returns the smallest ever-inserted key > x, or −1. The
// mirror of prevEverInserted.
func (t *Trie) nextEverInserted(x int64) int64 {
	pos := x
	for lvl := 0; lvl < len(t.summary); lvl++ {
		wi, bit := bitmap.WordIndex(pos)
		if t.stats != nil {
			t.stats.SummaryLoads.Add(1)
		}
		if b := bitmap.NearestSetAbove(t.summary[lvl].Load(wi), bit); b >= 0 {
			return t.summaryDescendLow(lvl, wi*bitmap.WordBits+int64(b))
		}
		if wi == int64(len(t.summary[lvl]))-1 {
			return -1
		}
		pos = wi
	}
	return -1
}

// summaryDescendLow resolves a set bit at (lvl, pos) down to the smallest
// covered ever-inserted key.
func (t *Trie) summaryDescendLow(lvl int, pos int64) int64 {
	for l := lvl - 1; l >= 0; l-- {
		if t.stats != nil {
			t.stats.SummaryLoads.Add(1)
		}
		word := t.summary[l].Load(pos)
		pos = pos*bitmap.WordBits + int64(bitmap.NearestSetAtOrAbove(word, 0))
	}
	return pos
}

// --- RelaxedPredecessor (paper lines 73–90) ---------------------------------

// ErrBottom distinguishes the ⊥ result: concurrent updates prevented the
// traversal from completing. Callers of the relaxed trie receive it as the
// ok=false return.
//
// RelaxedPredecessor returns (key, true) on a completed traversal — key is
// −1 if no key smaller than y was found — and (0, false) for ⊥.
//
// With compressed descents enabled (the default) the ascent replaces the
// level-by-level sibling reads with a summary scan: the nearest
// ever-inserted key p < y certifies every left sibling strictly between
// them as interpreted-bit 0 (read at the summary load), so the traversal
// jumps straight to the divergence height of p and y and re-validates with
// one real InterpretedBit read there. Every answer the accelerated
// traversal returns is one the paper-literal traversal could have returned
// under some read schedule — see DESIGN.md §Cache-compressed descents.
func (t *Trie) RelaxedPredecessor(y int64) (int64, bool) {
	if !t.compressed {
		return t.relaxedPredecessorDense(y)
	}
	// Compressed ascent: jump from divergence height to divergence height.
	bound := y // every key in [bound, y) is already certified or read 0
	covered := uint64(0)
	var i int64
	for {
		p := t.prevEverInserted(bound)
		if p < 0 {
			// All remaining left siblings on the way to the root are
			// certified clear: no key below bound was ever inserted.
			return -1, true
		}
		d := uint(bits.Len64(uint64(y^p))) - 1
		if t.stats != nil {
			t.stats.TraversalSteps.Add(1)
			// The sibling reads the literal ascent would have done at the
			// right-child heights below d, now certified by the scan.
			skipped := bits.OnesCount64(uint64(y)&(uint64(1)<<d-1)) - bits.OnesCount64(uint64(y)&covered)
			t.stats.SkippedBitReads.Add(int64(skipped))
			covered = uint64(1)<<d - 1
		}
		s := ((t.size + y) >> d) ^ 1 // left sibling of y's ancestor; contains p
		if t.InterpretedBit(s) == 1 {
			i = s
			break
		}
		// p's region read 0 for real (p may be deleted); keep ascending
		// past it.
		bound = t.leftmostKey(s)
		if bound == 0 {
			return -1, true
		}
	}
	// Descend the right-most path of 1-bits, skipping certified-clear
	// children without touching their cache lines.
	for t.height(i) > 0 {
		if t.stats != nil {
			t.stats.TraversalSteps.Add(1)
		}
		switch {
		case t.childBit(rightChild(i)) == 1:
			i = rightChild(i)
		case t.childBit(leftChild(i)) == 1:
			i = leftChild(i)
		default:
			// Both children read (or certified) 0 under a node that read 1.
			// With a certified child this still implies a concurrent update:
			// a certificate plus the parent's 1-read cannot both hold over a
			// quiescent range (monotonicity — see DESIGN.md).
			return 0, false
		}
	}
	return t.leafKey(i), true
}

// relaxedPredecessorDense is the paper-literal traversal (lines 73–90),
// kept verbatim as the cc1 baseline and the semantics-equivalence oracle.
func (t *Trie) relaxedPredecessorDense(y int64) (int64, bool) {
	i := t.leafIndex(y)
	// Ascend while we are a left child or the left sibling's bit is 0.
	for isLeftChild(i) || t.InterpretedBit(sibling(i)) == 0 {
		if t.stats != nil {
			t.stats.TraversalSteps.Add(1)
		}
		i = parent(i)
		if i == 1 {
			return -1, true
		}
	}
	// Descend the right-most path of 1-bits starting at the left sibling.
	i = sibling(i)
	for t.height(i) > 0 {
		if t.stats != nil {
			t.stats.TraversalSteps.Add(1)
		}
		switch {
		case t.InterpretedBit(rightChild(i)) == 1:
			i = rightChild(i)
		case t.InterpretedBit(leftChild(i)) == 1:
			i = leftChild(i)
		default:
			// Both children read 0 under a node that read 1: a concurrent
			// update is mid-flight here (paper line 88).
			return 0, false
		}
	}
	return t.leafKey(i), true
}

// childBit returns the interpreted bit of child node c, substituting a
// certified summary 0 for the read when the whole range is never-inserted.
func (t *Trie) childBit(c int64) int {
	if t.certifiedClear(c) {
		if t.stats != nil {
			t.stats.SkippedBitReads.Add(1)
		}
		return 0
	}
	return t.InterpretedBit(c)
}

// RelaxedSuccessor is the mirror image of RelaxedPredecessor: it returns
// the smallest key greater than y under the same relaxed specification
// ((key, true) on success, (−1, true) when no key above y is visible,
// (0, false) for ⊥ under interference). The paper only states the
// predecessor algorithm; the mirror swaps left/right everywhere and is an
// extension of this reproduction. The summary acceleration mirrors too
// (nearest ever-inserted key above, left-most descent).
func (t *Trie) RelaxedSuccessor(y int64) (int64, bool) {
	if !t.compressed {
		return t.relaxedSuccessorDense(y)
	}
	bound := y
	covered := uint64(0)
	var i int64
	for {
		q := t.nextEverInserted(bound)
		if q < 0 {
			return -1, true
		}
		d := uint(bits.Len64(uint64(y^q))) - 1
		if t.stats != nil {
			t.stats.TraversalSteps.Add(1)
			// The literal ascent reads right siblings at the left-child
			// heights (y's 0-bits) below d.
			mask := uint64(1)<<d - 1
			skipped := bits.OnesCount64(^uint64(y)&mask) - bits.OnesCount64(^uint64(y)&covered)
			t.stats.SkippedBitReads.Add(int64(skipped))
			covered = mask
		}
		s := ((t.size + y) >> d) ^ 1 // right sibling of y's ancestor; contains q
		if t.InterpretedBit(s) == 1 {
			i = s
			break
		}
		bound = t.leftmostKey(s) + (int64(1) << d) - 1 // rightmost key under s
		if bound >= t.size-1 {
			return -1, true
		}
	}
	// Descend the left-most path of 1-bits with certified-clear skips.
	for t.height(i) > 0 {
		if t.stats != nil {
			t.stats.TraversalSteps.Add(1)
		}
		switch {
		case t.childBit(leftChild(i)) == 1:
			i = leftChild(i)
		case t.childBit(rightChild(i)) == 1:
			i = rightChild(i)
		default:
			return 0, false
		}
	}
	return t.leafKey(i), true
}

// relaxedSuccessorDense is the paper-literal mirror traversal, kept as the
// cc1 baseline and the semantics-equivalence oracle.
func (t *Trie) relaxedSuccessorDense(y int64) (int64, bool) {
	i := t.leafIndex(y)
	// Ascend while we are a right child or the right sibling's bit is 0.
	for !isLeftChild(i) || t.InterpretedBit(sibling(i)) == 0 {
		if t.stats != nil {
			t.stats.TraversalSteps.Add(1)
		}
		i = parent(i)
		if i == 1 {
			return -1, true
		}
	}
	// Descend the left-most path of 1-bits starting at the right sibling.
	i = sibling(i)
	for t.height(i) > 0 {
		if t.stats != nil {
			t.stats.TraversalSteps.Add(1)
		}
		switch {
		case t.InterpretedBit(leftChild(i)) == 1:
			i = leftChild(i)
		case t.InterpretedBit(rightChild(i)) == 1:
			i = rightChild(i)
		default:
			return 0, false
		}
	}
	return t.leafKey(i), true
}

// DNodePtr exposes node i's dNodePtr for tests and trieviz.
func (t *Trie) DNodePtr(i int64) *unode.UpdateNode { return t.nodes[i].dNodePtr.Load() }

// LeafIndex exposes the leaf index of key x for tests and trieviz.
func (t *Trie) LeafIndex(x int64) int64 { return t.leafIndex(x) }

// Height exposes the height of node index i for tests and trieviz.
func (t *Trie) Height(i int64) int { return t.height(i) }
