// Package combine is the per-shard flat-combining layer of the trie: it
// batches concurrent Insert/Delete operations through a fixed array of
// padded publication slots so that one thread — the round's combiner —
// applies them as a single core.ApplyBatch, announcing once per batch on
// U-ALL/RU-ALL instead of once per operation (DESIGN.md §Combining layer).
//
// # Protocol
//
// A publication slot is a five-state word: empty → writing → pending →
// taken → done. A submitting goroutine claims a free slot (empty→writing
// CAS), writes its operation, publishes it (pending), and then loops:
//
//  1. wait a short beat for a round in flight — and, symmetrically, give
//     peers a beat to publish, so rounds form real batches even at
//     GOMAXPROCS = 1;
//  2. if its op is done, free the slot and return;
//  3. try to elect itself combiner (CAS on the round word); the winner
//     drains every pending slot (pending→taken CAS each), sorts and
//     dedups the batch, applies it through the backend, marks the drained
//     slots done and releases the round word;
//  4. if another combiner holds the round word and this op is still
//     pending after the spin budget, retract it (pending→empty CAS, which
//     the combiner's take races against) and apply it directly through the
//     backend's per-op path — the lock-free escape hatch.
//
// # Progress
//
// The underlying trie stays lock-free: queries and non-combined operations
// never touch the slots, and a submitter whose op has not been taken can
// always retract and fall back to the ordinary lock-free per-op path, so a
// stalled combiner cannot block ops it has not claimed. What combining
// gives up is per-op lock-freedom for the ops a combiner HAS claimed: a
// taken op waits for its combiner's round to finish (flat combining's
// standard trade). The claim window is short — a combiner takes slots only
// immediately before applying — and bounded by one batch application of
// lock-free code, so a descheduled combiner delays its round, never the
// structure.
//
// # Linearization
//
// Each batched op still linearizes individually inside core.ApplyBatch
// (at its update node's activation, or at the findLatest read that proved
// it a no-op). Deduplication keeps, per key, the last op in the round's
// drain order: the dropped ops are concurrent with the kept one and return
// no values, so ordering them immediately before it is a valid
// linearization in which their effects are exactly superseded.
package combine

import (
	"cmp"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/obs"
)

// Op is one submitted operation; Won is filled by the backend and is
// meaningful to batch-applying callers, not to Submit.
type Op = core.BatchOp

// Slot states.
const (
	slotEmpty uint32 = iota
	slotWriting
	slotPending
	slotTaken
	slotDone
)

// The wait beat is P-aware spin-then-park: at GOMAXPROCS > 1 a submitter
// first busy-polls its slot state for spinPhase iterations WITHOUT
// yielding — the procyield analog; Go exposes no portable PAUSE, so the
// bounded poll count is the spin budget — because on a real multicore a
// combiner on another P completes the op in tens of nanoseconds, and a
// premature Gosched would trade that for a whole scheduler round-trip.
// Only when the spin budget runs dry does the beat park: parkPolls polls
// with a Gosched between each, handing the processor to the combiner (or
// to peers still publishing). The totals keep the old beat's shape — 32
// polls, 8 yields — so an oversubscribed host (more Ps than cores, where
// the spin phase buys nothing) paces rounds exactly as before.
const (
	spinPhase = 24
	parkPolls = 8
)

// yieldBeat replaces the spin-then-park beat on a single-P runtime, where
// polling between yields is dead time (no other goroutine can change a
// slot while we hold the only P): the beat is paced purely by Gosched
// round-trips — each one runs every other runnable goroutine once, which
// is exactly the window peers need to publish into the round.
const yieldBeat = 3

// retractAfter is how many whole beats a pending op waits out a busy
// combiner before retracting to the direct path. Rounds that drain deletes
// are long (each runs two embedded predecessor operations), so giving up
// after one beat makes half the submissions bypass combining under exactly
// the update pressure the layer exists for; a few beats of patience keeps
// the escape hatch bounded while letting pending ops ride the next round.
const retractAfter = 8

// slot is one publication slot, padded to two cache lines so neighbouring
// slots never false-share (matching the shard-header discipline).
type slot struct {
	state atomic.Uint32
	key   int64
	del   bool
	_     [111]byte
}

// Stats carries the combiner's monitoring counters (padded; always on —
// four uncontended-in-the-common-case adds per round).
type Stats struct {
	// Rounds counts combining rounds that drained at least one op.
	Rounds atomicx.PadInt64
	// Batched counts ops applied inside a round (before dedup).
	Batched atomicx.PadInt64
	// Direct counts ops that bypassed combining: retractions after the
	// spin budget plus submissions that found every slot occupied.
	Direct atomicx.PadInt64
	// MaxBatch is the largest round drained so far (monotone).
	MaxBatch atomicx.PadInt64
	// Retracts counts the retraction subset of Direct: published ops that
	// outwaited a busy combiner and escaped to the per-op path — the
	// adaptive controller's direct evidence that the handoff is hurting.
	Retracts atomicx.PadInt64
	// ElectFails counts SUBMISSIONS whose first combiner-election CAS
	// failed: each one proves a concurrent publisher held the round word
	// — the adaptive controller's clustering signal. Once per
	// submission, not per wait beat: a single publisher parked behind a
	// long round would otherwise register dozens of "failures" and read
	// as clustering it does not prove.
	ElectFails atomicx.PadInt64
}

// Counters is a point-in-time snapshot of every combiner counter, in the
// shape the adaptive controller samples.
type Counters struct {
	Rounds, Batched, Direct, MaxBatch, Retracts, ElectFails int64
}

// Combiner batches updates for one shard. Create with New; all methods are
// safe for concurrent use.
type Combiner struct {
	apply    func(ops []Op) // sorted, deduped batch; called with the round word held
	applyOne func(op Op)    // direct lock-free per-op path
	slots    []slot
	mask     uint32
	sticky   bool          // placed combiner: claim probes from last, not ticket
	round    atomic.Uint32 // the round word: 0 free, 1 combining
	ticket   atomic.Uint32 // rotates the slot-probe start point (unplaced)
	last     atomic.Uint32 // last claimed slot index (placed; advisory)
	taken    []*slot       // round scratch; guarded by the round word
	batch    []Op          // round scratch; guarded by the round word
	stats    Stats

	// events, when non-nil, receives sampled election and per-retraction
	// trace events tagged with evShard (set once via SetEvents, before
	// concurrent use). Publishing through a nil ring is a no-op, so the
	// hot paths stay branch-cheap in the stripped configuration.
	events  *obs.Ring
	evShard int32
}

// SetEvents routes this combiner's control-plane trace — one
// obs.KindCombinerElect per obs.ElectEventEvery rounds, one
// obs.KindCombinerRetract per retraction — to ring, tagged with shard.
// Install before concurrent use (the fields are plain).
func (c *Combiner) SetEvents(ring *obs.Ring, shard int32) {
	c.events = ring
	c.evShard = shard
}

// testHookMidRound, when non-nil, runs after a round's slots are taken and
// before the batch is applied — the combiner-descheduled-mid-batch window
// the handoff stress test widens.
var testHookMidRound func()

// SetTestHookMidRound installs f to run inside every combining round,
// after the round's slots are taken and before the batch applies (nil
// uninstalls). Test-only: the sharded and facade mid-flip stress suites
// use it to toggle the adaptive mode word inside the widest round window.
// Install before starting workload goroutines and uninstall after joining
// them.
func SetTestHookMidRound(f func()) { testHookMidRound = f }

// DefaultSlots is the publication-slot count New uses for n ≤ 0.
// Publishers are goroutines, not Ps — a single-P host can park dozens of
// submitters at once — so the floor is sized for goroutine oversubscription
// (64 slots ≈ 8 KiB per combiner), not for the CPU count; saturated claims
// fall back to the direct path, so the ceiling only bounds the drain scan.
func DefaultSlots() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 64 {
		n = 64
	}
	if n > 256 {
		n = 256
	}
	return ceilPow2(n)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New returns a combiner with n publication slots (n ≤ 0 selects
// DefaultSlots; n is rounded up to a power of two). apply receives each
// round's batch sorted by strictly ascending key, one op per key, and must
// fill the Won flags; applyOne is the per-op fallback used when a
// submission bypasses combining.
func New(n int, apply func(ops []Op), applyOne func(op Op)) *Combiner {
	if n <= 0 {
		n = DefaultSlots()
	}
	n = ceilPow2(n)
	return &Combiner{
		apply:    apply,
		applyOne: applyOne,
		slots:    make([]slot, n),
		mask:     uint32(n - 1),
	}
}

// Arena is a contiguous block of publication slots shared by a placement
// group of shards: carving every group member's slots from one allocation
// keeps the slots the group's publisher goroutines touch on neighbouring
// pages (arena locality), instead of scattering one 8-KiB slot array per
// shard across the heap. Carve is not safe for concurrent use — arenas are
// built at construction time, before any Submit.
type Arena struct {
	slots []slot
	next  int
}

// NewArena allocates an arena holding total publication slots.
func NewArena(total int) *Arena {
	if total < 1 {
		total = 1
	}
	return &Arena{slots: make([]slot, total)}
}

// Carve returns the next n slots of the arena. It panics if the arena is
// exhausted — group sizing is a construction-time invariant, not a runtime
// condition.
func (a *Arena) Carve(n int) []slot {
	if a.next+n > len(a.slots) {
		panic("combine: arena exhausted")
	}
	s := a.slots[a.next : a.next+n : a.next+n]
	a.next += n
	return s
}

// NewPlaced returns a combiner over a caller-provided slot block (an arena
// carve); len(slots) must be a power of two. A placed combiner claims
// sticky — the probe starts where the last claim landed, so a shard's
// owning publisher keeps hitting the same warm line — which is the
// goroutine-to-shard slot-affinity half of the placement model (the arena
// is the locality half).
func NewPlaced(slots []slot, apply func(ops []Op), applyOne func(op Op)) *Combiner {
	if len(slots) == 0 || len(slots)&(len(slots)-1) != 0 {
		panic("combine: NewPlaced slot count must be a power of two")
	}
	return &Combiner{
		apply:    apply,
		applyOne: applyOne,
		slots:    slots,
		mask:     uint32(len(slots) - 1),
		sticky:   true,
	}
}

// Placed reports whether this combiner claims with sticky slot affinity
// (constructed by NewPlaced over an arena carve).
func (c *Combiner) Placed() bool { return c.sticky }

// SlotCount returns the publication-slot count (metrics).
func (c *Combiner) SlotCount() int { return len(c.slots) }

// StatsSnapshot returns the four headline counter values; Counters has
// the full set.
func (c *Combiner) StatsSnapshot() (rounds, batched, direct, maxBatch int64) {
	return c.stats.Rounds.Load(), c.stats.Batched.Load(),
		c.stats.Direct.Load(), c.stats.MaxBatch.Load()
}

// Counters returns a snapshot of every counter (each individually atomic;
// the set is not a consistent cut, which the EWMA-smoothing consumer
// tolerates by construction).
func (c *Combiner) Counters() Counters {
	return Counters{
		Rounds:     c.stats.Rounds.Load(),
		Batched:    c.stats.Batched.Load(),
		Direct:     c.stats.Direct.Load(),
		MaxBatch:   c.stats.MaxBatch.Load(),
		Retracts:   c.stats.Retracts.Load(),
		ElectFails: c.stats.ElectFails.Load(),
	}
}

// Submit hands one update to the combining layer and returns when it has
// been applied — by a combiner's batch, by this goroutine running a round,
// or directly through the per-op path when the slots are full or a stalled
// combiner forces the retraction fallback.
func (c *Combiner) Submit(op Op) {
	s := c.claim()
	if s == nil {
		c.stats.Direct.Add(1)
		c.applyOne(op)
		return
	}
	s.key, s.del = op.Key, op.Del
	s.state.Store(slotPending)
	// Read per call, not at init: GOMAXPROCS can change at runtime
	// (explicit call, container-aware updates), and only the wait
	// discipline — never the protocol — depends on it.
	singleP := runtime.GOMAXPROCS(0) == 1
	for attempt := 0; ; attempt++ {
		// Beat: wait for an in-flight round to pick us up, and give peers
		// a chance to publish before anyone elects.
		if waitBeat(s, singleP) {
			s.state.Store(slotEmpty)
			return
		}
		if s.state.Load() == slotDone {
			s.state.Store(slotEmpty)
			return
		}
		if c.round.CompareAndSwap(0, 1) {
			c.runRound()
			c.round.Store(0)
			if s.state.Load() == slotDone {
				s.state.Store(slotEmpty)
				return
			}
			continue // defensive: our op was pending, the round took it
		}
		if attempt == 0 {
			c.stats.ElectFails.Add(1)
		}
		// A combiner is mid-round. After enough beats of waiting — the
		// combiner may be stalled, not just slow — retract if it has not
		// claimed our op and go direct, the lock-free escape; once it has
		// (taken), later beats wait for the round to finish.
		if attempt >= retractAfter && s.state.CompareAndSwap(slotPending, slotEmpty) {
			c.stats.Direct.Add(1)
			c.stats.Retracts.Add(1)
			c.events.Publish(obs.KindCombinerRetract, c.evShard, int64(attempt))
			c.applyOne(op)
			return
		}
	}
}

// waitBeat runs one wait beat against slot s and reports whether the op
// completed (state reached slotDone) during the beat. The discipline is
// P-aware: spin-then-park at P > 1, pure Gosched pacing at P = 1 (see the
// spinPhase/parkPolls and yieldBeat comments).
func waitBeat(s *slot, singleP bool) bool {
	if singleP {
		for i := 0; i < yieldBeat; i++ {
			if s.state.Load() == slotDone {
				return true
			}
			runtime.Gosched()
		}
		return false
	}
	for i := 0; i < spinPhase; i++ {
		if s.state.Load() == slotDone {
			return true
		}
	}
	for i := 0; i < parkPolls; i++ {
		if s.state.Load() == slotDone {
			return true
		}
		runtime.Gosched()
	}
	return false
}

// claim finds a free slot and moves it empty→writing, or returns nil after
// one full scan — the combiner is saturated and the caller should go
// direct. A placed combiner starts the probe at the slot the last claim
// landed on (sticky affinity: a shard's dominant publisher keeps reusing
// one warm cache line, and with few publishers per placed shard the
// occasional collision just advances the scan by one); an unplaced one
// rotates the start point so concurrent publishers spread across lines.
func (c *Combiner) claim() *slot {
	var start uint32
	if c.sticky {
		start = c.last.Load()
	} else {
		start = c.ticket.Add(1)
	}
	for i := uint32(0); i <= c.mask; i++ {
		idx := (start + i) & c.mask
		s := &c.slots[idx]
		if s.state.Load() == slotEmpty && s.state.CompareAndSwap(slotEmpty, slotWriting) {
			if c.sticky && idx != start {
				c.last.Store(idx) // plain race-tolerant hint, not a protocol word
			}
			return s
		}
	}
	return nil
}

// runRound drains every pending slot, applies the deduped batch, and
// releases the drained slots. Called with the round word held.
func (c *Combiner) runRound() {
	c.taken = c.taken[:0]
	for i := range c.slots {
		s := &c.slots[i]
		if s.state.Load() == slotPending && s.state.CompareAndSwap(slotPending, slotTaken) {
			c.taken = append(c.taken, s)
		}
	}
	if len(c.taken) == 0 {
		return
	}
	if h := testHookMidRound; h != nil {
		h()
	}
	c.batch = c.batch[:0]
	for _, s := range c.taken {
		c.batch = append(c.batch, Op{Key: s.key, Del: s.del})
	}
	c.apply(SortDedup(c.batch))
	for _, s := range c.taken {
		s.state.Store(slotDone)
	}
	rounds := c.stats.Rounds.Add(1)
	c.stats.Batched.Add(int64(len(c.taken)))
	if n := int64(len(c.taken)); n > c.stats.MaxBatch.Load() {
		c.stats.MaxBatch.Store(n) // monotone; the combiner is the only writer
	}
	// Elections happen once per round — far too hot to trace unsampled
	// (a clustered mix runs a round every ~7 ops), so one round in
	// ElectEventEvery carries the trace, with the batch size as its
	// signal value. Retractions and the adaptive/resize events stay
	// unsampled; they are rare and individually meaningful.
	if c.events != nil && rounds%obs.ElectEventEvery == 0 {
		c.events.Publish(obs.KindCombinerElect, c.evShard, int64(len(c.taken)), rounds)
	}
}

// taggedOp carries an op's original position so an UNSTABLE sort can
// still recover arrival order among equal keys: (key, idx) is a total
// order, so pdqsort — roughly twice as fast as the stable merge sort on
// the random-ish batches the server's sweeps produce — yields exactly the
// stable result, and the dedup below keeps the last-arrived op per key.
type taggedOp struct {
	key int64
	idx int32
	del bool
}

// sortScratch pools the tagged buffers so SortDedup allocates nothing in
// steady state (it runs once per combining round and once per server
// sweep).
var sortPool = sync.Pool{New: func() any { return new(sortScratch) }}

type sortScratch struct{ t []taggedOp }

// SortDedup sorts ops by key (ties resolved by the given order) and
// keeps, per key, the LAST op — the form core.ApplyBatch requires. It
// reorders ops in place and returns the deduped prefix; the Won fields of
// the result are reset (they are output fields of the batch apply).
// Keeping the last op is a valid linearization for void-returning
// concurrent updates: the dropped ops order immediately before the kept
// one (see the package comment); callers batching a SEQUENTIAL op list
// get exactly its final-state semantics.
func SortDedup(ops []Op) []Op {
	s := sortPool.Get().(*sortScratch)
	t := s.t[:0]
	for i := range ops {
		t = append(t, taggedOp{key: ops[i].Key, idx: int32(i), del: ops[i].Del})
	}
	slices.SortFunc(t, func(a, b taggedOp) int {
		if c := cmp.Compare(a.key, b.key); c != 0 {
			return c
		}
		return cmp.Compare(a.idx, b.idx)
	})
	out := ops[:0]
	for i := 0; i < len(t); i++ {
		if i+1 < len(t) && t[i+1].key == t[i].key {
			continue // a later op on the same key supersedes this one
		}
		out = append(out, Op{Key: t[i].key, Del: t[i].del})
	}
	s.t = t
	sortPool.Put(s)
	return out
}
