package combine

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/relaxed"
)

func TestSortDedupKeepsLastPerKey(t *testing.T) {
	ops := []Op{
		{Key: 9}, {Key: 3, Del: true}, {Key: 9, Del: true},
		{Key: 1}, {Key: 3}, {Key: 9},
	}
	got := SortDedup(ops)
	want := []Op{{Key: 1}, {Key: 3}, {Key: 9}}
	if len(got) != len(want) {
		t.Fatalf("SortDedup = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].Key != want[i].Key || got[i].Del != want[i].Del {
			t.Fatalf("SortDedup = %v, want %v", got, want)
		}
	}
}

func TestSortDedupEmptyAndSingle(t *testing.T) {
	if got := SortDedup(nil); len(got) != 0 {
		t.Fatalf("SortDedup(nil) = %v", got)
	}
	got := SortDedup([]Op{{Key: 5, Del: true}})
	if len(got) != 1 || got[0].Key != 5 || !got[0].Del {
		t.Fatalf("SortDedup single = %v", got)
	}
}

// countingBackend applies ops to a mutex-guarded reference map and counts
// batch vs direct applications — the combiner's contract does not depend
// on the backend being a trie.
type countingBackend struct {
	mu      sync.Mutex
	state   map[int64]bool
	applied int64 // total ops via either path
	batches int64
}

func (b *countingBackend) apply(ops []Op) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.batches++
	for i := range ops {
		b.applied++
		if ops[i].Del {
			ops[i].Won = b.state[ops[i].Key]
			delete(b.state, ops[i].Key)
		} else {
			ops[i].Won = !b.state[ops[i].Key]
			b.state[ops[i].Key] = true
		}
	}
}

func (b *countingBackend) applyOne(op Op) { b.apply([]Op{op}) }

func TestSubmitAppliesEveryOp(t *testing.T) {
	b := &countingBackend{state: map[int64]bool{}}
	c := New(16, b.apply, b.applyOne)
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < per; i++ {
				// Distinct key space per goroutine so the final state is
				// deterministic regardless of round membership.
				k := int64(id*1000) + rng.Int63n(100)
				c.Submit(Op{Key: k, Del: i%3 == 2})
			}
		}(g)
	}
	wg.Wait()
	// Dedup can merge same-key ops from ONE round into one application,
	// so applied ≤ submitted; every submitted op must still have returned,
	// and all slots must be free again.
	if b.applied > goroutines*per {
		t.Fatalf("applied %d ops, submitted only %d", b.applied, goroutines*per)
	}
	for i := range c.slots {
		if st := c.slots[i].state.Load(); st != slotEmpty {
			t.Fatalf("slot %d left in state %d", i, st)
		}
	}
	rounds, batched, direct, maxBatch := c.StatsSnapshot()
	if batched+direct != int64(goroutines*per) {
		t.Fatalf("batched %d + direct %d ≠ submitted %d", batched, direct, goroutines*per)
	}
	t.Logf("rounds=%d batched=%d direct=%d max=%d", rounds, batched, direct, maxBatch)
}

// TestCombinerStallHandoff parks the elected combiner mid-round (after it
// has taken slots, before it applies) and checks that (a) ops not yet
// taken escape via retraction and complete, (b) taken ops complete once
// the combiner resumes, (c) nothing is lost or double-applied. Run under
// -race this is the combiner-descheduled-mid-batch scenario of the
// combining design.
func TestCombinerStallHandoff(t *testing.T) {
	var stalls atomic.Int64
	testHookMidRound = func() {
		if stalls.Add(1)%7 == 0 {
			time.Sleep(2 * time.Millisecond) // well past everyone's spin budget
		} else {
			runtime.Gosched()
		}
	}
	defer func() { testHookMidRound = nil }()

	tr, err := core.New(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	s := WrapCore(tr, true, 8)
	const goroutines, per = 8, 300
	var wg sync.WaitGroup
	finals := make([]map[int64]bool, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 99))
			lo := int64(id) * 512
			final := map[int64]bool{}
			for i := 0; i < per; i++ {
				k := lo + rng.Int63n(512)
				if rng.Intn(2) == 0 {
					s.Insert(k)
					final[k] = true
				} else {
					s.Delete(k)
					delete(final, k)
				}
			}
			finals[id] = final
		}(g)
	}
	wg.Wait()
	for id, final := range finals {
		lo := int64(id) * 512
		for k := lo; k < lo+512; k++ {
			if got := s.Search(k); got != final[k] {
				t.Fatalf("quiescent Search(%d) = %v, want %v", k, got, final[k])
			}
		}
	}
	if tr.AnnouncedUpdates() != 0 {
		t.Fatalf("U-ALL holds %d cells at quiescence", tr.AnnouncedUpdates())
	}
}

// TestCoreSetCombiningConformance runs mixed batched updates and reads
// against a reference, per-goroutine-disjoint, with combining on.
func TestCoreSetCombiningConformance(t *testing.T) {
	tr, err := core.New(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	s := WrapCore(tr, true, 0)
	if !s.Combining() {
		t.Fatal("Combining() = false")
	}
	var wg sync.WaitGroup
	const goroutines = 6
	width := int64(1<<10) / goroutines
	finals := make([]map[int64]bool, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) * 13))
			lo := int64(id) * width
			final := map[int64]bool{}
			for i := 0; i < 400; i++ {
				k := lo + rng.Int63n(width)
				switch rng.Intn(4) {
				case 0, 1:
					s.Insert(k)
					final[k] = true
				case 2:
					s.Delete(k)
					delete(final, k)
				case 3:
					if p := s.Predecessor(k); p >= k {
						t.Errorf("Predecessor(%d) = %d", k, p)
						return
					}
				}
			}
			finals[id] = final
		}(g)
	}
	wg.Wait()
	for id, final := range finals {
		lo := int64(id) * width
		for k := lo; k < lo+width; k++ {
			if got := s.Search(k); got != final[k] {
				t.Fatalf("quiescent Search(%d) = %v, want %v", k, got, final[k])
			}
		}
	}
	rounds, batched, _, _ := s.CombineStats()
	t.Logf("rounds=%d batched=%d", rounds, batched)
}

func TestRelaxedSetCombining(t *testing.T) {
	tr, err := relaxed.New(256)
	if err != nil {
		t.Fatal(err)
	}
	s := WrapRelaxed(tr, true, 0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lo := int64(id) * 64
			for i := int64(0); i < 64; i++ {
				s.Insert(lo + i)
			}
			for i := int64(0); i < 64; i += 2 {
				s.Delete(lo + i)
			}
		}(g)
	}
	wg.Wait()
	for k := int64(0); k < 256; k++ {
		want := k%2 == 1
		if got := s.Search(k); got != want {
			t.Fatalf("Search(%d) = %v, want %v", k, got, want)
		}
	}
	if got := s.Len(); got != 128 {
		t.Fatalf("Len = %d, want 128", got)
	}
	if p, ok := s.Predecessor(100); !ok || p != 99 {
		t.Fatalf("Predecessor(100) = %d,%v, want 99,true", p, ok)
	}
	if sc, ok := s.Successor(100); !ok || sc != 101 {
		t.Fatalf("Successor(100) = %d,%v, want 101,true", sc, ok)
	}
}

// TestSubmitFullSlotsFallsBack saturates a tiny combiner from inside the
// apply callback's stall and checks overflowing submissions take the
// direct path rather than waiting.
func TestSubmitFullSlotsFallsBack(t *testing.T) {
	b := &countingBackend{state: map[int64]bool{}}
	c := New(0, b.apply, b.applyOne) // default slots; we bypass claim below
	// Occupy every slot artificially.
	for i := range c.slots {
		c.slots[i].state.Store(slotWriting)
	}
	done := make(chan struct{})
	go func() {
		c.Submit(Op{Key: 42})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Submit blocked on a saturated combiner")
	}
	if !b.state[42] {
		t.Fatal("overflow op was not applied")
	}
	_, _, direct, _ := c.StatsSnapshot()
	if direct != 1 {
		t.Fatalf("direct = %d, want 1", direct)
	}
	for i := range c.slots {
		c.slots[i].state.Store(slotEmpty)
	}
}

// TestCoreSetAdaptiveMidFlip drives the unsharded adaptive wrapper (the
// facade's k=1 path) while the mid-round hook force-flips its mode inside
// every round's widest window — the disable-drain case on the CoreSet
// route, complementing the sharded suite's per-shard version. Under -race.
func TestCoreSetAdaptiveMidFlip(t *testing.T) {
	tr, err := core.New(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	s := WrapCoreAdaptive(tr, adapt.Config{SampleEvery: 8, MinDwell: 1, StartCombining: true}, 8)
	if !s.Adaptive() || s.Controller() == nil {
		t.Fatal("adaptive wrapper not wired")
	}
	var flips atomic.Int64
	SetTestHookMidRound(func() {
		s.Controller().ForceMode(flips.Add(1)%3 != 0)
	})
	defer SetTestHookMidRound(nil)
	const goroutines, per = 8, 300
	var wg sync.WaitGroup
	finals := make([]map[int64]bool, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 271))
			lo := int64(id) * 512
			final := map[int64]bool{}
			for i := 0; i < per; i++ {
				k := lo + rng.Int63n(512)
				if rng.Intn(2) == 0 {
					s.Insert(k)
					final[k] = true
				} else {
					s.Delete(k)
					delete(final, k)
				}
			}
			finals[id] = final
		}(g)
	}
	wg.Wait()
	for id, final := range finals {
		lo := int64(id) * 512
		for k := lo; k < lo+512; k++ {
			if got := s.Search(k); got != final[k] {
				t.Fatalf("quiescent Search(%d) = %v, want %v", k, got, final[k])
			}
		}
	}
	if tr.AnnouncedUpdates() != 0 {
		t.Fatalf("U-ALL holds %d cells at quiescence", tr.AnnouncedUpdates())
	}
	e, d := s.AdaptiveStats()
	t.Logf("hook flips=%d organic enables=%d disables=%d", flips.Load(), e, d)
}
