package combine

import (
	"repro/internal/adapt"
	"repro/internal/atomicx"
	"repro/internal/core"
	"repro/internal/relaxed"
)

// Sampler builds the adapt signal reader shared by every adaptive
// wrapper: the combiner counters always ride along, while annLen and
// pending — the direct-mode clustering signals — are read only when
// sampling in direct mode (in combining mode the estimate comes from the
// counter deltas, and the reads would perturb the rounds being measured;
// see adapt.Controller). Either func may be nil when the backing
// structure has no such signal.
func Sampler(c *Combiner, annLen, pending func() int64) func(combining bool) adapt.Sample {
	return func(combining bool) adapt.Sample {
		cs := c.Counters()
		s := adapt.Sample{
			Rounds: cs.Rounds, Batched: cs.Batched,
			Retracts: cs.Retracts, ElectFails: cs.ElectFails,
		}
		if !combining {
			if annLen != nil {
				s.AnnLen = annLen()
			}
			if pending != nil {
				s.Pending = pending()
			}
		}
		return s
	}
}

// CoreSet is the unsharded (k = 1) combining facade over a core trie: the
// read path (Search/Predecessor/Successor/Len) delegates untouched, while
// Insert and Delete route through a single combiner when combining is
// enabled — always (WrapCore with combining) or per the adaptive
// controller's mode word (WrapCoreAdaptive). With combining disabled it is
// a transparent adapter that still provides the batch entrypoint, so the
// public ApplyBatch works at every configuration.
type CoreSet struct {
	t *core.Trie
	c *Combiner         // nil: combining disabled
	a *adapt.Controller // nil: mode fixed at construction
	// pending counts in-flight direct updates (maintained only under an
	// adaptive controller, as its direct-mode clustering signal).
	pending atomicx.PadInt64
}

// WrapCore wraps t; combining selects whether updates publish to a
// combiner (slots publication slots, ≤ 0 for the default) or run the
// per-op path directly.
func WrapCore(t *core.Trie, combining bool, slots int) *CoreSet {
	s := &CoreSet{t: t}
	if combining {
		s.c = newCoreCombiner(t, slots)
	}
	return s
}

// WrapCoreAdaptive wraps t with a combiner plus an adaptive controller
// that flips updates between the combiner and the direct per-op path at
// runtime (cfg's zero fields take the tuned defaults). The controller
// samples the combiner counters, the U-ALL announcement length, and the
// in-flight direct update count.
func WrapCoreAdaptive(t *core.Trie, cfg adapt.Config, slots int) *CoreSet {
	s := &CoreSet{t: t}
	s.c = newCoreCombiner(t, slots)
	s.a = adapt.New(cfg, Sampler(s.c,
		func() int64 { return int64(t.AnnouncedUpdates()) },
		s.pending.Load))
	return s
}

func newCoreCombiner(t *core.Trie, slots int) *Combiner {
	return New(slots,
		func(ops []Op) { t.ApplyBatch(ops) },
		func(op Op) {
			if op.Del {
				t.Delete(op.Key)
			} else {
				t.Insert(op.Key)
			}
		})
}

// Core returns the wrapped trie (tests, stats).
func (s *CoreSet) Core() *core.Trie { return s.t }

// Combining reports whether updates are CURRENTLY routed through the
// combiner (under an adaptive controller this is the live mode word).
func (s *CoreSet) Combining() bool {
	if s.a != nil {
		return s.a.Combining()
	}
	return s.c != nil
}

// Adaptive reports whether an adaptive controller drives the mode.
func (s *CoreSet) Adaptive() bool { return s.a != nil }

// Controller returns the adaptive controller, or nil (tests, stats).
func (s *CoreSet) Controller() *adapt.Controller { return s.a }

// Combiner returns the combiner, or nil when combining is disabled
// (observability wiring, tests).
func (s *CoreSet) Combiner() *Combiner { return s.c }

// AdaptiveStats returns the cumulative mode-transition counts (zeros
// without a controller).
func (s *CoreSet) AdaptiveStats() (enables, disables int64) {
	if s.a == nil {
		return 0, 0
	}
	return s.a.Transitions()
}

// CombineStats returns the combiner counters (zeros when disabled).
func (s *CoreSet) CombineStats() (rounds, batched, direct, maxBatch int64) {
	if s.c == nil {
		return 0, 0, 0, 0
	}
	return s.c.StatsSnapshot()
}

// Search reports whether x is in the set.
func (s *CoreSet) Search(x int64) bool { return s.t.Search(x) }

// Insert adds x to the set, via the combiner when enabled.
func (s *CoreSet) Insert(x int64) {
	if s.a != nil {
		s.a.Tick()
		if s.a.Combining() {
			s.c.Submit(Op{Key: x})
			return
		}
		s.pending.Add(1)
		s.t.Insert(x)
		s.pending.Add(-1)
		return
	}
	if s.c != nil {
		s.c.Submit(Op{Key: x})
		return
	}
	s.t.Insert(x)
}

// Delete removes x from the set, via the combiner when enabled.
func (s *CoreSet) Delete(x int64) {
	if s.a != nil {
		s.a.Tick()
		if s.a.Combining() {
			s.c.Submit(Op{Key: x, Del: true})
			return
		}
		s.pending.Add(1)
		s.t.Delete(x)
		s.pending.Add(-1)
		return
	}
	if s.c != nil {
		s.c.Submit(Op{Key: x, Del: true})
		return
	}
	s.t.Delete(x)
}

// Predecessor returns the largest key < y, or −1.
func (s *CoreSet) Predecessor(y int64) int64 { return s.t.Predecessor(y) }

// Successor returns the smallest key > y, or −1.
func (s *CoreSet) Successor(y int64) int64 { return s.t.Successor(y) }

// Len returns the key count (weakly consistent; exact at quiescence).
func (s *CoreSet) Len() int64 { return s.t.Len() }

// U returns the padded universe size.
func (s *CoreSet) U() int64 { return s.t.U() }

// ApplyBatch applies a pre-batched op sequence directly (no publication
// slots — the caller already amortized). ops must be sorted by strictly
// ascending key with one op per key (SortDedup's output form); Won flags
// are filled.
func (s *CoreSet) ApplyBatch(ops []Op) { s.t.ApplyBatch(ops) }

// RelaxedSet is the unsharded combining facade over the §4 relaxed trie.
// The relaxed trie has no announcement lists, so a batch amortizes nothing
// structurally; combining it still serializes same-shard updates through
// one cache-warm thread, which is occasionally useful under extreme
// same-range churn, and keeps the WithCombining option uniform across both
// public types. Batched updates trade the relaxed trie's per-op
// wait-freedom for the combiner handoff, exactly as with the core trie.
type RelaxedSet struct {
	t *relaxed.Trie
	c *Combiner         // nil: combining disabled
	a *adapt.Controller // nil: mode fixed at construction
	// pending counts in-flight direct updates (adaptive signal; the
	// relaxed trie has no announcement list to measure instead).
	pending atomicx.PadInt64
}

// WrapRelaxed wraps t, mirroring WrapCore.
func WrapRelaxed(t *relaxed.Trie, combining bool, slots int) *RelaxedSet {
	s := &RelaxedSet{t: t}
	if combining {
		s.c = newRelaxedCombiner(t, slots)
	}
	return s
}

// WrapRelaxedAdaptive wraps t with a combiner plus an adaptive controller,
// mirroring WrapCoreAdaptive. With no announcement list the direct-mode
// clustering signal is the in-flight update count alone.
func WrapRelaxedAdaptive(t *relaxed.Trie, cfg adapt.Config, slots int) *RelaxedSet {
	s := &RelaxedSet{t: t}
	s.c = newRelaxedCombiner(t, slots)
	s.a = adapt.New(cfg, Sampler(s.c, nil, s.pending.Load))
	return s
}

func newRelaxedCombiner(t *relaxed.Trie, slots int) *Combiner {
	apply1 := func(op Op) {
		if op.Del {
			t.Delete(op.Key)
		} else {
			t.Insert(op.Key)
		}
	}
	return New(slots, func(ops []Op) {
		for i := range ops {
			apply1(ops[i])
		}
	}, apply1)
}

// Relaxed returns the wrapped trie (tests, stats).
func (s *RelaxedSet) Relaxed() *relaxed.Trie { return s.t }

// Adaptive reports whether an adaptive controller drives the mode.
func (s *RelaxedSet) Adaptive() bool { return s.a != nil }

// Controller returns the adaptive controller, or nil (tests, stats).
func (s *RelaxedSet) Controller() *adapt.Controller { return s.a }

// Combiner returns the combiner, or nil when combining is disabled
// (observability wiring, tests).
func (s *RelaxedSet) Combiner() *Combiner { return s.c }

// AdaptiveStats returns the cumulative mode-transition counts (zeros
// without a controller).
func (s *RelaxedSet) AdaptiveStats() (enables, disables int64) {
	if s.a == nil {
		return 0, 0
	}
	return s.a.Transitions()
}

// Search reports whether x is in the set.
func (s *RelaxedSet) Search(x int64) bool { return s.t.Search(x) }

// Insert adds x to the set, via the combiner when enabled.
func (s *RelaxedSet) Insert(x int64) {
	if s.a != nil {
		s.a.Tick()
		if s.a.Combining() {
			s.c.Submit(Op{Key: x})
			return
		}
		s.pending.Add(1)
		s.t.Insert(x)
		s.pending.Add(-1)
		return
	}
	if s.c != nil {
		s.c.Submit(Op{Key: x})
		return
	}
	s.t.Insert(x)
}

// Delete removes x from the set, via the combiner when enabled.
func (s *RelaxedSet) Delete(x int64) {
	if s.a != nil {
		s.a.Tick()
		if s.a.Combining() {
			s.c.Submit(Op{Key: x, Del: true})
			return
		}
		s.pending.Add(1)
		s.t.Delete(x)
		s.pending.Add(-1)
		return
	}
	if s.c != nil {
		s.c.Submit(Op{Key: x, Del: true})
		return
	}
	s.t.Delete(x)
}

// Predecessor is the §4.1 relaxed predecessor (may abstain).
func (s *RelaxedSet) Predecessor(y int64) (int64, bool) { return s.t.Predecessor(y) }

// Successor is the mirrored relaxed successor (may abstain).
func (s *RelaxedSet) Successor(y int64) (int64, bool) { return s.t.Successor(y) }

// Len returns the key count (weakly consistent; exact at quiescence).
func (s *RelaxedSet) Len() int64 { return s.t.Len() }

// U returns the padded universe size.
func (s *RelaxedSet) U() int64 { return s.t.U() }
