package combine

import (
	"repro/internal/core"
	"repro/internal/relaxed"
)

// CoreSet is the unsharded (k = 1) combining facade over a core trie: the
// read path (Search/Predecessor/Successor/Len) delegates untouched, while
// Insert and Delete route through a single combiner when combining is
// enabled. With combining disabled it is a transparent adapter that still
// provides the batch entrypoint, so the public ApplyBatch works at every
// configuration.
type CoreSet struct {
	t *core.Trie
	c *Combiner // nil: combining disabled
}

// WrapCore wraps t; combining selects whether updates publish to a
// combiner (slots publication slots, ≤ 0 for the default) or run the
// per-op path directly.
func WrapCore(t *core.Trie, combining bool, slots int) *CoreSet {
	s := &CoreSet{t: t}
	if combining {
		s.c = New(slots,
			func(ops []Op) { t.ApplyBatch(ops) },
			func(op Op) {
				if op.Del {
					t.Delete(op.Key)
				} else {
					t.Insert(op.Key)
				}
			})
	}
	return s
}

// Core returns the wrapped trie (tests, stats).
func (s *CoreSet) Core() *core.Trie { return s.t }

// Combining reports whether updates are routed through the combiner.
func (s *CoreSet) Combining() bool { return s.c != nil }

// CombineStats returns the combiner counters (zeros when disabled).
func (s *CoreSet) CombineStats() (rounds, batched, direct, maxBatch int64) {
	if s.c == nil {
		return 0, 0, 0, 0
	}
	return s.c.StatsSnapshot()
}

// Search reports whether x is in the set.
func (s *CoreSet) Search(x int64) bool { return s.t.Search(x) }

// Insert adds x to the set, via the combiner when enabled.
func (s *CoreSet) Insert(x int64) {
	if s.c != nil {
		s.c.Submit(Op{Key: x})
		return
	}
	s.t.Insert(x)
}

// Delete removes x from the set, via the combiner when enabled.
func (s *CoreSet) Delete(x int64) {
	if s.c != nil {
		s.c.Submit(Op{Key: x, Del: true})
		return
	}
	s.t.Delete(x)
}

// Predecessor returns the largest key < y, or −1.
func (s *CoreSet) Predecessor(y int64) int64 { return s.t.Predecessor(y) }

// Successor returns the smallest key > y, or −1.
func (s *CoreSet) Successor(y int64) int64 { return s.t.Successor(y) }

// Len returns the key count (weakly consistent; exact at quiescence).
func (s *CoreSet) Len() int64 { return s.t.Len() }

// U returns the padded universe size.
func (s *CoreSet) U() int64 { return s.t.U() }

// ApplyBatch applies a pre-batched op sequence directly (no publication
// slots — the caller already amortized). ops must be sorted by strictly
// ascending key with one op per key (SortDedup's output form); Won flags
// are filled.
func (s *CoreSet) ApplyBatch(ops []Op) { s.t.ApplyBatch(ops) }

// RelaxedSet is the unsharded combining facade over the §4 relaxed trie.
// The relaxed trie has no announcement lists, so a batch amortizes nothing
// structurally; combining it still serializes same-shard updates through
// one cache-warm thread, which is occasionally useful under extreme
// same-range churn, and keeps the WithCombining option uniform across both
// public types. Batched updates trade the relaxed trie's per-op
// wait-freedom for the combiner handoff, exactly as with the core trie.
type RelaxedSet struct {
	t *relaxed.Trie
	c *Combiner // nil: combining disabled
}

// WrapRelaxed wraps t, mirroring WrapCore.
func WrapRelaxed(t *relaxed.Trie, combining bool, slots int) *RelaxedSet {
	s := &RelaxedSet{t: t}
	if combining {
		apply1 := func(op Op) {
			if op.Del {
				t.Delete(op.Key)
			} else {
				t.Insert(op.Key)
			}
		}
		s.c = New(slots, func(ops []Op) {
			for i := range ops {
				apply1(ops[i])
			}
		}, apply1)
	}
	return s
}

// Relaxed returns the wrapped trie (tests, stats).
func (s *RelaxedSet) Relaxed() *relaxed.Trie { return s.t }

// Search reports whether x is in the set.
func (s *RelaxedSet) Search(x int64) bool { return s.t.Search(x) }

// Insert adds x to the set, via the combiner when enabled.
func (s *RelaxedSet) Insert(x int64) {
	if s.c != nil {
		s.c.Submit(Op{Key: x})
		return
	}
	s.t.Insert(x)
}

// Delete removes x from the set, via the combiner when enabled.
func (s *RelaxedSet) Delete(x int64) {
	if s.c != nil {
		s.c.Submit(Op{Key: x, Del: true})
		return
	}
	s.t.Delete(x)
}

// Predecessor is the §4.1 relaxed predecessor (may abstain).
func (s *RelaxedSet) Predecessor(y int64) (int64, bool) { return s.t.Predecessor(y) }

// Successor is the mirrored relaxed successor (may abstain).
func (s *RelaxedSet) Successor(y int64) (int64, bool) { return s.t.Successor(y) }

// Len returns the key count (weakly consistent; exact at quiescence).
func (s *RelaxedSet) Len() int64 { return s.t.Len() }

// U returns the padded universe size.
func (s *RelaxedSet) U() int64 { return s.t.U() }
