package atomicx

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSlotStoreRead(t *testing.T) {
	var s Slot[int]
	if got := s.Read(); got != nil {
		t.Fatalf("zero slot Read() = %v, want nil", got)
	}
	v := new(int)
	*v = 42
	s.Store(v)
	if got := s.Read(); got != v {
		t.Fatalf("Read() = %v, want %v", got, v)
	}
}

func TestSlotCopyReturnsSourceValue(t *testing.T) {
	var s Slot[int]
	src := new(int)
	*src = 7
	var srcPtr atomic.Pointer[int]
	srcPtr.Store(src)
	got := s.Copy(srcPtr.Load)
	if got != src {
		t.Fatalf("Copy returned %v, want %v", got, src)
	}
	if s.Read() != src {
		t.Fatalf("slot after Copy = %v, want %v", s.Read(), src)
	}
}

// TestSlotCopyAtomicity is the Figure 8 property: a reader that observes the
// slot during an in-flight copy must observe either the pre-copy value or
// the value the copy resolved to — never an intermediate stale source value.
// We model a chain src -> a -> b: the owner copies src into the slot while
// writers advance src from a to b. Every Read must return a value that was
// stored in src at some point at or after the copy was posted, or the
// pre-copy slot value.
func TestSlotCopyAtomicity(t *testing.T) {
	const rounds = 5000
	var s Slot[int64]
	var src atomic.Pointer[int64]

	pre := new(int64)
	*pre = -1
	for round := 0; round < rounds; round++ {
		a := new(int64)
		*a = int64(round * 2)
		b := new(int64)
		*b = int64(round*2 + 1)
		src.Store(a)
		s.Store(pre)

		var wg sync.WaitGroup
		wg.Add(3)
		var observed atomic.Pointer[int64]
		go func() { // owner
			defer wg.Done()
			s.Copy(src.Load)
		}()
		go func() { // concurrent source writer
			defer wg.Done()
			src.Store(b)
		}()
		go func() { // reader
			defer wg.Done()
			observed.Store(s.Read())
		}()
		wg.Wait()

		got := observed.Load()
		if got != pre && got != a && got != b {
			t.Fatalf("round %d: reader saw %v, want pre/a/b", round, got)
		}
		final := s.Read()
		if final != a && final != b {
			t.Fatalf("round %d: final slot %v, want a or b", round, final)
		}
	}
}

// TestSlotReadHelpsResolve: a reader arriving while a descriptor is posted
// resolves it and agrees with the owner on the copied value.
func TestSlotReadHelpsResolve(t *testing.T) {
	var s Slot[int]
	v1 := new(int)
	*v1 = 1
	s.Store(v1)

	src := new(int)
	*src = 99
	var srcPtr atomic.Pointer[int]
	srcPtr.Store(src)

	const readers = 4
	var wg sync.WaitGroup
	results := make([]*int, readers)
	start := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			<-start
			results[idx] = s.Read()
		}(r)
	}
	var ownerGot *int
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		ownerGot = s.Copy(srcPtr.Load)
	}()
	close(start)
	wg.Wait()

	if ownerGot != src {
		t.Fatalf("owner Copy = %v, want %v", ownerGot, src)
	}
	for i, r := range results {
		if r != v1 && r != src {
			t.Fatalf("reader %d saw %v, want v1 or src", i, r)
		}
	}
	if s.Read() != src {
		t.Fatalf("final = %v, want src", s.Read())
	}
}

// TestSlotSequentialTraversal mimics the RU-ALL usage pattern: the owner
// walks a linked chain by repeatedly copying node.next into the slot, while
// readers sample the slot. Readers must only ever see nodes of the chain in
// walk order (monotone progress).
func TestSlotSequentialTraversal(t *testing.T) {
	type node struct {
		id   int
		next atomic.Pointer[node]
	}
	const chainLen = 200
	nodes := make([]*node, chainLen)
	for i := range nodes {
		nodes[i] = &node{id: i}
	}
	for i := 0; i < chainLen-1; i++ {
		nodes[i].next.Store(nodes[i+1])
	}

	var s Slot[node]
	s.Store(nodes[0])

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := s.Read()
				if n == nil {
					continue
				}
				if n.id < last {
					t.Errorf("non-monotone read: %d after %d", n.id, last)
					return
				}
				last = n.id
			}
		}()
	}

	cur := nodes[0]
	for cur.next.Load() != nil {
		cur = s.Copy(cur.next.Load)
	}
	close(stop)
	wg.Wait()

	if got := s.Read(); got == nil || got.id != chainLen-1 {
		t.Fatalf("final slot = %v, want last node", got)
	}
}
