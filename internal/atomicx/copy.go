// Package atomicx provides the single-writer multi-reader atomic-copy
// primitive the paper's RU-ALL traversal relies on (§5.2: "Each time pOp
// reads a pointer to the next node in the RU-ALL, pOp atomically copies this
// pointer into pNode.RuallPosition. Single-writer atomic copy can be
// implemented from CAS with O(1) worst-case step complexity [7]").
//
// The implementation uses a copy descriptor with helping: the owner posts a
// descriptor holding the source-read function, and the first process (owner
// or reader) that resolves it performs the source read and installs the
// result with CAS. Between posting and resolution no process can observe a
// stale value — every reader helps resolve first — so the copy linearizes at
// the source read performed by the winning resolver. Figure 8 of the paper
// shows the interleaving this prevents.
package atomicx

import "sync/atomic"

// Slot is a single-writer multi-reader cell holding a *T. The zero value
// holds nil; call Store before sharing to set an initial value. Only one
// goroutine (the owner) may call Store and Copy; any goroutine may call Read.
type Slot[T any] struct {
	cell atomic.Pointer[slotCell[T]]
}

// slotCell is either a resolved value (read == nil) or an unresolved copy
// descriptor (read != nil). Descriptors are never reused, so pointer
// identity is a safe CAS witness.
type slotCell[T any] struct {
	val  *T
	read func() *T
}

// Store publishes v as the slot's value. Owner only; it must not race with
// an unresolved Copy by the same owner (the owner's Copy resolves before
// returning, so sequential owner code is always safe).
func (s *Slot[T]) Store(v *T) {
	s.cell.Store(&slotCell[T]{val: v})
}

// Read returns the current value, helping resolve an in-flight Copy if one
// is posted. It never returns a value older than the latest completed Store
// or Copy.
func (s *Slot[T]) Read() *T {
	c := s.cell.Load()
	if c == nil {
		return nil
	}
	if c.read == nil {
		return c.val
	}
	return s.resolve(c)
}

// Copy atomically performs *dst = read() where dst is this slot: the read of
// the source and the write to the slot appear to happen at a single instant.
// read must be a side-effect-free load of the source location. Copy returns
// the value that was copied. Owner only.
func (s *Slot[T]) Copy(read func() *T) *T {
	d := &slotCell[T]{read: read}
	// The owner is the only writer, so the current cell is resolved and the
	// descriptor install cannot fail against another writer — only against
	// a concurrent reader helping an... there is none (resolved cell), so a
	// plain Store suffices. We still publish with Store for clarity.
	s.cell.Store(d)
	return s.resolve(d)
}

// resolve completes descriptor d: the first successful CAS installs the
// value obtained by the winner's source read, which is the copy's
// linearization point. Losers return the winner's value.
func (s *Slot[T]) resolve(d *slotCell[T]) *T {
	v := d.read()
	if s.cell.CompareAndSwap(d, &slotCell[T]{val: v}) {
		return v
	}
	// Another helper resolved d first (or, for readers, the owner already
	// moved on to a newer cell). Re-read; the cell now reflects a state at
	// least as new as d's resolution.
	c := s.cell.Load()
	if c == nil || c.read == nil {
		if c == nil {
			return nil
		}
		return c.val
	}
	// A newer descriptor was posted by the owner after d resolved; helping
	// it is equally correct and keeps Read wait-free in two steps, because
	// the owner posts at most one descriptor at a time and our second CAS
	// failing means that one resolved too.
	v2 := c.read()
	if s.cell.CompareAndSwap(c, &slotCell[T]{val: v2}) {
		return v2
	}
	c = s.cell.Load()
	for c != nil && c.read != nil {
		// Only reachable if the owner keeps posting; each iteration helps
		// one descriptor, and the owner blocks on its own resolve, so this
		// loop runs at most once more in practice. Kept as a loop for
		// robustness rather than correctness.
		v3 := c.read()
		if s.cell.CompareAndSwap(c, &slotCell[T]{val: v3}) {
			return v3
		}
		c = s.cell.Load()
	}
	if c == nil {
		return nil
	}
	return c.val
}
