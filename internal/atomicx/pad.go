package atomicx

import "sync/atomic"

// CacheLine is the assumed coherence-granule size. 64 bytes covers x86-64
// and recent arm64; adjacent-line prefetcher effects are handled where they
// matter (the sharded layer's 128-byte shard stride) rather than here.
const CacheLine = 64

// PadInt64 is an atomic.Int64 padded so that consecutive PadInt64 fields in
// a struct fall on distinct cache lines. Hot counters that are written by
// many goroutines (operation stats, occupancy counts) would otherwise
// false-share: one writer's increment invalidates every other counter on
// the same line, and the coherence traffic — not the counting — becomes the
// cost. Align the containing struct's padded fields first (Go guarantees
// 8-byte alignment of the embedded Int64; the pad only separates fields, it
// does not force line alignment of the first one).
type PadInt64 struct {
	atomic.Int64
	_ [CacheLine - 8]byte
}
