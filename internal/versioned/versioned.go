// Package versioned implements a lock-free binary trie with immutable
// version nodes and a CAS'd root, modeled on the snapshot technique of
// Fatourou and Ruppert's augmented wait-free trie ([27] in the paper's
// related work, §3): every update path-copies the O(log u) nodes from its
// leaf to the root and installs the new version with a single CAS; queries
// read one root pointer and traverse an immutable snapshot.
//
// Trade-offs versus the paper's lock-free trie (the point of experiment
// C5): updates allocate Θ(log u) nodes and ALL updates contend on one root
// CAS, so update throughput collapses under contention; Search is O(log u)
// instead of O(1). Predecessor, on the other hand, is a trivially
// linearizable snapshot traversal.
package versioned

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
)

// node is an immutable version node; a child pointer is non-nil iff the
// corresponding subtrie contains a key. Leaves are &present. Following the
// augmentation of Fatourou–Ruppert ([27] in the paper's §3), every version
// node carries the number of keys in its subtrie, which snapshots for free
// with the structure and yields O(log u) Size, Rank, Select and RangeCount.
type node struct {
	left, right *node
	count       int64
}

// present is the shared leaf marker (count 1).
var present = node{count: 1}

// Trie is the versioned CAS trie, safe for concurrent use.
type Trie struct {
	b    int
	size int64
	root atomic.Pointer[node] // nil = empty set
}

// New returns an empty trie over {0,…,u−1} (u ≥ 2, padded to a power of
// two).
func New(u int64) (*Trie, error) {
	if u < 2 {
		return nil, fmt.Errorf("versioned: universe size %d, need at least 2", u)
	}
	if u > 1<<32 {
		return nil, fmt.Errorf("versioned: universe size %d exceeds 2^32", u)
	}
	b := bits.Len64(uint64(u - 1))
	return &Trie{b: b, size: int64(1) << uint(b)}, nil
}

// U returns the padded universe size.
func (t *Trie) U() int64 { return t.size }

// Search reports membership of x in the current snapshot. O(log u).
func (t *Trie) Search(x int64) bool {
	cur := t.root.Load()
	for level := t.b - 1; cur != nil && level >= 0; level-- {
		if x&(1<<uint(level)) == 0 {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	return cur != nil
}

// Insert adds x. Lock-free: path-copy plus root CAS, retried on conflict.
func (t *Trie) Insert(x int64) {
	for {
		old := t.root.Load()
		nw, changed := insertPath(old, x, t.b-1)
		if !changed {
			return
		}
		if t.root.CompareAndSwap(old, nw) {
			return
		}
	}
}

// insertPath returns the root of a copy of cur with x present, and whether
// anything changed.
func insertPath(cur *node, x int64, level int) (*node, bool) {
	if level < 0 {
		if cur != nil {
			return cur, false
		}
		return &present, true
	}
	var l, r *node
	if cur != nil {
		l, r = cur.left, cur.right
	}
	if x&(1<<uint(level)) == 0 {
		nl, changed := insertPath(l, x, level-1)
		if !changed {
			return cur, false
		}
		return mkNode(nl, r), true
	}
	nr, changed := insertPath(r, x, level-1)
	if !changed {
		return cur, false
	}
	return mkNode(l, nr), true
}

// mkNode builds an internal version node with the derived count.
func mkNode(l, r *node) *node {
	n := &node{left: l, right: r}
	if l != nil {
		n.count += l.count
	}
	if r != nil {
		n.count += r.count
	}
	return n
}

// BatchOp is one update of an ApplyBatch run.
type BatchOp struct {
	Key int64
	Del bool
}

// ApplyBatch applies a run of updates — sorted by key ascending, at
// most one op per key — as ONE version step: a single path-copied merge
// in which every node on the union of the update paths is copied at
// most once, where the op-at-a-time loop copies the shared prefix of
// every path once PER OP. Installed with the same root CAS as
// Insert/Delete, so the whole batch becomes visible atomically. The
// consumer this exists for is the WAL mirror, whose group-committed
// record runs arrive exactly in this shape and whose append-lock hold
// time is dominated by the mirror's allocations.
func (t *Trie) ApplyBatch(ops []BatchOp) {
	if len(ops) == 0 {
		return
	}
	for {
		old := t.root.Load()
		nw, changed := applyRun(old, ops, t.b-1)
		if !changed {
			return
		}
		if t.root.CompareAndSwap(old, nw) {
			return
		}
	}
}

// applyRun merges a sorted op run into the subtrie cur at level,
// returning the (possibly shared) new subtrie and whether it differs.
func applyRun(cur *node, ops []BatchOp, level int) (*node, bool) {
	if level < 0 {
		if ops[len(ops)-1].Del {
			if cur == nil {
				return nil, false
			}
			return nil, true
		}
		if cur != nil {
			return cur, false
		}
		return &present, true
	}
	// Sorted keys sharing the prefix above level split at the level bit:
	// all 0-bit ops precede all 1-bit ops.
	bit := int64(1) << uint(level)
	i := 0
	if len(ops) < 8 {
		for i < len(ops) && ops[i].Key&bit == 0 {
			i++
		}
	} else {
		i = sort.Search(len(ops), func(j int) bool { return ops[j].Key&bit != 0 })
	}
	var l, r *node
	if cur != nil {
		l, r = cur.left, cur.right
	}
	nl, lch := l, false
	if i > 0 {
		nl, lch = applyRun(l, ops[:i], level-1)
	}
	nr, rch := r, false
	if i < len(ops) {
		nr, rch = applyRun(r, ops[i:], level-1)
	}
	if !lch && !rch {
		return cur, false
	}
	if nl == nil && nr == nil {
		return nil, true
	}
	return mkNode(nl, nr), true
}

// Delete removes x. Lock-free: path-copy with pruning plus root CAS.
func (t *Trie) Delete(x int64) {
	for {
		old := t.root.Load()
		nw, changed := deletePath(old, x, t.b-1)
		if !changed {
			return
		}
		if t.root.CompareAndSwap(old, nw) {
			return
		}
	}
}

// deletePath returns a copy of cur without x (nil if the subtrie empties)
// and whether anything changed.
func deletePath(cur *node, x int64, level int) (*node, bool) {
	if cur == nil {
		return nil, false
	}
	if level < 0 {
		return nil, true
	}
	if x&(1<<uint(level)) == 0 {
		nl, changed := deletePath(cur.left, x, level-1)
		if !changed {
			return cur, false
		}
		if nl == nil && cur.right == nil {
			return nil, true
		}
		return mkNode(nl, cur.right), true
	}
	nr, changed := deletePath(cur.right, x, level-1)
	if !changed {
		return cur, false
	}
	if cur.left == nil && nr == nil {
		return nil, true
	}
	return mkNode(cur.left, nr), true
}

// Snapshot is an immutable point-in-time version of the trie: one root
// pointer captured atomically. Every update path-copies its way to a new
// root, so the captured version never changes — the WAL's consistent-
// snapshot machinery walks it at leisure while updates continue.
type Snapshot struct {
	root *node
	b    int
}

// Snapshot captures the current version. O(1): one atomic load.
func (t *Trie) Snapshot() Snapshot {
	return Snapshot{root: t.root.Load(), b: t.b}
}

// Count returns the number of keys in the snapshot. O(1) via the
// augmented root count.
func (s Snapshot) Count() int64 {
	if s.root == nil {
		return 0
	}
	return s.root.count
}

// ForEach calls emit for every key in the snapshot in ascending order.
func (s Snapshot) ForEach(emit func(key int64)) {
	walk(s.root, 0, s.b-1, emit)
}

// walk emits the keys under cur (whose prefix bits above level spell
// prefix) in ascending order.
func walk(cur *node, prefix int64, level int, emit func(int64)) {
	if cur == nil {
		return
	}
	if level < 0 {
		emit(prefix)
		return
	}
	walk(cur.left, prefix, level-1, emit)
	walk(cur.right, prefix|1<<uint(level), level-1, emit)
}

// Predecessor returns the largest key < y in one consistent snapshot, or
// −1. O(log u).
func (t *Trie) Predecessor(y int64) int64 {
	root := t.root.Load()
	if root == nil {
		return -1
	}
	// Walk toward y, remembering the deepest left subtrie passed on the
	// right (whose keys are all < y).
	var best *node
	bestPrefix := int64(0)
	bestLevel := -1
	cur := root
	for level := t.b - 1; level >= 0 && cur != nil; level-- {
		if y&(1<<uint(level)) == 0 {
			cur = cur.left
			continue
		}
		if cur.left != nil {
			best = cur.left
			// Keys under this left child share y's bits above level and
			// have 0 at level.
			bestPrefix = (y >> uint(level+1)) << uint(level+1)
			bestLevel = level
		}
		cur = cur.right
	}
	if best == nil {
		return -1
	}
	// Descend the right-most present path under best.
	key := bestPrefix
	cur = best
	for level := bestLevel - 1; level >= 0; level-- {
		if cur.right != nil {
			key |= 1 << uint(level)
			cur = cur.right
		} else {
			cur = cur.left
		}
	}
	return key
}
