package versioned_test

import (
	"sync"
	"testing"

	"repro/internal/settest"
	"repro/internal/versioned"
)

func factory(u int64) (settest.Set, error) { return versioned.New(u) }

func TestSequentialConformance(t *testing.T) { settest.RunSequential(t, factory, 64) }
func TestEdgeCases(t *testing.T)             { settest.RunEdgeCases(t, factory, 32) }
func TestConcurrent(t *testing.T)            { settest.RunConcurrent(t, factory, 256, 8, 1200) }

func TestNewValidation(t *testing.T) {
	if _, err := versioned.New(1); err == nil {
		t.Error("New(1) should fail")
	}
}

// TestSnapshotConsistency: a predecessor query sees one atomic snapshot —
// with keys always inserted in pairs (k, k+1) and deleted in pairs,
// Predecessor(hi) landing on an even key proves a torn read... it must
// always return the odd upper member or -1 when queried above the pair.
func TestSnapshotConsistency(t *testing.T) {
	tr, err := versioned.New(64)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Insert(11)
				tr.Insert(10)
				tr.Delete(11)
				tr.Delete(10)
			}
		}
	}()
	for i := 0; i < 20000; i++ {
		got := tr.Predecessor(40)
		if got != -1 && got != 10 && got != 11 {
			t.Errorf("Predecessor(40) = %d, want -1/10/11", got)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentSameKey: heavy CAS contention on the root still converges.
func TestConcurrentSameKey(t *testing.T) {
	tr, err := versioned.New(16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if id%2 == 0 {
					tr.Insert(7)
				} else {
					tr.Delete(7)
				}
			}
		}(g)
	}
	wg.Wait()
	tr.Insert(7)
	if !tr.Search(7) {
		t.Fatal("key lost after churn")
	}
	if got := tr.Predecessor(8); got != 7 {
		t.Fatalf("Predecessor(8) = %d, want 7", got)
	}
}

// TestSnapshotImmutable: a captured snapshot keeps its keys (ascending)
// and count while the live trie moves on.
func TestSnapshotImmutable(t *testing.T) {
	tr, err := versioned.New(256)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 7, 64, 200}
	for _, k := range want {
		tr.Insert(k)
	}
	snap := tr.Snapshot()
	// Mutate the live trie after the capture.
	tr.Delete(7)
	tr.Insert(100)
	if got := snap.Count(); got != int64(len(want)) {
		t.Fatalf("Count = %d, want %d", got, len(want))
	}
	var got []int64
	snap.ForEach(func(k int64) { got = append(got, k) })
	if len(got) != len(want) {
		t.Fatalf("ForEach emitted %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach emitted %v, want %v (ascending)", got, want)
		}
	}
	// The live trie reflects the post-capture updates.
	if tr.Search(7) || !tr.Search(100) {
		t.Fatal("live trie does not reflect post-snapshot updates")
	}
}

// TestSnapshotEmpty: the zero-state snapshot is empty and walkable.
func TestSnapshotEmpty(t *testing.T) {
	tr, err := versioned.New(16)
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	if snap.Count() != 0 {
		t.Fatalf("Count = %d, want 0", snap.Count())
	}
	snap.ForEach(func(k int64) { t.Fatalf("emitted %d from empty snapshot", k) })
}
