package versioned_test

import (
	"sync"
	"testing"

	"repro/internal/settest"
	"repro/internal/versioned"
)

func factory(u int64) (settest.Set, error) { return versioned.New(u) }

func TestSequentialConformance(t *testing.T) { settest.RunSequential(t, factory, 64) }
func TestEdgeCases(t *testing.T)             { settest.RunEdgeCases(t, factory, 32) }
func TestConcurrent(t *testing.T)            { settest.RunConcurrent(t, factory, 256, 8, 1200) }

func TestNewValidation(t *testing.T) {
	if _, err := versioned.New(1); err == nil {
		t.Error("New(1) should fail")
	}
}

// TestSnapshotConsistency: a predecessor query sees one atomic snapshot —
// with keys always inserted in pairs (k, k+1) and deleted in pairs,
// Predecessor(hi) landing on an even key proves a torn read... it must
// always return the odd upper member or -1 when queried above the pair.
func TestSnapshotConsistency(t *testing.T) {
	tr, err := versioned.New(64)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Insert(11)
				tr.Insert(10)
				tr.Delete(11)
				tr.Delete(10)
			}
		}
	}()
	for i := 0; i < 20000; i++ {
		got := tr.Predecessor(40)
		if got != -1 && got != 10 && got != 11 {
			t.Errorf("Predecessor(40) = %d, want -1/10/11", got)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentSameKey: heavy CAS contention on the root still converges.
func TestConcurrentSameKey(t *testing.T) {
	tr, err := versioned.New(16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if id%2 == 0 {
					tr.Insert(7)
				} else {
					tr.Delete(7)
				}
			}
		}(g)
	}
	wg.Wait()
	tr.Insert(7)
	if !tr.Search(7) {
		t.Fatal("key lost after churn")
	}
	if got := tr.Predecessor(8); got != 7 {
		t.Fatalf("Predecessor(8) = %d, want 7", got)
	}
}
