package versioned_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/versioned"
)

func newAug(t testing.TB, u int64) *versioned.Trie {
	t.Helper()
	tr, err := versioned.New(u)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSizeEmptyAndGrowth(t *testing.T) {
	tr := newAug(t, 64)
	if got := tr.Size(); got != 0 {
		t.Fatalf("empty Size = %d", got)
	}
	tr.Insert(5)
	tr.Insert(5) // duplicate: no growth
	tr.Insert(9)
	if got := tr.Size(); got != 2 {
		t.Fatalf("Size = %d, want 2", got)
	}
	tr.Delete(5)
	tr.Delete(5)
	if got := tr.Size(); got != 1 {
		t.Fatalf("Size = %d, want 1", got)
	}
}

func TestRankSelectRangeCount(t *testing.T) {
	tr := newAug(t, 64)
	keys := []int64{3, 9, 17, 40, 62}
	for _, k := range keys {
		tr.Insert(k)
	}
	rankTests := []struct{ y, want int64 }{
		{0, 0}, {3, 0}, {4, 1}, {9, 1}, {10, 2}, {41, 4}, {63, 5},
	}
	for _, tt := range rankTests {
		if got := tr.Rank(tt.y); got != tt.want {
			t.Errorf("Rank(%d) = %d, want %d", tt.y, got, tt.want)
		}
	}
	for i, want := range keys {
		if got := tr.Select(int64(i)); got != want {
			t.Errorf("Select(%d) = %d, want %d", i, got, want)
		}
	}
	if got := tr.Select(-1); got != -1 {
		t.Errorf("Select(-1) = %d, want -1", got)
	}
	if got := tr.Select(5); got != -1 {
		t.Errorf("Select(5) = %d, want -1", got)
	}
	rcTests := []struct{ lo, hi, want int64 }{
		{0, 64, 5}, {3, 10, 2}, {4, 9, 0}, {9, 9, 0}, {10, 4, 0}, {17, 63, 3},
	}
	for _, tt := range rcTests {
		if got := tr.RangeCount(tt.lo, tt.hi); got != tt.want {
			t.Errorf("RangeCount(%d,%d) = %d, want %d", tt.lo, tt.hi, got, tt.want)
		}
	}
	got := tr.Keys()
	if len(got) != len(keys) {
		t.Fatalf("Keys() = %v", got)
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("Keys() = %v, want %v", got, keys)
		}
	}
}

// TestAugmentedQuickAgainstReference: random op sequences keep all
// augmented queries consistent with a sorted-slice reference.
func TestAugmentedQuickAgainstReference(t *testing.T) {
	const u = 64
	type op struct {
		Kind byte
		Key  uint8
	}
	f := func(ops []op) bool {
		tr, err := versioned.New(u)
		if err != nil {
			return false
		}
		ref := map[int64]bool{}
		for _, o := range ops {
			k := int64(o.Key % u)
			switch o.Kind % 2 {
			case 0:
				tr.Insert(k)
				ref[k] = true
			case 1:
				tr.Delete(k)
				delete(ref, k)
			}
		}
		var sorted []int64
		for k := range ref {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if tr.Size() != int64(len(sorted)) {
			return false
		}
		for i, k := range sorted {
			if tr.Select(int64(i)) != k {
				return false
			}
			if tr.Rank(k) != int64(i) {
				return false
			}
		}
		keys := tr.Keys()
		if len(keys) != len(sorted) {
			return false
		}
		for i := range sorted {
			if keys[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotAtomicity: under churn that keeps the set size invariant
// (insert one key, delete another, in pairs), Size/Keys/Select must always
// see a consistent snapshot — Size equals len(Keys) sampled in one call
// chain... each individual query is one snapshot, and sizes oscillate by
// at most the in-flight window.
func TestSnapshotAtomicity(t *testing.T) {
	tr := newAug(t, 256)
	for k := int64(0); k < 64; k++ {
		tr.Insert(k)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for {
			select {
			case <-stop:
				return
			default:
				k := 64 + rng.Int63n(64)
				tr.Insert(k)
				tr.Delete(k)
			}
		}
	}()
	for i := 0; i < 5000; i++ {
		n := tr.Size()
		if n < 64 || n > 65 {
			t.Errorf("Size = %d, want 64 or 65", n)
			break
		}
		keys := tr.Keys()
		if len(keys) < 64 || len(keys) > 65 {
			t.Errorf("len(Keys) = %d, want 64 or 65", len(keys))
			break
		}
		// Keys from one snapshot must be strictly ascending.
		for j := 1; j < len(keys); j++ {
			if keys[j] <= keys[j-1] {
				t.Errorf("snapshot keys not ascending at %d: %v", j, keys[j-1:j+1])
				return
			}
		}
	}
	close(stop)
	wg.Wait()
}
