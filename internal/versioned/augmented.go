package versioned

// Augmented queries enabled by the per-node counts. Every query reads the
// root exactly once, so each answers against one consistent snapshot and
// is trivially linearizable — the selling point of the version-node
// technique the paper contrasts itself with in §3.

// Size returns the number of keys in the set. O(1): one root read.
func (t *Trie) Size() int64 {
	if root := t.root.Load(); root != nil {
		return root.count
	}
	return 0
}

// Rank returns the number of keys strictly smaller than y. O(log u).
func (t *Trie) Rank(y int64) int64 {
	cur := t.root.Load()
	var rank int64
	for level := t.b - 1; level >= 0 && cur != nil; level-- {
		if y&(1<<uint(level)) == 0 {
			cur = cur.left
			continue
		}
		if cur.left != nil {
			rank += cur.left.count
		}
		cur = cur.right
	}
	return rank
}

// RangeCount returns the number of keys k with lo ≤ k < hi (0 if lo ≥ hi).
// Bounds are clamped to [0, U()]. O(log u), one snapshot.
func (t *Trie) RangeCount(lo, hi int64) int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > t.size {
		hi = t.size
	}
	if lo >= hi {
		return 0
	}
	// Two ranks against the SAME snapshot: both walks on one root read.
	root := t.root.Load()
	hiRank := rankIn(root, t.b, hi)
	if hi == t.size && root != nil {
		hiRank = root.count // rank past the last key = everything
	}
	return hiRank - rankIn(root, t.b, lo)
}

func rankIn(root *node, b int, y int64) int64 {
	cur := root
	var rank int64
	for level := b - 1; level >= 0 && cur != nil; level-- {
		if y&(1<<uint(level)) == 0 {
			cur = cur.left
			continue
		}
		if cur.left != nil {
			rank += cur.left.count
		}
		cur = cur.right
	}
	return rank
}

// Select returns the k-th smallest key (0-based), or −1 if k is out of
// range. O(log u), one snapshot.
func (t *Trie) Select(k int64) int64 {
	cur := t.root.Load()
	if cur == nil || k < 0 || k >= cur.count {
		return -1
	}
	var key int64
	for level := t.b - 1; level >= 0; level-- {
		var leftCount int64
		if cur.left != nil {
			leftCount = cur.left.count
		}
		if k < leftCount {
			cur = cur.left
		} else {
			k -= leftCount
			key |= 1 << uint(level)
			cur = cur.right
		}
	}
	return key
}

// Keys returns every key in ascending order from one consistent snapshot.
// O(u) worst case; O(n log u) for sparse sets.
func (t *Trie) Keys() []int64 {
	root := t.root.Load()
	if root == nil {
		return nil
	}
	keys := make([]int64, 0, root.count)
	var walk func(n *node, prefix int64, level int)
	walk = func(n *node, prefix int64, level int) {
		if n == nil {
			return
		}
		if level < 0 {
			keys = append(keys, prefix)
			return
		}
		walk(n.left, prefix, level-1)
		walk(n.right, prefix|1<<uint(level), level-1)
	}
	walk(root, 0, t.b-1)
	return keys
}
