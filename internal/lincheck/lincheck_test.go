package lincheck

import (
	"sync"
	"testing"
)

// seqOps builds a sequential (non-overlapping) history from (kind,key,result)
// triples.
func seqOps(triples [][3]int64) []Op {
	ops := make([]Op, len(triples))
	ts := uint64(0)
	for i, tr := range triples {
		ts++
		inv := ts
		ts++
		ops[i] = Op{Kind: OpKind(tr[0]), Key: tr[1], Result: tr[2], Invoke: inv, Return: ts}
	}
	return ops
}

func mustCheck(t *testing.T, ops []Op) Result {
	t.Helper()
	res, err := Check(ops)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}

func TestEmptyHistory(t *testing.T) {
	if !mustCheck(t, nil).Ok {
		t.Error("empty history must be linearizable")
	}
}

func TestSequentialValid(t *testing.T) {
	ops := seqOps([][3]int64{
		{int64(OpSearch), 3, 0},
		{int64(OpInsert), 3, 0},
		{int64(OpSearch), 3, 1},
		{int64(OpPredecessor), 5, 3},
		{int64(OpDelete), 3, 0},
		{int64(OpSearch), 3, 0},
		{int64(OpPredecessor), 5, -1},
	})
	if !mustCheck(t, ops).Ok {
		t.Error("valid sequential history rejected")
	}
}

func TestSequentialInvalidSearch(t *testing.T) {
	ops := seqOps([][3]int64{
		{int64(OpSearch), 3, 1}, // true before any insert: impossible
		{int64(OpInsert), 3, 0},
	})
	if mustCheck(t, ops).Ok {
		t.Error("impossible sequential history accepted")
	}
}

func TestSequentialInvalidPredecessor(t *testing.T) {
	ops := seqOps([][3]int64{
		{int64(OpInsert), 2, 0},
		{int64(OpPredecessor), 5, 4}, // 4 was never inserted
	})
	if mustCheck(t, ops).Ok {
		t.Error("impossible predecessor result accepted")
	}
}

func TestConcurrentReorderAllowed(t *testing.T) {
	// Search(3)=1 overlaps Insert(3): linearizable by putting the insert
	// first.
	ops := []Op{
		{Kind: OpInsert, Key: 3, Invoke: 1, Return: 4},
		{Kind: OpSearch, Key: 3, Result: 1, Invoke: 2, Return: 3},
	}
	if !mustCheck(t, ops).Ok {
		t.Error("overlapping insert/search rejected")
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// Search(3)=1 strictly after Delete(3) strictly after Insert(3):
	// cannot reorder, must be rejected.
	ops := []Op{
		{Kind: OpInsert, Key: 3, Invoke: 1, Return: 2},
		{Kind: OpDelete, Key: 3, Invoke: 3, Return: 4},
		{Kind: OpSearch, Key: 3, Result: 1, Invoke: 5, Return: 6},
	}
	if mustCheck(t, ops).Ok {
		t.Error("real-time violation accepted")
	}
}

func TestPredecessorConcurrentWindow(t *testing.T) {
	// Predecessor(9)=5 overlapping Insert(5): fine. Predecessor(9)=7 with
	// no insert of 7 anywhere: impossible.
	valid := []Op{
		{Kind: OpInsert, Key: 5, Invoke: 1, Return: 5},
		{Kind: OpPredecessor, Key: 9, Result: 5, Invoke: 2, Return: 4},
	}
	if !mustCheck(t, valid).Ok {
		t.Error("valid overlapping predecessor rejected")
	}
	invalid := []Op{
		{Kind: OpInsert, Key: 5, Invoke: 1, Return: 5},
		{Kind: OpPredecessor, Key: 9, Result: 7, Invoke: 2, Return: 4},
	}
	if mustCheck(t, invalid).Ok {
		t.Error("impossible overlapping predecessor accepted")
	}
}

func TestStalePredecessorRejected(t *testing.T) {
	// Insert(3), Insert(5) complete; then Predecessor(9) strictly later
	// must return 5, not 3.
	ops := []Op{
		{Kind: OpInsert, Key: 3, Invoke: 1, Return: 2},
		{Kind: OpInsert, Key: 5, Invoke: 3, Return: 4},
		{Kind: OpPredecessor, Key: 9, Result: 3, Invoke: 5, Return: 6},
	}
	if mustCheck(t, ops).Ok {
		t.Error("stale predecessor result accepted")
	}
}

func TestWitnessOrderIsValid(t *testing.T) {
	ops := []Op{
		{Kind: OpInsert, Key: 1, Invoke: 1, Return: 6},
		{Kind: OpInsert, Key: 2, Invoke: 2, Return: 5},
		{Kind: OpPredecessor, Key: 9, Result: 2, Invoke: 3, Return: 4},
	}
	res := mustCheck(t, ops)
	if !res.Ok {
		t.Fatal("history should be linearizable")
	}
	// Replay the witness and confirm results.
	state := uint64(0)
	for _, i := range res.Linearization {
		var got int64
		state, got = applySet(state, ops[i])
		if hasResult(ops[i].Kind) && got != ops[i].Result {
			t.Fatalf("witness order invalid at op %v", ops[i])
		}
	}
}

func TestErrorCases(t *testing.T) {
	if _, err := Check([]Op{{Kind: OpInsert, Key: 70, Invoke: 1, Return: 2}}); err == nil {
		t.Error("key out of range accepted")
	}
	if _, err := Check([]Op{{Kind: OpInsert, Key: 1, Invoke: 2, Return: 2}}); err == nil {
		t.Error("Invoke ≥ Return accepted")
	}
	big := make([]Op, 65)
	for i := range big {
		big[i] = Op{Kind: OpInsert, Key: 1, Invoke: uint64(2*i + 1), Return: uint64(2*i + 2)}
	}
	if _, err := Check(big); err == nil {
		t.Error("oversized history accepted")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(k int64) {
			defer wg.Done()
			inv := r.Begin()
			r.End(OpInsert, k, 0, inv)
		}(int64(g))
	}
	wg.Wait()
	ops := r.History()
	if len(ops) != 4 {
		t.Fatalf("recorded %d ops, want 4", len(ops))
	}
	for _, op := range ops {
		if op.Invoke >= op.Return {
			t.Errorf("op %v has bad timestamps", op)
		}
	}
	if !mustCheck(t, ops).Ok {
		t.Error("recorded insert-only history must linearize")
	}
}

func TestCheckOrExplain(t *testing.T) {
	ok, msg, err := CheckOrExplain(seqOps([][3]int64{{int64(OpSearch), 3, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if ok || msg == "" {
		t.Error("expected failure with explanation")
	}
	ok, msg, err = CheckOrExplain(nil)
	if err != nil || !ok || msg != "" {
		t.Error("empty history should pass silently")
	}
}
