package lincheck

import (
	"sync"
	"testing"

	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/resize"
	"repro/internal/sharded"
)

// resizeTargets is the shard-count menu the fuzz scripts trigger
// migrations toward (u = 64 caps the geometry at 32).
var resizeTargets = [4]int{1, 2, 4, 8}

// fuzzResizeWorkerScript replays one worker's byte script against a
// live resizing trie, recording every set operation. The action
// alphabet mirrors fuzzWorkerScript — per-op updates, queries, and
// two-op batches — plus a resize trigger that synchronously migrates
// the whole partition to a script-chosen shard count, so epoch flips
// land at arbitrary points of the peer's operations (ErrBusy from a
// collision with the peer's migration is simply ignored; the trigger is
// not a set operation and records nothing).
func fuzzResizeWorkerScript(s *resize.Set, rec *Recorder, script []byte) {
	for i := 0; i+1 < len(script); i += 2 {
		b, key := script[i], int64(script[i+1]&63)
		switch b % 6 {
		case 0:
			inv := rec.Begin()
			s.Insert(key)
			rec.End(OpInsert, key, 0, inv)
		case 1:
			inv := rec.Begin()
			s.Delete(key)
			rec.End(OpDelete, key, 0, inv)
		case 2:
			inv := rec.Begin()
			got := s.Search(key)
			res := int64(0)
			if got {
				res = 1
			}
			rec.End(OpSearch, key, res, inv)
		case 3:
			inv := rec.Begin()
			got := s.Predecessor(key)
			rec.End(OpPredecessor, key, got, inv)
		case 4: // batch of two updates (kinds from the discriminator's high bits)
			if i+3 >= len(script) {
				return
			}
			ops := []core.BatchOp{
				{Key: int64(script[i+2] & 63), Del: b&8 != 0},
				{Key: int64(script[i+3] & 63), Del: b&16 != 0},
			}
			i += 2
			inv := rec.Begin()
			s.ApplyBatch(combine.SortDedup(append([]core.BatchOp(nil), ops...)))
			for _, op := range ops {
				kind := OpInsert
				if op.Del {
					kind = OpDelete
				}
				rec.End(kind, op.Key, 0, inv)
			}
		case 5: // live re-partition to a script-chosen shard count
			_ = s.Resize(resizeTargets[key%4])
		}
	}
}

// FuzzResizeMixedHistories drives TWO workers' fuzz-decoded scripts —
// per-op updates, queries, ApplyBatch calls and randomly injected
// resize triggers — against a live resizing trie and requires the
// recorded history to linearize: no operation may be lost, duplicated
// or mis-answered across any k→k′ epoch flip, wherever in the scripts
// the migrations land. The startShards corpus dimension seeds
// migrations in both directions (grow from 1, shrink from 8).
func FuzzResizeMixedHistories(f *testing.F) {
	f.Add(uint8(0), []byte{0, 5, 11, 1, 1, 5, 2, 5, 3, 9})           // ins, resize→8, del, search, pred
	f.Add(uint8(3), []byte{4, 0, 7, 7, 11, 0, 28, 0, 7, 7, 2, 7})    // batch, resize→1, delete batch, search
	f.Add(uint8(1), []byte{5, 2, 0, 63, 5, 1, 13, 0, 63, 63, 3, 63}) // resize→4, ins, resize→2, mixed batch, pred
	f.Add(uint8(2), []byte{0, 16, 5, 3, 3, 16, 1, 16, 5, 0, 2, 16})  // churn one key across grow and shrink
	f.Fuzz(func(t *testing.T, startShards uint8, data []byte) {
		if len(data) < 2 || len(data) > 40 {
			return // keep the WGL search cheap
		}
		s, err := resize.NewSet(resizeTargets[startShards%4],
			func(k int) (*sharded.Trie, error) { return sharded.New(64, k) },
			resize.Config{})
		if err != nil {
			t.Fatal(err)
		}
		old := sharded.ScanRetries
		sharded.ScanRetries = 1 << 20 // see forEachShardCount in internal/sharded
		defer func() { sharded.ScanRetries = old }()
		rec := NewRecorder()
		half := (len(data) + 1) / 2
		var wg sync.WaitGroup
		for _, part := range [][]byte{data[:half], data[half:]} {
			wg.Add(1)
			go func(script []byte) {
				defer wg.Done()
				fuzzResizeWorkerScript(s, rec, script)
			}(part)
		}
		wg.Wait()
		ok, msg, err := CheckOrExplain(rec.History())
		if err != nil {
			t.Fatalf("checker error: %v", err)
		}
		if !ok {
			t.Fatalf("resize history not linearizable: %s", msg)
		}
	})
}
