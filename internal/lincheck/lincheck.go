// Package lincheck is a linearizability checker for concurrent histories of
// dynamic-set operations (Insert / Delete / Search / Predecessor) over a
// small universe (≤ 64 keys).
//
// It implements the Wing–Gong–Lowe algorithm: a depth-first search over
// linearization orders constrained by real-time precedence, memoized on the
// pair (set of linearized operations, abstract state). Both components pack
// into uint64s, so the memo table is a flat hash set and histories of a few
// dozen operations check in microseconds to milliseconds.
//
// Histories are recorded with a Recorder whose logical clock is a single
// atomic counter: an operation's invocation timestamp is drawn before its
// first step and its return timestamp after its last, so the derived
// precedence order is sound for checking the real execution.
package lincheck

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// OpKind enumerates the dynamic-set operation types.
type OpKind uint8

const (
	// OpInsert adds Key to the set; no result.
	OpInsert OpKind = iota + 1
	// OpDelete removes Key from the set; no result.
	OpDelete
	// OpSearch queries membership; Result is 0 or 1.
	OpSearch
	// OpPredecessor queries the largest key < Key; Result is that key or −1.
	OpPredecessor
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "Insert"
	case OpDelete:
		return "Delete"
	case OpSearch:
		return "Search"
	case OpPredecessor:
		return "Predecessor"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one completed operation in a history.
type Op struct {
	Kind   OpKind
	Key    int64
	Result int64 // Search: 0/1; Predecessor: key or −1; updates: ignored
	Invoke uint64
	Return uint64
}

// String renders the op for failure reports.
func (o Op) String() string {
	switch o.Kind {
	case OpSearch, OpPredecessor:
		return fmt.Sprintf("%v(%d)=%d @[%d,%d]", o.Kind, o.Key, o.Result, o.Invoke, o.Return)
	default:
		return fmt.Sprintf("%v(%d) @[%d,%d]", o.Kind, o.Key, o.Invoke, o.Return)
	}
}

// Recorder collects a concurrent history. Use one Recorder per experiment;
// goroutines call Begin before each operation and End after it.
type Recorder struct {
	clock atomic.Uint64
	mu    sync.Mutex
	ops   []Op
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Begin draws an invocation timestamp.
func (r *Recorder) Begin() uint64 { return r.clock.Add(1) }

// End draws a return timestamp and appends the completed operation.
func (r *Recorder) End(kind OpKind, key, result int64, invoke uint64) {
	ret := r.clock.Add(1)
	r.mu.Lock()
	r.ops = append(r.ops, Op{Kind: kind, Key: key, Result: result, Invoke: invoke, Return: ret})
	r.mu.Unlock()
}

// History returns the recorded operations (order unspecified).
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// applySet runs op against the bitmask set state and returns the new state
// and the expected result.
func applySet(state uint64, op Op) (uint64, int64) {
	bit := uint64(1) << uint(op.Key)
	switch op.Kind {
	case OpInsert:
		return state | bit, 0
	case OpDelete:
		return state &^ bit, 0
	case OpSearch:
		if state&bit != 0 {
			return state, 1
		}
		return state, 0
	case OpPredecessor:
		below := state & (bit - 1)
		if below == 0 {
			return state, -1
		}
		return state, int64(bits.Len64(below) - 1)
	default:
		return state, 0
	}
}

// hasResult reports whether the op kind's result participates in checking.
func hasResult(k OpKind) bool { return k == OpSearch || k == OpPredecessor }

// Result is the outcome of a linearizability check.
type Result struct {
	// Ok is true when a valid linearization exists.
	Ok bool
	// Linearization holds one witness order (indices into the input
	// history) when Ok.
	Linearization []int
	// Explored counts memoized states, a measure of search effort.
	Explored int
}

// Check reports whether ops is a linearizable history of a dynamic set over
// keys {0,…,63} starting empty. Histories longer than 64 operations are
// rejected (the linearized-set bitmask is a uint64).
func Check(ops []Op) (Result, error) {
	n := len(ops)
	if n == 0 {
		return Result{Ok: true}, nil
	}
	if n > 64 {
		return Result{}, fmt.Errorf("lincheck: history of %d ops exceeds 64", n)
	}
	for i, op := range ops {
		if op.Key < 0 || op.Key > 63 {
			return Result{}, fmt.Errorf("lincheck: op %d key %d outside [0,63]", i, op.Key)
		}
		if op.Invoke >= op.Return {
			return Result{}, fmt.Errorf("lincheck: op %d has Invoke ≥ Return", i)
		}
	}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ops[idx[a]].Invoke < ops[idx[b]].Invoke })

	type memoKey struct {
		mask  uint64
		state uint64
	}
	memo := make(map[memoKey]struct{})
	full := uint64(1)<<uint(n) - 1
	if n == 64 {
		full = ^uint64(0)
	}

	order := make([]int, 0, n)
	var rec func(mask, state uint64) bool
	rec = func(mask, state uint64) bool {
		if mask == full {
			return true
		}
		key := memoKey{mask: mask, state: state}
		if _, seen := memo[key]; seen {
			return false
		}
		// Minimal return among unlinearized ops: anything invoked after it
		// must come later in every valid order.
		minRet := ^uint64(0)
		for _, i := range idx {
			if mask&(1<<uint(i)) == 0 && ops[i].Return < minRet {
				minRet = ops[i].Return
			}
		}
		for _, i := range idx {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			op := ops[i]
			if op.Invoke > minRet {
				break // idx is invoke-sorted; no later op can be minimal
			}
			newState, res := applySet(state, op)
			if hasResult(op.Kind) && res != op.Result {
				continue
			}
			order = append(order, i)
			if rec(mask|1<<uint(i), newState) {
				return true
			}
			order = order[:len(order)-1]
		}
		memo[key] = struct{}{}
		return false
	}

	ok := rec(0, 0)
	res := Result{Ok: ok, Explored: len(memo)}
	if ok {
		res.Linearization = append([]int(nil), order...)
	}
	return res, nil
}

// CheckOrExplain runs Check and formats a human-readable failure message
// listing the history sorted by invocation, for t.Fatalf in tests.
func CheckOrExplain(ops []Op) (bool, string, error) {
	res, err := Check(ops)
	if err != nil {
		return false, "", err
	}
	if res.Ok {
		return true, "", nil
	}
	sorted := append([]Op(nil), ops...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Invoke < sorted[b].Invoke })
	msg := fmt.Sprintf("history of %d ops is NOT linearizable (explored %d states):\n",
		len(ops), res.Explored)
	for _, op := range sorted {
		msg += "  " + op.String() + "\n"
	}
	return false, msg, nil
}
