package lincheck

import (
	"math/bits"
	"testing"
)

// decodeHistory turns fuzz bytes into a small overlapping history. Each op
// consumes 3 bytes: kind/key, result, and an overlap amount that stretches
// its return time over the following ops. Histories stay ≤ 6 ops so the
// brute-force oracle below stays cheap.
func decodeHistory(data []byte) []Op {
	const maxOps = 6
	n := len(data) / 3
	if n > maxOps {
		n = maxOps
	}
	ops := make([]Op, 0, n)
	ts := uint64(1)
	var pendingEnd []uint64
	for i := 0; i < n; i++ {
		kind := OpKind(data[3*i]%4) + 1
		key := int64(data[3*i] / 4 % 8)
		result := int64(data[3*i+1] % 10)
		if result > 7 {
			result = -1
		}
		overlap := uint64(data[3*i+2] % 4)
		inv := ts
		ts++
		ret := ts + overlap*2
		ts = ret + 1
		pendingEnd = append(pendingEnd, ret)
		ops = append(ops, Op{Kind: kind, Key: key, Result: result, Invoke: inv, Return: ret})
	}
	_ = pendingEnd
	return ops
}

// bruteForceCheck enumerates every permutation of ops consistent with the
// real-time order and replays it — the trivially correct oracle.
func bruteForceCheck(ops []Op) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	used := make([]bool, n)
	var rec func(state uint64, done int, maxRet uint64) bool
	rec = func(state uint64, done int, _ uint64) bool {
		if done == n {
			return true
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// ops[i] may go next iff no unlinearized op returned before
			// its invocation.
			ok := true
			for j := 0; j < n; j++ {
				if !used[j] && ops[j].Return < ops[i].Invoke {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			newState, res := applySet(state, ops[i])
			if hasResult(ops[i].Kind) && res != ops[i].Result {
				continue
			}
			used[i] = true
			if rec(newState, done+1, 0) {
				return true
			}
			used[i] = false
		}
		return false
	}
	return rec(0, 0, 0)
}

// FuzzCheckMatchesBruteForce: the WGL checker agrees with exhaustive
// permutation search on every generated history.
func FuzzCheckMatchesBruteForce(f *testing.F) {
	f.Add([]byte{0, 1, 0, 9, 1, 1, 18, 0, 2})
	f.Add([]byte{2, 1, 0})                   // single search
	f.Add([]byte{0, 0, 3, 2, 1, 3, 1, 0, 3}) // ins/search/del overlap
	f.Add([]byte{3, 5, 1, 0, 0, 0, 3, 3, 2, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeHistory(data)
		res, err := Check(ops)
		if err != nil {
			t.Fatalf("Check error on generated history: %v", err)
		}
		want := bruteForceCheck(ops)
		if res.Ok != want {
			t.Fatalf("Check = %v, brute force = %v, history %v", res.Ok, want, ops)
		}
		if res.Ok {
			// The witness must replay.
			state := uint64(0)
			for _, i := range res.Linearization {
				var r int64
				state, r = applySet(state, ops[i])
				if hasResult(ops[i].Kind) && r != ops[i].Result {
					t.Fatalf("invalid witness at %v", ops[i])
				}
			}
		}
	})
}

// TestApplySetPredecessorBitMath pins the bit arithmetic applySet uses.
func TestApplySetPredecessorBitMath(t *testing.T) {
	state := uint64(0)
	for _, k := range []int64{2, 5, 9} {
		state, _ = applySet(state, Op{Kind: OpInsert, Key: k})
	}
	if bits.OnesCount64(state) != 3 {
		t.Fatalf("state has %d bits", bits.OnesCount64(state))
	}
	tests := []struct{ y, want int64 }{
		{0, -1}, {2, -1}, {3, 2}, {5, 2}, {6, 5}, {9, 5}, {10, 9}, {63, 9},
	}
	for _, tt := range tests {
		_, got := applySet(state, Op{Kind: OpPredecessor, Key: tt.y})
		if got != tt.want {
			t.Errorf("pred(%d) = %d, want %d", tt.y, got, tt.want)
		}
	}
}
