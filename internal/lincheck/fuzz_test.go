package lincheck

import (
	"math/bits"
	"sync"
	"testing"

	"repro/internal/adapt"
	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/sharded"
)

// decodeHistory turns fuzz bytes into a small overlapping history. Each op
// consumes 3 bytes: kind/key, result, and an overlap amount that stretches
// its return time over the following ops. Histories stay ≤ 6 ops so the
// brute-force oracle below stays cheap.
func decodeHistory(data []byte) []Op {
	const maxOps = 6
	n := len(data) / 3
	if n > maxOps {
		n = maxOps
	}
	ops := make([]Op, 0, n)
	ts := uint64(1)
	var pendingEnd []uint64
	for i := 0; i < n; i++ {
		kind := OpKind(data[3*i]%4) + 1
		key := int64(data[3*i] / 4 % 8)
		result := int64(data[3*i+1] % 10)
		if result > 7 {
			result = -1
		}
		overlap := uint64(data[3*i+2] % 4)
		inv := ts
		ts++
		ret := ts + overlap*2
		ts = ret + 1
		pendingEnd = append(pendingEnd, ret)
		ops = append(ops, Op{Kind: kind, Key: key, Result: result, Invoke: inv, Return: ret})
	}
	_ = pendingEnd
	return ops
}

// bruteForceCheck enumerates every permutation of ops consistent with the
// real-time order and replays it — the trivially correct oracle.
func bruteForceCheck(ops []Op) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	used := make([]bool, n)
	var rec func(state uint64, done int, maxRet uint64) bool
	rec = func(state uint64, done int, _ uint64) bool {
		if done == n {
			return true
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// ops[i] may go next iff no unlinearized op returned before
			// its invocation.
			ok := true
			for j := 0; j < n; j++ {
				if !used[j] && ops[j].Return < ops[i].Invoke {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			newState, res := applySet(state, ops[i])
			if hasResult(ops[i].Kind) && res != ops[i].Result {
				continue
			}
			used[i] = true
			if rec(newState, done+1, 0) {
				return true
			}
			used[i] = false
		}
		return false
	}
	return rec(0, 0, 0)
}

// FuzzCheckMatchesBruteForce: the WGL checker agrees with exhaustive
// permutation search on every generated history.
func FuzzCheckMatchesBruteForce(f *testing.F) {
	f.Add([]byte{0, 1, 0, 9, 1, 1, 18, 0, 2})
	f.Add([]byte{2, 1, 0})                   // single search
	f.Add([]byte{0, 0, 3, 2, 1, 3, 1, 0, 3}) // ins/search/del overlap
	f.Add([]byte{3, 5, 1, 0, 0, 0, 3, 3, 2, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeHistory(data)
		res, err := Check(ops)
		if err != nil {
			t.Fatalf("Check error on generated history: %v", err)
		}
		want := bruteForceCheck(ops)
		if res.Ok != want {
			t.Fatalf("Check = %v, brute force = %v, history %v", res.Ok, want, ops)
		}
		if res.Ok {
			// The witness must replay.
			state := uint64(0)
			for _, i := range res.Linearization {
				var r int64
				state, r = applySet(state, ops[i])
				if hasResult(ops[i].Kind) && r != ops[i].Result {
					t.Fatalf("invalid witness at %v", ops[i])
				}
			}
		}
	})
}

// fuzzWorkerScript replays one worker's byte script against an adaptive
// sharded trie, recording every operation. Each action consumes two
// bytes: a discriminator and a key (masked to the checker's 64-key
// universe). Batches consume two extra key bytes and record each
// submitted op — including any a same-key later op supersedes — over the
// whole ApplyBatch window: the facade contract linearizes a superseded op
// immediately before its superseder, which lies inside that window, so a
// valid witness always exists iff the batch behaved correctly. Mode-flip
// actions force a shard's publication mode directly, landing at arbitrary
// points of the other worker's rounds.
func fuzzWorkerScript(tr *sharded.Trie, rec *Recorder, script []byte) {
	for i := 0; i+1 < len(script); i += 2 {
		b, key := script[i], int64(script[i+1]&63)
		switch b % 6 {
		case 0:
			inv := rec.Begin()
			tr.Insert(key)
			rec.End(OpInsert, key, 0, inv)
		case 1:
			inv := rec.Begin()
			tr.Delete(key)
			rec.End(OpDelete, key, 0, inv)
		case 2:
			inv := rec.Begin()
			got := tr.Search(key)
			res := int64(0)
			if got {
				res = 1
			}
			rec.End(OpSearch, key, res, inv)
		case 3:
			inv := rec.Begin()
			got := tr.Predecessor(key)
			rec.End(OpPredecessor, key, got, inv)
		case 4: // batch of two updates (kinds from the discriminator's high bits)
			if i+3 >= len(script) {
				return
			}
			ops := []core.BatchOp{
				{Key: int64(script[i+2] & 63), Del: b&8 != 0},
				{Key: int64(script[i+3] & 63), Del: b&16 != 0},
			}
			i += 2
			inv := rec.Begin()
			tr.ApplyBatch(combine.SortDedup(append([]core.BatchOp(nil), ops...)))
			for _, op := range ops {
				kind := OpInsert
				if op.Del {
					kind = OpDelete
				}
				rec.End(kind, op.Key, 0, inv)
			}
		case 5: // force-flip a shard's mode, mid-whatever the peer is doing
			tr.ShardController(int(key) % tr.Shards()).ForceMode(b&8 != 0)
		}
	}
}

// FuzzAdaptiveMixedHistories drives TWO workers' fuzz-decoded scripts —
// per-op updates, queries, ApplyBatch calls and random forced mode flips
// — against a live adaptive sharded trie (aggressive controller, so
// organic flips churn too) and requires the recorded history to
// linearize. This is the checker checking the structure, complementing
// FuzzCheckMatchesBruteForce (the checker checking itself).
func FuzzAdaptiveMixedHistories(f *testing.F) {
	f.Add(true, []byte{0, 5, 1, 5, 2, 5, 3, 9})                     // ins/del/search/pred on one key
	f.Add(false, []byte{4, 0, 7, 7, 28, 0, 7, 7, 2, 7})             // insert batch, delete batch, search
	f.Add(true, []byte{5, 1, 0, 63, 13, 0, 63, 63, 3, 63, 5, 2})    // flip, ins, mixed batch, pred, flip
	f.Add(false, []byte{0, 16, 41, 3, 16, 17, 1, 16, 2, 17, 2, 16}) // cross-shard batch vs per-op churn
	f.Fuzz(func(t *testing.T, startCombining bool, data []byte) {
		if len(data) < 2 || len(data) > 40 {
			return // keep the WGL search cheap
		}
		tr, err := sharded.NewAdaptive(64, 4,
			adapt.Config{SampleEvery: 4, MinDwell: 1, StartCombining: startCombining})
		if err != nil {
			t.Fatal(err)
		}
		old := sharded.ScanRetries
		sharded.ScanRetries = 1 << 20 // see forEachShardCount in internal/sharded
		defer func() { sharded.ScanRetries = old }()
		rec := NewRecorder()
		half := (len(data) + 1) / 2
		var wg sync.WaitGroup
		for _, part := range [][]byte{data[:half], data[half:]} {
			wg.Add(1)
			go func(script []byte) {
				defer wg.Done()
				fuzzWorkerScript(tr, rec, script)
			}(part)
		}
		wg.Wait()
		ok, msg, err := CheckOrExplain(rec.History())
		if err != nil {
			t.Fatalf("checker error: %v", err)
		}
		if !ok {
			t.Fatalf("adaptive history not linearizable: %s", msg)
		}
	})
}

// TestApplySetPredecessorBitMath pins the bit arithmetic applySet uses.
func TestApplySetPredecessorBitMath(t *testing.T) {
	state := uint64(0)
	for _, k := range []int64{2, 5, 9} {
		state, _ = applySet(state, Op{Kind: OpInsert, Key: k})
	}
	if bits.OnesCount64(state) != 3 {
		t.Fatalf("state has %d bits", bits.OnesCount64(state))
	}
	tests := []struct{ y, want int64 }{
		{0, -1}, {2, -1}, {3, 2}, {5, 2}, {6, 5}, {9, 5}, {10, 9}, {63, 9},
	}
	for _, tt := range tests {
		_, got := applySet(state, Op{Kind: OpPredecessor, Key: tt.y})
		if got != tt.want {
			t.Errorf("pred(%d) = %d, want %d", tt.y, got, tt.want)
		}
	}
}
