package unode

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestMinRegisterInitRead(t *testing.T) {
	tests := []struct {
		name string
		init int
		want int
	}{
		{"zero", 0, 0},
		{"one", 1, 1},
		{"typical b+1", 21, 21},
		{"max", 64, 64},
		{"clamped above", 80, 64},
		{"clamped below", -3, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var m MinRegister
			m.Init(tt.init)
			if got := m.Read(); got != tt.want {
				t.Errorf("Read() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestMinRegisterMinWrite(t *testing.T) {
	var m MinRegister
	m.Init(21)
	m.MinWrite(30) // larger: no effect
	if got := m.Read(); got != 21 {
		t.Fatalf("MinWrite(30) changed value to %d, want 21", got)
	}
	m.MinWrite(7)
	if got := m.Read(); got != 7 {
		t.Fatalf("MinWrite(7): Read() = %d, want 7", got)
	}
	m.MinWrite(7) // idempotent
	if got := m.Read(); got != 7 {
		t.Fatalf("repeat MinWrite(7): Read() = %d, want 7", got)
	}
	m.MinWrite(0)
	if got := m.Read(); got != 0 {
		t.Fatalf("MinWrite(0): Read() = %d, want 0", got)
	}
}

// TestMinRegisterQuickMin property: after any sequence of MinWrites the value
// is the minimum of the initial value and all written values.
func TestMinRegisterQuickMin(t *testing.T) {
	f := func(init uint8, writes []uint8) bool {
		v0 := int(init % 65)
		var m MinRegister
		m.Init(v0)
		want := v0
		for _, w := range writes {
			wv := int(w % 65)
			m.MinWrite(wv)
			if wv < want {
				want = wv
			}
		}
		return m.Read() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestMinRegisterConcurrentMin: the register converges to the global minimum
// under concurrent MinWrites and never observes a value below it.
func TestMinRegisterConcurrentMin(t *testing.T) {
	const goroutines = 8
	const writesPer = 2000
	var m MinRegister
	m.Init(64)
	globalMin := 64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			localMin := 64
			for i := 0; i < writesPer; i++ {
				v := 3 + rng.Intn(60)
				m.MinWrite(v)
				if v < localMin {
					localMin = v
				}
				if got := m.Read(); got > localMin {
					t.Errorf("Read() = %d after local MinWrite floor %d", got, localMin)
					return
				}
			}
			mu.Lock()
			if localMin < globalMin {
				globalMin = localMin
			}
			mu.Unlock()
		}(int64(g + 1))
	}
	wg.Wait()
	if got := m.Read(); got != globalMin {
		t.Fatalf("final Read() = %d, want global min %d", got, globalMin)
	}
}

func TestNewDelInitialBoundaries(t *testing.T) {
	const b = 20
	n := NewDel(5, b)
	if n.Kind != Del {
		t.Fatalf("Kind = %v, want Del", n.Kind)
	}
	if got := n.Lower1Boundary.Read(); got != b+1 {
		t.Errorf("lower1Boundary = %d, want %d", got, b+1)
	}
	if got := n.Upper0Boundary.Load(); got != 0 {
		t.Errorf("upper0Boundary = %d, want 0", got)
	}
	if n.Active() {
		t.Error("fresh DEL node should be inactive")
	}
	if got := n.DelPred2.Load(); got != NoKey {
		t.Errorf("DelPred2 = %d, want NoKey", got)
	}
}

func TestNewDummyDel(t *testing.T) {
	const b = 10
	n := NewDummyDel(3, b)
	if !n.DummyNode || n.Kind != Del {
		t.Fatalf("dummy flags wrong: %+v", n)
	}
	if !n.Active() {
		t.Error("dummy must be active")
	}
	if got := n.Upper0Boundary.Load(); got != int32(b) {
		t.Errorf("dummy upper0Boundary = %d, want %d", got, b)
	}
	if got := n.Lower1Boundary.Read(); got != b+1 {
		t.Errorf("dummy lower1Boundary = %d, want %d", got, b+1)
	}
}

func TestNewIns(t *testing.T) {
	n := NewIns(7)
	if n.Kind != Ins || n.Key != 7 {
		t.Fatalf("NewIns(7) = %+v", n)
	}
	if n.Target.Load() != nil {
		t.Error("fresh INS target should be nil")
	}
}

func TestKindString(t *testing.T) {
	if Ins.String() != "INS" || Del.String() != "DEL" {
		t.Error("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind String mismatch")
	}
}

func TestUpdateNodeString(t *testing.T) {
	var n *UpdateNode
	if n.String() != "<nil>" {
		t.Error("nil String mismatch")
	}
	d := NewDel(4, 3)
	if d.String() != "DEL(4){u0b:0 l1b:4}" {
		t.Errorf("DEL String = %q", d.String())
	}
	i := NewIns(2)
	if i.String() != "INS(2)" {
		t.Errorf("INS String = %q", i.String())
	}
}
