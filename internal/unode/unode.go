// Package unode defines the update nodes shared by the relaxed binary trie
// (paper §4, Figure 4) and the lock-free binary trie (paper §5, Figure 6),
// together with the bounded min-register used for lower1Boundary.
//
// A single node type serves both data structures: the §5 node is a strict
// superset of the §4 node (status, latestNext transitions, completed flag and
// the embedded-predecessor results are only used by the lock-free trie).
// Immutable fields are plain; fields that are written while the node is
// shared are atomics.
package unode

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// Kind discriminates INS nodes (created by insert operations) from DEL nodes
// (created by delete operations). The kind of a node is immutable.
type Kind uint8

const (
	// Ins marks an update node created by an Insert (TrieInsert) operation.
	Ins Kind = iota + 1
	// Del marks an update node created by a Delete (TrieDelete) operation.
	Del
)

// String implements fmt.Stringer for debugging output and trieviz.
func (k Kind) String() string {
	switch k {
	case Ins:
		return "INS"
	case Del:
		return "DEL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Status values for the lock-free trie's update nodes (paper line 94). A
// node starts Inactive and changes exactly once to Active; the S-modifying
// operation that created it is linearized at that transition.
const (
	// StatusInactive is the initial status of a §5 update node.
	StatusInactive uint32 = iota
	// StatusActive marks an announced (linearized) update node.
	StatusActive
)

// NoKey is the ⊥ placeholder for delPred2 (paper line 104) before the second
// embedded predecessor of a Delete operation has completed.
const NoKey int64 = math.MinInt64

// MinRegister is a bounded min-register over {0,…,63}, implemented exactly as
// the paper proposes (§1, "a min-write on a (b+1)-bit memory location can be
// implemented using a single (b+1)-bit AND operation"): the value v is
// represented by the word (1<<v)−1, so MinWrite(w) is one atomic AND with
// (1<<w)−1 and Read is a population-length computation. The stored value
// never increases.
type MinRegister struct {
	word atomic.Uint64
}

// Init sets the initial value. It must be called before the register is
// shared; it is a plain (non-RMW) store.
func (m *MinRegister) Init(v int) {
	m.word.Store(minRegisterMask(v))
}

// Read returns the current value of the register.
func (m *MinRegister) Read() int {
	return bits.Len64(m.word.Load())
}

// MinWrite lowers the register to v if v is smaller than the current value,
// using a single atomic AND.
func (m *MinRegister) MinWrite(v int) {
	m.word.And(minRegisterMask(v))
}

func minRegisterMask(v int) uint64 {
	switch {
	case v <= 0:
		return 0
	case v >= 64:
		return ^uint64(0)
	default:
		return (uint64(1) << uint(v)) - 1
	}
}

// UpdateNode is an INS or DEL node (paper Figures 4 and 6). One instance is
// created per S-modifying attempt of an Insert/Delete operation; the node is
// published by a CAS on latest[key] and thereafter shared.
type UpdateNode struct {
	// Key is the operation's input key (immutable).
	Key int64
	// Kind is Ins or Del (immutable).
	Kind Kind
	// DummyNode marks the lazily materialized dummy DEL node that stands
	// for "key never inserted" (see DESIGN.md). Dummies are always active
	// and have Upper0Boundary = b, Lower1Boundary = b+1.
	DummyNode bool

	// Target points to the DEL node a TrieInsert is attacking (paper line
	// 5/96): the insert will MinWrite that DEL node's lower1Boundary.
	Target atomic.Pointer[UpdateNode]
	// Stop tells the Delete operation that created this DEL node to stop
	// updating interpreted bits (paper line 7/97). Monotone false→true.
	Stop atomic.Bool
	// LatestNext is the next node in the latest[key] list (paper line
	// 8/95). In §5 it is initialized to the previous latest node and
	// changes exactly once, to nil.
	LatestNext atomic.Pointer[UpdateNode]
	// Upper0Boundary (DEL only): all trie nodes at height ≤ this value that
	// depend on this node have interpreted bit 0 (paper line 9/100). Only
	// the creating Delete writes it, incrementing from 0 one level at a
	// time (Lemma 4.13).
	Upper0Boundary atomic.Int32
	// Lower1Boundary (DEL only): all trie nodes at height ≥ this value that
	// depend on this node have interpreted bit 1 (paper line 10/101).
	// Initially b+1; lowered by inserts via MinWrite.
	Lower1Boundary MinRegister

	// Status is StatusInactive/StatusActive (§5 only, paper line 94).
	Status atomic.Uint32
	// Completed records that the creating operation finished updating the
	// relaxed trie and notifying predecessors (§5 only, paper line 98), so
	// helpers that re-inserted the node into the announcement lists must
	// remove it again.
	Completed atomic.Bool

	// DelPredNode is the predecessor node of the Delete operation's first
	// embedded predecessor (§5 DEL only, paper line 102; immutable once the
	// node is published). Typed as any to avoid an import cycle with the
	// core package; core stores its *PredNode here.
	DelPredNode any
	// DelPred is the result of the first embedded predecessor (paper line
	// 103; immutable once published).
	DelPred int64
	// DelPred2 is the result of the second embedded predecessor (paper line
	// 104). It transitions once from NoKey to a key in U ∪ {−1}.
	DelPred2 atomic.Int64
}

// NewIns returns a fresh INS node for key. The §5 caller must still set
// LatestNext before publishing.
func NewIns(key int64) *UpdateNode {
	n := &UpdateNode{Key: key, Kind: Ins}
	n.DelPred2.Store(NoKey)
	return n
}

// NewDel returns a fresh DEL node for key with lower1Boundary = b+1 and
// upper0Boundary = 0 (paper Figure 4 initial values).
func NewDel(key int64, b int) *UpdateNode {
	n := &UpdateNode{Key: key, Kind: Del}
	n.Lower1Boundary.Init(b + 1)
	n.DelPred2.Store(NoKey)
	return n
}

// NewDummyDel returns the materialized dummy DEL node for key: active,
// upper0Boundary = b and lower1Boundary = b+1, so every trie node depending
// on it has interpreted bit 0, matching the initial empty set.
func NewDummyDel(key int64, b int) *UpdateNode {
	n := NewDel(key, b)
	n.DummyNode = true
	n.Upper0Boundary.Store(int32(b))
	n.Status.Store(StatusActive)
	return n
}

// Active reports whether the node has been announced (§5). Relaxed-trie
// nodes are created active by convention (§4.4.1: "we consider all update
// nodes to be active").
func (n *UpdateNode) Active() bool {
	return n.Status.Load() == StatusActive
}

// String renders the node for debugging and trieviz output.
func (n *UpdateNode) String() string {
	if n == nil {
		return "<nil>"
	}
	if n.Kind == Del {
		return fmt.Sprintf("%s(%d){u0b:%d l1b:%d}", n.Kind, n.Key,
			n.Upper0Boundary.Load(), n.Lower1Boundary.Read())
	}
	return fmt.Sprintf("%s(%d)", n.Kind, n.Key)
}
