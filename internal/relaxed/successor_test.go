package relaxed_test

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSuccessorSequential(t *testing.T) {
	tr := newTrie(t, 64)
	for _, k := range []int64{0, 3, 17, 40, 62} {
		tr.Insert(k)
	}
	tests := []struct {
		y, want int64
	}{
		{0, 3}, {1, 3}, {2, 3}, {3, 17}, {16, 17}, {17, 40},
		{39, 40}, {40, 62}, {61, 62}, {62, -1}, {63, -1},
	}
	for _, tt := range tests {
		got, ok := tr.Successor(tt.y)
		if !ok {
			t.Errorf("Successor(%d) = ⊥ at quiescence", tt.y)
			continue
		}
		if got != tt.want {
			t.Errorf("Successor(%d) = %d, want %d", tt.y, got, tt.want)
		}
	}
}

func TestSuccessorEmpty(t *testing.T) {
	tr := newTrie(t, 16)
	for y := int64(0); y < 16; y++ {
		got, ok := tr.Successor(y)
		if !ok || got != -1 {
			t.Errorf("Successor(%d) = (%d,%v), want (-1,true)", y, got, ok)
		}
	}
}

// TestSuccessorQuickAgainstReference mirrors the predecessor property test.
func TestSuccessorQuickAgainstReference(t *testing.T) {
	const u = 32
	type op struct {
		Kind byte
		Key  uint8
	}
	f := func(ops []op) bool {
		tr := newTrie(t, u)
		ref := map[int64]bool{}
		for _, o := range ops {
			k := int64(o.Key % u)
			switch o.Kind % 3 {
			case 0:
				tr.Insert(k)
				ref[k] = true
			case 1:
				tr.Delete(k)
				delete(ref, k)
			case 2:
				want := int64(-1)
				for c := k + 1; c < u; c++ {
					if ref[c] {
						want = c
						break
					}
				}
				got, ok := tr.Successor(k)
				if !ok || got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSuccessorPredecessorDuality: for any quiescent set and any y,
// Successor(Predecessor(y)) walks back to the first set key below... more
// precisely, if p = Predecessor(y) ≥ 0 and there is no set key in (p, y),
// then Successor(p) is either y (if y ∈ S) or > y or -1.
func TestSuccessorPredecessorDuality(t *testing.T) {
	tr := newTrie(t, 128)
	rng := rand.New(rand.NewSource(11))
	present := map[int64]bool{}
	for i := 0; i < 60; i++ {
		k := rng.Int63n(128)
		tr.Insert(k)
		present[k] = true
	}
	for y := int64(0); y < 128; y++ {
		p, ok := tr.Predecessor(y)
		if !ok {
			t.Fatalf("Predecessor(%d) = ⊥", y)
		}
		if p < 0 {
			continue
		}
		s, ok := tr.Successor(p)
		if !ok {
			t.Fatalf("Successor(%d) = ⊥", p)
		}
		// The successor of y's predecessor is the first set key after p,
		// which must be ≥ the first set key ≥ y... and if y itself is in S
		// it is exactly y when no key lies in (p, y).
		if present[y] && s != y {
			// only valid when no set key in (p,y), which Predecessor
			// already guarantees.
			t.Fatalf("Successor(Predecessor(%d)=%d) = %d, want %d", y, p, s, y)
		}
		if s != -1 && s <= p {
			t.Fatalf("Successor(%d) = %d not greater", p, s)
		}
	}
}

// TestSuccessorConcurrentStableCeiling: key 60 always present; churn below
// the query point must never hide it.
func TestSuccessorConcurrentStableCeiling(t *testing.T) {
	tr := newTrie(t, 64)
	tr.Insert(60)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Insert(5)
				tr.Delete(5)
			}
		}
	}()
	for i := 0; i < 5000; i++ {
		if got, ok := tr.Successor(30); ok && got != 60 {
			t.Errorf("Successor(30) = %d, want 60", got)
			break
		}
	}
	close(stop)
	wg.Wait()
	got, ok := tr.Successor(30)
	if !ok || got != 60 {
		t.Fatalf("quiescent Successor(30) = (%d,%v), want (60,true)", got, ok)
	}
}
