// Package relaxed implements the wait-free relaxed binary trie of paper §4:
// a dynamic set over {0,…,u−1} with strongly linearizable TrieInsert,
// TrieDelete and TrieSearch, and the non-linearizable RelaxedPredecessor
// whose specification (§4.1) allows ⊥ only while concurrent updates
// interfere.
//
// All operations are wait-free: Search is O(1), the others O(log u)
// worst-case steps. latest[x] is a single atomic pointer per key (the §4
// latest "list" has length one); update nodes are active on creation
// (paper §4.4.1).
package relaxed

import (
	"sync/atomic"

	"repro/internal/atomicx"
	"repro/internal/bitstrie"
	"repro/internal/unode"
)

// Trie is a relaxed binary trie. Create instances with New; the zero value
// is not usable.
type Trie struct {
	b      int
	u      int64
	latest []atomic.Pointer[unode.UpdateNode]
	bits   *bitstrie.Trie
	// count backs Len: bumped by winning updates after their linearization
	// point; padded on both sides off the header fields every operation
	// reads (the leading pad — PadInt64 only pads behind the counter).
	_     [atomicx.CacheLine]byte
	count atomicx.PadInt64
}

// New returns an empty relaxed binary trie over the universe {0,…,u−1}
// (u ≥ 2, padded to the next power of two).
func New(u int64) (*Trie, error) {
	t := &Trie{}
	bt, err := bitstrie.New(u, (*oracle)(t))
	if err != nil {
		return nil, err
	}
	t.b = bt.B()
	t.u = bt.U()
	t.latest = make([]atomic.Pointer[unode.UpdateNode], t.u)
	t.bits = bt
	return t, nil
}

// U returns the (padded) universe size.
func (t *Trie) U() int64 { return t.u }

// Len returns the number of keys in the set, counted from the win-reporting
// updates (O(1)). Weakly consistent under concurrent updates; exact at
// quiescence.
func (t *Trie) Len() int64 { return t.count.Load() }

// B returns ⌈log2 u⌉.
func (t *Trie) B() int { return t.b }

// Bits exposes the interpreted-bit engine for tests, stats and trieviz.
func (t *Trie) Bits() *bitstrie.Trie { return t.bits }

// oracle adapts Trie to bitstrie.Oracle without exporting the methods on
// Trie itself.
type oracle Trie

var _ bitstrie.Oracle = (*oracle)(nil)

// FindLatest returns the update node pointed to by latest[x] (paper lines
// 13–14), materializing the dummy DEL node on first touch (DESIGN.md).
func (o *oracle) FindLatest(x int64) *unode.UpdateNode {
	return (*Trie)(o).findLatest(x)
}

// FirstActivated reports whether n is pointed to by latest[n.Key] (paper
// lines 19–21). All §4 update nodes are considered active.
func (o *oracle) FirstActivated(n *unode.UpdateNode) bool {
	return (*Trie)(o).latest[n.Key].Load() == n
}

func (t *Trie) findLatest(x int64) *unode.UpdateNode {
	if p := t.latest[x].Load(); p != nil {
		return p
	}
	// Materialize the dummy DEL node for x; the loser's allocation is
	// dropped and the winner is re-read, so all processes agree.
	t.latest[x].CompareAndSwap(nil, unode.NewDummyDel(x, t.b))
	return t.latest[x].Load()
}

// Search reports whether x is in the set (paper lines 15–18). O(1): one
// read of latest[x]. An untouched key is absent without materializing its
// dummy.
//
// Precondition: 0 ≤ x < U().
func (t *Trie) Search(x int64) bool {
	p := t.latest[x].Load()
	return p != nil && p.Kind == unode.Ins
}

// Insert adds x to the set (paper lines 28–37, TrieInsert). Wait-free,
// O(log u) worst-case steps.
//
// Precondition: 0 ≤ x < U().
func (t *Trie) Insert(x int64) { t.Add(x) }

// Add is Insert reporting whether this operation performed the
// absent→present transition (its INS node won the latest[x] CAS, Lemma
// 4.3). False means x was already present or a concurrent update on x
// linearized first. The sharded layer's occupancy counters hang off this.
//
// Precondition: 0 ≤ x < U().
func (t *Trie) Add(x int64) bool {
	dNode := t.findLatest(x)
	if dNode.Kind != unode.Del {
		return false // x already in S
	}
	iNode := unode.NewIns(x)
	iNode.Status.Store(unode.StatusActive) // §4: nodes are created active
	// Paper line 34: dNode.latestNext.target.stop ← true, ignoring ⊥ links.
	// This stops the Delete operation that the previously linearized
	// Insert(x) was asked to stop, in case that Insert crashed between
	// setting target and performing its MinWrite.
	if ln := dNode.LatestNext.Load(); ln != nil {
		if tg := ln.Target.Load(); tg != nil {
			tg.Stop.Store(true)
		}
	}
	// Summary publication contract (bitstrie.MarkEverInserted): the
	// ever-inserted bit must be set before iNode can enter latest[x].
	t.bits.MarkEverInserted(x)
	if !t.latest[x].CompareAndSwap(dNode, iNode) {
		return false // another TrieInsert(x) linearized first (Lemma 4.3)
	}
	t.count.Add(1)
	t.bits.InsertBinaryTrie(iNode)
	return true
}

// Delete removes x from the set (paper lines 47–57, TrieDelete). Wait-free,
// O(log u) worst-case steps.
//
// Precondition: 0 ≤ x < U().
func (t *Trie) Delete(x int64) { t.Remove(x) }

// Remove is Delete reporting whether this operation performed the
// present→absent transition (the mirror of Add, Lemma 4.4).
//
// Precondition: 0 ≤ x < U().
func (t *Trie) Remove(x int64) bool {
	iNode := t.findLatest(x)
	if iNode.Kind != unode.Ins {
		return false // x not in S
	}
	dNode := unode.NewDel(x, t.b)
	dNode.Status.Store(unode.StatusActive)
	dNode.LatestNext.Store(iNode)
	if !t.latest[x].CompareAndSwap(iNode, dNode) {
		return false // another TrieDelete(x) linearized first (Lemma 4.4)
	}
	t.count.Add(-1)
	// Paper line 55: stop the Delete whose DEL node the replaced Insert was
	// attacking; the Insert will not finish its MinWrite on our behalf.
	if tg := iNode.Target.Load(); tg != nil {
		tg.Stop.Store(true)
	}
	t.bits.DeleteBinaryTrie(dNode)
	return true
}

// Successor returns the smallest key greater than y under the mirrored
// relaxed specification: (k, true) when k was present during the call,
// (−1, true) when no key above y was visible, (0, false) for ⊥ under
// concurrent interference. Wait-free, O(log u) worst-case steps. This
// operation is an extension beyond the paper (which states only
// Predecessor); the algorithm is the exact mirror.
//
// Precondition: 0 ≤ y < U().
func (t *Trie) Successor(y int64) (int64, bool) {
	return t.bits.RelaxedSuccessor(y)
}

// Predecessor returns the largest key smaller than y that it could prove
// present, following §4.1's specification:
//
//   - (k, true): k ∈ S at some point during the call, k < y; if there were
//     no concurrent updates on keys in (k, y), k is THE predecessor of y.
//   - (−1, true): no key below y was visible.
//   - (0, false): ⊥ — a concurrent update on some key in (k, y) prevented
//     the traversal from completing.
//
// Precondition: 0 ≤ y < U().
func (t *Trie) Predecessor(y int64) (int64, bool) {
	return t.bits.RelaxedPredecessor(y)
}
