package relaxed_test

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/relaxed"
)

func newTrie(t testing.TB, u int64) *relaxed.Trie {
	t.Helper()
	tr, err := relaxed.New(u)
	if err != nil {
		t.Fatalf("New(%d): %v", u, err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := relaxed.New(1); err == nil {
		t.Error("New(1) should fail")
	}
	tr := newTrie(t, 100)
	if tr.U() != 128 || tr.B() != 7 {
		t.Errorf("U=%d B=%d, want 128/7", tr.U(), tr.B())
	}
}

func TestEmptyTrie(t *testing.T) {
	tr := newTrie(t, 8)
	for x := int64(0); x < 8; x++ {
		if tr.Search(x) {
			t.Errorf("Search(%d) = true on empty trie", x)
		}
		got, ok := tr.Predecessor(x)
		if !ok || got != -1 {
			t.Errorf("Predecessor(%d) = (%d,%v), want (-1,true)", x, got, ok)
		}
	}
}

func TestInsertSearchDelete(t *testing.T) {
	tr := newTrie(t, 16)
	tr.Insert(5)
	if !tr.Search(5) {
		t.Fatal("Search(5) = false after insert")
	}
	tr.Insert(5) // idempotent
	if !tr.Search(5) {
		t.Fatal("double insert broke Search")
	}
	tr.Delete(5)
	if tr.Search(5) {
		t.Fatal("Search(5) = true after delete")
	}
	tr.Delete(5) // idempotent
	if tr.Search(5) {
		t.Fatal("double delete broke Search")
	}
}

func TestPredecessorSequential(t *testing.T) {
	tr := newTrie(t, 64)
	keys := []int64{0, 3, 17, 40, 62}
	for _, k := range keys {
		tr.Insert(k)
	}
	tests := []struct {
		y    int64
		want int64
	}{
		{0, -1}, {1, 0}, {3, 0}, {4, 3}, {17, 3}, {18, 17},
		{40, 17}, {41, 40}, {62, 40}, {63, 62},
	}
	for _, tt := range tests {
		got, ok := tr.Predecessor(tt.y)
		if !ok {
			t.Errorf("Predecessor(%d) = ⊥ at quiescence", tt.y)
			continue
		}
		if got != tt.want {
			t.Errorf("Predecessor(%d) = %d, want %d", tt.y, got, tt.want)
		}
	}
}

// TestFigure3DeleteRace replays Figure 3's endpoint: after Delete(0) stops
// early (sibling 1 still present) and Delete(1) runs, Delete(1)'s DEL node
// owns the whole path and every bit is 0.
func TestFigure3DeleteRace(t *testing.T) {
	tr := newTrie(t, 4)
	tr.Insert(0)
	tr.Insert(1)
	// Figure 3(b): both deletes activate; here sequentially, dOp (key 0)
	// goes first and stops at the parent because leaf 1 was still 1 when it
	// checked... in the sequential replay leaf 1 is still present, so dOp
	// returns at the sibling check — exactly Figure 3(c)'s losing path.
	tr.Delete(0)
	bits := tr.Bits()
	if got := bits.InterpretedBitOfLeaf(0); got != 0 {
		t.Fatalf("leaf0 bit = %d, want 0", got)
	}
	if got := bits.InterpretedBit(2); got != 1 {
		t.Fatalf("node2 bit = %d, want 1 while key 1 present", got)
	}
	// Figure 3(c)-(f): dOp' (key 1) propagates to the root.
	tr.Delete(1)
	for _, idx := range []int64{1, 2} {
		if got := bits.InterpretedBit(idx); got != 0 {
			t.Errorf("bit(%d) = %d, want 0 after both deletes", idx, got)
		}
	}
	d := bits.DNodePtr(2)
	if d == nil || d.Key != 1 {
		t.Fatalf("node2 dNodePtr = %v, want DEL(1)", d)
	}
	if bits.DNodePtr(1) != d {
		t.Fatal("root should depend on the same DEL(1) node")
	}
	if got := d.Upper0Boundary.Load(); got != 2 {
		t.Errorf("DEL(1) upper0Boundary = %d, want 2", got)
	}
}

// TestQuickAgainstReference: arbitrary op sequences match a map-based
// reference, including predecessor queries at every step.
func TestQuickAgainstReference(t *testing.T) {
	const u = 32
	type op struct {
		Kind byte
		Key  uint8
	}
	f := func(ops []op) bool {
		tr := newTrie(t, u)
		ref := map[int64]bool{}
		for _, o := range ops {
			k := int64(o.Key % u)
			switch o.Kind % 4 {
			case 0:
				tr.Insert(k)
				ref[k] = true
			case 1:
				tr.Delete(k)
				delete(ref, k)
			case 2:
				if tr.Search(k) != ref[k] {
					return false
				}
			case 3:
				want := int64(-1)
				for c := k - 1; c >= 0; c-- {
					if ref[c] {
						want = c
						break
					}
				}
				got, ok := tr.Predecessor(k)
				if !ok || got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// checkQuiescent verifies the §4.1 quiescent guarantees: Search matches the
// reference set and RelaxedPredecessor returns the exact predecessor (never
// ⊥) for every key.
func checkQuiescent(t *testing.T, tr *relaxed.Trie, present map[int64]bool) {
	t.Helper()
	for y := int64(0); y < tr.U(); y++ {
		if got := tr.Search(y); got != present[y] {
			t.Fatalf("Search(%d) = %v, want %v", y, got, present[y])
		}
		want := int64(-1)
		for k := y - 1; k >= 0; k-- {
			if present[k] {
				want = k
				break
			}
		}
		got, ok := tr.Predecessor(y)
		if !ok {
			t.Fatalf("Predecessor(%d) = ⊥ with no concurrent updates", y)
		}
		if got != want {
			t.Fatalf("Predecessor(%d) = %d, want %d", y, got, want)
		}
	}
}

// TestConcurrentStressQuiescentExactness hammers the trie from several
// goroutines, then checks the quiescent state: the surviving set equals the
// union of per-key last operations, bits are consistent and predecessor
// queries are exact. Run with -race in CI.
func TestConcurrentStressQuiescentExactness(t *testing.T) {
	const (
		u          = 128
		goroutines = 8
		opsPerG    = 2000
	)
	tr := newTrie(t, u)

	// Each goroutine owns a disjoint key range so the final state is
	// deterministic per goroutine (last op per key wins within an owner).
	var wg sync.WaitGroup
	finals := make([]map[int64]bool, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id + 42)))
			lo := int64(id) * (u / goroutines)
			hi := lo + (u / goroutines)
			final := map[int64]bool{}
			for i := 0; i < opsPerG; i++ {
				k := lo + rng.Int63n(hi-lo)
				switch rng.Intn(4) {
				case 0, 1:
					tr.Insert(k)
					final[k] = true
				case 2:
					tr.Delete(k)
					delete(final, k)
				case 3:
					// Concurrent relaxed predecessor: only sanity checks
					// are valid mid-flight.
					y := lo + rng.Int63n(hi-lo)
					if got, ok := tr.Predecessor(y); ok && got >= y {
						t.Errorf("Predecessor(%d) = %d ≥ y", y, got)
						return
					}
				}
			}
			finals[id] = final
		}(g)
	}
	wg.Wait()

	present := map[int64]bool{}
	for _, final := range finals {
		for k := range final {
			present[k] = true
		}
	}
	checkQuiescent(t, tr, present)
}

// TestRelaxedQuiescentNeverBottom (experiment C6 correctness side): after
// updates stop, RelaxedPredecessor never returns ⊥, for many random states.
func TestRelaxedQuiescentNeverBottom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		tr := newTrie(t, 64)
		present := map[int64]bool{}
		for i := 0; i < 100; i++ {
			k := rng.Int63n(64)
			if rng.Intn(2) == 0 {
				tr.Insert(k)
				present[k] = true
			} else {
				tr.Delete(k)
				delete(present, k)
			}
		}
		checkQuiescent(t, tr, present)
	}
}

// TestConcurrentInsertersSameKey: exactly one S-modifying insert wins; the
// key ends present with consistent bits.
func TestConcurrentInsertersSameKey(t *testing.T) {
	tr := newTrie(t, 32)
	const goroutines = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			tr.Insert(17)
		}()
	}
	close(start)
	wg.Wait()
	if !tr.Search(17) {
		t.Fatal("key missing after concurrent inserts")
	}
	checkQuiescent(t, tr, map[int64]bool{17: true})
}

// TestInsertDeleteChurnSameKey: alternating concurrent insert/delete pairs
// leave the structure consistent whatever the winner order was.
func TestInsertDeleteChurnSameKey(t *testing.T) {
	tr := newTrie(t, 16)
	const rounds = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			tr.Insert(9)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			tr.Delete(9)
		}
	}()
	wg.Wait()
	// Quiesce to a known state and verify exactness both ways.
	tr.Insert(9)
	checkQuiescent(t, tr, map[int64]bool{9: true})
	tr.Delete(9)
	checkQuiescent(t, tr, map[int64]bool{})
}

// TestBottomOnlyUnderContention: a ⊥ answer must coincide with concurrent
// updates; we assert the weaker, checkable direction — with updates running
// we *may* see ⊥, after they stop we must not. The update goroutine churns
// one subtree while predecessors query above it.
func TestBottomOnlyUnderContention(t *testing.T) {
	tr := newTrie(t, 64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Insert(10)
				tr.Delete(10)
			}
		}
	}()
	sawAnswer := false
	for i := 0; i < 5000; i++ {
		if _, ok := tr.Predecessor(60); ok {
			sawAnswer = true
		}
	}
	close(stop)
	wg.Wait()
	if !sawAnswer {
		t.Error("predecessor never completed during contention (lock-freedom smell)")
	}
	checkQuiescentState := tr.Search(10)
	want := map[int64]bool{}
	if checkQuiescentState {
		want[10] = true
	}
	checkQuiescent(t, tr, want)
}
