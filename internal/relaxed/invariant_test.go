package relaxed_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/relaxed"
)

// checkInterpretedBitInvariant asserts the quiescent form of properties IB0
// and IB1 (paper Lemmas 4.21 and 4.26): with no active update operations,
// the interpreted bit of EVERY trie node equals the OR of the memberships
// of the leaves in its subtree.
func checkInterpretedBitInvariant(t *testing.T, tr *relaxed.Trie, present map[int64]bool) {
	t.Helper()
	bits := tr.Bits()
	u := tr.U()
	// Leaves.
	for k := int64(0); k < u; k++ {
		want := 0
		if present[k] {
			want = 1
		}
		if got := bits.InterpretedBitOfLeaf(k); got != want {
			t.Fatalf("leaf %d bit = %d, want %d", k, got, want)
		}
	}
	// Internal nodes, bottom-up by index math: node i covers leaves
	// [leftmost, leftmost + 2^height).
	for i := int64(1); i < u; i++ {
		h := bits.Height(i)
		span := int64(1) << uint(h)
		lo := (i << uint(h)) - u
		want := 0
		for k := lo; k < lo+span; k++ {
			if present[k] {
				want = 1
				break
			}
		}
		if got := bits.InterpretedBit(i); got != want {
			t.Fatalf("node %d (height %d, leaves [%d,%d)) bit = %d, want %d",
				i, h, lo, lo+span, got, want)
		}
	}
}

// TestInterpretedBitInvariantSequential: IB0/IB1 hold after every op of a
// random sequential run.
func TestInterpretedBitInvariantSequential(t *testing.T) {
	tr := newTrie(t, 32)
	rng := rand.New(rand.NewSource(13))
	present := map[int64]bool{}
	for step := 0; step < 400; step++ {
		k := rng.Int63n(32)
		if rng.Intn(2) == 0 {
			tr.Insert(k)
			present[k] = true
		} else {
			tr.Delete(k)
			delete(present, k)
		}
		checkInterpretedBitInvariant(t, tr, present)
	}
}

// TestInterpretedBitInvariantAfterConcurrency: IB0/IB1 hold at quiescence
// after arbitrary concurrent histories (the paper's properties are exactly
// the "no active operation" special case).
func TestInterpretedBitInvariantAfterConcurrency(t *testing.T) {
	for round := 0; round < 20; round++ {
		tr := newTrie(t, 64)
		var wg sync.WaitGroup
		finals := make([]map[int64]bool, 4)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*100 + id)))
				lo := int64(id) * 16
				final := map[int64]bool{}
				for i := 0; i < 500; i++ {
					k := lo + rng.Int63n(16)
					if rng.Intn(2) == 0 {
						tr.Insert(k)
						final[k] = true
					} else {
						tr.Delete(k)
						delete(final, k)
					}
				}
				finals[id] = final
			}(g)
		}
		wg.Wait()
		present := map[int64]bool{}
		for _, f := range finals {
			for k := range f {
				present[k] = true
			}
		}
		checkInterpretedBitInvariant(t, tr, present)
	}
}
