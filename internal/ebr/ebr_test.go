package ebr

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"repro/internal/atomicx"
)

func TestSlotPadding(t *testing.T) {
	if got := unsafe.Sizeof(Slot{}); got != 256 || got%atomicx.CacheLine != 0 {
		t.Fatalf("Slot size = %d, want 256 (the tail-pad comment in ebr.go is stale)", got)
	}
}

// recorder counts Recycle calls.
type recorder struct{ recycled atomic.Int64 }

func (r *recorder) Recycle() { r.recycled.Add(1) }

// TestGraceDeterministic walks the four-epoch protocol by hand: an object
// retired at epoch e must stay queued while any pin from ≤ e is held, must
// block the second advance, and must recycle only once the epoch reaches
// e+graceEpochs (= e+3) — one epoch later than the classic scheme, covering
// helper re-publication (readers pinned at e+1 that reach the object
// through a transiently re-linked announcement).
func TestGraceDeterministic(t *testing.T) {
	d := NewDomain()
	e0 := d.Epoch()
	h1 := d.Pin()
	h2 := d.Pin()
	if h1 == h2 {
		t.Fatal("two concurrent pins share a slot")
	}
	obj := &recorder{}
	h1.Retire(obj)

	// Both pins published e0, so one advance goes through…
	if !d.Advance() {
		t.Fatal("advance with all pins at the current epoch should succeed")
	}
	// …and the second is blocked by the pins still at e0.
	if d.Advance() {
		t.Fatal("advance past pinned epoch+1 should be blocked")
	}
	if got := obj.recycled.Load(); got != 0 {
		t.Fatalf("object recycled %d times while pins from its epoch are held", got)
	}
	h1.FlushForTest() // flush must also refuse: epoch is e0+1 < e0+3
	if got := obj.recycled.Load(); got != 0 {
		t.Fatalf("flush recycled the object before grace: epoch %d, retired at %d", d.Epoch(), e0)
	}

	h2.Unpin()
	if d.Advance() {
		t.Fatal("h1 still pinned at e0; advance should stay blocked")
	}
	h1.Unpin()
	if !d.Advance() {
		t.Fatal("advance with no pins should succeed")
	}
	if d.Epoch() != e0+2 {
		t.Fatalf("epoch = %d, want %d", d.Epoch(), e0+2)
	}
	// e0+2 would satisfy the classic two-epoch grace; the four-epoch scheme
	// must still refuse (a re-publication reader pinned at e0+1 could hold
	// the object while the epoch sits at e0+2).
	h1.FlushForTest()
	if got := obj.recycled.Load(); got != 0 {
		t.Fatalf("flush recycled the object at retire+2 (classic grace); the four-epoch scheme must wait for retire+%d", graceEpochs)
	}
	if !d.Advance() {
		t.Fatal("advance with no pins should succeed")
	}
	if d.Epoch() != e0+3 {
		t.Fatalf("epoch = %d, want %d", d.Epoch(), e0+3)
	}
	h1.FlushForTest()
	if got := obj.recycled.Load(); got != 1 {
		t.Fatalf("object recycled %d times after grace, want 1", got)
	}
	if h1.PendingForTest() != 0 {
		t.Fatalf("slot still reports %d pending", h1.PendingForTest())
	}
}

// TestPinRepublishesFreshEpoch: a slot whose last pin is epochs behind must
// publish the current epoch when re-claimed, not park the domain.
func TestPinRepublishesFreshEpoch(t *testing.T) {
	d := NewDomain()
	h := d.Pin()
	h.Unpin()
	d.Advance()
	d.Advance()
	h2 := d.Pin()
	defer h2.Unpin()
	e, pinned := h2.PinnedEpochForTest()
	if !pinned || e != d.Epoch() {
		t.Fatalf("re-claimed slot published epoch %d (pinned=%v), global is %d", e, pinned, d.Epoch())
	}
}

// TestRetireSameSlotManyEpochs drives one participant through many epochs
// and checks every object eventually recycles exactly once.
func TestRetireSameSlotManyEpochs(t *testing.T) {
	d := NewDomain()
	objs := make([]*recorder, 0, 500)
	for i := 0; i < 500; i++ {
		h := d.Pin()
		o := &recorder{}
		h.Retire(o)
		objs = append(objs, o)
		h.Unpin()
		d.Advance()
	}
	// graceEpochs trailing advances plus a pin-flush cycle drain the tail.
	for i := 0; i < graceEpochs; i++ {
		d.Advance()
	}
	for i := 0; i < blockSlots; i++ { // hit every slot the loop may have used
		h := d.Pin()
		h.FlushForTest()
		h.Unpin()
	}
	for b := d.head.Load(); b != nil; b = b.next.Load() {
		for i := range b.slots {
			b.slots[i].FlushForTest()
		}
	}
	for i, o := range objs {
		if got := o.recycled.Load(); got != 1 {
			t.Fatalf("obj %d recycled %d times, want 1", i, got)
		}
	}
}

// TestBlockGrowth holds more concurrent pins than one block has slots; the
// domain must grow and serve them all.
func TestBlockGrowth(t *testing.T) {
	d := NewDomain()
	const pins = 3 * blockSlots
	handles := make([]*Slot, pins)
	var wg sync.WaitGroup
	var ready sync.WaitGroup
	release := make(chan struct{})
	ready.Add(pins)
	wg.Add(pins)
	for i := 0; i < pins; i++ {
		go func(i int) {
			defer wg.Done()
			handles[i] = d.Pin()
			ready.Done()
			<-release
			handles[i].Unpin()
		}(i)
	}
	ready.Wait()
	seen := map[*Slot]bool{}
	for _, h := range handles {
		if h == nil || seen[h] {
			t.Fatal("nil or duplicate slot handed to concurrent pins")
		}
		seen[h] = true
	}
	close(release)
	wg.Wait()
}

// stamped is the ABA canary: Recycle bumps gen, so a reader that obtained
// the pointer under a pin and sees gen change mid-pin has witnessed a
// premature recycle — exactly what a skipped grace period causes.
type stamped struct {
	gen  atomic.Uint64
	free func(*stamped)
}

func (s *stamped) Recycle() {
	s.gen.Add(1)
	s.free(s)
}

// TestABARegressionStress is the grace-period regression: writers publish
// an object, unlink it, retire it, and reuse recycled ones from a pool;
// pinned readers re-validate the generation stamp of a pointer they read
// under the pin. Any premature recycle trips the gen check (and, under
// -race, the racing reuse itself). Fails if Retire/Advance/flush ever stop
// honoring the grace period.
func TestABARegressionStress(t *testing.T) {
	d := NewDomain()
	var slot atomic.Pointer[stamped]
	pool := sync.Pool{}
	newObj := func() *stamped {
		if v := pool.Get(); v != nil {
			return v.(*stamped)
		}
		return &stamped{free: func(s *stamped) { pool.Put(s) }}
	}
	slot.Store(newObj())

	var stop atomic.Bool
	var fails atomic.Int64
	var wg sync.WaitGroup
	writers := 2
	readers := runtime.GOMAXPROCS(0)
	wg.Add(writers + readers)
	for w := 0; w < writers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				h := d.Pin()
				next := newObj()
				old := slot.Swap(next) // the unique unlink
				if old != nil {
					h.Retire(old)
				}
				h.Unpin()
				runtime.Gosched() // keep GOMAXPROCS=1 schedules fair
			}
		}()
	}
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				h := d.Pin()
				p := slot.Load()
				g1 := p.gen.Load()
				runtime.Gosched() // widen the hold window
				if p.gen.Load() != g1 {
					fails.Add(1)
				}
				h.Unpin()
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		d.Advance()
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if n := fails.Load(); n != 0 {
		t.Fatalf("%d readers observed a generation change under an active pin (grace period violated)", n)
	}
}

// TestPinSteadyStateAllocFree: pin/retire/unpin must not allocate once the
// slot blocks and limbo rings are warm.
func TestPinSteadyStateAllocFree(t *testing.T) {
	d := NewDomain()
	obj := &recorder{}
	// Warm up ring capacity.
	for i := 0; i < 4*advanceEvery; i++ {
		h := d.Pin()
		h.Retire(obj)
		h.Unpin()
		d.Advance()
	}
	avg := testing.AllocsPerRun(200, func() {
		h := d.Pin()
		h.Retire(obj)
		h.Unpin()
	})
	if avg > 0.05 {
		t.Fatalf("pin+retire+unpin allocates %.2f/op in steady state, want 0", avg)
	}
}
