// Package ebr implements epoch-based reclamation for the lock-free trie's
// pooled objects (PredNodes, notify-node slabs, announcement cells, copy
// descriptors — DESIGN.md §Memory & reclamation).
//
// The scheme is epoch-based in the classic shape (Fraser): a global epoch
// counter, per-participant pinned-epoch slots, and per-slot limbo rings. An
// operation Pins a slot on entry — publishing the epoch it read — works,
// Retires the objects it physically unlinked, and Unpins on exit. The
// global epoch advances from e to e+1 only when every pinned slot has
// observed e; objects retired at epoch e are recycled once the epoch
// reaches e+3 (a four-epoch grace, one epoch wider than the classic
// scheme — see below).
//
// Why this is ABA-safe where plain pooling is not: an object is Retired
// only after the CAS that made it unreachable from the structure (the
// unique unlink win). A concurrent reader holding a pre-unlink pointer is
// pinned at an epoch ≤ the retire epoch e, which blocks the advance past
// e+1; every such reader has unpinned before the epoch can reach e+2. A
// reader that pins at e+1 or later starts after the advance to e+1, which
// (atomics are seq-cst in Go) orders after the unlink, so it cannot reach
// the object through the structure at all.
//
// The extra epoch covers helper re-publication: the trie's helping protocol
// can transiently re-link state that leads to a retired object (e.g.
// HelpActivate re-announces a completed update whose DEL node still points
// at a retired PredNode). Every such helper observed the pre-retire state
// under a pin that began before the retire, so its pin epoch is ≤ e and,
// while it is pinned, the global epoch stays ≤ e+1 — meaning any reader
// that reaches the object through the re-published window is pinned at an
// epoch ≤ e+1. A reader pinned at e+1 blocks the advance past e+2, so
// recycling at e+3 ≤ global cannot race it; with the classic e+2 condition
// it could. See DESIGN.md §Memory & reclamation for the per-structure
// reachability audit behind this bound.
//
// Participants are slots in append-only blocks, claimed by CAS per Pin —
// not per-goroutine state — so any number of goroutines can operate
// concurrently; the block list grows (and never shrinks) to the peak pin
// concurrency. All hot-path operations are allocation-free in steady
// state.
package ebr

import (
	randv2 "math/rand/v2"
	"sync/atomic"

	"repro/internal/atomicx"
	"repro/internal/obs"
)

// Recyclable is implemented by pooled objects. Recycle is called exactly
// once per Retire, after the grace period, and typically resets the object
// and returns it to a type-specific sync.Pool. Implementations are called
// from whatever goroutine triggers the limbo flush and must be safe to run
// there.
type Recyclable interface {
	Recycle()
}

// graceEpochs is the reclamation delay: an object retired at epoch e is
// recycled once e+graceEpochs ≤ global. Three (a four-epoch scheme) rather
// than the classic two, to cover helper re-publication windows — see the
// package comment.
const graceEpochs = 3

// numRings is one more than graceEpochs so a ring is never reused before
// its grace period has passed.
const numRings = graceEpochs + 1

// epochBase keeps ring-epoch arithmetic (epoch−graceEpochs, epoch−numRings)
// off the zero boundary forever.
const epochBase = numRings

// blockSlots is the number of slots per block. One block covers typical
// machines; the list grows only if more goroutines hold pins concurrently.
const blockSlots = 64

// advanceEvery is the number of retires a slot accumulates between global
// epoch advance attempts.
const advanceEvery = 64

// ring is one limbo generation of a slot: objects retired while the slot
// was pinned at epoch. Owner-only (the goroutine holding the pin).
type ring struct {
	epoch uint64
	objs  []Recyclable
}

// Slot is one participant's state. The only cross-goroutine field is
// state; the rings are owned by whichever goroutine holds the pin.
type Slot struct {
	// state packs (epoch << 1) | pinned. Claimed unpinned→pinned by CAS in
	// Pin, released by a plain store in Unpin. Padded so advance scans do
	// not false-share with neighbouring slots' claims.
	state atomic.Uint64
	_     [atomicx.CacheLine - 8]byte

	d       *Domain
	rings   [numRings]ring
	pending int   // objects across all rings awaiting recycle
	retires int64 // retires since the last advance attempt
	// Tail pad to a 256-byte slot (TestSlotPadding pins the arithmetic):
	// 64 (state line) + 8 + 128 + 8 + 8 = 216 owner bytes.
	_ [40]byte
}

type block struct {
	slots [blockSlots]Slot
	next  atomic.Pointer[block]
}

// Domain is an independent reclamation domain. All structures of one trie
// share one Domain (cross-structure pointers — e.g. a PredNode holding an
// RU-ALL cell — then need no cross-domain reasoning).
type Domain struct {
	epoch atomic.Uint64
	_     [atomicx.CacheLine - 8]byte
	head  atomic.Pointer[block]

	// events, when non-nil, receives one obs.KindEpochAdvance trace event
	// per successful Advance (set once via SetEvents, before concurrent
	// use). Advances are amortized — one attempt per advanceEvery retires
	// per slot — so the publish cost never rides the retire path.
	events  *obs.Ring
	evShard int32
}

// SetEvents routes this domain's successful epoch advances to ring, tagged
// with shard. Install before concurrent use (the fields are plain).
func (d *Domain) SetEvents(ring *obs.Ring, shard int32) {
	d.events = ring
	d.evShard = shard
}

// NewDomain returns a Domain with one slot block.
func NewDomain() *Domain {
	d := &Domain{}
	d.epoch.Store(epochBase)
	d.head.Store(d.newBlock())
	return d
}

func (d *Domain) newBlock() *block {
	b := &block{}
	for i := range b.slots {
		b.slots[i].d = d
	}
	return b
}

// Pin claims a slot, publishes the current epoch in it, and returns it.
// Every trie operation that may traverse or retire pooled objects runs
// between Pin and Unpin. Lock-free: a full probe miss appends a fresh
// block, so Pin never waits on another goroutine's progress.
func (d *Domain) Pin() *Slot {
	// Random probe start spreads concurrent pinners across the block.
	start := int(randv2.Uint64() % blockSlots)
	for b := d.head.Load(); ; {
		for i := 0; i < blockSlots; i++ {
			s := &b.slots[(start+i)%blockSlots]
			st := s.state.Load()
			if st&1 != 0 {
				continue
			}
			e := d.epoch.Load()
			if !s.state.CompareAndSwap(st, e<<1|1) {
				continue
			}
			// Refresh until the published epoch is current, so a stalled
			// claim cannot park the domain at an old epoch.
			for {
				cur := d.epoch.Load()
				if cur == e {
					break
				}
				e = cur
				s.state.Store(e<<1 | 1)
			}
			if s.pending > 0 {
				s.flush(e)
			}
			return s
		}
		next := b.next.Load()
		if next == nil {
			nb := d.newBlock()
			e := d.epoch.Load()
			nb.slots[0].state.Store(e<<1 | 1)
			if b.next.CompareAndSwap(nil, nb) {
				return &nb.slots[0]
			}
			next = b.next.Load()
		}
		b = next
	}
}

// Unpin releases the slot. The slot keeps its last epoch; its limbo rings
// stay queued until a later pin of the same slot flushes them.
func (s *Slot) Unpin() {
	s.state.Store(s.state.Load() &^ 1)
}

// Epoch returns the domain's current global epoch (introspection, tests).
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

// Retire queues obj for recycling after the grace period. The caller must
// hold the pin on s and must have already made obj unreachable (won the
// unique unlink CAS). Amortized O(1); every advanceEvery retires it
// attempts one global epoch advance.
//
// The ring is tagged with the CURRENT global epoch, not the slot's pinned
// epoch: the tag must be ≥ the epoch at which the unlink happened, and the
// slot's published epoch may lag the global one (it is deliberately frozen
// for the whole pin — refreshing it mid-pin would stop this operation's
// earlier-acquired references from blocking the advance that guards them).
func (s *Slot) Retire(obj Recyclable) {
	e := s.d.epoch.Load()
	r := &s.rings[e%numRings]
	if r.epoch != e {
		// The ring last held an epoch ≡ e (mod numRings) and < e, i.e.
		// ≤ e−numRings: always past grace.
		s.recycleRing(r)
		r.epoch = e
	}
	r.objs = append(r.objs, obj)
	s.pending++
	s.retires++
	if s.retires >= advanceEvery {
		s.retires = 0
		s.d.Advance()
	}
}

// flush recycles every ring whose grace period has passed: objects retired
// at ring.epoch are safe once the global epoch reached ring.epoch+graceEpochs.
// Owner-only.
func (s *Slot) flush(global uint64) {
	for i := range s.rings {
		r := &s.rings[i]
		if len(r.objs) > 0 && r.epoch+graceEpochs <= global {
			s.recycleRing(r)
		}
	}
}

func (s *Slot) recycleRing(r *ring) {
	for i, obj := range r.objs {
		obj.Recycle()
		r.objs[i] = nil
	}
	s.pending -= len(r.objs)
	r.objs = r.objs[:0]
}

// Advance attempts one global epoch advance: e → e+1 iff every pinned slot
// has published e. Returns whether the epoch moved. Safe to call from any
// goroutine; exported for tests and metrics.
func (d *Domain) Advance() bool {
	e := d.epoch.Load()
	for b := d.head.Load(); b != nil; b = b.next.Load() {
		for i := range b.slots {
			st := b.slots[i].state.Load()
			if st&1 != 0 && st>>1 != e {
				return false
			}
		}
	}
	if !d.epoch.CompareAndSwap(e, e+1) {
		return false
	}
	if d.events != nil {
		d.events.Publish(obs.KindEpochAdvance, d.evShard, int64(e+1))
	}
	return true
}
