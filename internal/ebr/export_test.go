package ebr

// FlushForTest runs the owner-side limbo flush against the current global
// epoch. Tests only, and only while no other goroutine holds the slot.
func (s *Slot) FlushForTest() { s.flush(s.d.epoch.Load()) }

// PendingForTest reports the slot's queued-but-unrecycled object count.
func (s *Slot) PendingForTest() int { return s.pending }

// PinnedEpochForTest returns (epoch, pinned) from the slot's state word.
func (s *Slot) PinnedEpochForTest() (uint64, bool) {
	st := s.state.Load()
	return st >> 1, st&1 != 0
}
