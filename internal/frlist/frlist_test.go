package frlist_test

import (
	"sync"
	"testing"

	"repro/internal/frlist"
	"repro/internal/settest"
)

func factory(u int64) (settest.Set, error) { return frlist.New(u) }

func TestSequentialConformance(t *testing.T) { settest.RunSequential(t, factory, 64) }
func TestEdgeCases(t *testing.T)             { settest.RunEdgeCases(t, factory, 32) }
func TestConcurrent(t *testing.T)            { settest.RunConcurrent(t, factory, 128, 8, 600) }

func TestNewValidation(t *testing.T) {
	if _, err := frlist.New(1); err == nil {
		t.Error("New(1) should fail")
	}
	l, err := frlist.New(64)
	if err != nil {
		t.Fatal(err)
	}
	if l.U() != 64 {
		t.Errorf("U = %d, want 64", l.U())
	}
}

func TestLen(t *testing.T) {
	l, err := frlist.New(32)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{9, 1, 5, 5} {
		l.Insert(k)
	}
	if got := l.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	l.Delete(5)
	l.Delete(5)
	if got := l.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

// TestConcurrentSameKeyChurn: the flag/mark/backlink dance must survive
// insert-delete collisions on one key.
func TestConcurrentSameKeyChurn(t *testing.T) {
	l, err := frlist.New(16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			l.Insert(7)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			l.Delete(7)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			l.Search(7)
			l.Predecessor(9)
		}
	}()
	wg.Wait()
	l.Insert(7)
	if !l.Search(7) || l.Len() != 1 {
		t.Fatalf("after churn: Search=%v Len=%d", l.Search(7), l.Len())
	}
	if got := l.Predecessor(9); got != 7 {
		t.Fatalf("Predecessor(9) = %d, want 7", got)
	}
	l.Delete(7)
	if l.Search(7) || l.Len() != 0 {
		t.Fatalf("after drain: Search=%v Len=%d", l.Search(7), l.Len())
	}
}

// TestConcurrentNeighborDeletes: deleting adjacent keys concurrently
// exercises flag contention on shared predecessors.
func TestConcurrentNeighborDeletes(t *testing.T) {
	for round := 0; round < 100; round++ {
		l, err := frlist.New(16)
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < 8; k++ {
			l.Insert(k)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for k := int64(0); k < 8; k++ {
			wg.Add(1)
			go func(key int64) {
				defer wg.Done()
				<-start
				l.Delete(key)
			}(k)
		}
		close(start)
		wg.Wait()
		if got := l.Len(); got != 0 {
			t.Fatalf("round %d: Len = %d after deleting everything", round, got)
		}
		if got := l.Predecessor(15); got != -1 {
			t.Fatalf("round %d: Predecessor(15) = %d, want -1", round, got)
		}
	}
}

// TestStableFloorUnderChurn mirrors the trie test: churn above the floor
// never hides it.
func TestStableFloorUnderChurn(t *testing.T) {
	l, err := frlist.New(64)
	if err != nil {
		t.Fatal(err)
	}
	l.Insert(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				l.Insert(40)
				l.Delete(40)
			}
		}
	}()
	for i := 0; i < 5000; i++ {
		if got := l.Predecessor(10); got != 2 {
			t.Errorf("Predecessor(10) = %d, want 2", got)
			break
		}
	}
	close(stop)
	wg.Wait()
}
