// Package frlist implements the lock-free linked list of Fomitchev and
// Ruppert ("Lock-free linked lists and skip lists", PODC 2004) — reference
// [28] of the paper, cited as the list implementation with the best
// amortized step complexity (O(L(op) + ċ(op))) and the design the paper's
// own announcement lists descend from.
//
// Mechanics reproduced faithfully:
//
//   - each node's successor reference carries two bits: MARKED (this node
//     is logically deleted) and FLAGGED (the successor is pinned because it
//     is about to be deleted);
//   - a deleter first FLAGS the predecessor's reference, then sets the
//     victim's BACKLINK to the predecessor, MARKS the victim, and finally
//     unlinks it (removing the flag);
//   - operations that bump into a flag help that deletion finish, and
//     recover after helping by walking BACKLINKS instead of restarting from
//     the head — the source of the amortized bound.
//
// The list doubles as a dynamic set with predecessor queries, so it plugs
// into the shared conformance suite and serves as the O(n) baseline the
// paper's O(log u) trie is measured against.
package frlist

import (
	"fmt"
	"math"
	"sync/atomic"
)

// node is one list cell. succ is the marked/flagged successor reference;
// backlink points to the node's predecessor at deletion time.
type node struct {
	key      int64
	succ     atomic.Pointer[succRef]
	backlink atomic.Pointer[node]
}

// succRef bundles the successor pointer with the mark and flag bits; it is
// immutable and swapped whole by CAS (the Go rendering of a tagged word).
type succRef struct {
	next    *node
	marked  bool
	flagged bool
}

// List is a lock-free sorted linked list over int64 keys in [0, u). Safe
// for concurrent use.
type List struct {
	head *node
	tail *node
	u    int64
}

// New returns an empty list for keys {0,…,u−1}.
func New(u int64) (*List, error) {
	if u < 2 {
		return nil, fmt.Errorf("frlist: universe size %d, need at least 2", u)
	}
	head := &node{key: math.MinInt64}
	tail := &node{key: math.MaxInt64}
	head.succ.Store(&succRef{next: tail})
	tail.succ.Store(&succRef{})
	return &List{head: head, tail: tail, u: u}, nil
}

// U returns the universe size.
func (l *List) U() int64 { return l.u }

// searchFrom returns adjacent nodes (curr, next) with curr.key ≤ k <
// next.key, starting at start, helping finish deletions of marked nodes it
// passes (Fomitchev–Ruppert SearchFrom).
func (l *List) searchFrom(k int64, start *node) (*node, *node) {
	curr := start
	next := curr.succ.Load().next
	for next.key <= k {
		// Skip over nodes whose successor is marked (they are being
		// deleted): help unlink before stepping.
		for {
			nr := next.succ.Load()
			if !nr.marked {
				break
			}
			l.tryMark(next) // ensure fully marked (idempotent)
			l.helpMarked(curr, next)
			next = curr.succ.Load().next
			if next.key > k {
				return curr, next
			}
		}
		if next.key <= k {
			curr = next
			next = curr.succ.Load().next
		}
	}
	return curr, next
}

// Search reports membership of x.
func (l *List) Search(x int64) bool {
	curr, _ := l.searchFrom(x, l.head)
	return curr.key == x && !curr.succ.Load().marked
}

// Insert adds x; no-op if present. Lock-free.
func (l *List) Insert(x int64) {
	prev, next := l.searchFrom(x, l.head)
	for {
		if prev.key == x {
			return // already present
		}
		pr := prev.succ.Load()
		switch {
		case pr.flagged:
			// The successor is being deleted; help, then retry around the
			// same neighborhood.
			l.helpFlagged(prev, pr.next)
		case pr.marked:
			// prev itself was deleted under us: CASing its reference would
			// hang the new node off a dead branch. Back up first.
			for prev.succ.Load().marked {
				b := prev.backlink.Load()
				if b == nil {
					prev = l.head
					break
				}
				prev = b
			}
		case pr.next != next:
			// The window moved between search and load; re-search below.
		default:
			n := &node{key: x}
			n.succ.Store(&succRef{next: next})
			if prev.succ.CompareAndSwap(pr, &succRef{next: n}) {
				return
			}
			// CAS failed: the neighborhood changed. If prev got marked,
			// back up along backlinks (the FR recovery that avoids
			// restarting from the head).
			pr = prev.succ.Load()
			if pr.flagged {
				l.helpFlagged(prev, pr.next)
			}
			for prev.succ.Load().marked {
				b := prev.backlink.Load()
				if b == nil {
					prev = l.head
					break
				}
				prev = b
			}
		}
		prev, next = l.searchFrom(x, prev)
	}
}

// Delete removes x; no-op if absent. Lock-free.
func (l *List) Delete(x int64) {
	prev, _ := l.searchFrom(x-1, l.head)
	for {
		next := prev.succ.Load().next
		if next.key != x {
			return // absent
		}
		target, flagged := l.tryFlag(prev, next)
		if flagged {
			l.helpFlagged(target, next)
			return
		}
		if target == nil {
			return // node vanished while flagging
		}
		prev = target
	}
}

// tryFlag attempts to set the flag on prev's reference to target. It
// returns (pred, true) when the reference is flagged (by us or a helper)
// with pred being the flagging predecessor, or (pred, false) to retry from
// pred, or (nil, false) when target is no longer reachable.
func (l *List) tryFlag(prev, target *node) (*node, bool) {
	for {
		pr := prev.succ.Load()
		if pr.next == target && pr.flagged {
			return prev, true // someone else flagged it
		}
		if pr.next == target && !pr.marked {
			if prev.succ.CompareAndSwap(pr, &succRef{next: target, flagged: true}) {
				return prev, true
			}
			continue // re-examine
		}
		// prev no longer points cleanly at target: if prev is marked,
		// back up; then re-search for target's predecessor.
		for prev.succ.Load().marked {
			b := prev.backlink.Load()
			if b == nil {
				prev = l.head
				break
			}
			prev = b
		}
		var next *node
		prev, next = l.searchFrom(target.key-1, prev)
		if next != target {
			return nil, false // target already deleted
		}
	}
}

// helpFlagged completes the deletion pinned by prev's flag on del: set the
// backlink, mark, unlink.
func (l *List) helpFlagged(prev, del *node) {
	del.backlink.Store(prev)
	if !del.succ.Load().marked {
		l.tryMark(del)
	}
	l.helpMarked(prev, del)
}

// tryMark sets del's mark bit, helping any flagged successor first.
func (l *List) tryMark(del *node) {
	for {
		sr := del.succ.Load()
		if sr.marked {
			return
		}
		if sr.flagged {
			l.helpFlagged(del, sr.next)
			continue
		}
		if del.succ.CompareAndSwap(sr, &succRef{next: sr.next, marked: true}) {
			return
		}
	}
}

// helpMarked physically unlinks the marked del from prev, clearing the
// flag. Unlinking is always safe: del is logically deleted, and the new
// reference preserves prev's own mark bit so a deleted predecessor cannot
// be resurrected.
func (l *List) helpMarked(prev, del *node) {
	next := del.succ.Load().next
	for {
		pr := prev.succ.Load()
		if pr.next != del {
			return // already unlinked
		}
		if prev.succ.CompareAndSwap(pr, &succRef{next: next, marked: pr.marked}) {
			return
		}
	}
}

// Predecessor returns the largest key smaller than y, or −1.
func (l *List) Predecessor(y int64) int64 {
	curr, _ := l.searchFrom(y-1, l.head)
	// Walk back over logically deleted nodes: a marked curr may have been
	// deleted before we arrived; its backlink chain leads to live ground.
	for curr != l.head && curr.succ.Load().marked {
		b := curr.backlink.Load()
		if b == nil {
			break
		}
		curr = b
	}
	if curr == l.head {
		return -1
	}
	return curr.key
}

// Len counts live nodes; O(n), for tests.
func (l *List) Len() int {
	n := 0
	for cur := l.head.succ.Load().next; cur != l.tail; cur = cur.succ.Load().next {
		if !cur.succ.Load().marked {
			n++
		}
	}
	return n
}
