// Package adapt is the per-shard adaptive controller that decides, at
// runtime, whether a shard's updates should publish through the
// flat-combining layer (internal/combine) or run the direct per-op path.
// PR 3 measured both regimes: combining wins 1.3–2.1× when publishers
// cluster on a shard (average drained batch 6.8–16 ops on this host's cb1
// sweep) and costs 0.65–0.9× when they spread thin (batches degenerate to
// size 1 and the publication handoff is pure overhead). Which regime a
// shard is in is a property of the workload, not the construction site, so
// the controller samples cheap per-shard signals and flips an atomic mode
// word the publication path reads on every operation.
//
// # Signals
//
// The controller reduces its raw inputs to ONE contention estimate: the
// batch size a combining round would drain right now.
//
//   - In combining mode the estimate is observed directly: the EWMA of
//     ops-drained-per-round (Sample.Batched / Sample.Rounds deltas), the
//     exact quantity the cb1 experiment showed separating the win and
//     loss regimes (≥ 6.8 clustered, ~1 thin).
//   - In direct mode no rounds run, so the estimate is inferred: the
//     number of concurrent publishers visible at the sample instant —
//     max(announcement-list length, in-flight updates) + 1 for the
//     sampling operation itself. Each announced or in-flight peer is an
//     op a round would have drained.
//
// Two auxiliary signals guard the flip decisions: the combiner-election
// CAS-failure rate (failed elections prove publishers are clustering even
// while measured batches are small, e.g. immediately after enabling) and
// the retraction rate (submissions that outwaited a busy combiner and
// escaped to the direct path — direct evidence the handoff is hurting).
//
// # Hysteresis and dwell
//
// The mode flips up when the estimate's EWMA reaches Enable and down when
// it falls to Disable, with Enable > Disable so an estimate wandering
// inside the band flips nothing. A flip also requires MinDwell samples in
// the current mode, so a workload oscillating faster than the sampling
// cadence settles into whichever mode it entered instead of thrashing
// through the (costly, cache-cold) transitions.
//
// # Safety across flips
//
// The mode word is advisory routing, not synchronization: every op still
// applies through the combine-layer slot protocol or the core per-op
// path, both of which are safe concurrently against each other (a
// retraction already runs the per-op path while a round is in flight).
// Flipping the word mid-operation therefore strands nothing — see
// DESIGN.md §Adaptive combining for the disable-drain argument.
package adapt

import (
	"sync/atomic"
	"time"

	"repro/internal/atomicx"
	"repro/internal/obs"
)

// Default thresholds, tuned from the cb1/ad1 trajectories
// (BENCH_combine.json, BENCH_adaptive.json): clustered workloads drain
// 6.8–16 ops per round and park 8+ concurrent publishers per shard, while
// thin-spread shards see 0–3-peer preemption bursts. The enable side is
// deliberately conservative — a FALSE enable is expensive to detect on a
// single-P host, because once combining starts, the publication waiting
// itself inflates observed batch sizes (the ad1 probe measured 12-op
// "batches" on a thin-spread shard that combining was slowing down), so
// the batch-size disable cannot be relied on to undo a bad enable there.
const (
	// DefaultSampleEvery is the publication-op cadence between signal
	// samples. 128 keeps the sampling cost (two counter snapshots and an
	// O(announced) list length read) under 1% of ops while still taking
	// hundreds of samples over a benchmark-scale run.
	DefaultSampleEvery = 128
	// DefaultAlpha is the EWMA weight of the newest observation; 0.4
	// needs several consecutive high readings before a flip, so a lone
	// preemption burst on a thin shard (one sample of 2–3 visible peers)
	// cannot enable on its own.
	DefaultAlpha = 0.4
	// DefaultEnable is the contention estimate at which a direct-mode
	// shard enables combining: a SUSTAINED ~3+ concurrent publishers
	// (estimate ≥ 4) is unambiguous clustering — cb1's win regime parks
	// 8–16 — while thin-spread preemption noise stays well below it.
	DefaultEnable = 4.0
	// DefaultDisable is the batch-size EWMA at which a combining shard
	// gives up: below 1.4 ops per round the handoff amortizes nothing
	// (cb1's loss regime), while real clustering measures ≥ 6.8.
	DefaultDisable = 1.4
	// DefaultRetractDisable is the retraction-rate disable trigger: when
	// half the would-be-combined submissions outwait the spin budget and
	// escape, the slots are a queue in front of a path ops end up taking
	// anyway.
	DefaultRetractDisable = 0.5
	// DefaultMinDwell is the minimum samples between flips; 4 samples at
	// the default cadence is ~512 ops of dwell per shard.
	DefaultMinDwell = 4
	// DefaultThroughputEnable is the secondary-enable collapse factor: a
	// direct-mode shard whose measured ops/sec EWMA has fallen to half of
	// the best throughput it achieved in direct mode is being slowed by
	// something the peer-count estimate can miss (cache-line contention
	// between publishers on different Ps shows up as latency, not as
	// announcement-list length). Half is far outside run-to-run noise on
	// the ad1/cb1 sweeps (≤ 10%), so the signal cannot fire on jitter.
	DefaultThroughputEnable = 0.5
)

// Config sets the controller's thresholds. The zero value of any field
// selects its default, so Config{} is the tuned configuration.
type Config struct {
	// SampleEvery is the number of publication ops between signal samples.
	SampleEvery int64
	// Alpha is the EWMA weight of the newest observation, in (0, 1].
	Alpha float64
	// Enable is the contention-estimate EWMA at or above which a
	// direct-mode shard switches to combining.
	Enable float64
	// Disable is the estimate at or below which a combining shard
	// switches back to direct. Must stay below Enable; the gap is the
	// hysteresis band. An inverted band (Disable ≥ Enable, possible when
	// only Enable is set and falls under the default Disable) is clamped
	// to Disable = Enable/2 so hysteresis always exists — the public
	// facade validates and errors instead (WithAdaptiveCombining);
	// direct internal callers get the documented clamp.
	Disable float64
	// RetractDisable is the retraction-rate (retracted / submitted)
	// threshold that disables combining regardless of the batch EWMA.
	RetractDisable float64
	// MinDwell is the minimum number of samples a shard stays in a mode
	// before the controller may flip it again.
	MinDwell int64
	// ThroughputEnable is the secondary-enable factor: a direct-mode
	// shard enables combining when its ops/sec EWMA falls to this
	// fraction of its best direct-mode throughput AND the contention
	// estimate shows concurrent publishers (above the Disable floor).
	// The signal only fires when samples carry Ops/Nanos readings — a
	// reader that leaves them zero keeps the controller on the
	// peer-count estimate alone.
	ThroughputEnable float64
	// StartCombining selects the initial mode (default: direct).
	StartCombining bool
}

// withDefaults fills zero fields with the tuned defaults.
func (c Config) withDefaults() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.Enable <= 0 {
		c.Enable = DefaultEnable
	}
	if c.Disable <= 0 {
		c.Disable = DefaultDisable
	}
	if c.Disable >= c.Enable {
		c.Disable = c.Enable / 2
	}
	if c.RetractDisable <= 0 {
		c.RetractDisable = DefaultRetractDisable
	}
	if c.MinDwell <= 0 {
		c.MinDwell = DefaultMinDwell
	}
	if c.ThroughputEnable <= 0 || c.ThroughputEnable >= 1 {
		c.ThroughputEnable = DefaultThroughputEnable
	}
	return c
}

// Sample is one reading of a shard's raw signals. The counter fields are
// CUMULATIVE (the controller differences consecutive samples itself);
// AnnLen and Pending are instantaneous.
type Sample struct {
	// Rounds is the shard combiner's cumulative drained-round count.
	Rounds int64
	// Batched is the cumulative count of ops drained inside rounds.
	Batched int64
	// Retracts is the cumulative count of submissions that outwaited a
	// busy combiner and escaped to the direct path.
	Retracts int64
	// ElectFails is the cumulative count of failed combiner-election
	// CASes.
	ElectFails int64
	// AnnLen is the shard's current announcement-list (U-ALL) length —
	// updates announced and not yet retired, i.e. concurrent publishers
	// parked mid-operation.
	AnnLen int64
	// Pending is the shard's current in-flight direct update count (0
	// when the caller has no such counter; the controller uses
	// max(AnnLen, Pending)).
	Pending int64
	// Ops is the cumulative publication-op count at the sample instant
	// and Nanos the cumulative nanoseconds since the controller started;
	// together they give the throughput signal its per-interval ops/sec.
	// Leaving both zero (a reader without timing) keeps the throughput
	// signal inert — Tick fills them itself on the live path.
	Ops   int64
	Nanos int64
}

// Mode word values.
const (
	modeDirect uint32 = iota
	modeCombining
)

// Controller decides one shard's publication mode. Create with New; the
// publication path calls Tick once per op and routes on Combining().
//
// The decision state (EWMA, dwell, previous sample) is guarded by the
// sampling word: Tick admits one sampler at a time via CAS, so Step runs
// exclusively even though the fields are plain. Tests drive Step directly
// with synthetic samples — the decision function is deterministic, so
// transitions, hysteresis bands and dwell timing assert exactly with no
// sleeps and no real contention.
type Controller struct {
	cfg Config
	// read is the live signal reader (nil: Tick never samples). It
	// receives the current mode so it can skip signals that mode does
	// not consult — in combining mode the estimate comes from the
	// counter deltas alone, so there is no reason to walk the
	// announcement list for AnnLen. The sampler is itself a publisher:
	// any work it does delays its own publication past the round being
	// drained, which is why a fully-subscribed k=1 convoy measures ~14–15
	// ops per round under sampling versus exactly 16 without (AD1's A/B
	// showed the throughput cost of that shrink is below host noise).
	read func(combining bool) Sample

	// mode is read on every publication op; padded so the hot-read word
	// never shares a line with the tick counter every op writes.
	mode atomic.Uint32
	_    [atomicx.CacheLine - 4]byte
	// ticks counts publication ops; every SampleEvery-th op samples.
	ticks atomicx.PadInt64
	// sampling admits one sampler at a time (0 free, 1 held).
	sampling atomic.Uint32
	_        [atomicx.CacheLine - 4]byte

	// Transition counters (monitoring; written only by the sampler or
	// ForceMode callers).
	enables  atomicx.PadInt64
	disables atomicx.PadInt64

	// Sampler-owned state, guarded by the sampling word.
	last  Sample
	ewma  float64
	dwell int64 // samples since the last flip
	// Throughput signal state (sampler-owned): tput is the ops/sec EWMA
	// over sample intervals, directPeak the best tput ever observed in
	// direct mode — the baseline a collapse is measured against.
	tput       float64
	directPeak float64
	// start anchors Tick's Nanos readings; set once in New.
	start time.Time

	// events, when non-nil, receives one trace event per mode flip,
	// carrying the signal values that justified the decision (set once via
	// SetEvents, before concurrent use). Flips are rare — dwell bounds them
	// to one per MinDwell samples — so the publish cost never rides the
	// publication path.
	events  *obs.Ring
	evShard int32
}

// SetEvents routes this controller's mode flips — obs.KindAdaptiveEnable
// and obs.KindAdaptiveDisable, with triggering signal values in the args —
// to ring, tagged with shard. Install before concurrent use (the fields
// are plain).
func (c *Controller) SetEvents(ring *obs.Ring, shard int32) {
	c.events = ring
	c.evShard = shard
}

// New returns a controller with cfg's thresholds (zero fields take the
// tuned defaults) reading live signals from read. read is called at most
// once per SampleEvery publication ops, from inside one publishing
// goroutine's Tick, with the mode current at the sample; it may leave
// fields the mode does not consult zero (AnnLen/Pending while combining).
func New(cfg Config, read func(combining bool) Sample) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, read: read, start: time.Now()}
	if cfg.StartCombining {
		c.mode.Store(modeCombining)
		// An optimistic start carries an optimistic estimate: the EWMA
		// begins at Enable so a genuinely clustered workload is not
		// disabled before its first rounds report, while a thin one pulls
		// the estimate to ~1 within a few samples and flips down.
		c.ewma = cfg.Enable
	} else {
		// A direct start assumes a solo publisher until observed
		// otherwise.
		c.ewma = 1
	}
	return c
}

// Combining reports the current publication mode. One atomic load; the
// publication path reads it on every op.
func (c *Controller) Combining() bool { return c.mode.Load() == modeCombining }

// Config returns the resolved (defaults-filled) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Transitions returns the cumulative enable and disable flip counts.
func (c *Controller) Transitions() (enables, disables int64) {
	return c.enables.Load(), c.disables.Load()
}

// Estimate returns the current contention-estimate EWMA. It reads
// sampler-owned state without the sampling word and is meant for
// quiescent inspection (tests, post-run reporting), not for concurrent
// monitoring.
func (c *Controller) Estimate() float64 { return c.ewma }

// Throughput returns the ops/sec EWMA and the best direct-mode value it
// has reached — the throughput-enable signal's inputs. Same quiescent-
// inspection caveat as Estimate.
func (c *Controller) Throughput() (ewma, directPeak float64) {
	return c.tput, c.directPeak
}

// Tick records one publication op and, every SampleEvery-th op, takes a
// signal sample and runs the flip decision. The publication path calls it
// before routing, so an op whose Tick flips the mode publishes under the
// new mode.
func (c *Controller) Tick() {
	if c.ticks.Add(1)%c.cfg.SampleEvery != 0 || c.read == nil {
		return
	}
	// One sampler at a time; a losing op just publishes, it is not the
	// sampler's job anyway.
	if !c.sampling.CompareAndSwap(0, 1) {
		return
	}
	s := c.read(c.Combining())
	// The timing pair is the controller's own, not the reader's: ticks
	// already counts this shard's publication ops, and the wall clock
	// anchors at New, so every reader gets the throughput signal without
	// carrying a clock.
	s.Ops = c.ticks.Load()
	s.Nanos = int64(time.Since(c.start))
	c.Step(s)
	c.sampling.Store(0)
}

// Step feeds one sample through the flip decision. Tick calls it under
// the sampling word; tests call it directly (single-goroutine) to drive
// the controller deterministically.
func (c *Controller) Step(s Sample) {
	combining := c.Combining()
	dRounds := s.Rounds - c.last.Rounds
	dBatched := s.Batched - c.last.Batched
	dRetracts := s.Retracts - c.last.Retracts
	dElect := s.ElectFails - c.last.ElectFails

	// One observation of the contention estimate (see the package
	// comment): measured batch size while combining, inferred from
	// visible concurrent publishers while direct. A combining sample with
	// no rounds and no retractions saw no publication traffic at all and
	// updates nothing.
	est, have := 0.0, false
	switch {
	case combining && dRounds > 0:
		est, have = float64(dBatched)/float64(dRounds), true
	case combining && dRetracts > 0:
		est, have = 1, true // every submission escaped solo
	case !combining:
		peers := s.AnnLen
		if s.Pending > peers {
			peers = s.Pending
		}
		est, have = float64(peers)+1, true
	}
	if have {
		c.ewma = c.cfg.Alpha*est + (1-c.cfg.Alpha)*c.ewma
	}

	// Throughput signal: ops/sec over the sample interval, EWMA-smoothed
	// with the same Alpha. Inert unless the sample carries a fresh timing
	// pair (both deltas positive), so synthetic tests opt in per sample
	// and a zero-filled reader never trips it.
	if dOps, dNanos := s.Ops-c.last.Ops, s.Nanos-c.last.Nanos; dOps > 0 && dNanos > 0 {
		inst := float64(dOps) / float64(dNanos) * 1e9
		if c.tput == 0 {
			c.tput = inst // first reading seeds the EWMA
		} else {
			c.tput = c.cfg.Alpha*inst + (1-c.cfg.Alpha)*c.tput
		}
		if !combining && c.tput > c.directPeak {
			c.directPeak = c.tput
		}
	}
	c.last = s

	if c.dwell++; c.dwell < c.cfg.MinDwell {
		return
	}
	switch {
	case !combining && (c.ewma >= c.cfg.Enable || c.throughputEnableWanted()):
		c.mode.Store(modeCombining)
		c.enables.Add(1)
		c.dwell = 0
		if c.events != nil {
			// Which signal fired: the primary estimate reaching Enable, or
			// the secondary throughput collapse (the two are not exclusive;
			// the flag records whether the flip NEEDED the secondary path).
			tputFired := int64(0)
			if c.ewma < c.cfg.Enable {
				tputFired = 1
			}
			c.events.Publish(obs.KindAdaptiveEnable, c.evShard,
				int64(c.ewma*1000), tputFired, int64(c.tput), int64(c.directPeak))
		}
	case combining && c.disableWanted(dRounds, dBatched, dRetracts, dElect):
		c.mode.Store(modeDirect)
		c.disables.Add(1)
		c.dwell = 0
		if c.events != nil {
			var rate float64
			if d := dBatched + dRetracts; d > 0 {
				rate = float64(dRetracts) / float64(d)
			}
			c.events.Publish(obs.KindAdaptiveDisable, c.evShard,
				int64(c.ewma*1000), int64(rate*1000), dRounds, dRetracts)
		}
	}
}

// throughputEnableWanted decides the secondary direct→combining flip: the
// measured ops/sec EWMA has collapsed to ThroughputEnable of the best
// direct-mode throughput AND the contention estimate sees concurrent
// publishers (strictly above the Disable floor — a solo shard that merely
// slowed down, e.g. because the host got busy, must not enable). This
// catches the regime the peer-count estimate is blind to on multicore:
// publishers on different Ps serializing on shared cache lines spend
// their time in coherence stalls, not parked on the announcement list.
func (c *Controller) throughputEnableWanted() bool {
	return c.directPeak > 0 &&
		c.tput <= c.cfg.ThroughputEnable*c.directPeak &&
		c.ewma > c.cfg.Disable
}

// disableWanted decides the combining→direct flip for one post-dwell
// sample. Retraction pressure disables unconditionally — ops escaping the
// slots after a full spin budget is direct evidence the handoff hurts.
// A low batch EWMA disables only while elections are UNcontended: a
// failed election CAS proves a concurrent publisher raced for the same
// round, so batches are about to form even if the measured average is
// still settling (e.g. in the first samples after an enable).
func (c *Controller) disableWanted(dRounds, dBatched, dRetracts, dElect int64) bool {
	if d := dBatched + dRetracts; d > 0 &&
		float64(dRetracts)/float64(d) >= c.cfg.RetractDisable {
		return true
	}
	return c.ewma <= c.cfg.Disable && dElect <= dRounds
}

// ForceMode overrides the mode word, bypassing thresholds, dwell and the
// transition counters. Test-only: the mid-flip stress suites use it to
// toggle a shard's mode inside a combining round. It deliberately touches
// nothing but the atomic word, so it is safe to call concurrently with a
// live sampler (which may immediately flip the mode back — that churn is
// exactly what the stress tests want).
func (c *Controller) ForceMode(combining bool) {
	if combining {
		c.mode.Store(modeCombining)
	} else {
		c.mode.Store(modeDirect)
	}
}
