package adapt

import "testing"

// testCfg is a small deterministic configuration used across the suite:
// hysteresis band [1.4, 2.5], two-sample dwell, EWMA half-weight.
func testCfg(dwell int64) Config {
	return Config{Alpha: 0.5, Enable: 2.5, Disable: 1.4, RetractDisable: 0.5,
		MinDwell: dwell, SampleEvery: 1}
}

// TestEnableDisableTrajectory drives one controller through a full
// enable→disable cycle with synthetic samples and asserts the exact step
// of each transition — the EWMA arithmetic is deterministic, so the flip
// points are too.
func TestEnableDisableTrajectory(t *testing.T) {
	c := New(testCfg(2), nil)
	if c.Combining() {
		t.Fatal("controller did not start direct")
	}
	if got := c.Estimate(); got != 1 {
		t.Fatalf("initial estimate = %v, want 1 (solo publisher)", got)
	}

	// Four visible peers: obs = 5. ewma: 1 → 3.0 → 4.0.
	c.Step(Sample{AnnLen: 4})
	if c.Combining() {
		t.Fatal("flipped up during dwell (sample 1 of MinDwell 2)")
	}
	c.Step(Sample{AnnLen: 4})
	if !c.Combining() {
		t.Fatalf("no enable at sample 2 with estimate %v ≥ 2.5", c.Estimate())
	}
	if e, d := c.Transitions(); e != 1 || d != 0 {
		t.Fatalf("transitions after enable = (%d, %d), want (1, 0)", e, d)
	}

	// Size-1 batches from here on (cumulative counters keep growing).
	// ewma: 4 → 2.5 → 1.75 → 1.375; dwell blocks nothing after sample 2,
	// so the flip lands exactly when the EWMA crosses 1.4.
	base := Sample{Rounds: 0, Batched: 0}
	for i, wantMode := range []bool{true, true, false} {
		base.Rounds += 10
		base.Batched += 10
		c.Step(base)
		if c.Combining() != wantMode {
			t.Fatalf("size-1 sample %d: Combining() = %v, want %v (estimate %v)",
				i+1, c.Combining(), wantMode, c.Estimate())
		}
	}
	if e, d := c.Transitions(); e != 1 || d != 1 {
		t.Fatalf("transitions after disable = (%d, %d), want (1, 1)", e, d)
	}
}

// TestHysteresisBandHolds: an estimate wandering strictly inside
// (Disable, Enable) flips nothing in either mode, no matter how long it
// stays there.
func TestHysteresisBandHolds(t *testing.T) {
	// Direct mode: one visible peer → obs 2, inside the band.
	c := New(testCfg(1), nil)
	for i := 0; i < 50; i++ {
		c.Step(Sample{AnnLen: 1})
		if c.Combining() {
			t.Fatalf("enabled at sample %d with estimate %v < 2.5", i+1, c.Estimate())
		}
	}

	// Combining mode: steady batches of 2, inside the band.
	cfg := testCfg(1)
	cfg.StartCombining = true
	c = New(cfg, nil)
	s := Sample{}
	for i := 0; i < 50; i++ {
		s.Rounds += 5
		s.Batched += 10
		c.Step(s)
		if !c.Combining() {
			t.Fatalf("disabled at sample %d with estimate %v > 1.4", i+1, c.Estimate())
		}
	}
	if e, d := c.Transitions(); e != 0 || d != 0 {
		t.Fatalf("transitions inside the band = (%d, %d), want (0, 0)", e, d)
	}
}

// TestDwellDelaysFlip pins the dwell timing: with MinDwell = 5, an
// estimate far past Enable from the first sample still flips exactly at
// sample 5, and the post-flip dwell restarts from zero.
func TestDwellDelaysFlip(t *testing.T) {
	c := New(testCfg(5), nil)
	for i := 1; i <= 4; i++ {
		c.Step(Sample{AnnLen: 15})
		if c.Combining() {
			t.Fatalf("flipped at sample %d, inside the 5-sample dwell", i)
		}
	}
	c.Step(Sample{AnnLen: 15})
	if !c.Combining() {
		t.Fatal("no flip at sample 5 = MinDwell")
	}
	// Hard disable evidence (pure retractions) still waits out the fresh
	// dwell window.
	s := c.last
	for i := 1; i <= 4; i++ {
		s.Retracts += 100
		c.Step(s)
		if !c.Combining() {
			t.Fatalf("disabled at post-flip sample %d, inside the restarted dwell", i)
		}
	}
	s.Retracts += 100
	c.Step(s)
	if c.Combining() {
		t.Fatal("no disable at post-flip sample 5 = MinDwell")
	}
}

// TestRetractRateDisables: heavy retraction pressure disables even while
// the batch EWMA is still well above Disable.
func TestRetractRateDisables(t *testing.T) {
	cfg := testCfg(1)
	cfg.StartCombining = true
	c := New(cfg, nil)
	// One round of 8 keeps the EWMA high; 20 retractions alongside put
	// the retract rate at 20/28 ≥ 0.5.
	c.Step(Sample{Rounds: 1, Batched: 8, Retracts: 20})
	if c.Combining() {
		t.Fatalf("retract rate 0.71 did not disable (estimate %v)", c.Estimate())
	}
	if got := c.Estimate(); got <= 1.4 {
		t.Fatalf("estimate = %v — the EWMA clause would have fired, the test proves nothing", got)
	}
}

// TestElectFailGuardHoldsCombining: a low batch EWMA does NOT disable
// while combiner elections are contended (dElect > dRounds — publishers
// are clustering, batches are about to form); the flip lands on the first
// quiet sample.
func TestElectFailGuardHoldsCombining(t *testing.T) {
	cfg := testCfg(1)
	cfg.StartCombining = true
	c := New(cfg, nil)
	s := Sample{}
	for i := 0; i < 10; i++ {
		s.Rounds += 2
		s.Batched += 2 // size-1 batches: EWMA sinks below Disable
		s.ElectFails += 5
		c.Step(s)
		if !c.Combining() {
			t.Fatalf("disabled at contested sample %d (estimate %v)", i+1, c.Estimate())
		}
	}
	if c.Estimate() > 1.4 {
		t.Fatalf("estimate = %v did not sink below Disable; guard untested", c.Estimate())
	}
	s.Rounds += 2
	s.Batched += 2 // elections quiet: dElect = 0
	c.Step(s)
	if c.Combining() {
		t.Fatal("quiet sample with estimate ≤ Disable did not disable")
	}
}

// TestThinSpreadDisablesWithinDwellBound is the deterministic form of the
// thin-spread regression: a shard that starts combining and observes only
// size-1 batches must flip to direct within max(MinDwell, decay) samples,
// where decay = 2 is how long the EWMA (α 0.5, from Enable 2.5) takes to
// cross Disable 1.4. With MinDwell 4 the dwell is the binding bound.
func TestThinSpreadDisablesWithinDwellBound(t *testing.T) {
	cfg := testCfg(4)
	cfg.StartCombining = true
	c := New(cfg, nil)
	s := Sample{}
	for i := int64(1); i <= 3; i++ {
		s.Rounds++
		s.Batched++
		c.Step(s)
		if !c.Combining() {
			t.Fatalf("disabled at sample %d, before the 4-sample dwell bound", i)
		}
	}
	s.Rounds++
	s.Batched++
	c.Step(s)
	if c.Combining() {
		t.Fatal("size-1 batches did not disable at the dwell bound (sample 4)")
	}
	if _, d := c.Transitions(); d != 1 {
		t.Fatalf("disables = %d, want 1", d)
	}
}

// TestTickSamplingCadence: Tick samples the live reader exactly every
// SampleEvery ops and routes the decision through Step.
func TestTickSamplingCadence(t *testing.T) {
	reads := 0
	cfg := testCfg(1)
	cfg.SampleEvery = 8
	c := New(cfg, func(combining bool) Sample {
		reads++
		if combining {
			return Sample{} // direct-mode signals not consulted (or read)
		}
		return Sample{AnnLen: 9}
	})
	for i := 1; i <= 7; i++ {
		c.Tick()
	}
	if reads != 0 || c.Combining() {
		t.Fatalf("sampled early: reads = %d, combining = %v after 7 ticks", reads, c.Combining())
	}
	c.Tick() // op 8: samples, obs 10 ≥ Enable, dwell 1 ≥ 1 → enable
	if reads != 1 {
		t.Fatalf("reads = %d after 8 ticks, want 1", reads)
	}
	if !c.Combining() {
		t.Fatal("8th tick's sample did not enable")
	}
	for i := 9; i <= 24; i++ {
		c.Tick()
	}
	if reads != 3 {
		t.Fatalf("reads = %d after 24 ticks, want 3", reads)
	}
}

// TestForceModeBypassesEverything: ForceMode flips the word regardless of
// thresholds and dwell, and bumps no transition counters.
func TestForceModeBypassesEverything(t *testing.T) {
	c := New(testCfg(100), nil)
	c.ForceMode(true)
	if !c.Combining() {
		t.Fatal("ForceMode(true) did not enable")
	}
	c.ForceMode(false)
	if c.Combining() {
		t.Fatal("ForceMode(false) did not disable")
	}
	if e, d := c.Transitions(); e != 0 || d != 0 {
		t.Fatalf("ForceMode bumped transitions (%d, %d)", e, d)
	}
}

// TestConfigDefaults pins the zero-value resolution and the band clamp.
func TestConfigDefaults(t *testing.T) {
	got := Config{}.withDefaults()
	want := Config{SampleEvery: DefaultSampleEvery, Alpha: DefaultAlpha,
		Enable: DefaultEnable, Disable: DefaultDisable,
		RetractDisable: DefaultRetractDisable, MinDwell: DefaultMinDwell,
		ThroughputEnable: DefaultThroughputEnable}
	if got != want {
		t.Fatalf("withDefaults() = %+v, want %+v", got, want)
	}
	// An inverted band is clamped, not honoured: Disable ends up strictly
	// below Enable so hysteresis always exists.
	inv := Config{Enable: 2, Disable: 5}.withDefaults()
	if inv.Disable >= inv.Enable {
		t.Fatalf("inverted band survived: Enable %v, Disable %v", inv.Enable, inv.Disable)
	}
}
