package adapt

import "testing"

// The throughput-enable signal is Step-injectable: tests feed synthetic
// Ops/Nanos pairs and assert the collapse detection exactly, with no
// clocks and no goroutines. The scenario each test builds: a direct-mode
// shard establishes a healthy throughput baseline, then (with mild
// contention visible) its measured ops/sec collapses — the multicore
// cache-contention regime the peer-count estimate cannot see.

// tputSample builds a direct-mode sample: n ops by t nanos cumulative,
// with peers concurrent publishers visible.
func tputSample(n, t, peers int64) Sample {
	return Sample{AnnLen: peers, Ops: n, Nanos: t}
}

func TestThroughputCollapseEnables(t *testing.T) {
	c := New(Config{MinDwell: 1}, nil)

	// Baseline: 5 intervals at 1000 ops per 1 µs (1e9 ops/sec), 2 peers
	// visible — contention above the Disable floor but far below Enable,
	// so the peer-count estimate alone never flips.
	for i := int64(1); i <= 5; i++ {
		c.Step(tputSample(i*1000, i*1000, 2))
		if c.Combining() {
			t.Fatalf("enabled during baseline at sample %d (estimate %.2f)", i, c.Estimate())
		}
	}
	ewma, peak := c.Throughput()
	if peak <= 0 || ewma <= 0 {
		t.Fatalf("baseline recorded no throughput: ewma %.0f peak %.0f", ewma, peak)
	}

	// Collapse: same op spacing now takes 100× longer per interval. The
	// EWMA needs a few readings to fall through the 0.5×peak floor.
	for i := int64(1); i <= 8; i++ {
		c.Step(tputSample(5000+i*1000, 5000+i*100000, 2))
		if c.Combining() {
			return // enabled on the collapse, as designed
		}
	}
	ewma, peak = c.Throughput()
	t.Fatalf("throughput collapse never enabled combining: ewma %.0f peak %.0f estimate %.2f",
		ewma, peak, c.Estimate())
}

// A solo shard that slows down (no concurrent publishers) must NOT
// enable: collapse without contention means the host got busy, and
// combining a solo publisher only adds handoff overhead.
func TestThroughputCollapseSoloDoesNotEnable(t *testing.T) {
	c := New(Config{MinDwell: 1}, nil)
	for i := int64(1); i <= 5; i++ {
		c.Step(tputSample(i*1000, i*1000, 0))
	}
	for i := int64(1); i <= 12; i++ {
		c.Step(tputSample(5000+i*1000, 5000+i*100000, 0))
		if c.Combining() {
			t.Fatalf("solo collapse enabled combining at sample %d", i)
		}
	}
}

// Samples without timing pairs leave the signal inert: the controller
// behaves exactly as before the signal existed.
func TestThroughputSignalInertWithoutTiming(t *testing.T) {
	c := New(Config{MinDwell: 1}, nil)
	for i := 0; i < 20; i++ {
		c.Step(Sample{AnnLen: 2})
	}
	if ewma, peak := c.Throughput(); ewma != 0 || peak != 0 {
		t.Fatalf("zero-timing samples moved the throughput state: ewma %.0f peak %.0f", ewma, peak)
	}
	if c.Combining() {
		t.Fatal("zero-timing samples enabled combining")
	}
}

// The dwell discipline applies to throughput enables too: a collapse
// observed before MinDwell samples have accumulated must wait.
func TestThroughputEnableRespectsDwell(t *testing.T) {
	c := New(Config{MinDwell: 6}, nil)
	// Establish a peak, then collapse hard on the very next samples; the
	// flip may not land before sample 6.
	c.Step(tputSample(1000, 1000, 2))
	for i := int64(1); i <= 3; i++ {
		c.Step(tputSample(1000+i*10, 1000+i*1000000, 2))
		if c.Combining() {
			t.Fatalf("enabled at sample %d, inside the dwell window", i+1)
		}
	}
}

// The primary peer-count enable still works untouched: a burst of
// visible publishers flips the mode with no timing data at all.
func TestPeerCountEnableStillPrimary(t *testing.T) {
	c := New(Config{MinDwell: 1}, nil)
	for i := 0; i < 10; i++ {
		c.Step(Sample{AnnLen: 8})
		if c.Combining() {
			return
		}
	}
	t.Fatalf("sustained 8-peer samples never enabled (estimate %.2f)", c.Estimate())
}
