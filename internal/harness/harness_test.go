package harness

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/locktrie"
	"repro/internal/workload"
)

func TestRunValidation(t *testing.T) {
	tr, err := core.New(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(tr, Config{Workers: 0, OpsPerWorker: 1, Mix: workload.MixReadHeavy,
		Dist: workload.Uniform{U: 64}}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := Run(tr, Config{Workers: 1, OpsPerWorker: 1, Mix: workload.Mix{},
		Dist: workload.Uniform{U: 64}}); err == nil {
		t.Error("invalid mix accepted")
	}
}

func TestRunCore(t *testing.T) {
	tr, err := core.New(256)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, Config{
		Workers:      4,
		OpsPerWorker: 2000,
		Mix:          workload.MixUpdateHeavy,
		Dist:         workload.Uniform{U: 256},
		Seed:         1,
		Prefill:      64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 8000 {
		t.Errorf("Ops = %d, want 8000", res.Ops)
	}
	if res.Throughput <= 0 {
		t.Error("non-positive throughput")
	}
	if !strings.Contains(res.String(), "ops/s") {
		t.Error("String() missing throughput")
	}
	if res.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Errorf("GoMaxProcs = %d, want %d", res.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
}

func TestRunWithStalls(t *testing.T) {
	tr, err := locktrie.New(128)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, Config{
		Workers:       2,
		OpsPerWorker:  50,
		Mix:           workload.MixUpdateOnly,
		Dist:          workload.Uniform{U: 128},
		Seed:          2,
		StallEvery:    10,
		StallDuration: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < 4*time.Millisecond {
		t.Errorf("stalls not applied: elapsed %v", res.Elapsed)
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("col1", "column2")
	tab.AddRow("a", 1.5)
	tab.AddRow("longer", 42)
	out := tab.String()
	if !strings.Contains(out, "col1") || !strings.Contains(out, "1.50") ||
		!strings.Contains(out, "longer") || !strings.Contains(out, "42") {
		t.Errorf("table output malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

// TestRunOpenLoopAccounting: with an instant synchronous submit, every
// offered arrival completes and the offered rate tracks the configured
// rate (loosely — short window, coarse sleeps).
func TestRunOpenLoopAccounting(t *testing.T) {
	var applied atomic.Int64
	res, err := RunOpenLoop(OpenLoopConfig{
		Workers:     4,
		Duration:    200 * time.Millisecond,
		RatePerSec:  2000,
		Mix:         workload.MixUpdateOnly,
		Dist:        workload.Uniform{U: 1 << 10},
		Seed:        1,
		MaxInFlight: 8,
	}, func(worker int, op workload.Op, done func()) {
		applied.Add(1)
		done()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.Completed != res.Offered {
		t.Fatalf("offered %d completed %d, want equal and non-zero", res.Offered, res.Completed)
	}
	if applied.Load() != res.Offered {
		t.Fatalf("submit called %d times for %d arrivals", applied.Load(), res.Offered)
	}
	// ~400 expected; accept a wide band (CI hosts sleep coarsely).
	if res.Offered < 100 || res.Offered > 1600 {
		t.Fatalf("offered %d for 2000/s over 200ms, outside sanity band", res.Offered)
	}
}

// TestRunOpenLoopSaturation: a slow server saturates — achieved
// completions stay bounded by the service rate, not the arrival rate,
// and the in-flight tail still drains (Completed == Offered after the
// drain barrier).
func TestRunOpenLoopSaturation(t *testing.T) {
	const serviceNs = 2 * time.Millisecond // capacity ≈ 500/s per worker
	res, err := RunOpenLoop(OpenLoopConfig{
		Workers:     1,
		Duration:    200 * time.Millisecond,
		RatePerSec:  100000, // 200× capacity
		Mix:         workload.MixUpdateOnly,
		Dist:        workload.Uniform{U: 1 << 10},
		Seed:        2,
		MaxInFlight: 2,
	}, func(worker int, op workload.Op, done func()) {
		go func() {
			time.Sleep(serviceNs)
			done()
		}()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Offered {
		t.Fatalf("drain incomplete: offered %d completed %d", res.Offered, res.Completed)
	}
	// 200ms at ~2ms/op with window 2 → low hundreds; far below the
	// 20000 arrivals an unsaturated run would offer.
	if res.Offered > 2000 {
		t.Fatalf("offered %d — window did not throttle the arrival loop", res.Offered)
	}
	if res.AchievedPerSec > 5000 {
		t.Fatalf("achieved %.0f/s exceeds plausible service capacity", res.AchievedPerSec)
	}
}

// TestRunOpenLoopValidation: zero rate/duration/workers are rejected.
func TestRunOpenLoopValidation(t *testing.T) {
	nop := func(int, workload.Op, func()) {}
	for _, cfg := range []OpenLoopConfig{
		{Workers: 0, Duration: time.Second, RatePerSec: 1, Mix: workload.MixUpdateOnly, Dist: workload.Uniform{U: 2}},
		{Workers: 1, Duration: 0, RatePerSec: 1, Mix: workload.MixUpdateOnly, Dist: workload.Uniform{U: 2}},
		{Workers: 1, Duration: time.Second, RatePerSec: 0, Mix: workload.MixUpdateOnly, Dist: workload.Uniform{U: 2}},
	} {
		if _, err := RunOpenLoop(cfg, nop); err == nil {
			t.Fatalf("config %+v accepted, want error", cfg)
		}
	}
}
