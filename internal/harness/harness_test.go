package harness

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/locktrie"
	"repro/internal/workload"
)

func TestRunValidation(t *testing.T) {
	tr, err := core.New(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(tr, Config{Workers: 0, OpsPerWorker: 1, Mix: workload.MixReadHeavy,
		Dist: workload.Uniform{U: 64}}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := Run(tr, Config{Workers: 1, OpsPerWorker: 1, Mix: workload.Mix{},
		Dist: workload.Uniform{U: 64}}); err == nil {
		t.Error("invalid mix accepted")
	}
}

func TestRunCore(t *testing.T) {
	tr, err := core.New(256)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, Config{
		Workers:      4,
		OpsPerWorker: 2000,
		Mix:          workload.MixUpdateHeavy,
		Dist:         workload.Uniform{U: 256},
		Seed:         1,
		Prefill:      64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 8000 {
		t.Errorf("Ops = %d, want 8000", res.Ops)
	}
	if res.Throughput <= 0 {
		t.Error("non-positive throughput")
	}
	if !strings.Contains(res.String(), "ops/s") {
		t.Error("String() missing throughput")
	}
	if res.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Errorf("GoMaxProcs = %d, want %d", res.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
}

func TestRunWithStalls(t *testing.T) {
	tr, err := locktrie.New(128)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, Config{
		Workers:       2,
		OpsPerWorker:  50,
		Mix:           workload.MixUpdateOnly,
		Dist:          workload.Uniform{U: 128},
		Seed:          2,
		StallEvery:    10,
		StallDuration: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < 4*time.Millisecond {
		t.Errorf("stalls not applied: elapsed %v", res.Elapsed)
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("col1", "column2")
	tab.AddRow("a", 1.5)
	tab.AddRow("longer", 42)
	out := tab.String()
	if !strings.Contains(out, "col1") || !strings.Contains(out, "1.50") ||
		!strings.Contains(out, "longer") || !strings.Contains(out, "42") {
		t.Errorf("table output malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}
