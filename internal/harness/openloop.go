package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
)

// OpenLoopConfig describes one open-loop measurement: Workers independent
// Poisson arrival generators offering RatePerSec operations per second in
// aggregate for Duration, each with at most MaxInFlight operations
// outstanding. Unlike the closed-loop Config, arrivals do not wait for
// completions — when the system under test falls behind, arrivals queue
// against the in-flight window instead of silently slowing the offered
// load, so the achieved completion rate measures capacity rather than
// echoing the arrival loop's politeness.
type OpenLoopConfig struct {
	Workers    int
	Duration   time.Duration
	RatePerSec float64 // aggregate across all workers
	Mix        workload.Mix
	Dist       workload.KeyDist
	// DistFor, when non-nil, overrides Dist per worker (as in Config).
	DistFor func(worker int) workload.KeyDist
	Seed    int64
	// MaxInFlight bounds each worker's outstanding operations (its client
	// window); 0 means 1, i.e. a fully synchronous client.
	MaxInFlight int
}

// OpenLoopResult is one open-loop measurement.
type OpenLoopResult struct {
	// Offered is the number of arrivals generated inside the window.
	Offered int64
	// Completed is the number of those whose done callback fired.
	Completed int64
	// Elapsed spans arrival start through the drain of the in-flight
	// tail (at most Workers×MaxInFlight operations past the deadline).
	Elapsed time.Duration
	// OfferedPerSec is Offered/Elapsed — under saturation this sags
	// below the configured rate because arrival loops stall on the
	// window, which is itself the saturation signal.
	OfferedPerSec float64
	// AchievedPerSec is Completed/Elapsed — the system's measured
	// completion capacity once OfferedPerSec exceeds it.
	AchievedPerSec float64
	GoMaxProcs     int
}

// String renders the result for reports.
func (r OpenLoopResult) String() string {
	return fmt.Sprintf("offered %d completed %d in %v (%.0f/s achieved)",
		r.Offered, r.Completed, r.Elapsed.Round(time.Microsecond), r.AchievedPerSec)
}

// RunOpenLoop drives submit with the configured arrival process. submit
// issues one operation asynchronously and must arrange for done to be
// called exactly once when the operation's response arrives (calling it
// inline is fine for a synchronous path). Each worker draws its own
// Poisson schedule at RatePerSec/Workers; an arrival whose window is full
// blocks the worker's arrival loop, and the missed arrivals burst out
// as soon as a slot frees (the schedule, not the service, owns the
// timeline). Generation stops at the wall-clock deadline; the in-flight
// tail is drained before returning.
func RunOpenLoop(cfg OpenLoopConfig, submit func(worker int, op workload.Op, done func())) (OpenLoopResult, error) {
	if cfg.Workers <= 0 || cfg.Duration <= 0 || cfg.RatePerSec <= 0 {
		return OpenLoopResult{}, fmt.Errorf("harness: workers=%d duration=%v rate=%.0f must be positive",
			cfg.Workers, cfg.Duration, cfg.RatePerSec)
	}
	if err := cfg.Mix.Validate(); err != nil {
		return OpenLoopResult{}, err
	}
	window := cfg.MaxInFlight
	if window <= 0 {
		window = 1
	}
	gens := make([]*workload.Generator, cfg.Workers)
	scheds := make([]*workload.PoissonSchedule, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		dist := cfg.Dist
		if cfg.DistFor != nil {
			dist = cfg.DistFor(w)
		}
		gen, err := workload.NewGenerator(cfg.Mix, dist, cfg.Seed+int64(w))
		if err != nil {
			return OpenLoopResult{}, err
		}
		gens[w] = gen
		// Offset the schedule seed stream from the op seed stream so the
		// arrival times and the op contents are independent draws.
		scheds[w] = workload.NewPoissonSchedule(cfg.RatePerSec/float64(cfg.Workers), cfg.Seed+int64(w)+7919)
	}

	var offered, completed atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int, gen *workload.Generator, sched *workload.PoissonSchedule) {
			defer wg.Done()
			<-start
			// sem is the client window: send = occupy a slot, receive (in
			// done) = free it.
			sem := make(chan struct{}, window)
			next := time.Now()
			deadline := next.Add(cfg.Duration)
			for {
				next = next.Add(sched.Next())
				now := time.Now()
				if now.After(deadline) {
					break
				}
				if d := next.Sub(now); d > 0 {
					time.Sleep(d)
				}
				op := gen.Next()
				sem <- struct{}{}
				offered.Add(1)
				submit(id, op, func() {
					completed.Add(1)
					<-sem
				})
			}
			// Drain: once every slot can be occupied, every done has fired.
			for i := 0; i < window; i++ {
				sem <- struct{}{}
			}
		}(w, gens[w], scheds[w])
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	r := OpenLoopResult{
		Offered:    offered.Load(),
		Completed:  completed.Load(),
		Elapsed:    elapsed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	r.OfferedPerSec = float64(r.Offered) / elapsed.Seconds()
	r.AchievedPerSec = float64(r.Completed) / elapsed.Seconds()
	return r, nil
}
