// Package harness runs concurrent workloads against any dynamic-set
// implementation and reports throughput and derived metrics. It powers the
// EXPERIMENTS.md sweeps (cmd/triebench) and the root-level benchmarks.
//
// The harness pre-generates one deterministic operation stream per worker,
// starts all workers on a barrier, runs for a fixed operation count, and
// reports wall-clock throughput. A stall injector can suspend a subset of
// workers mid-run to demonstrate lock-free progress (experiment C4).
package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/workload"
)

// Set is the common dynamic-set interface the harness drives.
type Set interface {
	Search(x int64) bool
	Insert(x int64)
	Delete(x int64)
	Predecessor(y int64) int64
}

// Config describes one measurement run.
type Config struct {
	// Workers is the number of concurrent goroutines.
	Workers int
	// OpsPerWorker is the number of operations each worker executes.
	OpsPerWorker int
	// Mix is the operation mix.
	Mix workload.Mix
	// Dist generates keys.
	Dist workload.KeyDist
	// DistFor, when non-nil, overrides Dist with a per-worker distribution
	// (e.g. disjoint workload.Bands for the sharding experiment S1).
	DistFor func(worker int) workload.KeyDist
	// Seed makes streams deterministic; worker i uses Seed+i.
	Seed int64
	// Prefill inserts keys 0,…,Prefill−1 before measuring.
	Prefill int64
	// StallEvery, when > 0, makes worker 0 sleep StallDuration after every
	// StallEvery operations — the stalled-process experiment (C4). With a
	// lock-free structure other workers keep committing; with a lock-based
	// one they stall behind the sleeper if it parks holding the lock.
	StallEvery    int
	StallDuration time.Duration
}

// Result is one measurement.
type Result struct {
	// Ops is the total number of operations executed.
	Ops int
	// Elapsed is the wall-clock duration of the measured phase.
	Elapsed time.Duration
	// Throughput is operations per second.
	Throughput float64
	// GoMaxProcs is runtime.GOMAXPROCS(0) captured during the measured
	// phase, so a result carries the parallelism it was taken under even
	// after a multi-P sweep has moved on to the next setting.
	GoMaxProcs int
}

// String renders the result for reports.
func (r Result) String() string {
	return fmt.Sprintf("%d ops in %v (%.0f ops/s)", r.Ops, r.Elapsed.Round(time.Microsecond), r.Throughput)
}

// Run executes the configured workload against s and returns the
// measurement.
func Run(s Set, cfg Config) (Result, error) {
	if cfg.Workers <= 0 || cfg.OpsPerWorker <= 0 {
		return Result{}, fmt.Errorf("harness: workers=%d opsPerWorker=%d must be positive",
			cfg.Workers, cfg.OpsPerWorker)
	}
	if err := cfg.Mix.Validate(); err != nil {
		return Result{}, err
	}
	// Prefill in shuffled order: sequential insertion order is a
	// pathological input for unbalanced-tree baselines (it degenerates the
	// EFRB BST to a list) and would skew comparisons with an artifact.
	if cfg.Prefill > 0 {
		keys := make([]int64, cfg.Prefill)
		for i := range keys {
			keys[i] = int64(i)
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		for _, k := range keys {
			s.Insert(k)
		}
	}
	// Pre-generate streams outside the measured region.
	streams := make([][]workload.Op, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		dist := cfg.Dist
		if cfg.DistFor != nil {
			dist = cfg.DistFor(w)
		}
		gen, err := workload.NewGenerator(cfg.Mix, dist, cfg.Seed+int64(w))
		if err != nil {
			return Result{}, err
		}
		streams[w] = gen.Fill(cfg.OpsPerWorker)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int, ops []workload.Op) {
			defer wg.Done()
			<-start
			for i, op := range ops {
				if cfg.StallEvery > 0 && id == 0 && i > 0 && i%cfg.StallEvery == 0 {
					time.Sleep(cfg.StallDuration)
				}
				ApplyOp(s, op)
			}
		}(w, streams[w])
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	total := cfg.Workers * cfg.OpsPerWorker
	return Result{
		Ops:        total,
		Elapsed:    elapsed,
		Throughput: float64(total) / elapsed.Seconds(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}, nil
}

// ApplyOp dispatches one generated operation to the set. Shared by the
// harness itself, the root-level benchmarks and cmd/triebench so a new
// workload.Op kind cannot be wired into one measurement path but not the
// others.
func ApplyOp(s Set, op workload.Op) {
	switch op.Kind {
	case workload.OpInsert:
		s.Insert(op.Key)
	case workload.OpDelete:
		s.Delete(op.Key)
	case workload.OpSearch:
		s.Search(op.Key)
	case workload.OpPredecessor:
		s.Predecessor(op.Key)
	}
}

// AbstainingSet is a dynamic set whose Predecessor may abstain — the
// relaxed trie's §4.1 contract.
type AbstainingSet interface {
	Search(x int64) bool
	Insert(x int64)
	Delete(x int64)
	Predecessor(y int64) (int64, bool)
}

// Collapse adapts an AbstainingSet to Set by dropping the abstention flag;
// measurements only time the call, they do not interpret the answer.
func Collapse(s AbstainingSet) Set { return collapsed{s} }

type collapsed struct{ AbstainingSet }

func (c collapsed) Predecessor(y int64) int64 {
	p, _ := c.AbstainingSet.Predecessor(y)
	return p
}

// Table is a minimal aligned-column printer for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := ""
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			s += fmt.Sprintf("%-*s", widths[i]+2, c)
		}
		return s + "\n"
	}
	out += line(t.header)
	for i, w := range widths {
		_ = i
		for j := 0; j < w; j++ {
			out += "-"
		}
		out += "  "
	}
	out += "\n"
	for _, row := range t.rows {
		out += line(row)
	}
	return out
}
