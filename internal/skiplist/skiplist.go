// Package skiplist implements a lock-free skip list with a Predecessor
// operation, in the style of Fomitchev–Ruppert / Herlihy–Shavit ([28] and
// [44] in the paper's related work): logical deletion via marked successor
// references at every level, with the bottom level authoritative.
//
// It is the "general-purpose ordered set" baseline for experiment C5: its
// expected O(log n) paths adapt to the set size rather than the universe,
// but Search costs O(log n) (the trie's is O(1)) and randomization makes
// its worst case linear.
package skiplist

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

const maxLevel = 24

// node is a skip-list tower. next[l] carries the Harris mark for level l.
type node struct {
	key  int64
	next []atomic.Pointer[ref]
}

type ref struct {
	next   *node
	marked bool
}

// List is a lock-free skip list over int64 keys in [0, u). Safe for
// concurrent use.
type List struct {
	head *node
	tail *node
	u    int64
	seed atomic.Uint64
}

// New returns an empty skip list for keys {0,…,u−1}. The seed makes tower
// heights deterministic per instance, for reproducible benchmarks.
func New(u int64, seed uint64) (*List, error) {
	if u < 2 {
		return nil, fmt.Errorf("skiplist: universe size %d, need at least 2", u)
	}
	head := &node{key: -1, next: make([]atomic.Pointer[ref], maxLevel)}
	tail := &node{key: 1 << 62, next: make([]atomic.Pointer[ref], maxLevel)}
	for l := 0; l < maxLevel; l++ {
		head.next[l].Store(&ref{next: tail})
	}
	s := &List{head: head, tail: tail, u: u}
	s.seed.Store(seed | 1)
	return s, nil
}

// U returns the universe size.
func (s *List) U() int64 { return s.u }

// randomLevel draws a geometric height from a splitmix64 step of the
// per-list seed; lock-free and allocation-free.
func (s *List) randomLevel() int {
	x := s.seed.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	lvl := bits.TrailingZeros64(x|1<<(maxLevel-1)) + 1
	if lvl > maxLevel {
		lvl = maxLevel
	}
	return lvl
}

// find returns the predecessors and successors of key at every level,
// unlinking marked nodes it passes (Harris find).
func (s *List) find(key int64) (preds, succs []*node) {
	preds = make([]*node, maxLevel)
	succs = make([]*node, maxLevel)
retry:
	for {
		pred := s.head
		for level := maxLevel - 1; level >= 0; level-- {
			predRef := pred.next[level].Load()
			cur := predRef.next
			for {
				curRef := cur.next[level].Load()
				for curRef != nil && curRef.marked {
					if !pred.next[level].CompareAndSwap(predRef, &ref{next: curRef.next}) {
						continue retry
					}
					predRef = pred.next[level].Load()
					if predRef.marked {
						continue retry
					}
					cur = predRef.next
					curRef = cur.next[level].Load()
				}
				if cur.key < key {
					pred, predRef = cur, curRef
					cur = curRef.next
				} else {
					break
				}
			}
			preds[level] = pred
			succs[level] = cur
		}
		return preds, succs
	}
}

// Search reports membership of x. Expected O(log n); wait-free traversal.
func (s *List) Search(x int64) bool {
	pred := s.head
	for level := maxLevel - 1; level >= 0; level-- {
		cur := pred.next[level].Load().next
		for cur.key < x {
			pred = cur
			cur = cur.next[level].Load().next
		}
		if cur.key == x {
			r := cur.next[0].Load()
			return r == nil || !r.marked
		}
	}
	return false
}

// Insert adds x; no-op if present. Lock-free.
func (s *List) Insert(x int64) {
	topLevel := s.randomLevel()
	for {
		preds, succs := s.find(x)
		if succs[0].key == x {
			return // already present (an in-progress delete counts as present until unlinked)
		}
		n := &node{key: x, next: make([]atomic.Pointer[ref], topLevel)}
		for l := 0; l < topLevel; l++ {
			n.next[l].Store(&ref{next: succs[l]})
		}
		predRef := preds[0].next[0].Load()
		if predRef.marked || predRef.next != succs[0] {
			continue
		}
		if !preds[0].next[0].CompareAndSwap(predRef, &ref{next: n}) {
			continue
		}
		// Link the upper levels best-effort; failures are repaired by find.
		for l := 1; l < topLevel; l++ {
			for {
				nr := n.next[l].Load()
				if nr.marked {
					return // concurrently deleted; stop linking
				}
				pr := preds[l].next[l].Load()
				if pr.marked || pr.next != succs[l] || nr.next != succs[l] {
					preds, succs = s.find(x)
					if succs[0] != n {
						return // deleted and replaced
					}
					if !n.next[l].CompareAndSwap(nr, &ref{next: succs[l]}) {
						return
					}
					continue
				}
				if preds[l].next[l].CompareAndSwap(pr, &ref{next: n}) {
					break
				}
			}
		}
		return
	}
}

// Delete removes x; no-op if absent. Lock-free.
func (s *List) Delete(x int64) {
	_, succs := s.find(x)
	if succs[0].key != x {
		return
	}
	victim := succs[0]
	// Mark from the top level down; level 0 is the linearization point.
	for l := len(victim.next) - 1; l >= 1; l-- {
		for {
			r := victim.next[l].Load()
			if r.marked {
				break
			}
			if victim.next[l].CompareAndSwap(r, &ref{next: r.next, marked: true}) {
				break
			}
		}
	}
	for {
		r := victim.next[0].Load()
		if r.marked {
			return // another delete won
		}
		if victim.next[0].CompareAndSwap(r, &ref{next: r.next, marked: true}) {
			s.find(x) // physically unlink
			return
		}
	}
}

// Predecessor returns the largest key smaller than y, or −1.
func (s *List) Predecessor(y int64) int64 {
	pred := s.head
	for level := maxLevel - 1; level >= 0; level-- {
		cur := pred.next[level].Load().next
		for cur.key < y {
			pred = cur
			cur = cur.next[level].Load().next
		}
	}
	if pred == s.head {
		return -1
	}
	return pred.key
}

// Len counts present keys; O(n), for tests.
func (s *List) Len() int {
	n := 0
	for cur := s.head.next[0].Load().next; cur != s.tail; {
		r := cur.next[0].Load()
		if !r.marked {
			n++
		}
		cur = r.next
	}
	return n
}
