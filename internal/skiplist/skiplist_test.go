package skiplist_test

import (
	"sync"
	"testing"

	"repro/internal/settest"
	"repro/internal/skiplist"
)

func factory(u int64) (settest.Set, error) { return skiplist.New(u, 42) }

func TestSequentialConformance(t *testing.T) { settest.RunSequential(t, factory, 64) }
func TestEdgeCases(t *testing.T)             { settest.RunEdgeCases(t, factory, 32) }
func TestConcurrent(t *testing.T)            { settest.RunConcurrent(t, factory, 256, 8, 1200) }

func TestNewValidation(t *testing.T) {
	if _, err := skiplist.New(1, 1); err == nil {
		t.Error("New(1) should fail")
	}
}

func TestLen(t *testing.T) {
	s, err := skiplist.New(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{5, 1, 9} {
		s.Insert(k)
	}
	s.Insert(5) // duplicate
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	s.Delete(1)
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

// TestConcurrentChurnOneKey: insert/delete churn on a single key with
// concurrent membership probes; final state must be exact.
func TestConcurrentChurnOneKey(t *testing.T) {
	s, err := skiplist.New(32, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			s.Insert(9)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			s.Delete(9)
		}
	}()
	wg.Wait()
	s.Insert(9)
	if !s.Search(9) || s.Len() != 1 {
		t.Fatalf("state after churn: Search=%v Len=%d", s.Search(9), s.Len())
	}
	s.Delete(9)
	if s.Search(9) || s.Len() != 0 {
		t.Fatalf("state after drain: Search=%v Len=%d", s.Search(9), s.Len())
	}
}

// TestPredecessorStableFloor: concurrent churn above the query never hides
// the stable floor key.
func TestPredecessorStableFloor(t *testing.T) {
	s, err := skiplist.New(64, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.Insert(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Insert(30)
				s.Delete(30)
			}
		}
	}()
	for i := 0; i < 10000; i++ {
		if got := s.Predecessor(10); got != 2 {
			t.Errorf("Predecessor(10) = %d, want 2", got)
			break
		}
	}
	close(stop)
	wg.Wait()
}
