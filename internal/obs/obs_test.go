package obs

import (
	"sync"
	"testing"
)

// TestCounterStripesSum: concurrent Adds with scattered hints must sum
// exactly — striping changes placement, never arithmetic.
func TestCounterStripesSum(t *testing.T) {
	var c Counter
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(int64(id*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("Counter.Load() = %d, want %d", got, workers*per)
	}
}

// TestCounterIncReturnsStripeValue: the sampling facades rely on Inc
// returning a per-stripe sequence — a fixed hint must count 1,2,3,….
func TestCounterIncReturnsStripeValue(t *testing.T) {
	var c Counter
	for i := int64(1); i <= 5; i++ {
		if got := c.Inc(42); got != i {
			t.Fatalf("Inc #%d on a fixed hint = %d, want %d", i, got, i)
		}
	}
}

// TestRegistryIdempotentHandles: re-asking for a name returns the same
// hot-path object, never a fresh zeroed one.
func TestRegistryIdempotentHandles(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("ops.search")
	c1.Inc(0)
	if c2 := r.Counter("ops.search"); c2 != c1 {
		t.Fatal("Registry.Counter returned a different handle for the same name")
	}
	if h1, h2 := r.Histogram("lat"), r.Histogram("lat"); h1 != h2 {
		t.Fatal("Registry.Histogram returned a different handle for the same name")
	}
}

// TestSnapshotAndDelta: counters, gauges and histograms all land in the
// schema; Delta subtracts per name, tolerates names missing from prev,
// and stamps the window.
func TestSnapshotAndDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops.add")
	g := int64(3)
	r.Gauge("resize.shards", func() int64 { return g })
	h := r.Histogram("lat.add")

	c.Add(1, 10)
	h.Record(100)
	s1 := r.Snapshot()
	if s1.Schema != SchemaName || s1.Version != SchemaVersion {
		t.Fatalf("snapshot schema %q/%d, want %q/%d", s1.Schema, s1.Version, SchemaName, SchemaVersion)
	}
	if s1.Counters["ops.add"] != 10 || s1.Counters["resize.shards"] != 3 {
		t.Fatalf("snapshot counters = %v", s1.Counters)
	}
	if s1.Hists["lat.add"].Count != 1 {
		t.Fatalf("snapshot histogram count = %d, want 1", s1.Hists["lat.add"].Count)
	}

	c.Add(2, 5)
	g = 6
	h.Record(200)
	s2 := r.Snapshot()
	d := s2.Delta(s1)
	if d.Counters["ops.add"] != 5 {
		t.Fatalf("delta ops.add = %d, want 5", d.Counters["ops.add"])
	}
	if d.Counters["resize.shards"] != 3 {
		t.Fatalf("delta gauge = %d, want 3 (6−3)", d.Counters["resize.shards"])
	}
	if d.Hists["lat.add"].Count != 1 || d.Hists["lat.add"].Sum != 200 {
		t.Fatalf("delta histogram = %+v", d.Hists["lat.add"])
	}
	if d.WindowNanos < 0 {
		t.Fatalf("delta window %d < 0", d.WindowNanos)
	}

	// A name unknown to prev reads as a zero base.
	r.Counter("ops.new").Add(0, 7)
	d2 := r.Snapshot().Delta(s1)
	if d2.Counters["ops.new"] != 7 {
		t.Fatalf("delta of a fresh counter = %d, want 7", d2.Counters["ops.new"])
	}
}

// TestRegistryNamesSorted: exposition iterates Names; it must be stable.
func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a", func() int64 { return 0 })
	r.Histogram("c")
	names := r.Names()
	want := []string{"a", "b", "c"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

// TestSnapshotMerge: merging two registries' snapshots unions the metric
// sets, sums collisions (counters and histograms bucket-wise), and keeps
// the later timestamp — the multi-source exposition path trieserve uses.
func TestSnapshotMerge(t *testing.T) {
	trie := NewRegistry()
	trie.Counter("ops.insert").Add(0, 10)
	trie.Counter("shared.total").Add(0, 3)
	trie.Histogram("latency.insert_ns").Record(100)

	srv := NewRegistry()
	srv.Counter("server.requests").Add(0, 7)
	srv.Counter("shared.total").Add(0, 4)
	srv.Histogram("latency.insert_ns").Record(100)
	srv.Histogram("server.batch_size").Record(16)

	a, b := trie.Snapshot(), srv.Snapshot()
	m := a.Merge(b)

	if m.Counters["ops.insert"] != 10 || m.Counters["server.requests"] != 7 {
		t.Fatalf("disjoint counters not unioned: %v", m.Counters)
	}
	if m.Counters["shared.total"] != 7 {
		t.Fatalf("colliding counter = %d, want 7", m.Counters["shared.total"])
	}
	if h := m.Hists["latency.insert_ns"]; h.Count != 2 || h.Sum != 200 || h.Buckets[bucketOf(100)] != 2 {
		t.Fatalf("colliding histogram = %+v", h)
	}
	if m.Hists["server.batch_size"].Count != 1 {
		t.Fatalf("src-only histogram missing")
	}
	if m.UnixNanos < a.UnixNanos || m.UnixNanos < b.UnixNanos {
		t.Fatalf("merged timestamp %d older than inputs", m.UnixNanos)
	}
	// Inputs unmodified.
	if a.Counters["shared.total"] != 3 || b.Counters["shared.total"] != 4 {
		t.Fatalf("Merge mutated its inputs")
	}
}
