// Package obs is the trie's unified observability layer: a lock-free
// metrics registry (striped padded counters, gauges over the existing
// per-subsystem Stats structs, log-bucketed latency histograms) behind
// one named, versioned Snapshot/Delta schema, plus a bounded lock-free
// event ring tracing the control planes (adaptive combining flips, shard
// resizes with per-stage durations, EBR epoch advances, combiner
// elections and retractions, seal assists).
//
// Design constraints, in order:
//
//   - The record paths are lock-free and allocation-free: counters are
//     striped over padded cache lines (one atomic add), histograms are
//     fixed power-of-two bucket arrays (one atomic add), and the ring
//     writes through per-slot seqlocks (a handful of atomic stores).
//   - Snapshots are weakly consistent: each counter read is individually
//     atomic, but the set is not a consistent cut — the same contract as
//     every existing Stats struct (combine.Counters documents it; the
//     EWMA consumers tolerate it by construction).
//   - Registration is cold-path only (mutex-guarded maps); hot paths
//     hold *Counter / *Histogram directly and never touch the registry.
package obs

import (
	"sort"
	"sync"
	"time"

	"repro/internal/atomicx"
)

// Schema identity of every Snapshot this package produces. Consumers
// (cmd/triestat, the export handlers) check Schema/Version instead of
// guessing at field layouts.
const (
	SchemaName = "repro.trie"
	// SchemaVersion 2: the histogram bucket array became log-linear
	// (sub-bucketed 1 µs–134 ms band, 93 buckets) — a v1 consumer would
	// misread the bucket indices, so the version gates it.
	SchemaVersion = 2
)

// counterStripes is the number of padded stripes per counter. Sixteen
// mirrors resize.tickStripes: it keeps a hammered counter off one shared
// cache line while bounding each counter at one KiB.
const counterStripes = 16

// Counter is a monotone counter striped over padded cache lines. Add and
// Inc take a caller-supplied hint (typically the operation's key) that a
// multiplicative hash spreads across stripes, so concurrent bumps from
// disjoint key ranges land on disjoint lines. Load sums the stripes —
// weakly consistent like every other snapshot read here.
type Counter struct {
	stripes [counterStripes]atomicx.PadInt64
}

// stripeOf hashes a hint to a stripe index (Fibonacci hashing, as in
// resize.tick).
func stripeOf(hint int64) uint64 {
	return (uint64(hint) * 0x9E3779B97F4A7C15) >> 60
}

// Inc adds one and returns the new value of the hint's stripe — NOT the
// counter total. The per-stripe value is exactly what the sampling
// facades need (n % every == 0 picks ~1/every of the stripe's traffic)
// without a second atomic.
func (c *Counter) Inc(hint int64) int64 {
	return c.stripes[stripeOf(hint)].Add(1)
}

// Add adds n to the hint's stripe.
func (c *Counter) Add(hint, n int64) {
	c.stripes[stripeOf(hint)].Add(n)
}

// Load returns the sum over stripes.
func (c *Counter) Load() int64 {
	var v int64
	for i := range c.stripes {
		v += c.stripes[i].Load()
	}
	return v
}

// Registry names the metrics of one trie instance. Registration and
// snapshotting are cold paths behind a mutex; the returned *Counter /
// *Histogram handles are the lock-free hot-path objects.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
		gauges:   map[string]func() int64{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Gauge registers fn as the named instantaneous reading. This is how the
// existing per-subsystem Stats structs fold into the schema without
// rewiring their hot paths: the closure reads whatever atomic the
// subsystem already maintains. Re-registering a name replaces the
// closure.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Names returns every registered metric name, sorted (exposition order).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot is one timestamped reading of every registered metric, under
// the versioned schema. Counter and gauge readings share the Counters
// map: both are int64 time series, and the cumulative-vs-instantaneous
// distinction only matters to the consumer computing rates (Delta handles
// both the same way — a gauge's delta is its change over the window).
type Snapshot struct {
	Schema      string                  `json:"schema"`
	Version     int                     `json:"version"`
	UnixNanos   int64                   `json:"unix_nanos"`
	WindowNanos int64                   `json:"window_nanos,omitempty"`
	Counters    map[string]int64        `json:"counters"`
	Hists       map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot reads every registered metric. Weakly consistent: each value
// is an atomic read, the set is not a cut.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Schema:    SchemaName,
		Version:   SchemaVersion,
		UnixNanos: time.Now().UnixNano(),
		Counters:  make(map[string]int64, len(r.counters)+len(r.gauges)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Load()
	}
	for n, fn := range r.gauges {
		s.Counters[n] = fn()
	}
	if len(r.hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Hists[n] = h.Snapshot()
		}
	}
	return s
}

// Merge folds src into s and returns the combined snapshot: the union of
// both metric sets, summing values (counter and bucket-wise histogram
// addition) where names collide. This is how a process exposes several
// registries — the server front-end's own metrics plus the embedded
// trie's MetricsSnapshot — through one exposition endpoint without
// cross-wiring the registries themselves. The result carries the later
// timestamp; s and src are unmodified.
func (s Snapshot) Merge(src Snapshot) Snapshot {
	m := Snapshot{
		Schema:      s.Schema,
		Version:     s.Version,
		UnixNanos:   s.UnixNanos,
		WindowNanos: s.WindowNanos,
		Counters:    make(map[string]int64, len(s.Counters)+len(src.Counters)),
	}
	if src.UnixNanos > m.UnixNanos {
		m.UnixNanos = src.UnixNanos
	}
	for n, v := range s.Counters {
		m.Counters[n] = v
	}
	for n, v := range src.Counters {
		m.Counters[n] += v
	}
	if len(s.Hists)+len(src.Hists) > 0 {
		m.Hists = make(map[string]HistSnapshot, len(s.Hists)+len(src.Hists))
		for n, h := range s.Hists {
			m.Hists[n] = h
		}
		for n, h := range src.Hists {
			prev, ok := m.Hists[n]
			if !ok {
				m.Hists[n] = h
				continue
			}
			sum := HistSnapshot{Count: prev.Count + h.Count, Sum: prev.Sum + h.Sum}
			for i := range sum.Buckets {
				sum.Buckets[i] = prev.Buckets[i] + h.Buckets[i]
			}
			m.Hists[n] = sum
		}
	}
	return m
}

// Delta returns the window s − prev: counter-by-counter (names missing
// from prev read as zero, so a consumer restarted mid-run still gets a
// sane first window), histogram-by-histogram, with WindowNanos set to the
// timestamp difference. s and prev are unmodified.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Schema:      s.Schema,
		Version:     s.Version,
		UnixNanos:   s.UnixNanos,
		WindowNanos: s.UnixNanos - prev.UnixNanos,
		Counters:    make(map[string]int64, len(s.Counters)),
	}
	for n, v := range s.Counters {
		d.Counters[n] = v - prev.Counters[n]
	}
	if len(s.Hists) > 0 {
		d.Hists = make(map[string]HistSnapshot, len(s.Hists))
		for n, h := range s.Hists {
			d.Hists[n] = h.Delta(prev.Hists[n])
		}
	}
	return d
}
