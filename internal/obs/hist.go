package obs

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the fixed bucket count of every latency histogram.
// Bucket b holds the values whose bit length is b — i.e. bucket 0 holds
// exactly 0, and bucket b ≥ 1 covers [2^(b−1), 2^b). 42 buckets span
// 0 ns … 2^41 ns (~37 minutes), beyond any plausible op latency; larger
// values clamp into the last bucket.
const HistBuckets = 42

// BucketBound returns bucket b's inclusive upper bound in the recorded
// unit (nanoseconds for the latency histograms): 0 for bucket 0, 2^b − 1
// otherwise.
func BucketBound(b int) int64 {
	if b <= 0 {
		return 0
	}
	return int64(1)<<uint(b) - 1
}

// bucketOf maps a recorded value to its bucket.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0 // a clock anomaly records as 0, not a panic
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Histogram is a log-bucketed (power-of-two bounds) histogram with a
// fixed bucket array. Record is one atomic add into the value's bucket
// plus two for count/sum — no allocation, no locks. The buckets are
// deliberately UNpadded: records are sampled (1/N of operations), so the
// array trades the padded layout's 2.6 KiB for 0.4 KiB and accepts rare
// neighbour contention on a path that runs a thousandth as often as the
// op counters.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot returns a weakly-consistent reading (each word individually
// atomic; count may lag or lead the bucket sum by in-flight records).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is one histogram reading.
type HistSnapshot struct {
	Count   int64              `json:"count"`
	Sum     int64              `json:"sum"`
	Buckets [HistBuckets]int64 `json:"buckets"`
}

// Delta returns s − prev bucket-by-bucket.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return d
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// inclusive upper bound of the first bucket at which the cumulative
// count reaches q·Count. The log-bucket layout bounds the relative error
// at 2× — the right trade for p50/p99 dashboards over a zero-allocation
// record path. Returns 0 for an empty histogram.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < HistBuckets; b++ {
		cum += s.Buckets[b]
		if cum >= rank {
			return BucketBound(b)
		}
	}
	return BucketBound(HistBuckets - 1)
}

// Mean returns the mean recorded value, or 0 for an empty histogram.
func (s HistSnapshot) Mean() float64 {
	if s.Count <= 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
