package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Bucket layout. The histogram is log-linear (HDR-style): power-of-two
// octaves everywhere, with the octaves covering the interesting latency
// band — 1 µs to ~134 ms — each split into subBuckets equal-width
// sub-buckets. A pure power-of-two layout bounds the relative error of a
// bucket-bound quantile at 2×, which is fine for a p50 dashboard and
// useless for a server's p999 SLO (a "p999 ≤ 2.1 ms" that could mean
// 1.05 ms is not a number). Splitting an octave into 4 narrows the bucket
// to 25% relative width, and the within-bucket linear interpolation in
// Quantile narrows the typical error far below that. Outside the band —
// sub-microsecond readings nobody alarms on, and multi-hundred-ms
// readings where "slow" needs no third digit — the plain octaves keep
// the array small.
const (
	// splitLoBit / splitHiBit bound the split band by bit length: values
	// whose bit length (octave) falls in [splitLoBit, splitHiBit] land in
	// sub-buckets. Octave 11 is [1024 ns, 2048 ns) — the first octave at
	// or above 1 µs — and octave 27 is [67.1 ms, 134.2 ms), the octave
	// containing 100 ms.
	splitLoBit = 11
	splitHiBit = 27
	// subBuckets is the split factor per octave (a power of two).
	subBuckets = 4
	subShift   = 2 // log2(subBuckets)
	// splitOctaves is the number of split octaves.
	splitOctaves = splitHiBit - splitLoBit + 1
	// maxBit is the last octave: 2^41 ns ≈ 37 minutes, beyond any
	// plausible op latency; larger values clamp into the last bucket.
	maxBit = 41
)

// HistBuckets is the fixed bucket count of every latency histogram:
// octaves 0…splitLoBit−1 one bucket each, octaves splitLoBit…splitHiBit
// subBuckets each, octaves splitHiBit+1…maxBit one bucket each.
const HistBuckets = splitLoBit + splitOctaves*subBuckets + (maxBit - splitHiBit)

// bucketOf maps a recorded value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0 // a clock anomaly records as 0, not a panic
	}
	l := bits.Len64(uint64(v))
	switch {
	case l < splitLoBit:
		return l
	case l <= splitHiBit:
		// The subShift bits right below the leading bit select the
		// sub-bucket within the octave [2^(l−1), 2^l).
		sub := int((uint64(v) >> uint(l-1-subShift)) & (subBuckets - 1))
		return splitLoBit + (l-splitLoBit)<<subShift + sub
	default:
		if l > maxBit {
			l = maxBit
		}
		return l + splitOctaves*(subBuckets-1)
	}
}

// bucketOctave returns the octave (bit length l, so the octave spans
// [2^(l−1), 2^l)) and sub-bucket index of bucket b, clamped into the
// valid range. sub is 0 outside the split band.
func bucketOctave(b int) (l, sub int) {
	const splitEnd = splitLoBit + splitOctaves*subBuckets
	switch {
	case b < splitLoBit:
		return b, 0
	case b < splitEnd:
		return splitLoBit + (b-splitLoBit)>>subShift, (b - splitLoBit) & (subBuckets - 1)
	default:
		if b >= HistBuckets {
			b = HistBuckets - 1
		}
		return b - splitOctaves*(subBuckets-1), 0
	}
}

// BucketBound returns bucket b's inclusive upper bound in the recorded
// unit (nanoseconds for the latency histograms): 0 for bucket 0, one
// below the next bucket's lower bound otherwise.
func BucketBound(b int) int64 {
	if b <= 0 {
		return 0
	}
	l, sub := bucketOctave(b)
	if l >= splitLoBit && l <= splitHiBit {
		return int64(1)<<uint(l-1) + int64(sub+1)<<uint(l-1-subShift) - 1
	}
	return int64(1)<<uint(l) - 1
}

// BucketLowerBound returns bucket b's inclusive lower bound: 0 for
// bucket 0, one above the previous bucket's upper bound otherwise.
func BucketLowerBound(b int) int64 {
	if b <= 0 {
		return 0
	}
	l, sub := bucketOctave(b)
	if l >= splitLoBit && l <= splitHiBit {
		return int64(1)<<uint(l-1) + int64(sub)<<uint(l-1-subShift)
	}
	return int64(1) << uint(l-1)
}

// Histogram is a log-linear (power-of-two octaves, sub-bucketed in the
// latency band — see the layout constants) histogram with a fixed bucket
// array. Record is one atomic add into the value's bucket plus two for
// count/sum — no allocation, no locks. The buckets are deliberately
// UNpadded: records are sampled (1/N of operations), so the array trades
// the padded layout's KiBs for 0.8 KiB and accepts rare neighbour
// contention on a path that runs a thousandth as often as the op
// counters.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot returns a weakly-consistent reading (each word individually
// atomic; count may lag or lead the bucket sum by in-flight records).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is one histogram reading.
type HistSnapshot struct {
	Count   int64              `json:"count"`
	Sum     int64              `json:"sum"`
	Buckets [HistBuckets]int64 `json:"buckets"`
}

// Delta returns s − prev bucket-by-bucket.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return d
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the covering
// bucket and interpolating linearly within it (observations assumed
// uniform across the bucket's range — the standard HDR estimate). In the
// split 1 µs–134 ms band the bucket is a quarter-octave, so even before
// interpolation the estimate is within 25%; tail quantiles like p999 are
// therefore meaningful, not the ≤2× upper bound the old all-octave
// layout gave.
//
// Edge cases are pinned down: an empty histogram (no positive bucket
// mass — including a reset-window delta gone negative) returns 0; q ≤ 0
// (or NaN) returns the lower bound of the first occupied bucket; q ≥ 1
// returns the upper bound of the last occupied bucket. Negative bucket
// counts — a Delta window spanning a counter reset — are skipped rather
// than corrupting the scan.
func (s HistSnapshot) Quantile(q float64) int64 {
	var total float64
	first, last := -1, -1
	for b := range s.Buckets {
		if s.Buckets[b] > 0 {
			if first < 0 {
				first = b
			}
			last = b
			total += float64(s.Buckets[b])
		}
	}
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q <= 0 {
		return BucketLowerBound(first)
	}
	if q >= 1 {
		return BucketBound(last)
	}
	rank := q * total
	var cum float64
	for b := first; b <= last; b++ {
		n := s.Buckets[b]
		if n <= 0 {
			continue
		}
		if cum+float64(n) >= rank {
			lo, hi := BucketLowerBound(b), BucketBound(b)
			frac := (rank - cum) / float64(n)
			v := lo + int64(frac*float64(hi-lo+1))
			if v > hi {
				v = hi
			}
			return v
		}
		cum += float64(n)
	}
	return BucketBound(last)
}

// Mean returns the mean recorded value, or 0 for an empty histogram.
func (s HistSnapshot) Mean() float64 {
	if s.Count <= 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
