package obs

import (
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries: the exact power-of-two edges. Bucket 0
// holds only 0; bucket b ≥ 1 covers [2^(b−1), 2^b); past the last bound
// everything clamps into the final bucket. Negative values (a clock
// anomaly on the latency path) record as 0 instead of corrupting memory.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, // clamped clock anomaly
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{16, 5},
		{1023, 10}, {1024, 11}, {1025, 11},
		{(1 << 20) - 1, 20}, {1 << 20, 21},
		{1 << 40, 41},
		{1<<41 - 1, 41},
		{1 << 41, 41},    // first clamped value
		{1<<62 + 17, 41}, // deep clamp
		{BucketBound(41), 41},
	}
	for _, c := range cases {
		var h Histogram
		h.Record(c.v)
		s := h.Snapshot()
		got := -1
		for b := range s.Buckets {
			if s.Buckets[b] == 1 {
				if got != -1 {
					t.Fatalf("Record(%d) landed in two buckets", c.v)
				}
				got = b
			}
		}
		if got != c.bucket {
			t.Errorf("Record(%d) → bucket %d, want %d", c.v, got, c.bucket)
		}
		if s.Count != 1 {
			t.Errorf("Record(%d): count %d, want 1", c.v, s.Count)
		}
	}
}

// TestBucketBoundMonotone: bounds are the inclusive upper edges the
// boundary table above assumes — 0, then 2^b − 1, strictly increasing.
func TestBucketBoundMonotone(t *testing.T) {
	if BucketBound(0) != 0 || BucketBound(1) != 1 || BucketBound(4) != 15 {
		t.Fatalf("BucketBound = %d,%d,%d, want 0,1,15", BucketBound(0), BucketBound(1), BucketBound(4))
	}
	for b := 1; b < HistBuckets; b++ {
		if BucketBound(b) <= BucketBound(b-1) {
			t.Fatalf("BucketBound(%d)=%d not above BucketBound(%d)=%d",
				b, BucketBound(b), b-1, BucketBound(b-1))
		}
	}
}

// TestHistogramQuantile: quantiles report the covering bucket's upper
// bound (≤ 2× relative error by construction).
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Record(100) // bucket 7, bound 127
	}
	for i := 0; i < 10; i++ {
		h.Record(5000) // bucket 13, bound 8191
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 != 127 {
		t.Errorf("p50 = %d, want 127", p50)
	}
	if p99 := s.Quantile(0.99); p99 != 8191 {
		t.Errorf("p99 = %d, want 8191", p99)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty-histogram quantile = %d, want 0", got)
	}
}

// TestHistogramConcurrentRecord: totals must be exact under concurrent
// recording (and the test is a -race probe of the record path).
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(id*per+i) % 4096)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var sum int64
	for _, b := range s.Buckets {
		sum += b
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

// TestHistogramDelta: windowed readings subtract bucket-by-bucket.
func TestHistogramDelta(t *testing.T) {
	var h Histogram
	h.Record(3)
	s1 := h.Snapshot()
	h.Record(3)
	h.Record(300)
	d := h.Snapshot().Delta(s1)
	if d.Count != 2 || d.Sum != 303 {
		t.Fatalf("delta count/sum = %d/%d, want 2/303", d.Count, d.Sum)
	}
	if d.Buckets[2] != 1 {
		t.Fatalf("delta bucket 2 = %d, want 1", d.Buckets[2])
	}
}
