package obs

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries: the exact bucket edges of the
// log-linear layout. Octaves below the split band get one bucket each
// (bucket 0 holds only 0); octaves 11–27 are split into 4 equal-width
// sub-buckets; octaves above get one bucket each again; past the last
// bound everything clamps into the final bucket. Negative values (a
// clock anomaly on the latency path) record as 0.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, // clamped clock anomaly
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{16, 5},
		{1023, 10}, // last unsplit octave below the band
		// Octave 11 = [1024, 2048), split at 1280/1536/1792.
		{1024, 11}, {1279, 11},
		{1280, 12}, {1535, 12},
		{1536, 13}, {1791, 13},
		{1792, 14}, {2047, 14},
		// Octave 12 = [2048, 4096), split at 2560/3072/3584.
		{2048, 15}, {2559, 15}, {2560, 16}, {4095, 18},
		// 5000 ns sits in octave 13's first quarter [4096, 5120).
		{4096, 19}, {5000, 19}, {5119, 19}, {5120, 20},
		// Octave 27 = [2^26, 2^27) is the last split octave; its final
		// sub-bucket is index 11 + 16*4 + 3 = 78.
		{1<<27 - 1, 78},
		// Octave 28 is the first unsplit octave above the band: 28+51=79.
		{1 << 27, 79},
		{1 << 40, 92},
		{1<<41 - 1, 92},
		{1 << 41, 92},    // first clamped value
		{1<<62 + 17, 92}, // deep clamp
		{BucketBound(HistBuckets - 1), 92},
	}
	for _, c := range cases {
		var h Histogram
		h.Record(c.v)
		s := h.Snapshot()
		got := -1
		for b := range s.Buckets {
			if s.Buckets[b] == 1 {
				if got != -1 {
					t.Fatalf("Record(%d) landed in two buckets", c.v)
				}
				got = b
			}
		}
		if got != c.bucket {
			t.Errorf("Record(%d) → bucket %d, want %d", c.v, got, c.bucket)
		}
		if s.Count != 1 {
			t.Errorf("Record(%d): count %d, want 1", c.v, s.Count)
		}
	}
}

// TestBucketBoundsContiguous: lower and upper bounds tile the int64 range
// with no gaps and no overlaps — each bucket's lower bound is one above
// its predecessor's upper bound, bounds are strictly increasing, and
// every value maps into the bucket whose [lower, upper] contains it.
func TestBucketBoundsContiguous(t *testing.T) {
	if BucketBound(0) != 0 || BucketLowerBound(0) != 0 {
		t.Fatalf("bucket 0 = [%d, %d], want [0, 0]", BucketLowerBound(0), BucketBound(0))
	}
	for b := 1; b < HistBuckets; b++ {
		if BucketLowerBound(b) != BucketBound(b-1)+1 {
			t.Fatalf("bucket %d lower %d, want %d (one above bucket %d upper)",
				b, BucketLowerBound(b), BucketBound(b-1)+1, b-1)
		}
		if BucketBound(b) < BucketLowerBound(b) {
			t.Fatalf("bucket %d upper %d below lower %d", b, BucketBound(b), BucketLowerBound(b))
		}
	}
	// Every edge value maps back into its own bucket.
	for b := 0; b < HistBuckets; b++ {
		for _, v := range []int64{BucketLowerBound(b), BucketBound(b)} {
			if got := bucketOf(v); got != b {
				t.Fatalf("bucketOf(%d) = %d, want %d", v, got, b)
			}
		}
	}
	// The last bucket's bound is the 2^41−1 clamp edge.
	if got := BucketBound(HistBuckets - 1); got != (1<<41)-1 {
		t.Fatalf("final bound = %d, want 2^41-1", got)
	}
}

// TestHistogramQuantile: quantiles interpolate within the covering
// bucket instead of reporting its upper bound.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Record(100) // bucket [64, 127]
	}
	for i := 0; i < 10; i++ {
		h.Record(5000) // sub-bucket [4096, 5119]
	}
	s := h.Snapshot()
	// p50: rank 50 of 90 in [64, 127] → 64 + (50/90)·64 = 99.
	if p50 := s.Quantile(0.5); p50 != 99 {
		t.Errorf("p50 = %d, want 99", p50)
	}
	// p99: rank 99, 9 of 10 tail observations into [4096, 5119] →
	// 4096 + 0.9·1024 = 5017 — within 0.4%% of the true 5000, where the
	// old octave layout reported 8191 (64%% high).
	if p99 := s.Quantile(0.99); p99 != 5017 {
		t.Errorf("p99 = %d, want 5017", p99)
	}
	// Both quantiles stay inside their covering bucket's range.
	if p := s.Quantile(0.999); p < 4096 || p > 5119 {
		t.Errorf("p999 = %d outside covering bucket [4096, 5119]", p)
	}
}

// TestQuantileTailResolution: a p999 read off a tail observation in the
// split band lands in that observation's quarter-octave — the resolution
// the server's SLO reporting needs.
func TestQuantileTailResolution(t *testing.T) {
	var h Histogram
	for i := 0; i < 999; i++ {
		h.Record(20_000) // ~20 µs body
	}
	h.Record(10_000_000) // one 10 ms straggler
	p999 := h.Snapshot().Quantile(0.999)
	// 20000 is in octave 15 [16384, 32768), sub-bucket [20480...) — no:
	// 20000 < 20480, so sub-bucket [16384, 20479]. rank 999 of 999 body
	// observations → top of the body bucket, far below the straggler.
	if p999 < 16384 || p999 > 20479 {
		t.Errorf("p999 = %d, want within the body's sub-bucket [16384, 20479]", p999)
	}
	// p9995 (rank 999.5) crosses into the straggler's bucket.
	p9995 := h.Snapshot().Quantile(0.9995)
	if p9995 < 8388608 || p9995 > 10485759 {
		t.Errorf("p9995 = %d, want within the straggler's sub-bucket [8388608, 10485759]", p9995)
	}
	// Relative sub-bucket width in the band is 25%, so the p9995 estimate
	// is within 25% of the true 10 ms (octave-only buckets allowed 2×).
	if err := math.Abs(float64(p9995)-1e7) / 1e7; err > 0.25 {
		t.Errorf("p9995 relative error %.2f exceeds the 25%% sub-bucket width", err)
	}
}

// TestQuantileEdgeCases: q=0, q=1, NaN, empty and reset-window
// histograms all return well-defined values.
func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	h.Record(100)  // bucket [64, 127]
	h.Record(5000) // sub-bucket [4096, 5119]
	s := h.Snapshot()
	if got := s.Quantile(0); got != 64 {
		t.Errorf("q=0 → %d, want 64 (lower bound of first occupied bucket)", got)
	}
	if got := s.Quantile(-0.5); got != 64 {
		t.Errorf("q=-0.5 → %d, want 64", got)
	}
	if got := s.Quantile(1); got != 5119 {
		t.Errorf("q=1 → %d, want 5119 (upper bound of last occupied bucket)", got)
	}
	if got := s.Quantile(2); got != 5119 {
		t.Errorf("q=2 → %d, want 5119", got)
	}
	if got := s.Quantile(math.NaN()); got != 64 {
		t.Errorf("q=NaN → %d, want 64 (treated as q=0)", got)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty-histogram quantile = %d, want 0", got)
	}
	// A delta window spanning a server restart can go negative; the scan
	// must skip the negative mass, not walk off it.
	neg := HistSnapshot{Count: -3}
	neg.Buckets[7] = -3
	if got := neg.Quantile(0.5); got != 0 {
		t.Errorf("all-negative window quantile = %d, want 0", got)
	}
	mixed := HistSnapshot{Count: 1}
	mixed.Buckets[3] = -2 // reset artifact
	mixed.Buckets[7] = 3  // bucket [64, 127]
	if got := mixed.Quantile(1); got != 127 {
		t.Errorf("mixed-sign window q=1 = %d, want 127", got)
	}
}

// TestHistogramConcurrentRecord: totals must be exact under concurrent
// recording (and the test is a -race probe of the record path).
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(id*per+i) % 4096)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var sum int64
	for _, b := range s.Buckets {
		sum += b
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

// TestHistogramDelta: windowed readings subtract bucket-by-bucket.
func TestHistogramDelta(t *testing.T) {
	var h Histogram
	h.Record(3)
	s1 := h.Snapshot()
	h.Record(3)
	h.Record(300)
	d := h.Snapshot().Delta(s1)
	if d.Count != 2 || d.Sum != 303 {
		t.Fatalf("delta count/sum = %d/%d, want 2/303", d.Count, d.Sum)
	}
	if d.Buckets[2] != 1 {
		t.Fatalf("delta bucket 2 = %d, want 1", d.Buckets[2])
	}
}
