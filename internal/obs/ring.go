package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates control-plane trace events.
type Kind int32

// Control-plane event kinds. Arg layouts are documented per kind; every
// arg is an int64 (fractional signals ship ×1000, as milli-units).
const (
	// KindAdaptiveEnable: a shard's controller flipped direct→combining.
	// Args: [0] contention-estimate EWMA ×1000, [1] 1 if the
	// throughput-collapse signal (not the estimate threshold) triggered
	// the flip, [2] throughput EWMA (ops/sec), [3] best direct-mode
	// throughput observed (ops/sec).
	KindAdaptiveEnable Kind = iota + 1
	// KindAdaptiveDisable: combining→direct. Args: [0] estimate EWMA
	// ×1000, [1] retraction rate ×1000 over the deciding window, [2]
	// rounds in the window, [3] retractions in the window.
	KindAdaptiveDisable
	// KindResizeGrow / KindResizeShrink: one completed migration.
	// Args: [0] from-shards, [1] to-shards, then per-stage durations in
	// nanoseconds: [2] journal (install + pre-journal drain), [3] bulk
	// copy, [4] catch-up generations, [5] seal (install + last-generation
	// drain), [6] shared replay, [7] flip (activation install).
	KindResizeGrow
	KindResizeShrink
	// KindEpochAdvance: an EBR domain's global epoch moved. Args: [0]
	// the new epoch.
	KindEpochAdvance
	// KindCombinerElect: a goroutine won a combiner election and drained
	// a round. Sampled — one event per ElectEventEvery rounds, or the
	// ring would be all elections. Args: [0] ops drained by this round,
	// [1] cumulative rounds of this combiner.
	KindCombinerElect
	// KindCombinerRetract: a submission outwaited a busy combiner and
	// escaped to the direct path. Args: [0] wait beats before retracting.
	KindCombinerRetract
	// KindSealAssist: an update parked in a sealed resize window claimed
	// replay work instead of spinning. Args: [0] keys it replayed.
	KindSealAssist
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindAdaptiveEnable:
		return "adaptive-enable"
	case KindAdaptiveDisable:
		return "adaptive-disable"
	case KindResizeGrow:
		return "resize-grow"
	case KindResizeShrink:
		return "resize-shrink"
	case KindEpochAdvance:
		return "epoch-advance"
	case KindCombinerElect:
		return "combiner-elect"
	case KindCombinerRetract:
		return "combiner-retract"
	case KindSealAssist:
		return "seal-assist"
	default:
		return "unknown"
	}
}

// ElectEventEvery is the combiner-election sampling period: one
// KindCombinerElect event per this many rounds. Elections are the only
// high-frequency event source (one per round, so potentially one per ~7
// ops on a clustered mix); unsampled they would both lap the ring past
// the rare events that matter and put a publish on a near-hot path.
const ElectEventEvery = 64

// EventArgs is the per-event payload arity.
const EventArgs = 8

// Event is one drained control-plane event.
type Event struct {
	// Seq is the event's global publication ticket (monotone per ring).
	Seq uint64 `json:"seq"`
	// Kind discriminates the Args layout.
	Kind Kind `json:"kind"`
	// Shard is the shard the event concerns, or −1 for whole-trie events
	// (resize migrations, the k=1 paths).
	Shard int32 `json:"shard"`
	// UnixNanos is the publication wall-clock time.
	UnixNanos int64            `json:"unix_nanos"`
	Args      [EventArgs]int64 `json:"args"`
}

// Time returns the publication time.
func (e Event) Time() time.Time { return time.Unix(0, e.UnixNanos) }

// ringSlot is one seqlock-protected event cell. The payload is stored
// word-by-word through atomics, so two writers lapping onto the same
// slot — or a reader racing either — are data-race-free by construction;
// the seq word then makes torn mixes DETECTABLE: a writer parks seq at 0
// while it stores, and publishes ticket+1 when done, so a reader that
// sees the same expected seq before and after its copy holds exactly the
// ticket's payload.
type ringSlot struct {
	seq  atomic.Uint64 // 0 while a write is in flight; ticket+1 when published
	meta atomic.Int64  // kind<<32 | uint32(shard)
	time atomic.Int64
	args [EventArgs]atomic.Int64
}

// Ring is a bounded lock-free multi-producer event buffer with overwrite
// semantics: publishers never block and never fail — when the ring is
// full the oldest undrained events are overwritten, and the drain
// accounts them in Dropped. One ring serves a whole trie; slot count is
// a power of two.
type Ring struct {
	mask    uint64
	ticket  atomic.Uint64 // next publication ticket
	dropped atomic.Int64
	slots   []ringSlot

	// Drain state: drains serialize on mu (publishers never touch it).
	mu   sync.Mutex
	next uint64 // first undrained ticket
}

// DefaultRingSize is the slot count NewRing uses for n ≤ 0: large enough
// that sampled elections do not lap a resize event between two drains of
// a 1 Hz monitor at realistic round rates, small enough (~100 KiB) to be
// always-on.
const DefaultRingSize = 1024

// NewRing returns a ring with n slots (n ≤ 0 selects DefaultRingSize; n
// rounds up to a power of two).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return &Ring{mask: uint64(p - 1), slots: make([]ringSlot, p)}
}

// Cap returns the slot count.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Dropped returns the cumulative count of events lost to overwrite or to
// a copy the drain could not certify (a write in flight during the
// drain). Nil-safe.
func (r *Ring) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Publish records one event. Nil-safe (a nil ring is the stripped
// configuration: publishing is a no-op), lock-free, never blocks: a full
// ring overwrites its oldest slot. args beyond EventArgs are ignored,
// missing ones record as zero.
func (r *Ring) Publish(kind Kind, shard int32, args ...int64) {
	if r == nil {
		return
	}
	t := r.ticket.Add(1) - 1
	s := &r.slots[t&r.mask]
	// Seqlock write: park the slot (seq=0 marks a write in flight), store
	// the payload word-by-word, publish ticket+1. A concurrent lapping
	// writer interleaving here leaves seq at a value no reader expects
	// for either ticket, so the torn payload is discarded, not surfaced.
	s.seq.Store(0)
	s.meta.Store(int64(kind)<<32 | int64(uint32(shard)))
	s.time.Store(time.Now().UnixNano())
	for i := 0; i < EventArgs; i++ {
		var v int64
		if i < len(args) {
			v = args[i]
		}
		s.args[i].Store(v)
	}
	s.seq.Store(t + 1)
}

// Drain returns every event published since the previous drain, oldest
// first, and advances the drain cursor. Events the ring overwrote — or
// whose write was still in flight during this drain — are counted in
// Dropped instead of returned. Drains serialize on an internal mutex;
// publishers are never blocked by a drain. Nil-safe.
func (r *Ring) Drain() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.ticket.Load()
	start := r.next
	if size := uint64(len(r.slots)); cur > size && cur-size > start {
		// The window [start, cur−size) was overwritten before this drain.
		r.dropped.Add(int64(cur - size - start))
		start = cur - size
	}
	var out []Event
	for t := start; t < cur; t++ {
		s := &r.slots[t&r.mask]
		want := t + 1
		if s.seq.Load() != want {
			r.dropped.Add(1) // in-flight write, or lapped since cur was read
			continue
		}
		var e Event
		meta := s.meta.Load()
		e.Seq = t
		e.Kind = Kind(meta >> 32)
		e.Shard = int32(uint32(meta))
		e.UnixNanos = s.time.Load()
		for i := 0; i < EventArgs; i++ {
			e.Args[i] = s.args[i].Load()
		}
		if s.seq.Load() != want {
			r.dropped.Add(1) // a lapping writer tore the copy; discard it
			continue
		}
		out = append(out, e)
	}
	r.next = cur
	return out
}
