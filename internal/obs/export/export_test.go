package export

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func testSnapshot() obs.Snapshot {
	r := obs.NewRegistry()
	r.Counter("ops.search").Add(1, 42)
	r.Gauge("resize.shards", func() int64 { return 4 })
	h := r.Histogram("latency.predecessor_ns")
	h.Record(100)
	h.Record(100)
	h.Record(5000)
	return r.Snapshot()
}

// TestExpvarHandlerShape: /debug/vars must be one flat JSON object with
// metric names as top-level keys — the expvar contract.
func TestExpvarHandlerShape(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(testSnapshot).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var flat map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &flat); err != nil {
		t.Fatalf("response is not a JSON object: %v", err)
	}
	if string(flat["ops.search"]) != "42" {
		t.Fatalf("ops.search = %s, want 42", flat["ops.search"])
	}
	if string(flat["resize.shards"]) != "4" {
		t.Fatalf("resize.shards = %s, want 4", flat["resize.shards"])
	}
	var h obs.HistSnapshot
	if err := json.Unmarshal(flat["latency.predecessor_ns"], &h); err != nil || h.Count != 3 {
		t.Fatalf("histogram value = %s (err %v)", flat["latency.predecessor_ns"], err)
	}
	if string(flat["schema"]) != `"`+obs.SchemaName+`"` {
		t.Fatalf("schema key = %s", flat["schema"])
	}
}

// TestSnapshotHandlerRoundTrip: the typed endpoint must unmarshal back
// into obs.Snapshot losslessly — cmd/triestat depends on it.
func TestSnapshotHandlerRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	SnapshotHandler(testSnapshot).ServeHTTP(rec, httptest.NewRequest("GET", "/snapshot", nil))
	var s obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Schema != obs.SchemaName || s.Version != obs.SchemaVersion {
		t.Fatalf("schema %q/%d", s.Schema, s.Version)
	}
	if s.Counters["ops.search"] != 42 {
		t.Fatalf("ops.search = %d", s.Counters["ops.search"])
	}
	if s.Hists["latency.predecessor_ns"].Count != 3 {
		t.Fatalf("histogram count = %d", s.Hists["latency.predecessor_ns"].Count)
	}
}

// TestPrometheusFormat: counters as counter samples, histograms with
// CUMULATIVE le buckets ending at +Inf and matching _sum/_count, names
// sanitized into the repro_ namespace.
func TestPrometheusFormat(t *testing.T) {
	var b strings.Builder
	WritePrometheus(&b, testSnapshot())
	out := b.String()
	for _, want := range []string{
		"# TYPE repro_ops_search counter\nrepro_ops_search 42\n",
		"repro_resize_shards 4\n",
		"# TYPE repro_latency_predecessor_ns histogram\n",
		`repro_latency_predecessor_ns_bucket{le="+Inf"} 3`,
		"repro_latency_predecessor_ns_sum 5200\n",
		"repro_latency_predecessor_ns_count 3\n",
		// 100 lands in bucket 7 (bound 127): cumulative 2 there.
		`repro_latency_predecessor_ns_bucket{le="127"} 2`,
		// 5000 lands in the [4096, 5119] sub-bucket: cumulative 3.
		`repro_latency_predecessor_ns_bucket{le="5119"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n--- got ---\n%s", want, out)
		}
	}
	if strings.Contains(out, "ops.search") {
		t.Error("unsanitized metric name leaked into prometheus output")
	}
}

// TestPromHandlerContentType: the scrape endpoint must advertise the
// text exposition version.
func TestPromHandlerContentType(t *testing.T) {
	rec := httptest.NewRecorder()
	PromHandler(testSnapshot).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
}

// TestNewMuxRoutes: all three endpoints are wired.
func TestNewMuxRoutes(t *testing.T) {
	mux := NewMux(testSnapshot)
	for _, path := range []string{"/debug/vars", "/metrics", "/snapshot"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 || rec.Body.Len() == 0 {
			t.Errorf("%s: code %d, %d bytes", path, rec.Code, rec.Body.Len())
		}
	}
}
