// Package export renders obs snapshots for external consumers: an
// expvar-compatible JSON handler (flat name→value object, the
// /debug/vars shape), a Prometheus text-format writer, and a typed
// snapshot endpoint for tools that want the schema verbatim
// (cmd/triestat). Handlers take a snapshot source closure instead of a
// registry so a caller can serve deltas, filtered views, or a facade's
// MetricsSnapshot unchanged.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Handler serves src() as an expvar-compatible JSON object: one
// top-level key per metric (counters and gauges as numbers, histograms
// as {count,sum,buckets} objects) plus the schema identity keys. The
// flat shape is what generic expvar scrapers expect at /debug/vars;
// tools that want the typed schema use SnapshotHandler.
func Handler(src func() obs.Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := src()
		flat := make(map[string]interface{}, len(s.Counters)+len(s.Hists)+3)
		flat["schema"] = s.Schema
		flat["version"] = s.Version
		flat["unix_nanos"] = s.UnixNanos
		for n, v := range s.Counters {
			flat[n] = v
		}
		for n, h := range s.Hists {
			flat[n] = h
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(flat)
	})
}

// SnapshotHandler serves src() marshaled verbatim — the obs.Snapshot
// schema a typed consumer can unmarshal back.
func SnapshotHandler(src func() obs.Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(src())
	})
}

// PromHandler serves src() in the Prometheus text exposition format.
func PromHandler(src func() obs.Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, src())
	})
}

// NewMux routes the three renderings the way cmd/triestress serves them:
// /debug/vars (expvar shape), /metrics (Prometheus text), /snapshot
// (typed schema).
func NewMux(src func() obs.Snapshot) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", Handler(src))
	mux.Handle("/metrics", PromHandler(src))
	mux.Handle("/snapshot", SnapshotHandler(src))
	return mux
}

// promName maps a schema metric name to a Prometheus-legal one:
// dots/dashes become underscores under a repro_ namespace prefix.
func promName(name string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
	return "repro_" + mapped
}

// WritePrometheus renders s as Prometheus text format: counters and
// gauges as untyped samples, histograms as native Prometheus histograms
// (cumulative le buckets with +Inf, _sum, _count). Names are emitted in
// sorted order so scrapes diff cleanly.
func WritePrometheus(w io.Writer, s obs.Snapshot) {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n])
	}
	hnames := make([]string, 0, len(s.Hists))
	for n := range s.Hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Hists[n]
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		var cum int64
		for b := 0; b < obs.HistBuckets; b++ {
			cum += h.Buckets[b]
			// Empty tail buckets are elided past the last observation —
			// the +Inf bucket below carries the total — keeping the
			// exposition proportional to the observed range.
			if cum == h.Count && b > 0 && h.Buckets[b] == 0 {
				continue
			}
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, obs.BucketBound(b), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
	}
}
